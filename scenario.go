package suu

import (
	"suu/internal/dyn"
)

// Scenario layers deterministic dynamics over an instance: staggered
// job arrivals, machine breakdown windows, and hidden Markov-modulated
// failure bursts. Build one with NewScenario and the chainable event
// methods, then evaluate strategies against it:
//
//	sc := suu.NewScenario(inst).
//		ArriveAt(4, 10).        // job 4 released at step 10
//		Breakdown(1, 20, 35).   // machine 1 down for steps [20,35)
//		Burst(0, 0.15, 0.9, 0.3) // machine 0 bursty: 15% bad, sticky
//	oblivious, _ := sc.EstimateMakespan(schedule, 2000)
//	adaptive, _ := sc.EstimateAdaptive(2000)
//	rolling, _ := sc.EstimateRolling(2000, suu.WithSeed(7))
//
// A scenario with no events is exactly the static problem: every
// estimate delegates to the static engines and is bit-identical to the
// corresponding static call. All estimates accept the package's
// uniform options (WithSeed, WithWorkers, WithMaxSteps, ...) and are
// bit-identical at any worker count.
type Scenario struct {
	x     *Instance
	inner *dyn.Scenario
}

// NewScenario returns an event-free scenario over x. Builder errors
// (out-of-range jobs, invalid intervals) are recorded and reported by
// Validate and every Estimate call, so the chain never needs
// intermediate error checks.
func NewScenario(x *Instance) *Scenario {
	return &Scenario{x: x, inner: dyn.New(x.inner)}
}

// ArriveAt releases job at the given step: before it the job is
// invisible — not eligible, and not blocking successors' eligibility
// any differently than an unfinished predecessor would. Step 0 (the
// default for every job) means present from the start.
func (sc *Scenario) ArriveAt(job, step int) *Scenario {
	sc.inner.ArriveAt(job, step)
	return sc
}

// Breakdown takes machine down for the half-open step interval
// [from, to): assignments to it are ignored while it is down.
func (sc *Scenario) Breakdown(machine, from, to int) *Scenario {
	sc.inner.Breakdown(machine, from, to)
	return sc
}

// Burst attaches a hidden two-state Markov failure regime to machine
// (-1 = every machine): in the long run the machine spends fraction
// p0 of its steps in the bad state, regimes persist with probability
// alpha per step (0 = memoryless, →1 = long sticky bursts), and while
// bad every success probability on the machine is multiplied by
// severity. Policies never observe the regime; only completion draws
// feel it.
func (sc *Scenario) Burst(machine int, p0, alpha, severity float64) *Scenario {
	sc.inner.Burst(machine, p0, alpha, severity)
	return sc
}

// Validate reports the first builder error or an invalid underlying
// instance.
func (sc *Scenario) Validate() error { return sc.inner.Validate() }

// Static reports whether the scenario has no events, i.e. is exactly
// the static problem.
func (sc *Scenario) Static() bool { return sc.inner.Static() }

// estimate runs strat and converts the result.
func (sc *Scenario) estimate(strat dyn.Strategy, reps int, o options) (Estimate, error) {
	sum, incomplete, eng, err := dyn.EstimateInfo(sc.inner, strat, reps, o.maxSteps, o.simSeed, o.workers)
	if err != nil {
		return Estimate{}, err
	}
	return newEstimate(sum, incomplete, eng), nil
}

// EstimateMakespan evaluates a fixed schedule under the scenario: the
// schedule is executed obliviously to the dynamics (assignments to
// down machines are wasted; late jobs stay ineligible), which answers
// "how would this deployed schedule have fared". With no events it is
// bit-identical to Schedule.EstimateMakespan.
func (sc *Scenario) EstimateMakespan(s *Schedule, reps int, opts ...Option) (Estimate, error) {
	return sc.estimate(dyn.NewStatic(sc.inner, s.policy), reps, buildOptions(opts))
}

// EstimateAdaptive evaluates the availability-aware greedy: SUU-I-ALG
// rerun every step on the currently eligible jobs and up machines. It
// sees arrivals and breakdowns but not the hidden burst regimes.
func (sc *Scenario) EstimateAdaptive(reps int, opts ...Option) (Estimate, error) {
	return sc.estimate(dyn.NewAdaptive(sc.inner), reps, buildOptions(opts))
}

// EstimateRolling evaluates the rolling-horizon re-solver: at every
// event epoch (arrival or breakdown boundary) it re-invokes a registry
// solver — WithSolver names one; the default dispatches like Solve —
// on the surviving sub-instance, warm-starting the LP from the initial
// solve's exported basis, and plays the refreshed schedule until the
// next epoch. Construction uses the WithSeed seed; repeated event
// states reuse cached plans, and estimates stay bit-identical at any
// worker count.
func (sc *Scenario) EstimateRolling(reps int, opts ...Option) (Estimate, error) {
	o := buildOptions(opts)
	strat, err := dyn.NewRolling(sc.inner, o.solver, o.par)
	if err != nil {
		return Estimate{}, err
	}
	return sc.estimate(strat, reps, o)
}
