// Command suu-trace reproduces the paper's illustrative figures on a
// concrete instance:
//
//   - Figure 1 (left): the Markov chain of a regimen — every reachable
//     unfinished-set state, its assignment, and transition probabilities;
//   - Figure 1 (right): the execution tree of a schedule truncated at a
//     chosen depth;
//   - Figure 3: the network-flow instance built inside the LP1 rounding
//     (-flow).
//
// By default it uses a 3-job, 2-machine example in the spirit of the
// paper's Figure 1; pass -f to trace an instance from suu-gen.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
)

func jobSet(mask uint64, n int) string {
	var parts []string
	for j := 0; j < n; j++ {
		if mask&(1<<uint(j)) != 0 {
			parts = append(parts, fmt.Sprint(j+1))
		}
	}
	if len(parts) == 0 {
		return "∅"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func defaultInstance() *model.Instance {
	in := model.New(3, 2)
	in.P[0][0], in.P[0][1], in.P[0][2] = 0.7, 0.3, 0.2
	in.P[1][0], in.P[1][1], in.P[1][2] = 0.2, 0.6, 0.5
	return in
}

func main() {
	var (
		file  = flag.String("f", "", "instance file (JSON); default: built-in 3-job example")
		depth = flag.Int("depth", 2, "execution tree depth")
		flow  = flag.Bool("flow", false, "print the LP1 rounding flow network (Figure 3) instead")
		dot   = flag.Bool("dot", false, "emit the Markov chain as Graphviz dot instead of text")
	)
	flag.Parse()

	in := defaultInstance()
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = &model.Instance{}
		if err := json.NewDecoder(f).Decode(in); err != nil {
			log.Fatal(err)
		}
	}

	if *flow {
		printFlow(in)
		return
	}

	reg, topt, err := opt.OptimalRegimen(in)
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		printMarkovDOT(in, reg)
		return
	}
	fmt.Printf("== Figure 1 (left): Markov chain of the optimal regimen ==\n")
	fmt.Printf("instance: %d jobs, %d machines; exact E[makespan] = %.4f\n\n", in.N, in.M, topt)
	states, err := opt.ClosedStates(in)
	if err != nil {
		log.Fatal(err)
	}
	unf := make([]bool, in.N)
	for k := len(states) - 1; k >= 0; k-- {
		s := states[k]
		if s == 0 {
			fmt.Printf("state ∅: done\n")
			continue
		}
		for j := 0; j < in.N; j++ {
			unf[j] = s&(1<<uint(j)) != 0
		}
		a := reg.Assign(&sched.State{Unfinished: unf})
		fmt.Printf("state %s: assignment %v\n", jobSet(s, in.N), []int(a))
		for _, tr := range opt.Transitions(in, s, a) {
			fmt.Printf("    --%.4f--> %s\n", tr.Prob, jobSet(tr.Next, in.N))
		}
	}

	fmt.Printf("\n== Figure 1 (right): execution tree to depth %d ==\n", *depth)
	full := uint64(1)<<uint(in.N) - 1
	var walk func(s uint64, d int, prefix string, p float64)
	walk = func(s uint64, d int, prefix string, p float64) {
		fmt.Printf("%s%s (reach prob %.4f)\n", prefix, jobSet(s, in.N), p)
		if d == *depth || s == 0 {
			return
		}
		for j := 0; j < in.N; j++ {
			unf[j] = s&(1<<uint(j)) != 0
		}
		a := reg.Assign(&sched.State{Unfinished: unf})
		for _, tr := range opt.Transitions(in, s, a) {
			walk(tr.Next, d+1, prefix+"    ", p*tr.Prob)
		}
	}
	walk(full, 0, "", 1)
}

func printFlow(in *model.Instance) {
	fmt.Printf("== Figure 3: LP1 rounding flow network ==\n")
	cover := in.Prec.MinChainCover()
	fs, err := core.SolveLP1(in, cover, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ints, err := core.RoundLP(in, fs, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP optimum T* = %.3f; rounding scale S=%d, lift λ=%d\n", fs.T, ints.Scale, ints.Lambda)
	if ints.Flow == nil {
		fmt.Println("rounding used the direct round-up case (t ≥ n or heavy entries);")
		fmt.Println("re-run with more machines / smaller probabilities to engage the flow")
		fmt.Println("(e.g. suu-gen -family chains -jobs 8 -machines 12 -hi 0.3 | suu-trace -f - -flow).")
		return
	}
	fmt.Print(ints.Flow)
}

// printMarkovDOT renders the regimen's Markov chain (Figure 1, left)
// in Graphviz dot syntax: one node per reachable unfinished set, one
// edge per positive-probability transition.
func printMarkovDOT(in *model.Instance, reg *sched.Regimen) {
	states, err := opt.ClosedStates(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("digraph regimen {")
	fmt.Println("  rankdir=LR;")
	unf := make([]bool, in.N)
	for _, s := range states {
		fmt.Printf("  s%d [label=%q];\n", s, jobSet(s, in.N))
		if s == 0 {
			continue
		}
		for j := 0; j < in.N; j++ {
			unf[j] = s&(1<<uint(j)) != 0
		}
		a := reg.Assign(&sched.State{Unfinished: unf})
		for _, tr := range opt.Transitions(in, s, a) {
			fmt.Printf("  s%d -> s%d [label=\"%.3f\"];\n", s, tr.Next, tr.Prob)
		}
	}
	fmt.Println("}")
}
