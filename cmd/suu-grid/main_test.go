package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"suu/internal/exp"
)

// testWorker is an in-process workerFunc that simulates killed worker
// processes: ranges listed in kill fail (no envelope written) that
// many times before succeeding. Everything else runs the real
// exp.RunShard, so the merged output is the production payload.
func testWorker(t *testing.T, cfg exp.Config, gridID string, kill map[exp.CellRange]int) workerFunc {
	t.Helper()
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		t.Fatalf("unknown grid %q", gridID)
	}
	wcfg := cfg
	wcfg.Workers = 1
	plan := g.Plan(wcfg)
	var mu sync.Mutex
	return func(r exp.CellRange, outPath string) error {
		mu.Lock()
		if kill[r] > 0 {
			kill[r]--
			mu.Unlock()
			return os.ErrProcessDone // stands in for a killed worker
		}
		mu.Unlock()
		data, err := exp.EncodeShardFile(exp.RunShard(wcfg, exp.ShardSpec{Plan: plan, Range: r}))
		if err != nil {
			return err
		}
		return os.WriteFile(outPath, data, 0o644)
	}
}

// TestCoordinateRetriesKilledWorker is the shard-level retry
// acceptance test: one worker of a 3-shard A2 sweep dies without
// writing its envelope, the coordinator parses the missing [lo:hi)
// range out of the merge error, re-issues exactly that range, and the
// final merged document is byte-identical to the in-process
// sequential run.
func TestCoordinateRetriesKilledWorker(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 5}
	g, _ := exp.GridDriverByID("A2")
	plan := g.Plan(cfg)
	ranges := exp.ShardRanges(plan.NumCells(), 3)
	if len(ranges) != 3 || ranges[1].Len() == 0 {
		t.Fatalf("fixture needs 3 non-trivial shards, got %v", ranges)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "merged.json")
	kill := map[exp.CellRange]int{ranges[1]: 1} // middle worker dies once
	if err := coordinate(cfg, "A2", 3, 1, dir, jsonPath, false, testWorker(t, cfg, "A2", kill)); err != nil {
		t.Fatalf("coordinate with one killed worker: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("retried sweep's merged document differs from the sequential run")
	}
}

// TestCoordinateRetriesWhenEveryWorkerDies: total failure — zero
// surviving envelopes — is the extreme gap and must enter the same
// retry loop (a single re-issued full-range worker repairs it)
// instead of dying on Merge's zero-shards error.
func TestCoordinateRetriesWhenEveryWorkerDies(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 5}
	g, _ := exp.GridDriverByID("A2")
	plan := g.Plan(cfg)
	total := plan.NumCells()
	kill := map[exp.CellRange]int{}
	for _, r := range exp.ShardRanges(total, 3) {
		kill[r] = 1 // every initial worker dies once
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "merged.json")
	if err := coordinate(cfg, "A2", 3, 1, dir, jsonPath, false, testWorker(t, cfg, "A2", kill)); err != nil {
		t.Fatalf("coordinate with all workers killed once: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("fully-retried sweep's merged document differs from the sequential run")
	}
}

// TestCoordinateGivesUpAfterRetries: a range that keeps dying must
// fail the sweep after -retries re-issues, with the missing range in
// the error.
func TestCoordinateGivesUpAfterRetries(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 5}
	g, _ := exp.GridDriverByID("A2")
	ranges := exp.ShardRanges(g.Plan(cfg).NumCells(), 3)
	kill := map[exp.CellRange]int{ranges[2]: 100} // tail worker always dies
	err := coordinate(cfg, "A2", 3, 2, t.TempDir(), "", false, testWorker(t, cfg, "A2", kill))
	if err == nil {
		t.Fatal("coordinate succeeded despite a permanently failing range")
	}
	if !strings.Contains(err.Error(), "missing cell range") || !strings.Contains(err.Error(), "giving up") {
		t.Errorf("error %q does not name the missing range and the exhausted retries", err)
	}
}

// TestCoordinateAdjacentFailuresMergeIntoOneReissue: two adjacent
// dead workers surface as a single missing range, which one re-issued
// worker repairs.
func TestCoordinateAdjacentFailuresMergeIntoOneReissue(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 5}
	g, _ := exp.GridDriverByID("A2")
	plan := g.Plan(cfg)
	ranges := exp.ShardRanges(plan.NumCells(), 4)
	kill := map[exp.CellRange]int{ranges[1]: 1, ranges[2]: 1}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "merged.json")
	if err := coordinate(cfg, "A2", 4, 1, dir, jsonPath, false, testWorker(t, cfg, "A2", kill)); err != nil {
		t.Fatalf("coordinate with two adjacent killed workers: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("repaired sweep's merged document differs from the sequential run")
	}
}
