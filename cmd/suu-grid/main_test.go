package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"suu/internal/dispatch"
	"suu/internal/exp"
)

// failNTimes wraps an in-process transport and fails the first N
// deliveries of chosen ranges — the unit-test stand-in for a worker
// process dying mid-shard. Coordinate must re-issue those ranges and
// still merge to the sequential bytes.
type failNTimes struct {
	inner dispatch.Transport
	id    string
	mu    sync.Mutex
	fail  map[exp.CellRange]int
	sends int
}

func (f *failNTimes) Name() string                      { return f.id }
func (f *failNTimes) Healthy(ctx context.Context) error { return nil }
func (f *failNTimes) Close() error                      { return nil }

func (f *failNTimes) Send(ctx context.Context, job dispatch.Job) (*exp.ShardFile, error) {
	f.mu.Lock()
	f.sends++
	if f.fail[job.Range] > 0 {
		f.fail[job.Range]--
		f.mu.Unlock()
		return nil, fmt.Errorf("worker for %v killed (test)", job.Range)
	}
	f.mu.Unlock()
	return f.inner.Send(ctx, job)
}

// capture runs fn with os.Stdout redirected and returns what it
// printed: coordinate reports to stdout, and the partial-results
// summary contract is part of what these tests pin down.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	return <-outc, ferr
}

func testOptions(t *testing.T, transports []dispatch.Transport) sweepOptions {
	t.Helper()
	return sweepOptions{
		transport:  "inprocess",
		shards:     4,
		retries:    2,
		workDir:    t.TempDir(),
		verify:     true, // every success must byte-match the sequential run
		transports: transports,
	}
}

func a2Shards(t *testing.T, cfg exp.Config, n int) []exp.CellRange {
	t.Helper()
	g, ok := exp.GridDriverByID("A2")
	if !ok {
		t.Fatal("A2 driver missing")
	}
	full := exp.CellRange{Lo: 0, Hi: g.Plan(cfg).NumCells()}
	return full.Split(n)
}

// TestCoordinateRetriesKilledWorker: a range whose first delivery
// dies is re-issued and the sweep still verifies byte-identical.
func TestCoordinateRetriesKilledWorker(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	shards := a2Shards(t, cfg, 4)
	ft := &failNTimes{
		inner: &dispatch.InProcess{},
		id:    "flaky-0",
		fail:  map[exp.CellRange]int{shards[1]: 1},
	}
	out, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", testOptions(t, []dispatch.Transport{ft, &dispatch.InProcess{ID: "ok-0"}}))
	})
	if err != nil {
		t.Fatalf("coordinate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("verify line missing from output:\n%s", out)
	}
}

// TestCoordinateRetriesWhenEveryWorkerDies: every range fails once on
// the only runner; all of them must be re-issued to completion.
func TestCoordinateRetriesWhenEveryWorkerDies(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	fail := map[exp.CellRange]int{}
	for _, r := range a2Shards(t, cfg, 4) {
		fail[r] = 1
	}
	ft := &failNTimes{inner: &dispatch.InProcess{}, id: "flaky-0", fail: fail}
	o := testOptions(t, []dispatch.Transport{ft})
	out, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", o)
	})
	if err != nil {
		t.Fatalf("coordinate: %v\n%s", err, out)
	}
}

// TestCoordinateGivesUpAfterRetries: a range that dies on every
// attempt exhausts the budget, and the error names the exact missing
// [lo:hi) so the failure is actionable.
func TestCoordinateGivesUpAfterRetries(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	doomed := a2Shards(t, cfg, 4)[2]
	ft := &failNTimes{
		inner: &dispatch.InProcess{},
		id:    "flaky-0",
		fail:  map[exp.CellRange]int{doomed: 1 << 20},
	}
	o := testOptions(t, []dispatch.Transport{ft})
	o.retries = 2
	out, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", o)
	})
	if err == nil {
		t.Fatalf("coordinate succeeded with a doomed range\n%s", out)
	}
	var rf *dispatch.RangeFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("err %T is not a RangeFailedError: %v", err, err)
	}
	if rf.Attempts != o.retries+1 {
		t.Errorf("attempts = %d, want %d", rf.Attempts, o.retries+1)
	}
	var miss *exp.MissingRangeError
	if !errors.As(err, &miss) {
		t.Fatalf("error does not carry the missing range: %v", err)
	}
	if miss.Range != doomed {
		t.Errorf("missing range %v, want the doomed shard %v", miss.Range, doomed)
	}
	want := fmt.Sprintf("[%d:%d)", miss.Range.Lo, miss.Range.Hi)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the range %s", err, want)
	}
	// Satellite contract: the failure output names what DID land.
	if !strings.Contains(out, "completed ranges:") {
		t.Errorf("no partial-results summary in output:\n%s", out)
	}
}

// blockForever parks every Send until its context dies — the
// cancellation test double.
type blockForever struct{ id string }

func (b *blockForever) Name() string                      { return b.id }
func (b *blockForever) Healthy(ctx context.Context) error { return nil }
func (b *blockForever) Close() error                      { return nil }
func (b *blockForever) Send(ctx context.Context, job dispatch.Job) (*exp.ShardFile, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCoordinateInterruptPrintsPartialSummary: cancellation (what
// SIGINT/SIGTERM feed through signal.NotifyContext) stops the sweep
// promptly, returns the context error, and prints a partial-results
// summary naming the completed ranges.
func TestCoordinateInterruptPrintsPartialSummary(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	// One runner delivers honestly, the other blocks; after the honest
	// runner has had time to land something, "interrupt" the sweep.
	ft := &failNTimes{inner: &dispatch.InProcess{}, id: "half-0"}
	slow := &blockForever{id: "stuck-0"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	o := testOptions(t, []dispatch.Transport{ft, slow})
	o.verify = false
	out, err := capture(t, func() error {
		return coordinate(ctx, cfg, "A2", o)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted coordinate: err = %v\n%s", err, out)
	}
	if !strings.Contains(out, "sweep did not complete") || !strings.Contains(out, "completed ranges:") {
		t.Errorf("no partial-results summary:\n%s", out)
	}
}

// TestCoordinateChaosSmoke: the CLI chaos path — Flaky wrapping the
// runner set via -chaos — still converges to verified parity.
func TestCoordinateChaosSmoke(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 7}
	o := sweepOptions{
		transport: "inprocess",
		shards:    5,
		retries:   11,
		chaos:     0.36,
		chaosSeed: 51,
		workDir:   t.TempDir(),
		verify:    true,
	}
	out, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", o)
	})
	if err != nil {
		t.Fatalf("chaos coordinate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("chaos sweep not verified:\n%s", out)
	}
}

// TestCoordinateBadInputs: unknown grid tables and transports fail
// fast with the valid choices in the message.
func TestCoordinateBadInputs(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	if _, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "T99", testOptions(t, []dispatch.Transport{&dispatch.InProcess{}}))
	}); err == nil || !strings.Contains(err.Error(), "unknown grid table") {
		t.Errorf("unknown grid: err = %v", err)
	}
	o := sweepOptions{transport: "carrier-pigeon", shards: 2, workDir: t.TempDir()}
	if _, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", o)
	}); err == nil || !strings.Contains(err.Error(), "unknown -transport") {
		t.Errorf("unknown transport: err = %v", err)
	}
}

// TestRunWorkerWritesValidEnvelope: the -worker mode contract that
// LocalExec relies on — parse the range, run the shard, write an
// envelope that passes full validation.
func TestRunWorkerWritesValidEnvelope(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 9}
	out := filepath.Join(t.TempDir(), "shard.json")
	runWorker(cfg, "A2", "1:3", out)

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("worker wrote nothing: %v", err)
	}
	f, err := exp.DecodeShardFile(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	g, _ := exp.GridDriverByID("A2")
	wcfg := cfg
	wcfg.Workers = 1
	plan := g.Plan(wcfg)
	if err := exp.ValidateShardFile(f, exp.CellRange{Lo: 1, Hi: 3}, exp.Fingerprint(wcfg, plan), plan.NumCells()); err != nil {
		t.Errorf("worker envelope invalid: %v", err)
	}
}

// TestCoordinateSharedDirBackend: the real shared-dir wiring — spool
// transport plus in-process drainers from buildTransports — end to
// end through coordinate.
func TestCoordinateSharedDirBackend(t *testing.T) {
	cfg := exp.Config{Quick: true, Seed: 3}
	o := sweepOptions{
		transport: "shared-dir",
		shards:    3,
		retries:   1,
		workDir:   t.TempDir(),
		verify:    true,
	}
	out, err := capture(t, func() error {
		return coordinate(context.Background(), cfg, "A2", o)
	})
	if err != nil {
		t.Fatalf("shared-dir coordinate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("shared-dir sweep not verified:\n%s", out)
	}
}
