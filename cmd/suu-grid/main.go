// Command suu-grid is the local multi-process sweep coordinator: it
// cuts a shardable grid table (T13, T14, T10, A2, A5) into contiguous
// cell ranges, forks one worker process per shard (capped at one
// running per core), streams each worker's partial-result envelope
// through a shard file, merges the envelopes with full
// gap/overlap/fingerprint validation, and renders the exact table the
// sequential path produces. Cell values are bit-identical to a
// single-process run by the grid harness's seed contract; only
// wall-clock columns depend on who computed them.
//
// A failed or killed worker does not sink the sweep: the merge
// reports exactly which cell range is missing (exp.MissingRangeError)
// and the coordinator re-issues just that range, up to -retries times
// per range, before giving up.
//
// Usage:
//
//	suu-grid -grid T13                  # shard across all cores
//	suu-grid -grid T13,T14 -quick       # several tables in sequence
//	suu-grid -grid T14 -shards 3        # explicit shard count
//	suu-grid -grid T13 -retries 2       # re-issue a lost range twice
//	suu-grid -grid T13 -json out.json   # keep the merged document
//	suu-grid -grid T13 -verify          # also run the whole plan
//	                                    # in-process and byte-compare
//	                                    # the two canonical documents
//	suu-grid -grid T13 -dir work -keep  # keep the shard envelopes
//
// Workers are re-executions of this binary (-worker mode) running the
// same plan slice via internal/exp, so the coordinator needs no other
// binary on PATH; each worker runs its cells on a single-goroutine
// pool (process-level parallelism replaces the in-process pool).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"suu/internal/exp"
)

func main() {
	var (
		grids   = flag.String("grid", "", "comma-separated shardable grid tables to run ("+exp.GridDriverIDs()+")")
		shards  = flag.Int("shards", 0, "worker process count (0 = one per core)")
		quick   = flag.Bool("quick", false, "smaller sweeps and repetition counts")
		seed    = flag.Int64("seed", 1, "random seed")
		retries = flag.Int("retries", 1, "times to re-issue a failed or missing shard range before giving up")
		jsonP   = flag.String("json", "", "write the merged canonical document here (single -grid only)")
		dir     = flag.String("dir", "", "shard-file directory (default: a temp dir)")
		keep    = flag.Bool("keep", false, "keep the shard envelopes instead of deleting them")
		verify  = flag.Bool("verify", false, "re-run the plan in-process and byte-compare against the merge")

		// Worker-mode flags: suu-grid re-executes itself with -worker to
		// run one shard. Internal, but documented so the process tree
		// reads honestly in ps output.
		worker    = flag.Bool("worker", false, "internal: run one shard and exit")
		cells     = flag.String("cells", "", "internal: worker cell range a:b")
		jsonCells = flag.String("json-cells", "", "internal: worker shard-envelope output path")
	)
	flag.Parse()
	if *grids == "" {
		log.Fatal("need -grid (shardable tables: " + exp.GridDriverIDs() + ")")
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed}

	if *worker {
		runWorker(cfg, *grids, *cells, *jsonCells)
		return
	}

	ids := strings.Split(*grids, ",")
	if *jsonP != "" && len(ids) != 1 {
		log.Fatal("-json needs exactly one -grid table")
	}
	workDir := *dir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "suu-grid-")
		if err != nil {
			log.Fatal(err)
		}
		workDir = tmp
		if !*keep {
			defer os.RemoveAll(tmp)
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		log.Fatal(err)
	}

	n := *shards
	if n <= 0 {
		n = runtime.NumCPU()
	}
	for _, id := range ids {
		gridID := strings.TrimSpace(id)
		if err := coordinate(cfg, gridID, n, *retries, workDir, *jsonP, *verify, processWorker(cfg, gridID)); err != nil {
			log.Fatal(err)
		}
	}
	if *keep {
		fmt.Printf("_shard envelopes kept in %s_\n", workDir)
	}
}

// runWorker is one forked process: execute the range, write the
// envelope, exit. Cells run on a single-goroutine pool — the
// coordinator already owns the core fan-out.
func runWorker(cfg exp.Config, gridID, cells, outPath string) {
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		log.Fatalf("worker: unknown grid table %q", gridID)
	}
	if outPath == "" {
		log.Fatal("worker: need -json-cells")
	}
	cfg.Workers = 1
	plan := g.Plan(cfg)
	r, err := exp.ParseCellRange(cells, plan.NumCells())
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	data, err := exp.EncodeShardFile(exp.RunShard(cfg, exp.ShardSpec{Plan: plan, Range: r}))
	if err != nil {
		log.Fatalf("worker: encode shard: %v", err)
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("worker: %v", err)
	}
}

// workerFunc executes one cell range and writes its shard envelope to
// outPath. The coordinator only depends on this contract, which is
// what lets the retry loop be unit-tested with an in-process worker
// that simulates a killed process.
type workerFunc func(r exp.CellRange, outPath string) error

// processWorker returns the production workerFunc: re-execute this
// binary in -worker mode for the range.
func processWorker(cfg exp.Config, gridID string) workerFunc {
	exe, err := os.Executable()
	if err != nil {
		return func(exp.CellRange, string) error { return err }
	}
	return func(r exp.CellRange, outPath string) error {
		args := []string{
			"-worker", "-grid", gridID,
			"-seed", fmt.Sprint(cfg.Seed),
			"-cells", r.String(),
			"-json-cells", outPath,
		}
		if cfg.Quick {
			args = append(args, "-quick")
		}
		cmd := exec.Command(exe, args...)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("worker %s: %v\n%s", r, err, out.String())
		}
		return nil
	}
}

// coordinate shards one grid table across worker processes, retries
// lost ranges, and merges the results. Worker failures are survivable
// — the merge names the missing [lo:hi) range and the coordinator
// re-issues exactly that range up to `retries` times per range; every
// other merge failure (overlap, fingerprint mismatch, corrupt
// envelope) stays fatal, because re-running cannot repair a sweep
// that is lying about its identity.
func coordinate(cfg exp.Config, gridID string, shards, retries int, workDir, jsonPath string, verify bool, run workerFunc) error {
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		return fmt.Errorf("unknown grid table %q: shardable tables are %s", gridID, exp.GridDriverIDs())
	}
	plan := g.Plan(cfg)
	total := plan.NumCells()
	ranges := exp.ShardRanges(total, shards)
	fmt.Printf("# %s: %d cells across %d worker processes (fingerprint %s)\n\n",
		plan.ID, total, len(ranges), exp.Fingerprint(cfg, plan))

	start := time.Now()
	paths := make([]string, len(ranges))
	errs := make([]error, len(ranges))
	// One running worker per core: the shard count may exceed the
	// machine (an 8-shard run of a 3-core box), and oversubscribing
	// cores would only distort the timing columns.
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, r := range ranges {
		paths[i] = filepath.Join(workDir, fmt.Sprintf("%s-shard-%d.json", strings.ToLower(plan.ID), i))
		wg.Add(1)
		go func(i int, r exp.CellRange) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = run(r, paths[i])
		}(i, r)
	}
	wg.Wait()

	// Collect the envelopes that made it. A worker that failed (or
	// died without writing) leaves a gap the merge will name; anything
	// it did write is suspect and excluded.
	var files []*exp.ShardFile
	for i, p := range paths {
		if errs[i] != nil {
			fmt.Printf("_shard %d %s failed (will re-issue): %v_\n\n", i, ranges[i], errs[i])
			continue
		}
		f, err := readShard(p)
		if err != nil {
			fmt.Printf("_shard %d %s unreadable (will re-issue): %v_\n\n", i, ranges[i], err)
			continue
		}
		files = append(files, f)
	}

	// Merge, re-issuing each missing range up to `retries` times. The
	// merge reports one gap at a time, so several lost workers drain
	// through successive rounds. Zero surviving envelopes is the
	// extreme gap — the whole plan is missing — and must enter the
	// same retry loop, not die on Merge's zero-shards error.
	attempts := map[exp.CellRange]int{}
	var m *exp.MergedGrid
	for {
		var err error
		if len(files) == 0 {
			err = &exp.MissingRangeError{Range: exp.CellRange{Lo: 0, Hi: total}}
		} else {
			m, err = exp.Merge(files)
		}
		if err == nil {
			break
		}
		var miss *exp.MissingRangeError
		if !errors.As(err, &miss) {
			return fmt.Errorf("merge: %v", err)
		}
		if attempts[miss.Range] >= retries {
			return fmt.Errorf("merge: %v (range re-issued %d time(s), giving up)", err, attempts[miss.Range])
		}
		attempts[miss.Range]++
		path := filepath.Join(workDir, fmt.Sprintf("%s-retry-%d-%d-%d.json",
			strings.ToLower(plan.ID), miss.Range.Lo, miss.Range.Hi, attempts[miss.Range]))
		fmt.Printf("_re-issuing missing range %s (attempt %d of %d)_\n\n", miss.Range, attempts[miss.Range], retries)
		if err := run(miss.Range, path); err != nil {
			// The retry worker failed too; loop so the attempt counter
			// decides whether to try again or give up.
			fmt.Printf("_retry of %s failed: %v_\n\n", miss.Range, err)
			continue
		}
		f, err := readShard(path)
		if err != nil {
			fmt.Printf("_retry envelope for %s unreadable: %v_\n\n", miss.Range, err)
			continue
		}
		files = append(files, f)
	}
	forkWall := time.Since(start)

	fmt.Println(g.Render(cfg, exp.ShardResults(files)).Markdown())
	fmt.Printf("_%s: %d shards forked, run, and merged in %.1fs_\n\n",
		plan.ID, len(ranges), forkWall.Seconds())

	out, err := m.JSON()
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("_merged document written to %s_\n\n", jsonPath)
	}
	if verify {
		want, err := exp.RunMerged(exp.Config{Quick: cfg.Quick, Seed: cfg.Seed}, plan).JSON()
		if err != nil {
			return err
		}
		if !bytes.Equal(out, want) {
			return fmt.Errorf("%s: merged document differs from the in-process sequential run — the hermetic-cell contract is broken", plan.ID)
		}
		fmt.Printf("_verify: %d-shard merge is byte-identical to the in-process run (%d bytes)_\n\n", len(ranges), len(out))
	}
	return nil
}

// readShard loads and decodes one envelope.
func readShard(path string) (*exp.ShardFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return exp.DecodeShardFile(data)
}
