// Command suu-grid is the fault-tolerant sweep coordinator: it cuts a
// shardable grid table (T13, T14, T10, A2, A5) into contiguous cell
// ranges and drives them through internal/dispatch — a Transport
// (worker processes, a shared spool directory, or in-process
// execution) under a Coordinator that owns the robustness policy:
// per-range deadlines, exponential backoff with deterministic jitter
// on re-issue, straggler detection with speculative re-slicing,
// per-runner health scoring with blacklisting, and graceful
// degradation down to in-process execution. Cell values are
// bit-identical to a single-process run by the grid harness's seed
// contract; only wall-clock columns depend on who computed them.
//
// Every delivered envelope is validated (range, schema, fingerprint,
// row indices, payload checksum) before it can reach the merge: a
// lost, truncated, bit-flipped, misindexed, or misdelivered envelope
// converts into a typed re-issuable range error, and the sweep either
// converges to the exact sequential bytes or fails loudly naming the
// missing [lo:hi) range.
//
// Usage:
//
//	suu-grid -grid T13                  # shard across all cores
//	suu-grid -grid T13,T14 -quick       # several tables in sequence
//	suu-grid -grid T14 -shards 6        # explicit shard count
//	suu-grid -grid T13 -retries 2       # re-issue a lost range twice
//	suu-grid -grid T13 -transport shared-dir -dir spool
//	                                    # spool job tickets into a
//	                                    # shared directory; local
//	                                    # drainers plus any external
//	                                    # `suu-grid -runner` processes
//	                                    # execute them
//	suu-grid -grid T13 -deadline 2m     # per-range hard deadline
//	suu-grid -grid T13 -straggler-factor 6
//	                                    # re-slice a range running past
//	                                    # 6x the median per-cell pace
//	suu-grid -grid T13 -chaos 0.36 -chaos-seed 51 -verify
//	                                    # chaos drill: inject all six
//	                                    # fault classes at a 36% total
//	                                    # rate and byte-compare the
//	                                    # merge against the in-process
//	                                    # run
//	suu-grid -grid T13 -json out.json   # keep the merged document
//	suu-grid -grid T13 -dir work -keep  # keep the shard envelopes
//	suu-grid -runner -dir spool         # serve a shared-dir spool:
//	                                    # claim tickets, write
//	                                    # envelopes, until interrupted
//
// SIGINT/SIGTERM cancel the sweep cleanly: in-flight worker process
// groups are killed (no orphaned grandchildren), and the coordinator
// exits non-zero with a partial-results summary naming exactly which
// cell ranges completed.
//
// Workers are re-executions of this binary (-worker mode) running the
// same plan slice via internal/exp, so the coordinator needs no other
// binary on PATH; each worker runs its cells on a single-goroutine
// pool (process-level parallelism replaces the in-process pool).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"suu/internal/dispatch"
	"suu/internal/exp"
)

func main() {
	var (
		grids     = flag.String("grid", "", "comma-separated shardable grid tables to run ("+exp.GridDriverIDs()+")")
		transport = flag.String("transport", "local", "how ranges reach runners: local (worker processes), shared-dir (spool tickets into -dir), inprocess")
		shards    = flag.Int("shards", 0, "initial shard-range count (0 = one per core)")
		quick     = flag.Bool("quick", false, "smaller sweeps and repetition counts")
		seed      = flag.Int64("seed", 1, "random seed")
		retries   = flag.Int("retries", 1, "times to re-issue a failed, corrupt, or missing shard range before giving up")
		deadline  = flag.Duration("deadline", 0, "per-range hard deadline (0 = none); a range past it is killed and re-issued")
		straggler = flag.Float64("straggler-factor", 4, "speculatively re-slice a range running past this multiple of the median per-cell pace (0 disables)")
		chaos     = flag.Float64("chaos", 0, "total injected fault rate in [0,1), split across all six fault classes (drop, delay, truncate, bitflip, duplicate, misindex)")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule")
		jsonP     = flag.String("json", "", "write the merged canonical document here (single -grid only)")
		dir       = flag.String("dir", "", "shard-envelope / spool directory (default: a temp dir)")
		keep      = flag.Bool("keep", false, "keep the shard envelopes instead of deleting them")
		verify    = flag.Bool("verify", false, "re-run the plan in-process and byte-compare against the merge")

		// Worker-mode flags: suu-grid re-executes itself with -worker to
		// run one shard. Internal, but documented so the process tree
		// reads honestly in ps output.
		worker    = flag.Bool("worker", false, "internal: run one shard and exit")
		cells     = flag.String("cells", "", "internal: worker cell range a:b")
		jsonCells = flag.String("json-cells", "", "internal: worker shard-envelope output path")

		runner = flag.Bool("runner", false, "serve a shared-dir spool at -dir: claim job tickets, execute them, write envelopes, until interrupted")
	)
	flag.Parse()
	cfg := exp.Config{Quick: *quick, Seed: *seed}

	if *worker {
		if *grids == "" {
			log.Fatal("worker: need -grid")
		}
		runWorker(cfg, *grids, *cells, *jsonCells)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *runner {
		if *dir == "" {
			log.Fatal("-runner needs -dir (the shared spool directory)")
		}
		fmt.Printf("_serving shared-dir spool %s (interrupt to stop)_\n", *dir)
		r := &dispatch.SharedDirRunner{Root: *dir}
		if err := r.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		return
	}

	if *grids == "" {
		log.Fatal("need -grid (shardable tables: " + exp.GridDriverIDs() + ")")
	}
	ids := strings.Split(*grids, ",")
	if *jsonP != "" && len(ids) != 1 {
		log.Fatal("-json needs exactly one -grid table")
	}
	workDir := *dir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "suu-grid-")
		if err != nil {
			log.Fatal(err)
		}
		workDir = tmp
		if !*keep {
			defer os.RemoveAll(tmp)
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		log.Fatal(err)
	}

	o := sweepOptions{
		transport: *transport,
		shards:    *shards,
		retries:   *retries,
		deadline:  *deadline,
		straggler: *straggler,
		chaos:     *chaos,
		chaosSeed: *chaosSeed,
		workDir:   workDir,
		jsonPath:  *jsonP,
		verify:    *verify,
	}
	for _, id := range ids {
		if err := coordinate(ctx, cfg, strings.TrimSpace(id), o); err != nil {
			// A canceled sweep already printed its partial-results
			// summary; exit non-zero either way.
			log.Fatal(err)
		}
	}
	if *keep {
		fmt.Printf("_shard envelopes kept in %s_\n", workDir)
	}
}

// runWorker is one forked process: execute the range, write the
// envelope, exit. Cells run on a single-goroutine pool — the
// coordinator already owns the core fan-out.
func runWorker(cfg exp.Config, gridID, cells, outPath string) {
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		log.Fatalf("worker: unknown grid table %q", gridID)
	}
	if outPath == "" {
		log.Fatal("worker: need -json-cells")
	}
	cfg.Workers = 1
	plan := g.Plan(cfg)
	r, err := exp.ParseCellRange(cells, plan.NumCells())
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
	data, err := exp.EncodeShardFile(exp.RunShard(cfg, exp.ShardSpec{Plan: plan, Range: r}))
	if err != nil {
		log.Fatalf("worker: encode shard: %v", err)
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		log.Fatalf("worker: %v", err)
	}
}

// sweepOptions is everything coordinate needs beyond the experiment
// config. transports, when non-nil, overrides the backend built from
// the transport name — the unit-test injection point.
type sweepOptions struct {
	transport  string
	shards     int
	retries    int
	deadline   time.Duration
	straggler  float64
	chaos      float64
	chaosSeed  int64
	workDir    string
	jsonPath   string
	verify     bool
	transports []dispatch.Transport
}

// buildTransports assembles the runner set for the chosen backend.
// The second return value starts in-process spool drainers for the
// shared-dir backend (stopped via the returned cancel).
func buildTransports(ctx context.Context, cfg exp.Config, gridID string, o sweepOptions, opts *dispatch.Options) ([]dispatch.Transport, func(), error) {
	cleanup := func() {}
	cores := runtime.NumCPU()
	var ts []dispatch.Transport
	switch o.transport {
	case "local":
		exe, err := os.Executable()
		if err != nil {
			return nil, cleanup, err
		}
		for i := 0; i < cores; i++ {
			ts = append(ts, &dispatch.LocalExec{
				ID:  fmt.Sprintf("local-%d", i),
				Exe: exe,
				Dir: o.workDir,
				Args: func(job dispatch.Job, outPath string) []string {
					args := []string{
						"-worker", "-grid", gridID,
						"-seed", fmt.Sprint(cfg.Seed),
						"-cells", job.Range.String(),
						"-json-cells", outPath,
					}
					if cfg.Quick {
						args = append(args, "-quick")
					}
					return args
				},
			})
		}
	case "shared-dir":
		// One spool transport; parallelism comes from how many runners
		// drain it. Local drainers start here so the backend works
		// standalone; external `suu-grid -runner -dir <spool>` processes
		// (other machines on a shared filesystem) join the same spool
		// and claim tickets by atomic rename.
		sd := &dispatch.SharedDir{ID: "dir:" + o.workDir, Root: o.workDir}
		ts = append(ts, sd)
		opts.MaxInFlightPerRunner = cores
		dctx, dcancel := context.WithCancel(ctx)
		for i := 0; i < cores; i++ {
			go func() {
				r := &dispatch.SharedDirRunner{Root: o.workDir, Poll: 10 * time.Millisecond}
				r.Run(dctx)
			}()
		}
		cleanup = dcancel
	case "inprocess":
		for i := 0; i < cores; i++ {
			ts = append(ts, &dispatch.InProcess{ID: fmt.Sprintf("inproc-%d", i)})
		}
	default:
		return nil, cleanup, fmt.Errorf("unknown -transport %q (local, shared-dir, inprocess)", o.transport)
	}

	if o.chaos > 0 {
		// Chaos wraps a single runner so the per-(range,attempt) fault
		// schedule is owned by one injector and reproducible by seed;
		// in-flight parallelism moves to MaxInFlightPerRunner.
		opts.MaxInFlightPerRunner = cores
		ts = []dispatch.Transport{&dispatch.Flaky{
			Inner: ts[0],
			Cfg: dispatch.FaultConfig{
				Seed:  o.chaosSeed,
				Rates: dispatch.UniformRates(o.chaos),
			},
		}}
	}
	return ts, cleanup, nil
}

// coordinate runs one grid table through the dispatch layer and
// renders the merged table. On failure — a range out of re-issue
// budget, or the sweep interrupted — it prints a partial-results
// summary naming exactly which cell ranges completed, then returns
// the error.
func coordinate(ctx context.Context, cfg exp.Config, gridID string, o sweepOptions) error {
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		return fmt.Errorf("unknown grid table %q: shardable tables are %s", gridID, exp.GridDriverIDs())
	}
	plan := g.Plan(cfg)
	total := plan.NumCells()
	n := o.shards
	if n <= 0 {
		n = runtime.NumCPU()
	}

	opts := dispatch.Options{
		Shards:          n,
		MaxAttempts:     o.retries + 1,
		Deadline:        o.deadline,
		StragglerFactor: o.straggler,
		Seed:            cfg.Seed,
		Logf: func(format string, args ...any) {
			fmt.Printf("_"+format+"_\n\n", args...)
		},
	}
	transports := o.transports
	if transports == nil {
		var cleanup func()
		var err error
		transports, cleanup, err = buildTransports(ctx, cfg, gridID, o, &opts)
		if err != nil {
			return err
		}
		defer cleanup()
	}

	mode := o.transport
	if o.chaos > 0 {
		mode = fmt.Sprintf("%s, chaos %.2f seed %d", mode, o.chaos, o.chaosSeed)
	}
	fmt.Printf("# %s: %d cells, %d shards across %d runner(s) via %s (fingerprint %s)\n\n",
		plan.ID, total, n, len(transports), mode, exp.Fingerprint(cfg, plan))

	c := dispatch.New(transports, opts)
	m, files, stats, err := c.Run(ctx, cfg, gridID, plan)
	if err != nil {
		// Partial-results summary: exactly which ranges made it, so a
		// follow-up sweep (or a human with suu-bench -cells) can resume
		// surgically.
		done := dispatch.CompletedRanges(files)
		cellsDone := 0
		names := make([]string, len(done))
		for i, r := range done {
			names[i] = r.String()
			cellsDone += r.Len()
		}
		if len(names) == 0 {
			names = []string{"none"}
		}
		fmt.Printf("_%s: sweep did not complete; %d/%d cells landed; completed ranges: %s_\n\n",
			plan.ID, cellsDone, total, strings.Join(names, ", "))
		return err
	}

	fmt.Println(g.Render(cfg, exp.ShardResults(files)).Markdown())
	fmt.Printf("_%s: %d envelopes accepted in %.1fs (%d re-issues, %d re-slices, %d faults detected, %d degradations)_\n\n",
		plan.ID, len(files), stats.WallMS/1000, stats.ReIssues, stats.ReSlices, stats.FaultsDetected, stats.Degradations)
	for _, r := range stats.Runners {
		if r.Jobs > 0 || r.Failures > 0 || r.Blacklisted {
			note := ""
			if r.Blacklisted {
				note = " [blacklisted]"
			}
			fmt.Printf("_runner %s: %d jobs, %d cells, %.0f cells/s, %d failures%s_\n",
				r.Name, r.Jobs, r.Cells, r.CellsPerSec, r.Failures, note)
		}
	}
	fmt.Println()

	out, err := m.JSON()
	if err != nil {
		return err
	}
	if o.jsonPath != "" {
		if err := os.WriteFile(o.jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("_merged document written to %s_\n\n", o.jsonPath)
	}
	if o.verify {
		want, err := exp.RunMerged(exp.Config{Quick: cfg.Quick, Seed: cfg.Seed}, plan).JSON()
		if err != nil {
			return err
		}
		if !bytes.Equal(out, want) {
			return fmt.Errorf("%s: merged document differs from the in-process sequential run — the hermetic-cell contract is broken", plan.ID)
		}
		fmt.Printf("_verify: merge is byte-identical to the in-process run (%d bytes)_\n\n", len(out))
	}
	return nil
}
