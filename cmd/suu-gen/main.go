// Command suu-gen generates SUU instances as JSON on stdout.
//
// Usage:
//
//	suu-gen -family chains -jobs 20 -machines 5 -chains 4 -seed 7
//
// Families: independent, chains, out-tree, in-tree, mixed-forest,
// layered, layered-width, grid, project. Shapes: uniform, specialist,
// bimodal, power-law, correlated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"suu/internal/model"
	"suu/internal/workload"
)

func main() {
	var (
		family   = flag.String("family", "independent", "dag family: independent|chains|out-tree|in-tree|mixed-forest|layered|layered-width|grid|project")
		jobs     = flag.Int("jobs", 12, "number of jobs")
		machines = flag.Int("machines", 4, "number of machines")
		shape    = flag.String("shape", "uniform", "probability shape: uniform|specialist|bimodal|power-law|correlated")
		lo       = flag.Float64("lo", 0.05, "probability lower bound")
		hi       = flag.Float64("hi", 0.95, "probability upper bound")
		chains   = flag.Int("chains", 3, "chain count (family=chains)")
		comps    = flag.Int("components", 3, "component count (family=mixed-forest)")
		layers   = flag.Int("layers", 3, "layer count (family=layered)")
		width    = flag.Int("width", 4, "layer width (family=layered-width)")
		density  = flag.Float64("density", 0.3, "edge density (family=layered, layered-width)")
		seed     = flag.Int64("seed", 1, "random seed")
		dot      = flag.Bool("dot", false, "emit Graphviz dot of the precedence dag (with its chain decomposition) instead of JSON")
	)
	flag.Parse()

	var ps workload.ProbShape
	switch *shape {
	case "uniform":
		ps = workload.Uniform
	case "specialist":
		ps = workload.Specialist
	case "bimodal":
		ps = workload.Bimodal
	case "power-law":
		ps = workload.PowerLaw
	case "correlated":
		ps = workload.Correlated
	default:
		log.Fatalf("unknown shape %q", *shape)
	}
	cfg := workload.Config{Jobs: *jobs, Machines: *machines, Shape: ps, Lo: *lo, Hi: *hi, Seed: *seed}

	var in *model.Instance
	switch *family {
	case "independent":
		in = workload.Independent(cfg)
	case "chains":
		in = workload.Chains(cfg, *chains)
	case "out-tree":
		in = workload.OutTree(cfg)
	case "in-tree":
		in = workload.InTree(cfg)
	case "mixed-forest":
		in = workload.MixedForest(cfg, *comps)
	case "layered":
		in = workload.Layered(cfg, *layers, *density)
	case "layered-width":
		in = workload.LayeredWidth(cfg, *width, *density)
	case "grid":
		in = workload.GridPipeline(*jobs, *machines, *seed)
	case "project":
		in = workload.ProjectPlan(*jobs, *machines, *seed)
	default:
		log.Fatalf("unknown family %q", *family)
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(in.Prec.DOTDecomposition(*family, in.Prec.ChainDecomposition()))
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d jobs, %d machines, class %s\n",
		*family, in.N, in.M, in.Prec.Classify())
}
