// Command suu-sim reads an SUU instance (JSON, from suu-gen or by
// hand), constructs a schedule with the chosen algorithm, and reports
// an estimated expected makespan with diagnostics.
//
// Usage:
//
//	suu-gen -family chains -jobs 16 | suu-sim -alg auto -reps 500
//
// The -alg values come straight from the solver registry
// (internal/solve) — run `suu-sim -list` for the current catalogue
// with theorems, applicable precedence classes, and guarantees; the
// list cannot drift from the implementation because the flag's
// accepted values and the listing are generated from the same
// registrations. The special value "auto" dispatches to the strongest
// registered construction for the instance's precedence class
// (exactly like the library's suu.Solve).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
)

func main() {
	var (
		gantt    = flag.Int("gantt", 0, "print the first N steps of an oblivious schedule as a Gantt chart")
		stats    = flag.Bool("stats", false, "print prefix statistics (utilization, job windows, mass)")
		export   = flag.String("export", "", "write the oblivious schedule JSON to this file")
		alg      = flag.String("alg", "auto", "algorithm: auto|"+strings.Join(solve.IDs(), "|"))
		list     = flag.Bool("list", false, "list registered solvers (id, theorem, classes, guarantee) and exit")
		reps     = flag.Int("reps", 200, "Monte Carlo repetitions")
		maxSteps = flag.Int("max-steps", 1_000_000, "per-run step cap")
		seed     = flag.Int64("seed", 1, "seed for construction and simulation")
		file     = flag.String("f", "-", "instance file (default stdin)")
	)
	flag.Parse()

	if *list {
		fmt.Print("auto: strongest registered construction for the instance's class (suu.Solve dispatch)\n\n")
		fmt.Print(solve.Describe())
		fmt.Print("\nDiagnostics: -stats prints prefix statistics for oblivious schedules;\nfor -alg optimal it prints the value iteration's search counters\n(states, layers, assignments enumerated/pruned, closed-form hits).\nIt also reports the estimation engine the simulator selected\n(generic, compiled, bit-parallel lanes, compiled-adaptive, dynamic-step).\n")
		return
	}

	var r io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	in := &model.Instance{}
	if err := json.NewDecoder(r).Decode(in); err != nil {
		log.Fatalf("decode instance: %v", err)
	}

	par := core.DefaultParams()
	par.Seed = *seed

	var res *solve.Result
	var err error
	if *alg == "auto" {
		_, res, err = solve.Auto(in, par)
	} else {
		sol, ok := solve.Get(*alg)
		if !ok {
			log.Fatalf("unknown algorithm %q (run suu-sim -list for the catalogue)", *alg)
		}
		res, err = sol.Build(in, par)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: %d jobs, %d machines, class %s, width %d, depth %d\n",
		in.N, in.M, in.Prec.Classify(), in.Prec.Width(), in.Prec.Depth())
	fmt.Printf("schedule: %s\n", res.Detail)
	if obl, ok := res.Policy.(*sched.Oblivious); ok {
		if *gantt > 0 {
			fmt.Print(obl.Gantt(*gantt))
		}
		if *stats {
			fmt.Print(sched.AnalyzePrefix(in, obl))
		}
		if *export != "" {
			data, err := json.MarshalIndent(obl, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*export, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("schedule written to %s\n", *export)
		}
	} else {
		if *gantt > 0 || *export != "" {
			fmt.Println("(gantt/export ignored: schedule is adaptive)")
		}
		if *stats {
			if st := res.Exact; st != nil {
				fmt.Printf("exact search: %d closed states over %d layers (max eligible antichain %d, %d workers)\n",
					st.States, st.Layers, st.MaxEligible, st.Workers)
				fmt.Printf("  %d assignments enumerated, %d pruned by incumbent, %d transition entries, %d closed-form states\n",
					st.Assignments, st.Pruned, st.Transitions, st.ClosedForm)
			} else {
				fmt.Println("(stats ignored: adaptive schedule has no oblivious prefix and no search counters)")
			}
		}
	}

	sum, incomplete, eng := sim.EstimateInfo(in, res.Policy, *reps, *maxSteps, *seed)
	if *stats {
		fmt.Printf("engine: %s", eng.Engine)
		if eng.Lanes > 0 {
			fmt.Printf(", %d lanes", eng.Lanes)
		}
		if eng.States > 0 {
			fmt.Printf(", %d compiled states", eng.States)
		}
		if eng.Spliced {
			fmt.Print(", terminal splice")
		}
		fmt.Println()
	}
	fmt.Printf("E[makespan] ≈ %s", sum)
	if incomplete > 0 {
		fmt.Printf("  (%d/%d runs hit the step cap!)", incomplete, *reps)
	}
	fmt.Println()
}
