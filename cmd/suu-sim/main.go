// Command suu-sim reads an SUU instance (JSON, from suu-gen or by
// hand), constructs a schedule with the chosen algorithm, and reports
// an estimated expected makespan with diagnostics.
//
// Usage:
//
//	suu-gen -family chains -jobs 16 | suu-sim -alg auto -reps 500
//
// Algorithms: auto (class dispatch), adaptive, comb-oblivious,
// lp-oblivious, chains, forest, optimal (small instances), and the
// baselines greedy, round-robin, all-on-one, random.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/sim"
)

func main() {
	var (
		gantt    = flag.Int("gantt", 0, "print the first N steps of an oblivious schedule as a Gantt chart")
		stats    = flag.Bool("stats", false, "print prefix statistics (utilization, job windows, mass)")
		export   = flag.String("export", "", "write the oblivious schedule JSON to this file")
		alg      = flag.String("alg", "auto", "algorithm: auto|adaptive|learning|comb-oblivious|lp-oblivious|chains|forest|optimal|greedy|round-robin|all-on-one|random")
		reps     = flag.Int("reps", 200, "Monte Carlo repetitions")
		maxSteps = flag.Int("max-steps", 1_000_000, "per-run step cap")
		seed     = flag.Int64("seed", 1, "seed for construction and simulation")
		file     = flag.String("f", "-", "instance file (default stdin)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	in := &model.Instance{}
	if err := json.NewDecoder(r).Decode(in); err != nil {
		log.Fatalf("decode instance: %v", err)
	}

	par := core.DefaultParams()
	par.Seed = *seed
	var pol sched.Policy
	var info string

	build := func() (sched.Policy, string) {
		switch *alg {
		case "auto", "forest":
			res, err := core.SUUForest(in, par)
			if err != nil {
				log.Fatal(err)
			}
			return res.Schedule, fmt.Sprintf("forest pipeline (%s decomposition, %d blocks, lower bound %.2f)",
				res.Decomposition.Method, res.Decomposition.Width(), res.LowerBound)
		case "adaptive":
			return &core.AdaptivePolicy{In: in}, "adaptive SUU-I-ALG"
		case "learning":
			return core.NewLearningPolicy(in, 0.7), "online learner (§5 extension, optimism 0.7)"
		case "comb-oblivious":
			res, err := core.SUUIOblivious(in, par)
			if err != nil {
				log.Fatal(err)
			}
			return res.Schedule, fmt.Sprintf("SUU-I-OBL (t=%d, rounds=%d, core %d steps)", res.TGuess, res.Rounds, res.CoreLength)
		case "lp-oblivious":
			res, err := core.SUUIndependentLP(in, par)
			if err != nil {
				log.Fatal(err)
			}
			return res.Schedule, fmt.Sprintf("LP oblivious (T*=%.2f, lower bound %.2f)", res.TStar, res.LowerBound)
		case "chains":
			res, err := core.SUUChains(in, par)
			if err != nil {
				log.Fatal(err)
			}
			return res.Schedule, fmt.Sprintf("chains pipeline (T*=%.2f, Πmax=%d, congestion=%d)", res.TStar, res.MaxLoad, res.Congestion)
		case "optimal":
			reg, topt, err := opt.OptimalRegimen(in)
			if err != nil {
				log.Fatal(err)
			}
			return reg, fmt.Sprintf("optimal regimen (exact E[makespan]=%.4f)", topt)
		case "greedy":
			return &core.GreedyMaxPPolicy{In: in}, "baseline greedy-maxp"
		case "round-robin":
			return &core.RoundRobinPolicy{In: in}, "baseline round-robin"
		case "all-on-one":
			return &core.AllOnOnePolicy{In: in}, "baseline all-on-one"
		case "random":
			return &core.RandomPolicy{In: in, Rng: rand.New(rand.NewSource(*seed))}, "baseline random"
		default:
			log.Fatalf("unknown algorithm %q", *alg)
			return nil, ""
		}
	}
	pol, info = build()

	fmt.Printf("instance: %d jobs, %d machines, class %s, width %d, depth %d\n",
		in.N, in.M, in.Prec.Classify(), in.Prec.Width(), in.Prec.Depth())
	fmt.Printf("schedule: %s\n", info)
	if obl, ok := pol.(*sched.Oblivious); ok {
		if *gantt > 0 {
			fmt.Print(obl.Gantt(*gantt))
		}
		if *stats {
			fmt.Print(sched.AnalyzePrefix(in, obl))
		}
		if *export != "" {
			data, err := json.MarshalIndent(obl, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*export, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("schedule written to %s\n", *export)
		}
	} else if *gantt > 0 || *export != "" || *stats {
		fmt.Println("(gantt/export/stats ignored: schedule is adaptive)")
	}

	sum, incomplete := sim.Estimate(in, pol, *reps, *maxSteps, *seed)
	fmt.Printf("E[makespan] ≈ %s", sum)
	if incomplete > 0 {
		fmt.Printf("  (%d/%d runs hit the step cap!)", incomplete, *reps)
	}
	fmt.Println()
}
