// Command suu-serve runs the scheduling stack as a long-lived HTTP
// daemon: the solver registry, the simulation engines, and the LP
// layer behind a JSON API, with content-addressed caches (compiled
// engines, LP warm-start bases, response bodies) in front of every
// expensive step. See internal/serve for the endpoint catalogue and
// the caching contract, and README "Serving" for examples.
//
// Usage:
//
//	suu-serve -addr :8080
//	curl -s localhost:8080/v1/solvers
//	suu-gen -family chains -jobs 16 | curl -s -X POST --data-binary @- \
//	    localhost:8080/v1/instances
//	curl -s -X POST -d '{"instance_id":"<id>","solver":"auto"}' \
//	    localhost:8080/v1/solve
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"suu/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		resultMB  = flag.Int64("result-cache-mb", 64, "result cache budget (solve/estimate responses and schedules), MiB")
		engineMB  = flag.Int64("engine-cache-mb", 128, "compiled-engine cache budget, MiB")
		basisMB   = flag.Int64("basis-cache-mb", 4, "LP warm-start basis cache budget, MiB")
		instMB    = flag.Int64("instance-cache-mb", 32, "submitted-instance store budget, MiB")
		maxReps   = flag.Int("max-reps", 1<<17, "per-request repetition cap (direct or via the ci_half_width loop)")
		workers   = flag.Int("workers", 0, "estimation concurrency per request (0 = GOMAXPROCS; results are bit-identical at any setting)")
		drainSecs = flag.Int("drain-secs", 10, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	handler := serve.New(serve.Config{
		ResultCacheBytes:   *resultMB << 20,
		EngineCacheBytes:   *engineMB << 20,
		BasisCacheBytes:    *basisMB << 20,
		InstanceCacheBytes: *instMB << 20,
		MaxReps:            *maxReps,
		Workers:            *workers,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("suu-serve listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received, draining for up to %ds", *drainSecs)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}
