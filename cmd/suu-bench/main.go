// Command suu-bench regenerates the experiment tables of
// EXPERIMENTS.md — the empirical validation of every theorem of the
// paper plus the ablations (see DESIGN.md §6 for the index) — and the
// simulation-engine throughput record BENCH_sim.json.
//
// Usage:
//
//	suu-bench                 # run everything (minutes)
//	suu-bench -quick          # smaller sweeps (tens of seconds)
//	suu-bench -only T6,A2     # selected experiments
//	suu-bench -workers 1      # force the sequential harness
//	                          # (default 0 = one worker per CPU; the
//	                          # tables are bit-identical either way)
//	suu-bench -json BENCH_sim.json
//	                          # also benchmark the sim engine per
//	                          # workload family, per-solver
//	                          # construction cost (sparse vs dense LP
//	                          # side by side), the LP layer in
//	                          # isolation, the adaptive_engine and
//	                          # bitparallel_engine sections (scalar
//	                          # table walk vs generic, and the 64-lane
//	                          # bit-parallel engine vs scalar compiled,
//	                          # tail remainder included), and
//	                          # grid-harness throughput, and write the
//	                          # JSON perf record; CI uploads it so the
//	                          # perf trajectory accumulates per PR
//	suu-bench -lp             # benchmark ONLY the LP layer (build +
//	                          # solve per family/size, sparse revised
//	                          # simplex vs dense tableau) and print
//	                          # the comparison table; with -json the
//	                          # record holds just the lp_bench section
//	suu-bench -exact          # benchmark ONLY the exact solver (the
//	                          # layered value iteration per family,
//	                          # exhaustive-DP oracle side by side where
//	                          # feasible) and print the comparison
//	                          # table; with -json the record holds just
//	                          # the exact_solver section
//	suu-bench -serve          # run ONLY the serving-layer load harness
//	                          # (1000 concurrent clients, mixed
//	                          # repeat/fresh workload, cache-hit vs
//	                          # cold latency, coalescing counters) and
//	                          # print the summary; with -json the
//	                          # record holds just the serve section
//
// Distributed sweeps (see README "Distributed sweeps"): a shardable
// grid table (T13, T14, the T15 dynamic-scenario grid, the T10
// solver sweep, the A2/A5 ablation grids) can be cut into half-open
// cell ranges, each executed in its own process, and merged
// bit-identically:
//
//	suu-bench -grid T13 -cells 0:12 -json-cells s0.json
//	                          # run cells [0:12) of T13's plan and
//	                          # write the partial-result envelope
//	suu-bench -grid T13 -shard 1/4 -json-cells s1.json
//	                          # same, with the range computed as
//	                          # shard 1 of 4 (0-indexed, near-equal)
//	suu-bench -grid T13 -json-cells full.json
//	                          # the whole plan in one envelope
//	suu-bench -merge -json-cells out.json s0.json s1.json ...
//	                          # validate + merge shard envelopes into
//	                          # the canonical document (gaps,
//	                          # overlaps, and fingerprint mismatches
//	                          # are hard errors) and render the table
//
// The merged output is byte-identical no matter how the cells were
// sharded; cmd/suu-grid drives the whole fork/merge loop locally and
// the CI grid matrix proves the equality on every push. Figure
// reproductions (F1, F3) live in suu-trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"suu/internal/dispatch"
	"suu/internal/exp"
	"suu/internal/serve"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "smaller sweeps and repetition counts")
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "grid-harness worker pool size (0 = GOMAXPROCS, 1 = sequential; tables are identical at any value)")
		jsonPath  = flag.String("json", "", "write engine benchmark results to this file (e.g. BENCH_sim.json)")
		lpOnly    = flag.Bool("lp", false, "benchmark the LP layer in isolation and exit (skips the experiment drivers)")
		exactOnly = flag.Bool("exact", false, "benchmark the exact solver in isolation and exit (skips the experiment drivers)")
		serveOnly = flag.Bool("serve", false, "run the serving-layer load harness in isolation and exit (skips the experiment drivers)")
		commit    = flag.String("commit", os.Getenv("GITHUB_SHA"), "commit SHA to embed in the -json perf record (defaults to $GITHUB_SHA)")

		gridID    = flag.String("grid", "", "run one shardable grid table (T13, T14, T15, T10, A2, A5) through the cell-range path")
		cellsFlag = flag.String("cells", "", "with -grid: half-open cell range a:b to execute (default: all cells)")
		shardFlag = flag.String("shard", "", "with -grid: execute shard k/N (0-indexed) of the plan's cells")
		jsonCells = flag.String("json-cells", "", "with -grid/-merge: write the shard envelope / merged document here")
		merge     = flag.Bool("merge", false, "merge the shard envelopes given as arguments into the canonical document")
	)
	flag.Parse()
	cfg := exp.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	if *merge || *gridID != "" {
		if *jsonPath != "" {
			log.Fatal("-json is the BENCH_sim.json perf record and does not apply to -grid/-merge; use -json-cells for the envelope/merged document")
		}
	}
	if *merge {
		runMerge(*jsonCells, flag.Args())
		return
	}
	if *gridID != "" {
		runGridRange(cfg, *gridID, *cellsFlag, *shardFlag, *jsonCells)
		return
	}
	if *cellsFlag != "" || *shardFlag != "" || *jsonCells != "" {
		log.Fatal("-cells/-shard/-json-cells need -grid (or -merge for -json-cells)")
	}

	exclusive := 0
	for _, f := range []bool{*lpOnly, *exactOnly, *serveOnly} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		log.Fatal("-lp, -exact and -serve are mutually exclusive")
	}
	if *serveOnly {
		start := time.Now()
		b := serve.Benchmark(cfg)
		fmt.Printf("serve storm: %d clients, %d requests in %.0fms (%.0f req/s)\n",
			b.Clients, b.Requests, b.WallMS, b.RequestsPerSec)
		fmt.Printf("  cold solve p50 %.3fms p99 %.3fms | cache-hit p50 %.4fms p99 %.4fms | speedup %.0fx\n",
			b.ColdP50MS, b.ColdP99MS, b.HitP50MS, b.HitP99MS, b.SpeedupP50)
		fmt.Printf("  hit rate %.2f | %d hits, %d misses, %d coalesced, %d evictions | %d errors\n",
			b.HitRate, b.Hits, b.Misses, b.Coalesced, b.Evictions, b.Errors)
		fmt.Printf("_serve load harness completed in %.1fs_\n", time.Since(start).Seconds())
		if *jsonPath != "" {
			file := exp.NewSimBenchFile(cfg)
			file.Commit = *commit
			file.Serve = b
			out, err := exp.WriteSimBenchJSON(file)
			if err != nil {
				log.Fatalf("marshal serve benchmarks: %v", err)
			}
			if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
				log.Fatalf("write %s: %v", *jsonPath, err)
			}
		}
		return
	}
	if *exactOnly {
		start := time.Now()
		rows := exp.ExactSolverBenchmarks(cfg)
		fmt.Println(exp.ExactSolverTable(rows).Markdown())
		fmt.Printf("_exact-solver benchmarks completed in %.1fs_\n", time.Since(start).Seconds())
		if *jsonPath != "" {
			file := exp.NewSimBenchFile(cfg)
			file.Commit = *commit
			file.ExactSolver = rows
			out, err := exp.WriteSimBenchJSON(file)
			if err != nil {
				log.Fatalf("marshal exact-solver benchmarks: %v", err)
			}
			if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
				log.Fatalf("write %s: %v", *jsonPath, err)
			}
		}
		return
	}

	if *lpOnly {
		start := time.Now()
		rows := exp.LPBenchmarks(cfg)
		fmt.Println(exp.LPBenchTable(rows).Markdown())
		fmt.Printf("_LP benchmarks completed in %.1fs_\n", time.Since(start).Seconds())
		if *jsonPath != "" {
			file := exp.NewSimBenchFile(cfg)
			file.Commit = *commit
			file.LPBench = rows
			out, err := exp.WriteSimBenchJSON(file)
			if err != nil {
				log.Fatalf("marshal LP benchmarks: %v", err)
			}
			if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
				log.Fatalf("write %s: %v", *jsonPath, err)
			}
		}
		return
	}

	ids := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("# SUU experiment run (%s, quick=%v, seed=%d)\n\n",
		time.Now().Format("2006-01-02"), *quick, *seed)
	ran := 0
	for _, drv := range exp.Drivers {
		if len(ids) > 0 && !ids[drv.ID] {
			continue
		}
		start := time.Now()
		table := drv.Run(cfg)
		fmt.Println(table.Markdown())
		fmt.Printf("_%s completed in %.1fs_\n\n", drv.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 && *only != "" {
		log.Fatalf("no experiment matched -only=%q", *only)
	}

	if *jsonPath != "" {
		start := time.Now()
		file := exp.SimBenchmarks(cfg)
		file.Commit = *commit
		// The dispatch and serve sections are filled here rather than
		// inside exp.SimBenchmarks: those layers live above exp, so
		// their benchmarks do too.
		file.Dispatch = dispatch.Benchmark(cfg)
		file.Serve = serve.Benchmark(cfg)
		out, err := exp.WriteSimBenchJSON(file)
		if err != nil {
			log.Fatalf("marshal engine benchmarks: %v", err)
		}
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonPath, err)
		}
		for _, s := range file.Skipped {
			fmt.Fprintf(os.Stderr, "warning: benchmark family skipped: %s\n", s)
		}
		fmt.Printf("_engine benchmarks (%d families) written to %s in %.1fs_\n",
			len(file.Benchmarks), *jsonPath, time.Since(start).Seconds())
	}
}

// runGridRange executes a cell range of one shardable grid table and
// writes the partial-result envelope.
func runGridRange(cfg exp.Config, gridID, cellsFlag, shardFlag, jsonCells string) {
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		log.Fatalf("unknown grid table %q: shardable tables are %s", gridID, exp.GridDriverIDs())
	}
	plan := g.Plan(cfg)
	total := plan.NumCells()
	r := exp.CellRange{Lo: 0, Hi: total}
	var err error
	switch {
	case cellsFlag != "" && shardFlag != "":
		log.Fatal("-cells and -shard are mutually exclusive")
	case cellsFlag != "":
		r, err = exp.ParseCellRange(cellsFlag, total)
	case shardFlag != "":
		r, err = exp.ParseShard(shardFlag, total)
	}
	if err != nil {
		log.Fatal(err)
	}
	if r.Len() != total && jsonCells == "" {
		// A partial range exists only to feed a merge; without an
		// envelope destination the cells would be computed and thrown
		// away.
		log.Fatal("-cells/-shard runs a partial range: add -json-cells to keep the shard envelope")
	}
	start := time.Now()
	shard := exp.RunShard(cfg, exp.ShardSpec{Plan: plan, Range: r})
	if jsonCells != "" {
		data, err := exp.EncodeShardFile(shard)
		if err != nil {
			log.Fatalf("encode shard: %v", err)
		}
		if err := os.WriteFile(jsonCells, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", jsonCells, err)
		}
	}
	if r.Len() == total {
		// A full-range run is just the sequential table with a receipt.
		results := exp.ShardResults([]*exp.ShardFile{shard})
		fmt.Println(g.Render(cfg, results).Markdown())
	}
	fmt.Printf("_%s cells [%s) of %d (fingerprint %s) completed in %.1fs_\n",
		plan.ID, r, total, shard.Fingerprint, time.Since(start).Seconds())
}

// runMerge validates and merges shard envelopes into the canonical
// document, rendering the table when the plan is a known grid table.
func runMerge(jsonCells string, paths []string) {
	if len(paths) == 0 {
		log.Fatal("-merge needs shard files as arguments")
	}
	var shards []*exp.ShardFile
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			log.Fatal(err)
		}
		f, err := exp.DecodeShardFile(data)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		shards = append(shards, f)
	}
	m, err := exp.Merge(shards)
	if err != nil {
		log.Fatalf("merge of %d shards failed: %v", len(shards), err)
	}
	out, err := m.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if jsonCells == "" {
		// No output file: the canonical document IS the stdout payload.
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(jsonCells, out, 0o644); err != nil {
		log.Fatalf("write %s: %v", jsonCells, err)
	}
	// Render the table only when this binary's plan is the one the
	// envelopes were cut from: after plan drift (a point added or
	// removed in a newer binary) the merged document is still valid,
	// but rendering it against the re-derived plan would mis-group or
	// slice out of bounds.
	if g, ok := exp.GridDriverByID(m.Plan); ok {
		cfg := exp.Config{Quick: m.Quick, Seed: m.Seed}
		if fp := exp.Fingerprint(cfg, g.Plan(cfg)); fp == m.Fingerprint {
			fmt.Println(g.Render(cfg, exp.ShardResults(shards)).Markdown())
		} else {
			fmt.Fprintf(os.Stderr, "note: %s plan in this binary (fingerprint %s) differs from the envelopes' (%s); merged document written, table rendering skipped\n",
				m.Plan, fp, m.Fingerprint)
		}
	}
	fmt.Printf("_merged %d shards (%d cells, plan %s, fingerprint %s) into %s_\n",
		len(shards), m.TotalCells, m.Plan, m.Fingerprint, jsonCells)
}
