// Command suu-bench regenerates the experiment tables of
// EXPERIMENTS.md — the empirical validation of every theorem of the
// paper plus the ablations (see DESIGN.md §6 for the index) — and the
// simulation-engine throughput record BENCH_sim.json.
//
// Usage:
//
//	suu-bench                 # run everything (minutes)
//	suu-bench -quick          # smaller sweeps (tens of seconds)
//	suu-bench -only T6,A2     # selected experiments
//	suu-bench -workers 1      # force the sequential harness
//	                          # (default 0 = one worker per CPU; the
//	                          # tables are bit-identical either way)
//	suu-bench -json BENCH_sim.json
//	                          # also benchmark the sim engine per
//	                          # workload family, per-solver
//	                          # construction cost (sparse vs dense LP
//	                          # side by side), the LP layer in
//	                          # isolation, and grid-harness
//	                          # throughput, and write the JSON perf
//	                          # record; CI uploads it so the perf
//	                          # trajectory accumulates per PR
//	suu-bench -lp             # benchmark ONLY the LP layer (build +
//	                          # solve per family/size, sparse revised
//	                          # simplex vs dense tableau) and print
//	                          # the comparison table; with -json the
//	                          # record holds just the lp_bench section
//
// Figure reproductions (F1, F3) live in suu-trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"suu/internal/exp"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "smaller sweeps and repetition counts")
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "grid-harness worker pool size (0 = GOMAXPROCS, 1 = sequential; tables are identical at any value)")
		jsonPath = flag.String("json", "", "write engine benchmark results to this file (e.g. BENCH_sim.json)")
		lpOnly   = flag.Bool("lp", false, "benchmark the LP layer in isolation and exit (skips the experiment drivers)")
	)
	flag.Parse()
	cfg := exp.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	if *lpOnly {
		start := time.Now()
		rows := exp.LPBenchmarks(cfg)
		fmt.Println(exp.LPBenchTable(rows).Markdown())
		fmt.Printf("_LP benchmarks completed in %.1fs_\n", time.Since(start).Seconds())
		if *jsonPath != "" {
			file := exp.NewSimBenchFile(cfg)
			file.LPBench = rows
			out, err := exp.WriteSimBenchJSON(file)
			if err != nil {
				log.Fatalf("marshal LP benchmarks: %v", err)
			}
			if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
				log.Fatalf("write %s: %v", *jsonPath, err)
			}
		}
		return
	}

	ids := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("# SUU experiment run (%s, quick=%v, seed=%d)\n\n",
		time.Now().Format("2006-01-02"), *quick, *seed)
	ran := 0
	for _, drv := range exp.Drivers {
		if len(ids) > 0 && !ids[drv.ID] {
			continue
		}
		start := time.Now()
		table := drv.Run(cfg)
		fmt.Println(table.Markdown())
		fmt.Printf("_%s completed in %.1fs_\n\n", drv.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 && *only != "" {
		log.Fatalf("no experiment matched -only=%q", *only)
	}

	if *jsonPath != "" {
		start := time.Now()
		file := exp.SimBenchmarks(cfg)
		out, err := exp.WriteSimBenchJSON(file)
		if err != nil {
			log.Fatalf("marshal engine benchmarks: %v", err)
		}
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonPath, err)
		}
		for _, s := range file.Skipped {
			fmt.Fprintf(os.Stderr, "warning: benchmark family skipped: %s\n", s)
		}
		fmt.Printf("_engine benchmarks (%d families) written to %s in %.1fs_\n",
			len(file.Benchmarks), *jsonPath, time.Since(start).Seconds())
	}
}
