// Command suu-bench regenerates the experiment tables of
// EXPERIMENTS.md — the empirical validation of every theorem of the
// paper plus the ablations (see DESIGN.md §6 for the index).
//
// Usage:
//
//	suu-bench                 # run everything (minutes)
//	suu-bench -quick          # smaller sweeps (tens of seconds)
//	suu-bench -only T6,A2     # selected experiments
//
// Figure reproductions (F1, F3) live in suu-trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"suu/internal/exp"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "smaller sweeps and repetition counts")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cfg := exp.Config{Quick: *quick, Seed: *seed}

	ids := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("# SUU experiment run (%s, quick=%v, seed=%d)\n\n",
		time.Now().Format("2006-01-02"), *quick, *seed)
	ran := 0
	for _, drv := range exp.Drivers {
		if len(ids) > 0 && !ids[drv.ID] {
			continue
		}
		start := time.Now()
		table := drv.Run(cfg)
		fmt.Println(table.Markdown())
		fmt.Printf("_%s completed in %.1fs_\n\n", drv.ID, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matched -only=%q", *only)
	}
}
