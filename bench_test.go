// Benchmarks — one per experiment table of DESIGN.md §6. They exercise
// the code paths that regenerate each table at a representative size;
// cmd/suu-bench produces the tables themselves.
package suu

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/core"
	"suu/internal/exp"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sim"
	"suu/internal/workload"
)

func benchInstance(n, m int, seed int64) *model.Instance {
	return workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
}

// BenchmarkMSMAlg (T1): one greedy MaxSumMass assignment.
func BenchmarkMSMAlg(b *testing.B) {
	in := benchInstance(64, 16, 1)
	active := make([]bool, in.N)
	for j := range active {
		active[j] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MSMAlg(in, active)
	}
}

// BenchmarkMassAccumulation (T2): Theorem 2.2 probability estimation
// on a small instance under its optimal regimen.
func BenchmarkMassAccumulation(b *testing.B) {
	in := benchInstance(5, 2, 2)
	reg, topt, err := opt.OptimalRegimen(in)
	if err != nil {
		b.Fatal(err)
	}
	horizon := int(math.Ceil(2 * topt))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MassWithinHorizon(in, reg, horizon, 100, 0.25, int64(i))
	}
}

// BenchmarkSUUIAdaptive (T3): one simulated run of SUU-I-ALG.
func BenchmarkSUUIAdaptive(b *testing.B) {
	in := benchInstance(32, 8, 3)
	pol := &core.AdaptivePolicy{In: in}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in, pol, 1_000_000, rand.New(rand.NewSource(int64(i))))
	}
}

// BenchmarkSUUIOblivious (T4): constructing the combinatorial
// oblivious schedule.
func BenchmarkSUUIOblivious(b *testing.B) {
	in := benchInstance(32, 8, 4)
	par := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SUUIOblivious(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSUUILP (T5): LP2 solve + rounding + packing.
func BenchmarkSUUILP(b *testing.B) {
	in := benchInstance(32, 8, 5)
	par := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SUUIndependentLP(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSUUChains (T6): the full chains pipeline.
func BenchmarkSUUChains(b *testing.B) {
	in := workload.Chains(workload.Config{Jobs: 24, Machines: 6, Seed: 6}, 4)
	par := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SUUChains(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomDelay (T7): delay search on a chain pseudo-schedule.
func BenchmarkRandomDelay(b *testing.B) {
	in := workload.Chains(workload.Config{Jobs: 48, Machines: 6, Seed: 7}, 8)
	chains, err := in.Prec.Chains()
	if err != nil {
		b.Fatal(err)
	}
	fs, err := core.SolveLP1(in, chains, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ints, err := core.RoundLP(in, fs, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	pseudo := core.BuildPseudo(in, chains, ints.X)
	maxLoad := pseudo.MaxLoad()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		pseudo.BestDelays(maxLoad, 64, rng)
	}
}

// BenchmarkSUUTrees (T8): the forest pipeline on an out-tree.
func BenchmarkSUUTrees(b *testing.B) {
	in := workload.OutTree(workload.Config{Jobs: 32, Machines: 6, Seed: 8})
	par := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SUUForest(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSUUForest (T9): the forest pipeline on a mixed forest.
func BenchmarkSUUForest(b *testing.B) {
	in := workload.MixedForest(workload.Config{Jobs: 32, Machines: 6, Seed: 9}, 3)
	par := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SUUForest(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines (T10): one simulated run of each baseline on the
// grid workload.
func BenchmarkBaselines(b *testing.B) {
	in := workload.GridPipeline(20, 6, 10)
	greedy := &core.GreedyMaxPPolicy{In: in}
	rr := &core.RoundRobinPolicy{In: in}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(in, greedy, 1_000_000, rand.New(rand.NewSource(int64(i))))
		}
	})
	b.Run("round-robin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Run(in, rr, 1_000_000, rand.New(rand.NewSource(int64(i))))
		}
	})
}

// BenchmarkExecTree (F1): Markov-chain/exact-value computation for the
// Figure 1 reproduction.
func BenchmarkExecTree(b *testing.B) {
	in := benchInstance(6, 2, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.OptimalRegimen(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLP1Round (F3): LP1 solve + Theorem 4.1 rounding with the
// flow network construction.
func BenchmarkLP1Round(b *testing.B) {
	in := workload.Independent(workload.Config{Jobs: 12, Machines: 20, Lo: 0.02, Hi: 0.3, Seed: 12})
	chains := make([][]int, in.N)
	for j := 0; j < in.N; j++ {
		chains[j] = []int{j}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RoundLP(in, fs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayAblation (A1): flatten with and without delays.
func BenchmarkDelayAblation(b *testing.B) {
	in := workload.Chains(workload.Config{Jobs: 32, Machines: 6, Seed: 13}, 8)
	chains, _ := in.Prec.Chains()
	fs, err := core.SolveLP1(in, chains, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ints, err := core.RoundLP(in, fs, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	pseudo := core.BuildPseudo(in, chains, ints.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pseudo.Flatten()
	}
}

// BenchmarkReplicationSweep (A2): replication cost of the prefix.
func BenchmarkReplicationSweep(b *testing.B) {
	in := benchInstance(16, 5, 14)
	par := core.DefaultParams()
	res, err := core.SUUIndependentLP(in, par)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in, res.Schedule, 5_000_000, rand.New(rand.NewSource(int64(i))))
	}
}

// BenchmarkBucketAblation (A3): the rounding alone (bucketing + flow).
func BenchmarkBucketAblation(b *testing.B) {
	in := workload.Independent(workload.Config{Jobs: 16, Machines: 32, Lo: 0.02, Hi: 0.3, Seed: 15})
	chains := make([][]int, in.N)
	for j := 0; j < in.N; j++ {
		chains[j] = []int{j}
	}
	fs, err := core.SolveLP1(in, chains, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RoundLP(in, fs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructionCost (A4): both oblivious constructions.
func BenchmarkConstructionCost(b *testing.B) {
	in := benchInstance(32, 8, 16)
	par := core.DefaultParams()
	b.Run("combinatorial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SUUIOblivious(in, par); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SUUIndependentLP(in, par); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuickTables runs the two fastest experiment drivers end to
// end, ensuring the harness itself stays cheap.
func BenchmarkQuickTables(b *testing.B) {
	cfg := exp.Config{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.T1(cfg)
		exp.T7(cfg)
	}
}
