// Command gridcompute models the paper's grid-computing motivation: a
// computational task split into subtasks with tree-shaped dependencies
// executed on geographically distributed machines of uneven
// reliability. It compares the oblivious tree schedule (Theorem 4.8)
// against greedy and round-robin baselines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"suu"
)

func main() {
	const (
		nTasks    = 24
		nMachines = 8
		seed      = 11
	)
	rng := rand.New(rand.NewSource(seed))

	// A map-reduce style out-tree: the root task spawns partitions,
	// each partition spawns shards.
	inst := suu.NewInstance(nTasks, nMachines)
	for v := 1; v < nTasks; v++ {
		lo := v - 4
		if lo < 0 {
			lo = 0
		}
		if err := inst.AddPrecedence(lo+rng.Intn(v-lo), v); err != nil {
			log.Fatal(err)
		}
	}
	// Bimodal reliability: each task has a few "close" fast machines
	// (p=0.9) and many slow remote ones (p=0.1).
	for i := 0; i < nMachines; i++ {
		for j := 0; j < nTasks; j++ {
			if rng.Float64() < 0.25 {
				inst.SetProb(i, j, 0.9)
			} else {
				inst.SetProb(i, j, 0.1)
			}
		}
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid instance: %d tasks, %d machines, class %q, depth %d, width %d\n",
		inst.Jobs(), inst.Machines(), inst.Class(), inst.Depth(), inst.Width())

	tree, err := suu.Solve(inst, suu.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	lb, err := suu.LowerBound(inst)
	if err != nil {
		log.Fatal(err)
	}

	contenders := []*suu.Schedule{tree, suu.MustAdaptive(inst)}
	for _, b := range []suu.Baseline{suu.BaselineGreedy, suu.BaselineRoundRobin, suu.BaselineAllOnOne} {
		s, err := suu.NewBaseline(inst, b, seed)
		if err != nil {
			log.Fatal(err)
		}
		contenders = append(contenders, s)
	}

	fmt.Printf("\ncertified lower bound on OPT (Lemma 4.2): %.1f steps\n\n", lb)
	fmt.Printf("%-32s %-14s %s\n", "schedule", "E[makespan]", "vs lower bound")
	for _, s := range contenders {
		est, err := s.EstimateMakespan(inst, 400, suu.WithSimSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %-14s %.1fx\n", s.Kind, est, est.Mean/lb)
	}
}
