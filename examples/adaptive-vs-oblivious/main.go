// Command adaptive-vs-oblivious contrasts the three independent-jobs
// algorithms of the paper — adaptive SUU-I-ALG (Theorem 3.3),
// combinatorial oblivious SUU-I-OBL (Theorem 3.6) and the LP-based
// oblivious schedule (Theorem 4.5) — against the exact optimum across
// a sweep of instance sizes, illustrating the price of obliviousness.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"suu"
)

func randomIndependent(n, m int, seed int64) *suu.Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := suu.NewInstance(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			inst.SetProb(i, j, 0.05+0.9*rng.Float64())
		}
	}
	return inst
}

func main() {
	fmt.Printf("%-4s %-4s %-10s %-12s %-12s %-12s\n",
		"n", "m", "exact OPT", "adaptive", "comb-obl", "lp-obl")
	for _, n := range []int{3, 5, 7, 9} {
		m := 3
		inst := randomIndependent(n, m, int64(100+n))
		if err := inst.Validate(); err != nil {
			log.Fatal(err)
		}

		_, topt, err := suu.Optimal(inst)
		if err != nil {
			log.Fatal(err)
		}

		adaptive := suu.MustAdaptive(inst)
		comb, err := suu.ObliviousCombinatorial(inst, suu.WithSeed(int64(n)))
		if err != nil {
			log.Fatal(err)
		}
		lpObl, err := suu.Solve(inst, suu.WithSeed(int64(n)))
		if err != nil {
			log.Fatal(err)
		}

		reps := 600
		ea, err := adaptive.EstimateMakespan(inst, reps)
		if err != nil {
			log.Fatal(err)
		}
		ec, err := comb.EstimateMakespan(inst, reps)
		if err != nil {
			log.Fatal(err)
		}
		el, err := lpObl.EstimateMakespan(inst, reps)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-4d %-4d %-10.2f %-5.2f (%.1fx) %-5.2f (%.1fx) %-5.2f (%.1fx)\n",
			n, m, topt,
			ea.Mean, ea.Mean/topt,
			ec.Mean, ec.Mean/topt,
			el.Mean, el.Mean/topt)
	}
	fmt.Println("\nadaptive tracks OPT closely; oblivious schedules pay the")
	fmt.Println("polylog replication premium but need no runtime feedback.")
}
