// Command serve-client is a pure net/http client for a running
// suu-serve daemon: it submits an instance, solves it twice (the
// repeat should come back from the result cache), requests a
// CI-driven makespan estimate, and fetches the schedule as a Gantt
// chart — the full round-trip a scheduling client performs, using
// only the wire contract (no suu imports).
//
// Start the daemon, then run the client:
//
//	go run ./cmd/suu-serve -addr :8080 &
//	go run ./examples/serve-client -addr localhost:8080
//
// The CI serve-smoke job runs exactly this binary with -expect-cached,
// which makes a non-cached repeat solve (or any failed request) a
// non-zero exit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

// The request/response shapes are spelled out locally: this example
// documents the wire contract as a remote client would see it. The
// authoritative definitions live in internal/serve.
type meta struct {
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	BuildMS   float64 `json:"build_ms"`
}

type solveResult struct {
	ScheduleID string  `json:"schedule_id"`
	Solver     string  `json:"solver"`
	Kind       string  `json:"kind"`
	Guarantee  string  `json:"guarantee"`
	Class      string  `json:"class"`
	Adaptive   bool    `json:"adaptive"`
	PrefixLen  int     `json:"prefix_len"`
	LPValue    float64 `json:"lp_value"`
	Detail     string  `json:"detail"`
}

type estimateResult struct {
	Reps        int     `json:"reps"`
	Mean        float64 `json:"mean"`
	HalfWidth95 float64 `json:"half_width_95"`
	Engine      string  `json:"engine"`
	Converged   bool    `json:"converged"`
	Rounds      int     `json:"rounds"`
}

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "suu-serve host:port")
		expectCached = flag.Bool("expect-cached", false, "exit non-zero unless the repeat solve is a cache hit")
	)
	flag.Parse()
	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	// post sends a JSON body and decodes the raw response into out.
	post := func(path string, body any, out any) {
		data, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatalf("POST %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST %s: HTTP %d: %s", path, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	// Solve and estimate responses arrive in a {result, meta} envelope:
	// result is a pure function of the request, meta describes how this
	// particular response was produced (cache hit? build time?).
	postEnveloped := func(path string, body any, out any) meta {
		var envelope struct {
			Result json.RawMessage `json:"result"`
			Meta   meta            `json:"meta"`
		}
		post(path, body, &envelope)
		if out != nil {
			if err := json.Unmarshal(envelope.Result, out); err != nil {
				log.Fatalf("POST %s: result: %v", path, err)
			}
		}
		return envelope.Meta
	}

	// A small grid-computing shape: 12 jobs in 3 chains of 4, four
	// machines with mixed per-(machine, job) success probabilities.
	const jobs, machines = 12, 4
	p := make([][]float64, machines)
	for i := range p {
		p[i] = make([]float64, jobs)
		for j := range p[i] {
			p[i][j] = 0.15 + 0.7*float64((i*7+j*3)%11)/10
		}
	}
	var edges [][2]int
	for c := 0; c < 3; c++ {
		for k := 0; k < 3; k++ {
			edges = append(edges, [2]int{c*4 + k, c*4 + k + 1})
		}
	}
	instance := map[string]any{"jobs": jobs, "machines": machines, "p": p, "edges": edges}

	// 1. Submit: the daemon returns a content-derived instance id that
	// later requests can reference instead of re-sending the matrix.
	var inst struct {
		ID    string `json:"id"`
		Class string `json:"class"`
		Width int    `json:"width"`
	}
	post("/v1/instances", instance, &inst)
	fmt.Printf("submitted: id %s, class %s, width %d\n", inst.ID, inst.Class, inst.Width)

	// 2. Solve, then solve again. The second call must not rebuild:
	// identical requests are content-addressed, so the repeat is a
	// cache hit with a byte-identical result.
	solveReq := map[string]any{"instance_id": inst.ID, "solver": "auto"}
	var sol solveResult
	m := postEnveloped("/v1/solve", solveReq, &sol)
	fmt.Printf("solved:    %s via %s (%s), guarantee %s, built in %.1fms\n",
		sol.ScheduleID, sol.Solver, sol.Kind, sol.Guarantee, m.BuildMS)
	m = postEnveloped("/v1/solve", solveReq, &sol)
	fmt.Printf("repeat:    cached=%v\n", m.Cached)
	if *expectCached && !m.Cached {
		log.Fatal("repeat solve was not served from cache")
	}

	// 3. Estimate to a target confidence half-width; the daemon grows
	// repetitions until the 95% CI is tight enough (or max_reps).
	var est estimateResult
	postEnveloped("/v1/estimate", map[string]any{
		"schedule_id": sol.ScheduleID, "sim_seed": 7, "ci_half_width": 0.1,
	}, &est)
	fmt.Printf("estimate:  E[makespan] ≈ %.3f ± %.3f (n=%d, %s engine, converged=%v in %d rounds)\n",
		est.Mean, est.HalfWidth95, est.Reps, est.Engine, est.Converged, est.Rounds)

	// 4. Fetch the schedule itself as a Gantt chart.
	resp, err := client.Get(base + "/v1/schedules/" + sol.ScheduleID + "?format=gantt&steps=6")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	gantt, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("GET schedule: HTTP %d (%v)", resp.StatusCode, err)
	}
	fmt.Printf("schedule (first steps):\n%s", gantt)
}
