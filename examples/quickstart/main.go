// Command quickstart is the smallest end-to-end use of the suu
// library: build an instance by hand, solve it with the automatic
// dispatcher, and estimate the expected makespan by simulation.
package main

import (
	"fmt"
	"log"

	"suu"
)

func main() {
	// Three unit jobs, two machines. Machine 0 is reliable on job 0,
	// machine 1 on job 1; job 2 is hard for everyone. Job 0 must finish
	// before job 2 may start.
	inst := suu.NewInstance(3, 2)
	inst.SetProb(0, 0, 0.9)
	inst.SetProb(1, 0, 0.2)
	inst.SetProb(0, 1, 0.3)
	inst.SetProb(1, 1, 0.8)
	inst.SetProb(0, 2, 0.25)
	inst.SetProb(1, 2, 0.25)
	if err := inst.AddPrecedence(0, 2); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: %d jobs, %d machines, class %q, width %d\n",
		inst.Jobs(), inst.Machines(), inst.Class(), inst.Width())

	// Solve picks the paper's strongest construction for the class.
	s, err := suu.Solve(inst, suu.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: %s, guarantee %s\n", s.Kind, s.Guarantee)
	fmt.Printf("oblivious prefix: %d steps (core %d)\n", s.PrefixLen, s.CoreLength)

	est, err := s.EstimateMakespan(inst, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated expected makespan: %s\n", est)

	// This instance is tiny, so the exact optimum is available too.
	_, topt, err := suu.Optimal(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimal expected makespan: %.3f (ratio %.2f)\n",
		topt, est.Mean/topt)
}
