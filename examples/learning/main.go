// Command learning demonstrates the §5 "online versions" extension:
// scheduling when the success probabilities are UNKNOWN. A Beta-
// posterior learner (UCB-style optimism over MSM-ALG greedy) is
// trained over repeated project executions and converges toward the
// clairvoyant adaptive scheduler that knows the true p[i][j].
package main

import (
	"fmt"
	"log"
	"math/rand"

	"suu"
)

func main() {
	const (
		jobs     = 8
		machines = 4
		seed     = 21
	)
	rng := rand.New(rand.NewSource(seed))
	inst := suu.NewInstance(jobs, machines)
	for i := 0; i < machines; i++ {
		for j := 0; j < jobs; j++ {
			// Specialists: machine i is strong on jobs ≡ i (mod machines).
			if j%machines == i {
				inst.SetProb(i, j, 0.6+0.3*rng.Float64())
			} else {
				inst.SetProb(i, j, 0.05+0.15*rng.Float64())
			}
		}
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	clairvoyant := suu.MustAdaptive(inst)
	estC, err := clairvoyant.EstimateMakespan(inst, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clairvoyant adaptive (knows p):      %s\n\n", estC)

	learner := suu.MustLearning(inst, suu.WithOptimism(0.7))
	fmt.Println("training the online learner (posterior persists across batches):")
	for batch := 1; batch <= 5; batch++ {
		est, err := learner.EstimateMakespan(inst, 300, suu.WithSimSeed(int64(batch)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %d: E[makespan] %s  (%.2fx of clairvoyant)\n",
			batch, est, est.Mean/estC.Mean)
	}
	fmt.Println("\nthe learner starts exploring (batch 1) and closes most of the")
	fmt.Println("gap to the clairvoyant scheduler without ever reading p[i][j].")
}
