// Command projectmgmt models the paper's second motivation: a project
// manager assigns workers of differing skills to dependent work items,
// possibly several workers to one critical item at once. The work
// streams form disjoint chains (the SUU-C class, Theorem 4.4).
package main

import (
	"fmt"
	"log"

	"suu"
)

func main() {
	// Two work streams:
	//   design:  spec -> prototype -> review
	//   infra:   provision -> deploy -> harden
	// Six workers with specialist skills: designers are good at design
	// items, ops at infra items, and one generalist is mediocre at all.
	items := []string{"spec", "prototype", "review", "provision", "deploy", "harden"}
	workers := []string{"alice(design)", "bob(design)", "carol(ops)", "dave(ops)", "erin(ops)", "frank(generalist)"}

	inst := suu.NewInstance(len(items), len(workers))
	skill := [][]float64{
		// spec prot review prov deploy harden
		{0.85, 0.70, 0.60, 0.05, 0.05, 0.05}, // alice
		{0.75, 0.80, 0.55, 0.05, 0.05, 0.05}, // bob
		{0.05, 0.05, 0.10, 0.80, 0.70, 0.60}, // carol
		{0.05, 0.05, 0.10, 0.70, 0.75, 0.65}, // dave
		{0.05, 0.05, 0.10, 0.60, 0.60, 0.80}, // erin
		{0.30, 0.30, 0.30, 0.30, 0.30, 0.30}, // frank
	}
	for i := range workers {
		for j := range items {
			inst.SetProb(i, j, skill[i][j])
		}
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := inst.AddPrecedence(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("project: %d items in class %q, %d workers\n\n", inst.Jobs(), inst.Class(), inst.Machines())

	plan, err := suu.Solve(inst, suu.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: %s\nguarantee:    %s\n", plan.Kind, plan.Guarantee)

	est, err := plan.EstimateMakespan(inst, 1000)
	if err != nil {
		log.Fatal(err)
	}
	_, topt, err := suu.Optimal(inst) // 6 items: exact DP is feasible
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noblivious plan:    %s\n", est)
	fmt.Printf("exact optimum:     %.2f steps (clairvoyant adaptive manager)\n", topt)
	fmt.Printf("oblivious penalty: %.2fx\n", est.Mean/topt)

	// The oblivious plan can be printed as a calendar the manager can
	// follow without observing outcomes; here we just show how the
	// adaptive greedy compares.
	adaptive := suu.MustAdaptive(inst)
	estA, err := adaptive.EstimateMakespan(inst, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive greedy:   %s (%.2fx of optimum)\n", estA, estA.Mean/topt)

	// A manager promises deadlines at confidence, not in expectation.
	qs, err := adaptive.MakespanQuantiles(inst, 2000, []float64{0.5, 0.9, 0.95})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deadline to promise: %v days (50%%), %v (90%%), %v (95%%)\n", qs[0], qs[1], qs[2])
}
