package suu

import (
	"strings"
	"testing"
)

func TestLearningSchedule(t *testing.T) {
	x := tinyIndependent()
	s := MustLearning(x, WithOptimism(0.5))
	if !s.Adaptive {
		t.Error("learning schedule should be adaptive")
	}
	// Train over repeated estimates; must complete throughout.
	for round := 0; round < 3; round++ {
		est, err := s.EstimateMakespan(x, 200, WithSimSeed(int64(round)))
		if err != nil {
			t.Fatal(err)
		}
		if est.Incomplete != 0 {
			t.Fatalf("round %d: %d incomplete", round, est.Incomplete)
		}
	}
	// After training, the learner should be within a small factor of
	// the clairvoyant adaptive policy.
	estL, err := MustLearning(x, WithOptimism(0.5)).EstimateMakespan(x, 400)
	if err != nil {
		t.Fatal(err)
	}
	estA, err := MustAdaptive(x).EstimateMakespan(x, 400)
	if err != nil {
		t.Fatal(err)
	}
	if estL.Mean > 3*estA.Mean+2 {
		t.Errorf("learner %v far from adaptive %v", estL.Mean, estA.Mean)
	}
}

func TestGanttOnSolvedSchedule(t *testing.T) {
	x := tinyIndependent()
	s, err := Solve(x, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Gantt(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "m0") || !strings.Contains(g, "m1") {
		t.Errorf("gantt missing rows:\n%s", g)
	}
	if _, err := MustAdaptive(x).Gantt(5); err == nil {
		t.Error("Gantt on adaptive schedule should error")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	x := tinyIndependent()
	s, err := Solve(x, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != s.Kind || back.PrefixLen != s.PrefixLen {
		t.Errorf("metadata lost: %q/%d vs %q/%d", back.Kind, back.PrefixLen, s.Kind, s.PrefixLen)
	}
	// The deserialized schedule must execute identically.
	m1, _ := s.RunOnce(x, 9, 100000)
	m2, _ := back.RunOnce(x, 9, 100000)
	if m1 != m2 {
		t.Errorf("execution differs after round trip: %d vs %d", m1, m2)
	}
	if _, err := MustAdaptive(x).MarshalJSON(); err == nil {
		t.Error("adaptive schedule serialized")
	}
	if _, err := LoadSchedule([]byte(`{}`)); err == nil {
		t.Error("empty payload accepted")
	}
}
