package suu

import (
	"math"
	"testing"
)

func tinyIndependent() *Instance {
	x := NewInstance(3, 2)
	x.SetProb(0, 0, 0.9)
	x.SetProb(0, 1, 0.3)
	x.SetProb(0, 2, 0.5)
	x.SetProb(1, 0, 0.2)
	x.SetProb(1, 1, 0.8)
	x.SetProb(1, 2, 0.4)
	return x
}

func TestInstanceBuilders(t *testing.T) {
	x := tinyIndependent()
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.Jobs() != 3 || x.Machines() != 2 {
		t.Error("dimensions wrong")
	}
	if x.Prob(0, 0) != 0.9 {
		t.Error("Prob wrong")
	}
	if x.Class() != "independent" {
		t.Errorf("class=%q", x.Class())
	}
	if err := x.AddPrecedence(0, 1); err != nil {
		t.Fatal(err)
	}
	if x.Class() != "chains" {
		t.Errorf("class=%q after edge", x.Class())
	}
	if x.Width() != 2 || x.Depth() != 2 {
		t.Errorf("width=%d depth=%d", x.Width(), x.Depth())
	}
}

func TestFromMatrix(t *testing.T) {
	x, err := FromMatrix([][]float64{{0.5, 0.4}, {0.2, 0.9}}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if x.Jobs() != 2 || x.Machines() != 2 || x.Class() != "chains" {
		t.Error("FromMatrix shape wrong")
	}
	if _, err := FromMatrix(nil, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{0.5}, {0.2, 0.9}}, nil); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSolveDispatch(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *Instance
		wantKind string
	}{
		{"independent", func() *Instance { return tinyIndependent() }, "oblivious-lp (Thm 4.5)"},
		{"chains", func() *Instance {
			x := tinyIndependent()
			x.AddPrecedence(0, 1)
			return x
		}, "chains (Thm 4.4)"},
		{"out-tree", func() *Instance {
			x := tinyIndependent()
			x.AddPrecedence(0, 1)
			x.AddPrecedence(0, 2)
			return x
		}, "trees (Thm 4.8)"},
		{"general", func() *Instance {
			x := NewInstance(4, 2)
			for j := 0; j < 4; j++ {
				x.SetProb(0, j, 0.6)
				x.SetProb(1, j, 0.4)
			}
			x.AddPrecedence(0, 2)
			x.AddPrecedence(1, 2)
			x.AddPrecedence(1, 3)
			x.AddPrecedence(0, 3)
			return x
		}, "level-fallback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := tc.build()
			s, err := Solve(x, WithSeed(5))
			if err != nil {
				t.Fatal(err)
			}
			if s.Kind != tc.wantKind {
				t.Errorf("kind=%q, want %q", s.Kind, tc.wantKind)
			}
			est, err := s.EstimateMakespan(x, 50)
			if err != nil {
				t.Fatal(err)
			}
			if est.Incomplete != 0 {
				t.Errorf("%d incomplete runs", est.Incomplete)
			}
			if est.Mean < 1 {
				t.Errorf("mean=%v", est.Mean)
			}
			if s.LowerBound > 0 && est.Mean < s.LowerBound-1e-9 {
				t.Errorf("mean %v below certified lower bound %v", est.Mean, s.LowerBound)
			}
		})
	}
}

func TestAdaptiveAndOblivious(t *testing.T) {
	x := tinyIndependent()
	a := MustAdaptive(x)
	if !a.Adaptive {
		t.Error("adaptive flag unset")
	}
	estA, err := a.EstimateMakespan(x, 200)
	if err != nil {
		t.Fatal(err)
	}
	o, err := ObliviousCombinatorial(x, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	estO, err := o.EstimateMakespan(x, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive schedule should not be drastically worse than the
	// oblivious one on this easy instance.
	if estA.Mean > 10*estO.Mean+10 {
		t.Errorf("adaptive %v vastly worse than oblivious %v", estA.Mean, estO.Mean)
	}
}

func TestOptimalAndBoundsAgree(t *testing.T) {
	x := tinyIndependent()
	s, topt, err := Optimal(x)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMakespan(x, 3000, WithSimSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-topt) > 4*est.HalfWidth95+0.1 {
		t.Errorf("simulated optimal %v far from exact %v", est.Mean, topt)
	}
	lb, err := LowerBound(x)
	if err != nil {
		t.Fatal(err)
	}
	if lb > topt+1e-9 {
		t.Errorf("lower bound %v exceeds exact optimum %v", lb, topt)
	}
	// Every solver must beat the lower bound (trivially true) and be
	// within a sane multiple on a 3-job instance.
	sol, err := Solve(x, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	estSol, err := sol.EstimateMakespan(x, 400)
	if err != nil {
		t.Fatal(err)
	}
	if estSol.Mean < topt-3*estSol.HalfWidth95-0.2 {
		t.Errorf("solver mean %v beats exact optimum %v — simulation bug?", estSol.Mean, topt)
	}
}

func TestBaselines(t *testing.T) {
	x := tinyIndependent()
	for _, b := range []Baseline{BaselineGreedy, BaselineRoundRobin, BaselineAllOnOne, BaselineRandom} {
		s, err := NewBaseline(x, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.EstimateMakespan(x, 100)
		if err != nil {
			t.Fatal(err)
		}
		if est.Incomplete != 0 {
			t.Errorf("%s: incomplete runs", b)
		}
	}
	if _, err := NewBaseline(x, Baseline("nope"), 1); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestRunOnceDeterminism(t *testing.T) {
	x := tinyIndependent()
	s := MustAdaptive(x)
	m1, ok1 := s.RunOnce(x, 42, 100000)
	m2, ok2 := s.RunOnce(x, 42, 100000)
	if m1 != m2 || ok1 != ok2 {
		t.Error("RunOnce not deterministic for equal seeds")
	}
}

func TestEstimateStringAndOptions(t *testing.T) {
	e := Estimate{Mean: 3.5, HalfWidth95: 0.2, Runs: 10}
	if e.String() == "" {
		t.Error("empty string")
	}
	x := tinyIndependent()
	s := MustAdaptive(x)
	est, err := s.EstimateMakespan(x, 10, WithMaxSteps(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.Incomplete == 0 {
		t.Error("1-step cap should leave runs incomplete")
	}
}

func TestMakespanQuantilesAPI(t *testing.T) {
	x := tinyIndependent()
	s := MustAdaptive(x)
	qs, err := s.MakespanQuantiles(x, 500, []float64{0.5, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] > qs[1] {
		t.Errorf("quantiles %v", qs)
	}
}
