package suu

import (
	"fmt"
	"math/rand"

	"suu/internal/core"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
)

// Schedule is a solved SUU schedule: either an oblivious schedule
// (finite prefix plus tail) or an adaptive policy. It carries the
// construction's certified metadata.
type Schedule struct {
	policy sched.Policy

	// Kind names the construction ("chains (Thm 4.4)", ...).
	Kind string
	// Guarantee is the paper's approximation bound for this
	// construction on this instance class.
	Guarantee string
	// Adaptive reports whether the schedule reacts to the unfinished
	// set (regimens, greedy policies) rather than being oblivious.
	Adaptive bool
	// PrefixLen is the oblivious prefix length (0 for adaptive).
	PrefixLen int
	// CoreLength is the pre-replication prefix in which every job
	// accumulates the certified mass (0 for adaptive).
	CoreLength int
	// LPValue is the LP optimum T* when an LP was solved (0 otherwise).
	LPValue float64
	// LowerBound is the certified lower bound on the optimal expected
	// makespan (T*/16, Lemma 4.2), when available.
	LowerBound float64
}

// Estimate summarizes a Monte Carlo makespan estimate.
type Estimate struct {
	// Mean is the estimated expected makespan.
	Mean float64
	// HalfWidth95 is the 95% confidence half-width of Mean.
	HalfWidth95 float64
	// Min and Max are the extreme observed makespans.
	Min, Max float64
	// Runs is the number of simulations, Incomplete how many hit the
	// step cap before finishing (should be 0; a nonzero value means the
	// cap was too small).
	Runs, Incomplete int
}

// String renders "mean ± hw".
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f ± %.2f steps (n=%d)", e.Mean, e.HalfWidth95, e.Runs)
}

// estimateOptions configure EstimateMakespan.
type estimateOptions struct {
	maxSteps int
	seed     int64
}

// EstimateOption configures EstimateMakespan.
type EstimateOption func(*estimateOptions)

// WithMaxSteps caps each simulated execution (default 1,000,000).
func WithMaxSteps(steps int) EstimateOption {
	return func(o *estimateOptions) { o.maxSteps = steps }
}

// WithSimSeed seeds the Monte Carlo executions (default 1).
func WithSimSeed(seed int64) EstimateOption {
	return func(o *estimateOptions) { o.seed = seed }
}

// EstimateMakespan estimates the schedule's expected makespan on the
// instance by Monte Carlo simulation with reps independent runs.
func (s *Schedule) EstimateMakespan(x *Instance, reps int, opts ...EstimateOption) (Estimate, error) {
	if err := x.Validate(); err != nil {
		return Estimate{}, err
	}
	o := estimateOptions{maxSteps: 1_000_000, seed: 1}
	for _, f := range opts {
		f(&o)
	}
	sum, incomplete := sim.Estimate(x.inner, s.policy, reps, o.maxSteps, o.seed)
	return Estimate{
		Mean:        sum.Mean,
		HalfWidth95: sum.HalfWidth95,
		Min:         sum.Min,
		Max:         sum.Max,
		Runs:        sum.N,
		Incomplete:  incomplete,
	}, nil
}

// RunOnce executes the schedule once with the given seed and returns
// the realized makespan and whether all jobs completed within the cap.
func (s *Schedule) RunOnce(x *Instance, seed int64, maxSteps int) (int, bool) {
	res := sim.Run(x.inner, s.policy, maxSteps, rand.New(rand.NewSource(seed)))
	return res.Makespan, res.Completed
}

// Baseline names a reference policy for comparisons.
type Baseline string

// Available baselines.
const (
	// BaselineGreedy: every machine independently picks the eligible
	// job it is best at.
	BaselineGreedy Baseline = "greedy-maxp"
	// BaselineRoundRobin rotates machines over eligible jobs.
	BaselineRoundRobin Baseline = "round-robin"
	// BaselineAllOnOne gangs all machines on the first eligible job.
	BaselineAllOnOne Baseline = "all-on-one"
	// BaselineRandom assigns machines to uniformly random eligible jobs.
	BaselineRandom Baseline = "random"
)

// NewBaseline returns the named baseline policy as a Schedule. The
// names are registry ids; every solver registered as a baseline in
// internal/solve is accepted.
func NewBaseline(x *Instance, b Baseline, seed int64) (*Schedule, error) {
	s, ok := solve.Get(string(b))
	if !ok || !s.Baseline {
		return nil, fmt.Errorf("suu: unknown baseline %q", b)
	}
	par := core.DefaultParams()
	par.Seed = seed
	res, err := s.Build(x.inner, par)
	if err != nil {
		return nil, err
	}
	return fromResult(res), nil
}

// MakespanQuantiles estimates quantiles of the makespan distribution
// (e.g. 0.5, 0.9, 0.95) from reps simulated executions — the deadline
// the schedule can promise with the given confidence, not just its
// mean.
func (s *Schedule) MakespanQuantiles(x *Instance, reps int, qs []float64, opts ...EstimateOption) ([]float64, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	o := estimateOptions{maxSteps: 1_000_000, seed: 1}
	for _, f := range opts {
		f(&o)
	}
	quants, _ := sim.MakespanQuantiles(x.inner, s.policy, reps, o.maxSteps, o.seed, qs)
	return quants, nil
}
