package suu

import (
	"fmt"
	"math/rand"

	"suu/internal/core"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
)

// Schedule is a solved SUU schedule: either an oblivious schedule
// (finite prefix plus tail) or an adaptive policy. It carries the
// construction's certified metadata.
type Schedule struct {
	policy sched.Policy

	// Kind names the construction ("chains (Thm 4.4)", ...).
	Kind string
	// Guarantee is the paper's approximation bound for this
	// construction on this instance class.
	Guarantee string
	// Adaptive reports whether the schedule reacts to the unfinished
	// set (regimens, greedy policies) rather than being oblivious.
	Adaptive bool
	// PrefixLen is the oblivious prefix length (0 for adaptive).
	PrefixLen int
	// CoreLength is the pre-replication prefix in which every job
	// accumulates the certified mass (0 for adaptive).
	CoreLength int
	// LPValue is the LP optimum T* when an LP was solved (0 otherwise).
	LPValue float64
	// LowerBound is the certified lower bound on the optimal expected
	// makespan (T*/16, Lemma 4.2), when available.
	LowerBound float64
}

// Estimate summarizes a Monte Carlo makespan estimate.
type Estimate struct {
	// Mean is the estimated expected makespan.
	Mean float64
	// HalfWidth95 is the 95% confidence half-width of Mean.
	HalfWidth95 float64
	// Min and Max are the extreme observed makespans.
	Min, Max float64
	// Runs is the number of simulations, Incomplete how many hit the
	// step cap before finishing (should be 0; a nonzero value means the
	// cap was too small).
	Runs, Incomplete int
	// Engine records which simulation engine produced the estimate.
	Engine EngineInfo
}

// EngineInfo is the provenance of one estimate: which engine ran and
// at what effective fan-out. Estimates are bit-identical across
// worker counts; the engine name explains speed, and Spliced explains
// last-digit differences between otherwise identical configurations
// (a spliced run is a different Monte Carlo sample of the same
// distribution).
type EngineInfo struct {
	// Name is the engine identifier: "generic", "compiled",
	// "compiled-adaptive", their bit-parallel "-lane" forms, or
	// "dynamic-step" for scenario walks.
	Name string
	// Lanes is the lockstep width of the bit-parallel engines (64), 0
	// for the scalar ones.
	Lanes int
	// Workers is the effective goroutine fan-out after the
	// parallelizability check.
	Workers int
	// States is the compiled adaptive engine's table size (0 otherwise).
	States int
	// Spliced reports closed-form sampling of terminal stretches.
	Spliced bool
}

// newEstimate converts an internal summary + engine record.
func newEstimate(sum stats.Summary, incomplete int, eng sim.EngineUsed) Estimate {
	return Estimate{
		Mean:        sum.Mean,
		HalfWidth95: sum.HalfWidth95,
		Min:         sum.Min,
		Max:         sum.Max,
		Runs:        sum.N,
		Incomplete:  incomplete,
		Engine: EngineInfo{
			Name:    eng.Engine,
			Lanes:   eng.Lanes,
			Workers: eng.Workers,
			States:  eng.States,
			Spliced: eng.Spliced,
		},
	}
}

// String renders "mean ± hw".
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f ± %.2f steps (n=%d)", e.Mean, e.HalfWidth95, e.Runs)
}

// EstimateMakespan estimates the schedule's expected makespan on the
// instance by Monte Carlo simulation with reps independent runs.
// WithWorkers fans the repetitions out across goroutines without
// changing a single bit of the result.
func (s *Schedule) EstimateMakespan(x *Instance, reps int, opts ...Option) (Estimate, error) {
	if err := x.Validate(); err != nil {
		return Estimate{}, err
	}
	o := buildOptions(opts)
	sum, incomplete, eng := sim.EstimateParallelInfo(x.inner, s.policy, reps, o.maxSteps, o.simSeed, o.workers)
	return newEstimate(sum, incomplete, eng), nil
}

// RunOnce executes the schedule once with the given seed and returns
// the realized makespan and whether all jobs completed within the cap.
func (s *Schedule) RunOnce(x *Instance, seed int64, maxSteps int) (int, bool) {
	res := sim.Run(x.inner, s.policy, maxSteps, rand.New(rand.NewSource(seed)))
	return res.Makespan, res.Completed
}

// Baseline names a reference policy for comparisons.
type Baseline string

// Available baselines.
const (
	// BaselineGreedy: every machine independently picks the eligible
	// job it is best at.
	BaselineGreedy Baseline = "greedy-maxp"
	// BaselineRoundRobin rotates machines over eligible jobs.
	BaselineRoundRobin Baseline = "round-robin"
	// BaselineAllOnOne gangs all machines on the first eligible job.
	BaselineAllOnOne Baseline = "all-on-one"
	// BaselineRandom assigns machines to uniformly random eligible jobs.
	BaselineRandom Baseline = "random"
)

// NewBaseline returns the named baseline policy as a Schedule. The
// names are registry ids; every solver registered as a baseline in
// internal/solve is accepted.
func NewBaseline(x *Instance, b Baseline, seed int64) (*Schedule, error) {
	s, ok := solve.Get(string(b))
	if !ok || !s.Baseline {
		return nil, fmt.Errorf("suu: unknown baseline %q", b)
	}
	par := core.DefaultParams()
	par.Seed = seed
	res, err := s.Build(x.inner, par)
	if err != nil {
		return nil, err
	}
	return fromResult(res), nil
}

// MakespanQuantiles estimates quantiles of the makespan distribution
// (e.g. 0.5, 0.9, 0.95) from reps simulated executions — the deadline
// the schedule can promise with the given confidence, not just its
// mean.
func (s *Schedule) MakespanQuantiles(x *Instance, reps int, qs []float64, opts ...Option) ([]float64, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	quants, _ := sim.MakespanQuantiles(x.inner, s.policy, reps, o.maxSteps, o.simSeed, qs)
	return quants, nil
}
