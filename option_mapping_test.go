package suu

import (
	"testing"
)

// The unified vocabulary: every option constructor in the package
// must return the single Option type. This assignment is the
// compile-time check — a constructor drifting to its own option type
// breaks the build here.
var allOptions = []Option{
	WithSeed(7),
	WithSimSeed(9),
	WithMassTarget(0.4),
	WithReplicationFactor(8),
	WithDelayTries(32),
	WithOptimism(0.3),
	WithMaxSteps(12345),
	WithWorkers(3),
	WithSolver("adaptive"),
}

// EstimateOption must remain a true alias, so pre-redesign signatures
// accept any option.
var _ []EstimateOption = allOptions

// TestOptionMapping pins each option to the field it configures, and
// the defaults to their documented values.
func TestOptionMapping(t *testing.T) {
	def := buildOptions(nil)
	if def.maxSteps != 1_000_000 || def.simSeed != 1 || def.workers != 1 || def.solver != "" {
		t.Fatalf("defaults drifted: %+v", def)
	}
	o := buildOptions(allOptions)
	if o.par.Seed != 7 {
		t.Errorf("WithSeed: par.Seed = %d", o.par.Seed)
	}
	if o.simSeed != 9 {
		t.Errorf("WithSimSeed applied after WithSeed: simSeed = %d", o.simSeed)
	}
	if o.par.MassTarget != 0.4 {
		t.Errorf("WithMassTarget: %v", o.par.MassTarget)
	}
	if o.par.ReplicationFactor != 8 {
		t.Errorf("WithReplicationFactor: %d", o.par.ReplicationFactor)
	}
	if o.par.DelayTries != 32 {
		t.Errorf("WithDelayTries: %d", o.par.DelayTries)
	}
	if o.par.Optimism != 0.3 {
		t.Errorf("WithOptimism: %v", o.par.Optimism)
	}
	if o.maxSteps != 12345 {
		t.Errorf("WithMaxSteps: %d", o.maxSteps)
	}
	if o.workers != 3 {
		t.Errorf("WithWorkers: %d", o.workers)
	}
	if o.solver != "adaptive" {
		t.Errorf("WithSolver: %q", o.solver)
	}
	// WithSeed is the one-knob seed: it must set both the construction
	// and the simulation seed when used alone.
	s := buildOptions([]Option{WithSeed(42)})
	if s.par.Seed != 42 || s.simSeed != 42 {
		t.Errorf("WithSeed alone: par.Seed=%d simSeed=%d, want 42/42", s.par.Seed, s.simSeed)
	}
}
