package suu

import (
	"encoding/json"
	"errors"
	"fmt"

	"suu/internal/sched"
)

// Learning returns the online-learning policy — an implementation of
// the paper's §5 "online versions" future-work direction. The policy
// does not read the instance's probabilities: it maintains Beta
// posteriors per (machine, job), schedules greedily on the (optionally
// optimistic) posterior means, and learns from simulated outcomes. The
// posterior persists across EstimateMakespan/RunOnce calls, so
// repeated evaluation trains it.
//
// WithOptimism(v) scales a UCB-style exploration bonus (0.5–1.0 works
// well; 0 disables exploration; default 0.7).
func Learning(x *Instance, opts ...Option) (*Schedule, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return registrySchedule("learning", x, buildParams(opts))
}

// MustLearning is Learning panicking on error, for the callers that
// used the pre-redesign error-free signature; new code should call
// Learning.
func MustLearning(x *Instance, opts ...Option) *Schedule {
	s, err := Learning(x, opts...)
	if err != nil {
		panic(fmt.Sprintf("suu: learning: %v", err))
	}
	return s
}

// Gantt renders the first maxSteps steps of an oblivious schedule as a
// machine×time text chart ('.' = idle). Returns an error for adaptive
// schedules, which have no fixed timetable. maxSteps ≤ 0 renders the
// whole prefix.
func (s *Schedule) Gantt(maxSteps int) (string, error) {
	o, ok := s.policy.(*sched.Oblivious)
	if !ok {
		return "", errors.New("suu: Gantt requires an oblivious schedule")
	}
	return o.Gantt(maxSteps), nil
}

// MarshalJSON serializes an oblivious schedule (prefix + round-robin
// tail) for deployment; adaptive schedules are not serializable and
// return an error.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	o, ok := s.policy.(*sched.Oblivious)
	if !ok {
		return nil, errors.New("suu: only oblivious schedules are serializable")
	}
	return json.Marshal(struct {
		Kind      string           `json:"kind"`
		Guarantee string           `json:"guarantee"`
		Schedule  *sched.Oblivious `json:"schedule"`
	}{s.Kind, s.Guarantee, o})
}

// LoadSchedule deserializes a schedule produced by MarshalJSON.
func LoadSchedule(data []byte) (*Schedule, error) {
	var raw struct {
		Kind      string           `json:"kind"`
		Guarantee string           `json:"guarantee"`
		Schedule  *sched.Oblivious `json:"schedule"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, err
	}
	if raw.Schedule == nil || raw.Schedule.M <= 0 {
		return nil, errors.New("suu: schedule payload missing")
	}
	return &Schedule{
		policy:    raw.Schedule,
		Kind:      raw.Kind,
		Guarantee: raw.Guarantee,
		PrefixLen: raw.Schedule.Len(),
	}, nil
}
