module suu

go 1.24
