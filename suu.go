// Package suu is a Go implementation of the approximation algorithms
// of Lin & Rajaraman, "Approximation Algorithms for Multiprocessor
// Scheduling under Uncertainty" (SPAA 2007).
//
// The problem: n unit-time jobs must be executed by m machines under
// precedence constraints; when machine i works on job j for one step,
// the job completes with probability p[i][j], independently across
// machines and steps. Several machines may gang up on one job. The
// goal is to minimize the expected makespan.
//
// Quick start:
//
//	inst := suu.NewInstance(3, 2)
//	inst.SetProb(0, 0, 0.9) // machine 0 is good at job 0
//	inst.SetProb(1, 1, 0.8)
//	inst.SetProb(0, 2, 0.3)
//	inst.AddPrecedence(0, 1) // job 0 before job 1
//	s, err := suu.Solve(inst, suu.WithSeed(7))
//	est, err := s.EstimateMakespan(inst, 1000)
//
// Solve dispatches on the shape of the precedence dag to the paper's
// strongest applicable construction:
//
//	independent jobs  → LP-based oblivious schedule (Theorem 4.5)
//	disjoint chains   → LP + rounding + random delays (Theorem 4.4)
//	in-/out-forests   → chain decomposition pipeline (Theorem 4.8)
//	mixed forests     → per-component decomposition (Theorem 4.7)
//	anything else     → level-decomposition fallback (correct; no
//	                    polylog guarantee from the paper)
//
// Every construction — the dispatch targets above, the adaptive
// policy (Theorem 3.3), the combinatorial oblivious schedule
// (Theorem 3.6), exact small-instance optima (Malewicz's dynamic
// program), the online learner, and the baselines — lives in the
// solver registry (internal/solve); Solve and the cmd/ tools are thin
// dispatchers over it.
//
// Dynamic scenarios — staggered job arrivals, machine breakdown
// windows, and hidden Markov-modulated failure bursts — wrap an
// instance via NewScenario and are evaluated with the same options
// vocabulary as everything else; see Scenario.
package suu

import (
	"errors"
	"fmt"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/solve"
)

// Instance is an SUU problem instance under construction.
type Instance struct {
	inner *model.Instance
}

// NewInstance returns an instance with nJobs jobs and nMachines
// machines, all probabilities zero, and no precedence constraints.
func NewInstance(nJobs, nMachines int) *Instance {
	return &Instance{inner: model.New(nJobs, nMachines)}
}

// FromMatrix builds an instance from a [machine][job] probability
// matrix and a list of precedence edges (before, after).
func FromMatrix(p [][]float64, edges [][2]int) (*Instance, error) {
	if len(p) == 0 || len(p[0]) == 0 {
		return nil, errors.New("suu: empty probability matrix")
	}
	in := NewInstance(len(p[0]), len(p))
	for i := range p {
		if len(p[i]) != len(p[0]) {
			return nil, fmt.Errorf("suu: ragged matrix row %d", i)
		}
		for j := range p[i] {
			in.inner.P[i][j] = p[i][j]
		}
	}
	for _, e := range edges {
		if err := in.AddPrecedence(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return in, in.Validate()
}

// Jobs returns the number of jobs.
func (x *Instance) Jobs() int { return x.inner.N }

// Machines returns the number of machines.
func (x *Instance) Machines() int { return x.inner.M }

// SetProb sets the per-step success probability of machine i on job j.
func (x *Instance) SetProb(machine, job int, p float64) {
	x.inner.P[machine][job] = p
}

// Prob returns the success probability of machine i on job j.
func (x *Instance) Prob(machine, job int) float64 {
	return x.inner.P[machine][job]
}

// AddPrecedence declares that job `before` must complete before job
// `after` becomes eligible.
func (x *Instance) AddPrecedence(before, after int) error {
	return x.inner.Prec.AddEdge(before, after)
}

// Validate checks all structural invariants (dimensions, probability
// ranges, acyclicity, and that every job has a capable machine).
func (x *Instance) Validate() error { return x.inner.Validate() }

// Class describes the precedence family ("independent", "chains",
// "out-forest", "in-forest", "mixed-forest", or "general"), which
// determines the guarantee Solve can offer.
func (x *Instance) Class() string { return x.inner.Prec.Classify().String() }

// Width returns the dag width (maximum antichain) — Malewicz's
// hardness parameter.
func (x *Instance) Width() int { return x.inner.Prec.Width() }

// Depth returns the number of jobs on the longest precedence path.
func (x *Instance) Depth() int { return x.inner.Prec.Depth() }

// Clone returns an independent deep copy.
func (x *Instance) Clone() *Instance { return &Instance{inner: x.inner.Clone()} }

// Solve computes an oblivious schedule using the strongest
// construction the paper offers for the instance's precedence class:
// it classifies the dag and dispatches to the best-ranked applicable
// solver in the registry (see the package comment for the resulting
// dispatch table).
func Solve(x *Instance, opts ...Option) (*Schedule, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	_, res, err := solve.Auto(x.inner, buildParams(opts))
	if err != nil {
		return nil, err
	}
	return fromResult(res), nil
}

// registrySchedule builds the named registry solver; it panics on an
// unknown id, which would be a programming error in this package.
func registrySchedule(id string, x *Instance, par core.Params) (*Schedule, error) {
	s, ok := solve.Get(id)
	if !ok {
		panic(fmt.Sprintf("suu: solver %q not registered", id))
	}
	res, err := s.Build(x.inner, par)
	if err != nil {
		return nil, err
	}
	return fromResult(res), nil
}

// Adaptive returns SUU-I-ALG (Theorem 3.3): the greedy adaptive policy
// that reruns MSM-ALG on the unfinished eligible jobs every step. For
// independent jobs its expected makespan is O(log n)·OPT; with
// precedence constraints it is a feasible greedy heuristic.
//
// Like every construction in this package it takes ...Option and
// returns (*Schedule, error); MustAdaptive is the panicking shorthand.
func Adaptive(x *Instance, opts ...Option) (*Schedule, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return registrySchedule("adaptive", x, buildParams(opts))
}

// MustAdaptive is Adaptive panicking on error — the construction
// itself cannot fail, so the only panics are invalid instances. It
// exists for the callers that used the pre-redesign error-free
// signature; new code should call Adaptive.
func MustAdaptive(x *Instance, opts ...Option) *Schedule {
	s, err := Adaptive(x, opts...)
	if err != nil {
		panic(fmt.Sprintf("suu: adaptive: %v", err))
	}
	return s
}

// ObliviousCombinatorial returns SUU-I-OBL (Theorem 3.6) for
// independent jobs: a pure combinatorial (LP-free) oblivious schedule
// with expected makespan O(log² n)·OPT.
func ObliviousCombinatorial(x *Instance, opts ...Option) (*Schedule, error) {
	return registrySchedule("comb-oblivious", x, buildParams(opts))
}

// Optimal computes the exact optimal regimen and its expected makespan
// via dynamic programming over unfinished-job states (Malewicz). Only
// feasible for small instances; returns opt.ErrTooLarge beyond the
// guards.
func Optimal(x *Instance) (*Schedule, float64, error) {
	s, ok := solve.Get("optimal")
	if !ok {
		panic("suu: optimal solver not registered")
	}
	res, err := s.Build(x.inner, core.DefaultParams())
	if err != nil {
		return nil, 0, err
	}
	return fromResult(res), res.ExactValue, nil
}

// LowerBound computes a certified lower bound on the optimal expected
// makespan: the maximum of the Lemma 4.2 LP bound T*/16 (the (LP1)
// relaxation is solved over the instance's minimum chain cover, whose
// constraints relax the true dag's) and elementary bounds (n/m, dag
// depth, per-job all-machines geometric time).
func LowerBound(x *Instance, opts ...Option) (float64, error) {
	if err := x.Validate(); err != nil {
		return 0, err
	}
	par := buildParams(opts)
	cover := x.inner.Prec.MinChainCover()
	fs, err := core.SolveLP1(x.inner, cover, par.MassTarget)
	if err != nil {
		return 0, err
	}
	return core.CombinedLowerBound(x.inner, fs.T), nil
}

// fromResult wraps a registry result in the public Schedule type.
func fromResult(res *solve.Result) *Schedule {
	return &Schedule{
		policy:     res.Policy,
		Kind:       res.Kind,
		Guarantee:  res.Guarantee,
		Adaptive:   res.Adaptive,
		PrefixLen:  res.PrefixLen,
		CoreLength: res.CoreLength,
		LPValue:    res.LPValue,
		LowerBound: res.LowerBound,
	}
}
