package suu

import (
	"strings"
	"testing"
)

func parityInstance() *Instance {
	x := NewInstance(6, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			x.SetProb(i, j, 0.2+0.1*float64(i+j)/8)
		}
	}
	if err := x.AddPrecedence(0, 2); err != nil {
		panic(err)
	}
	if err := x.AddPrecedence(1, 3); err != nil {
		panic(err)
	}
	return x
}

// The redesigned Adaptive/Learning and their Must* shims must produce
// bit-identical schedules and estimates — the Must forms ARE the old
// call paths.
func TestMustWrappersParity(t *testing.T) {
	x := parityInstance()
	a1, err := Adaptive(x)
	if err != nil {
		t.Fatal(err)
	}
	a2 := MustAdaptive(x)
	e1, err := a1.EstimateMakespan(x, 300, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := a2.EstimateMakespan(x, 300, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("Adaptive vs MustAdaptive diverged: %+v vs %+v", e1, e2)
	}
	l1, err := Learning(x, WithOptimism(0.5))
	if err != nil {
		t.Fatal(err)
	}
	l2 := MustLearning(x, WithOptimism(0.5))
	if l1.Kind != l2.Kind || l1.Guarantee != l2.Guarantee {
		t.Fatalf("Learning vs MustLearning metadata diverged")
	}
	bad := NewInstance(2, 1) // job 1 has no capable machine
	bad.SetProb(0, 0, 0.5)
	if _, err := Adaptive(bad); err == nil {
		t.Fatal("Adaptive accepted invalid instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdaptive did not panic on invalid instance")
		}
	}()
	MustAdaptive(bad)
}

// Pre-redesign estimation call paths (WithSimSeed/WithMaxSteps under
// the EstimateOption name) must keep producing the exact values they
// did, and the engine record must be populated.
func TestEstimateOptionAliasParity(t *testing.T) {
	x := parityInstance()
	s, err := Solve(x, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var opts []EstimateOption
	opts = append(opts, WithSimSeed(11), WithMaxSteps(100000))
	e1, err := s.EstimateMakespan(x, 400, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Engine.Name == "" || e1.Engine.Workers != 1 {
		t.Fatalf("engine record missing: %+v", e1.Engine)
	}
	// Fanning out must not change a bit beyond the worker count.
	e4, err := s.EstimateMakespan(x, 400, WithSimSeed(11), WithMaxSteps(100000), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	e4.Engine.Workers = e1.Engine.Workers
	if e1 != e4 {
		t.Fatalf("WithWorkers changed the estimate: %+v vs %+v", e1, e4)
	}
}

// The regression pin of the scenario layer: a Scenario with zero
// events must be bit-identical to the static path — schedules,
// estimates and engine records — at any worker count.
func TestScenarioZeroEventBitIdentical(t *testing.T) {
	x := parityInstance()
	s, err := Solve(x, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(x)
	if !sc.Static() {
		t.Fatal("event-free scenario not Static")
	}
	for _, workers := range []int{1, 4} {
		opts := []Option{WithSimSeed(2), WithWorkers(workers)}
		want, err := s.EstimateMakespan(x, 500, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.EstimateMakespan(s, 500, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: scenario zero-event diverged: %+v vs %+v", workers, got, want)
		}
		if got.Engine.Name == "dynamic-step" {
			t.Fatal("zero-event scenario ran the dynamic walk")
		}
		// Rolling with the same seed must reproduce Solve exactly.
		roll, err := sc.EstimateRolling(500, WithSeed(7), WithSimSeed(2), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if roll != want {
			t.Fatalf("workers=%d: zero-event rolling diverged from Solve: %+v vs %+v", workers, roll, want)
		}
	}
}

// Public smoke test of a genuinely dynamic scenario: events delay
// completion, the dynamic engine is reported, worker counts do not
// change results, and builder errors surface.
func TestScenarioDynamicPublic(t *testing.T) {
	x := parityInstance()
	s, err := Solve(x, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(x).
		ArriveAt(5, 6).
		Breakdown(0, 2, 8).
		Burst(-1, 0.2, 0.9, 0.4)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	obl, err := sc.EstimateMakespan(s, 400, WithSimSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if obl.Engine.Name != "dynamic-step" {
		t.Fatalf("engine %q, want dynamic-step", obl.Engine.Name)
	}
	ad, err := sc.EstimateAdaptive(400, WithSimSeed(3), WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	roll, err := sc.EstimateRolling(400, WithSeed(7), WithSimSeed(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if ad.Mean <= 0 || roll.Mean <= 0 {
		t.Fatalf("degenerate means: adaptive %v rolling %v", ad.Mean, roll.Mean)
	}
	ad1, err := sc.EstimateAdaptive(400, WithSimSeed(3), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ad.Engine.Workers = ad1.Engine.Workers
	if ad != ad1 {
		t.Fatalf("adaptive estimate depends on workers: %+v vs %+v", ad, ad1)
	}
	if _, err := sc.EstimateRolling(50, WithSolver("no-such")); err == nil {
		t.Fatal("unknown solver accepted")
	}
	bad := NewScenario(x).ArriveAt(99, 1)
	if _, err := bad.EstimateAdaptive(50); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("builder error not surfaced: %v", err)
	}
}
