package suu

import (
	"encoding/json"
	"reflect"
	"testing"

	"suu/internal/core"
	"suu/internal/dag"
	"suu/internal/sched"
)

// oldSolve replicates the pre-registry Solve dispatch verbatim (the
// hard-coded class switch over internal/core constructions). The
// parity tests pin registry-dispatched Solve to this path bit for
// bit; if they ever diverge, the refactor changed behaviour, not just
// structure.
func oldSolve(x *Instance, par core.Params) (sched.Policy, string, string, float64, float64, int, error) {
	switch x.inner.Prec.Classify() {
	case dag.ClassIndependent:
		res, err := core.SUUIndependentLP(x.inner, par)
		if err != nil {
			return nil, "", "", 0, 0, 0, err
		}
		return res.Schedule, "oblivious-lp (Thm 4.5)", "O(log n · log min(n,m))", res.TStar, res.LowerBound, res.CoreLength, nil
	case dag.ClassChains:
		res, err := core.SUUChains(x.inner, par)
		if err != nil {
			return nil, "", "", 0, 0, 0, err
		}
		return res.Schedule, "chains (Thm 4.4)", "O(log m · log n · log(n+m)/loglog(n+m))", res.TStar, res.LowerBound, res.CoreLength, nil
	case dag.ClassOutForest, dag.ClassInForest:
		res, err := core.SUUForest(x.inner, par)
		if err != nil {
			return nil, "", "", 0, 0, 0, err
		}
		return res.Schedule, "trees (Thm 4.8)", "O(log m · log² n)", 0, res.LowerBound, res.CoreLength, nil
	case dag.ClassMixedForest:
		res, err := core.SUUForest(x.inner, par)
		if err != nil {
			return nil, "", "", 0, 0, 0, err
		}
		return res.Schedule, "forest (Thm 4.7)", "O(log m · log² n · log(n+m)/loglog(n+m))", 0, res.LowerBound, res.CoreLength, nil
	default:
		res, err := core.SUUForest(x.inner, par)
		if err != nil {
			return nil, "", "", 0, 0, 0, err
		}
		return res.Schedule, "level-fallback", "O(depth · chains-factor); outside the paper's classes", 0, res.LowerBound, res.CoreLength, nil
	}
}

// parityInstances covers every precedence class the dispatcher
// distinguishes.
func parityInstances() map[string]func() *Instance {
	return map[string]func() *Instance{
		"independent": func() *Instance { return tinyIndependent() },
		"chains": func() *Instance {
			x := tinyIndependent()
			x.AddPrecedence(0, 1)
			return x
		},
		"out-forest": func() *Instance {
			x := tinyIndependent()
			x.AddPrecedence(0, 1)
			x.AddPrecedence(0, 2)
			return x
		},
		"in-forest": func() *Instance {
			x := tinyIndependent()
			x.AddPrecedence(1, 0)
			x.AddPrecedence(2, 0)
			return x
		},
		"mixed-forest": func() *Instance {
			x := NewInstance(5, 2)
			for j := 0; j < 5; j++ {
				x.SetProb(0, j, 0.6)
				x.SetProb(1, j, 0.4)
			}
			x.AddPrecedence(0, 1)
			x.AddPrecedence(2, 1)
			x.AddPrecedence(3, 4)
			return x
		},
		"general": func() *Instance {
			x := NewInstance(4, 2)
			for j := 0; j < 4; j++ {
				x.SetProb(0, j, 0.6)
				x.SetProb(1, j, 0.4)
			}
			x.AddPrecedence(0, 2)
			x.AddPrecedence(1, 2)
			x.AddPrecedence(1, 3)
			x.AddPrecedence(0, 3)
			return x
		},
	}
}

// TestSolveRegistryParity pins the registry dispatch to the
// pre-refactor construction path: identical schedule steps, metadata,
// bounds, and (bit-identical) makespan estimates for fixed seeds.
func TestSolveRegistryParity(t *testing.T) {
	for name, build := range parityInstances() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 5, 9} {
				x := build()
				par := core.DefaultParams()
				par.Seed = seed
				oldPol, oldKind, oldGuar, oldTStar, oldLB, oldCore, err := oldSolve(x, par)
				if err != nil {
					t.Fatal(err)
				}
				s, err := Solve(x, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				if s.Kind != oldKind || s.Guarantee != oldGuar {
					t.Fatalf("metadata drift: got (%q, %q), want (%q, %q)", s.Kind, s.Guarantee, oldKind, oldGuar)
				}
				if s.LPValue != oldTStar || s.LowerBound != oldLB || s.CoreLength != oldCore {
					t.Fatalf("diagnostics drift: got (T*=%v, LB=%v, core=%d), want (T*=%v, LB=%v, core=%d)",
						s.LPValue, s.LowerBound, s.CoreLength, oldTStar, oldLB, oldCore)
				}
				oldObl, ok := oldPol.(*sched.Oblivious)
				if !ok {
					t.Fatal("old path did not build an oblivious schedule")
				}
				newObl, ok := s.policy.(*sched.Oblivious)
				if !ok {
					t.Fatal("registry path did not build an oblivious schedule")
				}
				if !reflect.DeepEqual(oldObl.Steps, newObl.Steps) {
					t.Fatalf("schedule steps differ (seed %d)", seed)
				}
				a, _ := json.Marshal(oldObl)
				b, _ := json.Marshal(newObl)
				if string(a) != string(b) {
					t.Fatalf("schedule JSON differs (seed %d)", seed)
				}
				// Simulated estimates are a deterministic function of
				// (schedule, seed), so parity of schedules implies parity of
				// estimates; assert it end to end anyway.
				e1, err := s.EstimateMakespan(x, 60, WithSimSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				e2 := estimateOblivious(t, x, oldObl, 60, seed)
				if e1.Mean != e2 {
					t.Fatalf("estimate drift: %v != %v", e1.Mean, e2)
				}
			}
		})
	}
}

func estimateOblivious(t *testing.T, x *Instance, o *sched.Oblivious, reps int, seed int64) float64 {
	t.Helper()
	s := &Schedule{policy: o}
	e, err := s.EstimateMakespan(x, reps, WithSimSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e.Mean
}

// TestBaselineRegistryParity pins the registry-backed baselines to
// their direct-construction behaviour.
func TestBaselineRegistryParity(t *testing.T) {
	x := tinyIndependent()
	for _, b := range []Baseline{BaselineGreedy, BaselineRoundRobin, BaselineAllOnOne, BaselineRandom} {
		s, err := NewBaseline(x, b, 3)
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind != string(b) || s.Guarantee != "none (baseline)" || !s.Adaptive {
			t.Errorf("%s: metadata drift: %+v", b, s)
		}
		m1, _ := s.RunOnce(x, 11, 100000)
		s2, err := NewBaseline(x, b, 3)
		if err != nil {
			t.Fatal(err)
		}
		m2, _ := s2.RunOnce(x, 11, 100000)
		if m1 != m2 {
			t.Errorf("%s: not deterministic across registry builds", b)
		}
	}
	// Non-baseline registry ids must not leak through NewBaseline.
	if _, err := NewBaseline(x, Baseline("chains"), 1); err == nil {
		t.Error("NewBaseline accepted a non-baseline solver id")
	}
}
