package suu_test

import (
	"fmt"

	"suu"
)

// ExampleSolve builds a two-chain project and lets the dispatcher pick
// the Theorem 4.4 construction.
func ExampleSolve() {
	inst := suu.NewInstance(4, 2)
	inst.SetProb(0, 0, 0.8)
	inst.SetProb(0, 1, 0.6)
	inst.SetProb(1, 2, 0.7)
	inst.SetProb(1, 3, 0.5)
	inst.AddPrecedence(0, 1) // chain 1: 0 -> 1
	inst.AddPrecedence(2, 3) // chain 2: 2 -> 3

	s, err := suu.Solve(inst, suu.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(inst.Class(), "→", s.Kind)
	// Output: chains → chains (Thm 4.4)
}

// ExampleAdaptive runs the paper's greedy adaptive scheduler.
func ExampleAdaptive() {
	inst := suu.NewInstance(2, 2)
	inst.SetProb(0, 0, 1)
	inst.SetProb(1, 1, 1)

	s := suu.MustAdaptive(inst)
	makespan, completed := s.RunOnce(inst, 1, 100)
	fmt.Println(makespan, completed)
	// Output: 1 true
}

// ExampleOptimal computes an exact optimum for a tiny instance.
func ExampleOptimal() {
	inst := suu.NewInstance(1, 1)
	inst.SetProb(0, 0, 0.5) // geometric with mean 2

	_, topt, err := suu.Optimal(inst)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.1f\n", topt)
	// Output: 2.0
}

// ExampleInstance_Class shows the dag classification driving dispatch.
func ExampleInstance_Class() {
	inst := suu.NewInstance(3, 1)
	for j := 0; j < 3; j++ {
		inst.SetProb(0, j, 0.5)
	}
	fmt.Println(inst.Class())
	inst.AddPrecedence(0, 1)
	inst.AddPrecedence(0, 2)
	fmt.Println(inst.Class())
	// Output:
	// independent
	// out-forest
}
