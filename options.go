package suu

import "suu/internal/core"

// options is the single configuration vocabulary behind every public
// entry point: solver construction (Solve, Adaptive, Learning,
// ObliviousCombinatorial, LowerBound), Monte Carlo estimation
// (EstimateMakespan, MakespanQuantiles) and dynamic scenarios
// (Scenario.Estimate*). Each call reads the fields it cares about and
// ignores the rest, so any Option can be passed anywhere — WithSeed
// means "the seed" whether the thing being seeded is a construction
// or a simulation.
type options struct {
	par      core.Params
	maxSteps int
	simSeed  int64
	workers  int
	solver   string
}

func buildOptions(opts []Option) options {
	o := options{
		par:      core.DefaultParams(),
		maxSteps: 1_000_000,
		simSeed:  1,
		workers:  1,
	}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// buildParams resolves only the solver-facing parameters.
func buildParams(opts []Option) core.Params { return buildOptions(opts).par }

// Option configures any public entry point — solving, estimation, or
// scenario evaluation. All option constructors in this package return
// this one type.
type Option func(*options)

// EstimateOption is the pre-unification name for estimation options.
//
// Deprecated: every option is an Option now; the alias remains so old
// signatures keep compiling unchanged.
type EstimateOption = Option

// WithSeed fixes the seed of every randomized construction step and
// of the Monte Carlo executions. It is the one seed knob: calls that
// both construct and simulate derive their simulation streams from it
// deterministically.
func WithSeed(seed int64) Option {
	return func(o *options) {
		o.par.Seed = seed
		o.simSeed = seed
	}
}

// WithSimSeed seeds only the Monte Carlo executions (default 1),
// leaving construction seeds alone. Prefer WithSeed unless the two
// must differ.
func WithSimSeed(seed int64) Option {
	return func(o *options) { o.simSeed = seed }
}

// WithMassTarget overrides the per-job mass target of the LP
// constructions (default 1/2, the paper's constant).
func WithMassTarget(target float64) Option {
	return func(o *options) { o.par.MassTarget = target }
}

// WithReplicationFactor overrides the σ = factor·⌈log₂ n⌉ schedule
// replication (default 16).
func WithReplicationFactor(factor int) Option {
	return func(o *options) { o.par.ReplicationFactor = factor }
}

// WithDelayTries sets how many random delay vectors the Las-Vegas
// delay search samples (default 64).
func WithDelayTries(tries int) Option {
	return func(o *options) { o.par.DelayTries = tries }
}

// WithOptimism scales the learning policy's UCB-style exploration
// bonus (default 0.7; 0 disables exploration). Ignored outside
// Learning.
func WithOptimism(optimism float64) Option {
	return func(o *options) { o.par.Optimism = optimism }
}

// WithMaxSteps caps each simulated execution (default 1,000,000).
func WithMaxSteps(steps int) Option {
	return func(o *options) { o.maxSteps = steps }
}

// WithWorkers sets the Monte Carlo fan-out: 1 (the default) runs
// sequentially, 0 uses every CPU, n > 1 uses n goroutines. Results
// are bit-identical at any worker count; policies that must observe
// outcomes sequentially silently run with one worker (the Estimate's
// Engine.Workers reports the effective value).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithSolver names the registry solver a rolling scenario estimate
// re-invokes at each event epoch ("" or "auto" dispatches on the
// sub-instance's precedence class). Ignored outside
// Scenario.EstimateRolling.
func WithSolver(id string) Option {
	return func(o *options) { o.solver = id }
}
