package core

import "suu/internal/model"

// TrivialLowerBound returns elementary certified lower bounds on the
// optimal expected makespan, independent of the LP:
//
//   - 1 (at least one step);
//   - n/m (each step completes at most m jobs, since a machine works on
//     a single job per step);
//   - max_j 1/q_j where q_j = 1 − Π_i(1 − p_ij) is job j's best possible
//     single-step completion probability (all machines ganged on j):
//     job j alone needs expected time ≥ 1/q_j;
//   - depth(dag): precedence paths must complete sequentially, one unit
//     step at a time.
func TrivialLowerBound(in *model.Instance) float64 {
	lb := 1.0
	if v := float64(in.N) / float64(in.M); v > lb {
		lb = v
	}
	for j := 0; j < in.N; j++ {
		q := 1.0
		for i := 0; i < in.M; i++ {
			q *= 1 - in.P[i][j]
		}
		q = 1 - q
		if q > 0 {
			if v := 1 / q; v > lb {
				lb = v
			}
		}
	}
	if v := float64(in.Prec.Depth()); v > lb {
		lb = v
	}
	return lb
}

// CombinedLowerBound strengthens the Lemma 4.2 bound T*/16 with the
// trivial bounds. Every component is a valid lower bound on T_OPT, so
// the max is too.
func CombinedLowerBound(in *model.Instance, tStar float64) float64 {
	lb := TrivialLowerBound(in)
	if v := LPLowerBound(tStar); v > lb {
		lb = v
	}
	return lb
}
