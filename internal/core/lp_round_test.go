package core

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/opt"
)

// chainInstance builds an instance whose dag is the given chains over
// jobs 0..n-1 with random probabilities.
func chainInstance(n, m int, chains [][]int, rng *rand.Rand) *model.Instance {
	in := randomInstance(n, m, rng)
	for _, c := range chains {
		for k := 0; k+1 < len(c); k++ {
			in.Prec.MustEdge(c[k], c[k+1])
		}
	}
	return in
}

func fracFeasibility(t *testing.T, in *model.Instance, chains [][]int, fs *FracSolution, target float64) {
	t.Helper()
	// Mass constraints.
	for _, j := range fs.Jobs {
		mass := 0.0
		for i := 0; i < in.M; i++ {
			mass += in.P[i][j] * fs.X[i][j]
		}
		if mass < target-1e-6 {
			t.Errorf("LP mass for job %d = %v < %v", j, mass, target)
		}
	}
	// Load constraints.
	for i := 0; i < in.M; i++ {
		load := 0.0
		for _, j := range fs.Jobs {
			load += fs.X[i][j]
		}
		if load > fs.T+1e-6 {
			t.Errorf("machine %d load %v > t=%v", i, load, fs.T)
		}
	}
	// Chain and window constraints.
	for _, c := range chains {
		sum := 0.0
		for _, j := range c {
			if fs.D[j] < 1-1e-9 {
				t.Errorf("d_%d = %v < 1", j, fs.D[j])
			}
			sum += fs.D[j]
			for i := 0; i < in.M; i++ {
				if fs.X[i][j] > fs.D[j]+1e-6 {
					t.Errorf("x[%d][%d]=%v > d=%v", i, j, fs.X[i][j], fs.D[j])
				}
			}
		}
		if sum > fs.T+1e-6 {
			t.Errorf("chain %v: Σd=%v > t=%v", c, sum, fs.T)
		}
	}
}

func TestSolveLP1FeasibleSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		// Split jobs into 1–3 chains.
		var chains [][]int
		var cur []int
		for j := 0; j < n; j++ {
			cur = append(cur, j)
			if rng.Intn(3) == 0 {
				chains = append(chains, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			chains = append(chains, cur)
		}
		in := chainInstance(n, m, chains, rng)
		fs, err := SolveLP1(in, chains, 0.5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fracFeasibility(t, in, chains, fs, 0.5)
	}
}

func TestSolveLP1SingleJob(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.25
	fs, err := SolveLP1(in, [][]int{{0}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Needs x = 2 steps of p=0.25 for mass 0.5; t >= max(x, d) = 2.
	if math.Abs(fs.T-2) > 1e-6 {
		t.Errorf("T*=%v, want 2", fs.T)
	}
}

func TestSolveLP2MatchesLP1WithoutChains(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	in := randomInstance(4, 3, rng)
	jobs := []int{0, 1, 2, 3}
	singleton := [][]int{{0}, {1}, {2}, {3}}
	fs1, err := SolveLP1(in, singleton, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := SolveLP2(in, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// LP2 drops constraints, so its optimum can only be <= LP1's.
	if fs2.T > fs1.T+1e-6 {
		t.Errorf("LP2 T=%v > LP1 T=%v", fs2.T, fs1.T)
	}
}

// Lemma 4.2 (empirical): T*/16 ≤ T_OPT on instances small enough for
// the exact solver.
func TestLemma42LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(2)
		chains := [][]int{}
		half := n / 2
		if half > 0 {
			c1 := make([]int, half)
			for k := range c1 {
				c1[k] = k
			}
			chains = append(chains, c1)
		}
		c2 := make([]int, n-half)
		for k := range c2 {
			c2[k] = half + k
		}
		chains = append(chains, c2)
		in := chainInstance(n, m, chains, rng)
		fs, err := SolveLP1(in, chains, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		_, topt, err := opt.OptimalRegimen(in)
		if err != nil {
			t.Fatal(err)
		}
		if lb := LPLowerBound(fs.T); lb > topt+1e-9 {
			t.Errorf("trial %d: LP lower bound %v exceeds exact T_OPT %v", trial, lb, topt)
		}
	}
}

func TestRoundLPPostconditions(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		var chains [][]int
		var cur []int
		for j := 0; j < n; j++ {
			cur = append(cur, j)
			if rng.Intn(2) == 0 {
				chains = append(chains, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			chains = append(chains, cur)
		}
		in := chainInstance(n, m, chains, rng)
		fs, err := SolveLP1(in, chains, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ints, err := RoundLP(in, fs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if mm := ints.MinMass(in); mm < 0.5-1e-9 {
			t.Errorf("trial %d: rounded min mass %v < 0.5", trial, mm)
		}
		for i := range ints.X {
			for j := range ints.X[i] {
				if ints.X[i][j] < 0 {
					t.Fatalf("negative count")
				}
				if ints.X[i][j] > 0 && in.P[i][j] == 0 {
					t.Errorf("count on zero-probability pair (%d,%d)", i, j)
				}
			}
		}
		// Load must stay within a polylog factor of T*: generous sanity
		// bound of (Scale·Lambda·4 + 4)·T* + constants.
		bound := float64(ints.Scale*ints.Lambda)*4*(fs.T+1) + 8
		if load := float64(ints.Load()); load > bound {
			t.Errorf("trial %d: load %v exceeds sanity bound %v (S=%d λ=%d T*=%v)",
				trial, load, bound, ints.Scale, ints.Lambda, fs.T)
		}
	}
}

// Force the flow path of the rounding: many machines with small p
// produce fractional x < 1 spread widely, so t < n and buckets engage.
func TestRoundLPFlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, m := 8, 12
	in := model.New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			in.P[i][j] = 0.05 + 0.3*rng.Float64()
		}
	}
	chains := [][]int{}
	for j := 0; j < n; j++ {
		chains = append(chains, []int{j})
	}
	fs, err := SolveLP1(in, chains, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fs.T >= float64(n) {
		t.Skipf("instance did not trigger the t < n case (T*=%v)", fs.T)
	}
	ints, err := RoundLP(in, fs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mm := ints.MinMass(in); mm < 0.5-1e-9 {
		t.Errorf("flow-path min mass %v < 0.5", mm)
	}
	if ints.FlowJobs > 0 {
		if ints.Flow == nil {
			t.Fatal("flow jobs routed but no dump recorded")
		}
		if ints.Flow.RoutedDemand != ints.Flow.TotalDemand {
			t.Errorf("flow under-routed: %d < %d", ints.Flow.RoutedDemand, ints.Flow.TotalDemand)
		}
		if ints.Flow.String() == "" {
			t.Error("empty flow dump")
		}
	}
	t.Logf("rounded: scale=%d lambda=%d flowJobs=%d roundedUp=%d load=%d",
		ints.Scale, ints.Lambda, ints.FlowJobs, ints.RoundedUp, ints.Load())
}

func TestRoundLPCaseTgeN(t *testing.T) {
	// One machine, poor probabilities: T* is big (>= n), exercising the
	// simple round-up case.
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 0.1, 0.1
	chains := [][]int{{0, 1}}
	fs, err := SolveLP1(in, chains, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fs.T < 2 {
		t.Fatalf("expected T* >= n, got %v", fs.T)
	}
	ints, err := RoundLP(in, fs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ints.RoundedUp != 2 || ints.FlowJobs != 0 {
		t.Errorf("expected pure round-up case: %+v", ints)
	}
	if mm := ints.MinMass(in); mm < 0.5-1e-9 {
		t.Errorf("min mass %v", mm)
	}
}
