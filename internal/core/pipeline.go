package core

import (
	"errors"
	"fmt"
	"math/rand"

	"suu/internal/dag"
	"suu/internal/lp"
	"suu/internal/model"
	"suu/internal/sched"
)

// BuildPseudo lays the integral counts out as a pseudo-schedule
// (Theorem 4.1's final construction): within each chain, job j owns a
// window of L_j = max_i X[i][j] consecutive steps starting after all
// its chain predecessors' windows (ψ_j = Σ_{j'≺j} L_{j'}); machine i
// serves j during the first X[i][j] steps of the window. Different
// chains become separate tracks, so the union may congest machines —
// that is repaired later by delays + flattening.
func BuildPseudo(in *model.Instance, chains [][]int, x [][]int) *sched.Pseudo {
	p := &sched.Pseudo{M: in.M}
	for _, chain := range chains {
		total := 0
		winLen := make([]int, len(chain))
		for k, j := range chain {
			l := 0
			for i := 0; i < in.M; i++ {
				if x[i][j] > l {
					l = x[i][j]
				}
			}
			winLen[k] = l
			total += l
		}
		steps := make([]sched.Assignment, total)
		for s := range steps {
			steps[s] = sched.NewIdle(in.M)
		}
		offset := 0
		for k, j := range chain {
			for i := 0; i < in.M; i++ {
				for s := 0; s < x[i][j]; s++ {
					steps[offset+s][i] = j
				}
			}
			offset += winLen[k]
		}
		p.Tracks = append(p.Tracks, sched.ChainTrack{Steps: steps})
	}
	return p
}

// PackSequential converts integral counts for independent jobs into a
// feasible oblivious prefix directly: each machine processes its
// assigned job-steps back to back (Theorem 4.5 needs no delays because
// there are no windows to respect). The prefix length is the maximum
// machine load.
func PackSequential(in *model.Instance, x [][]int) *sched.Oblivious {
	length := 0
	for i := range x {
		l := 0
		for _, c := range x[i] {
			l += c
		}
		if l > length {
			length = l
		}
	}
	steps := make([]sched.Assignment, length)
	for s := range steps {
		steps[s] = sched.NewIdle(in.M)
	}
	for i := range x {
		pos := 0
		for j, c := range x[i] {
			for k := 0; k < c; k++ {
				steps[pos][i] = j
				pos++
			}
		}
	}
	return &sched.Oblivious{M: in.M, Steps: steps}
}

// splitMixSource is a SplitMix64-backed rand.Source64: statistically
// solid for the delay search and ~500× cheaper to seed than the
// stdlib source, which matters when the forest pipeline builds one
// per decomposition block.
type splitMixSource struct{ s uint64 }

func newSplitMixSource(seed int64) *splitMixSource {
	return &splitMixSource{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (s *splitMixSource) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMixSource) Seed(seed int64) { *s = *newSplitMixSource(seed) }

// finishSchedule replicates the core prefix σ times and appends the
// topological round-robin tail Σ_o,3 (Section 4.1's schedule
// replication), producing the final oblivious schedule.
func finishSchedule(in *model.Instance, core *sched.Oblivious, sigma int) (*sched.Oblivious, error) {
	order, err := in.Prec.TopoOrder()
	if err != nil {
		return nil, err
	}
	repl := core.Replicate(sigma)
	repl.Tail = &sched.TopoRoundRobin{M: in.M, Order: order}
	return repl, nil
}

// ChainsResult extends OblResult with the chain pipeline's diagnostics.
type ChainsResult struct {
	OblResult
	// TStar is the (LP1) optimum (T* ≤ 16·T_OPT by Lemma 4.2).
	TStar float64
	// LowerBound is T*/16, a certified lower bound on T_OPT.
	LowerBound float64
	// MaxLoad is Π_max of the pseudo-schedule before delays.
	MaxLoad int
	// Congestion is the max machine congestion after the chosen delays.
	Congestion int
	// Delays is the chosen per-chain delay vector.
	Delays []int
	// Round is the integral rounding used.
	Round *IntSolution
	// LPPivots, LPRows, LPCols and LPNnz report the LP solve's effort
	// and dimensions, for the perf harness.
	LPPivots, LPRows, LPCols, LPNnz int
	// LPBasis is the optimal simplex basis of the solve, for warm-start
	// caches (see Params.WarmBasis). Non-nil only on the direct sparse
	// (LP2) path.
	LPBasis *lp.Basis
}

// SUUChains is the algorithm of Theorem 4.4 for disjoint-chain
// precedence constraints: solve (LP1), round (Theorem 4.1), lay out
// the pseudo-schedule, choose random delays, flatten to a feasible
// oblivious schedule, replicate, and append the round-robin tail. The
// expected makespan of the result is within
// O(log m · log n · log(n+m)/loglog(n+m)) of optimal.
func SUUChains(in *model.Instance, par Params) (*ChainsResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	chains, err := in.Prec.Chains()
	if err != nil {
		return nil, fmt.Errorf("core: SUU-C needs disjoint chains: %w", err)
	}
	return chainsOnBlocks(in, chains, par)
}

// chainsOnBlocks runs the chain pipeline on an explicit chain set
// (either the whole instance's chains or one decomposition block).
func chainsOnBlocks(in *model.Instance, chains [][]int, par Params) (*ChainsResult, error) {
	return chainsOnBlocksDelayed(in, chains, par, 0, nil)
}

// SUUChainsOnBlock runs the Theorem 4.4 chain pipeline (full
// [0, Π_max] delay range) on an explicit set of disjoint chains — a
// subset of the instance's jobs, such as one decomposition block. Used
// by the delay-range ablation; SUUChains validates the whole dag is
// chains, this entry point trusts the caller's chain set.
func SUUChainsOnBlock(in *model.Instance, chains [][]int, par Params) (*ChainsResult, error) {
	return chainsOnBlocksDelayed(in, chains, par, 0, nil)
}

// chainsOnBlocksDelayed is chainsOnBlocks with an explicit delay-range
// divisor: delays are drawn from [0, Π_max/divisor] (divisor <= 1
// means the full [0, Π_max] range of Theorem 4.4). Theorem 4.8's
// specialized tree analysis samples from [0, O(Π_max/log n)], trading
// slightly higher congestion for much shorter delayed prefixes. warm
// (may be nil) carries the crash-basis bias across a decomposition's
// per-block solves.
func chainsOnBlocksDelayed(in *model.Instance, chains [][]int, par Params, divisor int, warm *LPWarm) (*ChainsResult, error) {
	frac, err := solveLP1(in, chains, par.MassTarget, lpOptions{dense: par.DenseLP, warm: warm})
	if err != nil {
		return nil, err
	}
	ints, err := RoundLP(in, frac, par.MassTarget)
	if err != nil {
		return nil, err
	}
	pseudo := BuildPseudo(in, chains, ints.X)
	maxLoad := pseudo.MaxLoad()
	maxDelay := maxLoad
	if divisor > 1 {
		maxDelay = maxLoad / divisor
		if maxDelay < 1 {
			maxDelay = 1
		}
	}
	rng := rand.New(newSplitMixSource(par.Seed))
	delays, cong := pseudo.BestDelays(maxDelay, par.DelayTries, rng)
	flat := pseudo.WithDelays(delays).Flatten().Compact()

	nScope := 0
	for _, c := range chains {
		nScope += len(c)
	}
	final, err := finishSchedule(in, flat, par.sigma(nScope))
	if err != nil {
		return nil, err
	}
	return &ChainsResult{
		OblResult: OblResult{
			Schedule:     final,
			CoreLength:   flat.Len(),
			MassAchieved: ints.MinMass(in),
			TGuess:       int(frac.T + 1),
		},
		TStar:      frac.T,
		LowerBound: CombinedLowerBound(in, frac.T),
		MaxLoad:    maxLoad,
		Congestion: cong,
		Delays:     delays,
		Round:      ints,
		LPPivots:   frac.Iterations,
		LPRows:     frac.Rows,
		LPCols:     frac.Cols,
		LPNnz:      frac.Nnz,
	}, nil
}

// SUUIndependentLP is the LP-based oblivious algorithm of Theorem 4.5
// for independent jobs: solve (LP2), round, pack each machine's counts
// back to back, replicate, append the tail. Expected makespan within
// O(log n · log min(n,m)) of optimal.
func SUUIndependentLP(in *model.Instance, par Params) (*ChainsResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Prec.E() != 0 {
		return nil, errors.New("core: SUUIndependentLP requires independent jobs")
	}
	jobs := make([]int, in.N)
	for j := range jobs {
		jobs[j] = j
	}
	frac, err := solveLP2(in, jobs, par.MassTarget, lpOptions{dense: par.DenseLP, crash: par.WarmBasis})
	if err != nil {
		return nil, err
	}
	ints, err := RoundLP(in, frac, par.MassTarget)
	if err != nil {
		return nil, err
	}
	packed := PackSequential(in, ints.X)
	final, err := finishSchedule(in, packed, par.sigma(in.N))
	if err != nil {
		return nil, err
	}
	return &ChainsResult{
		OblResult: OblResult{
			Schedule:     final,
			CoreLength:   packed.Len(),
			MassAchieved: ints.MinMass(in),
			TGuess:       int(frac.T + 1),
		},
		TStar:      frac.T,
		LowerBound: CombinedLowerBound(in, frac.T),
		MaxLoad:    packed.Len(),
		Congestion: 1,
		Round:      ints,
		LPPivots:   frac.Iterations,
		LPRows:     frac.Rows,
		LPCols:     frac.Cols,
		LPNnz:      frac.Nnz,
		LPBasis:    frac.Basis,
	}, nil
}

// ForestResult aggregates the per-block chain results of the
// tree/forest pipeline.
type ForestResult struct {
	OblResult
	// Decomposition is the chain decomposition used.
	Decomposition *dag.Decomposition
	// BlockResults holds each block's chain-pipeline diagnostics.
	BlockResults []*ChainsResult
	// LowerBound is the largest per-block LP lower bound (each block is
	// a subset of the jobs, so each bound is valid for the full
	// instance).
	LowerBound float64
	// LPPivots totals the simplex pivots across all block solves;
	// LPRows, LPCols and LPNnz report the largest block LP's
	// dimensions.
	LPPivots, LPRows, LPCols, LPNnz int
}

// SUUForest is the algorithm of Theorems 4.7 and 4.8: decompose the
// dag into O(log n) blocks of disjoint chains (rank decomposition for
// in-/out-forests, per-component merge for mixed forests, level
// decomposition as the general fallback), run the chain pipeline on
// every block, and concatenate the block schedules in order. Property
// (ii) of the decomposition makes the concatenation precedence-
// feasible; each block is replicated before the next begins so that
// all its jobs finish with high probability.
func SUUForest(in *model.Instance, par Params) (*ForestResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	dc := in.Prec.ChainDecomposition()
	res := &ForestResult{Decomposition: dc}
	var combined *sched.Oblivious
	coreLen := 0
	minMass := 1.0
	// Theorem 4.8 (rank-decomposed trees/forests): delays within a
	// block are drawn from [0, O(Π_max/log n)]; the general Theorem 4.7
	// fallback keeps the full range.
	divisor := 0
	switch dc.Method {
	case "rank-out", "rank-in", "per-component":
		divisor = log2Ceil(in.N)
	}
	// Consecutive block solves share a warm-start context: each block's
	// crash basis is biased away from the machines earlier blocks
	// loaded, which shortens phase 1 measurably on specialist-shaped
	// instances.
	warm := NewLPWarm(in.M)
	for bi, block := range dc.Blocks {
		br, err := chainsOnBlocksDelayed(in, block.Chains, par, divisor, warm)
		if err != nil {
			return nil, fmt.Errorf("core: block %d: %w", bi, err)
		}
		res.BlockResults = append(res.BlockResults, br)
		res.LPPivots += br.LPPivots
		if br.LPRows > res.LPRows {
			res.LPRows, res.LPCols, res.LPNnz = br.LPRows, br.LPCols, br.LPNnz
		}
		if br.LowerBound > res.LowerBound {
			res.LowerBound = br.LowerBound
		}
		if br.MassAchieved < minMass {
			minMass = br.MassAchieved
		}
		coreLen += br.CoreLength
		// br.Schedule's prefix is the replicated block schedule; strip
		// its tail and concatenate.
		blockSched := &sched.Oblivious{M: in.M, Steps: br.Schedule.Steps}
		if combined == nil {
			combined = blockSched
		} else {
			combined = sched.Concat(combined, blockSched)
		}
	}
	if tlb := TrivialLowerBound(in); tlb > res.LowerBound {
		res.LowerBound = tlb
	}
	order, err := in.Prec.TopoOrder()
	if err != nil {
		return nil, err
	}
	combined.Tail = &sched.TopoRoundRobin{M: in.M, Order: order}
	res.Schedule = combined
	res.CoreLength = coreLen
	res.MassAchieved = minMass
	return res, nil
}
