package core

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
)

func TestLearningPolicyCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	in := randomInstance(6, 3, rng)
	lp := NewLearningPolicy(in, 0.5)
	res := sim.Run(in, lp, 1_000_000, rand.New(rand.NewSource(1)))
	if !res.Completed {
		t.Fatal("learning policy did not complete")
	}
}

func TestLearningPolicySingleMachineEstimateConverges(t *testing.T) {
	// One machine, one hard job with p = 0.2: posterior mean must
	// approach 0.2 as attempts accumulate across repeated episodes.
	in := model.New(1, 1)
	in.P[0][0] = 0.2
	lp := NewLearningPolicy(in, 0)
	rng := rand.New(rand.NewSource(5))
	for episode := 0; episode < 400; episode++ {
		sim.Run(in, lp, 100000, rng)
	}
	est := lp.Estimate(0, 0)
	if math.Abs(est-0.2) > 0.05 {
		t.Errorf("estimate %v, want ≈0.2 (attempts %v)", est, lp.Attempts(0, 0))
	}
}

func TestLearningPolicyPrefersBetterMachinePair(t *testing.T) {
	// Two jobs, two machines with strongly asymmetric skills. After
	// enough episodes, the learner's estimates should rank each
	// machine's own specialty above the other job.
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.9, 0.05
	in.P[1][0], in.P[1][1] = 0.05, 0.9
	lp := NewLearningPolicy(in, 1.0)
	rng := rand.New(rand.NewSource(7))
	for episode := 0; episode < 300; episode++ {
		sim.Run(in, lp, 100000, rng)
	}
	if lp.Estimate(0, 0) <= lp.Estimate(0, 1) {
		t.Errorf("machine 0: est(job0)=%v <= est(job1)=%v", lp.Estimate(0, 0), lp.Estimate(0, 1))
	}
	if lp.Estimate(1, 1) <= lp.Estimate(1, 0) {
		t.Errorf("machine 1: est(job1)=%v <= est(job0)=%v", lp.Estimate(1, 1), lp.Estimate(1, 0))
	}
}

func TestLearningPolicyApproachesAdaptive(t *testing.T) {
	// With many episodes of training, the learner's per-episode
	// makespan should approach the clairvoyant adaptive policy's.
	rng := rand.New(rand.NewSource(11))
	in := randomInstance(4, 2, rng)
	lp := NewLearningPolicy(in, 0.5)
	trainRng := rand.New(rand.NewSource(13))
	for episode := 0; episode < 500; episode++ {
		sim.Run(in, lp, 100000, trainRng)
	}
	// Evaluate: average episode length of the trained learner vs the
	// adaptive policy with true probabilities.
	evalRng := rand.New(rand.NewSource(17))
	var learnSum, adaptSum float64
	const evals = 400
	for k := 0; k < evals; k++ {
		learnSum += float64(sim.Run(in, lp, 100000, evalRng).Makespan)
		adaptSum += float64(sim.Run(in, &AdaptivePolicy{In: in}, 100000, evalRng).Makespan)
	}
	learned, adaptive := learnSum/evals, adaptSum/evals
	if learned > 1.6*adaptive+1 {
		t.Errorf("trained learner %v much worse than clairvoyant adaptive %v", learned, adaptive)
	}
}

func TestLearningPolicyFailureUpdatesExact(t *testing.T) {
	// Machines assigned to a job that does NOT complete must all get a
	// β increment (exact failure update).
	in := model.New(1, 2)
	in.P[0][0], in.P[1][0] = 0.01, 0.01
	lp := NewLearningPolicy(in, 1) // optimism forces assignment
	st := &sched.State{Unfinished: []bool{true}, Eligible: []bool{true}}
	a := lp.Assign(st)
	assigned := 0
	for _, j := range a {
		if j == 0 {
			assigned++
		}
	}
	if assigned == 0 {
		t.Fatal("learner assigned nothing")
	}
	before0, before1 := lp.Attempts(0, 0), lp.Attempts(1, 0)
	lp.Observe(a, []bool{false}) // job did not complete → exact failure fold-in
	gained := (lp.Attempts(0, 0) - before0) + (lp.Attempts(1, 0) - before1)
	if int(gained+0.5) != assigned {
		t.Errorf("attempts gained %v, want %d", gained, assigned)
	}
	if lp.Estimate(0, 0) > 0.5 && lp.Estimate(1, 0) > 0.5 {
		t.Error("failure did not lower any posterior mean")
	}
	// Success with a single machine must be the exact Beta update.
	lp2 := NewLearningPolicy(in, 0)
	lp2.Observe(sched.Assignment{0, sched.Idle}, []bool{true})
	if math.Abs(lp2.Estimate(0, 0)-2.0/3) > 1e-12 {
		t.Errorf("single-machine success: estimate %v, want 2/3", lp2.Estimate(0, 0))
	}
}
