package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/workload"
)

// Property: for ANY random dag (not just the paper's classes),
// SUUForest produces a structurally valid oblivious schedule whose
// core certifies the mass target and whose prefix respects all
// precedence mass windows.
func TestForestPipelinePropertyRandomDags(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed int64, nRaw, mRaw, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%8
		m := 1 + int(mRaw)%4
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = 0.05 + 0.9*rng.Float64()
			}
		}
		p := 0.05 + float64(density%60)/100
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					in.Prec.MustEdge(u, v)
				}
			}
		}
		res, err := SUUForest(in, DefaultParams())
		if err != nil {
			return false
		}
		if res.Schedule.Validate(n) != nil {
			return false
		}
		if res.MassAchieved < 0.5-1e-9 {
			return false
		}
		if sched.CheckMassWindows(in, res.Schedule.Steps, 0.5) != nil {
			return false
		}
		// The schedule must complete in simulation.
		r := sim.Run(in, res.Schedule, 3_000_000, rand.New(rand.NewSource(seed)))
		return r.Completed
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: with ample capacity, MSM-E-ALG saturates every job. When
// the greedy processes pair (i,j) with remaining capacity, it pushes
// j's mass above 1 − p_ij; hence with t large enough that no machine
// runs out of capacity, the final mass of every job exceeds
// 1 − min_i{p_ij > 0}. (Note: total greedy mass is NOT monotone in t —
// longer horizons can let one machine hog a job's budget — so only the
// saturation bound is a theorem.)
func TestMSMExtSaturationWithAmpleCapacity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%6
		m := 1 + int(mRaw)%5
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = rng.Float64()
			}
		}
		for j := 0; j < n; j++ {
			in.P[rng.Intn(m)][j] = 0.2 + 0.8*rng.Float64()
		}
		active := make([]bool, n)
		for j := range active {
			active[j] = true
		}
		// Capacity so large no machine can be the binding constraint:
		// every pair's budget is at most ceil(1/p) <= 1/0.001 per job.
		bigT := n * 100000
		mass := MassOfCounts(in, MSMExt(in, active, bigT))
		for j := 0; j < n; j++ {
			minP := 1.0
			for i := 0; i < m; i++ {
				if p := in.P[i][j]; p > 0.001 && p < minP {
					minP = p
				}
			}
			if minP == 1.0 {
				continue // only near-zero probabilities; budget math is degenerate
			}
			if mass[j] < 1-minP-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the rounding keeps zero entries zero (no mass invented on
// incapable machines) and never outputs a fractional-looking blow-up
// beyond Scale·Lambda·ceil(x)+slack on any single entry.
func TestRoundLPEntryBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		m := 2 + rng.Intn(8)
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Lo: 0.03, Hi: 0.6, Seed: rng.Int63()})
		chains := make([][]int, n)
		for j := 0; j < n; j++ {
			chains[j] = []int{j}
		}
		fs, err := SolveLP1(in, chains, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ints, err := RoundLP(in, fs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		slack := ints.Scale * ints.Lambda
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if in.P[i][j] == 0 && ints.X[i][j] != 0 {
					t.Fatalf("mass invented on zero-probability pair")
				}
				bound := slack*(int(fs.X[i][j])+2) + slack
				if ints.X[i][j] > bound {
					t.Fatalf("entry (%d,%d)=%d blows past %d (frac %v, S=%d λ=%d)",
						i, j, ints.X[i][j], bound, fs.X[i][j], ints.Scale, ints.Lambda)
				}
			}
		}
	}
}

// Failure injection: instances where one machine dominates everything
// still produce feasible schedules across pipelines.
func TestPipelinesWithDegenerateMatrices(t *testing.T) {
	builders := map[string]func() *model.Instance{
		"single-capable-machine": func() *model.Instance {
			in := model.New(4, 3)
			for j := 0; j < 4; j++ {
				in.P[0][j] = 0.4
			}
			return in
		},
		"near-one-probs": func() *model.Instance {
			in := model.New(4, 2)
			for i := 0; i < 2; i++ {
				for j := 0; j < 4; j++ {
					in.P[i][j] = 1.0
				}
			}
			return in
		},
		"tiny-probs": func() *model.Instance {
			in := model.New(3, 2)
			for i := 0; i < 2; i++ {
				for j := 0; j < 3; j++ {
					in.P[i][j] = 0.01
				}
			}
			return in
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			in := build()
			if res, err := SUUIOblivious(in, DefaultParams()); err != nil {
				t.Errorf("comb: %v", err)
			} else if res.Schedule.Validate(in.N) != nil {
				t.Error("comb schedule invalid")
			}
			if res, err := SUUIndependentLP(in, DefaultParams()); err != nil {
				t.Errorf("lp: %v", err)
			} else if res.Schedule.Validate(in.N) != nil {
				t.Error("lp schedule invalid")
			}
			in2 := build()
			in2.Prec.MustEdge(0, 1)
			if res, err := SUUForest(in2, DefaultParams()); err != nil {
				t.Errorf("forest: %v", err)
			} else if res.Schedule.Validate(in2.N) != nil {
				t.Error("forest schedule invalid")
			}
		})
	}
}

// The flattened chains prefix must assign each machine at most one job
// per step — guaranteed by construction, asserted here end to end.
func TestChainsPrefixNoDoubleBooking(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 10, Machines: 4, Seed: 5}, 3)
	res, err := SUUChains(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for tt, a := range res.Schedule.Steps {
		if len(a) != in.M {
			t.Fatalf("step %d wrong arity", tt)
		}
	}
}
