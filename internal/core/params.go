package core

import (
	"math"

	"suu/internal/lp"
)

// Params collects the tunable constants of the constructions. The
// defaults are the constants used in the paper's proofs; the ablation
// experiments sweep them.
type Params struct {
	// MassTarget is the per-job mass every oblivious construction
	// certifies before replication (the paper uses 1/2 in (LP1)).
	MassTarget float64
	// PeelThreshold is the mass at which SUU-I-OBL peels a job from
	// the remaining set (1/96 in Lemma 3.5).
	PeelThreshold float64
	// PeelRoundsFactor caps SUU-I-OBL's inner loop at
	// ceil(PeelRoundsFactor·log₂ n) rounds (66 in the paper).
	PeelRoundsFactor int
	// ReplicationFactor scales the σ = ReplicationFactor·⌈log₂ n⌉
	// schedule replication of Section 4.1 (16 in the paper).
	ReplicationFactor int
	// DelayTries is how many uniformly random delay vectors the
	// Las-Vegas delay search samples (the zero vector is always
	// considered too).
	DelayTries int
	// Seed drives every randomized choice of the constructions.
	Seed int64
	// MaxDoublings caps SUU-I-OBL's doubling search of t as a safety
	// net; the search provably stops after O(log(n/p_min)) doublings.
	MaxDoublings int
	// Optimism scales the UCB-style exploration bonus of the online
	// learning policy (§5 extension); 0 disables exploration.
	Optimism float64
	// DenseLP routes the (LP1)/(LP2) solves through the dense tableau
	// oracle instead of the sparse revised simplex. The schedules it
	// yields may sit at a different optimal vertex; T* is identical up
	// to LP tolerance. Used by cross-checks and the benchmark harness.
	DenseLP bool
	// WarmBasis, when non-nil and row-compatible, seeds the (LP2) solve
	// of SUUIndependentLP in place of the synthesized crash basis — the
	// warm-start hook for caches (internal/serve) that keep the optimal
	// basis of an earlier solve of the identical instance. Feeding a
	// solve its own optimal basis re-derives the same vertex pivot-free;
	// T* agrees with the cold solve to floating-point roundoff (fresh
	// factorization vs the cold run's eta file) and the rounding and
	// schedule are unchanged (pinned by test). Runtime-only: never
	// serialized with the params, ignored by the dense oracle and by
	// pipelines that solve (LP1) lazily (their final bases span
	// generated cut rows and could not be adopted).
	WarmBasis *lp.Basis
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		MassTarget:        0.5,
		PeelThreshold:     1.0 / 96,
		PeelRoundsFactor:  66,
		ReplicationFactor: 16,
		DelayTries:        64,
		Seed:              1,
		MaxDoublings:      62,
		Optimism:          0.7,
	}
}

// log2Ceil returns ⌈log₂ x⌉ for x ≥ 1 (and 1 for x ≤ 2 to keep factors
// positive on tiny instances).
func log2Ceil(x int) int {
	if x <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

// sigma returns the replication factor σ = ReplicationFactor·⌈log₂ n⌉.
func (p Params) sigma(n int) int {
	s := p.ReplicationFactor * log2Ceil(n)
	if s < 1 {
		return 1
	}
	return s
}
