package core

import (
	"math"
	"testing"

	"suu/internal/model"
	"suu/internal/workload"
)

// checkLP1Feasible asserts that a fractional solution satisfies every
// (LP1) constraint — including the window rows the sparse path
// generates lazily, so a missed cut fails loudly here.
func checkLP1Feasible(t *testing.T, in *model.Instance, chains [][]int, fs *FracSolution, target float64) {
	t.Helper()
	const tol = 1e-6
	for _, c := range chains {
		sumD := 0.0
		for _, j := range c {
			if fs.D[j] < 1-tol {
				t.Errorf("d[%d]=%v below 1", j, fs.D[j])
			}
			sumD += fs.D[j]
		}
		if sumD > fs.T+tol {
			t.Errorf("chain %v window sum %v exceeds T=%v", c, sumD, fs.T)
		}
	}
	for i := 0; i < in.M; i++ {
		load := 0.0
		for _, j := range fs.Jobs {
			x := fs.X[i][j]
			if x < -tol {
				t.Errorf("x[%d][%d]=%v negative", i, j, x)
			}
			if x > fs.D[j]+tol {
				t.Errorf("window violated: x[%d][%d]=%v > d=%v", i, j, x, fs.D[j])
			}
			load += x
		}
		if load > fs.T+tol {
			t.Errorf("machine %d load %v exceeds T=%v", i, load, fs.T)
		}
	}
	for _, j := range fs.Jobs {
		mass := 0.0
		for i := 0; i < in.M; i++ {
			mass += in.P[i][j] * fs.X[i][j]
		}
		if mass < target-tol {
			t.Errorf("job %d mass %v below target %v", j, mass, target)
		}
	}
}

// TestLP1SparseDenseParity pins the lazily-cut sparse solve to the
// dense oracle across workload shapes: identical T* within LP
// tolerance, and a fully feasible sparse solution.
func TestLP1SparseDenseParity(t *testing.T) {
	cases := []struct {
		name  string
		shape workload.ProbShape
		n, m  int
		ch    int
	}{
		{"uniform-24x6", workload.Uniform, 24, 6, 4},
		{"uniform-48x8", workload.Uniform, 48, 8, 6},
		{"specialist-32x8", workload.Specialist, 32, 8, 4},
		{"bimodal-32x6", workload.Bimodal, 32, 6, 8},
		{"powerlaw-24x6", workload.PowerLaw, 24, 6, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				in := workload.Chains(workload.Config{Jobs: tc.n, Machines: tc.m, Seed: seed, Shape: tc.shape}, tc.ch)
				chains, err := in.Prec.Chains()
				if err != nil {
					t.Fatal(err)
				}
				sparse, err := solveLP1(in, chains, 0.5, lpOptions{})
				if err != nil {
					t.Fatal(err)
				}
				dense, err := solveLP1(in, chains, 0.5, lpOptions{dense: true})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(sparse.T-dense.T) > 1e-6*math.Max(1, dense.T) {
					t.Fatalf("seed %d: T* parity broken: sparse %v vs dense %v", seed, sparse.T, dense.T)
				}
				checkLP1Feasible(t, in, chains, sparse, 0.5)
			}
		})
	}
}

func TestLP2SparseDenseParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := workload.Independent(workload.Config{Jobs: 40, Machines: 10, Seed: seed})
		jobs := make([]int, in.N)
		for j := range jobs {
			jobs[j] = j
		}
		sparse, err := solveLP2(in, jobs, 0.5, lpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dense, err := solveLP2(in, jobs, 0.5, lpOptions{dense: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sparse.T-dense.T) > 1e-6*math.Max(1, dense.T) {
			t.Fatalf("seed %d: T* parity broken: sparse %v vs dense %v", seed, sparse.T, dense.T)
		}
	}
}

// TestLPStatsExposed checks the satellite contract: FracSolution
// reports pivots and LP dimensions.
func TestLPStatsExposed(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 24, Machines: 6, Seed: 5}, 4)
	chains, _ := in.Prec.Chains()
	fs, err := SolveLP1(in, chains, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Iterations < 1 || fs.Rows < 24+6+4 || fs.Cols < 24 || fs.Nnz < fs.Rows {
		t.Errorf("LP stats implausible: iters=%d rows=%d cols=%d nnz=%d",
			fs.Iterations, fs.Rows, fs.Cols, fs.Nnz)
	}
	res, err := SUUChains(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.LPPivots != fs.Iterations || res.LPRows != fs.Rows || res.LPNnz != fs.Nnz {
		t.Errorf("ChainsResult LP stats drift: %+v vs FracSolution iters=%d rows=%d nnz=%d",
			res, fs.Iterations, fs.Rows, fs.Nnz)
	}
}

// TestForestWarmStartParity: the warm-started per-block solves must
// reach the same per-block optima as isolated cold solves (the crash
// bias may change the vertex and the pivot count, never T*).
func TestForestWarmStartParity(t *testing.T) {
	in := workload.OutTree(workload.Config{Jobs: 48, Machines: 8, Seed: 9})
	res, err := SUUForest(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dc := in.Prec.ChainDecomposition()
	if len(res.BlockResults) != len(dc.Blocks) {
		t.Fatalf("block count mismatch: %d vs %d", len(res.BlockResults), len(dc.Blocks))
	}
	for bi, block := range dc.Blocks {
		cold, err := SolveLP1(in, block.Chains, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		warmT := res.BlockResults[bi].TStar
		if math.Abs(cold.T-warmT) > 1e-6*math.Max(1, cold.T) {
			t.Errorf("block %d: warm T*=%v vs cold T*=%v", bi, warmT, cold.T)
		}
	}
	if res.LPPivots <= 0 || res.LPRows <= 0 {
		t.Errorf("forest LP stats missing: %+v", res)
	}
}

// TestDenseLPPipelineParity runs the whole chains pipeline under both
// LP backends: the schedules may differ (different optimal vertices)
// but T*, the lower bound, and the certified mass must agree.
func TestDenseLPPipelineParity(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 32, Machines: 6, Seed: 3}, 4)
	par := DefaultParams()
	sparse, err := SUUChains(in, par)
	if err != nil {
		t.Fatal(err)
	}
	par.DenseLP = true
	dense, err := SUUChains(in, par)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparse.TStar-dense.TStar) > 1e-6*math.Max(1, dense.TStar) {
		t.Errorf("T* drift: sparse %v dense %v", sparse.TStar, dense.TStar)
	}
	if math.Abs(sparse.LowerBound-dense.LowerBound) > 1e-6*math.Max(1, dense.LowerBound) {
		t.Errorf("lower bound drift: sparse %v dense %v", sparse.LowerBound, dense.LowerBound)
	}
	if sparse.MassAchieved < par.MassTarget || dense.MassAchieved < par.MassTarget {
		t.Errorf("mass target missed: sparse %v dense %v", sparse.MassAchieved, dense.MassAchieved)
	}
}
