package core

import (
	"math/rand"
	"testing"

	"suu/internal/workload"
)

func TestSUUChainsOnBlockMatchesSUUChains(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 8, Machines: 3, Seed: 9}, 2)
	chains, err := in.Prec.Chains()
	if err != nil {
		t.Fatal(err)
	}
	a, err := SUUChains(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SUUChainsOnBlock(in, chains, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same chain set, same delay range → identical schedules.
	if a.Schedule.Len() != b.Schedule.Len() || a.TStar != b.TStar || a.Congestion != b.Congestion {
		t.Errorf("block entry point diverged: len %d/%d T* %v/%v cong %d/%d",
			a.Schedule.Len(), b.Schedule.Len(), a.TStar, b.TStar, a.Congestion, b.Congestion)
	}
}

func TestTreeDelayRangeIsNarrower(t *testing.T) {
	// The Thm 4.8 path must draw delays from [0, Πmax/log n]: every
	// per-block delay in a rank decomposition run is bounded by
	// Πmax/log₂(n) (+slack for the normalization by the minimum).
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		in := workload.OutTree(workload.Config{Jobs: 20, Machines: 4, Seed: rng.Int63()})
		res, err := SUUForest(in, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		div := log2Ceil(in.N)
		for bi, br := range res.BlockResults {
			bound := br.MaxLoad/div + 1
			if bound < 2 {
				bound = 2
			}
			for k, d := range br.Delays {
				if d > bound {
					t.Errorf("trial %d block %d chain %d: delay %d exceeds Πmax/log bound %d (Πmax=%d)",
						trial, bi, k, d, bound, br.MaxLoad)
				}
			}
		}
	}
}
