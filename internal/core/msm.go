package core

import (
	"sort"

	"suu/internal/model"
	"suu/internal/sched"
)

// pairPJ is one (machine, job) success probability, used by the greedy
// orderings of MSM-ALG and MSM-E-ALG.
type pairPJ struct {
	i, j int
	p    float64
}

// sortedPairs returns all (i,j) pairs with p[i][j] > 0 and j active,
// in non-increasing probability order (ties broken by machine then job
// index for determinism).
func sortedPairs(in *model.Instance, active []bool) []pairPJ {
	var ps []pairPJ
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			if active[j] && in.P[i][j] > 0 {
				ps = append(ps, pairPJ{i, j, in.P[i][j]})
			}
		}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].p != ps[b].p {
			return ps[a].p > ps[b].p
		}
		if ps[a].i != ps[b].i {
			return ps[a].i < ps[b].i
		}
		return ps[a].j < ps[b].j
	})
	return ps
}

// MSMAlg is MSM-ALG (Figure 2): the greedy 1/3-approximation for
// MaxSumMass. It processes the p_ij in non-increasing order and
// assigns machine i to job j when i is still free and j's accumulated
// mass would stay at most 1. active[j] marks the jobs to serve;
// machines left unused are Idle.
func MSMAlg(in *model.Instance, active []bool) sched.Assignment {
	return MSMAlgMasked(in, active, nil)
}

// MSMAlgMasked is MSM-ALG restricted to the machines marked up (nil =
// every machine). The dynamic-scenario walk (internal/dyn) uses it as
// the adaptive policy under breakdowns: the greedy ordering is
// unchanged, machines that are down simply never claim a pair, so on
// an all-up mask it coincides with MSMAlg exactly.
func MSMAlgMasked(in *model.Instance, active, up []bool) sched.Assignment {
	f := sched.NewIdle(in.M)
	mass := make([]float64, in.N)
	for _, pr := range sortedPairs(in, active) {
		if up != nil && !up[pr.i] {
			continue
		}
		if f[pr.i] != sched.Idle {
			continue
		}
		if mass[pr.j]+pr.p <= 1+1e-12 {
			f[pr.i] = pr.j
			mass[pr.j] += pr.p
		}
	}
	return f
}

// SumMass returns the MaxSumMass objective of an assignment: the sum
// over jobs of min(1, Σ_{i: f(i)=j} p_ij).
func SumMass(in *model.Instance, f sched.Assignment) float64 {
	raw := make([]float64, in.N)
	for i, j := range f {
		if j != sched.Idle {
			raw[j] += in.P[i][j]
		}
	}
	total := 0.0
	for _, v := range raw {
		if v > 1 {
			v = 1
		}
		total += v
	}
	return total
}

// BruteForceMSM exhaustively maximizes MaxSumMass over all
// (|active|+1)^m assignments. Exponential; test/ground-truth use only.
func BruteForceMSM(in *model.Instance, active []bool) (sched.Assignment, float64) {
	var act []int
	for j, a := range active {
		if a {
			act = append(act, j)
		}
	}
	choices := len(act) + 1 // each machine: one of the active jobs, or idle
	best := sched.NewIdle(in.M)
	bestVal := 0.0
	cur := make([]int, in.M)
	a := sched.NewIdle(in.M)
	for {
		for i := 0; i < in.M; i++ {
			if cur[i] == len(act) {
				a[i] = sched.Idle
			} else {
				a[i] = act[cur[i]]
			}
		}
		if v := SumMass(in, a); v > bestVal {
			bestVal = v
			best = a.Clone()
		}
		c := 0
		for c < in.M {
			cur[c]++
			if cur[c] < choices {
				break
			}
			cur[c] = 0
			c++
		}
		if c == in.M {
			break
		}
	}
	return best, bestVal
}

// AdaptivePolicy is SUU-I-ALG (Figure 2): in every step it runs
// MSM-ALG on the currently eligible unfinished jobs. For independent
// jobs this is the O(log n)-approximation of Theorem 3.3; with
// precedence constraints it remains a feasible (greedy) policy and is
// used as an adaptive baseline.
type AdaptivePolicy struct {
	In *model.Instance
}

// Assign implements sched.Policy.
func (p *AdaptivePolicy) Assign(st *sched.State) sched.Assignment {
	return MSMAlg(p.In, st.Eligible)
}

// Memoizable marks SUU-I-ALG stationary: MSM-ALG is a deterministic
// function of the eligible set, so the simulation engine may memoize
// its assignment per unfinished-set key and run repetitions through
// the compiled adaptive engine.
func (p *AdaptivePolicy) Memoizable() {}
