package core

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func randomInstance(n, m int, rng *rand.Rand) *model.Instance {
	in := model.New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			in.P[i][j] = rng.Float64()
		}
	}
	// Guarantee every job has a capable machine.
	for j := 0; j < n; j++ {
		in.P[rng.Intn(m)][j] = 0.1 + 0.9*rng.Float64()
	}
	return in
}

func TestMSMAlgIsValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomInstance(5, 4, rng)
	f := MSMAlg(in, allActive(5))
	if len(f) != in.M {
		t.Fatalf("assignment length %d", len(f))
	}
	// Per-job raw mass must stay <= 1 (greedy invariant).
	raw := make([]float64, in.N)
	for i, j := range f {
		if j == sched.Idle {
			continue
		}
		if j < 0 || j >= in.N {
			t.Fatalf("invalid job %d", j)
		}
		raw[j] += in.P[i][j]
	}
	for j, v := range raw {
		if v > 1+1e-9 {
			t.Errorf("job %d over-massed: %v", j, v)
		}
	}
}

func TestMSMAlgRespectsActiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(4, 3, rng)
	active := []bool{true, false, true, false}
	f := MSMAlg(in, active)
	for _, j := range f {
		if j != sched.Idle && !active[j] {
			t.Errorf("inactive job %d assigned", j)
		}
	}
}

// Theorem 3.2: MSM-ALG achieves at least 1/3 of the optimum.
func TestMSMAlgThirdApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	worst := 1.0
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		in := randomInstance(n, m, rng)
		active := allActive(n)
		got := SumMass(in, MSMAlg(in, active))
		_, opt := BruteForceMSM(in, active)
		if opt == 0 {
			continue
		}
		ratio := got / opt
		if ratio < worst {
			worst = ratio
		}
		if ratio < 1.0/3-1e-9 {
			t.Fatalf("trial %d: ratio %v below 1/3 (got %v, opt %v)", trial, ratio, got, opt)
		}
	}
	t.Logf("worst MSM ratio over trials: %.3f", worst)
}

func TestSumMassCapsAtOne(t *testing.T) {
	in := model.New(1, 3)
	in.P[0][0], in.P[1][0], in.P[2][0] = 0.9, 0.9, 0.9
	f := sched.Assignment{0, 0, 0}
	if v := SumMass(in, f); v != 1 {
		t.Errorf("SumMass=%v, want capped 1", v)
	}
}

func TestBruteForceMatchesHandOptimum(t *testing.T) {
	// One job, two machines 0.6/0.5: optimum is both machines (mass 1).
	in := model.New(1, 2)
	in.P[0][0], in.P[1][0] = 0.6, 0.5
	_, opt := BruteForceMSM(in, allActive(1))
	if math.Abs(opt-1) > 1e-12 {
		t.Errorf("opt=%v, want 1", opt)
	}
	// Two jobs, one machine 0.6/0.9: optimum picks job 1 (0.9).
	in2 := model.New(2, 1)
	in2.P[0][0], in2.P[0][1] = 0.6, 0.9
	_, opt2 := BruteForceMSM(in2, allActive(2))
	if math.Abs(opt2-0.9) > 1e-12 {
		t.Errorf("opt=%v, want 0.9", opt2)
	}
}

func TestAdaptivePolicyAssignsEligibleOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(4, 3, rng)
	in.Prec.MustEdge(0, 1)
	pol := &AdaptivePolicy{In: in}
	st := &sched.State{
		Unfinished: []bool{true, true, true, true},
		Eligible:   []bool{true, false, true, true},
	}
	f := pol.Assign(st)
	for _, j := range f {
		if j == 1 {
			t.Error("adaptive policy assigned ineligible job")
		}
	}
}

func TestMSMExtCapacityAndMass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		tt := 1 + rng.Intn(20)
		in := randomInstance(n, m, rng)
		x := MSMExt(in, allActive(n), tt)
		for i := 0; i < m; i++ {
			total := 0
			for j := 0; j < n; j++ {
				if x[i][j] < 0 {
					t.Fatalf("negative count")
				}
				total += x[i][j]
			}
			if total > tt {
				t.Fatalf("machine %d over capacity: %d > %d", i, total, tt)
			}
		}
		mass := MassOfCounts(in, x)
		for j, v := range mass {
			if v > 1+1e-9 {
				t.Errorf("trial %d: job %d mass %v exceeds 1", trial, j, v)
			}
		}
	}
}

// With ample capacity, MSM-E-ALG must give every job constant mass
// (here: at least min(1-pmax, ...) — we check the weaker useful fact
// that every job reaches the SUU-I-OBL peel threshold).
func TestMSMExtAmpleCapacityCoversAllJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randomInstance(6, 3, rng)
	x := MSMExt(in, allActive(6), 4000)
	mass := MassOfCounts(in, x)
	for j, v := range mass {
		if v < 1.0/96 {
			t.Errorf("job %d mass %v below peel threshold despite huge t", j, v)
		}
	}
}

func TestScheduleFromCountsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(4, 3, rng)
	tt := 11
	x := MSMExt(in, allActive(4), tt)
	o := ScheduleFromCounts(in, x, tt)
	if o.Len() != tt {
		t.Fatalf("length %d, want %d", o.Len(), tt)
	}
	if err := o.Validate(in.N); err != nil {
		t.Fatal(err)
	}
	// Count matrix recovered from the schedule must equal x.
	got := make([][]int, in.M)
	for i := range got {
		got[i] = make([]int, in.N)
	}
	for _, a := range o.Steps {
		for i, j := range a {
			if j != sched.Idle {
				got[i][j]++
			}
		}
	}
	for i := range x {
		for j := range x[i] {
			if got[i][j] != x[i][j] {
				t.Errorf("count[%d][%d]=%d, want %d", i, j, got[i][j], x[i][j])
			}
		}
	}
}

func TestMSMExtZeroLength(t *testing.T) {
	in := model.New(2, 2)
	in.P[0][0], in.P[1][1] = 0.5, 0.5
	x := MSMExt(in, allActive(2), 0)
	for i := range x {
		for _, c := range x[i] {
			if c != 0 {
				t.Error("nonzero count with t=0")
			}
		}
	}
}
