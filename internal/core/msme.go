package core

import (
	"math"

	"suu/internal/model"
	"suu/internal/sched"
)

// MSMExt is MSM-E-ALG (Algorithm 1): the length-t extension of MSM-ALG
// with the same 1/3 approximation factor for MaxSumMass-Ext
// (Lemma 3.4). It returns the per-pair step counts x[i][j] (machine i
// spends x[i][j] of its t available steps on job j). Only jobs with
// active[j] participate.
//
// The greedy processes p_ij in non-increasing order and gives job j as
// many steps of machine i as fit under both the machine's remaining
// capacity t_i and the job's remaining mass budget
// (1 − Σ_k x_kj·p_kj)/p_ij.
func MSMExt(in *model.Instance, active []bool, t int) [][]int {
	if t < 0 {
		panic("core: negative schedule length")
	}
	x := make([][]int, in.M)
	for i := range x {
		x[i] = make([]int, in.N)
	}
	ti := make([]int, in.M)
	for i := range ti {
		ti[i] = t
	}
	mass := make([]float64, in.N)
	for _, pr := range sortedPairs(in, active) {
		if ti[pr.i] == 0 {
			continue
		}
		budget := int(math.Floor((1 - mass[pr.j]) / pr.p))
		if budget <= 0 {
			continue
		}
		take := budget
		if ti[pr.i] < take {
			take = ti[pr.i]
		}
		x[pr.i][pr.j] = take
		ti[pr.i] -= take
		mass[pr.j] += float64(take) * pr.p
	}
	return x
}

// ScheduleFromCounts converts step counts x[i][j] into an oblivious
// prefix of length t: machine i serves its jobs consecutively in job-
// index order, exactly as the output specification of MSM-E-ALG
// (f_τ(i) = j_k for Σ_{l<k} x_{i,j_l} < τ ≤ Σ_{l≤k} x_{i,j_l}).
// Steps beyond a machine's total count are Idle.
func ScheduleFromCounts(in *model.Instance, x [][]int, t int) *sched.Oblivious {
	steps := make([]sched.Assignment, t)
	for s := range steps {
		steps[s] = sched.NewIdle(in.M)
	}
	for i := 0; i < in.M; i++ {
		pos := 0
		for j := 0; j < in.N; j++ {
			for k := 0; k < x[i][j]; k++ {
				if pos >= t {
					panic("core: counts exceed schedule length")
				}
				steps[pos][i] = j
				pos++
			}
		}
	}
	return &sched.Oblivious{M: in.M, Steps: steps}
}

// MassOfCounts returns the per-job (uncapped) mass of a count matrix.
func MassOfCounts(in *model.Instance, x [][]int) []float64 {
	mass := make([]float64, in.N)
	for i := range x {
		for j, c := range x[i] {
			if c > 0 {
				mass[j] += float64(c) * in.P[i][j]
			}
		}
	}
	return mass
}
