// Package core implements the approximation algorithms of Lin &
// Rajaraman, "Approximation Algorithms for Multiprocessor Scheduling
// under Uncertainty" (SPAA 2007):
//
//   - MSM-ALG and MSM-E-ALG, the greedy 1/3-approximations for the
//     MaxSumMass subproblems (Section 3.1, Figure 2; Lemma 3.4);
//   - SUU-I-ALG, the adaptive O(log n)-approximation for independent
//     jobs (Theorem 3.3);
//   - SUU-I-OBL, the oblivious O(log² n)-approximation (Theorem 3.6);
//   - the (LP1)/(LP2) relaxations for AccuMass-C, their rounding via
//     bucketing and integral max flow (Theorem 4.1), pseudo-schedule
//     construction, random-delay conversion and replication, yielding
//     the chains algorithm (Theorem 4.4), the LP-based independent-jobs
//     algorithm (Theorem 4.5) and the tree/forest algorithms
//     (Theorems 4.7 and 4.8);
//   - baseline policies used by the experiment harness.
//
// Construction entry points take a Params (seeds, LP knobs, mass
// targets). Params.WarmBasis optionally carries an exported simplex
// basis from an earlier solve of the same instance: the direct (LP2)
// path re-solves from it pivot-free at the same vertex, with the
// objective equal to the cold value up to roundoff and the rounding
// and schedule unchanged (pinned by warmbasis_test.go). The basis is
// runtime-only — never serialized — and is ignored by the dense
// oracle and the lazy LP1 pipelines, whose bases span cut rows.
package core
