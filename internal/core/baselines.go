package core

import (
	"math/rand"

	"suu/internal/model"
	"suu/internal/sched"
)

// Baseline policies used by the experiment harness (Section 1's
// motivation: what does a project manager lose by scheduling naively?).

// GreedyMaxPPolicy assigns every machine, independently, to the
// eligible job it is best at. No coordination: machines may pile onto
// one job while others starve.
type GreedyMaxPPolicy struct {
	In *model.Instance
}

// Assign implements sched.Policy.
func (p *GreedyMaxPPolicy) Assign(st *sched.State) sched.Assignment {
	a := sched.NewIdle(p.In.M)
	for i := 0; i < p.In.M; i++ {
		best := sched.Idle
		bestP := 0.0
		for j := 0; j < p.In.N; j++ {
			if st.Eligible[j] && p.In.P[i][j] > bestP {
				bestP = p.In.P[i][j]
				best = j
			}
		}
		a[i] = best
	}
	return a
}

// Memoizable marks the greedy baseline stationary: each machine's pick
// depends only on the eligible set.
func (p *GreedyMaxPPolicy) Memoizable() {}

// RoundRobinPolicy spreads machines over the eligible jobs in rotating
// order: machine i serves eligible job (i + step) mod k.
type RoundRobinPolicy struct {
	In *model.Instance
}

// Assign implements sched.Policy.
func (p *RoundRobinPolicy) Assign(st *sched.State) sched.Assignment {
	var elig []int
	for j, e := range st.Eligible {
		if e {
			elig = append(elig, j)
		}
	}
	a := sched.NewIdle(p.In.M)
	if len(elig) == 0 {
		return a
	}
	for i := 0; i < p.In.M; i++ {
		a[i] = elig[(i+st.Step)%len(elig)]
	}
	return a
}

// AllOnOnePolicy gangs every machine onto the first eligible job in
// topological order — the paper's observation that assigning all
// machines to a single job yields T_OPT ≤ O(n/p_min·log n), used here
// as the weakest coordinated baseline.
type AllOnOnePolicy struct {
	In *model.Instance
}

// Assign implements sched.Policy.
func (p *AllOnOnePolicy) Assign(st *sched.State) sched.Assignment {
	a := sched.NewIdle(p.In.M)
	for j := 0; j < p.In.N; j++ {
		if st.Eligible[j] {
			for i := range a {
				a[i] = j
			}
			return a
		}
	}
	return a
}

// Memoizable marks the gang baseline stationary: the target job is the
// first eligible index, a pure function of the eligible set.
func (p *AllOnOnePolicy) Memoizable() {}

// RandomPolicy assigns each machine to a uniformly random eligible
// job; the fully uncoordinated baseline.
type RandomPolicy struct {
	In  *model.Instance
	Rng *rand.Rand
}

// Assign implements sched.Policy.
func (p *RandomPolicy) Assign(st *sched.State) sched.Assignment {
	var elig []int
	for j, e := range st.Eligible {
		if e {
			elig = append(elig, j)
		}
	}
	a := sched.NewIdle(p.In.M)
	if len(elig) == 0 {
		return a
	}
	for i := range a {
		a[i] = elig[p.Rng.Intn(len(elig))]
	}
	return a
}
