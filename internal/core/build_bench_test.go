package core

import (
	"testing"

	"suu/internal/sim"
	"suu/internal/workload"
)

// Construction benchmarks on the bench harness's reference instances
// (same seeds as exp.SolverBuildBenchmarks), so `go test -bench` and
// BENCH_sim.json measure the same work. The LP solve dominates both;
// run with -benchmem to watch the allocation trajectory.

func BenchmarkChainsBuild48(b *testing.B) {
	seed := sim.SeedFor(1, "bench-build/chains")
	in := workload.Chains(workload.Config{Jobs: 48, Machines: 8, Seed: seed}, 4)
	par := DefaultParams()
	par.Seed = sim.SeedFor(seed, "build")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SUUChains(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestBuild48(b *testing.B) {
	seed := sim.SeedFor(1, "bench-build/forest")
	in := workload.OutTree(workload.Config{Jobs: 48, Machines: 8, Seed: seed})
	par := DefaultParams()
	par.Seed = sim.SeedFor(seed, "build")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SUUForest(in, par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLP1Sparse256(b *testing.B) {
	in := workload.Chains(workload.Config{Jobs: 256, Machines: 8, Seed: 1}, 16)
	chains, err := in.Prec.Chains()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLP1(in, chains, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLP2Sparse512(b *testing.B) {
	in := workload.Independent(workload.Config{Jobs: 512, Machines: 16, Seed: 1})
	jobs := make([]int, in.N)
	for j := range jobs {
		jobs[j] = j
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLP2(in, jobs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
