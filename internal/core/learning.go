package core

import (
	"math"

	"suu/internal/model"
	"suu/internal/sched"
)

// LearningPolicy is an implementation of the paper's §5 "online
// versions" future-work direction: scheduling when the success
// probabilities p_ij are unknown and must be learned from execution
// feedback. It keeps a Beta(α, β) posterior per (machine, job) pair,
// schedules greedily with MSM-ALG on the posterior means (optionally
// inflated by an optimism bonus, UCB-style), and updates the
// posteriors from the outcomes the simulator reports through the
// sched.OutcomeObserver interface.
//
// Credit assignment is necessarily approximate: when several machines
// are assigned to a job that completes, the policy cannot observe
// which machine succeeded, so every assigned machine receives a
// fractional success proportional to its current posterior mean (an
// EM-flavoured soft update). Failures are exact (all assigned machines
// failed). With a single machine per job this is exactly the
// Beta-Bernoulli update, hence consistent.
//
// This is an extension beyond the paper; it is exercised by the tests
// and the adaptive-vs-oblivious example but carries no approximation
// guarantee. The posterior persists across simulated episodes, so
// repeated sim.Run calls train it.
type LearningPolicy struct {
	// In provides the dimensions; its probabilities are never read.
	In *model.Instance

	// Optimism adds c·sqrt(ln(t+1)/(attempts+1)) to the posterior mean
	// when ranking pairs (0 disables the bonus).
	Optimism float64

	alpha [][]float64
	beta  [][]float64
	step  int
}

var _ sched.Policy = (*LearningPolicy)(nil)
var _ sched.OutcomeObserver = (*LearningPolicy)(nil)

// NewLearningPolicy returns a learner with a uniform Beta(1,1) prior.
func NewLearningPolicy(in *model.Instance, optimism float64) *LearningPolicy {
	lp := &LearningPolicy{In: in, Optimism: optimism}
	lp.alpha = make([][]float64, in.M)
	lp.beta = make([][]float64, in.M)
	for i := range lp.alpha {
		lp.alpha[i] = make([]float64, in.N)
		lp.beta[i] = make([]float64, in.N)
		for j := range lp.alpha[i] {
			lp.alpha[i][j], lp.beta[i][j] = 1, 1
		}
	}
	return lp
}

// Estimate returns the current posterior mean for (machine, job).
func (lp *LearningPolicy) Estimate(i, j int) float64 {
	return lp.alpha[i][j] / (lp.alpha[i][j] + lp.beta[i][j])
}

// Attempts returns the number of observed trials for (machine, job).
func (lp *LearningPolicy) Attempts(i, j int) float64 {
	return lp.alpha[i][j] + lp.beta[i][j] - 2
}

// Assign implements sched.Policy: greedy MSM-ALG over the current
// (optimistic) estimates.
func (lp *LearningPolicy) Assign(st *sched.State) sched.Assignment {
	lp.step++
	est := model.New(lp.In.N, lp.In.M)
	for i := 0; i < lp.In.M; i++ {
		for j := 0; j < lp.In.N; j++ {
			v := lp.Estimate(i, j)
			if lp.Optimism > 0 {
				v += lp.Optimism * math.Sqrt(math.Log(float64(lp.step)+1)/(lp.Attempts(i, j)+1))
			}
			if v > 1 {
				v = 1
			}
			est.P[i][j] = v
		}
	}
	return MSMAlg(est, st.Eligible)
}

// FrozenLearningPolicy is a stationary snapshot of a learner: MSM-ALG
// greedy over a fixed estimate matrix, with no optimism bonus and no
// further posterior updates. Because it neither observes outcomes nor
// reads the step counter, it is sched.Memoizable — the simulation
// engine compiles it into a transition table and fans repetitions out
// across workers, which is how trained learners are evaluated at
// scale (the live learner must stay on the sequential generic engine).
type FrozenLearningPolicy struct {
	// Est carries the frozen posterior means in an instance shell.
	Est *model.Instance
}

var _ sched.Memoizable = (*FrozenLearningPolicy)(nil)

// Assign implements sched.Policy.
func (p *FrozenLearningPolicy) Assign(st *sched.State) sched.Assignment {
	return MSMAlg(p.Est, st.Eligible)
}

// Memoizable marks the snapshot stationary.
func (p *FrozenLearningPolicy) Memoizable() {}

// Frozen snapshots the learner's current posterior means into a
// stationary policy. The snapshot is independent of the learner:
// further training does not change it.
func (lp *LearningPolicy) Frozen() *FrozenLearningPolicy {
	est := model.New(lp.In.N, lp.In.M)
	for i := 0; i < lp.In.M; i++ {
		for j := 0; j < lp.In.N; j++ {
			est.P[i][j] = lp.Estimate(i, j)
		}
	}
	return &FrozenLearningPolicy{Est: est}
}

// Observe implements sched.OutcomeObserver: exact failure updates,
// soft-credit success updates.
func (lp *LearningPolicy) Observe(played sched.Assignment, completed []bool) {
	byJob := make(map[int][]int)
	for i, j := range played {
		if j != sched.Idle && j >= 0 && j < lp.In.N {
			byJob[j] = append(byJob[j], i)
		}
	}
	for j, machines := range byJob {
		if !completed[j] {
			for _, i := range machines {
				lp.beta[i][j]++
			}
			continue
		}
		total := 0.0
		for _, i := range machines {
			total += lp.Estimate(i, j)
		}
		for _, i := range machines {
			w := 1.0 / float64(len(machines))
			if total > 0 {
				w = lp.Estimate(i, j) / total
			}
			lp.alpha[i][j] += w
			lp.beta[i][j] += 1 - w
		}
	}
}
