package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"suu/internal/maxflow"
	"suu/internal/model"
)

// IntSolution is the integral rounding of a fractional (LP1)/(LP2)
// solution (Theorem 4.1): integral step counts per (machine, job) with
// per-job mass at least the target, and load/window lengths within an
// O(log m) factor of the fractional optimum.
type IntSolution struct {
	// Jobs is the job scope (copied from the fractional solution).
	Jobs []int
	// X[i][j] is the integral number of steps machine i spends on job j.
	X [][]int
	// Scale is the pre-flow scale-up S applied to the fractional
	// solution (32 in the paper's proof, raised when needed to make
	// every flow demand at least one unit).
	Scale int
	// Lambda is the post-flow lift restoring the mass target.
	Lambda int
	// RoundedUp counts jobs handled by the direct round-up case,
	// FlowJobs those routed through the flow network.
	RoundedUp, FlowJobs int
	// Flow is a printable description of the constructed network
	// (Figure 3 of the paper); empty when no flow was needed.
	Flow *FlowDump
}

// FlowDump records the rounding's flow network for inspection — the
// reproduction of Figure 3.
type FlowDump struct {
	JobNodes     []int   // job ids in network order
	Demands      []int64 // D_j per job node
	EdgeJob      []int   // per arc: job id
	EdgeMachine  []int   // per arc: machine id
	EdgeCap      []int64
	EdgeFlow     []int64
	MachineCap   int64 // capacity of every machine→sink arc
	TotalDemand  int64
	RoutedDemand int64
}

// String renders the network in the layout of Figure 3.
func (f *FlowDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow network (u → jobs → machines → v), demand %d routed %d\n", f.TotalDemand, f.RoutedDemand)
	for k, j := range f.JobNodes {
		fmt.Fprintf(&b, "  u -(%d)-> job %d\n", f.Demands[k], j)
	}
	for e := range f.EdgeJob {
		fmt.Fprintf(&b, "  job %d -(cap %d, flow %d)-> machine %d\n",
			f.EdgeJob[e], f.EdgeCap[e], f.EdgeFlow[e], f.EdgeMachine[e])
	}
	fmt.Fprintf(&b, "  machine i -(%d)-> v for every machine\n", f.MachineCap)
	return b.String()
}

// Load returns the maximum machine load Σ_j X[i][j].
func (s *IntSolution) Load() int {
	max := 0
	for i := range s.X {
		l := 0
		for _, c := range s.X[i] {
			l += c
		}
		if l > max {
			max = l
		}
	}
	return max
}

// MinMass returns the minimum per-job achieved mass Σ_i p_ij·X[i][j]
// over the scope.
func (s *IntSolution) MinMass(in *model.Instance) float64 {
	min := math.Inf(1)
	for _, j := range s.Jobs {
		m := 0.0
		for i := 0; i < in.M; i++ {
			m += float64(s.X[i][j]) * in.P[i][j]
		}
		if m < min {
			min = m
		}
	}
	return min
}

// RoundLP rounds a fractional solution to integers following the proof
// of Theorem 4.1.
//
// Case t ≥ q (q = |scope|): every positive x_ij is rounded up, which
// at most doubles the load bound.
//
// Case t < q: per job, if the entries with x_ij ≥ 1 already carry mass
// ≥ target/2 they are rounded up; otherwise the sub-unit entries with
// p_ij ≥ 1/(8m) are bucketed by probability into (2^{-(b+1)}, 2^{-b}],
// light buckets (Σx < 1/32) are discarded, the heaviest surviving
// bucket is kept, the whole solution is scaled by S = max(32,
// per-job demand repair) and an integral max flow on the network
// u →(D_j) job →(⌈S·d_j⌉) machine →(⌈2·S·t⌉) v extracts integral
// counts (Ford–Fulkerson integrality). A final lift λ restores per-job
// mass ≥ target. S·λ = O(log m), matching the theorem.
func RoundLP(in *model.Instance, fs *FracSolution, target float64) (*IntSolution, error) {
	q := len(fs.Jobs)
	out := &IntSolution{
		Jobs:   append([]int(nil), fs.Jobs...),
		X:      make([][]int, in.M),
		Scale:  1,
		Lambda: 1,
	}
	flat := make([]int, in.M*in.N)
	for i := range out.X {
		out.X[i] = flat[i*in.N : (i+1)*in.N : (i+1)*in.N]
	}

	if fs.T >= float64(q) {
		for i := 0; i < in.M; i++ {
			for _, j := range fs.Jobs {
				if fs.X[i][j] > 1e-12 {
					out.X[i][j] = int(math.Ceil(fs.X[i][j]))
				}
			}
		}
		out.RoundedUp = q
		return finishRound(in, out, target)
	}

	type flowJob struct {
		j      int
		edges  []int // machine ids of the chosen bucket
		sum    float64
		demand int64
	}
	var flows []flowJob

	for _, j := range fs.Jobs {
		heavyMass := 0.0
		for i := 0; i < in.M; i++ {
			if fs.X[i][j] >= 1 {
				heavyMass += in.P[i][j] * fs.X[i][j]
			}
		}
		if heavyMass >= target/2 {
			for i := 0; i < in.M; i++ {
				if fs.X[i][j] >= 1 {
					out.X[i][j] = int(math.Ceil(fs.X[i][j]))
				}
			}
			out.RoundedUp++
			continue
		}
		// Bucket the sub-unit entries with p_ij ≥ 1/(8m).
		pmin := 1 / (8 * float64(in.M))
		type bucket struct {
			machines []int
			sumX     float64
			minP     float64
		}
		buckets := map[int]*bucket{}
		for i := 0; i < in.M; i++ {
			x := fs.X[i][j]
			p := in.P[i][j]
			if x <= 1e-12 || x >= 1 || p < pmin {
				continue
			}
			b := int(math.Floor(-math.Log2(p)))
			if b < 0 {
				b = 0
			}
			bk := buckets[b]
			if bk == nil {
				bk = &bucket{minP: math.Exp2(-float64(b + 1))}
				buckets[b] = bk
			}
			bk.machines = append(bk.machines, i)
			bk.sumX += x
		}
		// Scan buckets in index order: lower-bound ties are exact more
		// often than they look (halving minP against a doubled sumX is
		// exact in float64), and map-order iteration would let the tie
		// winner — and with it the rounded schedule — vary run to run.
		keys := make([]int, 0, len(buckets))
		for b := range buckets {
			keys = append(keys, b)
		}
		sort.Ints(keys)
		bestLB := 0.0
		var best *bucket
		for _, b := range keys {
			bk := buckets[b]
			if bk.sumX < 1.0/32 {
				continue // light bucket, discarded as in the proof
			}
			if lb := bk.sumX * bk.minP; lb > bestLB {
				bestLB = lb
				best = bk
			}
		}
		if best == nil {
			// Defensive fallback (outside the proof's constants): round
			// everything positive up; mass ≥ target is immediate.
			for i := 0; i < in.M; i++ {
				if fs.X[i][j] > 1e-12 {
					out.X[i][j] = int(math.Ceil(fs.X[i][j]))
				}
			}
			out.RoundedUp++
			continue
		}
		flows = append(flows, flowJob{j: j, edges: best.machines, sum: best.sumX})
	}

	if len(flows) == 0 {
		return finishRound(in, out, target)
	}
	out.FlowJobs = len(flows)

	// Scale S: the paper's constant 32, raised so every demand is ≥ 2
	// units (which keeps the floor loss a constant factor).
	S := 32.0
	for _, f := range flows {
		if need := 2 / f.sum; need > S {
			S = need
		}
	}
	out.Scale = int(math.Ceil(S))
	Sf := float64(out.Scale)

	// Build the network of Figure 3.
	F := len(flows)
	g := maxflow.New(2 + F + in.M)
	src, dst := 0, 1+F+in.M
	jobNode := func(k int) int { return 1 + k }
	machNode := func(i int) int { return 1 + F + i }
	machineCap := int64(math.Ceil(2 * Sf * fs.T))
	dump := &FlowDump{MachineCap: machineCap}
	var demandEdges []int
	var arcIDs []int
	for k := range flows {
		f := &flows[k]
		f.demand = int64(math.Floor(Sf * f.sum))
		if f.demand < 1 {
			f.demand = 1
		}
		demandEdges = append(demandEdges, g.AddEdge(src, jobNode(k), f.demand))
		dump.JobNodes = append(dump.JobNodes, f.j)
		dump.Demands = append(dump.Demands, f.demand)
		dump.TotalDemand += f.demand
		for _, i := range f.edges {
			cap := int64(math.Ceil(Sf * fs.D[f.j]))
			if cap < 1 {
				cap = 1
			}
			id := g.AddEdge(jobNode(k), machNode(i), cap)
			arcIDs = append(arcIDs, id)
			dump.EdgeJob = append(dump.EdgeJob, f.j)
			dump.EdgeMachine = append(dump.EdgeMachine, i)
			dump.EdgeCap = append(dump.EdgeCap, cap)
		}
	}
	for i := 0; i < in.M; i++ {
		g.AddEdge(machNode(i), dst, machineCap)
	}
	routed := g.MaxFlow(src, dst)
	dump.RoutedDemand = routed
	for e := range dump.EdgeJob {
		dump.EdgeFlow = append(dump.EdgeFlow, g.Flow(arcIDs[e]))
	}
	out.Flow = dump
	for e := range dump.EdgeJob {
		out.X[dump.EdgeMachine[e]][dump.EdgeJob[e]] += int(dump.EdgeFlow[e])
	}
	if routed < dump.TotalDemand {
		// The feasibility argument of Theorem 4.1 guarantees full
		// routing; reaching here indicates a numerical corner. Repair by
		// rounding the affected jobs up directly.
		for k := range flows {
			if g.Flow(demandEdges[k]) < flows[k].demand {
				j := flows[k].j
				for i := 0; i < in.M; i++ {
					if fs.X[i][j] > 1e-12 {
						ceilX := int(math.Ceil(fs.X[i][j]))
						if ceilX > out.X[i][j] {
							out.X[i][j] = ceilX
						}
					}
				}
			}
		}
	}
	return finishRound(in, out, target)
}

// finishRound computes the lift λ restoring mass ≥ target for every
// job in scope and applies it.
func finishRound(in *model.Instance, out *IntSolution, target float64) (*IntSolution, error) {
	minMass := out.MinMass(in)
	if minMass <= 0 {
		return nil, fmt.Errorf("core: rounding produced a zero-mass job (min mass %v)", minMass)
	}
	lambda := 1
	if minMass < target {
		lambda = int(math.Ceil(target / minMass))
	}
	if lambda > 1 {
		for i := range out.X {
			for j := range out.X[i] {
				out.X[i][j] *= lambda
			}
		}
	}
	out.Lambda = lambda
	return out, nil
}
