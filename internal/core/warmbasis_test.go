package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWarmBasisDeterministicResolve pins the warm-start contract that
// internal/serve relies on: re-solving the identical instance with the
// exported optimal basis (Params.WarmBasis) re-derives the same
// optimal vertex — T* agrees to floating-point roundoff (the warm
// path's fresh factorization rounds the last ulp differently than the
// cold run's accumulated eta file), the integral rounding and final
// schedule are unchanged — while spending fewer simplex pivots,
// because the solve starts at its own optimum.
func TestWarmBasisDeterministicResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(4+rng.Intn(8), 2+rng.Intn(4), rng)
		par := DefaultParams()
		cold, err := SUUIndependentLP(in, par)
		if err != nil {
			t.Fatal(err)
		}
		if cold.LPBasis == nil {
			t.Fatal("sparse LP2 solve exported no basis")
		}

		par.WarmBasis = cold.LPBasis
		warm, err := SUUIndependentLP(in, par)
		if err != nil {
			t.Fatal(err)
		}
		if d := warm.TStar - cold.TStar; d > 1e-9 || d < -1e-9 {
			t.Fatalf("warm T* = %v, cold %v", warm.TStar, cold.TStar)
		}
		if !reflect.DeepEqual(warm.Round, cold.Round) {
			t.Fatalf("warm rounding differs from cold")
		}
		if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
			t.Fatalf("warm schedule differs from cold")
		}
		if cold.LPPivots > 0 && warm.LPPivots >= cold.LPPivots {
			t.Errorf("warm solve spent %d pivots, cold %d — basis not adopted",
				warm.LPPivots, cold.LPPivots)
		}
	}
}

// TestWarmBasisShapeMismatchFallsBack feeds a basis cut from a
// different formulation: the solve must ignore it (crash basis as
// usual) and still reproduce the cold result.
func TestWarmBasisShapeMismatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	small := randomInstance(4, 2, rng)
	big := randomInstance(9, 4, rng)

	par := DefaultParams()
	donor, err := SUUIndependentLP(small, par)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SUUIndependentLP(big, par)
	if err != nil {
		t.Fatal(err)
	}

	par.WarmBasis = donor.LPBasis
	got, err := SUUIndependentLP(big, par)
	if err != nil {
		t.Fatal(err)
	}
	if got.TStar != cold.TStar || !reflect.DeepEqual(got.Schedule, cold.Schedule) {
		t.Fatal("mismatched warm basis changed the solve")
	}
}
