package core

import (
	"fmt"
	"math"

	"suu/internal/lp"
	"suu/internal/model"
)

// FracSolution is an optimal fractional solution of (LP1) or (LP2),
// restricted to a job scope (the whole job set, or one decomposition
// block).
type FracSolution struct {
	// Jobs lists the job indices in scope.
	Jobs []int
	// X[i][j] is machine i's fractional step count on job j (indexed by
	// original job id; zero outside the scope).
	X [][]float64
	// D[j] is d_j, the fractional window length of job j (1 when the
	// relaxation had no d variables).
	D []float64
	// T is the optimal LP value t (T* in the paper).
	T float64
	// Iterations reports simplex pivots, for the harness.
	Iterations int
	// Rows, Cols and Nnz are the LP's dimensions (constraint rows,
	// structural variables, structural nonzeros), so the perf record
	// tracks LP effort, not just wall-clock.
	Rows, Cols, Nnz int
	// Basis is the optimal simplex basis of the solve, exported for
	// warm-start caches: feeding it back through Params.WarmBasis on a
	// re-solve of the identical problem starts the simplex at its own
	// optimum and terminates in the phase-2 optimality check, pivot-
	// free, at the same vertex (objective equal to roundoff — the fresh
	// factorization rounds differently than the original run's eta
	// file). Set on the direct (LP2) path only — the
	// lazy (LP1) path's final basis spans generated cut rows a fresh
	// solve does not have, so it could never be adopted (nil there, and
	// from the dense oracle).
	Basis *lp.Basis
}

// LPWarm carries crash-basis information across the per-block LP
// solves of a decomposition pipeline: the accumulated fractional load
// each machine received in earlier blocks. The crash basis for the
// next block starts each job's mass row on the machine with the best
// success probability discounted by that load, so consecutive blocks
// begin near a load-balanced vertex instead of the all-logical basis.
type LPWarm struct {
	load []float64
}

// NewLPWarm returns an empty warm-start context for m machines.
func NewLPWarm(m int) *LPWarm { return &LPWarm{load: make([]float64, m)} }

// note accumulates the fractional machine loads of a solved block.
func (w *LPWarm) note(in *model.Instance, fs *FracSolution) {
	for i := 0; i < in.M; i++ {
		for _, j := range fs.Jobs {
			w.load[i] += fs.X[i][j]
		}
	}
}

// score ranks machine i as the crash choice for a job with success
// probability p: higher probability is better, discounted by the load
// the machine already carries from earlier blocks.
func (w *LPWarm) score(i int, p float64) float64 {
	if w == nil {
		return p
	}
	return p / (1 + w.load[i])
}

// lpOptions selects the LP solver variant for one solve.
type lpOptions struct {
	// dense routes the solve through the dense tableau oracle instead
	// of the sparse revised simplex (cross-checks and benchmarks).
	dense bool
	// warm biases the crash basis across per-block solves (sparse path
	// only).
	warm *LPWarm
	// crash, when set and row-compatible with the problem, replaces the
	// synthesized crash basis outright — a caller-cached optimal basis
	// from an earlier solve of the same problem (Params.WarmBasis).
	crash *lp.Basis
}

func (o lpOptions) solve(prob *lp.Problem, crash *lp.Basis) (*lp.Solution, error) {
	if o.dense {
		return prob.DenseSolve()
	}
	if o.crash != nil && len(o.crash.Basic) == prob.NumConstraints() {
		// Row-count mismatch means the cached basis was cut from a
		// different formulation; SolveFrom would fall back to the
		// all-logical basis, which is strictly worse than the crash
		// basis, so only adopt when the shape can match.
		return prob.SolveFrom(o.crash)
	}
	return prob.SolveFrom(crash)
}

// buildVars enumerates the x variables: one per (machine, job) pair
// with positive success probability and the job in scope.
func buildVars(in *model.Instance, jobs []int) (pairs []pairPJ) {
	for _, j := range jobs {
		for i := 0; i < in.M; i++ {
			if in.P[i][j] > 0 {
				pairs = append(pairs, pairPJ{i: i, j: j, p: in.P[i][j]})
			}
		}
	}
	return pairs
}

// SolveLP1 formulates and solves (LP1) of Section 4.1 for the given
// chain set: minimize t subject to
//
//	Σ_i p_ij·x_ij ≥ target          ∀ jobs j in scope      (mass)
//	Σ_j x_ij ≤ t                    ∀ machines i           (load)
//	Σ_{j∈C_k} d_j ≤ t               ∀ chains C_k           (chain time)
//	x_ij ≤ d_j, d_j ≥ 1, x_ij ≥ 0
//
// d_j ≥ 1 is a native variable bound of the sparse solver (the dense
// oracle synthesizes the equivalent row). The O(n·m) window rows
// x_ij ≤ d_j — the bulk of the formulation, and almost all slack at
// any optimum — are generated lazily on the sparse path: the LP is
// solved without them, violated windows are added as rows, and the
// re-solve warm-starts from the previous optimal basis extended with
// the new rows' logicals. The working LP stays near the size of the
// mass+load+chain core, which is what makes large scopes tractable.
// The chains must be disjoint; their union is the job scope.
func SolveLP1(in *model.Instance, chains [][]int, target float64) (*FracSolution, error) {
	return solveLP1(in, chains, target, lpOptions{})
}

func solveLP1(in *model.Instance, chains [][]int, target float64, opts lpOptions) (*FracSolution, error) {
	var jobs []int
	chainOf := make(map[int]int)
	for k, c := range chains {
		for _, j := range c {
			if _, dup := chainOf[j]; dup {
				return nil, fmt.Errorf("core: job %d appears in two chains", j)
			}
			chainOf[j] = k
			jobs = append(jobs, j)
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: empty chain set")
	}
	pairs := buildVars(in, jobs)
	nv := len(pairs)
	dBase := nv // d_j variables, one per job in scope order
	tVar := nv + len(jobs)
	// posOf maps a job id to its position in the scope (and so to its
	// mass row and d variable); slice-indexed lookups keep the builder
	// map-free on the forest pipeline's many small block solves.
	posOf := make([]int, in.N)
	for j := range posOf {
		posOf[j] = -1
	}
	for jj, j := range jobs {
		posOf[j] = jj
	}
	massTerms := make([][]lp.Term, len(jobs))
	loadTerms := make([][]lp.Term, in.M)
	for v, pr := range pairs {
		jj := posOf[pr.j]
		massTerms[jj] = append(massTerms[jj], lp.Term{Var: v, Coef: pr.p})
		loadTerms[pr.i] = append(loadTerms[pr.i], lp.Term{Var: v, Coef: 1})
	}
	for jj, j := range jobs {
		if len(massTerms[jj]) == 0 {
			return nil, fmt.Errorf("core: job %d has no capable machine", j)
		}
	}
	// Row layout (the crash basis depends on it): mass rows first (row
	// index == job position in scope), then load and chain rows, then
	// whatever window rows the working set carries, in insertion order.
	build := func(windows []int) *lp.Problem {
		prob := lp.NewProblem(tVar + 1)
		prob.SetObjectiveCoef(tVar, 1)
		for jj := range jobs {
			prob.SetBounds(dBase+jj, 1, math.Inf(1))
		}
		for jj := range jobs {
			prob.AddConstraint(massTerms[jj], lp.GE, target)
		}
		for i := 0; i < in.M; i++ {
			if len(loadTerms[i]) == 0 {
				continue
			}
			terms := append(append([]lp.Term(nil), loadTerms[i]...), lp.Term{Var: tVar, Coef: -1})
			prob.AddConstraint(terms, lp.LE, 0)
		}
		for _, c := range chains {
			terms := make([]lp.Term, 0, len(c)+1)
			for _, j := range c {
				terms = append(terms, lp.Term{Var: dBase + posOf[j], Coef: 1})
			}
			terms = append(terms, lp.Term{Var: tVar, Coef: -1})
			prob.AddConstraint(terms, lp.LE, 0)
		}
		for _, v := range windows {
			pr := pairs[v]
			prob.AddConstraint([]lp.Term{{Var: v, Coef: 1}, {Var: dBase + posOf[pr.j], Coef: -1}}, lp.LE, 0)
		}
		return prob
	}

	var sol *lp.Solution
	if opts.dense {
		// The oracle solves the full formulation in one shot.
		all := make([]int, nv)
		for v := range all {
			all[v] = v
		}
		s, err := build(all).DenseSolve()
		if err != nil {
			return nil, fmt.Errorf("core: LP1 solve: %w", err)
		}
		sol = s
	} else {
		s, err := solveLP1Lazy(build, jobs, pairs, dBase, posOf, opts.warm)
		if err != nil {
			return nil, fmt.Errorf("core: LP1 solve: %w", err)
		}
		sol = s
	}
	dVarOf := make([]int, in.N)
	for j := range dVarOf {
		dVarOf[j] = -1
	}
	for jj, j := range jobs {
		dVarOf[j] = dBase + jj
	}
	fs := extractSolution(in, jobs, pairs, sol, dVarOf, tVar)
	if opts.warm != nil {
		opts.warm.note(in, fs)
	}
	return fs, nil
}

// solveLP1Lazy solves (LP1) with the window rows generated as lazy
// cuts: the working LP starts with only the mass/load/chain core, and
// every separation round appends the violated x_ij ≤ d_j rows
// in-place (the solver keeps its basis; the new rows' logicals enter
// phase 1 infeasible by exactly the violation). The result is optimal
// for the full (LP1): the working LP is a relaxation, and its
// optimum satisfies every dropped row.
func solveLP1Lazy(build func([]int) *lp.Problem, jobs []int, pairs []pairPJ, dBase int, posOf []int, warm *LPWarm) (*lp.Solution, error) {
	const windowTol = 1e-8
	inWindows := make([]bool, len(pairs))
	dVar := make([]int32, len(pairs))
	for v, pr := range pairs {
		dVar[v] = int32(dBase + posOf[pr.j])
	}
	prob := build(nil)
	return prob.SolveLazy(crashBasis(prob, jobs, pairs, warm), func(x []float64) []lp.Cut {
		// Add every violated window, and — only in rounds that already
		// found violations — the near-binding ones (x within 25% of the
		// window), which almost always bind after the violated rows
		// tighten the optimum. The anticipation saves separation rounds
		// without inflating the working set when the LP is done.
		var cuts []lp.Cut
		violated := false
		for v := range pairs {
			if !inWindows[v] && x[v] > x[dVar[v]]+windowTol {
				violated = true
				break
			}
		}
		if !violated {
			return nil
		}
		for v := range pairs {
			if !inWindows[v] && x[v] > 0.75*x[dVar[v]] {
				inWindows[v] = true
				cuts = append(cuts, lp.Cut{
					Terms: []lp.Term{{Var: v, Coef: 1}, {Var: int(dVar[v]), Coef: -1}},
					Rel:   lp.LE,
					Rhs:   0,
				})
			}
		}
		return cuts
	})
}

// crashBasis builds the starting basis for an (LP1)/(LP2) solve:
// every row starts on its logical except the mass rows (rows 0..q-1
// by the shared row layout) — the only rows infeasible at the
// all-logical start — which start on the x variable of the
// crash-chosen machine. The basis is nonsingular by construction
// (expanding along the unit columns leaves a diagonal of positive
// mass-row entries), and it typically saves most of the phase-1
// pivots that a cold start spends making the mass rows feasible one
// by one.
func crashBasis(prob *lp.Problem, jobs []int, pairs []pairPJ, warm *LPWarm) *lp.Basis {
	bestVar := make([]int, len(jobs))
	bestScore := make([]float64, len(jobs))
	for jj := range jobs {
		bestVar[jj] = -1
	}
	// pairs are emitted job-major (buildVars iterates the scope in
	// order), so the running position tracks the job without a lookup.
	jj := -1
	lastJob := -1
	for v, pr := range pairs {
		if pr.j != lastJob {
			jj++
			lastJob = pr.j
		}
		if s := warm.score(pr.i, pr.p); bestVar[jj] < 0 || s > bestScore[jj] {
			bestVar[jj], bestScore[jj] = v, s
		}
	}
	basic := make([]int, prob.NumConstraints())
	for r := range basic {
		basic[r] = prob.LogicalVar(r)
	}
	for jj := range jobs {
		if bestVar[jj] >= 0 {
			basic[jj] = bestVar[jj]
		}
	}
	return &lp.Basis{Basic: basic}
}

// SolveLP1Bench is SolveLP1 with explicit backend selection (dense =
// the tableau oracle), for the LP benchmark harness and cross-checks.
func SolveLP1Bench(in *model.Instance, chains [][]int, target float64, dense bool) (*FracSolution, error) {
	return solveLP1(in, chains, target, lpOptions{dense: dense})
}

// SolveLP2Bench is SolveLP2 with explicit backend selection.
func SolveLP2Bench(in *model.Instance, jobs []int, target float64, dense bool) (*FracSolution, error) {
	return solveLP2(in, jobs, target, lpOptions{dense: dense})
}

// SolveLP2 formulates and solves (LP2) of Theorem 4.5 — (LP1) without
// the chain/window constraints — for an independent job scope.
func SolveLP2(in *model.Instance, jobs []int, target float64) (*FracSolution, error) {
	return solveLP2(in, jobs, target, lpOptions{})
}

func solveLP2(in *model.Instance, jobs []int, target float64, opts lpOptions) (*FracSolution, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: empty job scope")
	}
	pairs := buildVars(in, jobs)
	nv := len(pairs)
	tVar := nv
	prob := lp.NewProblem(tVar + 1)
	prob.SetObjectiveCoef(tVar, 1)
	massTerms := make(map[int][]lp.Term)
	loadTerms := make([][]lp.Term, in.M)
	for v, pr := range pairs {
		massTerms[pr.j] = append(massTerms[pr.j], lp.Term{Var: v, Coef: pr.p})
		loadTerms[pr.i] = append(loadTerms[pr.i], lp.Term{Var: v, Coef: 1})
	}
	// Mass rows first — the shared row layout crashBasis relies on.
	for _, j := range jobs {
		terms := massTerms[j]
		if len(terms) == 0 {
			return nil, fmt.Errorf("core: job %d has no capable machine", j)
		}
		prob.AddConstraint(terms, lp.GE, target)
	}
	for i := 0; i < in.M; i++ {
		if len(loadTerms[i]) == 0 {
			continue
		}
		terms := append(append([]lp.Term(nil), loadTerms[i]...), lp.Term{Var: tVar, Coef: -1})
		prob.AddConstraint(terms, lp.LE, 0)
	}
	sol, err := opts.solve(prob, crashBasis(prob, jobs, pairs, opts.warm))
	if err != nil {
		return nil, fmt.Errorf("core: LP2 solve: %w", err)
	}
	fs := extractSolution(in, jobs, pairs, sol, nil, tVar)
	fs.Basis = sol.Basis
	if opts.warm != nil {
		opts.warm.note(in, fs)
	}
	return fs, nil
}

func extractSolution(in *model.Instance, jobs []int, pairs []pairPJ, sol *lp.Solution, dVarOf []int, tVar int) *FracSolution {
	fs := &FracSolution{
		Jobs:       append([]int(nil), jobs...),
		X:          make([][]float64, in.M),
		D:          make([]float64, in.N),
		T:          sol.X[tVar],
		Iterations: sol.Iterations,
		Rows:       sol.Rows,
		Cols:       sol.Cols,
		Nnz:        sol.Nnz,
	}
	flat := make([]float64, in.M*in.N)
	for i := range fs.X {
		fs.X[i] = flat[i*in.N : (i+1)*in.N : (i+1)*in.N]
	}
	for v, pr := range pairs {
		fs.X[pr.i][pr.j] = sol.X[v]
	}
	for _, j := range jobs {
		if dVarOf != nil {
			fs.D[j] = sol.X[dVarOf[j]]
		} else {
			fs.D[j] = 1
		}
	}
	return fs
}

// LPLowerBound converts an (LP1) optimum T* into a lower bound on the
// optimal expected makespan via Lemma 4.2 (T* ≤ 16·T_OPT when the LP
// targets mass 1/2): T_OPT ≥ T*/16. For a different mass target τ the
// same proof gives T* ≤ 2·T_OPT·max(1, 16τ) — callers should use the
// 1/2 default for the canonical bound.
func LPLowerBound(tStar float64) float64 { return tStar / 16 }
