package core

import (
	"fmt"

	"suu/internal/lp"
	"suu/internal/model"
)

// FracSolution is an optimal fractional solution of (LP1) or (LP2),
// restricted to a job scope (the whole job set, or one decomposition
// block).
type FracSolution struct {
	// Jobs lists the job indices in scope.
	Jobs []int
	// X[i][j] is machine i's fractional step count on job j (indexed by
	// original job id; zero outside the scope).
	X [][]float64
	// D[j] is d_j, the fractional window length of job j (1 when the
	// relaxation had no d variables).
	D []float64
	// T is the optimal LP value t (T* in the paper).
	T float64
	// Iterations reports simplex pivots, for the harness.
	Iterations int
}

// buildVars enumerates the x variables: one per (machine, job) pair
// with positive success probability and the job in scope.
func buildVars(in *model.Instance, jobs []int) (pairs []pairPJ) {
	for _, j := range jobs {
		for i := 0; i < in.M; i++ {
			if in.P[i][j] > 0 {
				pairs = append(pairs, pairPJ{i: i, j: j, p: in.P[i][j]})
			}
		}
	}
	return pairs
}

// SolveLP1 formulates and solves (LP1) of Section 4.1 for the given
// chain set: minimize t subject to
//
//	Σ_i p_ij·x_ij ≥ target          ∀ jobs j in scope      (mass)
//	Σ_j x_ij ≤ t                    ∀ machines i           (load)
//	Σ_{j∈C_k} d_j ≤ t               ∀ chains C_k           (chain time)
//	x_ij ≤ d_j, d_j ≥ 1, x_ij ≥ 0
//
// d_j ≥ 1 is enforced by the substitution d_j = d'_j + 1, d'_j ≥ 0.
// The chains must be disjoint; their union is the job scope.
func SolveLP1(in *model.Instance, chains [][]int, target float64) (*FracSolution, error) {
	var jobs []int
	chainOf := make(map[int]int)
	for k, c := range chains {
		for _, j := range c {
			if _, dup := chainOf[j]; dup {
				return nil, fmt.Errorf("core: job %d appears in two chains", j)
			}
			chainOf[j] = k
			jobs = append(jobs, j)
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: empty chain set")
	}
	pairs := buildVars(in, jobs)
	nv := len(pairs)
	dBase := nv // d'_j variables, one per job in scope order
	tVar := nv + len(jobs)
	prob := lp.NewProblem(tVar + 1)
	prob.SetObjectiveCoef(tVar, 1)

	dIdx := make(map[int]int, len(jobs))
	for jj, j := range jobs {
		dIdx[j] = dBase + jj
	}
	// (mass) per job.
	massTerms := make(map[int][]lp.Term)
	// (load) per machine.
	loadTerms := make([][]lp.Term, in.M)
	for v, pr := range pairs {
		massTerms[pr.j] = append(massTerms[pr.j], lp.Term{Var: v, Coef: pr.p})
		loadTerms[pr.i] = append(loadTerms[pr.i], lp.Term{Var: v, Coef: 1})
		// x_ij ≤ d_j  ⇔  x_ij − d'_j ≤ 1.
		prob.AddConstraint([]lp.Term{{Var: v, Coef: 1}, {Var: dIdx[pr.j], Coef: -1}}, lp.LE, 1)
	}
	for _, j := range jobs {
		terms := massTerms[j]
		if len(terms) == 0 {
			return nil, fmt.Errorf("core: job %d has no capable machine", j)
		}
		prob.AddConstraint(terms, lp.GE, target)
	}
	for i := 0; i < in.M; i++ {
		if len(loadTerms[i]) == 0 {
			continue
		}
		terms := append(append([]lp.Term(nil), loadTerms[i]...), lp.Term{Var: tVar, Coef: -1})
		prob.AddConstraint(terms, lp.LE, 0)
	}
	for _, c := range chains {
		terms := make([]lp.Term, 0, len(c)+1)
		for _, j := range c {
			terms = append(terms, lp.Term{Var: dIdx[j], Coef: 1})
		}
		terms = append(terms, lp.Term{Var: tVar, Coef: -1})
		prob.AddConstraint(terms, lp.LE, -float64(len(c)))
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: LP1 solve: %w", err)
	}
	return extractSolution(in, jobs, pairs, sol, dIdx, tVar), nil
}

// SolveLP2 formulates and solves (LP2) of Theorem 4.5 — (LP1) without
// the chain/window constraints — for an independent job scope.
func SolveLP2(in *model.Instance, jobs []int, target float64) (*FracSolution, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: empty job scope")
	}
	pairs := buildVars(in, jobs)
	nv := len(pairs)
	tVar := nv
	prob := lp.NewProblem(tVar + 1)
	prob.SetObjectiveCoef(tVar, 1)
	massTerms := make(map[int][]lp.Term)
	loadTerms := make([][]lp.Term, in.M)
	for v, pr := range pairs {
		massTerms[pr.j] = append(massTerms[pr.j], lp.Term{Var: v, Coef: pr.p})
		loadTerms[pr.i] = append(loadTerms[pr.i], lp.Term{Var: v, Coef: 1})
	}
	for _, j := range jobs {
		terms := massTerms[j]
		if len(terms) == 0 {
			return nil, fmt.Errorf("core: job %d has no capable machine", j)
		}
		prob.AddConstraint(terms, lp.GE, target)
	}
	for i := 0; i < in.M; i++ {
		if len(loadTerms[i]) == 0 {
			continue
		}
		terms := append(append([]lp.Term(nil), loadTerms[i]...), lp.Term{Var: tVar, Coef: -1})
		prob.AddConstraint(terms, lp.LE, 0)
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: LP2 solve: %w", err)
	}
	return extractSolution(in, jobs, pairs, sol, nil, tVar), nil
}

func extractSolution(in *model.Instance, jobs []int, pairs []pairPJ, sol *lp.Solution, dIdx map[int]int, tVar int) *FracSolution {
	fs := &FracSolution{
		Jobs:       append([]int(nil), jobs...),
		X:          make([][]float64, in.M),
		D:          make([]float64, in.N),
		T:          sol.X[tVar],
		Iterations: sol.Iterations,
	}
	for i := range fs.X {
		fs.X[i] = make([]float64, in.N)
	}
	for v, pr := range pairs {
		fs.X[pr.i][pr.j] = sol.X[v]
	}
	for _, j := range jobs {
		if dIdx != nil {
			fs.D[j] = sol.X[dIdx[j]] + 1
		} else {
			fs.D[j] = 1
		}
	}
	return fs
}

// LPLowerBound converts an (LP1) optimum T* into a lower bound on the
// optimal expected makespan via Lemma 4.2 (T* ≤ 16·T_OPT when the LP
// targets mass 1/2): T_OPT ≥ T*/16. For a different mass target τ the
// same proof gives T* ≤ 2·T_OPT·max(1, 16τ) — callers should use the
// 1/2 default for the canonical bound.
func LPLowerBound(tStar float64) float64 { return tStar / 16 }
