package core

import (
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
)

func simulateCompletes(t *testing.T, in *model.Instance, pol sched.Policy, reps int) float64 {
	t.Helper()
	sum, incomplete := sim.Estimate(in, pol, reps, 2_000_000, 123)
	if incomplete != 0 {
		t.Fatalf("%d/%d runs incomplete", incomplete, reps)
	}
	return sum.Mean
}

func TestSUUIObliviousEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		in := randomInstance(n, m, rng)
		res, err := SUUIOblivious(in, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in.N); err != nil {
			t.Fatal(err)
		}
		// Every job must have accumulated at least the peel threshold.
		mass := sched.MassPerJob(in, res.Schedule.Steps)
		for j, v := range mass {
			if v < 1.0/96-1e-9 {
				t.Errorf("trial %d: job %d core mass %v < 1/96", trial, j, v)
			}
		}
		mean := simulateCompletes(t, in, res.Schedule, 40)
		if mean < 1 {
			t.Errorf("mean makespan %v < 1", mean)
		}
	}
}

func TestSUUIObliviousRejectsDependentJobs(t *testing.T) {
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 0.5, 0.5
	in.Prec.MustEdge(0, 1)
	if _, err := SUUIOblivious(in, DefaultParams()); err == nil {
		t.Error("dependent jobs accepted")
	}
}

func TestSUUChainsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		// Two chains.
		half := n / 2
		c1 := make([]int, half)
		c2 := make([]int, n-half)
		for k := range c1 {
			c1[k] = k
		}
		for k := range c2 {
			c2[k] = half + k
		}
		in := chainInstance(n, m, [][]int{c1, c2}, rng)
		res, err := SUUChains(in, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in.N); err != nil {
			t.Fatal(err)
		}
		if res.MassAchieved < 0.5-1e-9 {
			t.Errorf("mass achieved %v < 0.5", res.MassAchieved)
		}
		// Precedence windows on the final prefix (replication preserves
		// window order).
		if err := sched.CheckMassWindows(in, res.Schedule.Steps, 0.5); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		if res.Congestion > res.MaxLoad+1 {
			t.Errorf("congestion %d exceeds max load %d", res.Congestion, res.MaxLoad)
		}
		mean := simulateCompletes(t, in, res.Schedule, 30)
		if res.LowerBound > 0 && mean < res.LowerBound-1e-9 {
			t.Errorf("simulated mean %v below certified lower bound %v", mean, res.LowerBound)
		}
	}
}

func TestSUUChainsRejectsNonChainDag(t *testing.T) {
	in := model.New(3, 1)
	in.P[0][0], in.P[0][1], in.P[0][2] = 1, 1, 1
	in.Prec.MustEdge(0, 2)
	in.Prec.MustEdge(1, 2)
	if _, err := SUUChains(in, DefaultParams()); err == nil {
		t.Error("non-chain dag accepted")
	}
}

func TestSUUIndependentLPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		in := randomInstance(n, m, rng)
		res, err := SUUIndependentLP(in, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in.N); err != nil {
			t.Fatal(err)
		}
		if res.MassAchieved < 0.5-1e-9 {
			t.Errorf("mass %v < 0.5", res.MassAchieved)
		}
		// The packed core never congests: one job per machine-step by
		// construction — implied by Validate plus assignment shape.
		mean := simulateCompletes(t, in, res.Schedule, 30)
		if mean < res.LowerBound-1e-9 {
			t.Errorf("mean %v below lower bound %v", mean, res.LowerBound)
		}
	}
}

func TestSUUForestOnAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	builders := []struct {
		name  string
		build func() *model.Instance
	}{
		{"independent", func() *model.Instance { return randomInstance(5, 3, rng) }},
		{"chains", func() *model.Instance {
			return chainInstance(5, 2, [][]int{{0, 1, 2}, {3, 4}}, rng)
		}},
		{"out-tree", func() *model.Instance {
			in := randomInstance(7, 3, rng)
			for v := 1; v < 7; v++ {
				in.Prec.MustEdge(rng.Intn(v), v)
			}
			return in
		}},
		{"in-tree", func() *model.Instance {
			in := randomInstance(7, 3, rng)
			for v := 1; v < 7; v++ {
				in.Prec.MustEdge(v, rng.Intn(v))
			}
			return in
		}},
		{"mixed-forest", func() *model.Instance {
			in := randomInstance(6, 2, rng)
			in.Prec.MustEdge(0, 1)
			in.Prec.MustEdge(0, 2)
			in.Prec.MustEdge(3, 5)
			in.Prec.MustEdge(4, 5)
			return in
		}},
		{"general-dag-fallback", func() *model.Instance {
			in := randomInstance(6, 2, rng)
			in.Prec.MustEdge(0, 2)
			in.Prec.MustEdge(1, 2)
			in.Prec.MustEdge(2, 3)
			in.Prec.MustEdge(2, 4)
			in.Prec.MustEdge(3, 5)
			in.Prec.MustEdge(4, 5)
			return in
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			in := b.build()
			res, err := SUUForest(in, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Schedule.Validate(in.N); err != nil {
				t.Fatal(err)
			}
			if err := res.Decomposition.Validate(in.Prec); err != nil {
				t.Fatal(err)
			}
			if res.MassAchieved < 0.5-1e-9 {
				t.Errorf("mass %v < 0.5", res.MassAchieved)
			}
			if err := sched.CheckMassWindows(in, res.Schedule.Steps, 0.5); err != nil {
				t.Error(err)
			}
			mean := simulateCompletes(t, in, res.Schedule, 25)
			if mean < res.LowerBound-1e-9 {
				t.Errorf("mean %v below lower bound %v", mean, res.LowerBound)
			}
		})
	}
}

func TestBaselinePoliciesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := randomInstance(5, 3, rng)
	in.Prec.MustEdge(0, 1)
	in.Prec.MustEdge(1, 2)
	pols := map[string]sched.Policy{
		"greedy-maxp": &GreedyMaxPPolicy{In: in},
		"round-robin": &RoundRobinPolicy{In: in},
		"all-on-one":  &AllOnOnePolicy{In: in},
		"random":      &RandomPolicy{In: in, Rng: rand.New(rand.NewSource(1))},
		"adaptive":    &AdaptivePolicy{In: in},
	}
	for name, pol := range pols {
		t.Run(name, func(t *testing.T) {
			mean := simulateCompletes(t, in, pol, 25)
			if mean < 3 {
				t.Errorf("%s: mean %v below chain length 3", name, mean)
			}
		})
	}
}

func TestBuildPseudoWindows(t *testing.T) {
	// Chain 0→1 on 2 machines; x gives job0: m0×2, m1×1; job1: m1×3.
	in := model.New(2, 2)
	in.P[0][0], in.P[1][0] = 0.4, 0.3
	in.P[0][1], in.P[1][1] = 0.0, 0.2
	in.Prec.MustEdge(0, 1)
	x := [][]int{{2, 0}, {1, 3}}
	p := BuildPseudo(in, [][]int{{0, 1}}, x)
	if len(p.Tracks) != 1 {
		t.Fatal("want a single track")
	}
	tr := p.Tracks[0]
	// L0 = 2, L1 = 3 → track length 5; job 1 starts at step 2.
	if len(tr.Steps) != 5 {
		t.Fatalf("track length %d, want 5", len(tr.Steps))
	}
	for s := 0; s < 2; s++ {
		for i, j := range tr.Steps[s] {
			if j == 1 {
				t.Errorf("job 1 scheduled at step %d machine %d inside job 0's window", s, i)
			}
		}
	}
	if tr.Steps[2][1] != 1 || tr.Steps[4][1] != 1 {
		t.Error("job 1 window misplaced")
	}
	// Flatten of a single track must be congestion-free and identical in
	// per-job mass.
	flat := p.Flatten()
	if flat.Len() != 5 {
		t.Errorf("flatten changed single-track length: %d", flat.Len())
	}
}

func TestPackSequentialShape(t *testing.T) {
	in := model.New(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			in.P[i][j] = 0.5
		}
	}
	x := [][]int{{2, 1, 0}, {0, 0, 4}}
	o := PackSequential(in, x)
	if o.Len() != 4 {
		t.Fatalf("length %d, want max load 4", o.Len())
	}
	if err := o.Validate(3); err != nil {
		t.Fatal(err)
	}
	mass := sched.MassPerJob(in, o.Steps)
	if mass[0] != 1.0 || mass[1] != 0.5 || mass[2] != 2.0 {
		t.Errorf("mass=%v", mass)
	}
}
