package core

import (
	"errors"
	"fmt"
	"math"

	"suu/internal/model"
	"suu/internal/sched"
)

// OblResult carries an oblivious construction together with the
// quantities the analysis certifies, for reporting and validation.
type OblResult struct {
	// Schedule is the final oblivious schedule (prefix + tail). Its
	// prefix already includes replication where the construction calls
	// for it.
	Schedule *sched.Oblivious
	// CoreLength is the length of the pre-replication prefix in which
	// every job accumulates MassAchieved.
	CoreLength int
	// MassAchieved is the minimum per-job mass certified over the core
	// prefix.
	MassAchieved float64
	// TGuess is the final doubling value of t (SUU-I-OBL) or the
	// rounded LP length bound (LP pipelines).
	TGuess int
	// Rounds is the number of peeling rounds used (SUU-I-OBL).
	Rounds int
}

// SUUIOblivious is SUU-I-OBL (Algorithm 2, Lemma 3.5 and Theorem 3.6):
// a combinatorial construction of an oblivious schedule for
// independent jobs in which every job accumulates mass at least
// PeelThreshold within a prefix of length O(log n)·T_OPT; the returned
// schedule cycles that prefix forever (Σ_o^∞), giving expected
// makespan O(log² n)·T_OPT.
//
// The doubling search probes t = 1, 2, 4, ...; for each t it runs up
// to ⌈PeelRoundsFactor·log₂ n⌉ invocations of MSM-E-ALG, after each of
// which the jobs that accumulated PeelThreshold mass are peeled.
func SUUIOblivious(in *model.Instance, par Params) (*OblResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Prec.E() != 0 {
		return nil, errors.New("core: SUU-I-OBL requires independent jobs")
	}
	maxRounds := par.PeelRoundsFactor * log2Ceil(in.N)
	if maxRounds < 1 {
		maxRounds = 1
	}
	t := 1
	for doubling := 0; doubling <= par.MaxDoublings; doubling++ {
		remaining := make([]bool, in.N)
		for j := range remaining {
			remaining[j] = true
		}
		left := in.N
		var prefix []sched.Assignment
		rounds := 0
		for left > 0 && rounds < maxRounds {
			x := MSMExt(in, remaining, t)
			mass := MassOfCounts(in, x)
			o := ScheduleFromCounts(in, x, t)
			prefix = append(prefix, o.Steps...)
			for j := 0; j < in.N; j++ {
				if remaining[j] && mass[j] >= par.PeelThreshold-1e-12 {
					remaining[j] = false
					left--
				}
			}
			rounds++
		}
		if left == 0 {
			obl := &sched.Oblivious{M: in.M, Steps: prefix} // nil tail: cycles the prefix (Σ_o^∞)
			return &OblResult{
				Schedule:     obl,
				CoreLength:   len(prefix),
				MassAchieved: par.PeelThreshold,
				TGuess:       t,
				Rounds:       rounds,
			}, nil
		}
		if t > math.MaxInt32 {
			break
		}
		t *= 2
	}
	return nil, fmt.Errorf("core: SUU-I-OBL did not converge within %d doublings", par.MaxDoublings)
}
