package sched

import (
	"math"
	"strings"
	"testing"

	"suu/internal/model"
)

func TestAnalyzePrefix(t *testing.T) {
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.5, 0.2
	in.P[1][0], in.P[1][1] = 0.1, 0.4
	o := &Oblivious{M: 2, Steps: []Assignment{
		{0, Idle},
		{0, 1},
		{Idle, Idle},
		{Idle, 1},
	}}
	st := AnalyzePrefix(in, o)
	if st.Steps != 4 {
		t.Fatalf("steps=%d", st.Steps)
	}
	if st.Utilization[0] != 0.5 || st.Utilization[1] != 0.5 {
		t.Errorf("utilization=%v", st.Utilization)
	}
	if st.FirstStep[0] != 0 || st.LastStep[0] != 1 {
		t.Errorf("job 0 window [%d,%d]", st.FirstStep[0], st.LastStep[0])
	}
	if st.FirstStep[1] != 1 || st.LastStep[1] != 3 {
		t.Errorf("job 1 window [%d,%d]", st.FirstStep[1], st.LastStep[1])
	}
	if math.Abs(st.Mass[0]-1.0) > 1e-12 || math.Abs(st.Mass[1]-0.8) > 1e-12 {
		t.Errorf("mass=%v", st.Mass)
	}
	if !strings.Contains(st.String(), "machine 0") {
		t.Error("report missing machine rows")
	}
}

func TestAnalyzePrefixEmptyAndUnassigned(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	st := AnalyzePrefix(in, &Oblivious{M: 1})
	if st.Steps != 0 || st.FirstStep[0] != -1 {
		t.Errorf("empty prefix stats wrong: %+v", st)
	}
}
