package sched

import (
	"fmt"
	"math/rand"
)

// ChainTrack is the schedule of a single precedence chain inside a
// pseudo-schedule: Steps[t][i] is the job of this chain that machine i
// works on at step t, or Idle. Within a track a machine serves at most
// one job per step; congestion arises only across tracks.
type ChainTrack struct {
	Steps []Assignment
}

// Pseudo is a pseudo-schedule (Definition 4.1): the union of its chain
// tracks. The union may assign one machine to several jobs in a step,
// which is what the random-delay + flattening conversion repairs.
type Pseudo struct {
	M      int
	Tracks []ChainTrack
}

// Len returns the number of steps of the longest track.
func (p *Pseudo) Len() int {
	max := 0
	for _, tr := range p.Tracks {
		if len(tr.Steps) > max {
			max = len(tr.Steps)
		}
	}
	return max
}

// Load returns the load of each machine — the total number of
// (step, job) units scheduled on it across all tracks (Definition 4.2).
func (p *Pseudo) Load() []int {
	load := make([]int, p.M)
	for _, tr := range p.Tracks {
		for _, a := range tr.Steps {
			for i, j := range a {
				if j != Idle {
					load[i]++
				}
			}
		}
	}
	return load
}

// MaxLoad returns the maximum machine load (Π_max in the paper).
func (p *Pseudo) MaxLoad() int {
	max := 0
	for _, l := range p.Load() {
		if l > max {
			max = l
		}
	}
	return max
}

// MaxCongestion returns the largest number of jobs assigned to any
// single machine in any single step.
func (p *Pseudo) MaxCongestion() int {
	return p.congestionWithDelays(nil)
}

// congestionWithDelays computes max congestion when track k starts
// delays[k] steps late (nil = no delays).
func (p *Pseudo) congestionWithDelays(delays []int) int {
	length := p.Len()
	for k := range p.Tracks {
		d := 0
		if delays != nil {
			d = delays[k]
		}
		if l := len(p.Tracks[k].Steps) + d; l > length {
			length = l
		}
	}
	if length == 0 {
		return 0
	}
	counts := make([]int, length*p.M)
	max := 0
	for k, tr := range p.Tracks {
		d := 0
		if delays != nil {
			d = delays[k]
		}
		for t, a := range tr.Steps {
			for i, j := range a {
				if j == Idle {
					continue
				}
				idx := (t+d)*p.M + i
				counts[idx]++
				if counts[idx] > max {
					max = counts[idx]
				}
			}
		}
	}
	return max
}

// WithDelays returns a new pseudo-schedule in which track k is shifted
// to start delays[k] steps later (the random-delay technique of
// Leighton–Maggs–Rao / Shmoys–Stein–Wein used in Section 4.1).
func (p *Pseudo) WithDelays(delays []int) *Pseudo {
	if len(delays) != len(p.Tracks) {
		panic("sched: delay vector length mismatch")
	}
	out := &Pseudo{M: p.M, Tracks: make([]ChainTrack, len(p.Tracks))}
	for k, tr := range p.Tracks {
		d := delays[k]
		if d < 0 {
			panic("sched: negative delay")
		}
		steps := make([]Assignment, d+len(tr.Steps))
		for t := 0; t < d; t++ {
			steps[t] = NewIdle(p.M)
		}
		for t, a := range tr.Steps {
			steps[d+t] = a.Clone()
		}
		out.Tracks[k] = ChainTrack{Steps: steps}
	}
	return out
}

// BestDelays samples `tries` delay vectors uniformly from
// [0, maxDelay] per track and returns the vector achieving the lowest
// maximum congestion, together with that congestion. This is the
// Las-Vegas substitute for the derandomized delay selection of
// [22,25]: the paper's own randomized analysis shows a uniformly
// random vector meets the O(log(n+m)/loglog(n+m)) congestion bound
// with high probability, so a handful of samples suffices; we keep the
// best seen, which can only be better. tries must be >= 1.
func (p *Pseudo) BestDelays(maxDelay, tries int, rng *rand.Rand) ([]int, int) {
	if tries < 1 {
		panic("sched: tries must be >= 1")
	}
	if maxDelay < 0 {
		panic("sched: negative maxDelay")
	}
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	best := make([]int, len(p.Tracks))
	bestCong := p.congestionWithDelays(best) // zero-delay candidate
	bestSum := 0
	cand := make([]int, len(p.Tracks))
	// The search evaluates `tries` candidates over the same busy
	// pattern, so precompute each track's busy cells once (as flat
	// step·M+machine offsets — a delay d shifts every offset by d·M)
	// and count into a stamped scratch buffer: no per-candidate
	// allocation or clearing, and a candidate aborts as soon as some
	// cell strictly exceeds the incumbent congestion (it can only get
	// worse, and the equal-congestion tie-break needs no exact count
	// for a loser). Results are bit-identical to the naive loop: the
	// rng draws happen before evaluation either way.
	busy := make([][]int32, len(p.Tracks))
	maxTrackLen := 0
	for k, tr := range p.Tracks {
		if len(tr.Steps) > maxTrackLen {
			maxTrackLen = len(tr.Steps)
		}
		for t, a := range tr.Steps {
			for i, j := range a {
				if j != Idle {
					busy[k] = append(busy[k], int32(t*p.M+i))
				}
			}
		}
	}
	counts := make([]int32, (maxTrackLen+maxDelay)*p.M)
	stamp := make([]int32, len(counts))
	for trial := 0; trial < tries; trial++ {
		for k := range cand {
			cand[k] = rng.Intn(maxDelay + 1)
		}
		// Only relative offsets matter for congestion, so normalize the
		// candidate by its minimum before comparing lengths.
		min := cand[0]
		for _, x := range cand {
			if x < min {
				min = x
			}
		}
		for k := range cand {
			cand[k] -= min
		}
		epoch := int32(trial + 1)
		c := 0
		for k := range cand {
			shift := int32(cand[k] * p.M)
			for _, e := range busy[k] {
				idx := e + shift
				if stamp[idx] != epoch {
					stamp[idx] = epoch
					counts[idx] = 1
				} else {
					counts[idx]++
				}
				if int(counts[idx]) > c {
					c = int(counts[idx])
					if c > bestCong {
						break // strictly worse than the incumbent
					}
				}
			}
			if c > bestCong {
				break
			}
		}
		if c < bestCong || (c == bestCong && sum(cand) < bestSum) {
			bestCong = c
			bestSum = sum(cand)
			copy(best, cand)
		}
	}
	return best, bestCong
}

// Flatten converts the pseudo-schedule into a feasible oblivious
// prefix: each global step t with congestion c_t is expanded into c_t
// unit steps, during which every machine processes its queued jobs of
// step t one per sub-step. Ordering within a step is irrelevant to
// correctness because jobs sharing (machine, step) belong to different
// tracks, which carry no mutual precedence constraints. The result's
// length is Σ_t c_t <= MaxCongestion()·Len().
func (p *Pseudo) Flatten() *Oblivious {
	length := p.Len()
	var steps []Assignment
	queue := make([][]int, p.M)
	for t := 0; t < length; t++ {
		for i := range queue {
			queue[i] = queue[i][:0]
		}
		cong := 0
		for _, tr := range p.Tracks {
			if t >= len(tr.Steps) {
				continue
			}
			for i, j := range tr.Steps[t] {
				if j != Idle {
					queue[i] = append(queue[i], j)
					if len(queue[i]) > cong {
						cong = len(queue[i])
					}
				}
			}
		}
		if cong == 0 {
			// An entirely idle step is preserved to keep precedence
			// windows aligned across tracks.
			steps = append(steps, NewIdle(p.M))
			continue
		}
		for k := 0; k < cong; k++ {
			a := NewIdle(p.M)
			for i := range queue {
				if k < len(queue[i]) {
					a[i] = queue[i][k]
				}
			}
			steps = append(steps, a)
		}
	}
	return &Oblivious{M: p.M, Steps: steps}
}

// Compact returns the oblivious prefix with all-idle steps removed.
// Removing an idle step preserves the relative order of every
// assignment, hence all precedence windows and per-job masses, and can
// only shorten the schedule. Pipelines apply it after flattening
// (delayed tracks produce idle slots where every chain is waiting).
func (o *Oblivious) Compact() *Oblivious {
	out := &Oblivious{M: o.M, Tail: o.Tail}
	for _, a := range o.Steps {
		idle := true
		for _, j := range a {
			if j != Idle {
				idle = false
				break
			}
		}
		if !idle {
			out.Steps = append(out.Steps, a)
		}
	}
	if len(out.Steps) == 0 && len(o.Steps) > 0 {
		// Keep one step so cycling prefixes stay well defined.
		out.Steps = append(out.Steps, o.Steps[0])
	}
	return out
}

// Validate checks that every track step has exactly M entries and only
// valid job indices.
func (p *Pseudo) Validate(n int) error {
	for k, tr := range p.Tracks {
		for t, a := range tr.Steps {
			if len(a) != p.M {
				return fmt.Errorf("sched: track %d step %d has %d machines, want %d", k, t, len(a), p.M)
			}
			for i, j := range a {
				if j != Idle && (j < 0 || j >= n) {
					return fmt.Errorf("sched: track %d step %d machine %d -> invalid job %d", k, t, i, j)
				}
			}
		}
	}
	return nil
}

// MassPerJobPseudo accumulates per-job mass across all tracks of the
// pseudo-schedule (pseudo-schedules may multi-assign machines, so this
// is the mass the flattened schedule will realize as well).
func MassPerJobPseudo(p *Pseudo, pm [][]float64, n int) []float64 {
	mass := make([]float64, n)
	for _, tr := range p.Tracks {
		for _, a := range tr.Steps {
			for i, j := range a {
				if j != Idle {
					mass[j] += pm[i][j]
				}
			}
		}
	}
	return mass
}
