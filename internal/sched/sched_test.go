package sched

import (
	"math/rand"
	"testing"

	"suu/internal/model"
)

func twoJobInstance() *model.Instance {
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.5, 0.2
	in.P[1][0], in.P[1][1] = 0.1, 0.4
	return in
}

func TestAssignmentHelpers(t *testing.T) {
	a := NewIdle(3)
	for _, v := range a {
		if v != Idle {
			t.Fatal("NewIdle not idle")
		}
	}
	a[0] = 1
	c := a.Clone()
	c[0] = 2
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestObliviousAtPrefixTailCycle(t *testing.T) {
	o := &Oblivious{M: 1, Steps: []Assignment{{0}, {1}}}
	if o.At(0)[0] != 0 || o.At(1)[0] != 1 {
		t.Error("prefix lookup wrong")
	}
	// nil tail cycles the prefix
	if o.At(2)[0] != 0 || o.At(5)[0] != 1 {
		t.Error("cycling lookup wrong")
	}
	o.Tail = &TopoRoundRobin{M: 1, Order: []int{7, 8}}
	if o.At(2)[0] != 7 || o.At(3)[0] != 8 || o.At(4)[0] != 7 {
		t.Error("tail lookup wrong")
	}
}

func TestObliviousValidate(t *testing.T) {
	o := &Oblivious{M: 2, Steps: []Assignment{{0, Idle}}}
	if err := o.Validate(1); err != nil {
		t.Fatal(err)
	}
	bad := &Oblivious{M: 2, Steps: []Assignment{{0, 5}}}
	if bad.Validate(1) == nil {
		t.Error("invalid job accepted")
	}
	short := &Oblivious{M: 2, Steps: []Assignment{{0}}}
	if short.Validate(1) == nil {
		t.Error("short assignment accepted")
	}
}

func TestConcatAndReplicate(t *testing.T) {
	a := &Oblivious{M: 1, Steps: []Assignment{{0}}}
	b := &Oblivious{M: 1, Steps: []Assignment{{1}}, Tail: &TopoRoundRobin{M: 1, Order: []int{0}}}
	c := Concat(a, b)
	if c.Len() != 2 || c.At(0)[0] != 0 || c.At(1)[0] != 1 {
		t.Error("concat wrong")
	}
	if c.Tail == nil {
		t.Error("concat dropped tail")
	}
	r := a.Replicate(3)
	if r.Len() != 3 || r.At(2)[0] != 0 {
		t.Error("replicate wrong")
	}
}

func TestRegimenLookupAndFallback(t *testing.T) {
	r := NewRegimen(2, 1)
	r.F[Key([]bool{true, true})] = Assignment{0}
	st := &State{Unfinished: []bool{true, true}}
	if r.Assign(st)[0] != 0 {
		t.Error("regimen lookup wrong")
	}
	st2 := &State{Unfinished: []bool{false, true}}
	if r.Assign(st2)[0] != Idle {
		t.Error("missing state should idle")
	}
}

func TestMassPerJob(t *testing.T) {
	in := twoJobInstance()
	steps := []Assignment{{0, 1}, {0, Idle}}
	mass := MassPerJob(in, steps)
	if mass[0] != 1.0 || mass[1] != 0.4 {
		t.Errorf("mass=%v, want [1.0 0.4]", mass)
	}
	by := MassBySteps(in, steps)
	if by[0][0] != 0.5 || by[1][0] != 1.0 {
		t.Errorf("running mass=%v", by)
	}
}

func TestCheckMassWindows(t *testing.T) {
	in := twoJobInstance()
	in.Prec.MustEdge(0, 1)
	// Job 1 touched at step 0 while job 0 has no mass: violation.
	bad := []Assignment{{Idle, 1}, {0, Idle}}
	if CheckMassWindows(in, bad, 0.5) == nil {
		t.Error("window violation not caught")
	}
	// Job 0 reaches 0.5 at step 0 (machine 0: p=0.5); job 1 from step 1.
	good := []Assignment{{0, Idle}, {Idle, 1}, {Idle, 1}}
	if err := CheckMassWindows(in, good, 0.5); err != nil {
		t.Errorf("valid windows rejected: %v", err)
	}
	// Same-step assignment (pred reaches target at t, succ starts at t)
	// violates the strict "before" requirement.
	sameStep := []Assignment{{0, 1}, {Idle, 1}}
	if CheckMassWindows(in, sameStep, 0.5) == nil {
		t.Error("same-step start not caught")
	}
}

func TestTopoRoundRobinTail(t *testing.T) {
	rr := &TopoRoundRobin{M: 2, Order: []int{3, 1}}
	a := rr.TailAssign(0)
	if a[0] != 3 || a[1] != 3 {
		t.Error("all machines should serve order[0]")
	}
	if rr.TailAssign(3)[0] != 1 {
		t.Error("cycling wrong")
	}
}

func TestPseudoLoadCongestionDelay(t *testing.T) {
	// Two tracks each using machine 0 at step 0.
	p := &Pseudo{M: 2, Tracks: []ChainTrack{
		{Steps: []Assignment{{0, Idle}, {1, Idle}}},
		{Steps: []Assignment{{2, Idle}}},
	}}
	if p.Len() != 2 {
		t.Errorf("Len=%d", p.Len())
	}
	if l := p.Load(); l[0] != 3 || l[1] != 0 {
		t.Errorf("Load=%v", l)
	}
	if p.MaxLoad() != 3 {
		t.Error("MaxLoad wrong")
	}
	if p.MaxCongestion() != 2 {
		t.Errorf("MaxCongestion=%d, want 2", p.MaxCongestion())
	}
	d := p.WithDelays([]int{0, 1})
	if d.MaxCongestion() != 2 {
		// After delaying track 2 by 1, step1 has track1 job1 + track2 job2 on machine 0.
		t.Errorf("delayed congestion=%d, want 2", d.MaxCongestion())
	}
	d2 := p.WithDelays([]int{0, 2})
	if d2.MaxCongestion() != 1 {
		t.Errorf("delayed congestion=%d, want 1", d2.MaxCongestion())
	}
}

func TestBestDelaysFindsImprovement(t *testing.T) {
	// 4 tracks all colliding at step 0 on machine 0.
	tracks := make([]ChainTrack, 4)
	for k := range tracks {
		tracks[k] = ChainTrack{Steps: []Assignment{{0}}}
	}
	p := &Pseudo{M: 1, Tracks: tracks}
	if p.MaxCongestion() != 4 {
		t.Fatal("setup wrong")
	}
	rng := rand.New(rand.NewSource(3))
	_, cong := p.BestDelays(8, 200, rng)
	if cong > 2 {
		t.Errorf("BestDelays congestion=%d, want <=2 with 200 tries over [0,8]", cong)
	}
}

func TestFlattenProducesFeasibleSchedule(t *testing.T) {
	p := &Pseudo{M: 2, Tracks: []ChainTrack{
		{Steps: []Assignment{{0, Idle}, {1, 1}}},
		{Steps: []Assignment{{2, Idle}}},
	}}
	o := p.Flatten()
	if err := o.Validate(3); err != nil {
		t.Fatal(err)
	}
	// Step 0 congestion 2 → two sub-steps; step 1 congestion 1.
	if o.Len() != 3 {
		t.Errorf("flattened length=%d, want 3", o.Len())
	}
	// Per-machine-step single job by construction; total assignments preserved.
	count := 0
	for _, a := range o.Steps {
		for _, j := range a {
			if j != Idle {
				count++
			}
		}
	}
	if count != 4 {
		t.Errorf("flatten lost/dup assignments: %d, want 4", count)
	}
}

func TestFlattenPreservesMass(t *testing.T) {
	in := model.New(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			in.P[i][j] = 0.1 * float64(i+j+1)
		}
	}
	p := &Pseudo{M: 2, Tracks: []ChainTrack{
		{Steps: []Assignment{{0, 1}, {1, Idle}}},
		{Steps: []Assignment{{2, 2}, {Idle, 0}}},
	}}
	want := MassPerJobPseudo(p, in.P, 3)
	got := MassPerJob(in, p.Flatten().Steps)
	for j := range want {
		if diff := want[j] - got[j]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("job %d mass %v != %v", j, got[j], want[j])
		}
	}
}

func TestFlattenIdleStepPreserved(t *testing.T) {
	p := &Pseudo{M: 1, Tracks: []ChainTrack{
		{Steps: []Assignment{{Idle}, {0}}},
	}}
	o := p.Flatten()
	if o.Len() != 2 || o.Steps[0][0] != Idle || o.Steps[1][0] != 0 {
		t.Errorf("idle step not preserved: %v", o.Steps)
	}
}

func TestPseudoValidate(t *testing.T) {
	p := &Pseudo{M: 2, Tracks: []ChainTrack{{Steps: []Assignment{{0, 9}}}}}
	if p.Validate(3) == nil {
		t.Error("invalid job index accepted")
	}
	p2 := &Pseudo{M: 2, Tracks: []ChainTrack{{Steps: []Assignment{{0}}}}}
	if p2.Validate(3) == nil {
		t.Error("wrong machine count accepted")
	}
}

func TestPolicyFunc(t *testing.T) {
	pf := PolicyFunc(func(st *State) Assignment { return Assignment{st.Step} })
	if pf.Assign(&State{Step: 5})[0] != 5 {
		t.Error("PolicyFunc broken")
	}
}
