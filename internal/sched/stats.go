package sched

import (
	"fmt"
	"strings"

	"suu/internal/model"
)

// PrefixStats summarizes the structure of an oblivious prefix: how
// busy the machines are and where each job's service window lies.
type PrefixStats struct {
	Steps int
	// Utilization[i] is the fraction of prefix steps machine i is
	// assigned to some job.
	Utilization []float64
	// FirstStep[j] and LastStep[j] bound job j's assignments (-1 when
	// the job never appears).
	FirstStep, LastStep []int
	// Mass[j] is the job's total accumulated mass over the prefix.
	Mass []float64
}

// AnalyzePrefix computes PrefixStats for the prefix of o on instance
// in.
func AnalyzePrefix(in *model.Instance, o *Oblivious) PrefixStats {
	st := PrefixStats{
		Steps:       len(o.Steps),
		Utilization: make([]float64, o.M),
		FirstStep:   make([]int, in.N),
		LastStep:    make([]int, in.N),
		Mass:        make([]float64, in.N),
	}
	for j := range st.FirstStep {
		st.FirstStep[j] = -1
		st.LastStep[j] = -1
	}
	for t, a := range o.Steps {
		for i, j := range a {
			if j == Idle {
				continue
			}
			st.Utilization[i]++
			st.Mass[j] += in.P[i][j]
			if st.FirstStep[j] == -1 {
				st.FirstStep[j] = t
			}
			st.LastStep[j] = t
		}
	}
	if st.Steps > 0 {
		for i := range st.Utilization {
			st.Utilization[i] /= float64(st.Steps)
		}
	}
	return st
}

// String renders a compact report.
func (s PrefixStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefix: %d steps\n", s.Steps)
	for i, u := range s.Utilization {
		fmt.Fprintf(&b, "  machine %d: %.1f%% busy\n", i, 100*u)
	}
	for j := range s.Mass {
		fmt.Fprintf(&b, "  job %d: window [%d,%d], mass %.2f\n", j, s.FirstStep[j], s.LastStep[j], s.Mass[j])
	}
	return b.String()
}
