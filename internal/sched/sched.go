package sched

import (
	"fmt"
	"sync"

	"suu/internal/model"
)

// Idle marks a machine with no job in an Assignment.
const Idle = -1

// Assignment maps each machine index to a job index, or Idle.
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// NewIdle returns an all-idle assignment over m machines.
func NewIdle(m int) Assignment {
	a := make(Assignment, m)
	for i := range a {
		a[i] = Idle
	}
	return a
}

// State is the scheduling state visible to a Policy at one step.
type State struct {
	// Unfinished[j] reports whether job j has not yet completed.
	Unfinished []bool
	// Eligible[j] reports whether j is unfinished and all its
	// predecessors have completed.
	Eligible []bool
	// Step is the 0-based index of the step about to execute.
	Step int
}

// Policy produces one step's assignment from the current state. It is
// the general notion of schedule from Definition 2.1: adaptive
// policies read Unfinished/Eligible, oblivious ones only Step.
type Policy interface {
	Assign(st *State) Assignment
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(st *State) Assignment

// Assign implements Policy.
func (f PolicyFunc) Assign(st *State) Assignment { return f(st) }

// OutcomeObserver is an optional extension of Policy: after executing
// a step, the simulator reports the assignment that was played and
// which jobs completed in that step. Learning policies (the §5
// "online" extension) use this for exact credit assignment; pure
// policies simply don't implement it.
type OutcomeObserver interface {
	Observe(played Assignment, completed []bool)
}

// Memoizable marks stationary policies (Definition 2.2): Assign must
// be a pure function of the unfinished set — the same
// Unfinished/Eligible always yields the same assignment, independent
// of Step, call order, or any prior call. The simulation engine
// compiles such policies into per-state transition tables (one
// memoized assignment digest per reachable unfinished-set key) and
// runs repetitions as table-driven walks that are bit-identical to
// the generic step engine; see sim's compiled adaptive engine. A
// policy must not implement both Memoizable and OutcomeObserver —
// observation feedback is execution history, which a stationary
// assignment by definition cannot depend on.
type Memoizable interface {
	Policy
	// Memoizable is a marker; implementations do nothing.
	Memoizable()
}

// Tail generates assignments for steps beyond an oblivious prefix.
type Tail interface {
	// TailAssign returns the assignment for the k-th step after the
	// prefix (k >= 0).
	TailAssign(k int) Assignment
}

// Oblivious is an oblivious schedule: a finite prefix of assignments
// followed by an optional infinite tail. A nil Tail repeats the prefix
// forever (the Σ_o^∞ construction of Theorem 3.6); an empty prefix
// with nil tail is invalid for execution.
type Oblivious struct {
	M     int
	Steps []Assignment
	Tail  Tail
}

// Len returns the prefix length.
func (o *Oblivious) Len() int { return len(o.Steps) }

// At returns the assignment of step t (0-based), consulting the tail
// or cycling the prefix beyond the prefix length.
func (o *Oblivious) At(t int) Assignment {
	if t < len(o.Steps) {
		return o.Steps[t]
	}
	if o.Tail != nil {
		return o.Tail.TailAssign(t - len(o.Steps))
	}
	if len(o.Steps) == 0 {
		panic("sched: empty oblivious schedule with no tail")
	}
	return o.Steps[t%len(o.Steps)]
}

// Assign implements Policy; oblivious schedules ignore the job state.
func (o *Oblivious) Assign(st *State) Assignment { return o.At(st.Step) }

// Validate checks structural feasibility: every step assigns each of
// the M machines to a job in [0,n) or Idle.
func (o *Oblivious) Validate(n int) error {
	for t, a := range o.Steps {
		if len(a) != o.M {
			return fmt.Errorf("sched: step %d has %d machines, want %d", t, len(a), o.M)
		}
		for i, j := range a {
			if j != Idle && (j < 0 || j >= n) {
				return fmt.Errorf("sched: step %d machine %d assigned to invalid job %d", t, i, j)
			}
		}
	}
	return nil
}

// Concat returns a new schedule running o's prefix then p's prefix;
// the tail is taken from p.
func Concat(o, p *Oblivious) *Oblivious {
	if o.M != p.M {
		panic("sched: concat of schedules with different machine counts")
	}
	steps := make([]Assignment, 0, len(o.Steps)+len(p.Steps))
	steps = append(steps, o.Steps...)
	steps = append(steps, p.Steps...)
	return &Oblivious{M: o.M, Steps: steps, Tail: p.Tail}
}

// Replicate repeats every prefix step sigma times (the schedule
// replication step of Section 4.1): step τ of the result equals step
// ⌊τ/sigma⌋ of the input prefix. The tail is preserved.
func (o *Oblivious) Replicate(sigma int) *Oblivious {
	if sigma < 1 {
		panic("sched: replication factor must be >= 1")
	}
	steps := make([]Assignment, 0, len(o.Steps)*sigma)
	for _, a := range o.Steps {
		for k := 0; k < sigma; k++ {
			steps = append(steps, a)
		}
	}
	return &Oblivious{M: o.M, Steps: steps, Tail: o.Tail}
}

// TopoRoundRobin is the Σ_o,3 tail: at tail step k every machine is
// assigned to job Order[k mod n]. Combined with an eligibility check
// in the executor this completes every job eventually with probability
// one, bounding the expected makespan of the composed schedule.
type TopoRoundRobin struct {
	M     int
	Order []int

	// cache holds the all-machines-on-Order[k] assignment per order
	// position, built once so tail steps allocate nothing. Guarded by
	// once for concurrent simulation workers.
	once  sync.Once
	cache []Assignment
}

// TailAssign implements Tail. The returned assignment is shared and
// must not be modified.
func (rr *TopoRoundRobin) TailAssign(k int) Assignment {
	rr.once.Do(func() {
		rr.cache = make([]Assignment, len(rr.Order))
		for pos, j := range rr.Order {
			a := make(Assignment, rr.M)
			for i := range a {
				a[i] = j
			}
			rr.cache[pos] = a
		}
	})
	return rr.cache[k%len(rr.cache)]
}

// Regimen is a stationary policy: the assignment depends only on the
// set of unfinished jobs (Definition 2.2). Supports n <= 64 jobs via
// bitmask keys; missing states fall back to all-idle (which the
// simulator treats as a stuck schedule).
type Regimen struct {
	M int
	N int
	// F maps the bitmask of unfinished jobs to that state's assignment.
	F map[uint64]Assignment

	// idle is the shared all-idle fallback for missing states, built
	// once so lookup misses allocate nothing.
	idleOnce sync.Once
	idle     Assignment
}

// NewRegimen returns an empty regimen for n jobs and m machines.
func NewRegimen(n, m int) *Regimen {
	if n > 64 {
		panic("sched: regimen supports at most 64 jobs")
	}
	return &Regimen{M: m, N: n, F: make(map[uint64]Assignment)}
}

// Key packs an unfinished mask from a boolean slice.
func Key(unfinished []bool) uint64 {
	var k uint64
	for j, u := range unfinished {
		if u {
			k |= 1 << uint(j)
		}
	}
	return k
}

// Assign implements Policy. The assignment returned for a missing
// state is shared and must not be modified.
func (r *Regimen) Assign(st *State) Assignment {
	if a, ok := r.F[Key(st.Unfinished)]; ok {
		return a
	}
	r.idleOnce.Do(func() { r.idle = NewIdle(r.M) })
	return r.idle
}

// Memoizable marks the regimen stationary: its assignment is keyed on
// the unfinished mask alone, which is Definition 2.2 verbatim. Callers
// must not mutate F while simulations run.
func (r *Regimen) Memoizable() {}

// MassPerJob returns, for each job, the total (uncapped) mass
// accumulated over the prefix of the oblivious schedule: Σ_t p[i][j]
// over assignments f_t(i) = j. This is the quantity the constructions
// of Sections 3 and 4 certify lower bounds on.
func MassPerJob(in *model.Instance, steps []Assignment) []float64 {
	mass := make([]float64, in.N)
	for _, a := range steps {
		for i, j := range a {
			if j != Idle {
				mass[j] += in.P[i][j]
			}
		}
	}
	return mass
}

// MassBySteps returns the running per-job mass after each step:
// out[t][j] is j's mass accumulated in steps 0..t.
func MassBySteps(in *model.Instance, steps []Assignment) [][]float64 {
	out := make([][]float64, len(steps))
	cur := make([]float64, in.N)
	for t, a := range steps {
		for i, j := range a {
			if j != Idle {
				cur[j] += in.P[i][j]
			}
		}
		row := make([]float64, in.N)
		copy(row, cur)
		out[t] = row
	}
	return out
}

// CheckMassWindows verifies condition (ii) of AccuMass-C on an
// oblivious prefix: whenever j1 ≺ j2 (direct precedence edge), no
// machine may be assigned to j2 at a step before j1 has accumulated
// mass >= target. Returns the first violation found.
func CheckMassWindows(in *model.Instance, steps []Assignment, target float64) error {
	running := make([]float64, in.N)
	reachedAt := make([]int, in.N)
	for j := range reachedAt {
		reachedAt[j] = -1
	}
	firstAssigned := make([]int, in.N)
	for j := range firstAssigned {
		firstAssigned[j] = -1
	}
	for t, a := range steps {
		for i, j := range a {
			if j == Idle {
				continue
			}
			if firstAssigned[j] == -1 {
				firstAssigned[j] = t
			}
			running[j] += in.P[i][j]
			if running[j] >= target-1e-9 && reachedAt[j] == -1 {
				reachedAt[j] = t
			}
		}
	}
	for j2 := 0; j2 < in.N; j2++ {
		if firstAssigned[j2] == -1 {
			continue
		}
		for _, j1 := range in.Prec.Preds(j2) {
			if reachedAt[j1] == -1 || reachedAt[j1] >= firstAssigned[j2] {
				return fmt.Errorf("sched: job %d assigned at step %d before predecessor %d reached mass %.3f",
					j2, firstAssigned[j2], j1, target)
			}
		}
	}
	return nil
}
