package sched

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGantt(t *testing.T) {
	o := &Oblivious{M: 2, Steps: []Assignment{{0, Idle}, {1, 0}, {Idle, Idle}}}
	g := o.Gantt(0)
	if !strings.Contains(g, "m0") || !strings.Contains(g, "m1") {
		t.Fatalf("missing machine rows:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[1], ".") {
		t.Errorf("row m0 wrong: %q", lines[1])
	}
	// Truncation.
	g2 := o.Gantt(1)
	if !strings.Contains(g2, "t=0..0 (of 3)") {
		t.Errorf("truncated header wrong: %q", g2)
	}
}

func TestObliviousJSONRoundTrip(t *testing.T) {
	o := &Oblivious{
		M:     2,
		Steps: []Assignment{{0, 1}, {Idle, 0}},
		Tail:  &TopoRoundRobin{M: 2, Order: []int{1, 0}},
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	back := &Oblivious{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.M != 2 || back.Len() != 2 {
		t.Fatalf("shape lost: %+v", back)
	}
	if back.Steps[1][0] != Idle || back.Steps[0][1] != 1 {
		t.Error("assignments lost")
	}
	rr, ok := back.Tail.(*TopoRoundRobin)
	if !ok || len(rr.Order) != 2 || rr.Order[0] != 1 {
		t.Error("tail lost")
	}
	// Execution equivalence across the boundary.
	for _, tt := range []int{0, 1, 2, 3, 7} {
		a1, a2 := o.At(tt), back.At(tt)
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("At(%d) differs", tt)
			}
		}
	}
}

func TestObliviousJSONRejectsBad(t *testing.T) {
	for name, raw := range map[string]string{
		"machines":  `{"machines":0,"steps":[]}`,
		"row-width": `{"machines":2,"steps":[[0]]}`,
		"not-json":  `{`,
	} {
		o := &Oblivious{}
		if err := json.Unmarshal([]byte(raw), o); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
