package sched

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Gantt renders the first maxSteps steps of the oblivious prefix as a
// machine×time text chart: one row per machine, one column per step,
// each cell the job index (or '.' for idle). Useful for inspecting
// window structure, delays and replication; the projectmgmt example
// prints one as the manager's calendar.
func (o *Oblivious) Gantt(maxSteps int) string {
	steps := len(o.Steps)
	if maxSteps > 0 && maxSteps < steps {
		steps = maxSteps
	}
	width := 1
	for _, a := range o.Steps[:steps] {
		for _, j := range a {
			if l := len(fmt.Sprint(j)); j != Idle && l > width {
				width = l
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=0..%d (of %d)\n", steps-1, len(o.Steps))
	for i := 0; i < o.M; i++ {
		fmt.Fprintf(&b, "m%-2d |", i)
		for t := 0; t < steps; t++ {
			j := o.Steps[t][i]
			if j == Idle {
				fmt.Fprintf(&b, " %*s", width, ".")
			} else {
				fmt.Fprintf(&b, " %*d", width, j)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// obliviousJSON is the portable representation of an oblivious prefix.
// The tail, when present, is always the topological round-robin and is
// stored as its job order.
type obliviousJSON struct {
	Machines  int     `json:"machines"`
	Steps     [][]int `json:"steps"` // -1 encodes Idle
	TailOrder []int   `json:"tail_order,omitempty"`
}

// MarshalJSON implements json.Marshaler. Only TopoRoundRobin tails are
// representable; other tails are dropped with the prefix preserved.
func (o *Oblivious) MarshalJSON() ([]byte, error) {
	out := obliviousJSON{Machines: o.M}
	for _, a := range o.Steps {
		out.Steps = append(out.Steps, append([]int(nil), a...))
	}
	if rr, ok := o.Tail.(*TopoRoundRobin); ok {
		out.TailOrder = rr.Order
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *Oblivious) UnmarshalJSON(data []byte) error {
	var raw obliviousJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Machines <= 0 {
		return fmt.Errorf("sched: bad machine count %d", raw.Machines)
	}
	o.M = raw.Machines
	o.Steps = nil
	for t, a := range raw.Steps {
		if len(a) != raw.Machines {
			return fmt.Errorf("sched: step %d has %d entries, want %d", t, len(a), raw.Machines)
		}
		o.Steps = append(o.Steps, Assignment(append([]int(nil), a...)))
	}
	o.Tail = nil
	if len(raw.TailOrder) > 0 {
		o.Tail = &TopoRoundRobin{M: raw.Machines, Order: raw.TailOrder}
	}
	return nil
}
