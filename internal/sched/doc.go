// Package sched defines the schedule representations of Lin &
// Rajaraman (SPAA 2007) and the transformations between them:
//
//   - Assignment — one step's machine→job map;
//   - Policy — the general (possibly adaptive) schedule abstraction;
//   - Regimen — a stationary policy f_S depending only on the
//     unfinished set (Definition 2.2);
//   - Oblivious — a time-indexed schedule independent of the unfinished
//     set (Definition 2.3), as a finite prefix plus an infinite tail;
//   - Pseudo — a pseudo-schedule (Definition 4.1): per-chain schedules
//     whose union may assign a machine to several jobs per step;
//   - transformations: random delays, flattening, replication,
//     concatenation (Section 4.1's conversion pipeline);
//   - mass accounting (Definition 2.4) and feasibility validation.
package sched
