package sched

import (
	"testing"

	"suu/internal/model"
)

func TestCompactRemovesIdleOnly(t *testing.T) {
	in := model.New(2, 2)
	in.P[0][0], in.P[1][1] = 0.5, 0.5
	o := &Oblivious{M: 2, Steps: []Assignment{
		{Idle, Idle},
		{0, Idle},
		{Idle, Idle},
		{Idle, 1},
	}}
	c := o.Compact()
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	m1 := MassPerJob(in, o.Steps)
	m2 := MassPerJob(in, c.Steps)
	for j := range m1 {
		if m1[j] != m2[j] {
			t.Errorf("mass changed for job %d", j)
		}
	}
	// Precedence window order is preserved: job 0's last assignment
	// still precedes job 1's first.
	if err := CheckMassWindows(in, c.Steps, 0.5); err != nil {
		t.Error(err)
	}
}

func TestCompactAllIdleKeepsOneStep(t *testing.T) {
	o := &Oblivious{M: 1, Steps: []Assignment{{Idle}, {Idle}}}
	if c := o.Compact(); c.Len() != 1 {
		t.Errorf("len=%d, want 1", c.Len())
	}
	if c := (&Oblivious{M: 1}).Compact(); c.Len() != 0 {
		t.Errorf("empty prefix should stay empty")
	}
}
