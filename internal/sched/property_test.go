package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"suu/internal/model"
)

func randomObl(rng *rand.Rand, n, m, steps int) *Oblivious {
	o := &Oblivious{M: m}
	for t := 0; t < steps; t++ {
		a := NewIdle(m)
		for i := range a {
			if rng.Intn(3) > 0 {
				a[i] = rng.Intn(n)
			}
		}
		o.Steps = append(o.Steps, a)
	}
	return o
}

// Property: replication multiplies per-job mass by σ exactly.
func TestReplicateMassLinear(t *testing.T) {
	prop := func(seed int64, sRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(5), 1+rng.Intn(4)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = rng.Float64()
			}
		}
		o := randomObl(rng, n, m, 1+rng.Intn(8))
		sigma := 1 + int(sRaw)%5
		base := MassPerJob(in, o.Steps)
		repl := MassPerJob(in, o.Replicate(sigma).Steps)
		for j := range base {
			if diff := repl[j] - float64(sigma)*base[j]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Concat preserves per-job mass additively and At() agrees
// with the parts.
func TestConcatProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(4), 1+rng.Intn(3)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = rng.Float64()
			}
		}
		a := randomObl(rng, n, m, 1+rng.Intn(5))
		b := randomObl(rng, n, m, 1+rng.Intn(5))
		c := Concat(a, b)
		if c.Len() != a.Len()+b.Len() {
			return false
		}
		ma := MassPerJob(in, a.Steps)
		mb := MassPerJob(in, b.Steps)
		mc := MassPerJob(in, c.Steps)
		for j := range mc {
			if diff := mc[j] - ma[j] - mb[j]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		for t := 0; t < a.Len(); t++ {
			for i := 0; i < m; i++ {
				if c.At(t)[i] != a.At(t)[i] {
					return false
				}
			}
		}
		for t := 0; t < b.Len(); t++ {
			for i := 0; i < m; i++ {
				if c.At(a.Len() + t)[i] != b.Steps[t][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: delays never change total load or per-job mass; they can
// only move congestion around; flatten preserves assignment multiset.
func TestDelayFlattenInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(4), 1+rng.Intn(3)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = rng.Float64()
			}
		}
		p := &Pseudo{M: m}
		tracks := 1 + rng.Intn(4)
		for k := 0; k < tracks; k++ {
			tr := ChainTrack{}
			for t := 0; t < 1+rng.Intn(5); t++ {
				a := NewIdle(m)
				for i := range a {
					if rng.Intn(2) == 0 {
						a[i] = rng.Intn(n)
					}
				}
				tr.Steps = append(tr.Steps, a)
			}
			p.Tracks = append(p.Tracks, tr)
		}
		delays := make([]int, tracks)
		for k := range delays {
			delays[k] = rng.Intn(6)
		}
		d := p.WithDelays(delays)
		m1 := MassPerJobPseudo(p, in.P, n)
		m2 := MassPerJobPseudo(d, in.P, n)
		for j := range m1 {
			if diff := m1[j] - m2[j]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		if loadSum(p) != loadSum(d) {
			return false
		}
		flat := d.Flatten()
		m3 := MassPerJob(in, flat.Steps)
		for j := range m1 {
			if diff := m1[j] - m3[j]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		// Flatten output never double-books a machine (by type), and its
		// length is at most Len·MaxCongestion and at least Len.
		if flat.Len() < d.Len() || flat.Len() > d.Len()*max1(d.MaxCongestion()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func loadSum(p *Pseudo) int {
	s := 0
	for _, l := range p.Load() {
		s += l
	}
	return s
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// Property: BestDelays never returns congestion worse than zero-delay.
func TestBestDelaysNeverWorse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		p := &Pseudo{M: m}
		for k := 0; k < 1+rng.Intn(5); k++ {
			tr := ChainTrack{}
			for t := 0; t < 1+rng.Intn(4); t++ {
				a := NewIdle(m)
				for i := range a {
					if rng.Intn(2) == 0 {
						a[i] = 0
					}
				}
				tr.Steps = append(tr.Steps, a)
			}
			p.Tracks = append(p.Tracks, tr)
		}
		zero := p.MaxCongestion()
		_, cong := p.BestDelays(4, 16, rng)
		return cong <= zero
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
