package model

import (
	"errors"
	"fmt"

	"suu/internal/dag"
)

// Instance is a complete SUU problem instance.
//
// The zero value is not usable; construct instances with New and add
// precedence edges through the embedded dag, or use the workload
// package generators.
//
// The probability matrix is stored row-major in one contiguous
// allocation; the P rows are views into it, so P[i][j] reads and
// writes stay valid while the simulation hot path iterates the flat
// backing with unit stride (see Flat).
type Instance struct {
	// N is the number of jobs, indexed 0..N-1.
	N int
	// M is the number of machines, indexed 0..M-1.
	M int
	// P[i][j] is the per-step success probability of machine i on job j.
	// Rows alias the contiguous backing slice; assign entries freely but
	// prefer SetAt/At when writing new code.
	P [][]float64
	// Prec is the precedence dag over jobs. An edge u->v means u must
	// complete before v becomes eligible.
	Prec *dag.DAG

	// flat is the row-major backing of P: flat[i*N+j] == P[i][j].
	flat []float64
}

// New returns an instance with n jobs, m machines, a zero probability
// matrix and an empty precedence dag.
func New(n, m int) *Instance {
	in := &Instance{N: n, M: m, Prec: dag.New(n)}
	in.bindFlat(make([]float64, m*n))
	return in
}

// bindFlat installs flat as the backing store and re-slices the P rows
// as views into it.
func (in *Instance) bindFlat(flat []float64) {
	in.flat = flat
	in.P = make([][]float64, in.M)
	for i := 0; i < in.M; i++ {
		in.P[i] = flat[i*in.N : (i+1)*in.N : (i+1)*in.N]
	}
}

// aliased reports whether the P rows still view the flat backing (a
// caller may have reassigned P wholesale).
func (in *Instance) aliased() bool {
	if in.N <= 0 || in.M <= 0 || len(in.flat) != in.M*in.N || len(in.P) != in.M {
		return false
	}
	for i := range in.P {
		if len(in.P[i]) != in.N || &in.P[i][0] != &in.flat[i*in.N] {
			return false
		}
	}
	return true
}

// Flat returns the row-major probability matrix: Flat()[i*N+j] ==
// P[i][j]. The slice aliases the instance; treat it as read-only. If
// the P rows were replaced wholesale (e.g. a hand-built literal), the
// backing is rebuilt from the current values first.
func (in *Instance) Flat() []float64 {
	if !in.aliased() {
		flat := make([]float64, in.M*in.N)
		for i := 0; i < in.M; i++ {
			copy(flat[i*in.N:(i+1)*in.N], in.P[i])
		}
		in.bindFlat(flat)
	}
	return in.flat
}

// At returns P[i][j].
func (in *Instance) At(i, j int) float64 { return in.P[i][j] }

// SetAt sets P[i][j] = p.
func (in *Instance) SetAt(i, j int, p float64) { in.P[i][j] = p }

// Row returns machine i's probability row (a view; do not resize).
func (in *Instance) Row(i int) []float64 { return in.P[i] }

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := New(in.N, in.M)
	for i := range in.P {
		copy(out.P[i], in.P[i])
	}
	out.Prec = in.Prec.Clone()
	return out
}

// Validate checks the structural invariants the algorithms rely on:
// positive dimensions, probabilities in [0,1], at least one machine
// with positive success probability for every job (the paper's
// standing assumption, needed for finite expected makespan), and an
// acyclic precedence graph over exactly the N jobs.
func (in *Instance) Validate() error {
	if in.N <= 0 {
		return errors.New("model: instance must have at least one job")
	}
	if in.M <= 0 {
		return errors.New("model: instance must have at least one machine")
	}
	if len(in.P) != in.M {
		return fmt.Errorf("model: P has %d rows, want M=%d", len(in.P), in.M)
	}
	for i, row := range in.P {
		if len(row) != in.N {
			return fmt.Errorf("model: P[%d] has %d columns, want N=%d", i, len(row), in.N)
		}
		for j, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("model: P[%d][%d]=%v out of [0,1]", i, j, p)
			}
		}
	}
	for j := 0; j < in.N; j++ {
		ok := false
		for i := 0; i < in.M; i++ {
			if in.P[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("model: job %d has no machine with positive success probability", j)
		}
	}
	if in.Prec == nil {
		return errors.New("model: nil precedence dag")
	}
	if in.Prec.N() != in.N {
		return fmt.Errorf("model: dag has %d vertices, want N=%d", in.Prec.N(), in.N)
	}
	if !in.Prec.IsAcyclic() {
		return errors.New("model: precedence graph contains a cycle")
	}
	return nil
}

// SuccessProb returns the single-step completion probability of job j
// when the machine set ms is assigned to it: 1 - Π(1 - P[i][j]).
func (in *Instance) SuccessProb(j int, ms []int) float64 {
	q := 1.0
	for _, i := range ms {
		q *= 1 - in.P[i][j]
	}
	return 1 - q
}

// Mass returns the linearized success measure Σ_i P[i][j] over the
// machine set ms, capped at 1 (Definition 2.4 of the paper).
func (in *Instance) Mass(j int, ms []int) float64 {
	s := 0.0
	for _, i := range ms {
		s += in.P[i][j]
	}
	if s > 1 {
		return 1
	}
	return s
}

// PMin returns the smallest strictly positive entry of P. It is used
// for the T_OPT = O(n/pmin · log n) upper bound that seeds the
// doubling search in SUU-I-OBL. Returns 0 when the matrix is all zero.
func (in *Instance) PMin() float64 {
	min := 0.0
	for i := range in.P {
		for _, p := range in.P[i] {
			if p > 0 && (min == 0 || p < min) {
				min = p
			}
		}
	}
	return min
}

// MaxMassPerStep returns, for job j, the largest mass obtainable in a
// single step by assigning every machine to j (capped at 1).
func (in *Instance) MaxMassPerStep(j int) float64 {
	s := 0.0
	for i := 0; i < in.M; i++ {
		s += in.P[i][j]
	}
	if s > 1 {
		return 1
	}
	return s
}
