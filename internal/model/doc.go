// Package model defines the SUU problem instance shared by all other
// packages: n unit-time jobs, m machines, a success-probability matrix
// P and a precedence dag over the jobs.
//
// The instance corresponds to the input of the SUU problem of Lin &
// Rajaraman (SPAA 2007): P[i][j] is the probability that machine i
// completes job j when assigned to it for one time step, independently
// of every other (machine, job, step) outcome.
//
// Invariants other packages rely on: the probability matrix is backed
// by one contiguous flat slice (P's rows alias it), so engines may
// take the flat view for cache-friendly scans; instances marshal to
// the documented JSON shape {jobs, machines, p, edges} shared by the
// cmd tools and the serve API, and unmarshalling re-validates
// dimensions and rebuilds the dag from the edge list.
package model
