package model

import (
	"encoding/json"
	"testing"
)

// FuzzInstanceJSON ensures arbitrary bytes never panic the decoder and
// that everything it accepts validates.
func FuzzInstanceJSON(f *testing.F) {
	f.Add([]byte(`{"jobs":2,"machines":1,"p":[[0.5,0.5]],"edges":[[0,1]]}`))
	f.Add([]byte(`{"jobs":1,"machines":1,"p":[[1]],"edges":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"jobs":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := &Instance{}
		if err := json.Unmarshal(data, in); err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v", err)
		}
	})
}
