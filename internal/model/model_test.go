package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndValidate(t *testing.T) {
	in := New(3, 2)
	if err := in.Validate(); err == nil {
		t.Error("all-zero P accepted (jobs must have a capable machine)")
	}
	for j := 0; j < 3; j++ {
		in.P[0][j] = 0.5
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateRejectsBadProbability(t *testing.T) {
	in := New(1, 1)
	in.P[0][0] = 1.5
	if err := in.Validate(); err == nil {
		t.Error("p>1 accepted")
	}
	in.P[0][0] = -0.1
	if err := in.Validate(); err == nil {
		t.Error("p<0 accepted")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	in := New(2, 1)
	in.P[0][0], in.P[0][1] = 0.5, 0.5
	in.Prec.MustEdge(0, 1)
	in.Prec.MustEdge(1, 0)
	if err := in.Validate(); err == nil {
		t.Error("cyclic precedence accepted")
	}
}

func TestValidateDimensionMismatch(t *testing.T) {
	in := New(2, 2)
	in.P[0][0], in.P[0][1], in.P[1][0], in.P[1][1] = 0.1, 0.1, 0.1, 0.1
	in.P = in.P[:1]
	if err := in.Validate(); err == nil {
		t.Error("row count mismatch accepted")
	}
}

func TestSuccessProbAndMass(t *testing.T) {
	in := New(1, 3)
	in.P[0][0], in.P[1][0], in.P[2][0] = 0.5, 0.5, 0.2
	got := in.SuccessProb(0, []int{0, 1})
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("SuccessProb=%v, want 0.75", got)
	}
	if m := in.Mass(0, []int{0, 1, 2}); m != 1 {
		t.Errorf("Mass=%v, want capped 1", m)
	}
	if m := in.Mass(0, []int{2}); math.Abs(m-0.2) > 1e-12 {
		t.Errorf("Mass=%v, want 0.2", m)
	}
}

// Property (Proposition 2.1): mass bounds the success probability above,
// and when the raw sum is <= 1, success >= mass/e.
func TestProposition21(t *testing.T) {
	prop := func(raw []float64) bool {
		var ps []float64
		sum := 0.0
		for _, v := range raw {
			p := math.Abs(v)
			p -= math.Floor(p) // fold into [0,1)
			ps = append(ps, p)
			sum += p
			if len(ps) == 6 {
				break
			}
		}
		if len(ps) == 0 {
			return true
		}
		in := New(1, len(ps))
		for i, p := range ps {
			in.P[i][0] = p
		}
		ms := make([]int, len(ps))
		for i := range ms {
			ms[i] = i
		}
		succ := in.SuccessProb(0, ms)
		mass := in.Mass(0, ms)
		if succ > mass+1e-12 {
			return false
		}
		if sum <= 1 && succ < mass/math.E-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPMin(t *testing.T) {
	in := New(2, 2)
	in.P[0][0] = 0.3
	in.P[1][1] = 0.1
	if pm := in.PMin(); pm != 0.1 {
		t.Errorf("PMin=%v, want 0.1", pm)
	}
	if pm := New(1, 1).PMin(); pm != 0 {
		t.Errorf("PMin of zero matrix = %v, want 0", pm)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := New(2, 1)
	in.P[0][0], in.P[0][1] = 0.5, 0.5
	c := in.Clone()
	c.P[0][0] = 0.9
	c.Prec.MustEdge(0, 1)
	if in.P[0][0] != 0.5 || in.Prec.E() != 0 {
		t.Error("Clone shares storage")
	}
}

func TestMaxMassPerStep(t *testing.T) {
	in := New(1, 3)
	in.P[0][0], in.P[1][0], in.P[2][0] = 0.6, 0.6, 0.6
	if m := in.MaxMassPerStep(0); m != 1 {
		t.Errorf("capped mass=%v", m)
	}
	in2 := New(1, 2)
	in2.P[0][0], in2.P[1][0] = 0.2, 0.3
	if m := in2.MaxMassPerStep(0); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mass=%v, want 0.5", m)
	}
}
