package model

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := New(3, 2)
	in.P[0][0], in.P[0][1], in.P[0][2] = 0.5, 0.25, 0.125
	in.P[1][0], in.P[1][1], in.P[1][2] = 0.1, 0.2, 0.3
	in.Prec.MustEdge(0, 1)
	in.Prec.MustEdge(1, 2)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := &Instance{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	if out.N != 3 || out.M != 2 {
		t.Fatalf("dims %dx%d", out.M, out.N)
	}
	for i := range in.P {
		for j := range in.P[i] {
			if out.P[i][j] != in.P[i][j] {
				t.Errorf("P[%d][%d] mismatch", i, j)
			}
		}
	}
	if out.Prec.E() != 2 || out.Prec.Succs(0)[0] != 1 {
		t.Error("edges lost")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"cycle":        `{"jobs":2,"machines":1,"p":[[0.5,0.5]],"edges":[[0,1],[1,0]]}`,
		"bad-dims":     `{"jobs":0,"machines":1,"p":[],"edges":[]}`,
		"row-mismatch": `{"jobs":2,"machines":2,"p":[[0.5,0.5]],"edges":[]}`,
		"bad-prob":     `{"jobs":1,"machines":1,"p":[[1.5]],"edges":[]}`,
		"zero-job":     `{"jobs":2,"machines":1,"p":[[0.5,0.0]],"edges":[]}`,
		"bad-edge":     `{"jobs":2,"machines":1,"p":[[0.5,0.5]],"edges":[[0,9]]}`,
		"not-json":     `{`,
	}
	for name, raw := range cases {
		out := &Instance{}
		if err := json.Unmarshal([]byte(raw), out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
