package model

import (
	"encoding/json"
	"fmt"

	"suu/internal/dag"
)

// instanceJSON is the on-disk representation used by the cmd tools.
type instanceJSON struct {
	Jobs     int         `json:"jobs"`
	Machines int         `json:"machines"`
	P        [][]float64 `json:"p"`     // [machine][job]
	Edges    [][2]int    `json:"edges"` // precedence (before, after)
}

// MarshalJSON implements json.Marshaler.
func (in *Instance) MarshalJSON() ([]byte, error) {
	var edges [][2]int
	for u := 0; u < in.N; u++ {
		for _, v := range in.Prec.Succs(u) {
			edges = append(edges, [2]int{u, v})
		}
	}
	return json.Marshal(instanceJSON{
		Jobs:     in.N,
		Machines: in.M,
		P:        in.P,
		Edges:    edges,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var raw instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Jobs <= 0 || raw.Machines <= 0 {
		return fmt.Errorf("model: bad dimensions %dx%d", raw.Machines, raw.Jobs)
	}
	if len(raw.P) != raw.Machines {
		return fmt.Errorf("model: p has %d rows, want %d", len(raw.P), raw.Machines)
	}
	in.N = raw.Jobs
	in.M = raw.Machines
	// Copy into the contiguous backing rather than adopting raw.P, so
	// the flat fast path stays aliased.
	flat := make([]float64, raw.Machines*raw.Jobs)
	for i, row := range raw.P {
		if len(row) != raw.Jobs {
			return fmt.Errorf("model: p[%d] has %d columns, want %d", i, len(row), raw.Jobs)
		}
		copy(flat[i*raw.Jobs:(i+1)*raw.Jobs], row)
	}
	in.bindFlat(flat)
	in.Prec = dag.New(raw.Jobs)
	for _, e := range raw.Edges {
		if err := in.Prec.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	return in.Validate()
}
