package opt

import (
	"math"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
)

func TestExactObliviousSingleJobGeometric(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	o := &sched.Oblivious{M: 1, Steps: []sched.Assignment{{0}}} // cycles
	v, residual, err := ExactOblivious(in, o, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Fatalf("residual %v", residual)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("E=%v, want 2", v)
	}
}

func TestExactObliviousMatchesExactRegimenOnStationary(t *testing.T) {
	// For a stationary assignment, ExactOblivious must agree with
	// ExactRegimen.
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.6, 0.1
	in.P[1][0], in.P[1][1] = 0.2, 0.7
	a := sched.Assignment{0, 1}
	o := &sched.Oblivious{M: 2, Steps: []sched.Assignment{a}}
	reg := sched.NewRegimen(2, 2)
	for s := uint64(1); s < 4; s++ {
		reg.F[s] = a
	}
	want, err := ExactRegimen(in, reg)
	if err != nil {
		t.Fatal(err)
	}
	got, residual, err := ExactOblivious(in, o, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Fatalf("residual %v", residual)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("oblivious exact %v != regimen exact %v", got, want)
	}
}

func TestExactObliviousAgainstMonteCarlo(t *testing.T) {
	in := model.New(3, 2)
	in.P[0][0], in.P[0][1], in.P[0][2] = 0.5, 0.3, 0.2
	in.P[1][0], in.P[1][1], in.P[1][2] = 0.1, 0.6, 0.4
	in.Prec.MustEdge(0, 2)
	o := &sched.Oblivious{
		M:     2,
		Steps: []sched.Assignment{{0, 1}, {0, 2}, {2, 2}},
		Tail:  &sched.TopoRoundRobin{M: 2, Order: []int{0, 1, 2}},
	}
	exact, residual, err := ExactOblivious(in, o, 5000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Fatalf("residual %v", residual)
	}
	sum, incomplete := sim.Estimate(in, o, 8000, 100000, 3)
	if incomplete != 0 {
		t.Fatal("incomplete runs")
	}
	if math.Abs(sum.Mean-exact) > 4*sum.HalfWidth95+0.05 {
		t.Errorf("Monte Carlo %v vs exact %v (hw %v)", sum.Mean, exact, sum.HalfWidth95)
	}
}

func TestExactObliviousHorizonResidual(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	o := &sched.Oblivious{M: 1, Steps: []sched.Assignment{{0}}}
	v, residual, err := ExactOblivious(in, o, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(residual-0.5) > 1e-12 {
		t.Errorf("residual=%v, want 0.5", residual)
	}
	// Expected = 0.5·1 (finishing at step 1) + 0.5·1 (horizon floor).
	if math.Abs(v-1) > 1e-12 {
		t.Errorf("v=%v, want 1", v)
	}
}

func TestExactObliviousTooLarge(t *testing.T) {
	in := model.New(MaxJobs+1, 1)
	for j := range in.P[0] {
		in.P[0][j] = 0.5
	}
	o := &sched.Oblivious{M: 1, Steps: []sched.Assignment{{0}}}
	if _, _, err := ExactOblivious(in, o, 10, 0); err != ErrTooLarge {
		t.Errorf("err=%v", err)
	}
}
