package opt

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

func TestTransitionsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = rng.Float64()
			}
		}
		if rng.Intn(2) == 0 && n >= 2 {
			in.Prec.MustEdge(0, 1)
		}
		s := uint64(1)<<uint(n) - 1
		a := make(sched.Assignment, m)
		for i := range a {
			a[i] = rng.Intn(n)
		}
		total := 0.0
		for _, tr := range Transitions(in, s, a) {
			if tr.Prob < 0 {
				t.Fatalf("negative probability")
			}
			if tr.Next&^s != 0 {
				t.Fatalf("transition adds jobs: %b -> %b", s, tr.Next)
			}
			total += tr.Prob
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: transition probabilities sum to %v", trial, total)
		}
	}
}

func TestTransitionsRespectEligibility(t *testing.T) {
	// Assigning the machine to an ineligible job must be a no-op.
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 0.5, 0.5
	in.Prec.MustEdge(0, 1)
	trs := Transitions(in, 0b11, sched.Assignment{1})
	if len(trs) != 1 || trs[0].Next != 0b11 || trs[0].Prob != 1 {
		t.Errorf("ineligible assignment produced transitions %v", trs)
	}
}

// Adding a machine can never increase the optimal expected makespan.
func TestOptimalMonotoneInMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		in := model.New(n, 1)
		for j := 0; j < n; j++ {
			in.P[0][j] = 0.2 + 0.7*rng.Float64()
		}
		_, v1, err := OptimalRegimen(in)
		if err != nil {
			t.Fatal(err)
		}
		in2 := model.New(n, 2)
		for j := 0; j < n; j++ {
			in2.P[0][j] = in.P[0][j]
			in2.P[1][j] = 0.1 + 0.8*rng.Float64()
		}
		_, v2, err := OptimalRegimen(in2)
		if err != nil {
			t.Fatal(err)
		}
		if v2 > v1+1e-9 {
			t.Errorf("trial %d: extra machine worsened OPT: %v -> %v", trial, v1, v2)
		}
	}
}

// Raising a probability can never increase the optimal value.
func TestOptimalMonotoneInProbabilities(t *testing.T) {
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.3, 0.4
	in.P[1][0], in.P[1][1] = 0.5, 0.2
	_, v1, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	in.P[0][0] = 0.9
	_, v2, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	if v2 > v1+1e-9 {
		t.Errorf("probability increase worsened OPT: %v -> %v", v1, v2)
	}
}

func TestStateCountChainVsIndependent(t *testing.T) {
	// A chain of n jobs has n+1 closed states; independent jobs have 2^n.
	n := 5
	chain := model.New(n, 1)
	indep := model.New(n, 1)
	for j := 0; j < n; j++ {
		chain.P[0][j] = 1
		indep.P[0][j] = 1
		if j > 0 {
			chain.Prec.MustEdge(j-1, j)
		}
	}
	c1, err := StateCount(chain)
	if err != nil || c1 != n+1 {
		t.Errorf("chain states=%d err=%v, want %d", c1, err, n+1)
	}
	c2, err := StateCount(indep)
	if err != nil || c2 != 1<<n {
		t.Errorf("independent states=%d err=%v, want %d", c2, err, 1<<n)
	}
}

// The optimal regimen of a two-job symmetric instance should gang both
// machines when only one job remains.
func TestOptimalGangsOnLastJob(t *testing.T) {
	in := model.New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			in.P[i][j] = 0.3
		}
	}
	reg, _, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint64{0b01, 0b10} {
		a := reg.F[s]
		job := 0
		if s == 0b10 {
			job = 1
		}
		for i, got := range a {
			if got != job {
				t.Errorf("state %b machine %d assigned %d, want %d", s, i, got, job)
			}
		}
	}
}

func TestExactObliviousCyclePrefixEqualsTailFormula(t *testing.T) {
	// Cycled 2-step prefix on one job with p1=0.5, p2=0 (idle): the job
	// only progresses on even steps → E = 2·E[geometric(1/2)] - 1 = 3.
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	o := &sched.Oblivious{M: 1, Steps: []sched.Assignment{{0}, {sched.Idle}}}
	v, residual, err := ExactOblivious(in, o, 2000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Fatal("residual too large")
	}
	// Completion can only happen at steps 1,3,5,... with prob 1/2 each
	// attempt: E = Σ k·(1/2)^k over odd steps = 2·2-1 = 3.
	if math.Abs(v-3) > 1e-6 {
		t.Errorf("E=%v, want 3", v)
	}
}
