package opt

import (
	"errors"
	"math"
	"math/bits"

	"suu/internal/model"
	"suu/internal/sched"
)

// Limits guard the exponential enumeration.
const (
	// MaxJobs bounds n for the exhaustive oracle (2^n scanned states).
	// The value iteration behind OptimalRegimen is bounded by MaxStates
	// (closed states actually generated) instead.
	MaxJobs = 16
	// MaxAssignmentsPerState bounds k^m when searching the optimal
	// assignment of one state.
	MaxAssignmentsPerState = 1 << 22
)

// ErrTooLarge is returned when an instance exceeds the exact-solver
// limits. The value-iteration paths return a *TooLargeError wrapping
// it that names the instance size and the limit hit; match with
// errors.Is.
var ErrTooLarge = errors.New("opt: instance too large for exact computation")

// closedStates enumerates all reachable unfinished-set masks: S is
// closed iff for every j ∉ S, all predecessors of j are also ∉ S —
// equivalently, j ∈ S implies every successor of j is in S.
func closedStates(in *model.Instance) []uint64 {
	n := in.N
	var states []uint64
	for s := uint64(0); s < 1<<uint(n); s++ {
		ok := true
		for j := 0; j < n && ok; j++ {
			if s&(1<<uint(j)) == 0 {
				continue
			}
			for _, succ := range in.Prec.Succs(j) {
				if s&(1<<uint(succ)) == 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			states = append(states, s)
		}
	}
	return states
}

// eligibleOf returns the eligible jobs of state s: unfinished jobs all
// of whose predecessors are finished.
func eligibleOf(in *model.Instance, s uint64) []int {
	var el []int
	for j := 0; j < in.N; j++ {
		if s&(1<<uint(j)) == 0 {
			continue
		}
		ok := true
		for _, p := range in.Prec.Preds(j) {
			if s&(1<<uint(p)) != 0 {
				ok = false
				break
			}
		}
		if ok {
			el = append(el, j)
		}
	}
	return el
}

// stateValue computes E[S] for one state given the per-eligible-job
// success probabilities q and the values of all strictly smaller
// states in E. Returns +Inf when no progress is possible.
func stateValue(s uint64, el []int, q []float64, value map[uint64]float64) float64 {
	k := len(el)
	// Enumerate subsets T of eligible jobs; accumulate P(T)·E[S\T].
	// P(∅) handled separately for the closed form.
	pNone := 1.0
	for _, qj := range q {
		pNone *= 1 - qj
	}
	if pNone >= 1-1e-15 {
		return math.Inf(1)
	}
	sum := 0.0
	for t := 1; t < 1<<uint(k); t++ {
		pT := 1.0
		mask := uint64(0)
		for b := 0; b < k; b++ {
			if t&(1<<uint(b)) != 0 {
				pT *= q[b]
				mask |= 1 << uint(el[b])
			} else {
				pT *= 1 - q[b]
			}
		}
		if pT == 0 {
			continue
		}
		sum += pT * value[s&^mask]
	}
	return (1 + sum) / (1 - pNone)
}

// successProbs computes, for assignment a, the completion probability
// of each eligible job el[b] (machines assigned to ineligible jobs are
// treated as idle, matching the executor).
func successProbs(in *model.Instance, a sched.Assignment, el []int) []float64 {
	pos := make(map[int]int, len(el))
	for b, j := range el {
		pos[j] = b
	}
	fail := make([]float64, len(el))
	for b := range fail {
		fail[b] = 1
	}
	for i, j := range a {
		if j == sched.Idle {
			continue
		}
		if b, ok := pos[j]; ok {
			fail[b] *= 1 - in.P[i][j]
		}
	}
	q := make([]float64, len(el))
	for b := range q {
		q[b] = 1 - fail[b]
	}
	return q
}

// ExactRegimen computes the exact expected makespan of regimen r from
// the all-unfinished start state. Returns +Inf if some reachable state
// makes no progress under r. States come from down-set generation, so
// the reach matches OptimalRegimen (MaxStates closed states), not the
// oracle's MaxJobs bound.
func ExactRegimen(in *model.Instance, r *sched.Regimen) (float64, error) {
	sp, err := enumerateClosed(in, in.M)
	if err != nil {
		return 0, err
	}
	ns := len(sp.masks)
	value := make([]float64, ns)
	unfinished := make([]bool, in.N)
	state := &sched.State{Unfinished: unfinished}
	pos := make([]int32, in.N) // job → eligible slot of the current state
	fail := make([]float64, sp.maxK)
	slotBit := make([]uint64, sp.maxK)
	trial := make([]int32, 0, in.M)
	list := make([]uint64, 1) // removed-job masks of the subset DP
	pv := make([]float64, 1)  // probabilities parallel to list
	for si := 1; si < ns; si++ {
		s := sp.masks[si]
		elm := sp.elig[si]
		k := 0
		for e := elm; e != 0; e &= e - 1 {
			j := bits.TrailingZeros64(e)
			pos[j] = int32(k)
			slotBit[k] = e & -e
			fail[k] = 1
			k++
		}
		for j := 0; j < in.N; j++ {
			unfinished[j] = s&(1<<uint(j)) != 0
		}
		a := r.Assign(state)
		trial = trial[:0]
		var touched uint64
		for i, j := range a {
			if j == sched.Idle || j < 0 || j >= in.N || elm&(1<<uint(j)) == 0 {
				continue // idle, or an ineligible job the executor ignores
			}
			d := pos[j]
			if touched&(1<<uint(d)) == 0 {
				touched |= 1 << uint(d)
				trial = append(trial, d)
			}
			fail[d] *= 1 - in.P[i][j]
		}
		// Slot-order product matches the oracle's stateValue. Slots a
		// machine touched with p=0 keep fail==1 and q==0: their subset
		// terms vanish, so the DP below can skip them entirely.
		pNone := 1.0
		for d := 0; d < k; d++ {
			pNone *= fail[d]
		}
		if pNone >= 1-1e-15 {
			value[si] = math.Inf(1)
			continue
		}
		t := 0
		for _, d := range trial {
			if fail[d] < 1 {
				trial[t] = d
				t++
			}
		}
		if need := int64(1) << uint(t); int64(cap(list)) < need {
			list = make([]uint64, need)
			pv = make([]float64, need)
		}
		size := 1
		list = list[:cap(list)]
		pv = pv[:cap(pv)]
		list[0], pv[0] = 0, 1
		for i := 0; i < t; i++ {
			f := fail[trial[i]]
			q := 1 - f
			jb := slotBit[trial[i]]
			for x := 0; x < size; x++ {
				list[size+x] = list[x] | jb
				pv[size+x] = pv[x] * q
				pv[x] *= f
			}
			size <<= 1
		}
		sum := 0.0
		for x := 1; x < size; x++ {
			if p := pv[x]; p != 0 {
				sum += p * value[sp.idx[s&^list[x]]]
			}
		}
		value[si] = (1 + sum) / (1 - pNone)
	}
	return value[ns-1], nil
}

// OptimalRegimen computes the optimal regimen and its exact expected
// makespan T_OPT with the parallel value iteration of valueiter.go
// (workers = GOMAXPROCS; results are bit-identical at any count).
func OptimalRegimen(in *model.Instance) (*sched.Regimen, float64, error) {
	reg, v, _, err := OptimalRegimenParallel(in, 0)
	return reg, v, err
}

// OptimalRegimenExhaustive is the original Malewicz-style DP —
// exhaustive minimization over k^m assignment functions per state with
// full 2^eligible subset sums over a 2^n closed-state scan. It is
// retained solely as the parity oracle for the value iteration (the
// dense-tableau role of the sparse simplex): slower on every instance,
// but an independent implementation of the same recurrence. Machines
// are restricted to eligible jobs (an optimal regimen never benefits
// from assigning a machine to an ineligible job, whose completion
// cannot occur).
func OptimalRegimenExhaustive(in *model.Instance) (*sched.Regimen, float64, error) {
	if in.N > MaxJobs {
		return nil, 0, ErrTooLarge
	}
	states := closedStates(in)
	value := map[uint64]float64{0: 0}
	reg := sched.NewRegimen(in.N, in.M)

	for _, s := range states {
		if s == 0 {
			continue
		}
		el := eligibleOf(in, s)
		k := len(el)
		total := 1
		for i := 0; i < in.M; i++ {
			total *= k
			if total > MaxAssignmentsPerState {
				return nil, 0, ErrTooLarge
			}
		}
		bestVal := math.Inf(1)
		var bestAssign sched.Assignment
		a := make(sched.Assignment, in.M)
		fail := make([]float64, k)
		// Enumerate all k^m assignments via mixed-radix counting.
		idx := make([]int, in.M)
		for {
			for b := range fail {
				fail[b] = 1
			}
			for i := 0; i < in.M; i++ {
				a[i] = el[idx[i]]
				fail[idx[i]] *= 1 - in.P[i][el[idx[i]]]
			}
			q := make([]float64, k)
			for b := range q {
				q[b] = 1 - fail[b]
			}
			v := stateValue(s, el, q, value)
			if v < bestVal {
				bestVal = v
				bestAssign = a.Clone()
			}
			// Increment mixed-radix counter.
			c := 0
			for c < in.M {
				idx[c]++
				if idx[c] < k {
					break
				}
				idx[c] = 0
				c++
			}
			if c == in.M {
				break
			}
		}
		value[s] = bestVal
		reg.F[s] = bestAssign
	}
	full := uint64(1)<<uint(in.N) - 1
	return reg, value[full], nil
}

// GreedyRegimen builds the stationary policy that, in every state,
// runs MSM-style greedy matching supplied by assign; it is a helper to
// freeze an adaptive policy into a regimen for exact evaluation.
func GreedyRegimen(in *model.Instance, assign func(unfinished, eligible []bool) sched.Assignment) (*sched.Regimen, error) {
	sp, err := enumerateClosed(in, in.M)
	if err != nil {
		return nil, err
	}
	reg := sched.NewRegimen(in.N, in.M)
	unf := make([]bool, in.N)
	elig := make([]bool, in.N)
	for si := 1; si < len(sp.masks); si++ {
		s := sp.masks[si]
		elm := sp.elig[si]
		for j := 0; j < in.N; j++ {
			unf[j] = s&(1<<uint(j)) != 0
			elig[j] = elm&(1<<uint(j)) != 0
		}
		reg.F[s] = assign(append([]bool(nil), unf...), append([]bool(nil), elig...))
	}
	return reg, nil
}

// StateCount returns the number of reachable (closed) states — a
// difficulty measure reported by the experiment harness.
func StateCount(in *model.Instance) (int, error) {
	sp, err := enumerateClosed(in, in.M)
	if err != nil {
		return 0, err
	}
	return len(sp.masks), nil
}

// Popcount of uint64, exported for tests of the state enumeration.
func popcount(x uint64) int { return bits.OnesCount64(x) }
