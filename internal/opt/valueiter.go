// Parallel bitset value iteration — the exact solver behind
// OptimalRegimen since the n≈20 frontier push.
//
// The engine replaces the 2^n closed-state scan and per-state
// 2^eligible subset sums of the exhaustive Malewicz-style DP (retained
// in opt.go as OptimalRegimenExhaustive, the parity oracle) with:
//
//   - Direct down-set generation: closed states (successor-closed
//     unfinished sets) are enumerated by BFS from the all-unfinished
//     state, removing one eligible job at a time. Every closed state of
//     a DAG is reachable this way, so the enumeration visits exactly
//     the reachable lattice — chains at n=20 have ~10^3 states where
//     the old scan would have tested 2^20 masks.
//   - Popcount layers with a worker pool: states within one layer have
//     no value dependencies (transitions strictly shrink the state), so
//     a layer is solved by workers pulling disjoint index ranges.
//     Per-state results depend only on previous layers, never on
//     scheduling, so values, regimens and stats are bit-identical at
//     any worker count.
//   - Memoized transition tables: for each state the successor values
//     of all removable eligible subsets of size ≤ m are materialized
//     once into a flat table indexed by slot mask (the adaptState
//     representation of internal/sim/adaptive.go, with values in place
//     of state ids). Note that for closed states the eligible set is
//     exactly the set of minimal elements and determines the state
//     (S is the union of the successor closures of its minimal
//     elements), so a per-(eligible-set, assignment) memo is per-state
//     sharing; the genuinely cross-state reuse is this flat-table
//     shape plus the per-leaf subset-probability DP below.
//   - Assignment search over *trialed* subsets: an assignment of m
//     machines trials at most min(m,k) of the k eligible jobs, so the
//     transition sum needs 2^t terms, not 2^k — the dominant win over
//     the oracle at widths like 12×4 (16 terms instead of 4096). The
//     DFS over machines maintains per-slot failure products
//     incrementally (multiply on entry, restore on exit — no
//     divisions, so p=1 rows are exact).
//   - Dominance/incumbent pruning: each leaf first computes a lower
//     bound from the exact no-completion and single-completion terms
//     plus the value of the all-trialed successor as a floor for the
//     remaining mass (values are monotone under job completion). A
//     greedy incumbent (each machine on its best eligible job) is
//     evaluated before the enumeration so the bound prunes from the
//     first leaf.
//   - Terminal-layer closed forms: states with ≤2 unfinished jobs are
//     solved by the closed-form expected-makespan expressions instead
//     of the DFS machinery; internal/sim splices the same forms into
//     the compiled simulation walks.
package opt

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"suu/internal/model"
	"suu/internal/sched"
)

const (
	// MaxStates bounds the closed-state enumeration of the value
	// iteration (n=20 independent jobs is 2^20 states and fits; dense
	// precedence reaches far larger n because the lattice collapses).
	MaxStates = 1 << 21

	// svFlatMaxK is the widest eligible antichain for which workers
	// index successor values through a flat stamped table (2^k
	// entries); wider states fall back to a per-state map.
	svFlatMaxK = 20

	// viChunk is the number of states a worker claims per pull.
	viChunk = 16
)

// TooLargeError reports which exact-solver limit an instance exceeded,
// with enough context (n, m, state count, offending width) to tell
// what to shrink. It unwraps to ErrTooLarge.
type TooLargeError struct {
	N, M     int
	States   int    // closed states counted before the limit hit
	Eligible int    // eligible-antichain width of the offending state
	Need     int64  // assignments the offending state would enumerate
	Limit    string // "states" or "assignments"
}

func (e *TooLargeError) Error() string {
	switch e.Limit {
	case "assignments":
		return fmt.Sprintf(
			"opt: instance too large for exact computation: n=%d m=%d has %d closed states, but a state with %d eligible jobs needs %d^%d ≥ %d assignments (limit %d): reduce machines or antichain width",
			e.N, e.M, e.States, e.Eligible, e.Eligible, e.M, e.Need, MaxAssignmentsPerState)
	default:
		return fmt.Sprintf(
			"opt: instance too large for exact computation: n=%d m=%d exceeds %d closed states: add precedence or reduce jobs",
			e.N, e.M, MaxStates)
	}
}

func (e *TooLargeError) Unwrap() error { return ErrTooLarge }

// Stats describes one value-iteration run; solve.Get("optimal")
// surfaces States and Transitions in its Result.
type Stats struct {
	States      int   // closed states in the lattice
	Layers      int   // nonempty popcount layers processed
	MaxEligible int   // widest eligible antichain
	Workers     int   // layer-pool size used
	Assignments int64 // assignments enumerated across all states
	Pruned      int64 // assignments rejected by the incumbent bound
	Transitions int64 // successor-table entries materialized
	ClosedForm  int   // states solved by the ≤2-unfinished closed forms
}

// stateSpace is the enumerated closed-state lattice, sorted by
// (popcount, mask) so contiguous ranges form the popcount layers.
type stateSpace struct {
	n        int
	masks    []uint64 // masks[0] == 0, masks[len-1] == full
	elig     []uint64 // eligible (minimal-element) mask per state
	idx      map[uint64]int32
	layerOff []int32 // layer c states are masks[layerOff[c]:layerOff[c+1]]
	maxK     int     // max popcount of elig
}

// eligMask returns the eligible jobs of s: unfinished jobs whose
// predecessors are all finished (the minimal elements of s).
func eligMask(s uint64, pred []uint64) uint64 {
	var el uint64
	for t := s; t != 0; t &= t - 1 {
		j := bits.TrailingZeros64(t)
		if pred[j]&s == 0 {
			el |= 1 << uint(j)
		}
	}
	return el
}

// enumerateClosed generates every closed state reachable from the
// all-unfinished state by BFS over single eligible-job removals. For a
// DAG this is exactly the set of successor-closed masks. m only labels
// the error.
func enumerateClosed(in *model.Instance, m int) (*stateSpace, error) {
	n := in.N
	if n > 64 {
		return nil, &TooLargeError{N: n, M: m, Limit: "states"}
	}
	pred := make([]uint64, n)
	isolated := 0
	for j := 0; j < n; j++ {
		for _, p := range in.Prec.Preds(j) {
			pred[j] |= 1 << uint(p)
		}
	}
	for j := 0; j < n; j++ {
		if pred[j] == 0 && len(in.Prec.Succs(j)) == 0 {
			isolated++
		}
	}
	// Cheap refusal: c isolated jobs alone generate 2^c closed states,
	// so the BFS below would only burn MaxStates of work to learn the
	// same answer.
	if isolated > bits.Len(uint(MaxStates))-1 {
		return nil, &TooLargeError{N: n, M: m, States: MaxStates + 1, Limit: "states"}
	}
	full := uint64(1)<<uint(n) - 1
	idx := make(map[uint64]int32, 1024)
	masks := make([]uint64, 1, 1024)
	masks[0] = full
	idx[full] = 0
	if full != 0 {
		if _, ok := idx[0]; !ok {
			// The empty state is reachable for any DAG; seed it so even
			// degenerate (cyclic) precedence keeps the terminal state.
			idx[0] = 1
			masks = append(masks, 0)
		}
	}
	for head := 0; head < len(masks); head++ {
		s := masks[head]
		for e := eligMask(s, pred); e != 0; e &= e - 1 {
			s2 := s &^ (e & -e)
			if _, ok := idx[s2]; !ok {
				if len(masks) >= MaxStates {
					return nil, &TooLargeError{N: n, M: m, States: len(masks) + 1, Limit: "states"}
				}
				idx[s2] = int32(len(masks))
				masks = append(masks, s2)
			}
		}
	}
	sort.Slice(masks, func(a, b int) bool {
		pa, pb := bits.OnesCount64(masks[a]), bits.OnesCount64(masks[b])
		if pa != pb {
			return pa < pb
		}
		return masks[a] < masks[b]
	})
	sp := &stateSpace{
		n:        n,
		masks:    masks,
		elig:     make([]uint64, len(masks)),
		idx:      idx,
		layerOff: make([]int32, n+2),
	}
	for i, s := range masks {
		idx[s] = int32(i)
		el := eligMask(s, pred)
		sp.elig[i] = el
		if k := bits.OnesCount64(el); k > sp.maxK {
			sp.maxK = k
		}
	}
	c := 0
	for i, s := range masks {
		for pc := bits.OnesCount64(s); c < pc; c++ {
			sp.layerOff[c+1] = int32(i)
		}
	}
	for ; c <= n; c++ {
		sp.layerOff[c+1] = int32(len(masks))
	}
	return sp, nil
}

// powCap returns k^m, capped at limit+1.
func powCap(k, m int, limit int64) int64 {
	total := int64(1)
	for i := 0; i < m; i++ {
		total *= int64(k)
		if total > limit {
			return limit + 1
		}
	}
	return total
}

// viSolver holds the shared state of one value-iteration run.
type viSolver struct {
	in      *model.Instance
	sp      *stateSpace
	value   []float64
	assigns []sched.Assignment
}

// viWorker is the per-goroutine scratch. All fields are reused across
// states; nothing escapes to other workers, so per-state results are
// independent of the pool size.
type viWorker struct {
	vs *viSolver

	el     []int     // eligible jobs of the current state, slot order
	fail   []float64 // per-slot failure product along the DFS path
	cnt    []int32   // machines currently assigned to the slot
	digits []int32   // machine → slot on the DFS path
	bestD  []int32   // digits of the incumbent assignment
	trial  []int32   // trialed slots in first-touch order (a stack)
	tmask  uint32    // bitmask over slots of trial
	pre    []float64 // prefix failure products over trial

	list []uint32  // subset-probability DP: slot masks in build order
	pv   []float64 // probabilities parallel to list

	sv      []float64 // successor values by slot mask (flat, stamped)
	svStamp []int32
	svEpoch int32
	svMap   map[uint32]float64 // fallback when k > svFlatMaxK

	s     uint64 // current state
	k, m  int
	tmax  int // min(m, k): max trialed slots
	best  float64
	haveB bool

	assignments, pruned, transitions int64
	closedForm                       int
}

func newVIWorker(vs *viSolver) *viWorker {
	k := vs.sp.maxK
	m := vs.in.M
	w := &viWorker{
		vs:     vs,
		el:     make([]int, 0, k),
		fail:   make([]float64, k),
		cnt:    make([]int32, k),
		digits: make([]int32, m),
		bestD:  make([]int32, m),
		trial:  make([]int32, 0, min(m, k)+1),
		pre:    make([]float64, min(m, k)+2),
		best:   math.Inf(1),
	}
	if k <= svFlatMaxK && k > 0 {
		w.sv = make([]float64, 1<<uint(k))
		w.svStamp = make([]int32, 1<<uint(k))
	} else {
		w.svMap = make(map[uint32]float64)
	}
	t := min(m, k)
	if t > 0 {
		w.list = make([]uint32, 1<<uint(t))
		w.pv = make([]float64, 1<<uint(t))
	}
	return w
}

func (w *viWorker) setSV(mask uint32, v float64) {
	if w.sv != nil {
		w.sv[mask] = v
		w.svStamp[mask] = w.svEpoch
		return
	}
	w.svMap[mask] = v
}

func (w *viWorker) getSV(mask uint32) float64 {
	if w.sv != nil {
		return w.sv[mask]
	}
	return w.svMap[mask]
}

// fillSucc materializes the successor-value table: for every nonempty
// subset of ≤ tmax eligible slots, the value of the state with those
// jobs completed. This is the flat transition table the DFS leaves
// index in O(1).
func (w *viWorker) fillSucc() {
	if w.sv != nil {
		w.svEpoch++
	} else {
		clear(w.svMap)
	}
	w.fillSuccRec(0, 0, 0, 0)
}

func (w *viWorker) fillSuccRec(start int, mask uint32, rem uint64, depth int) {
	if mask != 0 {
		sp := w.vs.sp
		w.setSV(mask, w.vs.value[sp.idx[w.s&^rem]])
		w.transitions++
	}
	if depth == w.tmax {
		return
	}
	for d := start; d < w.k; d++ {
		w.fillSuccRec(d+1, mask|1<<uint(d), rem|1<<uint(w.el[d]), depth+1)
	}
}

// evalLeaf scores the current assignment (fail/cnt/trial reflect it).
// It first computes a lower bound from the exact empty and singleton
// completion terms, flooring the remaining mass with the all-trialed
// successor value (values are monotone under completions), and only
// runs the full 2^t subset DP when the bound beats the incumbent.
// bound=false (the greedy warm start) skips the pruning test.
func (w *viWorker) evalLeaf(bound bool) {
	w.assignments++
	t := len(w.trial)
	w.pre[0] = 1
	for i, d := range w.trial {
		w.pre[i+1] = w.pre[i] * w.fail[d]
	}
	pNone := w.pre[t]
	if pNone >= 1-1e-15 {
		return // no progress possible; value +Inf cannot beat any incumbent
	}
	denom := 1 - pNone
	if bound {
		suf := 1.0
		sing := 0.0
		lbSum := 0.0
		for i := t - 1; i >= 0; i-- {
			d := w.trial[i]
			pd := (1 - w.fail[d]) * w.pre[i] * suf
			suf *= w.fail[d]
			if pd != 0 {
				sing += pd
				lbSum += pd * w.getSV(1<<uint(d))
			}
		}
		if rest := denom - sing; rest > 1e-18 {
			lbSum += rest * w.getSV(w.tmask)
		}
		if (1+lbSum)/denom >= w.best {
			w.pruned++
			return
		}
	}
	// Full transition sum via the subset-probability DP over trialed
	// slots: after processing slot d, list/pv hold every subset of the
	// slots so far with its exact probability.
	size := 1
	w.list[0], w.pv[0] = 0, 1
	for _, d := range w.trial {
		f := w.fail[d]
		q := 1 - f
		for i := 0; i < size; i++ {
			w.list[size+i] = w.list[i] | 1<<uint(d)
			w.pv[size+i] = w.pv[i] * q
			w.pv[i] *= f
		}
		size <<= 1
	}
	sum := 0.0
	for i := 1; i < size; i++ {
		if p := w.pv[i]; p != 0 {
			sum += p * w.getSV(w.list[i])
		}
	}
	if v := (1 + sum) / denom; v < w.best {
		w.best = v
		w.haveB = true
		copy(w.bestD, w.digits)
	}
}

// dfs enumerates assignments machine by machine, maintaining per-slot
// failure products and the trialed-slot stack incrementally.
func (w *viWorker) dfs(i int) {
	if i == w.m {
		w.evalLeaf(true)
		return
	}
	row := w.vs.in.P[i]
	for d := 0; d < w.k; d++ {
		saved := w.fail[d]
		w.fail[d] = saved * (1 - row[w.el[d]])
		if w.cnt[d]++; w.cnt[d] == 1 {
			w.tmask |= 1 << uint(d)
			w.trial = append(w.trial, int32(d))
		}
		w.digits[i] = int32(d)
		w.dfs(i + 1)
		if w.cnt[d]--; w.cnt[d] == 0 {
			w.tmask &^= 1 << uint(d)
			w.trial = w.trial[:len(w.trial)-1]
		}
		w.fail[d] = saved
	}
}

// applyDigits evaluates one explicit assignment (the greedy warm
// start) through the same leaf scoring as the DFS.
func (w *viWorker) applyDigits(digits []int32) {
	for i, d := range digits {
		w.fail[d] *= 1 - w.vs.in.P[i][w.el[d]]
		if w.cnt[d]++; w.cnt[d] == 1 {
			w.tmask |= 1 << uint(d)
			w.trial = append(w.trial, d)
		}
		w.digits[i] = d
	}
	w.evalLeaf(false)
	for _, d := range digits {
		if w.cnt[d]--; w.cnt[d] == 0 {
			w.tmask &^= 1 << uint(d)
			w.trial = w.trial[:len(w.trial)-1]
		}
	}
	for d := 0; d < w.k; d++ {
		w.fail[d] = 1
	}
}

// solveState computes the optimal value and assignment of one state.
func (w *viWorker) solveState(si int32) {
	vs := w.vs
	s := vs.sp.masks[si]
	if bits.OnesCount64(s) <= 2 {
		w.solveTerminal(si)
		return
	}
	elm := vs.sp.elig[si]
	if elm == 0 {
		// No eligible job (cyclic precedence): permanently stuck.
		vs.value[si] = math.Inf(1)
		return
	}
	w.s = s
	w.el = w.el[:0]
	for e := elm; e != 0; e &= e - 1 {
		w.el = append(w.el, bits.TrailingZeros64(e))
	}
	w.k = len(w.el)
	w.m = vs.in.M
	w.tmax = min(w.m, w.k)
	for d := 0; d < w.k; d++ {
		w.fail[d] = 1
		w.cnt[d] = 0
	}
	w.trial = w.trial[:0]
	w.tmask = 0
	w.best = math.Inf(1)
	w.haveB = false

	w.fillSucc()

	// Greedy warm start: machine i on its best eligible job. Gives the
	// incumbent bound teeth from the very first DFS leaf.
	for i := 0; i < w.m; i++ {
		row := vs.in.P[i]
		bd := 0
		for d := 1; d < w.k; d++ {
			if row[w.el[d]] > row[w.el[bd]] {
				bd = d
			}
		}
		w.digits[i] = int32(bd)
	}
	copy(w.bestD, w.digits)
	w.applyDigits(w.digits[:w.m])

	w.dfs(0)

	vs.value[si] = w.best
	if w.haveB {
		a := make(sched.Assignment, w.m)
		for i := 0; i < w.m; i++ {
			a[i] = w.el[w.bestD[i]]
		}
		vs.assigns[si] = a
	}
}

// solveTerminal applies the ≤2-unfinished closed forms: a single
// unfinished job is ganged by every machine (E = 1/q), and a pair is
// either a chain (gang the head, then the tail's 1-job form) or an
// antichain solved over the 2^m machine splits with the two-job
// formula. These are the same forms internal/sim splices into the
// compiled walks.
func (w *viWorker) solveTerminal(si int32) {
	vs := w.vs
	in := vs.in
	s := vs.sp.masks[si]
	m := in.M
	w.closedForm++
	switch bits.OnesCount64(s) {
	case 1:
		j := bits.TrailingZeros64(s)
		fail := 1.0
		for i := 0; i < m; i++ {
			fail *= 1 - in.P[i][j]
		}
		if fail >= 1-1e-15 {
			vs.value[si] = math.Inf(1)
			return
		}
		vs.value[si] = 1 / (1 - fail)
		a := make(sched.Assignment, m)
		for i := range a {
			a[i] = j
		}
		vs.assigns[si] = a
	case 2:
		a := bits.TrailingZeros64(s)
		b := bits.TrailingZeros64(s &^ (1 << uint(a)))
		elm := vs.sp.elig[si]
		if bits.OnesCount64(elm) == 1 {
			// Chain: only the head is eligible; gang it, then the
			// remaining single job.
			head := bits.TrailingZeros64(elm)
			rest := s &^ (1 << uint(head))
			fail := 1.0
			for i := 0; i < m; i++ {
				fail *= 1 - in.P[i][head]
			}
			if fail >= 1-1e-15 {
				vs.value[si] = math.Inf(1)
				return
			}
			q := 1 - fail
			vs.value[si] = (1 + q*vs.value[vs.sp.idx[rest]]) / q
			as := make(sched.Assignment, m)
			for i := range as {
				as[i] = head
			}
			vs.assigns[si] = as
			return
		}
		// Antichain pair: enumerate the 2^m splits of machines onto
		// {a, b}; bit i of msk sends machine i to b.
		va := vs.value[vs.sp.idx[s&^(1<<uint(b))]] // b done, a remains
		vb := vs.value[vs.sp.idx[s&^(1<<uint(a))]] // a done, b remains
		best := math.Inf(1)
		bestMsk := -1
		for msk := 0; msk < 1<<uint(m); msk++ {
			failA, failB := 1.0, 1.0
			for i := 0; i < m; i++ {
				if msk>>uint(i)&1 == 0 {
					failA *= 1 - in.P[i][a]
				} else {
					failB *= 1 - in.P[i][b]
				}
			}
			pNone := failA * failB
			if pNone >= 1-1e-15 {
				continue
			}
			qa, qb := 1-failA, 1-failB
			sum := 0.0
			if p := qa * failB; p != 0 {
				sum += p * vb
			}
			if p := failA * qb; p != 0 {
				sum += p * va
			}
			if v := (1 + sum) / (1 - pNone); v < best {
				best = v
				bestMsk = msk
			}
		}
		vs.value[si] = best
		if bestMsk >= 0 {
			as := make(sched.Assignment, m)
			for i := 0; i < m; i++ {
				if bestMsk>>uint(i)&1 == 0 {
					as[i] = a
				} else {
					as[i] = b
				}
			}
			vs.assigns[si] = as
		}
	}
}

// OptimalRegimenParallel computes the optimal regimen, its exact
// expected makespan, and run statistics using the layered value
// iteration with the given worker count (0 = GOMAXPROCS). Results are
// bit-identical at any worker count.
func OptimalRegimenParallel(in *model.Instance, workers int) (*sched.Regimen, float64, *Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp, err := enumerateClosed(in, in.M)
	if err != nil {
		return nil, 0, nil, err
	}
	if need := powCap(sp.maxK, in.M, MaxAssignmentsPerState); need > MaxAssignmentsPerState {
		return nil, 0, nil, &TooLargeError{
			N: in.N, M: in.M, States: len(sp.masks),
			Eligible: sp.maxK, Need: need, Limit: "assignments",
		}
	}
	ns := len(sp.masks)
	vs := &viSolver{
		in:      in,
		sp:      sp,
		value:   make([]float64, ns),
		assigns: make([]sched.Assignment, ns),
	}
	if workers > ns {
		workers = ns
	}
	if workers < 1 {
		workers = 1
	}
	ws := make([]*viWorker, workers)
	for i := range ws {
		ws[i] = newVIWorker(vs)
	}
	st := &Stats{States: ns, MaxEligible: sp.maxK, Workers: workers}
	for c := 1; c <= sp.n; c++ {
		lo, hi := sp.layerOff[c], sp.layerOff[c+1]
		if lo == hi {
			continue
		}
		st.Layers++
		var next atomic.Int64
		next.Store(int64(lo))
		var wg sync.WaitGroup
		for _, w := range ws {
			wg.Add(1)
			go func(w *viWorker) {
				defer wg.Done()
				for {
					i := next.Add(viChunk) - viChunk
					if i >= int64(hi) {
						return
					}
					end := i + viChunk
					if end > int64(hi) {
						end = int64(hi)
					}
					for si := i; si < end; si++ {
						w.solveState(int32(si))
					}
				}
			}(w)
		}
		wg.Wait()
	}
	for _, w := range ws {
		st.Assignments += w.assignments
		st.Pruned += w.pruned
		st.Transitions += w.transitions
		st.ClosedForm += w.closedForm
	}
	reg := sched.NewRegimen(in.N, in.M)
	for i := 1; i < ns; i++ {
		reg.F[sp.masks[i]] = vs.assigns[i]
	}
	return reg, vs.value[ns-1], st, nil
}
