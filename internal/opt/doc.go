// Package opt computes exact expected makespans for SUU instances: the
// exact value of a given regimen, and the optimal regimen itself via
// dynamic programming over the lattice of unfinished-job states — the
// approach Malewicz (SPAA 2005) showed to be polynomial for constant
// width and machine count, and which this reproduction uses as ground
// truth (T_OPT) in the experiments.
//
// States are bitmasks of unfinished jobs. Only "closed" states (where
// every successor of an unfinished job is unfinished) are reachable.
// Transitions remove a subset of the eligible jobs, so values are
// computed in increasing order of popcount, resolving the self-loop in
// closed form: E[S] = (1 + Σ_{∅≠T⊆E} P(T)·E[S\T]) / (1 − P(∅)).
//
// Two solvers implement that recurrence. OptimalRegimen runs the
// layered parallel value iteration of valueiter.go (down-set state
// generation, trialed-subset transition sums, incumbent pruning,
// terminal closed forms) and reaches n≈20 on structured instances.
// OptimalRegimenExhaustive is the original small-instance DP — a 2^n
// closed-state scan with full 2^eligible subset sums — retained as the
// parity oracle the fuzz tests compare the value iteration against.
package opt
