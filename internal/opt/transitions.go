package opt

import (
	"sort"

	"suu/internal/model"
	"suu/internal/sched"
)

// Transition is one outgoing edge of the scheduling Markov chain: from
// an unfinished-set state, with the given probability, to the state
// where the jobs in Completed have finished.
type Transition struct {
	Next uint64
	Prob float64
}

// Transitions returns the distribution over successor states when
// assignment a is played in state s (bitmask of unfinished jobs).
// Machines assigned to ineligible jobs idle, matching the executor.
// Used by the exact solvers and by the Figure 1 reproduction.
func Transitions(in *model.Instance, s uint64, a sched.Assignment) []Transition {
	el := eligibleOf(in, s)
	q := successProbs(in, a, el)
	k := len(el)
	var out []Transition
	for t := 0; t < 1<<uint(k); t++ {
		p := 1.0
		mask := uint64(0)
		for b := 0; b < k; b++ {
			if t&(1<<uint(b)) != 0 {
				p *= q[b]
				mask |= 1 << uint(el[b])
			} else {
				p *= 1 - q[b]
			}
		}
		if p > 0 {
			out = append(out, Transition{Next: s &^ mask, Prob: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Next > out[j].Next })
	return out
}

// ClosedStates exposes the reachable unfinished-set states in
// increasing mask order (the exact solvers' state space), for the
// Figure 1 reproduction and diagnostics. States come from down-set
// generation, so the limit is MaxStates generated states rather than
// the oracle's MaxJobs.
func ClosedStates(in *model.Instance) ([]uint64, error) {
	sp, err := enumerateClosed(in, in.M)
	if err != nil {
		return nil, err
	}
	out := append([]uint64(nil), sp.masks...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Eligible exposes the eligible job list of a state.
func Eligible(in *model.Instance, s uint64) []int { return eligibleOf(in, s) }
