package opt

import (
	"math"

	"suu/internal/model"
	"suu/internal/sched"
)

// ExactOblivious computes the expected makespan of an oblivious
// schedule exactly (up to the stated residual), by propagating the
// full probability distribution over unfinished-set states step by
// step. Unlike ExactRegimen this handles time-varying assignments, so
// it evaluates prefixes, tails, and cycled schedules without Monte
// Carlo noise.
//
// The propagation runs until the residual (probability mass on
// unfinished states) falls below eps or horizon steps elapse; the
// returned value then brackets the truth within
// [value, value + residual·tailBound] where tailBound is the crude
// all-machines round-robin completion bound. The second return is the
// residual probability left unfinished at the horizon.
func ExactOblivious(in *model.Instance, o *sched.Oblivious, horizon int, eps float64) (float64, float64, error) {
	if in.N > MaxJobs {
		return 0, 0, ErrTooLarge
	}
	full := uint64(1)<<uint(in.N) - 1
	dist := map[uint64]float64{full: 1}
	expected := 0.0

	for t := 0; t < horizon; t++ {
		residual := 0.0
		for s, p := range dist {
			if s != 0 {
				residual += p
			}
		}
		if residual <= eps {
			break
		}
		a := o.At(t)
		next := make(map[uint64]float64, len(dist))
		if p0, ok := dist[0]; ok {
			next[0] = p0
		}
		for s, p := range dist {
			if s == 0 {
				continue
			}
			for _, tr := range Transitions(in, s, a) {
				q := p * tr.Prob
				if q > 0 {
					if tr.Next == 0 {
						// Completion happened during step t (1-indexed t+1).
						expected += q * float64(t+1)
					}
					next[tr.Next] += q
				}
			}
		}
		dist = next
	}
	residual := 0.0
	for s, p := range dist {
		if s != 0 {
			residual += p
		}
	}
	if residual > 0 {
		// Lower-bound contribution of unfinished runs: they take at
		// least horizon steps.
		expected += residual * float64(horizon)
	}
	if math.IsNaN(expected) {
		residual = 1
	}
	return expected, residual, nil
}
