package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

// singleJob returns one job, one machine with probability p.
func singleJob(p float64) *model.Instance {
	in := model.New(1, 1)
	in.P[0][0] = p
	return in
}

func TestSingleJobGeometric(t *testing.T) {
	// One job, success p each step: E[makespan] = 1/p.
	for _, p := range []float64{1.0, 0.5, 0.25, 0.1} {
		in := singleJob(p)
		_, v, err := OptimalRegimen(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-1/p) > 1e-9 {
			t.Errorf("p=%v: T_OPT=%v, want %v", p, v, 1/p)
		}
	}
}

func TestTwoIndependentJobsTwoMachines(t *testing.T) {
	// Two machines, each perfect on its own job: optimal = 1 step.
	in := model.New(2, 2)
	in.P[0][0], in.P[1][1] = 1, 1
	in.P[0][1], in.P[1][0] = 0, 0
	_, v, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("T_OPT=%v, want 1", v)
	}
}

func TestChainForcesSequential(t *testing.T) {
	// 0 ≺ 1, both deterministic on the single machine: T_OPT = 2.
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 1, 1
	in.Prec.MustEdge(0, 1)
	_, v, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-9 {
		t.Errorf("T_OPT=%v, want 2", v)
	}
}

func TestTwoJobsOneMachineHalf(t *testing.T) {
	// One machine, p=1/2 on both independent jobs. The machine works on
	// one job until done, then the other: E = 2 + 2 = 4.
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 0.5, 0.5
	_, v, err := OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4) > 1e-9 {
		t.Errorf("T_OPT=%v, want 4", v)
	}
}

func TestExactRegimenMatchesOptimalPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(2)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = 0.1 + 0.9*rng.Float64()
			}
		}
		if rng.Intn(2) == 0 && n >= 2 {
			in.Prec.MustEdge(0, 1)
		}
		reg, v, err := OptimalRegimen(in)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := ExactRegimen(in, reg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-v2) > 1e-9 {
			t.Errorf("trial %d: OptimalRegimen value %v != ExactRegimen %v", trial, v, v2)
		}
	}
}

func TestOptimalIsLowerBoundOnArbitraryRegimen(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(2)
		in := model.New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				in.P[i][j] = 0.05 + 0.95*rng.Float64()
			}
		}
		_, opt, err := OptimalRegimen(in)
		if err != nil {
			t.Fatal(err)
		}
		// Arbitrary regimen: every machine on the lowest unfinished job.
		reg := sched.NewRegimen(n, m)
		for s := uint64(1); s < 1<<uint(n); s++ {
			lowest := -1
			for j := 0; j < n; j++ {
				if s&(1<<uint(j)) != 0 {
					lowest = j
					break
				}
			}
			a := make(sched.Assignment, m)
			for i := range a {
				a[i] = lowest
			}
			reg.F[s] = a
		}
		v, err := ExactRegimen(in, reg)
		if err != nil {
			t.Fatal(err)
		}
		if v < opt-1e-9 {
			t.Errorf("trial %d: regimen %v beats optimal %v", trial, v, opt)
		}
	}
}

func TestExactRegimenStuckIsInfinite(t *testing.T) {
	in := singleJob(0.5)
	reg := sched.NewRegimen(1, 1)
	reg.F[1] = sched.Assignment{sched.Idle}
	v, err := ExactRegimen(in, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Errorf("stuck regimen value=%v, want +Inf", v)
	}
}

func TestClosedStatesRespectPrecedence(t *testing.T) {
	in := model.New(3, 1)
	in.P[0][0], in.P[0][1], in.P[0][2] = 1, 1, 1
	in.Prec.MustEdge(0, 1)
	in.Prec.MustEdge(1, 2)
	states := closedStates(in)
	// Valid unfinished sets for a chain 0≺1≺2: {}, {2}, {1,2}, {0,1,2}.
	if len(states) != 4 {
		t.Fatalf("got %d closed states, want 4: %v", len(states), states)
	}
	cnt, err := StateCount(in)
	if err != nil || cnt != 4 {
		t.Errorf("StateCount=%d err=%v", cnt, err)
	}
}

func TestEligibleOf(t *testing.T) {
	in := model.New(3, 1)
	in.P[0][0], in.P[0][1], in.P[0][2] = 1, 1, 1
	in.Prec.MustEdge(0, 1)
	el := eligibleOf(in, 0b111)
	if len(el) != 2 || el[0] != 0 || el[1] != 2 {
		t.Errorf("eligible=%v, want [0 2]", el)
	}
	el = eligibleOf(in, 0b110)
	if len(el) != 2 || el[0] != 1 || el[1] != 2 {
		t.Errorf("eligible=%v, want [1 2]", el)
	}
}

func TestTooLargeGuard(t *testing.T) {
	// The exhaustive oracle keeps the hard 16-job scan bound.
	in := model.New(MaxJobs+1, 1)
	for j := 0; j <= MaxJobs; j++ {
		in.P[0][j] = 1
	}
	if _, _, err := OptimalRegimenExhaustive(in); err != ErrTooLarge {
		t.Errorf("oracle err=%v, want ErrTooLarge", err)
	}
	// ...but the value iteration now accepts it: 2^17 closed states.
	if _, _, err := OptimalRegimen(in); err != nil {
		t.Errorf("value iteration at n=%d: err=%v, want nil", MaxJobs+1, err)
	}

	// 25 independent jobs exceed MaxStates (2^25 up-sets). The error
	// must wrap ErrTooLarge and name the limit.
	wide := model.New(25, 1)
	_, _, _, err := OptimalRegimenParallel(wide, 1)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("n=25 err=%v, want ErrTooLarge via errors.Is", err)
	}
	var tle *TooLargeError
	if !errors.As(err, &tle) || tle.Limit != "states" || tle.N != 25 || tle.M != 1 {
		t.Errorf("n=25 err=%+v, want *TooLargeError{Limit:states N:25 M:1}", err)
	}
	if _, err := ExactRegimen(wide, sched.NewRegimen(25, 1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("ExactRegimen n=25 err=%v, want ErrTooLarge", err)
	}

	// A 10-job antichain with 8 machines passes the state limit but
	// needs 10^8 assignments in the top state.
	deep := model.New(10, 8)
	_, _, _, err = OptimalRegimenParallel(deep, 1)
	if !errors.As(err, &tle) || tle.Limit != "assignments" {
		t.Fatalf("10x8 err=%v, want assignments TooLargeError", err)
	}
	if tle.States != 1<<10 || tle.Eligible != 10 {
		t.Errorf("10x8 error detail States=%d Eligible=%d, want 1024, 10", tle.States, tle.Eligible)
	}
}

func TestGreedyRegimenFreezing(t *testing.T) {
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 0.9, 0.8
	reg, err := GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
		for j, e := range elig {
			if e {
				return sched.Assignment{j}
			}
		}
		return sched.Assignment{sched.Idle}
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ExactRegimen(in, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Lowest-first: finish 0 (E=1/.9) then 1 (E=1/.8).
	want := 1/0.9 + 1/0.8
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("value=%v, want %v", v, want)
	}
}
