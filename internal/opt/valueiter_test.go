package opt

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"suu/internal/model"
	"suu/internal/sched"
)

// randInstance draws a random DAG instance the exhaustive oracle
// accepts, with probability rows mixing 0, 1 and uniform draws so the
// fuzz exercises the stuck, certain and generic arithmetic paths.
func randInstance(rng *rand.Rand) *model.Instance {
	n := 2 + rng.Intn(5) // 2..6
	m := 1 + rng.Intn(3) // 1..3
	in := model.New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			switch rng.Intn(6) {
			case 0:
				in.P[i][j] = 0
			case 1:
				in.P[i][j] = 1
			default:
				in.P[i][j] = rng.Float64()
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.3 {
				in.Prec.MustEdge(u, v)
			}
		}
	}
	return in
}

// TestValueIterationMatchesExhaustiveFuzz is the parity gate of the
// value iteration: on every instance the retained oracle accepts, the
// optimal values must agree within 1e-12 and the returned regimens
// must both achieve that value exactly (identical modulo ties).
func TestValueIterationMatchesExhaustiveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20070707))
	for trial := 0; trial < 120; trial++ {
		in := randInstance(rng)
		regOld, vOld, err := OptimalRegimenExhaustive(in)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		workers := 1 + rng.Intn(4)
		regNew, vNew, st, err := OptimalRegimenParallel(in, workers)
		if err != nil {
			t.Fatalf("trial %d: value iteration: %v", trial, err)
		}
		if math.IsInf(vOld, 1) != math.IsInf(vNew, 1) {
			t.Fatalf("trial %d: finiteness differs: oracle %v vs VI %v", trial, vOld, vNew)
		}
		if !math.IsInf(vOld, 1) {
			if tol := 1e-12 * math.Max(1, math.Abs(vOld)); math.Abs(vOld-vNew) > tol {
				t.Errorf("trial %d (n=%d m=%d): oracle %.15g vs VI %.15g (|Δ|=%g > %g)",
					trial, in.N, in.M, vOld, vNew, math.Abs(vOld-vNew), tol)
			}
			// Regimens may differ on tied assignments but must be
			// value-identical when evaluated exactly.
			for name, reg := range map[string]*sched.Regimen{"oracle": regOld, "VI": regNew} {
				ev, err := ExactRegimen(in, reg)
				if err != nil {
					t.Fatalf("trial %d: ExactRegimen(%s): %v", trial, name, err)
				}
				if tol := 1e-12 * math.Max(1, math.Abs(vOld)); math.Abs(ev-vOld) > tol {
					t.Errorf("trial %d: %s regimen evaluates to %.15g, optimum is %.15g",
						trial, name, ev, vOld)
				}
			}
		}
		if want := len(closedStates(in)); st.States != want {
			t.Errorf("trial %d: VI saw %d states, oracle scan has %d", trial, st.States, want)
		}
	}
}

// TestValueIterationWorkerBitIdentity pins the determinism story:
// values, regimens and stats must be bit-identical at any pool size.
func TestValueIterationWorkerBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 12; trial++ {
		// Mid-size forests so layers actually split across workers.
		in := model.New(12, 3)
		for i := 0; i < in.M; i++ {
			for j := 0; j < in.N; j++ {
				in.P[i][j] = 0.05 + 0.9*rng.Float64()
			}
		}
		for v := 1; v < in.N; v++ {
			if rng.Float64() < 0.5 {
				in.Prec.MustEdge(rng.Intn(v), v)
			}
		}
		var ref *sched.Regimen
		var refV float64
		var refStats *Stats
		for _, w := range counts {
			reg, v, st, err := OptimalRegimenParallel(in, w)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if ref == nil {
				ref, refV, refStats = reg, v, st
				continue
			}
			if math.Float64bits(v) != math.Float64bits(refV) {
				t.Errorf("trial %d: workers=%d value %v != workers=%d value %v",
					trial, w, v, counts[0], refV)
			}
			if len(reg.F) != len(ref.F) {
				t.Fatalf("trial %d: regimen size %d != %d", trial, len(reg.F), len(ref.F))
			}
			for s, a := range ref.F {
				b, ok := reg.F[s]
				if !ok || len(a) != len(b) {
					t.Fatalf("trial %d: state %b assignment mismatch", trial, s)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Errorf("trial %d: state %b machine %d: %d vs %d", trial, s, i, b[i], a[i])
					}
				}
			}
			if st.Assignments != refStats.Assignments || st.Pruned != refStats.Pruned ||
				st.Transitions != refStats.Transitions || st.ClosedForm != refStats.ClosedForm {
				t.Errorf("trial %d: workers=%d stats %+v != %+v", trial, w, st, refStats)
			}
		}
	}
}

// chains20 is the ISSUE acceptance instance: 20 jobs in 4 chains of 5,
// 4 machines, heterogeneous probabilities.
func chains20() *model.Instance {
	in := model.New(20, 4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			in.P[i][j] = 0.1 + 0.85*rng.Float64()
		}
	}
	for c := 0; c < 4; c++ {
		for k := 0; k < 4; k++ {
			in.Prec.MustEdge(c*5+k, c*5+k+1)
		}
	}
	return in
}

// TestValueIterationChains20 proves the pushed frontier: a 20-job
// chains instance (m=4) — far beyond the oracle's reach — solves to
// optimality in seconds single-core, and the returned regimen
// evaluates exactly to the reported optimum.
func TestValueIterationChains20(t *testing.T) {
	in := chains20()
	start := time.Now()
	reg, v, st, err := OptimalRegimenParallel(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("20-job chains solve took %v, want <5s single-core", el)
	}
	if math.IsInf(v, 1) || v <= 0 {
		t.Fatalf("optimal value %v not finite positive", v)
	}
	if want := 6 * 6 * 6 * 6; st.States != want {
		t.Errorf("states=%d, want 6^4=%d", st.States, want)
	}
	ev, err := ExactRegimen(in, reg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev-v) > 1e-12*v {
		t.Errorf("returned regimen evaluates to %.15g, solver reported %.15g", ev, v)
	}
	// The optimum cannot beat the sum of best-machine expectations on
	// the longest chain (a crude lower bound) and must beat a greedy
	// freeze (an upper bound).
	greedy, err := GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
		a := make(sched.Assignment, in.M)
		for i := range a {
			a[i] = sched.Idle
			for j, e := range elig {
				if e && (a[i] == sched.Idle || in.P[i][j] > in.P[i][a[i]]) {
					a[i] = j
				}
			}
		}
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	gv, err := ExactRegimen(in, greedy)
	if err != nil {
		t.Fatal(err)
	}
	if v > gv+1e-9 {
		t.Errorf("optimal %v exceeds greedy freeze %v", v, gv)
	}
}

// TestExactRegimenWideAntichain pins the trialed-subset evaluation at
// widths the old 2^eligible sum could not touch: 17 independent jobs
// (131072 states) evaluate in well under a second.
func TestExactRegimenWideAntichain(t *testing.T) {
	in := model.New(17, 2)
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			in.P[i][j] = 0.5
		}
	}
	// Every machine on the lowest eligible job.
	reg, err := GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
		a := make(sched.Assignment, in.M)
		for i := range a {
			a[i] = sched.Idle
		}
		for j, e := range elig {
			if e {
				for i := range a {
					a[i] = j
				}
				break
			}
		}
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ExactRegimen(in, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Both machines gang one job at a time: q = 1-(1-.5)^2 = .75, so
	// E = 17/.75.
	want := 17 / 0.75
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("sequential gang value %v, want %v", v, want)
	}
}
