package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. labels may be nil (job
// indices are used) or provide one display label per vertex.
func (d *DAG) DOT(name string, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for v := 0; v < d.n; v++ {
		label := fmt.Sprint(v)
		if labels != nil && v < len(labels) {
			label = labels[v]
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for u := 0; u < d.n; u++ {
		for _, v := range d.succs[u] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOTDecomposition renders the graph with its chain decomposition:
// blocks become clusters, chain edges are bold.
func (d *DAG) DOTDecomposition(name string, dc *Decomposition) string {
	inChain := make(map[[2]int]bool)
	for _, blk := range dc.Blocks {
		for _, chain := range blk.Chains {
			for k := 0; k+1 < len(chain); k++ {
				inChain[[2]int{chain[k], chain[k+1]}] = true
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for bi, blk := range dc.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"block %d\";\n", bi, bi)
		for _, chain := range blk.Chains {
			for _, v := range chain {
				fmt.Fprintf(&b, "    n%d [label=\"%d\"];\n", v, v)
			}
		}
		b.WriteString("  }\n")
	}
	for u := 0; u < d.n; u++ {
		for _, v := range d.succs[u] {
			if inChain[[2]int{u, v}] {
				fmt.Fprintf(&b, "  n%d -> n%d [penwidth=2];\n", u, v)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", u, v)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
