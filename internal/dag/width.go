package dag

// Width returns the width of the dag: the size of a maximum antichain
// (largest set of pairwise incomparable vertices). By Dilworth's
// theorem this equals the minimum number of chains needed to cover the
// vertex set of the comparability order; the minimum chain cover of
// the transitive closure is n minus a maximum bipartite matching in
// the closure's split graph, computed here with Kuhn's augmenting-path
// algorithm. Requires acyclicity. O(n·E_closure) time.
//
// Malewicz (2005) showed SUU is solvable in polynomial time when both
// the width and m are constants, and NP-hard otherwise; Width is used
// by the experiment drivers to report instance difficulty.
func (d *DAG) Width() int {
	if d.n == 0 {
		return 0
	}
	reach := d.TransitiveClosure()
	// Bipartite graph: left copy u -- right copy v iff u can reach v.
	matchR := make([]int, d.n) // matchR[v] = left vertex matched to right v
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]bool, d.n)
	var try func(u int) bool
	try = func(u int) bool {
		for v := 0; v < d.n; v++ {
			if !reach[u][v] || visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	matching := 0
	for u := 0; u < d.n; u++ {
		for i := range visited {
			visited[i] = false
		}
		if try(u) {
			matching++
		}
	}
	return d.n - matching
}

// MinChainCover returns a partition of the vertices into the minimum
// number of chains of the comparability order (paths in the transitive
// closure). The chains returned are vertex-disjoint and each is listed
// in precedence order. Requires acyclicity.
func (d *DAG) MinChainCover() [][]int {
	if d.n == 0 {
		return nil
	}
	reach := d.TransitiveClosure()
	matchR := make([]int, d.n)
	matchL := make([]int, d.n)
	for i := range matchR {
		matchR[i] = -1
		matchL[i] = -1
	}
	visited := make([]bool, d.n)
	var try func(u int) bool
	try = func(u int) bool {
		for v := 0; v < d.n; v++ {
			if !reach[u][v] || visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchR[v] = u
				matchL[u] = v
				return true
			}
		}
		return false
	}
	for u := 0; u < d.n; u++ {
		for i := range visited {
			visited[i] = false
		}
		try(u)
	}
	// Chain heads are vertices not matched on the right side.
	var chains [][]int
	for v := 0; v < d.n; v++ {
		if matchR[v] != -1 {
			continue
		}
		chain := []int{v}
		u := v
		for matchL[u] != -1 {
			u = matchL[u]
			chain = append(chain, u)
		}
		chains = append(chains, chain)
	}
	return chains
}
