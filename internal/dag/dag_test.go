package dag

import (
	"math/rand"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	d := New(3)
	if err := d.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := d.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := d.AddEdge(1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatalf("duplicate edge errored: %v", err)
	}
	if d.E() != 1 {
		t.Errorf("E=%d after duplicate insert, want 1", d.E())
	}
}

func TestTopoOrderAndCycles(t *testing.T) {
	d := New(4)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	d.MustEdge(2, 3)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 4; u++ {
		for _, v := range d.Succs(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violated: %d before %d", v, u)
			}
		}
	}

	c := New(3)
	c.MustEdge(0, 1)
	c.MustEdge(1, 2)
	c.MustEdge(2, 0)
	if _, err := c.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if c.IsAcyclic() {
		t.Error("IsAcyclic true on cycle")
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted cycle")
	}
}

func TestDepthAndLevels(t *testing.T) {
	d := New(6)
	// 0->1->2, 0->3, 4 isolated, 3->5
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	d.MustEdge(0, 3)
	d.MustEdge(3, 5)
	if got := d.Depth(); got != 3 {
		t.Errorf("Depth=%d, want 3", got)
	}
	lvl := d.Levels()
	want := []int{0, 1, 2, 1, 0, 2}
	for v, w := range want {
		if lvl[v] != w {
			t.Errorf("Levels[%d]=%d, want %d", v, lvl[v], w)
		}
	}
	if New(0).Depth() != 0 {
		t.Error("empty graph depth nonzero")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	d := New(5)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	d.MustEdge(3, 2)
	anc := d.Ancestors(2)
	for v, want := range []bool{true, true, false, true, false} {
		if anc[v] != want {
			t.Errorf("Ancestors(2)[%d]=%v, want %v", v, anc[v], want)
		}
	}
	des := d.Descendants(0)
	for v, want := range []bool{false, true, true, false, false} {
		if des[v] != want {
			t.Errorf("Descendants(0)[%d]=%v, want %v", v, des[v], want)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	d := New(4)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	reach := d.TransitiveClosure()
	if !reach[0][2] || !reach[0][1] || !reach[1][2] {
		t.Error("missing reachability")
	}
	if reach[2][0] || reach[0][3] || reach[0][0] {
		t.Error("spurious reachability")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		build func() *DAG
		want  Class
	}{
		{"independent", func() *DAG { return New(4) }, ClassIndependent},
		{"chains", func() *DAG {
			d := New(5)
			d.MustEdge(0, 1)
			d.MustEdge(1, 2)
			d.MustEdge(3, 4)
			return d
		}, ClassChains},
		{"out-forest", func() *DAG {
			d := New(4)
			d.MustEdge(0, 1)
			d.MustEdge(0, 2)
			d.MustEdge(2, 3)
			return d
		}, ClassOutForest},
		{"in-forest", func() *DAG {
			d := New(4)
			d.MustEdge(1, 0)
			d.MustEdge(2, 0)
			d.MustEdge(3, 2)
			return d
		}, ClassInForest},
		{"mixed-forest", func() *DAG {
			d := New(7)
			d.MustEdge(0, 1) // out-tree component
			d.MustEdge(0, 2)
			d.MustEdge(4, 3) // in-tree component
			d.MustEdge(5, 3)
			d.MustEdge(6, 4)
			d.MustEdge(6, 5) // makes comp {3,4,5,6} a diamond: NOT a forest
			return d
		}, ClassGeneral},
		{"true-mixed-forest", func() *DAG {
			d := New(6)
			d.MustEdge(0, 1)
			d.MustEdge(0, 2) // out-tree
			d.MustEdge(3, 5)
			d.MustEdge(4, 5) // in-tree
			return d
		}, ClassMixedForest},
		{"general-dag", func() *DAG {
			d := New(4)
			d.MustEdge(0, 1)
			d.MustEdge(0, 2)
			d.MustEdge(1, 3)
			d.MustEdge(2, 3)
			return d
		}, ClassGeneral},
	}
	for _, tc := range cases {
		if got := tc.build().Classify(); got != tc.want {
			t.Errorf("%s: Classify=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChains(t *testing.T) {
	d := New(6)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	d.MustEdge(3, 4)
	chains, err := d.Chains()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("got %d chains, want 3 (two chains + isolated 5)", len(chains))
	}
	bad := New(3)
	bad.MustEdge(0, 2)
	bad.MustEdge(1, 2)
	if _, err := bad.Chains(); err == nil {
		t.Error("Chains accepted a non-chain dag")
	}
}

func TestWidthSmall(t *testing.T) {
	cases := []struct {
		name  string
		build func() *DAG
		want  int
	}{
		{"antichain", func() *DAG { return New(5) }, 5},
		{"single-chain", func() *DAG {
			d := New(4)
			d.MustEdge(0, 1)
			d.MustEdge(1, 2)
			d.MustEdge(2, 3)
			return d
		}, 1},
		{"two-chains", func() *DAG {
			d := New(4)
			d.MustEdge(0, 1)
			d.MustEdge(2, 3)
			return d
		}, 2},
		{"diamond", func() *DAG {
			d := New(4)
			d.MustEdge(0, 1)
			d.MustEdge(0, 2)
			d.MustEdge(1, 3)
			d.MustEdge(2, 3)
			return d
		}, 2},
		{"star-out", func() *DAG {
			d := New(5)
			for v := 1; v < 5; v++ {
				d.MustEdge(0, v)
			}
			return d
		}, 4},
	}
	for _, tc := range cases {
		if got := tc.build().Width(); got != tc.want {
			t.Errorf("%s: Width=%d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMinChainCoverMatchesWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9)
		d := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					d.MustEdge(u, v)
				}
			}
		}
		cover := d.MinChainCover()
		if len(cover) != d.Width() {
			t.Fatalf("trial %d: |cover|=%d != width=%d", trial, len(cover), d.Width())
		}
		seen := make([]bool, n)
		reach := d.TransitiveClosure()
		for _, ch := range cover {
			for k, v := range ch {
				if seen[v] {
					t.Fatalf("vertex %d covered twice", v)
				}
				seen[v] = true
				if k > 0 && !reach[ch[k-1]][v] {
					t.Fatalf("cover chain not a chain: %d -/-> %d", ch[k-1], v)
				}
			}
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("vertex %d uncovered", v)
			}
		}
	}
}

func TestReverse(t *testing.T) {
	d := New(3)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	r := d.Reverse()
	if r.OutDeg(2) != 1 || r.InDeg(0) != 1 || r.E() != 2 {
		t.Error("Reverse wrong structure")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(3)
	d.MustEdge(0, 1)
	c := d.Clone()
	c.MustEdge(1, 2)
	if d.E() != 1 || c.E() != 2 {
		t.Error("Clone shares storage")
	}
}
