package dag

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	d := New(3)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	out := d.DOT("g", nil)
	for _, want := range []string{"digraph", "n0 -> n1", "n1 -> n2", `label="2"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	labeled := d.DOT("g", []string{"a", "b", "c"})
	if !strings.Contains(labeled, `label="a"`) {
		t.Error("labels ignored")
	}
}

func TestDOTDecomposition(t *testing.T) {
	d := New(4)
	d.MustEdge(0, 1)
	d.MustEdge(0, 2)
	d.MustEdge(2, 3)
	dc := d.ChainDecomposition()
	out := d.DOTDecomposition("g", dc)
	if !strings.Contains(out, "cluster_0") {
		t.Errorf("no clusters:\n%s", out)
	}
	// A path graph yields a genuine multi-vertex chain, rendered bold.
	p := New(3)
	p.MustEdge(0, 1)
	p.MustEdge(1, 2)
	out2 := p.DOTDecomposition("path", p.ChainDecomposition())
	if !strings.Contains(out2, "penwidth=2") {
		t.Errorf("no chain edges marked:\n%s", out2)
	}
}
