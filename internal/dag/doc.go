// Package dag implements the directed acyclic precedence graphs used
// by the SUU scheduling algorithms: construction and validation,
// topological orders, reachability, dag width (maximum antichain, via
// Dilworth's theorem and bipartite matching), longest-path depth,
// structural classification (independent / chains / out-forest /
// in-forest / underlying forest), and the chain decompositions of
// Section 4.2 of Lin & Rajaraman (SPAA 2007).
package dag
