package dag

import (
	"fmt"
	"sort"
)

// Block is one element of a chain decomposition: a set of vertex-
// disjoint directed chains with no precedence constraints between
// distinct chains of the same block.
type Block struct {
	// Chains lists each chain as vertices in precedence order.
	Chains [][]int
}

// Jobs returns all vertices of the block, in chain order.
func (b Block) Jobs() []int {
	var js []int
	for _, c := range b.Chains {
		js = append(js, c...)
	}
	return js
}

// Decomposition is an ordered partition of the vertex set into blocks
// satisfying the properties of Section 4.2 of the paper (after Kumar,
// Marathe, Parthasarathy & Srinivasan):
//
//	(i)  each block induces vertex-disjoint directed chains;
//	(ii) if u is an ancestor of v then u's block precedes v's block,
//	     or they share a block and a chain with u earlier in the chain.
//
// Scheduling the blocks sequentially (each block with the disjoint-
// chains algorithm) therefore respects all precedence constraints.
type Decomposition struct {
	Blocks []Block
	// Method records which construction produced the decomposition:
	// "trivial", "chains", "rank-out", "rank-in", "per-component",
	// or "level" (the fallback for general dags).
	Method string
}

// Width returns the number of blocks.
func (dc *Decomposition) Width() int { return len(dc.Blocks) }

// Validate checks properties (i) and (ii) against the dag d, plus that
// the blocks exactly partition the vertex set. Intended for tests and
// defensive checks; O(n²).
func (dc *Decomposition) Validate(d *DAG) error {
	blockOf := make([]int, d.n)
	chainOf := make([]int, d.n)
	posOf := make([]int, d.n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	chainID := 0
	for bi, b := range dc.Blocks {
		for _, chain := range b.Chains {
			for pos, v := range chain {
				if v < 0 || v >= d.n {
					return fmt.Errorf("dag: decomposition vertex %d out of range", v)
				}
				if blockOf[v] != -1 {
					return fmt.Errorf("dag: vertex %d appears twice in decomposition", v)
				}
				blockOf[v] = bi
				chainOf[v] = chainID
				posOf[v] = pos
			}
			chainID++
		}
	}
	for v := 0; v < d.n; v++ {
		if blockOf[v] == -1 {
			return fmt.Errorf("dag: vertex %d missing from decomposition", v)
		}
	}
	// (i): consecutive chain vertices must be comparable u ≺ v; within
	// a chain we additionally require an actual edge-path, which the
	// transitive closure certifies.
	reach := d.TransitiveClosure()
	for _, b := range dc.Blocks {
		for _, chain := range b.Chains {
			for k := 0; k+1 < len(chain); k++ {
				if !reach[chain[k]][chain[k+1]] {
					return fmt.Errorf("dag: chain order violated between %d and %d", chain[k], chain[k+1])
				}
			}
		}
	}
	// (ii): ancestor ordering across blocks/chains.
	for u := 0; u < d.n; u++ {
		for v := 0; v < d.n; v++ {
			if !reach[u][v] {
				continue
			}
			switch {
			case blockOf[u] < blockOf[v]:
			case blockOf[u] == blockOf[v] && chainOf[u] == chainOf[v] && posOf[u] < posOf[v]:
			default:
				return fmt.Errorf("dag: property (ii) violated for ancestor %d of %d", u, v)
			}
		}
	}
	return nil
}

// ChainDecomposition computes an ordered chain decomposition of the
// graph, choosing the strongest applicable construction:
//
//   - independent jobs: a single block of singleton chains;
//   - disjoint chains: a single block holding the chains;
//   - out-forests / in-forests: the rank decomposition
//     (rank(v) = ⌊log₂ size(v)⌋ over descendant counts), giving at most
//     ⌈log₂ n⌉+1 blocks — the forest case of Lemma 4.6;
//   - mixed forests (each weak component an out- or in-tree): each
//     component decomposed independently, blocks merged index-wise
//     (valid since components share no precedence constraints);
//   - anything else: the level decomposition — block k holds the
//     vertices at longest-path depth k as singleton chains. This is a
//     correct decomposition of any dag with width = Depth(); it is the
//     documented fallback (no polylog guarantee from the paper).
//
// Requires acyclicity.
func (d *DAG) ChainDecomposition() *Decomposition {
	switch d.Classify() {
	case ClassIndependent:
		b := Block{}
		for v := 0; v < d.n; v++ {
			b.Chains = append(b.Chains, []int{v})
		}
		return &Decomposition{Blocks: []Block{b}, Method: "trivial"}
	case ClassChains:
		chains, err := d.Chains()
		if err != nil {
			panic(err) // unreachable: Classify guaranteed chain degrees
		}
		return &Decomposition{Blocks: []Block{{Chains: chains}}, Method: "chains"}
	case ClassOutForest:
		return &Decomposition{Blocks: d.rankBlocksOut(), Method: "rank-out"}
	case ClassInForest:
		rev := d.Reverse()
		blocks := rev.rankBlocksOut()
		// Reverse both block order and every chain to restore direction.
		out := make([]Block, 0, len(blocks))
		for i := len(blocks) - 1; i >= 0; i-- {
			nb := Block{}
			for _, c := range blocks[i].Chains {
				rc := make([]int, len(c))
				for k, v := range c {
					rc[len(c)-1-k] = v
				}
				nb.Chains = append(nb.Chains, rc)
			}
			out = append(out, nb)
		}
		return &Decomposition{Blocks: out, Method: "rank-in"}
	case ClassMixedForest:
		comps, _ := d.forestComponents()
		var merged []Block
		for _, comp := range comps {
			sub, mapping := d.inducedSubgraph(comp)
			blocks := (&Decomposition{}).relabel(sub.ChainDecomposition().Blocks, mapping)
			for i, b := range blocks {
				if i >= len(merged) {
					merged = append(merged, Block{})
				}
				merged[i].Chains = append(merged[i].Chains, b.Chains...)
			}
		}
		return &Decomposition{Blocks: merged, Method: "per-component"}
	default:
		lvl := d.Levels()
		depth := 0
		for _, l := range lvl {
			if l+1 > depth {
				depth = l + 1
			}
		}
		blocks := make([]Block, depth)
		for v := 0; v < d.n; v++ {
			blocks[lvl[v]].Chains = append(blocks[lvl[v]].Chains, []int{v})
		}
		return &Decomposition{Blocks: blocks, Method: "level"}
	}
}

// relabel maps block chain vertices through mapping (sub index ->
// original index).
func (*Decomposition) relabel(blocks []Block, mapping []int) []Block {
	out := make([]Block, len(blocks))
	for i, b := range blocks {
		for _, c := range b.Chains {
			nc := make([]int, len(c))
			for k, v := range c {
				nc[k] = mapping[v]
			}
			out[i].Chains = append(out[i].Chains, nc)
		}
	}
	return out
}

// inducedSubgraph returns the subgraph induced by verts together with
// the mapping from subgraph indices back to original indices.
func (d *DAG) inducedSubgraph(verts []int) (*DAG, []int) {
	idx := make(map[int]int, len(verts))
	mapping := make([]int, len(verts))
	for k, v := range verts {
		idx[v] = k
		mapping[k] = v
	}
	sub := New(len(verts))
	for _, u := range verts {
		for _, v := range d.succs[u] {
			if j, ok := idx[v]; ok {
				sub.MustEdge(idx[u], j)
			}
		}
	}
	return sub, mapping
}

// rankBlocksOut builds the rank decomposition of an out-forest:
// size(v) = number of descendants including v; rank(v) = ⌊log₂ size(v)⌋.
// Along any root→leaf path ranks are non-increasing, and at most one
// child of v shares v's rank (two children of rank r would give
// size(v) ≥ 2·2^r). Equal-rank vertices therefore form vertex-disjoint
// chains, and emitting blocks in decreasing rank order satisfies
// properties (i) and (ii) with at most ⌊log₂ n⌋+1 blocks.
func (d *DAG) rankBlocksOut() []Block {
	order, err := d.TopoOrder()
	if err != nil {
		panic("dag: rank decomposition on cyclic graph")
	}
	size := make([]int, d.n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		size[u] = 1
		for _, v := range d.succs[u] {
			size[u] += size[v]
		}
	}
	rank := make([]int, d.n)
	maxRank := 0
	for v := 0; v < d.n; v++ {
		r := 0
		for s := size[v]; s > 1; s >>= 1 {
			r++
		}
		rank[v] = r
		if r > maxRank {
			maxRank = r
		}
	}
	// Build chains: follow the unique same-rank child, starting from
	// vertices whose parent (if any) has a strictly larger rank.
	blocks := make([]Block, maxRank+1)
	for v := 0; v < d.n; v++ {
		isHead := true
		if len(d.preds[v]) == 1 && rank[d.preds[v][0]] == rank[v] {
			isHead = false
		}
		if !isHead {
			continue
		}
		chain := []int{v}
		u := v
		for {
			next := -1
			for _, w := range d.succs[u] {
				if rank[w] == rank[u] {
					next = w
					break
				}
			}
			if next == -1 {
				break
			}
			chain = append(chain, next)
			u = next
		}
		// Block order: decreasing rank (roots first).
		bi := maxRank - rank[v]
		blocks[bi].Chains = append(blocks[bi].Chains, chain)
	}
	// Drop empty blocks (possible when some rank value is unused).
	out := blocks[:0]
	for _, b := range blocks {
		if len(b.Chains) > 0 {
			sort.Slice(b.Chains, func(i, j int) bool { return b.Chains[i][0] < b.Chains[j][0] })
			out = append(out, b)
		}
	}
	res := make([]Block, len(out))
	copy(res, out)
	return res
}
