package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecompositionIndependent(t *testing.T) {
	d := New(4)
	dc := d.ChainDecomposition()
	if dc.Method != "trivial" || dc.Width() != 1 {
		t.Fatalf("method=%q width=%d, want trivial/1", dc.Method, dc.Width())
	}
	if err := dc.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionChains(t *testing.T) {
	d := New(5)
	d.MustEdge(0, 1)
	d.MustEdge(1, 2)
	d.MustEdge(3, 4)
	dc := d.ChainDecomposition()
	if dc.Method != "chains" || dc.Width() != 1 {
		t.Fatalf("method=%q width=%d, want chains/1", dc.Method, dc.Width())
	}
	if err := dc.Validate(d); err != nil {
		t.Fatal(err)
	}
}

// randomOutTree builds a uniformly random recursive out-tree on n nodes.
func randomOutTree(n int, rng *rand.Rand) *DAG {
	d := New(n)
	for v := 1; v < n; v++ {
		d.MustEdge(rng.Intn(v), v)
	}
	return d
}

func TestRankDecompositionOutTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		d := randomOutTree(n, rng)
		dc := d.ChainDecomposition()
		if err := dc.Validate(d); err != nil {
			t.Fatalf("n=%d trial=%d: %v", n, trial, err)
		}
		bound := int(math.Floor(math.Log2(float64(n)))) + 1
		if dc.Width() > bound {
			t.Errorf("n=%d: width %d exceeds log bound %d", n, dc.Width(), bound)
		}
	}
}

func TestRankDecompositionInTree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		d := randomOutTree(n, rng).Reverse()
		if n > 1 && d.Classify() != ClassInForest {
			t.Fatalf("reverse of out-tree not in-forest: %v", d.Classify())
		}
		dc := d.ChainDecomposition()
		if err := dc.Validate(d); err != nil {
			t.Fatalf("n=%d trial=%d: %v", n, trial, err)
		}
		bound := int(math.Floor(math.Log2(float64(n)))) + 1
		if dc.Width() > bound {
			t.Errorf("n=%d: width %d exceeds log bound %d", n, dc.Width(), bound)
		}
	}
}

func TestMixedForestDecomposition(t *testing.T) {
	// Component A: out-tree on {0..3}; component B: in-tree on {4..6}.
	d := New(7)
	d.MustEdge(0, 1)
	d.MustEdge(0, 2)
	d.MustEdge(2, 3)
	d.MustEdge(4, 6)
	d.MustEdge(5, 6)
	if d.Classify() != ClassMixedForest {
		t.Fatalf("Classify=%v, want mixed-forest", d.Classify())
	}
	dc := d.ChainDecomposition()
	if dc.Method != "per-component" {
		t.Errorf("method=%q", dc.Method)
	}
	if err := dc.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestLevelFallbackGeneralDag(t *testing.T) {
	d := New(4)
	d.MustEdge(0, 1)
	d.MustEdge(0, 2)
	d.MustEdge(1, 3)
	d.MustEdge(2, 3)
	dc := d.ChainDecomposition()
	if dc.Method != "level" {
		t.Fatalf("method=%q, want level", dc.Method)
	}
	if dc.Width() != d.Depth() {
		t.Errorf("level width %d != depth %d", dc.Width(), d.Depth())
	}
	if err := dc.Validate(d); err != nil {
		t.Fatal(err)
	}
}

// Property: every decomposition of any random dag validates.
func TestDecompositionAlwaysValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64, nRaw uint8, p uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%25
		prob := float64(p%90)/100.0 + 0.05
		d := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < prob {
					d.MustEdge(u, v)
				}
			}
		}
		return d.ChainDecomposition().Validate(d) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: rank decomposition of random forests (mix of out and in
// components) validates and respects the log-width bound per component
// count.
func TestRandomMixedForests(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		nc := 1 + rng.Intn(4)
		total := 0
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(15)
			total += sizes[i]
		}
		d := New(total)
		base := 0
		for i := 0; i < nc; i++ {
			inTree := rng.Intn(2) == 0
			for v := 1; v < sizes[i]; v++ {
				p := base + rng.Intn(v)
				c := base + v
				if inTree {
					d.MustEdge(c, p)
				} else {
					d.MustEdge(p, c)
				}
			}
			base += sizes[i]
		}
		dc := d.ChainDecomposition()
		if err := dc.Validate(d); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBlockJobs(t *testing.T) {
	b := Block{Chains: [][]int{{0, 1}, {2}}}
	js := b.Jobs()
	if len(js) != 3 || js[0] != 0 || js[1] != 1 || js[2] != 2 {
		t.Errorf("Jobs=%v", js)
	}
}

func TestValidateCatchesBrokenDecompositions(t *testing.T) {
	d := New(3)
	d.MustEdge(0, 1)
	// Missing vertex.
	bad := &Decomposition{Blocks: []Block{{Chains: [][]int{{0, 1}}}}}
	if bad.Validate(d) == nil {
		t.Error("missing vertex accepted")
	}
	// Duplicate vertex.
	bad = &Decomposition{Blocks: []Block{{Chains: [][]int{{0, 1}, {1, 2}}}}}
	if bad.Validate(d) == nil {
		t.Error("duplicate vertex accepted")
	}
	// Precedence violated across blocks (1 before 0).
	bad = &Decomposition{Blocks: []Block{
		{Chains: [][]int{{1}, {2}}},
		{Chains: [][]int{{0}}},
	}}
	if bad.Validate(d) == nil {
		t.Error("order violation accepted")
	}
	// Same block, different chains, but 0 ≺ 1.
	bad = &Decomposition{Blocks: []Block{{Chains: [][]int{{0}, {1}, {2}}}}}
	if bad.Validate(d) == nil {
		t.Error("same-block cross-chain precedence accepted")
	}
	// Correct one passes.
	good := &Decomposition{Blocks: []Block{{Chains: [][]int{{0, 1}, {2}}}}}
	if err := good.Validate(d); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
}
