package dag

import "testing"

// FuzzChainDecomposition feeds arbitrary edge lists (upward-directed,
// hence acyclic) into the decomposition and validates properties
// (i)/(ii) plus exact partitioning. Run with `go test -fuzz
// FuzzChainDecomposition ./internal/dag` for deep exploration; the
// seed corpus runs in regular test mode.
func FuzzChainDecomposition(f *testing.F) {
	f.Add([]byte{6, 0, 1, 1, 2, 0, 3})
	f.Add([]byte{3})
	f.Add([]byte{8, 0, 1, 0, 2, 0, 3, 1, 4, 2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%20
		d := New(n)
		for k := 1; k+1 < len(data); k += 2 {
			u := int(data[k]) % n
			v := int(data[k+1]) % n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u // force edges upward: guarantees acyclicity
			}
			d.MustEdge(u, v)
		}
		dc := d.ChainDecomposition()
		if err := dc.Validate(d); err != nil {
			t.Fatalf("n=%d edges=%d method=%s: %v", n, d.E(), dc.Method, err)
		}
	})
}

// FuzzWidthCoverAgreement checks Dilworth duality (|MinChainCover| ==
// Width) on arbitrary acyclic inputs.
func FuzzWidthCoverAgreement(f *testing.F) {
	f.Add([]byte{5, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 1 + int(data[0])%12
		d := New(n)
		for k := 1; k+1 < len(data); k += 2 {
			u := int(data[k]) % n
			v := int(data[k+1]) % n
			if u >= v {
				continue
			}
			d.MustEdge(u, v)
		}
		if len(d.MinChainCover()) != d.Width() {
			t.Fatalf("Dilworth violated on n=%d e=%d", n, d.E())
		}
	})
}
