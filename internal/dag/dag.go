package dag

import (
	"errors"
	"fmt"
	"sort"
)

// DAG is a directed graph over vertices 0..n-1 intended to be acyclic.
// Acyclicity is not enforced on every AddEdge (builders may add edges
// freely); call IsAcyclic or Validate before relying on dag-only
// operations. Methods that require acyclicity say so.
type DAG struct {
	n     int
	succs [][]int // succs[u] = out-neighbours of u
	preds [][]int // preds[v] = in-neighbours of v
	edges int
}

// New returns an edgeless graph with n vertices.
func New(n int) *DAG {
	if n < 0 {
		panic("dag: negative vertex count")
	}
	return &DAG{
		n:     n,
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
}

// N returns the number of vertices.
func (d *DAG) N() int { return d.n }

// E returns the number of edges.
func (d *DAG) E() int { return d.edges }

// AddEdge inserts the precedence edge u -> v ("u before v").
// Duplicate edges are ignored; self loops are rejected.
func (d *DAG) AddEdge(u, v int) error {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("dag: self loop at %d", u)
	}
	for _, w := range d.succs[u] {
		if w == v {
			return nil
		}
	}
	d.succs[u] = append(d.succs[u], v)
	d.preds[v] = append(d.preds[v], u)
	d.edges++
	return nil
}

// MustEdge is AddEdge that panics on error, for use in tests and
// literal construction of known-good graphs.
func (d *DAG) MustEdge(u, v int) {
	if err := d.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Succs returns the out-neighbours of u. The slice is shared; callers
// must not modify it.
func (d *DAG) Succs(u int) []int { return d.succs[u] }

// Preds returns the in-neighbours of v. The slice is shared; callers
// must not modify it.
func (d *DAG) Preds(v int) []int { return d.preds[v] }

// InDeg returns the in-degree of v.
func (d *DAG) InDeg(v int) int { return len(d.preds[v]) }

// OutDeg returns the out-degree of u.
func (d *DAG) OutDeg(u int) int { return len(d.succs[u]) }

// Clone returns a deep copy.
func (d *DAG) Clone() *DAG {
	c := New(d.n)
	for u, ss := range d.succs {
		for _, v := range ss {
			c.MustEdge(u, v)
		}
	}
	return c
}

// Reverse returns the graph with every edge direction flipped.
func (d *DAG) Reverse() *DAG {
	r := New(d.n)
	for u, ss := range d.succs {
		for _, v := range ss {
			r.MustEdge(v, u)
		}
	}
	return r
}

// TopoOrder returns a topological order of the vertices (Kahn's
// algorithm, smallest-index-first for determinism) or an error if the
// graph has a cycle.
func (d *DAG) TopoOrder() ([]int, error) {
	indeg := make([]int, d.n)
	for v := 0; v < d.n; v++ {
		indeg[v] = len(d.preds[v])
	}
	// Min-heap behaviour via sorted frontier keeps orders deterministic.
	frontier := make([]int, 0, d.n)
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	order := make([]int, 0, d.n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range d.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != d.n {
		return nil, errors.New("dag: graph contains a cycle")
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (d *DAG) IsAcyclic() bool {
	_, err := d.TopoOrder()
	return err == nil
}

// Roots returns the vertices with in-degree zero, in index order.
func (d *DAG) Roots() []int {
	var rs []int
	for v := 0; v < d.n; v++ {
		if len(d.preds[v]) == 0 {
			rs = append(rs, v)
		}
	}
	return rs
}

// Leaves returns the vertices with out-degree zero, in index order.
func (d *DAG) Leaves() []int {
	var ls []int
	for v := 0; v < d.n; v++ {
		if len(d.succs[v]) == 0 {
			ls = append(ls, v)
		}
	}
	return ls
}

// Depth returns the number of vertices on a longest directed path
// (so an edgeless graph has depth 1). Requires acyclicity.
func (d *DAG) Depth() int {
	order, err := d.TopoOrder()
	if err != nil {
		panic("dag: Depth on cyclic graph")
	}
	depth := make([]int, d.n)
	best := 0
	for _, u := range order {
		if depth[u] == 0 {
			depth[u] = 1
		}
		if depth[u] > best {
			best = depth[u]
		}
		for _, v := range d.succs[u] {
			if depth[u]+1 > depth[v] {
				depth[v] = depth[u] + 1
			}
		}
	}
	if d.n == 0 {
		return 0
	}
	return best
}

// Levels returns, for every vertex, its longest-path depth from any
// root (roots have level 0). Requires acyclicity.
func (d *DAG) Levels() []int {
	order, err := d.TopoOrder()
	if err != nil {
		panic("dag: Levels on cyclic graph")
	}
	lvl := make([]int, d.n)
	for _, u := range order {
		for _, v := range d.succs[u] {
			if lvl[u]+1 > lvl[v] {
				lvl[v] = lvl[u] + 1
			}
		}
	}
	return lvl
}

// Ancestors returns the set of vertices from which v is reachable
// (excluding v itself) as a boolean mask.
func (d *DAG) Ancestors(v int) []bool {
	seen := make([]bool, d.n)
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.preds[u] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Descendants returns the set of vertices reachable from v (excluding
// v itself) as a boolean mask.
func (d *DAG) Descendants(v int) []bool {
	seen := make([]bool, d.n)
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range d.succs[u] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// TransitiveClosure returns reach[u][v] = true iff there is a directed
// path from u to v (u != v). Requires acyclicity. O(n·(n+e)).
func (d *DAG) TransitiveClosure() [][]bool {
	order, err := d.TopoOrder()
	if err != nil {
		panic("dag: TransitiveClosure on cyclic graph")
	}
	reach := make([][]bool, d.n)
	for i := range reach {
		reach[i] = make([]bool, d.n)
	}
	// Process in reverse topological order so successors are complete.
	for idx := len(order) - 1; idx >= 0; idx-- {
		u := order[idx]
		for _, v := range d.succs[u] {
			reach[u][v] = true
			for w := 0; w < d.n; w++ {
				if reach[v][w] {
					reach[u][w] = true
				}
			}
		}
	}
	return reach
}

// Class describes the structural family of a precedence dag, matching
// the cases analysed in the paper.
type Class int

const (
	// ClassIndependent: no edges (Section 3, SUU-I).
	ClassIndependent Class = iota
	// ClassChains: disjoint directed chains (Section 4.1, SUU-C).
	ClassChains
	// ClassOutForest: every vertex has in-degree <= 1 (out-trees).
	ClassOutForest
	// ClassInForest: every vertex has out-degree <= 1 (in-trees).
	ClassInForest
	// ClassMixedForest: underlying undirected graph is a forest whose
	// connected components are each an out-tree or an in-tree.
	ClassMixedForest
	// ClassGeneral: anything else (handled by the level-decomposition
	// fallback; no polylog guarantee from the paper).
	ClassGeneral
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIndependent:
		return "independent"
	case ClassChains:
		return "chains"
	case ClassOutForest:
		return "out-forest"
	case ClassInForest:
		return "in-forest"
	case ClassMixedForest:
		return "mixed-forest"
	case ClassGeneral:
		return "general"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify returns the most specific Class the graph belongs to.
// Requires acyclicity.
func (d *DAG) Classify() Class {
	if d.edges == 0 {
		return ClassIndependent
	}
	chains, out, in := true, true, true
	for v := 0; v < d.n; v++ {
		if len(d.preds[v]) > 1 {
			chains = false
			out = false
		}
		if len(d.succs[v]) > 1 {
			chains = false
			in = false
		}
	}
	switch {
	case chains:
		return ClassChains
	case out:
		return ClassOutForest
	case in:
		return ClassInForest
	}
	if comps, ok := d.forestComponents(); ok {
		mixed := true
		for _, comp := range comps {
			if !d.isOutTree(comp) && !d.isInTree(comp) {
				mixed = false
				break
			}
		}
		if mixed {
			return ClassMixedForest
		}
	}
	return ClassGeneral
}

// forestComponents returns the weakly connected components if the
// underlying undirected graph is a forest (no undirected cycle, no
// parallel opposite edges), else ok=false.
func (d *DAG) forestComponents() ([][]int, bool) {
	comp := make([]int, d.n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for s := 0; s < d.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		var verts []int
		stack := []int{s}
		comp[s] = id
		edgesInComp := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			verts = append(verts, u)
			edgesInComp += len(d.succs[u])
			for _, v := range d.succs[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
			for _, v := range d.preds[u] {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		if edgesInComp != len(verts)-1 {
			return nil, false // undirected cycle inside the component
		}
		sort.Ints(verts)
		comps = append(comps, verts)
	}
	return comps, true
}

func (d *DAG) isOutTree(verts []int) bool {
	for _, v := range verts {
		if len(d.preds[v]) > 1 {
			return false
		}
	}
	return true
}

func (d *DAG) isInTree(verts []int) bool {
	for _, v := range verts {
		if len(d.succs[v]) > 1 {
			return false
		}
	}
	return true
}

// Chains decomposes a ClassChains (or ClassIndependent) graph into its
// maximal directed chains, each a slice of vertices in precedence
// order. Isolated vertices become singleton chains. Returns an error
// if some vertex has in- or out-degree above one.
func (d *DAG) Chains() ([][]int, error) {
	for v := 0; v < d.n; v++ {
		if len(d.preds[v]) > 1 || len(d.succs[v]) > 1 {
			return nil, fmt.Errorf("dag: vertex %d violates chain degrees (in=%d,out=%d)",
				v, len(d.preds[v]), len(d.succs[v]))
		}
	}
	var chains [][]int
	for v := 0; v < d.n; v++ {
		if len(d.preds[v]) != 0 {
			continue // not a chain head
		}
		chain := []int{v}
		u := v
		for len(d.succs[u]) == 1 {
			u = d.succs[u][0]
			chain = append(chain, u)
		}
		chains = append(chains, chain)
	}
	return chains, nil
}

// Validate returns an error if the graph is cyclic.
func (d *DAG) Validate() error {
	if !d.IsAcyclic() {
		return errors.New("dag: graph contains a cycle")
	}
	return nil
}
