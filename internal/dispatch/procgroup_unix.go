//go:build unix

package dispatch

import (
	"os/exec"
	"syscall"
)

// setProcessGroup puts the worker in its own process group so a
// cancellation can kill the worker and everything it forked.
func setProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProcessGroup kills the worker's whole process group (negative
// pid). Falls back to killing the direct child if the group signal
// fails (the process may already be gone).
func killProcessGroup(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}
