package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"

	"suu/internal/exp"
)

// LocalExec executes jobs by forking a worker process per job — the
// classic suu-grid self-exec path refactored behind the Transport
// interface. The worker contract is owned by the caller through Args:
// given a job and an output path, it returns the argv (after the
// executable) of a process that runs the range and writes its
// envelope to the path. Workers are started in their own process
// group so cancellation kills the whole worker tree, not just the
// direct child — an orphaned grandchild holding the range hostage is
// exactly the failure mode this layer exists to remove.
type LocalExec struct {
	// ID names this runner for health scoring ("local-0").
	ID string
	// Exe is the worker executable (usually os.Executable() of the
	// coordinator binary re-invoked in worker mode).
	Exe string
	// Args builds the worker argv for a job and envelope output path.
	Args func(job Job, outPath string) []string
	// Dir is the envelope spool directory.
	Dir string

	nonce atomic.Int64
}

// Name implements Transport.
func (l *LocalExec) Name() string {
	if l.ID == "" {
		return "local"
	}
	return l.ID
}

// Healthy implements Transport: the worker binary must exist and the
// spool directory must be writable-ish (exist as a directory).
func (l *LocalExec) Healthy(context.Context) error {
	if _, err := os.Stat(l.Exe); err != nil {
		return fmt.Errorf("dispatch: worker executable: %w", err)
	}
	if fi, err := os.Stat(l.Dir); err != nil || !fi.IsDir() {
		return fmt.Errorf("dispatch: spool dir %s unusable (%v)", l.Dir, err)
	}
	return nil
}

// Close implements Transport. The spool directory is owned by the
// caller (kept or deleted with the sweep's work dir), so nothing to
// release.
func (l *LocalExec) Close() error { return nil }

// Send implements Transport: fork the worker, wait for it, read the
// envelope it wrote. On ctx cancellation the worker's whole process
// group is killed and ctx's error is returned — no orphaned workers,
// no half-written envelope trusted (a killed worker's partial file
// fails decode or checksum downstream anyway; here it is simply not
// read).
func (l *LocalExec) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	outPath := filepath.Join(l.Dir, fmt.Sprintf("%s-%d-%d-n%d.json",
		strings.ToLower(job.Plan.ID), job.Range.Lo, job.Range.Hi, l.nonce.Add(1)))
	cmd := exec.Command(l.Exe, l.Args(job, outPath)...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	setProcessGroup(cmd)

	if err := cmd.Start(); err != nil {
		return nil, transportError(job, fmt.Errorf("start worker: %w", err))
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-ctx.Done():
		killProcessGroup(cmd)
		<-done // reap; the group kill makes this prompt
		return nil, ctx.Err()
	case err := <-done:
		if err != nil {
			return nil, transportError(job, fmt.Errorf("worker %s: %v\n%s", job.Range, err, out.String()))
		}
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		return nil, transportError(job, fmt.Errorf("worker %s exited 0 but envelope is unreadable: %w", job.Range, err))
	}
	// Decode verifies the payload checksum; a truncated or bit-flipped
	// file surfaces here as a typed envelope fault, not as trusted rows.
	return decodeDelivery(job, data)
}
