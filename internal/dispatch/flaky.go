package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"suu/internal/exp"
	"suu/internal/sim"
)

// Fault names one injected fault class.
type Fault string

// The six fault classes Flaky injects, each exercising a different
// detection path in the coordinator:
const (
	// FaultDrop: the envelope never arrives (Send errors) — the
	// transport-failure path.
	FaultDrop Fault = "drop"
	// FaultDelay: the envelope arrives late — the deadline and
	// straggler paths.
	FaultDelay Fault = "delay"
	// FaultTruncate: the envelope bytes are cut short — the parse
	// path.
	FaultTruncate Fault = "truncate"
	// FaultBitFlip: a payload byte is corrupted in transit — the
	// checksum path.
	FaultBitFlip Fault = "bitflip"
	// FaultDuplicate: a stale, previously delivered envelope arrives
	// instead of the requested one — the misdelivery/first-valid-wins
	// path.
	FaultDuplicate Fault = "duplicate"
	// FaultMisindex: the envelope's rows are index-shifted — the
	// row-validation path.
	FaultMisindex Fault = "misindex"
)

// AllFaults lists every class, in injection-partition order.
var AllFaults = []Fault{FaultDrop, FaultDelay, FaultTruncate, FaultBitFlip, FaultDuplicate, FaultMisindex}

// FaultConfig sizes the injection. Rates are independent
// probabilities that partition [0,1): at most one fault fires per
// delivery, chosen by a single uniform draw against the cumulative
// rates (so Rate(drop)+...+Rate(misindex) must stay ≤ 1).
type FaultConfig struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Rates maps fault class → probability. Missing classes are 0.
	Rates map[Fault]float64
	// MaxDelay bounds the FaultDelay sleep (default 200ms); the
	// injected delay is uniform in (MaxDelay/2, MaxDelay].
	MaxDelay time.Duration
}

// UniformRates spreads a total fault rate evenly across all six
// classes — the "-chaos 0.36" CLI shape.
func UniformRates(total float64) map[Fault]float64 {
	m := make(map[Fault]float64, len(AllFaults))
	for _, f := range AllFaults {
		m[f] = total / float64(len(AllFaults))
	}
	return m
}

// Flaky wraps a Transport and injects faults on the way back. The
// schedule is seeded-deterministic per (range, attempt): whether and
// which fault fires for the k-th delivery attempt of range [lo:hi)
// depends only on (Seed, lo, hi, k), never on goroutine scheduling —
// so a chaos run is reproducible by seed even though deliveries
// interleave. (The payload of a duplicate fault — which stale
// envelope gets replayed — does depend on delivery order; the fault
// decisions do not.)
//
// Injection happens downstream of the real execution, which is what
// makes the parity invariant testable: the inner transport computes
// honest envelopes, Flaky mangles them in flight, and the
// coordinator must still converge to byte-identical output purely by
// detecting and re-issuing.
type Flaky struct {
	Inner Transport
	Cfg   FaultConfig

	mu        sync.Mutex
	attempts  map[exp.CellRange]int64 // per-range delivery attempt counter
	delivered []*exp.ShardFile        // clean envelopes seen, fodder for duplicates
	injected  map[Fault]int           // how many of each class actually fired
}

// Name implements Transport.
func (f *Flaky) Name() string { return f.Inner.Name() + "+flaky" }

// Healthy implements Transport: fault injection does not change
// whether the runner underneath looks usable.
func (f *Flaky) Healthy(ctx context.Context) error { return f.Inner.Healthy(ctx) }

// Close implements Transport.
func (f *Flaky) Close() error { return f.Inner.Close() }

// Injected reports how many faults of each class actually fired so
// far — for chaos-test assertions ("every class exercised") and the
// stats line.
func (f *Flaky) Injected() map[Fault]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Fault]int, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// draw returns the fault (or "") scheduled for this delivery attempt
// and a per-attempt stream for fault-internal randomness, and bumps
// the attempt counter.
func (f *Flaky) draw(r exp.CellRange) (Fault, *sim.Stream) {
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = make(map[exp.CellRange]int64)
		f.injected = make(map[Fault]int)
	}
	attempt := f.attempts[r]
	f.attempts[r] = attempt + 1
	f.mu.Unlock()

	s := sim.NewStream(sim.SeedFor(f.Cfg.Seed, "flaky", int64(r.Lo), int64(r.Hi), attempt))
	u := s.Float64()
	cum := 0.0
	for _, class := range AllFaults {
		cum += f.Cfg.Rates[class]
		if u < cum {
			return class, s
		}
	}
	return "", s
}

func (f *Flaky) count(class Fault) {
	f.mu.Lock()
	f.injected[class]++
	f.mu.Unlock()
}

// remember stashes a clean envelope as future duplicate fodder.
func (f *Flaky) remember(env *exp.ShardFile) {
	f.mu.Lock()
	f.delivered = append(f.delivered, env)
	f.mu.Unlock()
}

// stale picks a remembered envelope for a range other than r — a
// replay of the same range would be indistinguishable from a correct
// delivery, so only cross-range replays count as the fault. Returns
// nil if nothing eligible has been delivered yet.
func (f *Flaky) stale(s *sim.Stream, r exp.CellRange) *exp.ShardFile {
	f.mu.Lock()
	defer f.mu.Unlock()
	var pool []*exp.ShardFile
	for _, env := range f.delivered {
		if env.Range != r {
			pool = append(pool, env)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[int(s.Uint64()%uint64(len(pool)))]
}

// Send implements Transport: run the real job, then apply the
// scheduled fault to the delivery.
func (f *Flaky) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	class, s := f.draw(job.Range)

	// Delay happens before the real work so the wall-clock stretch is
	// visible to deadlines and straggler detection.
	if class == FaultDelay {
		f.count(FaultDelay)
		bound := f.Cfg.MaxDelay
		if bound <= 0 {
			bound = 200 * time.Millisecond
		}
		d := bound/2 + time.Duration(s.Float64()*float64(bound/2))
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
	}

	env, err := f.Inner.Send(ctx, job)
	if err != nil {
		return nil, err
	}
	f.remember(env)

	switch class {
	case FaultDrop:
		// The worker ran; the envelope is lost in transit.
		f.count(FaultDrop)
		return nil, transportError(job, fmt.Errorf("flaky: injected drop of %s", job.Range))
	case FaultTruncate:
		f.count(FaultTruncate)
		return f.corruptBytes(job, env, s, true)
	case FaultBitFlip:
		f.count(FaultBitFlip)
		return f.corruptBytes(job, env, s, false)
	case FaultDuplicate:
		f.count(FaultDuplicate)
		if old := f.stale(s, job.Range); old != nil {
			return old, nil
		}
		// Nothing eligible to replay yet: deliver a ghost — an empty
		// envelope for the empty range. Still a misdelivery, so a
		// scheduled duplicate always fires regardless of timing; that
		// keeps the per-range attempt chains (and with them the whole
		// fault census) deterministic for a given seed.
		return exp.RunShard(job.Cfg, exp.ShardSpec{Plan: job.Plan, Range: exp.CellRange{}}), nil
	case FaultMisindex:
		f.count(FaultMisindex)
		bad := *env
		bad.Cells = append([]exp.ShardCell(nil), env.Cells...)
		for i := range bad.Cells {
			bad.Cells[i].Index++
		}
		// A misindexing bug would re-seal too — the checksum is not
		// what catches this class, row validation is.
		bad.SealPayload()
		return &bad, nil
	}
	return env, nil
}

// corruptBytes mangles the envelope at the wire level — truncation
// or a bit flip inside the payload region — and returns whatever a
// receiver would see after decoding, mirroring exactly what a
// transport reading a damaged file does.
func (f *Flaky) corruptBytes(job Job, env *exp.ShardFile, s *sim.Stream, truncate bool) (*exp.ShardFile, error) {
	data, err := exp.EncodeShardFile(env)
	if err != nil {
		return nil, transportError(job, err)
	}
	if truncate {
		// Cut somewhere in the second half — past the header, inside
		// the rows — so the damage is structural.
		cut := len(data)/2 + int(s.Uint64()%uint64(len(data)/4+1))
		data = data[:cut]
	} else {
		// Flip the low bit of a mean value's leading character: that
		// byte is always payload the checksum covers, so the flip is
		// always detected — either the number changes (checksum fault)
		// or the JSON breaks (parse fault). A flip in a timing field
		// would be a harmless no-op by design (provenance is not
		// payload), which would make "bitflip was detected" assertions
		// vacuous, so the injector aims where it must be caught.
		marker := []byte(`"mean": `)
		var sites []int
		for i := 0; ; {
			j := bytes.Index(data[i:], marker)
			if j < 0 {
				break
			}
			sites = append(sites, i+j+len(marker))
			i += j + len(marker)
		}
		if len(sites) > 0 {
			data[sites[int(s.Uint64()%uint64(len(sites)))]] ^= 1
		}
	}
	return decodeDelivery(job, data)
}
