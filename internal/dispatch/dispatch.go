package dispatch

import (
	"context"
	"errors"
	"fmt"

	"suu/internal/exp"
)

// Job is one unit of dispatchable work: a contiguous cell range of a
// named grid plan under a fixed experiment config. Everything a
// remote runner needs to reproduce the cells — and everything the
// coordinator needs to distrust what comes back — rides along.
type Job struct {
	// Grid is the grid driver id ("T13"); transports that re-derive
	// the plan on the far side (SharedDir tickets) ship this.
	Grid string
	// Cfg is the experiment config the cells run under. Workers is
	// forced to 1 by executing transports: process/runner-level
	// parallelism replaces the in-process pool.
	Cfg exp.Config
	// Plan is the materialized plan (local transports use it
	// directly; it is never serialized — remote ends rebuild it from
	// Grid+Cfg and must match Fingerprint).
	Plan exp.GridPlan
	// Range is the half-open cell range to execute.
	Range exp.CellRange
	// Fingerprint is the expected (cfg, plan) fingerprint. Both ends
	// check it: a runner refuses a ticket it cannot reproduce, and
	// the coordinator refuses an envelope cut from anything else.
	Fingerprint string
}

// A Transport executes one job somewhere and returns its envelope.
// Implementations must be safe for concurrent Send calls. Send
// honors ctx: on cancellation or deadline it abandons (and, where it
// can, kills) the work and returns ctx's error. A returned envelope
// is NOT presumed valid — the coordinator validates every delivery —
// so transports should return whatever arrived rather than judging
// it, and reserve errors for deliveries that failed outright.
type Transport interface {
	// Name identifies the runner for health scoring and stats
	// ("local-3", "dir:/sweep", "inproc-0").
	Name() string
	// Send executes the job and returns the delivered envelope.
	Send(ctx context.Context, job Job) (*exp.ShardFile, error)
	// Healthy probes whether the runner looks usable right now —
	// cheap, advisory, no work executed.
	Healthy(ctx context.Context) error
	// Close releases transport resources (spool dirs, watchers).
	Close() error
}

// NewJob assembles a Job for a grid driver, deriving the plan and
// fingerprint the way every transport and validator expects: the
// worker config (Workers=1) is what the fingerprint deliberately
// excludes, so jobs built at any pool size interoperate.
func NewJob(cfg exp.Config, gridID string, plan exp.GridPlan, r exp.CellRange) Job {
	wcfg := cfg
	wcfg.Workers = 1
	return Job{
		Grid:        gridID,
		Cfg:         wcfg,
		Plan:        plan,
		Range:       r,
		Fingerprint: exp.Fingerprint(cfg, plan),
	}
}

// InProcess executes jobs directly in the coordinator's process — the
// degradation floor every sweep can fall back to, and the fastest
// backend for chaos tests (no fork per job). The zero value is ready
// to use.
type InProcess struct {
	// ID distinguishes multiple in-process runners ("" reads as
	// "inproc").
	ID string
}

// Name implements Transport.
func (p *InProcess) Name() string {
	if p.ID == "" {
		return "inproc"
	}
	return p.ID
}

// Send implements Transport: run the range on a single-goroutine pool
// right here. The work itself is not interruptible mid-range; Send
// checks ctx before starting and reports cancellation that arrives
// while running only after the range finishes (the envelope is then
// still delivered — a canceled coordinator discards it).
func (p *InProcess) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := job.Cfg
	cfg.Workers = 1
	f := exp.RunShard(cfg, exp.ShardSpec{Plan: job.Plan, Range: job.Range})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// Healthy implements Transport: the coordinator's own process is as
// healthy as it gets.
func (p *InProcess) Healthy(context.Context) error { return nil }

// Close implements Transport.
func (p *InProcess) Close() error { return nil }

// transportError wraps a delivery failure as a typed, re-issuable
// envelope fault for the requested range.
func transportError(job Job, err error) error {
	return &exp.EnvelopeFaultError{
		Range: job.Range,
		Class: exp.FaultTransport,
		Err:   err,
	}
}

// decodeDelivery decodes envelope bytes that arrived for a job,
// attributing any failure to the job's requested range: truncated or
// garbled bytes cannot name the range they were for, and the range
// the coordinator must re-issue is the one it asked for.
func decodeDelivery(job Job, data []byte) (*exp.ShardFile, error) {
	f, err := exp.DecodeShardFile(data)
	if err == nil {
		return f, nil
	}
	var fe *exp.EnvelopeFaultError
	if errors.As(err, &fe) {
		return nil, &exp.EnvelopeFaultError{Range: job.Range, Class: fe.Class, Err: fe.Err}
	}
	return nil, transportError(job, err)
}

// validateDelivery runs the full distrust pipeline on a delivered
// envelope: range, schema, fingerprint, row indices, payload
// checksum. Any failure is an *exp.EnvelopeFaultError carrying the
// requested range, which unwraps to the re-issuable
// *exp.MissingRangeError.
func validateDelivery(job Job, f *exp.ShardFile) error {
	if f == nil {
		return transportError(job, fmt.Errorf("transport delivered no envelope"))
	}
	return exp.ValidateShardFile(f, job.Range, job.Fingerprint, job.Plan.NumCells())
}
