package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"suu/internal/exp"
)

// Benchmark measures the dispatch layer for the BENCH_sim.json
// dispatch section: the T13 sweep coordinated fault-free across
// in-process runners, then the same sweep under heavy injected chaos
// (all six fault classes, straggler re-slicing armed) — recording
// per-runner throughput, the robustness counters, and the wall-clock
// overhead of surviving the faults. Parity between the two merges is
// checked and recorded; it failing would be a dispatch bug, not a
// perf regression.
func Benchmark(cfg exp.Config) *exp.DispatchBench {
	const (
		gridID    = "T13"
		runners   = 4
		chaosRate = 0.36
		chaosSeed = 51
	)
	b := &exp.DispatchBench{Grid: gridID, ChaosRate: chaosRate}
	g, ok := exp.GridDriverByID(gridID)
	if !ok {
		b.Error = "grid driver missing"
		return b
	}
	bcfg := exp.Config{Quick: cfg.Quick, Seed: cfg.Seed, Workers: 1}
	plan := g.Plan(bcfg)
	b.Cells = plan.NumCells()
	b.Shards = plan.NumCells() / 2
	if b.Shards < runners {
		b.Shards = runners
	}

	mkTransports := func(chaos bool) ([]Transport, *Flaky) {
		var flaky *Flaky
		ts := make([]Transport, runners)
		for i := range ts {
			ts[i] = &InProcess{ID: fmt.Sprintf("inproc-%d", i)}
		}
		if chaos {
			// One shared injector: the fault schedule is per (range,
			// attempt), so every runner sees the same chaos.
			flaky = &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{
				Seed:     chaosSeed,
				Rates:    UniformRates(chaosRate),
				MaxDelay: 100 * time.Millisecond,
			}}
			for i := range ts {
				ts[i] = flaky
			}
		}
		return ts, flaky
	}
	opts := func(seed int64) Options {
		return Options{
			Shards:          b.Shards,
			MaxAttempts:     12,
			StragglerFactor: 3,
			CheckInterval:   5 * time.Millisecond,
			MinStragglerAge: 25 * time.Millisecond,
			BackoffBase:     time.Millisecond,
			BackoffMax:      20 * time.Millisecond,
			Seed:            seed,
		}
	}

	ts, _ := mkTransports(false)
	cleanM, _, cleanStats, err := New(ts, opts(1)).Run(context.Background(), bcfg, gridID, plan)
	if err != nil {
		b.Error = fmt.Sprintf("fault-free sweep: %v", err)
		return b
	}
	b.CleanWallMS = cleanStats.WallMS
	for _, r := range cleanStats.Runners {
		b.Runners = append(b.Runners, exp.DispatchRunnerBench{
			Name: r.Name, Jobs: r.Jobs, Cells: r.Cells, Failures: r.Failures, CellsPerSec: r.CellsPerSec,
		})
	}

	ts, flaky := mkTransports(true)
	chaosM, _, chaosStats, err := New(ts, opts(chaosSeed)).Run(context.Background(), bcfg, gridID, plan)
	if err != nil {
		b.Error = fmt.Sprintf("chaos sweep: %v", err)
		return b
	}
	b.ChaosWallMS = chaosStats.WallMS
	b.FaultsDetected = chaosStats.FaultsDetected
	b.ReIssues = chaosStats.ReIssues
	b.ReSlices = chaosStats.ReSlices
	b.Degradations = chaosStats.Degradations
	b.FaultsInjected = map[string]int{}
	for f, n := range flaky.Injected() {
		b.FaultsInjected[string(f)] = n
	}
	if b.CleanWallMS > 0 {
		b.OverheadPct = (b.ChaosWallMS - b.CleanWallMS) / b.CleanWallMS * 100
	}

	cleanJSON, err1 := cleanM.JSON()
	chaosJSON, err2 := chaosM.JSON()
	b.Parity = err1 == nil && err2 == nil && bytes.Equal(cleanJSON, chaosJSON)
	if !b.Parity {
		b.Error = "chaos merge NOT byte-identical to fault-free merge"
	}
	return b
}
