package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"suu/internal/exp"
)

// sequentialBytes is the fault-free ground truth every dispatch run
// must reproduce byte for byte.
func sequentialBytes(t *testing.T, cfg exp.Config, plan exp.GridPlan) []byte {
	t.Helper()
	want, err := exp.RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func mergedBytes(t *testing.T, m *exp.MergedGrid) []byte {
	t.Helper()
	if m == nil {
		t.Fatal("no merged grid")
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCoordinatorFaultFree: the plain path — several runners, no
// faults — lands exactly the sequential bytes and records per-runner
// throughput.
func TestCoordinatorFaultFree(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	want := sequentialBytes(t, cfg, plan)

	c := New([]Transport{&InProcess{ID: "inproc-0"}, &InProcess{ID: "inproc-1"}}, Options{Shards: 4})
	m, files, stats, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("dispatched merge differs from sequential bytes")
	}
	if len(files) != 4 {
		t.Errorf("accepted %d envelopes, want 4", len(files))
	}
	if stats.ReIssues != 0 || stats.FaultsDetected != 0 || stats.Degradations != 0 {
		t.Errorf("fault-free run recorded faults: %+v", stats)
	}
	jobs, cells := 0, 0
	for _, r := range stats.Runners {
		jobs += r.Jobs
		cells += r.Cells
		if r.Jobs > 0 && r.CellsPerSec <= 0 {
			t.Errorf("runner %s: jobs but no throughput record: %+v", r.Name, r)
		}
	}
	if jobs != 4 || cells != plan.NumCells() {
		t.Errorf("runner stats total %d jobs / %d cells, want 4 / %d", jobs, cells, plan.NumCells())
	}
}

// TestChaosParityT13 pins the central invariant on a real paper
// table: T13 swept through a Flaky transport injecting all six fault
// classes at a ≥30% total rate merges byte-identical to the
// fault-free sequential run — corruption is detected and re-issued,
// never merged. The run is also repeated with the same seed to pin
// that the injected fault schedule is deterministic.
func TestChaosParityT13(t *testing.T) {
	g, ok := exp.GridDriverByID("T13")
	if !ok {
		t.Fatal("T13 driver missing")
	}
	cfg := exp.Config{Quick: true, Seed: 7, Workers: 1}
	plan := g.Plan(cfg)
	want := sequentialBytes(t, cfg, plan)

	const chaosRate = 0.36 // ≥30%, split evenly across all six classes
	run := func(seed int64) (*Stats, map[Fault]int, []byte) {
		flaky := &Flaky{
			Inner: &InProcess{},
			Cfg: FaultConfig{
				Seed:     seed,
				Rates:    UniformRates(chaosRate),
				MaxDelay: 10 * time.Millisecond,
			},
		}
		c := New([]Transport{flaky, flaky, flaky, flaky}, Options{
			Shards:      13,
			MaxAttempts: 12,
			BackoffBase: time.Millisecond,
			BackoffMax:  10 * time.Millisecond,
			Seed:        seed,
		})
		m, _, stats, err := c.Run(context.Background(), cfg, "T13", plan)
		if err != nil {
			t.Fatalf("chaos sweep failed outright: %v", err)
		}
		return stats, flaky.Injected(), mergedBytes(t, m)
	}

	// Seed 51 exercises every fault class at this rate and shard count
	// (asserted below, so a schedule change cannot silently weaken the
	// test to fewer classes).
	stats, injected, got := run(51)
	if !bytes.Equal(got, want) {
		t.Error("chaos merge differs from fault-free sequential bytes")
	}
	total := 0
	for _, f := range AllFaults {
		if injected[f] == 0 {
			t.Errorf("fault class %q never fired; pick a seed that exercises all six (injected: %v)", f, injected)
		}
		total += injected[f]
	}
	// Delay and duplicate-without-fodder do not force a re-issue;
	// every other fired fault must have been detected.
	if stats.FaultsDetected == 0 || stats.ReIssues == 0 {
		t.Errorf("chaos run detected %d faults / %d re-issues, want > 0 (injected %d)", stats.FaultsDetected, stats.ReIssues, total)
	}

	// Same seed → same schedule: the injected-fault census must match
	// exactly even though deliveries interleave differently (which
	// envelope a duplicate replays is timing-dependent, but whether
	// each fault fires is not).
	_, injected2, got2 := run(51)
	if !bytes.Equal(got2, want) {
		t.Error("repeat chaos merge differs from sequential bytes")
	}
	for _, f := range AllFaults {
		if injected[f] != injected2[f] {
			t.Errorf("fault schedule not seed-deterministic: %q fired %d then %d times", f, injected[f], injected2[f])
		}
	}
}

// slowOnce delays its first delivery until its context is canceled
// (or a long timeout) — a deterministic straggler: whatever range
// lands on this runner first gets stuck.
type slowOnce struct {
	InProcess
	fired atomic.Bool
}

func (s *slowOnce) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	if s.fired.CompareAndSwap(false, true) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
		}
	}
	return s.InProcess.Send(ctx, job)
}

// TestStragglerReslice: a range stuck on a dead-slow runner is
// speculatively re-sliced; the sub-ranges land, the straggler is
// canceled, and the merged bytes still match the sequential run —
// speculation changes no bytes.
func TestStragglerReslice(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	want := sequentialBytes(t, cfg, plan)
	slow := &slowOnce{}
	slow.ID = "slow"

	c := New([]Transport{slow, &InProcess{ID: "fast"}}, Options{
		Shards:          4,
		StragglerFactor: 2,
		CheckInterval:   2 * time.Millisecond,
		MinStragglerAge: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	m, _, stats, err := c.Run(ctx, cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.ReSlices == 0 {
		t.Error("straggling range was never re-sliced")
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("speculative re-slice changed merged bytes")
	}
}

// brokenTransport fails every delivery the same way.
type brokenTransport struct {
	InProcess
	mode string // "error" or "corrupt"
}

func (b *brokenTransport) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	switch b.mode {
	case "corrupt":
		env, err := b.InProcess.Send(ctx, job)
		if err != nil {
			return nil, err
		}
		bad := *env
		bad.Fingerprint = "feedfacefeedface"
		return &bad, nil
	default:
		return nil, transportError(job, fmt.Errorf("runner exploded"))
	}
}

// TestExhaustedRetriesNameTheRange: when a range runs out of delivery
// attempts the sweep fails loudly with a typed error naming the exact
// [lo:hi) that is missing, and the error unwraps to
// *exp.MissingRangeError so callers can resume surgically.
func TestExhaustedRetriesNameTheRange(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	for _, mode := range []string{"error", "corrupt"} {
		t.Run(mode, func(t *testing.T) {
			b := &brokenTransport{mode: mode}
			b.ID = "broken"
			c := New([]Transport{b}, Options{
				Shards:        3,
				MaxAttempts:   2,
				BackoffBase:   time.Millisecond,
				FailThreshold: 1000, // keep the runner un-blacklisted: this test is about attempts
			})
			m, _, _, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
			if m != nil || err == nil {
				t.Fatalf("sweep over a broken runner: m=%v err=%v, want loud failure", m, err)
			}
			var rf *RangeFailedError
			if !errors.As(err, &rf) {
				t.Fatalf("err %T is not a RangeFailedError: %v", err, err)
			}
			if rf.Attempts != 2 {
				t.Errorf("gave up after %d attempts, want 2", rf.Attempts)
			}
			var miss *exp.MissingRangeError
			if !errors.As(err, &miss) {
				t.Fatal("failure does not unwrap to MissingRangeError")
			}
			wantName := fmt.Sprintf("[%d:%d)", miss.Range.Lo, miss.Range.Hi)
			if !strings.Contains(err.Error(), wantName) {
				t.Errorf("error %q does not name the missing range %s", err, wantName)
			}
			found := false
			for _, r := range exp.ShardRanges(plan.NumCells(), 3) {
				if r == miss.Range {
					found = true
				}
			}
			if !found {
				t.Errorf("named range %v is not one of the issued shards", miss.Range)
			}
		})
	}
}

// TestBlacklistAndDegrade: runners that keep failing get blacklisted;
// with everyone blacklisted the coordinator degrades to in-process
// execution and still lands the sequential bytes.
func TestBlacklistAndDegrade(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	want := sequentialBytes(t, cfg, plan)
	b0 := &brokenTransport{}
	b0.ID = "broken-0"
	b1 := &brokenTransport{}
	b1.ID = "broken-1"

	var logs []string
	var mu sync.Mutex
	c := New([]Transport{b0, b1}, Options{
		Shards:        4,
		MaxAttempts:   50,
		FailThreshold: 2,
		BackoffBase:   time.Millisecond,
		BackoffMax:    2 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	m, _, stats, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("degraded run differs from sequential bytes")
	}
	if stats.Degradations != 1 {
		t.Errorf("degradations = %d, want 1", stats.Degradations)
	}
	black := 0
	for _, r := range stats.Runners {
		if r.Blacklisted {
			black++
		}
	}
	if black != 2 {
		t.Errorf("%d runners blacklisted, want the 2 broken ones; stats: %+v", black, stats.Runners)
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "blacklisted") || !strings.Contains(joined, "degrading") {
		t.Errorf("progress log missing blacklist/degrade notes:\n%s", joined)
	}
}

// TestUnhealthyRunnerSkipped: a runner that fails its health probe is
// blacklisted up front and never sees a job.
func TestUnhealthyRunnerSkipped(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	sick := &LocalExec{ID: "sick", Exe: "/nonexistent/worker/binary"}
	c := New([]Transport{sick, &InProcess{ID: "ok"}}, Options{Shards: 2})
	m, _, stats, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if m == nil {
		t.Fatal("no merge")
	}
	for _, r := range stats.Runners {
		if r.Name == "sick" {
			if !r.Blacklisted || r.Jobs != 0 {
				t.Errorf("unhealthy runner got work: %+v", r)
			}
		}
	}
}

// blockingTransport parks every delivery until its context dies —
// the shape of a hung remote runner.
type blockingTransport struct {
	InProcess
	started chan struct{}
	once    sync.Once
}

func (b *blockingTransport) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancellationReturnsPartialResults: canceling the sweep's
// context unblocks Run promptly, returns a typed cancellation error,
// and hands back whatever envelopes were already accepted so the
// caller can report completed ranges.
func TestCancellationReturnsPartialResults(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	blocker := &blockingTransport{started: make(chan struct{})}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started
		cancel()
	}()
	c := New([]Transport{blocker}, Options{Shards: 3})
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, _, _, err = c.Run(ctx, cfg, "dispatch-test", plan)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestCompletedRangesCoalesce: the partial-results summary coalesces
// adjacent accepted ranges and keeps real gaps visible.
func TestCompletedRangesCoalesce(t *testing.T) {
	files := []*exp.ShardFile{
		{Range: exp.CellRange{Lo: 6, Hi: 9}},
		{Range: exp.CellRange{Lo: 0, Hi: 3}},
		{Range: exp.CellRange{Lo: 3, Hi: 6}},
		{Range: exp.CellRange{Lo: 11, Hi: 12}},
	}
	got := CompletedRanges(files)
	want := []exp.CellRange{{Lo: 0, Hi: 9}, {Lo: 11, Hi: 12}}
	if len(got) != len(want) {
		t.Fatalf("CompletedRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CompletedRanges = %v, want %v", got, want)
		}
	}
}

// TestCoordinatorEmptyPlan: a zero-cell plan short-circuits to the
// sequential path instead of deadlocking on nothing to dispatch.
func TestCoordinatorEmptyPlan(t *testing.T) {
	cfg := dispatchTestConfig()
	plan := exp.GridPlan{ID: "empty"}
	c := New([]Transport{&InProcess{}}, Options{})
	m, _, _, err := c.Run(context.Background(), cfg, "empty", plan)
	if err != nil || m == nil {
		t.Fatalf("empty plan: m=%v err=%v", m, err)
	}
}
