package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"

	"suu/internal/exp"
)

// dispatchTestPlan is a small cheap plan: two specs, 12 cells,
// tiny instances — the dispatch-layer twin of exp's shard test plan.
func dispatchTestPlan() exp.GridPlan {
	return exp.GridPlan{ID: "dispatch-test", Specs: []exp.GridSpec{
		{
			Points:  []exp.GridPoint{{Scenario: "independent", Jobs: 6, Machines: 2}},
			Solvers: []string{"lp-oblivious", "greedy-maxp"},
			Trials:  3,
		},
		{
			Points:  []exp.GridPoint{{Scenario: "chains", Jobs: 6, Machines: 2, Arg: 2}},
			Solvers: []string{"chains", "round-robin"},
			Trials:  3,
		},
	}}
}

func dispatchTestConfig() exp.Config { return exp.Config{Quick: true, Seed: 5, Workers: 1} }

// TestFlakyScheduleDeterministic: whether and which fault fires for
// the k-th delivery attempt of a range depends only on (seed, range,
// attempt) — two independently constructed injectors agree draw for
// draw, and the visit order of ranges does not matter.
func TestFlakyScheduleDeterministic(t *testing.T) {
	mk := func() *Flaky {
		return &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{Seed: 42, Rates: UniformRates(0.5)}}
	}
	ranges := []exp.CellRange{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 6}, {Lo: 6, Hi: 12}}

	a, b := mk(), mk()
	var got, want []Fault
	// a visits ranges round-robin, b exhausts each range's attempts in
	// turn: the schedules must still line up per (range, attempt).
	seqA := make(map[exp.CellRange][]Fault)
	for attempt := 0; attempt < 8; attempt++ {
		for _, r := range ranges {
			class, _ := a.draw(r)
			seqA[r] = append(seqA[r], class)
		}
	}
	for _, r := range ranges {
		for attempt := 0; attempt < 8; attempt++ {
			class, _ := b.draw(r)
			got = append(got, class)
		}
		want = append(want, seqA[r]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: visit order changed the schedule: %q vs %q", i, got[i], want[i])
		}
	}
	// Sanity: with a 50% total rate over 24 draws, some faults fired.
	fired := 0
	for _, c := range want {
		if c != "" {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired in 24 draws at 50% rate — schedule is broken")
	}
}

// TestFlakyFaultClassesDetected: each of the six classes, injected
// with probability 1, is either surfaced as an error by Send or
// rejected by delivery validation — and in every case the failure
// unwraps to the re-issuable *exp.MissingRangeError for the job's
// range. No fault class can slip a wrong envelope past the
// coordinator.
func TestFlakyFaultClassesDetected(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	r := exp.CellRange{Lo: 2, Hi: 7}
	job := NewJob(cfg, "dispatch-test", plan, r)

	for _, tc := range []struct {
		fault   Fault
		classes []string // acceptable detected EnvelopeFaultError classes
	}{
		{FaultDrop, []string{exp.FaultTransport}},
		{FaultTruncate, []string{exp.FaultParse}},
		{FaultBitFlip, []string{exp.FaultChecksum, exp.FaultParse}},
		{FaultDuplicate, []string{exp.FaultMisdelivery}},
		{FaultMisindex, []string{exp.FaultMisindex}},
	} {
		t.Run(string(tc.fault), func(t *testing.T) {
			f := &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{Seed: 9, Rates: map[Fault]float64{tc.fault: 1}}}
			if tc.fault == FaultDuplicate {
				// Prime the replay pool with an envelope for another range.
				other := NewJob(cfg, "dispatch-test", plan, exp.CellRange{Lo: 0, Hi: 2})
				f.remember(exp.RunShard(other.Cfg, exp.ShardSpec{Plan: plan, Range: other.Range}))
			}
			env, err := f.Send(context.Background(), job)
			if err == nil {
				err = validateDelivery(job, env)
			}
			if err == nil {
				t.Fatalf("fault %q delivered a validating envelope", tc.fault)
			}
			var fe *exp.EnvelopeFaultError
			if !errors.As(err, &fe) {
				t.Fatalf("fault %q: error %v is not an EnvelopeFaultError", tc.fault, err)
			}
			okClass := false
			for _, c := range tc.classes {
				if fe.Class == c {
					okClass = true
				}
			}
			if !okClass {
				t.Errorf("fault %q detected as class %q, want one of %v", tc.fault, fe.Class, tc.classes)
			}
			var miss *exp.MissingRangeError
			if !errors.As(err, &miss) {
				t.Fatalf("fault %q: error does not unwrap to MissingRangeError", tc.fault)
			}
			if miss.Range != r {
				t.Errorf("fault %q: re-issuable range %v, want %v", tc.fault, miss.Range, r)
			}
			if got := f.Injected()[tc.fault]; got != 1 {
				t.Errorf("fault %q: injected count %d, want 1", tc.fault, got)
			}
		})
	}
}

// TestFlakyDelayStretchesDelivery: the delay class does not corrupt —
// it stretches wall-clock, which is what the deadline and straggler
// machinery must see.
func TestFlakyDelayStretchesDelivery(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	job := NewJob(cfg, "dispatch-test", plan, exp.CellRange{Lo: 0, Hi: 4})
	f := &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{
		Seed:     3,
		Rates:    map[Fault]float64{FaultDelay: 1},
		MaxDelay: 40 * time.Millisecond,
	}}
	start := time.Now()
	env, err := f.Send(context.Background(), job)
	if err != nil {
		t.Fatalf("delayed delivery errored: %v", err)
	}
	if err := validateDelivery(job, env); err != nil {
		t.Fatalf("delayed delivery invalid: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delivery took %v, want >= 20ms of injected delay", d)
	}
	// And a delayed delivery respects cancellation instead of sleeping.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	f2 := &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{
		Seed:     3,
		Rates:    map[Fault]float64{FaultDelay: 1},
		MaxDelay: 10 * time.Second,
	}}
	start = time.Now()
	if _, err := f2.Send(ctx, job); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled delayed send: err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled delayed send took %v — the injected delay ignored ctx", d)
	}
}

// TestFlakyDuplicateWithoutFodder: a duplicate scheduled before
// anything eligible has been delivered still fires — as a ghost
// replay of an empty envelope — so the fault census for a seed does
// not depend on delivery timing.
func TestFlakyDuplicateWithoutFodder(t *testing.T) {
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	r := exp.CellRange{Lo: 0, Hi: 4}
	job := NewJob(cfg, "dispatch-test", plan, r)
	f := &Flaky{Inner: &InProcess{}, Cfg: FaultConfig{Seed: 1, Rates: map[Fault]float64{FaultDuplicate: 1}}}
	env, err := f.Send(context.Background(), job)
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	err = validateDelivery(job, env)
	var fe *exp.EnvelopeFaultError
	if !errors.As(err, &fe) || fe.Class != exp.FaultMisdelivery {
		t.Fatalf("ghost replay: err = %v, want misdelivery fault", err)
	}
	if got := f.Injected()[FaultDuplicate]; got != 1 {
		t.Errorf("duplicate fired count %d, want 1", got)
	}
}
