package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"suu/internal/exp"
)

// SharedDir is the transport for any shared filesystem (NFS, a
// mounted object store, a plain local directory): the coordinator
// spools one job-ticket file per range into <root>/jobs, any number
// of runners — other processes, other machines — claim tickets by
// atomic rename and write envelope files into <root>/results, and
// Send collects its envelope back by polling. All writes are
// tmp+rename so a reader can never observe a half-written file as a
// complete one (a torn read would only look like corruption anyway,
// which the payload checksum catches).
//
// The directory layout:
//
//	<root>/jobs/<id>.json          ticket, waiting
//	<root>/jobs/<id>.json.claimed  ticket, claimed by a runner
//	<root>/results/<id>.json       envelope
//	<root>/results/<id>.err        runner-side failure note
type SharedDir struct {
	// ID names this runner for health scoring ("" reads as
	// "dir:<root>").
	ID string
	// Root is the shared directory.
	Root string
	// Poll is the collection poll interval (default 25ms — tuned for
	// local disks; raise it for high-latency mounts).
	Poll time.Duration

	nonce atomic.Int64
}

// JobTicket is the serialized form of a job a SharedDir runner picks
// up. The plan itself is never shipped: the runner rebuilds it from
// (Grid, Cfg) and refuses the ticket if the fingerprints disagree —
// a version-skewed runner must fail loudly, not compute different
// cells.
type JobTicket struct {
	ID          string        `json:"id"`
	Grid        string        `json:"grid"`
	Cfg         exp.Config    `json:"cfg"`
	Range       exp.CellRange `json:"range"`
	Fingerprint string        `json:"fingerprint"`
}

func (s *SharedDir) jobsDir() string    { return filepath.Join(s.Root, "jobs") }
func (s *SharedDir) resultsDir() string { return filepath.Join(s.Root, "results") }

func (s *SharedDir) poll() time.Duration {
	if s.Poll <= 0 {
		return 25 * time.Millisecond
	}
	return s.Poll
}

// Name implements Transport.
func (s *SharedDir) Name() string {
	if s.ID == "" {
		return "dir:" + s.Root
	}
	return s.ID
}

// Healthy implements Transport: the spool directories must exist (or
// be creatable).
func (s *SharedDir) Healthy(context.Context) error {
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return fmt.Errorf("dispatch: shared dir: %w", err)
	}
	return os.MkdirAll(s.resultsDir(), 0o755)
}

// Close implements Transport. The spool is owned by the caller (it
// may still hold results other coordinators want).
func (s *SharedDir) Close() error { return nil }

// writeAtomic writes data at path via tmp+rename in the same
// directory, so concurrent readers see either nothing or the whole
// file.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Send implements Transport: spool the ticket, poll for the
// envelope. On cancellation the unclaimed ticket is withdrawn
// (best-effort — a runner that already claimed it will finish and
// write a result nobody collects, which is harmless).
func (s *SharedDir) Send(ctx context.Context, job Job) (*exp.ShardFile, error) {
	if err := s.Healthy(ctx); err != nil {
		return nil, transportError(job, err)
	}
	id := fmt.Sprintf("%s-%d-%d-p%d-n%d",
		strings.ToLower(job.Plan.ID), job.Range.Lo, job.Range.Hi, os.Getpid(), s.nonce.Add(1))
	ticket, err := json.Marshal(JobTicket{
		ID:          id,
		Grid:        job.Grid,
		Cfg:         job.Cfg,
		Range:       job.Range,
		Fingerprint: job.Fingerprint,
	})
	if err != nil {
		return nil, transportError(job, err)
	}
	ticketPath := filepath.Join(s.jobsDir(), id+".json")
	if err := writeAtomic(ticketPath, ticket); err != nil {
		return nil, transportError(job, err)
	}
	envPath := filepath.Join(s.resultsDir(), id+".json")
	errPath := filepath.Join(s.resultsDir(), id+".err")
	tick := time.NewTicker(s.poll())
	defer tick.Stop()
	for {
		if data, err := os.ReadFile(envPath); err == nil {
			return decodeDelivery(job, data)
		}
		if note, err := os.ReadFile(errPath); err == nil {
			return nil, transportError(job, fmt.Errorf("runner failed job %s: %s", id, note))
		}
		select {
		case <-ctx.Done():
			os.Remove(ticketPath) // withdraw if still unclaimed
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}

// SharedDirRunner drains a SharedDir spool: claim a ticket, execute
// its range, write the envelope. Run one per core on as many
// machines as share the directory — claims are atomic renames, so
// runners never double-execute a ticket (and even if a filesystem
// broke that promise, duplicate envelopes are discarded by the
// coordinator's first-valid-wins rule).
type SharedDirRunner struct {
	// Root is the shared directory (same as the transport's).
	Root string
	// Poll is the ticket-scan interval (default 25ms).
	Poll time.Duration
	// Tag distinguishes this runner in claim markers (default pid).
	Tag string
}

func (r *SharedDirRunner) poll() time.Duration {
	if r.Poll <= 0 {
		return 25 * time.Millisecond
	}
	return r.Poll
}

// Run drains tickets until ctx is canceled. Every error that is not
// ctx's is reported through the per-ticket .err note — the runner
// itself keeps serving.
func (r *SharedDirRunner) Run(ctx context.Context) error {
	jobs := filepath.Join(r.Root, "jobs")
	results := filepath.Join(r.Root, "results")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(results, 0o755); err != nil {
		return err
	}
	tick := time.NewTicker(r.poll())
	defer tick.Stop()
	for {
		names, _ := filepath.Glob(filepath.Join(jobs, "*.json"))
		for _, ticketPath := range names {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			claimed := ticketPath + ".claimed"
			if os.Rename(ticketPath, claimed) != nil {
				continue // another runner won the claim
			}
			r.execute(claimed, results)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// RunOnce drains the currently visible tickets and returns — the
// in-process degraded mode and the unit-test entry point.
func (r *SharedDirRunner) RunOnce(ctx context.Context) {
	jobs := filepath.Join(r.Root, "jobs")
	results := filepath.Join(r.Root, "results")
	names, _ := filepath.Glob(filepath.Join(jobs, "*.json"))
	for _, ticketPath := range names {
		if ctx.Err() != nil {
			return
		}
		claimed := ticketPath + ".claimed"
		if os.Rename(ticketPath, claimed) != nil {
			continue
		}
		r.execute(claimed, results)
	}
}

// execute runs one claimed ticket and writes its envelope or failure
// note.
func (r *SharedDirRunner) execute(claimedPath, results string) {
	fail := func(id string, err error) {
		if id == "" {
			id = strings.TrimSuffix(filepath.Base(claimedPath), ".json.claimed")
		}
		_ = writeAtomic(filepath.Join(results, id+".err"), []byte(err.Error()))
	}
	data, err := os.ReadFile(claimedPath)
	if err != nil {
		fail("", err)
		return
	}
	var t JobTicket
	if err := json.Unmarshal(data, &t); err != nil {
		fail("", fmt.Errorf("ticket does not parse: %v", err))
		return
	}
	g, ok := exp.GridDriverByID(t.Grid)
	if !ok {
		fail(t.ID, fmt.Errorf("unknown grid table %q", t.Grid))
		return
	}
	cfg := t.Cfg
	cfg.Workers = 1
	plan := g.Plan(cfg)
	if fp := exp.Fingerprint(cfg, plan); fp != t.Fingerprint {
		fail(t.ID, fmt.Errorf("fingerprint skew: ticket %s, this runner derives %s — refusing to compute different cells", t.Fingerprint, fp))
		return
	}
	if t.Range.Lo < 0 || t.Range.Hi > plan.NumCells() || t.Range.Lo > t.Range.Hi {
		fail(t.ID, fmt.Errorf("range %s out of bounds for %d cells", t.Range, plan.NumCells()))
		return
	}
	env, err := exp.EncodeShardFile(exp.RunShard(cfg, exp.ShardSpec{Plan: plan, Range: t.Range}))
	if err != nil {
		fail(t.ID, err)
		return
	}
	if err := writeAtomic(filepath.Join(results, t.ID+".json"), env); err != nil {
		fail(t.ID, err)
	}
}
