package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"suu/internal/exp"
	"suu/internal/sim"
)

// Options tunes the Coordinator's robustness policy. The zero value
// is usable: 3 delivery attempts per range, no hard deadline,
// straggler re-slicing at 4x the median per-cell pace, blacklisting
// after 3 consecutive failures, degradation to in-process execution.
type Options struct {
	// Shards is the initial number of ranges the plan is cut into
	// (0 = one per runner).
	Shards int
	// MaxAttempts bounds delivery attempts per exact range before the
	// sweep fails loudly with that range (default 3). Re-sliced
	// sub-ranges are new ranges with fresh budgets.
	MaxAttempts int
	// Deadline is the per-range hard deadline (0 = none): a delivery
	// running past it is killed (where the transport can) and
	// re-issued with backoff.
	Deadline time.Duration
	// StragglerFactor is the speculative re-slice trigger: a range
	// running past StragglerFactor x the median per-cell completion
	// time (scaled by its cell count) is split into SplitInto
	// sub-ranges that are dispatched alongside the still-running
	// original — first valid result wins, losers are discarded.
	// 0 disables re-slicing; values < 1 are treated as 1.
	StragglerFactor float64
	// SplitInto is the sub-range count per re-slice (default 2).
	SplitInto int
	// BackoffBase seeds the exponential re-issue backoff (default
	// 5ms): attempt k waits BackoffBase·2^k plus deterministic jitter
	// in [0, wait/2), capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the re-issue backoff (default 1s).
	BackoffMax time.Duration
	// FailThreshold blacklists a runner after this many consecutive
	// failed or faulty deliveries (default 3). Blacklisting is for
	// the sweep's lifetime; a successful delivery resets the count.
	FailThreshold int
	// MaxInFlightPerRunner bounds concurrent jobs per runner
	// (default 1 — one worker process per core is the LocalExec
	// contract; SharedDir transports want this raised to the number
	// of external runners draining the spool).
	MaxInFlightPerRunner int
	// CheckInterval is the straggler-scan period (default 20ms).
	CheckInterval time.Duration
	// MinStragglerAge floors the straggler trigger so sub-millisecond
	// medians cannot cause re-slice storms (default 50ms).
	MinStragglerAge time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// Fallback is the degradation target once every runner is
	// blacklisted (nil = a fresh InProcess transport). If the
	// fallback blacklists too, the sweep fails.
	Fallback Transport
	// Logf receives progress notes (re-issues, re-slices,
	// blacklistings); nil is silent.
	Logf func(format string, args ...any)
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return 3
	}
	return o.MaxAttempts
}

func (o Options) splitInto() int {
	if o.SplitInto < 2 {
		return 2
	}
	return o.SplitInto
}

func (o Options) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return 5 * time.Millisecond
	}
	return o.BackoffBase
}

func (o Options) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return time.Second
	}
	return o.BackoffMax
}

func (o Options) failThreshold() int {
	if o.FailThreshold <= 0 {
		return 3
	}
	return o.FailThreshold
}

func (o Options) perRunner() int {
	if o.MaxInFlightPerRunner <= 0 {
		return 1
	}
	return o.MaxInFlightPerRunner
}

func (o Options) checkInterval() time.Duration {
	if o.CheckInterval <= 0 {
		return 20 * time.Millisecond
	}
	return o.CheckInterval
}

func (o Options) minStragglerAge() time.Duration {
	if o.MinStragglerAge <= 0 {
		return 50 * time.Millisecond
	}
	return o.MinStragglerAge
}

// RunnerStats records one runner's sweep-lifetime contribution — the
// throughput record future planners weight splits with.
type RunnerStats struct {
	Name string `json:"name"`
	// Jobs and Cells count accepted deliveries only.
	Jobs  int `json:"jobs"`
	Cells int `json:"cells"`
	// Failures counts failed or faulty deliveries.
	Failures int `json:"failures"`
	// CellsPerSec is accepted cells per busy second.
	CellsPerSec float64 `json:"cells_per_sec"`
	// BusyMS is total wall-clock spent with jobs in flight on this
	// runner (summed across concurrent flights).
	BusyMS      float64 `json:"busy_ms"`
	Blacklisted bool    `json:"blacklisted,omitempty"`
}

// Stats is the sweep-level robustness record.
type Stats struct {
	Runners []RunnerStats `json:"runners"`
	// ReIssues counts ranges re-dispatched after a failed or faulty
	// delivery.
	ReIssues int `json:"re_issues"`
	// ReSlices counts straggler ranges speculatively split.
	ReSlices int `json:"re_slices"`
	// Degradations counts falls to the fallback runner.
	Degradations int `json:"degradations"`
	// FaultsDetected counts deliveries rejected by validation
	// (corruption, misdelivery, transport errors).
	FaultsDetected int `json:"faults_detected"`
	// Discarded counts valid envelopes thrown away because another
	// delivery covered their cells first (speculative losers,
	// duplicates).
	Discarded int     `json:"discarded"`
	WallMS    float64 `json:"wall_ms"`
}

// RangeFailedError is the loud failure: a range exhausted its
// delivery attempts. It unwraps to *exp.MissingRangeError naming
// exactly the cells the merged output is missing.
type RangeFailedError struct {
	Range    exp.CellRange
	Attempts int
	Last     error
}

func (e *RangeFailedError) Error() string {
	return fmt.Sprintf("dispatch: range [%d:%d) failed %d delivery attempt(s), giving up: %v",
		e.Range.Lo, e.Range.Hi, e.Attempts, e.Last)
}

func (e *RangeFailedError) Unwrap() []error {
	errs := []error{&exp.MissingRangeError{Range: e.Range}}
	if e.Last != nil {
		errs = append(errs, e.Last)
	}
	return errs
}

// Coordinator drives a sweep across a set of runners with the full
// robustness policy. Construct with New, run with Run.
type Coordinator struct {
	opt     Options
	runners []*runnerState
}

type runnerState struct {
	t           Transport
	inflight    int
	consecFails int
	blacklisted bool
	jobs, cells int
	failures    int
	busy        time.Duration
}

// New builds a Coordinator over the given runners. Every transport
// is one runner with its own health score; pass several LocalExec
// instances for a multi-process box, or one SharedDir with
// MaxInFlightPerRunner raised.
func New(transports []Transport, opt Options) *Coordinator {
	c := &Coordinator{opt: opt}
	for _, t := range transports {
		c.runners = append(c.runners, &runnerState{t: t})
	}
	return c
}

// workItem is one pending dispatch of a range.
type workItem struct {
	r exp.CellRange
	// attempt counts deliveries already tried for this exact range.
	attempt int
	// last holds the most recent failure, for the giving-up error.
	last error
}

// flight is one in-flight dispatch.
type flight struct {
	item     workItem
	runner   int
	started  time.Time
	cancel   context.CancelFunc
	resliced bool
}

// result is what a flight goroutine reports back.
type flightResult struct {
	id      int
	env     *exp.ShardFile
	err     error
	elapsed time.Duration
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Run executes the plan across the runners and returns the merged
// canonical document, the accepted envelopes (for table rendering
// with per-process timings), and the robustness stats. On failure —
// a range out of attempts, every runner dead, or ctx canceled — the
// accepted envelopes and stats still come back so the caller can
// report exactly which ranges completed.
func (c *Coordinator) Run(ctx context.Context, cfg exp.Config, gridID string, plan exp.GridPlan) (*exp.MergedGrid, []*exp.ShardFile, *Stats, error) {
	start := time.Now()
	stats := &Stats{}
	finish := func(m *exp.MergedGrid, files []*exp.ShardFile, err error) (*exp.MergedGrid, []*exp.ShardFile, *Stats, error) {
		stats.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6
		for _, r := range c.runners {
			rs := RunnerStats{
				Name:        r.t.Name(),
				Jobs:        r.jobs,
				Cells:       r.cells,
				Failures:    r.failures,
				BusyMS:      float64(r.busy.Nanoseconds()) / 1e6,
				Blacklisted: r.blacklisted,
			}
			if r.busy > 0 {
				rs.CellsPerSec = float64(r.cells) / r.busy.Seconds()
			}
			stats.Runners = append(stats.Runners, rs)
		}
		return m, files, stats, err
	}

	if len(c.runners) == 0 {
		return finish(nil, nil, errors.New("dispatch: no runners"))
	}
	total := plan.NumCells()
	if total == 0 {
		// The degenerate sweep: one empty envelope tiles it.
		m := exp.RunMerged(cfg, plan)
		return finish(m, nil, nil)
	}

	// Probe health up front: a runner that cannot even answer starts
	// blacklisted instead of eating the first wave of jobs.
	for _, r := range c.runners {
		if err := r.t.Healthy(ctx); err != nil {
			r.blacklisted = true
			c.logf("runner %s unhealthy at start, blacklisting: %v", r.t.Name(), err)
		}
	}

	shards := c.opt.Shards
	if shards <= 0 {
		shards = len(c.runners)
	}
	var pending []workItem
	for _, r := range exp.ShardRanges(total, shards) {
		if r.Len() > 0 {
			pending = append(pending, workItem{r: r})
		}
	}

	results := make(chan flightResult)
	requeue := make(chan workItem)
	loopDone := make(chan struct{})
	defer close(loopDone)
	ticker := time.NewTicker(c.opt.checkInterval())
	defer ticker.Stop()

	var (
		flights    = map[int]*flight{}
		nextFlight int
		accepted   []*exp.ShardFile
		covered    []exp.CellRange // disjoint, kept sorted
		coveredN   int
		backoffs   int // items parked in AfterFunc timers
		perCell    []time.Duration
		failErr    error
		canceled   bool
	)

	coveredBy := func(r exp.CellRange) bool {
		// Is r fully inside the accepted union?
		need := r.Lo
		for _, cv := range covered {
			if cv.Lo > need {
				return false
			}
			if cv.Hi > need {
				need = cv.Hi
			}
			if need >= r.Hi {
				return true
			}
		}
		return need >= r.Hi
	}
	overlapsAccepted := func(r exp.CellRange) bool {
		for _, cv := range covered {
			if cv.Overlaps(r) {
				return true
			}
		}
		return false
	}
	medianPerCell := func() (time.Duration, bool) {
		if len(perCell) < 3 {
			return 0, false
		}
		s := append([]time.Duration(nil), perCell...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2], true
	}

	// pickRunner returns the healthiest free runner, degrading to the
	// fallback when everyone is blacklisted. -1 means no capacity
	// right now; -2 means the sweep cannot continue.
	pickRunner := func() int {
		best, bestIn := -1, 0
		alive := false
		for i, r := range c.runners {
			if r.blacklisted {
				continue
			}
			alive = true
			if r.inflight >= c.opt.perRunner() {
				continue
			}
			if best == -1 || r.inflight < bestIn {
				best, bestIn = i, r.inflight
			}
		}
		if best >= 0 {
			return best
		}
		if alive {
			return -1 // capacity will free up
		}
		// Everyone is blacklisted: degrade. The fallback joins as a
		// fresh runner exactly once; if it dies too, the sweep fails.
		for _, r := range c.runners {
			if !r.blacklisted {
				return -1
			}
		}
		fb := c.opt.Fallback
		if fb == nil {
			fb = &InProcess{ID: fmt.Sprintf("inproc-fallback-%d", stats.Degradations)}
		}
		for _, r := range c.runners {
			if r.t == fb {
				return -2 // fallback already enlisted and blacklisted
			}
		}
		stats.Degradations++
		c.logf("all runners blacklisted; degrading to %s", fb.Name())
		c.runners = append(c.runners, &runnerState{t: fb})
		return len(c.runners) - 1
	}

	launch := func(item workItem, runnerIdx int) {
		r := c.runners[runnerIdx]
		r.inflight++
		fctx, cancel := context.WithCancel(ctx)
		if c.opt.Deadline > 0 {
			fctx, cancel = context.WithDeadline(ctx, time.Now().Add(c.opt.Deadline))
		}
		id := nextFlight
		nextFlight++
		flights[id] = &flight{item: item, runner: runnerIdx, started: time.Now(), cancel: cancel}
		job := NewJob(cfg, gridID, plan, item.r)
		t := r.t
		go func() {
			s := time.Now()
			env, err := t.Send(fctx, job)
			cancel()
			select {
			case results <- flightResult{id: id, env: env, err: err, elapsed: time.Since(s)}:
			case <-loopDone:
			}
		}()
	}

	issue := func() {
		for len(pending) > 0 {
			idx := pickRunner()
			if idx == -1 {
				return
			}
			if idx == -2 {
				if failErr == nil {
					failErr = fmt.Errorf("dispatch: every runner including the fallback is blacklisted; %d cells undelivered", total-coveredN)
				}
				return
			}
			item := pending[0]
			pending = pending[1:]
			if coveredBy(item.r) {
				continue // a speculative twin already landed
			}
			launch(item, idx)
		}
	}

	// park schedules a re-issue after exponential backoff with
	// deterministic jitter.
	park := func(item workItem) {
		d := c.opt.backoffBase() << (item.attempt - 1)
		if d > c.opt.backoffMax() {
			d = c.opt.backoffMax()
		}
		js := sim.NewStream(sim.SeedFor(c.opt.Seed, "backoff", int64(item.r.Lo), int64(item.r.Hi), int64(item.attempt)))
		d += time.Duration(js.Float64() * float64(d) / 2)
		backoffs++
		time.AfterFunc(d, func() {
			select {
			case requeue <- item:
			case <-loopDone:
			}
		})
	}

	handle := func(res flightResult) {
		f := flights[res.id]
		delete(flights, res.id)
		f.cancel()
		r := c.runners[f.runner]
		r.inflight--
		r.busy += res.elapsed

		if failErr != nil || canceled {
			return // draining; nothing to act on
		}
		if coveredBy(f.item.r) {
			// A speculative twin won while this flight ran; whatever it
			// brought back is redundant. Not a runner failure.
			stats.Discarded++
			return
		}
		err := res.err
		if err == nil {
			err = validateDelivery(NewJob(cfg, gridID, plan, f.item.r), res.env)
		}
		if err != nil {
			if ctx.Err() != nil {
				canceled = true
				return
			}
			stats.FaultsDetected++
			r.failures++
			r.consecFails++
			if !r.blacklisted && r.consecFails >= c.opt.failThreshold() {
				r.blacklisted = true
				c.logf("runner %s blacklisted after %d consecutive failures", r.t.Name(), r.consecFails)
			}
			item := f.item
			item.attempt++
			item.last = err
			if item.attempt >= c.opt.maxAttempts() {
				failErr = &RangeFailedError{Range: item.r, Attempts: item.attempt, Last: err}
				return
			}
			stats.ReIssues++
			c.logf("delivery of %s faulted (%v); re-issuing (attempt %d of %d)", item.r, err, item.attempt+1, c.opt.maxAttempts())
			park(item)
			return
		}

		// A valid envelope for exactly the requested range. If any of
		// its cells are already covered the whole envelope is redundant
		// (re-slices align, so partial overlap means a twin landed).
		if overlapsAccepted(f.item.r) {
			stats.Discarded++
			return
		}
		r.consecFails = 0
		r.jobs++
		r.cells += f.item.r.Len()
		accepted = append(accepted, res.env)
		covered = append(covered, f.item.r)
		sort.Slice(covered, func(i, j int) bool { return covered[i].Lo < covered[j].Lo })
		coveredN += f.item.r.Len()
		if n := f.item.r.Len(); n > 0 {
			perCell = append(perCell, res.elapsed/time.Duration(n))
		}
		// Cancel speculative flights whose cells are now fully covered.
		for _, fl := range flights {
			if coveredBy(fl.item.r) {
				fl.cancel()
			}
		}
	}

	reslice := func() {
		med, ok := medianPerCell()
		if !ok || c.opt.StragglerFactor <= 0 {
			return
		}
		k := c.opt.StragglerFactor
		if k < 1 {
			k = 1
		}
		for _, f := range flights {
			if f.resliced || f.item.r.Len() < 2 {
				continue
			}
			limit := time.Duration(k * float64(med) * float64(f.item.r.Len()))
			if limit < c.opt.minStragglerAge() {
				limit = c.opt.minStragglerAge()
			}
			if time.Since(f.started) < limit {
				continue
			}
			f.resliced = true
			stats.ReSlices++
			parts := f.item.r.Split(c.opt.splitInto())
			c.logf("range %s straggling (past %s); speculatively re-slicing into %d sub-ranges", f.item.r, limit, c.opt.splitInto())
			for _, p := range parts {
				if p.Len() > 0 && !coveredBy(p) {
					pending = append(pending, workItem{r: p})
				}
			}
		}
	}

	for {
		issue()
		if failErr != nil || canceled || coveredN == total {
			if len(flights) == 0 && backoffs == 0 {
				break
			}
			if coveredN == total || failErr != nil || canceled {
				for _, f := range flights {
					f.cancel()
				}
			}
			if len(flights) == 0 {
				// Only parked backoff items remain; they are moot.
				break
			}
		}
		select {
		case res := <-results:
			handle(res)
		case item := <-requeue:
			backoffs--
			if failErr == nil && !canceled && !coveredBy(item.r) {
				pending = append(pending, item)
			}
		case <-ticker.C:
			reslice()
		case <-ctx.Done():
			canceled = true
			for _, f := range flights {
				f.cancel()
			}
		}
	}

	if canceled && failErr == nil {
		failErr = fmt.Errorf("dispatch: sweep canceled: %w", ctx.Err())
	}
	if failErr != nil {
		return finish(nil, accepted, failErr)
	}
	m, err := exp.Merge(accepted)
	if err != nil {
		// Coverage accounting says the tiling is complete; a merge
		// failure here means a coordinator bug, not a runner fault.
		return finish(nil, accepted, fmt.Errorf("dispatch: merge of a complete tiling failed: %w", err))
	}
	return finish(m, accepted, nil)
}

// CompletedRanges summarizes which cell ranges a set of accepted
// envelopes covers, coalescing adjacent ranges — the partial-results
// summary printed when a sweep is interrupted.
func CompletedRanges(files []*exp.ShardFile) []exp.CellRange {
	rs := make([]exp.CellRange, 0, len(files))
	for _, f := range files {
		if f.Range.Len() > 0 {
			rs = append(rs, f.Range)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	var out []exp.CellRange
	for _, r := range rs {
		if n := len(out); n > 0 && out[n-1].Hi >= r.Lo {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
