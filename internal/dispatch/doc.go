// Package dispatch is the fault-tolerant multi-runner layer between a
// grid sweep and the processes (or machines) that execute it. The
// sharding layer in internal/exp already makes every sweep a set of
// fingerprinted, gap-retryable cell ranges; this package owns getting
// those ranges executed somewhere and the results back *despite* lost
// runners, slow runners, corrupt envelopes, and partial failures.
//
// The split of responsibilities:
//
//   - A Transport moves one (plan, config, range) job to a runner and
//     an envelope back. It is dumb about policy: it reports what
//     happened and nothing else. Backends: InProcess (run it right
//     here), LocalExec (fork a worker process — cmd/suu-grid's
//     self-exec path behind the interface), SharedDir (spool job
//     tickets into a watched directory, collect envelope files back —
//     any shared filesystem or object store), and Flaky (a seeded
//     fault-injection wrapper for chaos testing).
//
//   - The Coordinator owns the robustness policy: per-range deadlines
//     with exponential backoff and deterministic jitter on re-issue,
//     straggler detection with speculative re-slicing, per-runner
//     health scoring with blacklisting, graceful degradation to fewer
//     runners (down to in-process execution), and per-runner
//     throughput records.
//
// The central invariant — pinned by the chaos parity tests — is that
// a sweep run under heavy injected faults merges byte-identical to
// the fault-free sequential run, or fails loudly with the exact
// missing [lo:hi) range. Corruption is detected, not trusted: every
// delivered envelope is validated against the sweep fingerprint, the
// requested range, and its sealed payload checksum, and every
// detected fault converts into a re-issuable range error.
package dispatch
