package dispatch

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"suu/internal/exp"
)

// sharedDirCfg uses a real registered grid driver: SharedDir runners
// rebuild the plan from (Grid, Cfg) on their side, which only works
// for tables in the registry.
func sharedDirCfg(t *testing.T) (exp.Config, exp.GridPlan) {
	t.Helper()
	g, ok := exp.GridDriverByID("A2")
	if !ok {
		t.Fatal("A2 driver missing")
	}
	cfg := exp.Config{Quick: true, Seed: 9, Workers: 1}
	return cfg, g.Plan(cfg)
}

// TestSharedDirRoundTrip: tickets spooled by the transport are
// claimed and executed by a runner process loop, and the collected
// envelopes merge to the sequential bytes.
func TestSharedDirRoundTrip(t *testing.T) {
	cfg, plan := sharedDirCfg(t)
	want := sequentialBytes(t, cfg, plan)
	root := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		r := &SharedDirRunner{Root: root, Poll: 2 * time.Millisecond}
		r.Run(ctx)
	}()

	sd := &SharedDir{ID: "dir-0", Root: root, Poll: 2 * time.Millisecond}
	c := New([]Transport{sd}, Options{Shards: 3, MaxInFlightPerRunner: 2})
	m, _, _, err := c.Run(ctx, cfg, "A2", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("shared-dir merge differs from sequential bytes")
	}
	cancel()
	<-runnerDone

	// The spool should hold claimed tickets, not waiting ones.
	if names, _ := filepath.Glob(filepath.Join(root, "jobs", "*.json")); len(names) != 0 {
		t.Errorf("unclaimed tickets left behind: %v", names)
	}
}

// TestSharedDirFingerprintSkewRefused: a runner that derives a
// different fingerprint from (Grid, Cfg) — version skew — must refuse
// the ticket with a loud .err note instead of computing different
// cells; the transport surfaces it as a typed, re-issuable fault.
func TestSharedDirFingerprintSkewRefused(t *testing.T) {
	cfg, plan := sharedDirCfg(t)
	root := t.TempDir()

	sd := &SharedDir{Root: root, Poll: time.Millisecond}
	job := NewJob(cfg, "A2", plan, exp.CellRange{Lo: 0, Hi: 2})
	job.Fingerprint = "deadbeefdeadbeef" // what a skewed coordinator would send

	sendErr := make(chan error, 1)
	go func() {
		_, err := sd.Send(context.Background(), job)
		sendErr <- err
	}()
	// Drain the ticket with a current-version runner.
	r := &SharedDirRunner{Root: root, Poll: time.Millisecond}
	deadline := time.After(10 * time.Second)
	for {
		r.RunOnce(context.Background())
		select {
		case err := <-sendErr:
			if err == nil {
				t.Fatal("skewed ticket executed")
			}
			var fe *exp.EnvelopeFaultError
			if !errors.As(err, &fe) {
				t.Fatalf("skew refusal: err %T is not an envelope fault: %v", err, err)
			}
			if !strings.Contains(err.Error(), "fingerprint skew") {
				t.Errorf("skew refusal does not say so: %v", err)
			}
			var miss *exp.MissingRangeError
			if !errors.As(err, &miss) || miss.Range != job.Range {
				t.Errorf("skew refusal not re-issuable for %v: %v", job.Range, err)
			}
			return
		case <-deadline:
			t.Fatal("skewed ticket never refused")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSharedDirUnknownGridRefused: a ticket naming a grid the runner
// does not know fails with a note, not silence.
func TestSharedDirUnknownGridRefused(t *testing.T) {
	cfg, plan := sharedDirCfg(t)
	root := t.TempDir()
	sd := &SharedDir{Root: root, Poll: time.Millisecond}
	job := NewJob(cfg, "T99", plan, exp.CellRange{Lo: 0, Hi: 2})

	sendErr := make(chan error, 1)
	go func() {
		_, err := sd.Send(context.Background(), job)
		sendErr <- err
	}()
	r := &SharedDirRunner{Root: root, Poll: time.Millisecond}
	deadline := time.After(10 * time.Second)
	for {
		r.RunOnce(context.Background())
		select {
		case err := <-sendErr:
			if err == nil || !strings.Contains(err.Error(), "unknown grid") {
				t.Fatalf("unknown-grid ticket: err = %v, want refusal", err)
			}
			return
		case <-deadline:
			t.Fatal("unknown-grid ticket never refused")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSharedDirCancellationWithdrawsTicket: canceling a Send removes
// the unclaimed ticket so no runner burns time on an abandoned job.
func TestSharedDirCancellationWithdrawsTicket(t *testing.T) {
	cfg, plan := sharedDirCfg(t)
	root := t.TempDir()
	sd := &SharedDir{Root: root, Poll: time.Millisecond}
	job := NewJob(cfg, "A2", plan, exp.CellRange{Lo: 0, Hi: 2})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sd.Send(ctx, job)
		done <- err
	}()
	// Wait until the ticket is spooled, then cancel.
	deadline := time.After(10 * time.Second)
	for {
		names, _ := filepath.Glob(filepath.Join(root, "jobs", "*.json"))
		if len(names) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("ticket never spooled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled send: err = %v", err)
	}
	if names, _ := filepath.Glob(filepath.Join(root, "jobs", "*")); len(names) != 0 {
		t.Errorf("ticket not withdrawn on cancel: %v", names)
	}
}
