//go:build !unix

package dispatch

import "os/exec"

// Non-unix platforms get plain child management: no process groups,
// cancellation kills only the direct worker process.
func setProcessGroup(*exec.Cmd) {}

func killProcessGroup(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}
