package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"suu/internal/exp"
)

// TestMain doubles as the LocalExec worker: when SUU_DISPATCH_WORKER
// is set the test binary acts as a grid worker instead of running
// tests — the same self-exec trick cmd/suu-grid uses, so LocalExec is
// exercised against a real forked process, real files, and real
// process groups.
//
// Worker argv: <lo> <hi> <outPath> [mode]
// Modes: "" (honest), "truncate-once" (write a cut envelope the first
// time, honest after — state via a marker file next to outPath),
// "hang" (never write, sleep forever — for the kill test).
func TestMain(m *testing.M) {
	if os.Getenv("SUU_DISPATCH_WORKER") != "" {
		workerMain()
		return
	}
	os.Exit(m.Run())
}

func workerMain() {
	args := os.Args[1:]
	if len(args) < 3 {
		fmt.Fprintln(os.Stderr, "worker: want <lo> <hi> <out> [mode]")
		os.Exit(2)
	}
	lo, _ := strconv.Atoi(args[0])
	hi, _ := strconv.Atoi(args[1])
	outPath := args[2]
	mode := ""
	if len(args) > 3 {
		mode = args[3]
	}
	if mode == "hang" {
		time.Sleep(5 * time.Minute)
		os.Exit(1)
	}
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	f := exp.RunShard(cfg, exp.ShardSpec{Plan: plan, Range: exp.CellRange{Lo: lo, Hi: hi}})
	data, err := exp.EncodeShardFile(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	if mode == "truncate-once" {
		// Keyed by range, not output path: re-issues spool to fresh
		// nonce paths but must see an honest second attempt.
		marker := filepath.Join(filepath.Dir(outPath), fmt.Sprintf("fired-%d-%d", lo, hi))
		if _, err := os.Stat(marker); os.IsNotExist(err) {
			os.WriteFile(marker, []byte("x"), 0o644)
			data = data[:len(data)/2]
		}
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// selfExec builds a LocalExec that re-invokes this test binary as a
// worker in the given mode.
func selfExec(t *testing.T, id, dir, mode string) *LocalExec {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return &LocalExec{
		ID:  id,
		Exe: exe,
		Dir: dir,
		Args: func(job Job, outPath string) []string {
			argv := []string{strconv.Itoa(job.Range.Lo), strconv.Itoa(job.Range.Hi), outPath}
			if mode != "" {
				argv = append(argv, mode)
			}
			return argv
		},
	}
}

func localExecEnv(t *testing.T) {
	t.Helper()
	t.Setenv("SUU_DISPATCH_WORKER", "1")
}

// TestLocalExecRoundTrip: a real forked worker produces an envelope
// that validates, and a coordinator over two such runners reproduces
// the sequential bytes.
func TestLocalExecRoundTrip(t *testing.T) {
	localExecEnv(t)
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	want := sequentialBytes(t, cfg, plan)
	dir := t.TempDir()

	c := New([]Transport{selfExec(t, "local-0", dir, ""), selfExec(t, "local-1", dir, "")}, Options{Shards: 4})
	m, _, _, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("forked-worker merge differs from sequential bytes")
	}
}

// TestLocalExecTruncatedEnvelopeRetries is the truncated-envelope
// regression: a worker that writes a cut-short envelope file must
// surface as a typed, re-issuable fault for the shard's range — not a
// fatal merge error — and the retry must land the correct bytes.
func TestLocalExecTruncatedEnvelopeRetries(t *testing.T) {
	localExecEnv(t)
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	want := sequentialBytes(t, cfg, plan)
	dir := t.TempDir()

	// First, pin the typed error at the transport level.
	le := selfExec(t, "local", dir, "truncate-once")
	r := exp.CellRange{Lo: 0, Hi: plan.NumCells()}
	job := NewJob(cfg, "dispatch-test", plan, r)
	_, err := le.Send(context.Background(), job)
	if err == nil {
		t.Fatal("truncated envelope file decoded cleanly")
	}
	var fe *exp.EnvelopeFaultError
	if !errors.As(err, &fe) || fe.Class != exp.FaultParse {
		t.Fatalf("truncated envelope: err = %v, want parse-class envelope fault", err)
	}
	var miss *exp.MissingRangeError
	if !errors.As(err, &miss) || miss.Range != r {
		t.Fatalf("truncated envelope does not convert to MissingRangeError for %v (err %v)", r, err)
	}

	// Then end to end: the coordinator retries the range and the merge
	// still matches the sequential run byte for byte.
	dir2 := t.TempDir()
	c := New([]Transport{selfExec(t, "local", dir2, "truncate-once")}, Options{Shards: 1, MaxAttempts: 3, BackoffBase: time.Millisecond})
	m, _, stats, err := c.Run(context.Background(), cfg, "dispatch-test", plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.ReIssues == 0 || stats.FaultsDetected == 0 {
		t.Errorf("truncated delivery was not re-issued: %+v", stats)
	}
	if !bytes.Equal(mergedBytes(t, m), want) {
		t.Error("post-retry merge differs from sequential bytes")
	}
}

// TestLocalExecCancellationKillsWorker: canceling a Send kills the
// worker process group promptly instead of waiting out the job.
func TestLocalExecCancellationKillsWorker(t *testing.T) {
	localExecEnv(t)
	cfg, plan := dispatchTestConfig(), dispatchTestPlan()
	dir := t.TempDir()
	le := selfExec(t, "local", dir, "hang")
	job := NewJob(cfg, "dispatch-test", plan, exp.CellRange{Lo: 0, Hi: 4})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := le.Send(ctx, job)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killed send returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Send did not return after cancel — hung worker was not killed")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("kill took %v", d)
	}
	// No envelope should have been spooled by the hung worker.
	if names, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(names) != 0 {
		t.Errorf("hung worker left envelopes: %v", names)
	}
}
