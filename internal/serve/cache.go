package serve

import (
	"container/list"
	"sync"
)

// entryOverhead is the fixed per-entry bookkeeping charge (list
// element, map slot, key string) added to every cached value's
// self-reported size, so a cache of many tiny entries still accounts
// for its real footprint.
const entryOverhead = 128

// Cache is a size-bounded LRU with single-flight request coalescing,
// keyed by fingerprint strings. It is the one caching primitive of the
// serving layer: the result, engine, basis and instance caches are
// four instances with different budgets.
//
// Do is the main entry point: a hit returns the cached value and
// promotes it; a miss runs build exactly once even under concurrent
// identical requests — later arrivals block on the first caller's
// in-flight build and share its value (coalescing), so a thundering
// herd of N identical cold requests costs one build, not N. Failed
// builds are not cached (every waiter sees the error; the next request
// retries).
//
// Eviction is strict LRU by byte budget: inserting past MaxBytes evicts
// from the cold end until the new entry fits. A single entry larger
// than the whole budget is admitted alone (the alternative — refusing
// it — would make oversized instances uncacheable and turn every
// request for them into a cold build with no visible signal).
type Cache struct {
	mu       sync.Mutex
	max      int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call

	hits, misses, coalesced, evictions uint64
}

type entry struct {
	key  string
	val  any
	size int64
}

// call is one in-flight build shared by coalesced callers.
type call struct {
	done chan struct{}
	val  any
	size int64
	err  error
}

// NewCache returns an empty cache bounded by maxBytes.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		max:      maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Do returns the value for key, building it with build on a miss. The
// returned flags report how the value was obtained: hit (served from
// the cache), coalesced (this caller waited on another caller's
// in-flight build). Both false means this caller ran build itself.
// build's second return is the value's resident size in bytes.
func (c *Cache) Do(key string, build func() (any, int64, error)) (val any, hit, coalesced bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, false, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.val, false, true, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	c.mu.Unlock()

	cl.val, cl.size, cl.err = build()
	close(cl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insertLocked(key, cl.val, cl.size)
	}
	c.mu.Unlock()
	return cl.val, false, false, cl.err
}

// Get peeks at key without building, promoting on a hit. It does not
// touch the hit/miss counters: Get serves opportunistic lookups (the
// warm-basis probe) whose misses are expected and would distort the
// hit rate.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts (or replaces) key directly — used by write-through
// paths, e.g. the solve path depositing an exported LP basis.
func (c *Cache) Put(key string, val any, size int64) {
	c.mu.Lock()
	c.insertLocked(key, val, size)
	c.mu.Unlock()
}

func (c *Cache) insertLocked(key string, val any, size int64) {
	size += entryOverhead
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*entry)
		c.bytes += size - old.size
		old.val, old.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.bytes += size
	}
	for c.bytes > c.max && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of one cache's counters, as
// rendered by /statusz.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	// Coalesced counts callers that waited on another caller's
	// in-flight build instead of running their own.
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}
