package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"time"

	"suu/internal/exp"
	"suu/internal/model"
	"suu/internal/stats"
	"suu/internal/workload"
)

// Benchmark is the serving layer's load harness: a storm of concurrent
// clients driving a mixed repeat/fresh workload through the full
// handler stack, recorded as the BENCH_sim.json serve section.
//
// The storm runs in-process (client goroutines calling the handler
// directly), so the record measures the service stack — routing,
// fingerprinting, the caches, single-flight — without kernel socket
// noise; the CI serve-smoke job covers the real TCP path through the
// daemon. Three request classes mix:
//
//   - repeat solves and estimates of a pre-warmed hot set, referenced
//     by instance_id as a steady client would (cache hits);
//   - fresh solves of never-before-seen chains instances (cold LP
//     builds);
//   - one deliberately expensive UNwarmed solve (the exact solver)
//     requested by every client at the starting gun, so the
//     single-flight path runs under a real thundering herd and the
//     coalescing counter is exercised.
//
// Hit latency is measured against cold-build latency; the CI gate
// asserts the p50 ratio stays ≥10x.
func Benchmark(cfg exp.Config) *exp.ServeBench {
	srv := New(Config{})
	const clients = 1000
	perClient := 8
	if cfg.Quick {
		perClient = 3
	}
	const nHot = 8
	hot := make([]*model.Instance, nHot)
	for i := range hot {
		hot[i] = workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: cfg.Seed + int64(i)})
	}
	// The thundering-herd target: never pre-warmed, and expensive
	// enough (layered value iteration over every unfinished set) that
	// the one cold build is still in flight while the other 999
	// requests arrive.
	herd := workload.Independent(workload.Config{Jobs: 11, Machines: 3, Seed: cfg.Seed + 977})

	type reply struct {
		meta Meta
		code int
		ms   float64
	}
	do := func(path string, body any) reply {
		data, err := json.Marshal(body)
		if err != nil {
			return reply{code: 599}
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(data))
		rec := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(rec, req)
		r := reply{code: rec.Code, ms: float64(time.Since(start).Nanoseconds()) / 1e6}
		var parsed struct {
			Meta Meta `json:"meta"`
		}
		json.Unmarshal(rec.Body.Bytes(), &parsed)
		r.meta = parsed.Meta
		return r
	}

	// Pre-warm the hot set (submit, solve, estimate) so repeat
	// requests measure hits, not first builds; keep the ids so the
	// storm references instances the way a steady client would.
	hotIDs := make([]string, nHot)
	for i, in := range hot {
		hotIDs[i] = InstanceKey(in)
		do("/v1/instances", in)
		do("/v1/solve", map[string]any{"instance_id": hotIDs[i], "solver": "auto"})
		do("/v1/estimate", map[string]any{"instance_id": hotIDs[i], "solver": "auto", "reps": 200, "sim_seed": 7})
	}

	var (
		mu             sync.Mutex
		coldMS, hitMS  []float64
		errors, reqs   int
		freshInstances int
	)
	record := func(r reply, wantCold bool) {
		mu.Lock()
		defer mu.Unlock()
		reqs++
		switch {
		case r.code != 200:
			errors++
		case r.meta.Cached:
			hitMS = append(hitMS, r.ms)
		case wantCold && !r.meta.Coalesced:
			coldMS = append(coldMS, r.ms)
		}
	}

	startGate := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-startGate
			// Thundering herd: everyone asks for the same cold solve.
			record(do("/v1/solve", map[string]any{"instance": herd, "solver": "optimal"}), false)
			for i := 0; i < perClient; i++ {
				idx := c*perClient + i
				switch {
				case idx%5 == 4:
					// Fresh chains instance: a cold LP pipeline mid-storm.
					in := workload.Chains(workload.Config{Jobs: 32, Machines: 8, Seed: cfg.Seed + 10_000 + int64(idx)}, 4)
					mu.Lock()
					freshInstances++
					mu.Unlock()
					record(do("/v1/solve", map[string]any{"instance": in, "solver": "auto"}), true)
				case idx%2 == 0:
					record(do("/v1/solve", map[string]any{"instance_id": hotIDs[idx%nHot], "solver": "auto"}), false)
				default:
					record(do("/v1/estimate", map[string]any{"instance_id": hotIDs[idx%nHot], "solver": "auto", "reps": 200, "sim_seed": 7}), false)
				}
			}
		}(c)
	}
	start := time.Now()
	close(startGate)
	wg.Wait()
	wallMS := float64(time.Since(start).Nanoseconds()) / 1e6

	st := srv.StatusSnapshot().Caches["results"]
	b := &exp.ServeBench{
		Clients:        clients,
		Requests:       reqs,
		HotInstances:   nHot,
		FreshInstances: freshInstances,
		WallMS:         wallMS,
		ColdP50MS:      quantileOrZero(coldMS, 0.5),
		ColdP99MS:      quantileOrZero(coldMS, 0.99),
		HitP50MS:       quantileOrZero(hitMS, 0.5),
		HitP99MS:       quantileOrZero(hitMS, 0.99),
		Hits:           st.Hits,
		Misses:         st.Misses,
		Coalesced:      st.Coalesced,
		Evictions:      st.Evictions,
		Errors:         errors,
	}
	if wallMS > 0 {
		b.RequestsPerSec = float64(reqs) / (wallMS / 1e3)
	}
	if b.HitP50MS > 0 {
		b.SpeedupP50 = b.ColdP50MS / b.HitP50MS
	}
	if total := st.Hits + st.Misses; total > 0 {
		b.HitRate = float64(st.Hits) / float64(total)
	}
	if errors > 0 {
		b.Error = "requests failed; see errors"
	}
	return b
}

func quantileOrZero(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Quantile(xs, q)
}
