package serve

import (
	"sync"

	"suu/internal/stats"
)

// endpointStats accumulates one endpoint's latency distribution with
// O(1) memory: request and error counts, a latency sum for the mean,
// and streaming P² estimators for the p50/p99 — the same
// stats.P2Quantile the simulator's quantile paths use, so the daemon
// never materializes a latency log.
type endpointStats struct {
	mu     sync.Mutex
	count  uint64
	errors uint64
	sumMS  float64
	p50    *stats.P2Quantile
	p99    *stats.P2Quantile
}

func newEndpointStats() *endpointStats {
	return &endpointStats{p50: stats.NewP2Quantile(0.5), p99: stats.NewP2Quantile(0.99)}
}

func (e *endpointStats) observe(ms float64, isErr bool) {
	e.mu.Lock()
	e.count++
	if isErr {
		e.errors++
	}
	e.sumMS += ms
	e.p50.Add(ms)
	e.p99.Add(ms)
	e.mu.Unlock()
}

// EndpointMetrics is one endpoint's row in /metricsz.
type EndpointMetrics struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func (e *endpointStats) snapshot() EndpointMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := EndpointMetrics{Count: e.count, Errors: e.errors}
	if e.count > 0 {
		m.MeanMS = e.sumMS / float64(e.count)
	}
	if e.p50.N() > 0 {
		m.P50MS = e.p50.Value()
		m.P99MS = e.p99.Value()
	}
	return m
}

// metrics is the per-endpoint latency registry behind /metricsz.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointStats)}
}

func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = newEndpointStats()
		m.endpoints[name] = e
	}
	return e
}

func (m *metrics) snapshot() map[string]EndpointMetrics {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	m.mu.Unlock()
	out := make(map[string]EndpointMetrics, len(names))
	for _, n := range names {
		out[n] = m.endpoint(n).snapshot()
	}
	return out
}
