package serve

import (
	"sort"

	"suu/internal/fingerprint"
	"suu/internal/model"
)

// The cache keys are content fingerprints (internal/fingerprint), so
// identical content hits the same entry no matter how it arrived:
// inline instances and instance_id references, "auto" and the concrete
// solver id it resolves to, a JSON body with reordered fields — all
// collapse to one key. Every doc below is canonicalized before hashing
// (edges sorted; auto resolved by the caller) and every key kind hashes
// a structurally distinct doc, so kinds cannot collide with each other.

// instanceKeyWidth is the truncation width (hex chars = 2× bytes) of
// instance and schedule ids. 16 hex chars = 64 bits: collisions need
// ~2^32 distinct instances in one daemon's lifetime.
const instanceKeyWidth = 8

// instanceDoc is the canonical form of an instance: the JSON wire
// shape with the edge list sorted. model.Instance marshals edges in
// insertion order, so two submissions of the same dag with edges added
// in different orders would otherwise fingerprint apart.
type instanceDoc struct {
	Jobs     int         `json:"jobs"`
	Machines int         `json:"machines"`
	P        [][]float64 `json:"p"`
	Edges    [][2]int    `json:"edges"`
}

// InstanceKey fingerprints an instance by content.
func InstanceKey(in *model.Instance) string {
	doc := instanceDoc{Jobs: in.N, Machines: in.M, P: in.P}
	for u := 0; u < in.N; u++ {
		for _, v := range in.Prec.Succs(u) {
			doc.Edges = append(doc.Edges, [2]int{u, v})
		}
	}
	sort.Slice(doc.Edges, func(i, j int) bool {
		if doc.Edges[i][0] != doc.Edges[j][0] {
			return doc.Edges[i][0] < doc.Edges[j][0]
		}
		return doc.Edges[i][1] < doc.Edges[j][1]
	})
	return fingerprint.JSON(doc, instanceKeyWidth)
}

// solveKey identifies one solve: instance content, the CONCRETE solver
// id (the handler resolves "auto" before keying, so auto and explicit
// requests share entries), and the construction seed. It doubles as
// the schedule id returned to clients.
func solveKey(instKey, solver string, seed int64) string {
	return fingerprint.JSON(struct {
		Kind     string `json:"kind"`
		Instance string `json:"instance"`
		Solver   string `json:"solver"`
		Seed     int64  `json:"seed"`
	}{"solve", instKey, solver, seed}, instanceKeyWidth)
}

// basisKey identifies the LP warm-start basis of a solve. It is the
// solve key under a distinct kind: the basis outlives the (much
// larger) result entry in its own cache, and must never collide with
// it.
func basisKey(instKey, solver string, seed int64) string {
	return fingerprint.JSON(struct {
		Kind     string `json:"kind"`
		Instance string `json:"instance"`
		Solver   string `json:"solver"`
		Seed     int64  `json:"seed"`
	}{"basis", instKey, solver, seed}, instanceKeyWidth)
}

// estimateKey identifies one estimate: the schedule plus every
// parameter that feeds the repetition streams or the convergence loop.
// Worker count is deliberately absent — estimates are bit-identical at
// any concurrency (the engine contract), so it must not split the
// cache.
func estimateKey(scheduleID string, simSeed int64, reps, maxSteps int, ciHW float64, maxReps int) string {
	return fingerprint.JSON(struct {
		Kind       string  `json:"kind"`
		Schedule   string  `json:"schedule"`
		SimSeed    int64   `json:"sim_seed"`
		Reps       int     `json:"reps"`
		MaxSteps   int     `json:"max_steps"`
		CIHW       float64 `json:"ci_half_width"`
		MaxRepsCap int     `json:"max_reps"`
	}{"estimate", scheduleID, simSeed, reps, maxSteps, ciHW, maxReps}, instanceKeyWidth)
}

// instanceSizeBytes estimates an instance's resident footprint for
// cache accounting.
func instanceSizeBytes(in *model.Instance) int64 {
	return int64(in.N)*int64(in.M)*8 + int64(in.Prec.E())*16 + 128
}
