package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"suu/internal/core"
	"suu/internal/lp"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
)

// Config sizes the daemon's caches and bounds per-request work.
type Config struct {
	// ResultCacheBytes bounds the result cache: solve responses (with
	// their built schedules) and estimate responses.
	ResultCacheBytes int64
	// EngineCacheBytes bounds the compiled-engine cache: sim.Prepared
	// contexts (occurrence lists, adaptive transition tables).
	EngineCacheBytes int64
	// BasisCacheBytes bounds the LP warm-start basis cache. Bases are
	// tiny (two int slices), so this cache outlives result entries by
	// construction and a re-solve after result eviction warm-starts.
	BasisCacheBytes int64
	// InstanceCacheBytes bounds the submitted-instance store behind
	// instance_id references.
	InstanceCacheBytes int64
	// MaxReps caps any single estimate request's repetitions (direct or
	// via the convergence loop). 0 means the default (1<<17).
	MaxReps int
	// Workers is the estimation concurrency per request (0 =
	// GOMAXPROCS). Estimates are bit-identical at any setting.
	Workers int
}

// DefaultConfig returns the daemon defaults.
func DefaultConfig() Config {
	return Config{
		ResultCacheBytes:   64 << 20,
		EngineCacheBytes:   128 << 20,
		BasisCacheBytes:    4 << 20,
		InstanceCacheBytes: 32 << 20,
		MaxReps:            1 << 17,
	}
}

// Server is the suu-serve HTTP handler: the solver registry and the
// simulation engines behind a JSON API, with content-fingerprint
// caches in front of every expensive step. See the package comment for
// the endpoint catalogue and the caching contract.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	results   *Cache // solve + estimate responses, keyed by content
	engines   *Cache // sim.Prepared per schedule
	bases     *Cache // lp.Basis per solve
	instances *Cache // submitted instances by fingerprint
	metrics   *metrics
	start     time.Time
}

// solveEntry is the result cache's value for a solve key: the registry
// result (with the built policy — the schedule store) plus the stable
// response body.
type solveEntry struct {
	instKey string
	in      *model.Instance
	res     *solve.Result
	result  SolveResult
}

// estimateEntry is the result cache's value for an estimate key.
type estimateEntry struct {
	result EstimateResult
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.ResultCacheBytes <= 0 {
		cfg.ResultCacheBytes = def.ResultCacheBytes
	}
	if cfg.EngineCacheBytes <= 0 {
		cfg.EngineCacheBytes = def.EngineCacheBytes
	}
	if cfg.BasisCacheBytes <= 0 {
		cfg.BasisCacheBytes = def.BasisCacheBytes
	}
	if cfg.InstanceCacheBytes <= 0 {
		cfg.InstanceCacheBytes = def.InstanceCacheBytes
	}
	if cfg.MaxReps <= 0 {
		cfg.MaxReps = def.MaxReps
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		results:   NewCache(cfg.ResultCacheBytes),
		engines:   NewCache(cfg.EngineCacheBytes),
		bases:     NewCache(cfg.BasisCacheBytes),
		instances: NewCache(cfg.InstanceCacheBytes),
		metrics:   newMetrics(),
		start:     time.Now(),
	}
	s.mux.Handle("POST /v1/instances", s.instrument("instances", s.handleInstances))
	s.mux.Handle("POST /v1/solve", s.instrument("solve", s.handleSolve))
	s.mux.Handle("POST /v1/estimate", s.instrument("estimate", s.handleEstimate))
	s.mux.Handle("GET /v1/schedules/{id}", s.instrument("schedules", s.handleSchedule))
	s.mux.Handle("GET /v1/solvers", s.instrument("solvers", s.handleSolvers))
	s.mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /statusz", s.instrument("statusz", s.handleStatusz))
	s.mux.Handle("GET /metricsz", s.instrument("metricsz", s.handleMetricsz))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter records the status code for the metrics wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	ep := s.metrics.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		ep.observe(float64(time.Since(start).Nanoseconds())/1e6, sw.status >= 400)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Meta is the volatile half of a reply: how THIS request was served.
// It lives outside the result object so that cached and cold replies
// carry byte-identical results — the bit-identity tests compare the
// result objects and only the result objects.
type Meta struct {
	// Cached reports a result-cache hit.
	Cached bool `json:"cached"`
	// Coalesced reports that this request waited on another request's
	// identical in-flight build and shared its value.
	Coalesced bool `json:"coalesced,omitempty"`
	// BuildMS is the cold build's wall-clock (absent on hits).
	BuildMS float64 `json:"build_ms,omitempty"`
	// WarmBasis reports that a cold solve warm-started its LP from the
	// basis cache.
	WarmBasis bool `json:"warm_basis,omitempty"`
	// EngineCached reports that an estimate reused a cached compiled
	// engine instead of compiling one.
	EngineCached bool `json:"engine_cached,omitempty"`
}

// ---- POST /v1/instances ----

type instanceReply struct {
	ID       string `json:"id"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	Class    string `json:"class"`
	Width    int    `json:"width"`
	Depth    int    `json:"depth"`
}

func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	in := &model.Instance{}
	if err := json.NewDecoder(r.Body).Decode(in); err != nil {
		httpError(w, http.StatusBadRequest, "decode instance: %v", err)
		return
	}
	key := InstanceKey(in)
	s.instances.Put(key, in, instanceSizeBytes(in))
	writeJSON(w, http.StatusOK, instanceReply{
		ID: key, Jobs: in.N, Machines: in.M,
		Class: in.Prec.Classify().String(), Width: in.Prec.Width(), Depth: in.Prec.Depth(),
	})
}

// resolveInstance returns the request's instance: inline body wins
// (and is deposited in the instance store), instance_id is looked up.
func (s *Server) resolveInstance(raw json.RawMessage, id string) (*model.Instance, string, error) {
	if len(raw) > 0 {
		in := &model.Instance{}
		if err := json.Unmarshal(raw, in); err != nil {
			return nil, "", fmt.Errorf("decode instance: %w", err)
		}
		key := InstanceKey(in)
		s.instances.Put(key, in, instanceSizeBytes(in))
		return in, key, nil
	}
	if id == "" {
		return nil, "", fmt.Errorf("request needs an inline instance or an instance_id")
	}
	v, ok := s.instances.Get(id)
	if !ok {
		return nil, "", fmt.Errorf("unknown instance_id %q (evicted or never submitted; re-submit via POST /v1/instances)", id)
	}
	return v.(*model.Instance), id, nil
}

// resolveSolver maps a request's solver field to a concrete registry
// solver, resolving "auto" (or empty) to the strongest construction
// for the instance's precedence class — so auto requests and explicit
// requests for the same construction share cache entries.
func resolveSolver(name string, in *model.Instance) (solve.Solver, error) {
	if name == "" || name == "auto" {
		return solve.Strongest(in.Prec.Classify())
	}
	sol, ok := solve.Get(name)
	if !ok {
		return solve.Solver{}, fmt.Errorf("unknown solver %q (GET /v1/solvers for the catalogue)", name)
	}
	return sol, nil
}

// ---- POST /v1/solve ----

type solveRequest struct {
	Instance   json.RawMessage `json:"instance,omitempty"`
	InstanceID string          `json:"instance_id,omitempty"`
	Solver     string          `json:"solver,omitempty"`
	Seed       int64           `json:"seed,omitempty"`
}

// SolveResult is the stable body of a solve reply: identical bytes
// whether built cold or served from the cache.
type SolveResult struct {
	// ScheduleID keys GET /v1/schedules/{id} and estimate requests.
	ScheduleID string  `json:"schedule_id"`
	InstanceID string  `json:"instance_id"`
	Solver     string  `json:"solver"`
	Kind       string  `json:"kind"`
	Guarantee  string  `json:"guarantee"`
	Class      string  `json:"class"`
	Adaptive   bool    `json:"adaptive"`
	PrefixLen  int     `json:"prefix_len,omitempty"`
	CoreLength int     `json:"core_length,omitempty"`
	LPValue    float64 `json:"lp_value,omitempty"`
	LowerBound float64 `json:"lower_bound,omitempty"`
	ExactValue float64 `json:"exact_value,omitempty"`
	Detail     string  `json:"detail"`
}

type solveReply struct {
	Result SolveResult `json:"result"`
	Meta   Meta        `json:"meta"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	entry, meta, err := s.solveEntry(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, solveReply{Result: entry.result, Meta: meta})
}

// solveEntry runs the cached solve path shared by /v1/solve and
// /v1/estimate: resolve instance and solver, then build through the
// result cache (one build per content key, however many concurrent
// requests ask).
func (s *Server) solveEntry(req solveRequest) (*solveEntry, Meta, error) {
	in, instKey, err := s.resolveInstance(req.Instance, req.InstanceID)
	if err != nil {
		return nil, Meta{}, err
	}
	sol, err := resolveSolver(req.Solver, in)
	if err != nil {
		return nil, Meta{}, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	key := solveKey(instKey, sol.ID, seed)
	bKey := basisKey(instKey, sol.ID, seed)
	var meta Meta
	v, hit, coal, err := s.results.Do(key, func() (any, int64, error) {
		par := core.DefaultParams()
		par.Seed = seed
		if b, ok := s.bases.Get(bKey); ok {
			par.WarmBasis = b.(*lp.Basis)
			meta.WarmBasis = true
		}
		start := time.Now()
		res, err := sol.Build(in, par)
		if err != nil {
			return nil, 0, err
		}
		meta.BuildMS = float64(time.Since(start).Nanoseconds()) / 1e6
		if res.LPBasis != nil {
			s.bases.Put(bKey, res.LPBasis, basisSizeBytes(res.LPBasis))
		}
		e := &solveEntry{
			instKey: instKey,
			in:      in,
			res:     res,
			result: SolveResult{
				ScheduleID: key,
				InstanceID: instKey,
				Solver:     sol.ID,
				Kind:       res.Kind,
				Guarantee:  res.Guarantee,
				Class:      in.Prec.Classify().String(),
				Adaptive:   res.Adaptive,
				PrefixLen:  res.PrefixLen,
				CoreLength: res.CoreLength,
				LPValue:    res.LPValue,
				LowerBound: res.LowerBound,
				ExactValue: res.ExactValue,
				Detail:     res.Detail,
			},
		}
		return e, solveEntrySizeBytes(in, res), nil
	})
	if err != nil {
		return nil, Meta{}, err
	}
	meta.Cached, meta.Coalesced = hit, coal
	if hit || coal {
		// The build-side fields describe someone else's build.
		meta.BuildMS, meta.WarmBasis = 0, false
	}
	return v.(*solveEntry), meta, nil
}

func basisSizeBytes(b *lp.Basis) int64 {
	return int64(len(b.Basic)+len(b.AtUpper))*8 + 64
}

// solveEntrySizeBytes estimates a solve entry's resident size: the
// instance, the schedule prefix (the dominant term for oblivious
// schedules), and a fixed charge for the result metadata.
func solveEntrySizeBytes(in *model.Instance, res *solve.Result) int64 {
	n := instanceSizeBytes(in) + 512
	if obl, ok := res.Policy.(*sched.Oblivious); ok {
		n += int64(obl.Len())*int64(obl.M)*8 + 256
	}
	return n
}

// ---- POST /v1/estimate ----

type estimateRequest struct {
	Instance   json.RawMessage `json:"instance,omitempty"`
	InstanceID string          `json:"instance_id,omitempty"`
	// ScheduleID estimates an already-solved schedule; alternatively
	// the request carries instance+solver and the solve runs (or hits
	// its cache) inline.
	ScheduleID string `json:"schedule_id,omitempty"`
	Solver     string `json:"solver,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	// SimSeed drives the repetition streams (default 1). Identical
	// (schedule, sim parameters) requests are bit-identical — and
	// therefore cacheable.
	SimSeed  int64 `json:"sim_seed,omitempty"`
	Reps     int   `json:"reps,omitempty"`
	MaxSteps int   `json:"max_steps,omitempty"`
	// CIHalfWidth, when positive, turns the request into a convergence
	// loop: repetitions grow (deterministically) until the 95% CI
	// half-width is at most this target or MaxReps is reached.
	CIHalfWidth float64 `json:"ci_half_width,omitempty"`
	MaxReps     int     `json:"max_reps,omitempty"`
}

// EstimateResult is the stable body of an estimate reply.
type EstimateResult struct {
	ScheduleID  string  `json:"schedule_id"`
	Reps        int     `json:"reps"`
	Mean        float64 `json:"mean"`
	StdDev      float64 `json:"std_dev"`
	HalfWidth95 float64 `json:"half_width_95"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
	// Incomplete counts repetitions that hit the step cap.
	Incomplete int `json:"incomplete,omitempty"`
	// Engine and Lanes record the simulation engine that ran (see
	// sim.EngineUsed); Spliced whether terminal layers were closed in
	// closed form.
	Engine  string `json:"engine"`
	Lanes   int    `json:"lanes,omitempty"`
	Spliced bool   `json:"spliced,omitempty"`
	// TargetHalfWidth echoes the convergence target; Converged whether
	// the loop reached it within MaxReps; Rounds how many estimation
	// passes the loop ran.
	TargetHalfWidth float64 `json:"target_half_width,omitempty"`
	Converged       bool    `json:"converged,omitempty"`
	Rounds          int     `json:"rounds,omitempty"`
}

type estimateReply struct {
	Result EstimateResult `json:"result"`
	Meta   Meta           `json:"meta"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}

	// Resolve the schedule: by id from the result cache, or by solving
	// (through the same cache) from instance+solver.
	var (
		entry *solveEntry
		meta  Meta
	)
	if req.ScheduleID != "" {
		v, ok := s.results.Get(req.ScheduleID)
		if !ok {
			httpError(w, http.StatusNotFound,
				"unknown schedule_id %q (evicted or never solved; re-solve via POST /v1/solve)", req.ScheduleID)
			return
		}
		se, ok := v.(*solveEntry)
		if !ok {
			httpError(w, http.StatusNotFound, "id %q does not name a schedule", req.ScheduleID)
			return
		}
		entry = se
	} else {
		var err error
		entry, _, err = s.solveEntry(solveRequest{
			Instance: req.Instance, InstanceID: req.InstanceID,
			Solver: req.Solver, Seed: req.Seed,
		})
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	// Defaults and caps.
	simSeed := req.SimSeed
	if simSeed == 0 {
		simSeed = 1
	}
	maxSteps := req.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	maxReps := req.MaxReps
	if maxReps <= 0 || maxReps > s.cfg.MaxReps {
		maxReps = s.cfg.MaxReps
	}
	reps := req.Reps
	if reps <= 0 {
		if req.CIHalfWidth > 0 {
			reps = 64 // convergence loop start
		} else {
			reps = 200
		}
	}
	if reps > maxReps {
		reps = maxReps
	}
	if req.CIHalfWidth < 0 {
		httpError(w, http.StatusBadRequest, "ci_half_width must be positive")
		return
	}

	scheduleID := entry.result.ScheduleID
	eKey := estimateKey(scheduleID, simSeed, reps, maxSteps, req.CIHalfWidth, maxReps)
	v, hit, coal, err := s.results.Do(eKey, func() (any, int64, error) {
		prep, engineHit, err := s.prepared(entry)
		if err != nil {
			return nil, 0, err
		}
		meta.EngineCached = engineHit
		res := runEstimate(prep, reps, maxSteps, simSeed, req.CIHalfWidth, maxReps, s.cfg.Workers)
		res.ScheduleID = scheduleID
		return &estimateEntry{result: res}, 512, nil
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "estimate: %v", err)
		return
	}
	meta.Cached, meta.Coalesced = hit, coal
	if hit || coal {
		meta.EngineCached = false
	}
	writeJSON(w, http.StatusOK, estimateReply{Result: v.(*estimateEntry).result, Meta: meta})
}

// prepared fetches (or builds) the cached compiled engine for a solve
// entry.
func (s *Server) prepared(entry *solveEntry) (*sim.Prepared, bool, error) {
	v, hit, coal, err := s.engines.Do(entry.result.ScheduleID, func() (any, int64, error) {
		p := sim.Prepare(entry.in, entry.res.Policy)
		return p, p.SizeBytes(), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*sim.Prepared), hit || coal, nil
}

// runEstimate runs one estimate, or the CI convergence loop when
// ciHW > 0: repetitions grow by the squared half-width ratio (clamped
// to [2x, 16x]) until the target is met or maxReps is reached. The
// growth factor depends only on the measured half-width, which is
// deterministic given the seed, so the loop — and therefore the
// response — is a pure function of the request.
func runEstimate(prep *sim.Prepared, reps, maxSteps int, simSeed int64, ciHW float64, maxReps, workers int) EstimateResult {
	sum, inc, eng := prep.EstimateParallelInfo(reps, maxSteps, simSeed, workers)
	rounds := 1
	for ciHW > 0 && sum.HalfWidth95 > ciHW && reps < maxReps {
		ratio := sum.HalfWidth95 / ciHW
		factor := ratio * ratio * 1.2 // 20% headroom: σ/√n estimates are noisy
		if factor < 2 {
			factor = 2
		} else if factor > 16 {
			factor = 16
		}
		reps = int(float64(reps) * factor)
		if reps > maxReps {
			reps = maxReps
		}
		sum, inc, eng = prep.EstimateParallelInfo(reps, maxSteps, simSeed, workers)
		rounds++
	}
	res := EstimateResult{
		Reps:        reps,
		Mean:        sum.Mean,
		StdDev:      sum.StdDev,
		HalfWidth95: sum.HalfWidth95,
		Min:         sum.Min,
		Max:         sum.Max,
		Incomplete:  inc,
		Engine:      eng.Engine,
		Lanes:       eng.Lanes,
		Spliced:     eng.Spliced,
	}
	if ciHW > 0 {
		res.TargetHalfWidth = ciHW
		res.Converged = sum.HalfWidth95 <= ciHW
		res.Rounds = rounds
	}
	return res
}

// ---- GET /v1/schedules/{id} ----

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.results.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound,
			"unknown schedule %q (evicted or never solved; re-solve via POST /v1/solve)", id)
		return
	}
	entry, ok := v.(*solveEntry)
	if !ok {
		httpError(w, http.StatusNotFound, "id %q does not name a schedule", id)
		return
	}
	obl, oblivious := entry.res.Policy.(*sched.Oblivious)
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json":
		if !oblivious {
			httpError(w, http.StatusConflict,
				"schedule %q is adaptive: no serialized prefix (formats json/gantt/analyze need an oblivious schedule)", id)
			return
		}
		writeJSON(w, http.StatusOK, obl)
	case "gantt":
		if !oblivious {
			httpError(w, http.StatusConflict, "schedule %q is adaptive: no Gantt rendering", id)
			return
		}
		steps := obl.Len()
		if q := r.URL.Query().Get("steps"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &steps); err != nil || steps <= 0 {
				httpError(w, http.StatusBadRequest, "bad steps %q", q)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obl.Gantt(steps))
	case "analyze":
		if !oblivious {
			httpError(w, http.StatusConflict, "schedule %q is adaptive: no prefix analysis", id)
			return
		}
		writeJSON(w, http.StatusOK, sched.AnalyzePrefix(entry.in, obl))
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, gantt, analyze)", format)
	}
}

// ---- GET /v1/solvers ----

type solverInfo struct {
	ID        string   `json:"id"`
	Aliases   []string `json:"aliases,omitempty"`
	Theorem   string   `json:"theorem,omitempty"`
	Guarantee string   `json:"guarantee"`
	Classes   string   `json:"classes"`
	Oblivious bool     `json:"oblivious"`
	Baseline  bool     `json:"baseline,omitempty"`
	Rank      int      `json:"rank,omitempty"`
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	var out []solverInfo
	for _, sol := range solve.All() {
		out = append(out, solverInfo{
			ID: sol.ID, Aliases: sol.Aliases, Theorem: sol.Theorem,
			Guarantee: sol.Guarantee, Classes: sol.ClassNames(),
			Oblivious: sol.Oblivious, Baseline: sol.Baseline, Rank: sol.Rank,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- health and introspection ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Status is the /statusz document.
type Status struct {
	UptimeSec  float64               `json:"uptime_sec"`
	GoVersion  string                `json:"go_version"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	MaxReps    int                   `json:"max_reps"`
	Workers    int                   `json:"workers"`
	Caches     map[string]CacheStats `json:"caches"`
}

// StatusSnapshot returns the /statusz document (exported for the load
// harness, which reads the cache counters without HTTP round-trips).
func (s *Server) StatusSnapshot() Status {
	return Status{
		UptimeSec:  time.Since(s.start).Seconds(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MaxReps:    s.cfg.MaxReps,
		Workers:    s.cfg.Workers,
		Caches: map[string]CacheStats{
			"results":   s.results.Stats(),
			"engines":   s.engines.Stats(),
			"bases":     s.bases.Stats(),
			"instances": s.instances.Stats(),
		},
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusSnapshot())
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"endpoints": s.metrics.snapshot()})
}
