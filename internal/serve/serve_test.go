package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"suu/internal/model"
	"suu/internal/workload"
)

// TestInstanceKeyCanonicalization pins the fingerprint contract:
// identical content keys identically regardless of edge insertion
// order, and any perturbation — a probability, an edge, a dimension —
// keys apart.
func TestInstanceKeyCanonicalization(t *testing.T) {
	base := func() *model.Instance {
		in := model.New(4, 2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 4; j++ {
				in.P[i][j] = 0.1 + 0.1*float64(i+j)
			}
		}
		in.Prec.MustEdge(0, 2)
		in.Prec.MustEdge(1, 3)
		return in
	}
	key := InstanceKey(base())

	// Same dag, edges inserted in the opposite order.
	reordered := model.New(4, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			reordered.P[i][j] = 0.1 + 0.1*float64(i+j)
		}
	}
	reordered.Prec.MustEdge(1, 3)
	reordered.Prec.MustEdge(0, 2)
	if got := InstanceKey(reordered); got != key {
		t.Errorf("edge insertion order changed the key: %s vs %s", got, key)
	}

	// Perturbations: every one must key apart from the base and from
	// each other.
	seen := map[string]string{key: "base"}
	perturb := map[string]func(in *model.Instance){
		"probability":  func(in *model.Instance) { in.P[1][2] += 1e-9 },
		"edge-added":   func(in *model.Instance) { in.Prec.MustEdge(2, 3) },
		"edge-moved":   func(in *model.Instance) { in.Prec.MustEdge(0, 3) },
		"prob-swapped": func(in *model.Instance) { in.P[0][0], in.P[0][1] = in.P[0][1], in.P[0][0] },
	}
	for name, mutate := range perturb {
		in := base()
		mutate(in)
		k := InstanceKey(in)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestCacheLRUEviction fills a tiny cache past its budget and checks
// strict LRU order: the oldest unpromoted entries fall out, promoted
// ones survive.
func TestCacheLRUEviction(t *testing.T) {
	// Each entry is charged size+entryOverhead = 1128 bytes.
	c := NewCache(4 * 1128)
	put := func(k string) { c.Put(k, k, 1000) }
	for _, k := range []string{"a", "b", "c", "d"} {
		put(k)
	}
	if st := c.Stats(); st.Entries != 4 || st.Evictions != 0 {
		t.Fatalf("pre-eviction stats %+v", st)
	}
	// Promote "a"; insert "e": "b" (now coldest) must fall out.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	put("e")
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("promoted entry a was evicted")
	}
	st := c.Stats()
	if st.Entries != 4 || st.Evictions != 1 {
		t.Errorf("post-eviction stats %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d above budget %d", st.Bytes, st.MaxBytes)
	}

	// An entry larger than the whole budget is admitted alone.
	c.Put("huge", "huge", 1<<20)
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized entry rejected")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("oversized entry did not evict the rest: %+v", st)
	}
}

// TestCacheCoalescing checks single-flight: N concurrent misses on one
// key run exactly one build, and every caller gets the same value.
func TestCacheCoalescing(t *testing.T) {
	c := NewCache(1 << 20)
	const n = 32
	builds := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _, err := c.Do("k", func() (any, int64, error) {
				builds++ // safe: single-flight means one writer
				<-gate   // hold the build open so arrivals coalesce
				return "value", 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the build. The
	// coalesced counter tells us when the waiters have piled up; spin
	// until the herd is in place (all but the builder).
	for c.Stats().Coalesced < n-1 {
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("ran %d builds, want 1", builds)
	}
	for i, v := range vals {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Coalesced != n-1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 miss and %d coalesced", st, n-1)
	}
}

// ---- HTTP round-trips ----

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

type rawReply struct {
	Result json.RawMessage `json:"result"`
	Meta   Meta            `json:"meta"`
	Error  string          `json:"error"`
}

func post(t *testing.T, url string, body any) (int, rawReply) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r rawReply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return resp.StatusCode, r
}

func testInstance(seed int64) *model.Instance {
	return workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: seed})
}

// TestServeCachedBitIdentical is the acceptance pin: a cached reply's
// result object is byte-identical to the cold reply's, for solve and
// for estimate, while the meta object flips to cached.
func TestServeCachedBitIdentical(t *testing.T) {
	_, ts := testServer(t)
	in := testInstance(7)

	solveReq := map[string]any{"instance": in, "solver": "auto", "seed": 3}
	code, cold := post(t, ts.URL+"/v1/solve", solveReq)
	if code != http.StatusOK {
		t.Fatalf("cold solve: %d %s", code, cold.Error)
	}
	if cold.Meta.Cached {
		t.Fatal("first solve reported cached")
	}
	if cold.Meta.BuildMS <= 0 {
		t.Error("cold solve reported no build time")
	}
	code, warm := post(t, ts.URL+"/v1/solve", solveReq)
	if code != http.StatusOK || !warm.Meta.Cached {
		t.Fatalf("repeat solve: code %d, meta %+v", code, warm.Meta)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Errorf("cached solve result differs from cold:\ncold: %s\nwarm: %s", cold.Result, warm.Result)
	}

	var sr SolveResult
	if err := json.Unmarshal(cold.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ScheduleID == "" {
		t.Fatal("no schedule id")
	}

	estReq := map[string]any{"schedule_id": sr.ScheduleID, "reps": 300, "sim_seed": 11}
	code, coldEst := post(t, ts.URL+"/v1/estimate", estReq)
	if code != http.StatusOK {
		t.Fatalf("cold estimate: %d %s", code, coldEst.Error)
	}
	code, warmEst := post(t, ts.URL+"/v1/estimate", estReq)
	if code != http.StatusOK || !warmEst.Meta.Cached {
		t.Fatalf("repeat estimate: code %d, meta %+v", code, warmEst.Meta)
	}
	if !bytes.Equal(coldEst.Result, warmEst.Result) {
		t.Errorf("cached estimate result differs from cold:\ncold: %s\nwarm: %s", coldEst.Result, warmEst.Result)
	}

	// The same estimate routed by inline instance (not schedule_id)
	// must also hit: content addressing collapses the two forms.
	code, byContent := post(t, ts.URL+"/v1/estimate",
		map[string]any{"instance": in, "solver": "auto", "seed": 3, "reps": 300, "sim_seed": 11})
	if code != http.StatusOK || !byContent.Meta.Cached {
		t.Fatalf("estimate by content: code %d, meta %+v", code, byContent.Meta)
	}
	if !bytes.Equal(coldEst.Result, byContent.Result) {
		t.Error("estimate by content differs from estimate by schedule_id")
	}
}

// TestServeAutoSharesCacheWithExplicit checks that "auto" resolves
// before keying: solving with the concrete id auto picks must hit
// auto's entry.
func TestServeAutoSharesCacheWithExplicit(t *testing.T) {
	_, ts := testServer(t)
	in := testInstance(9)
	_, cold := post(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "solver": "auto"})
	var sr SolveResult
	if err := json.Unmarshal(cold.Result, &sr); err != nil {
		t.Fatal(err)
	}
	_, explicit := post(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "solver": sr.Solver})
	if !explicit.Meta.Cached {
		t.Errorf("explicit %q solve missed auto's cache entry", sr.Solver)
	}
}

// TestServeEstimateConvergence drives the ci_half_width loop and
// checks the convergence contract and its determinism.
func TestServeEstimateConvergence(t *testing.T) {
	_, ts := testServer(t)
	in := testInstance(13)
	req := map[string]any{"instance": in, "ci_half_width": 0.08, "sim_seed": 5}
	code, r := post(t, ts.URL+"/v1/estimate", req)
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, r.Error)
	}
	var er EstimateResult
	if err := json.Unmarshal(r.Result, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Converged {
		t.Fatalf("loop did not converge: %+v", er)
	}
	if er.HalfWidth95 > er.TargetHalfWidth {
		t.Errorf("half-width %v above target %v", er.HalfWidth95, er.TargetHalfWidth)
	}
	if er.Rounds < 2 || er.Reps <= 64 {
		t.Errorf("expected the loop to grow reps from 64 (rounds=%d reps=%d)", er.Rounds, er.Reps)
	}
	// Deterministic: the cached repeat is pinned elsewhere; re-check
	// against a FRESH server so the loop itself (not the cache) is
	// what's deterministic.
	_, ts2 := testServer(t)
	_, r2 := post(t, ts2.URL+"/v1/estimate", req)
	if !bytes.Equal(r.Result, r2.Result) {
		t.Error("convergence loop is not deterministic across servers")
	}
}

// TestServeScheduleFormats round-trips the rendering endpoint.
func TestServeScheduleFormats(t *testing.T) {
	_, ts := testServer(t)
	_, r := post(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(17)})
	var sr SolveResult
	if err := json.Unmarshal(r.Result, &sr); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := get("/v1/schedules/" + sr.ScheduleID); code != http.StatusOK || !strings.Contains(body, `"steps"`) {
		t.Errorf("json format: %d %.120s", code, body)
	}
	if code, body := get("/v1/schedules/" + sr.ScheduleID + "?format=gantt&steps=5"); code != http.StatusOK || body == "" {
		t.Errorf("gantt format: %d", code)
	}
	if code, body := get("/v1/schedules/" + sr.ScheduleID + "?format=analyze"); code != http.StatusOK || !strings.Contains(body, "Utilization") {
		t.Errorf("analyze format: %d %.120s", code, body)
	}
	if code, _ := get("/v1/schedules/no-such-id"); code != http.StatusNotFound {
		t.Errorf("missing schedule: %d, want 404", code)
	}

	// An adaptive schedule has no prefix to render.
	_, r = post(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(17), "solver": "adaptive"})
	if err := json.Unmarshal(r.Result, &sr); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/v1/schedules/" + sr.ScheduleID); code != http.StatusConflict {
		t.Errorf("adaptive schedule render: %d, want 409", code)
	}
}

// TestServeStatusAndMetrics checks the introspection endpoints carry
// the counters the load harness and CI smoke read.
func TestServeStatusAndMetrics(t *testing.T) {
	s, ts := testServer(t)
	in := testInstance(19)
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "solver": "lp-oblivious"})
	}
	st := s.StatusSnapshot()
	rs := st.Caches["results"]
	if rs.Hits < 2 || rs.Misses < 1 {
		t.Errorf("results cache counters %+v, want ≥2 hits and ≥1 miss", rs)
	}
	if bs := st.Caches["bases"]; bs.Entries == 0 {
		t.Error("lp-oblivious solve deposited no basis")
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Endpoints map[string]EndpointMetrics `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	ep, ok := m.Endpoints["solve"]
	if !ok || ep.Count != 3 || ep.P50MS < 0 {
		t.Errorf("solve endpoint metrics %+v", ep)
	}
}

// TestServeErrors spot-checks the failure paths.
func TestServeErrors(t *testing.T) {
	_, ts := testServer(t)
	if code, r := post(t, ts.URL+"/v1/solve", map[string]any{"instance_id": "nope"}); code != http.StatusBadRequest || r.Error == "" {
		t.Errorf("unknown instance_id: %d %q", code, r.Error)
	}
	if code, _ := post(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(1), "solver": "nope"}); code != http.StatusBadRequest {
		t.Errorf("unknown solver: %d", code)
	}
	bad := map[string]any{"jobs": 2, "machines": 1, "p": [][]float64{{0.5}}}
	if code, _ := post(t, ts.URL+"/v1/solve", map[string]any{"instance": bad}); code != http.StatusBadRequest {
		t.Errorf("malformed instance: %d", code)
	}
}
