// Package serve runs the solver registry and the simulation engines as
// a long-lived cached HTTP service — the layer behind cmd/suu-serve.
//
// # Endpoints
//
//	POST /v1/instances          submit an instance, get its content id
//	POST /v1/solve              build a schedule (solver id or "auto")
//	POST /v1/estimate           estimate E[makespan], optionally to a
//	                            requested 95% CI half-width
//	GET  /v1/schedules/{id}     fetch a schedule (json | gantt | analyze)
//	GET  /v1/solvers            the registry catalogue
//	GET  /healthz               liveness
//	GET  /statusz               uptime, config, per-cache counters
//	GET  /metricsz              per-endpoint latency quantiles (P²)
//
// # Caching contract
//
// Every cache key is a content fingerprint (internal/fingerprint) of a
// canonicalized request: instances hash their probability matrix and
// SORTED edge list, "auto" resolves to the concrete solver id before
// keying, and estimate keys include exactly the parameters that feed
// the repetition streams. Identical content therefore hits the same
// entry no matter how it arrived — inline or by reference, auto or
// explicit, whatever the JSON field order.
//
// Four LRU caches with independent byte budgets front the expensive
// steps: results (solve and estimate response bodies, with the built
// schedules — the schedule store), engines (sim.Prepared compiled
// simulation contexts), bases (LP optimal bases, so a re-solve after
// result eviction warm-starts pivot-free), and instances (submissions
// behind instance_id references). Builds are single-flight: N
// concurrent identical cold requests run ONE build, and the N-1
// coalesced waiters share its value (counted in /statusz).
//
// # Determinism and bit-identity
//
// Replies split a stable "result" object from a volatile "meta" object
// (cached / coalesced / build_ms). The result object is a pure
// function of the request content: cache hits return byte-identical
// result objects to cold builds (estimates inherit the engines'
// bit-identity contract — any engine, any worker count, same digits;
// pinned by TestServeCachedBitIdentical), so the cache can change
// wall-clock only, never a value. The one softness is deliberate: a
// re-solve after result eviction warm-starts from the cached LP basis
// and re-derives the same optimal vertex, with T* equal to the
// original to floating-point roundoff (see core.Params.WarmBasis) —
// the basis cache trades ulp-exactness across evictions for pivot-free
// re-solves, while unevicted entries stay byte-exact.
package serve
