package serve

import (
	"os"
	"testing"

	"suu/internal/exp"
)

// TestServeLoadGate is the CI bench-smoke assertion for the serving
// layer: the load harness (1000 concurrent clients, mixed repeat/fresh
// workload) must complete with zero failed requests, a working
// single-flight path (coalesced > 0 from the deliberate thundering
// herd), and repeat (cache-hit) solve latency at least 10x below a
// cold build at the p50. It only runs when BENCH_SMOKE=1 — wall-clock
// ratios are meaningless under the race detector or a loaded laptop.
// Unlike the engine gates it does NOT skip on single-core runners: the
// hit path is a map lookup against a cold path that solves an LP, so
// the ratio is orders of magnitude even under scheduling noise.
func TestServeLoadGate(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the serve load gate")
	}
	b := Benchmark(exp.Config{Quick: true, Seed: 1})
	t.Logf("serve storm: %d clients, %d requests in %.0fms (%.0f req/s); cold p50 %.3fms hit p50 %.4fms (%.0fx); hit rate %.2f, %d coalesced, %d evictions",
		b.Clients, b.Requests, b.WallMS, b.RequestsPerSec,
		b.ColdP50MS, b.HitP50MS, b.SpeedupP50, b.HitRate, b.Coalesced, b.Evictions)
	if b.Clients < 1000 {
		t.Errorf("storm ran %d clients, want ≥1000", b.Clients)
	}
	if b.Errors > 0 {
		t.Errorf("%d requests failed during the storm", b.Errors)
	}
	if b.Coalesced == 0 {
		t.Error("thundering herd produced no coalesced requests — single-flight is not engaging")
	}
	if b.SpeedupP50 < 10 {
		t.Errorf("cache-hit solve latency only %.1fx below cold (want ≥10x): cold p50 %.3fms, hit p50 %.3fms",
			b.SpeedupP50, b.ColdP50MS, b.HitP50MS)
	}
	if b.HitRate < 0.5 {
		t.Errorf("hit rate %.2f below the workload's designed repeat share", b.HitRate)
	}
}
