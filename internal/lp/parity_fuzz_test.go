package lp

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the dense-vs-sparse parity harness: randomized LPs of
// known status (feasible with a certificate point, infeasible by
// construction, unbounded by construction) solved by both the revised
// simplex and the dense tableau oracle, asserting identical status
// and — for feasible instances — objectives within 1e-7. The two
// solvers may (and do) return different optimal vertices; the parity
// contract is status + objective, which is what the SUU pipeline's
// guarantees consume.

// objTol is the parity tolerance on optimal objectives.
func objEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-7*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// randFeasible builds an LP guaranteed feasible at a generated point
// x0 (rows are anchored to x0's row activity), with a nonnegative
// objective so it is also bounded. Roughly a third of the variables
// get finite upper bounds at or above x0, and some get raised lower
// bounds at or below x0, so the bound machinery fuzzes too.
func randFeasible(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(10)
	m := 1 + rng.Intn(12)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = rng.Float64() * 5
	}
	p := NewProblem(n)
	for i := 0; i < n; i++ {
		p.SetObjectiveCoef(i, rng.Float64()*4)
		lo, up := 0.0, math.Inf(1)
		if rng.Intn(3) == 0 {
			lo = x0[i] * rng.Float64()
		}
		if rng.Intn(3) == 0 {
			up = x0[i] + rng.Float64()*3
		}
		p.SetBounds(i, lo, up)
	}
	for k := 0; k < m; k++ {
		var terms []Term
		lhs := 0.0
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				co := rng.Float64()*4 - 2
				terms = append(terms, Term{i, co})
				lhs += co * x0[i]
			}
		}
		if len(terms) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint(terms, LE, lhs+rng.Float64())
		case 1:
			p.AddConstraint(terms, GE, lhs-rng.Float64())
		default:
			p.AddConstraint(terms, EQ, lhs)
		}
	}
	if p.NumConstraints() == 0 {
		p.AddConstraint([]Term{{0, 1}}, GE, 0)
	}
	return p
}

// randInfeasible plants a contradiction with a margin of at least 1
// (an aggregate ≤ a and the same aggregate ≥ a+1+margin) inside an
// otherwise feasible instance, so both solvers must report
// infeasibility regardless of tolerance details.
func randInfeasible(rng *rand.Rand) *Problem {
	p := randFeasible(rng)
	n := p.NumVars()
	var terms []Term
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 || i == 0 {
			terms = append(terms, Term{i, 1 + rng.Float64()})
		}
	}
	a := rng.Float64() * 8
	p.AddConstraint(terms, LE, a)
	p.AddConstraint(terms, GE, a+1+rng.Float64())
	return p
}

// randUnbounded builds min −x_r over constraints that never bound x_r
// above: every row involving x_r is a GE row, and x_r has no upper
// bound, so the objective decreases without limit along e_r.
func randUnbounded(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(6)
	m := 1 + rng.Intn(6)
	r := rng.Intn(n)
	p := NewProblem(n)
	p.SetObjectiveCoef(r, -1-rng.Float64())
	for k := 0; k < m; k++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if i == r {
				if rng.Float64() < 0.5 {
					terms = append(terms, Term{i, rng.Float64()}) // nonnegative coef
				}
				continue
			}
			if rng.Float64() < 0.5 {
				terms = append(terms, Term{i, rng.Float64()*2 - 1})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, GE, -rng.Float64()) // feasible at the origin
	}
	if p.NumConstraints() == 0 {
		p.AddConstraint([]Term{{r, 1}}, GE, 0)
	}
	return p
}

func TestParityFuzzFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 300; trial++ {
		p := randFeasible(rng)
		sparse, errS := p.Solve()
		dense, errD := p.DenseSolve()
		if errS != nil || errD != nil {
			t.Fatalf("trial %d: statuses differ or solve failed on a feasible LP: sparse=%v dense=%v", trial, errS, errD)
		}
		if !objEqual(sparse.Objective, dense.Objective) {
			t.Fatalf("trial %d: objective parity broken: sparse %.12g vs dense %.12g",
				trial, sparse.Objective, dense.Objective)
		}
	}
}

func TestParityFuzzInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randInfeasible(rng)
		_, errS := p.Solve()
		_, errD := p.DenseSolve()
		if errS != ErrInfeasible || errD != ErrInfeasible {
			t.Fatalf("trial %d: want ErrInfeasible from both, got sparse=%v dense=%v", trial, errS, errD)
		}
	}
}

func TestParityFuzzUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := randUnbounded(rng)
		_, errS := p.Solve()
		_, errD := p.DenseSolve()
		if errS != ErrUnbounded || errD != ErrUnbounded {
			t.Fatalf("trial %d: want ErrUnbounded from both, got sparse=%v dense=%v", trial, errS, errD)
		}
	}
}

// TestParityLP1Shapes runs the parity check on random miniature (LP1)
// instances — the exact row pattern the core builder emits (window +
// mass + load + chain rows with a bounded d variable) — so the fuzz
// coverage includes the production formulation, not just generic LPs.
func TestParityLP1Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4401))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6) // jobs
		m := 1 + rng.Intn(4) // machines
		type pair struct{ i, j int }
		var pairs []pair
		prob := make(map[pair]float64)
		for j := 0; j < n; j++ {
			deg := 1 + rng.Intn(m)
			for _, i := range rng.Perm(m)[:deg] {
				pr := pair{i, j}
				pairs = append(pairs, pr)
				prob[pr] = 0.05 + 0.9*rng.Float64()
			}
		}
		nv := len(pairs)
		dBase, tVar := nv, nv+n
		p := NewProblem(tVar + 1)
		p.SetObjectiveCoef(tVar, 1)
		for j := 0; j < n; j++ {
			p.SetBounds(dBase+j, 1, math.Inf(1))
		}
		mass := make([][]Term, n)
		load := make([][]Term, m)
		for v, pr := range pairs {
			p.AddConstraint([]Term{{v, 1}, {dBase + pr.j, -1}}, LE, 0)
			mass[pr.j] = append(mass[pr.j], Term{v, prob[pr]})
			load[pr.i] = append(load[pr.i], Term{v, 1})
		}
		for j := 0; j < n; j++ {
			p.AddConstraint(mass[j], GE, 0.5)
		}
		for i := 0; i < m; i++ {
			if len(load[i]) == 0 {
				continue
			}
			p.AddConstraint(append(load[i], Term{tVar, -1}), LE, 0)
		}
		// One chain over a random subset of jobs.
		var chain []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				chain = append(chain, Term{dBase + j, 1})
			}
		}
		if len(chain) > 0 {
			p.AddConstraint(append(chain, Term{tVar, -1}), LE, 0)
		}
		sparse, errS := p.Solve()
		dense, errD := p.DenseSolve()
		if errS != nil || errD != nil {
			t.Fatalf("trial %d: sparse=%v dense=%v", trial, errS, errD)
		}
		if !objEqual(sparse.Objective, dense.Objective) {
			t.Fatalf("trial %d: T* parity broken: sparse %.12g vs dense %.12g",
				trial, sparse.Objective, dense.Objective)
		}
	}
}
