package lp

import (
	"errors"
	"fmt"
	"math"
)

// DenseSolve runs the original dense two-phase tableau simplex. It is
// retained as the cross-check oracle for the revised solver: the
// parity fuzz suite asserts both agree on feasibility status and
// objective. Variable bounds are supported by synthesizing explicit
// rows (x ≥ lo for lo > 0, x ≤ up for finite up); lower bounds below
// zero are outside the dense formulation and return an error.
func (p *Problem) DenseSolve() (*Solution, error) {
	cons := p.cons
	if p.hasBound {
		cons = append([]constraint(nil), p.cons...)
		for v := 0; v < p.nvars; v++ {
			lo, up := p.lo[v], p.up[v]
			if lo < 0 {
				return nil, fmt.Errorf("lp: DenseSolve requires nonnegative lower bounds (variable %d has %v)", v, lo)
			}
			if lo > 0 {
				cons = append(cons, constraint{terms: []Term{{Var: v, Coef: 1}}, rel: GE, rhs: lo})
			}
			if !math.IsInf(up, 1) {
				cons = append(cons, constraint{terms: []Term{{Var: v, Coef: 1}}, rel: LE, rhs: up})
			}
		}
	}

	m := len(cons)
	n := p.nvars

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per GE/EQ row (and per LE row with negative rhs after
	// normalization — handled by normalizing the row sign first).
	type rowSpec struct {
		dense []float64
		rhs   float64
		rel   Rel
	}
	rows := make([]rowSpec, m)
	for k, con := range cons {
		dense := make([]float64, n)
		for _, t := range con.terms {
			dense[t.Var] += t.Coef
		}
		rhs := con.rhs
		rel := con.rel
		if rhs < 0 {
			for i := range dense {
				dense[i] = -dense[i]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[k] = rowSpec{dense: dense, rhs: rhs, rel: rel}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows of [total coefficients | rhs].
	t := make([][]float64, m)
	basis := make([]int, m)
	artCols := make([]bool, total)
	sCol := n
	aCol := n + nSlack
	for k, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.dense)
		row[total] = r.rhs
		switch r.rel {
		case LE:
			row[sCol] = 1
			basis[k] = sCol
			sCol++
		case GE:
			row[sCol] = -1
			sCol++
			row[aCol] = 1
			artCols[aCol] = true
			basis[k] = aCol
			aCol++
		case EQ:
			row[aCol] = 1
			artCols[aCol] = true
			basis[k] = aCol
			aCol++
		}
		t[k] = row
	}

	iters := 0

	if nArt > 0 {
		// Phase 1: minimize sum of artificials.
		obj := make([]float64, total+1)
		for j := 0; j < total; j++ {
			if artCols[j] {
				obj[j] = 1
			}
		}
		// Price out the basic artificials.
		for k, b := range basis {
			if artCols[b] {
				for j := 0; j <= total; j++ {
					obj[j] -= t[k][j]
				}
			}
		}
		it, err := simplexLoop(t, obj, basis, total, nil)
		iters += it
		if err != nil {
			// Phase 1 cannot be unbounded (objective bounded below by 0);
			// treat any failure as internal.
			return nil, err
		}
		if -obj[total] > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis; a
		// row whose artificial cannot pivot onto any original column is
		// linearly dependent on the others (its artificial is basic at
		// value zero), so drop it from the tableau outright instead of
		// carrying a dead row through phase 2.
		var keep []int
		for k, b := range basis {
			if !artCols[b] {
				keep = append(keep, k)
				continue
			}
			pivoted := false
			for j := 0; j < total; j++ {
				if !artCols[j] && math.Abs(t[k][j]) > eps {
					pivot(t, basis, k, j, total)
					pivoted = true
					break
				}
			}
			if pivoted {
				keep = append(keep, k)
			}
		}
		if len(keep) < m {
			tt := make([][]float64, 0, len(keep))
			bb := make([]int, 0, len(keep))
			for _, k := range keep {
				tt = append(tt, t[k])
				bb = append(bb, basis[k])
			}
			t, basis = tt, bb
		}
	}

	// Phase 2: original objective, artificial columns barred.
	obj := make([]float64, total+1)
	copy(obj, p.c)
	for k, b := range basis {
		if math.Abs(obj[b]) > eps {
			coef := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[k][j]
			}
		}
	}
	barred := artCols
	it, err := simplexLoop(t, obj, basis, total, barred)
	iters += it
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for k, b := range basis {
		if b < n {
			x[b] = t[k][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.c[j] * x[j]
	}
	return &Solution{
		X: x, Objective: objVal, Iterations: iters,
		Rows: len(p.cons), Cols: p.nvars, Nnz: p.Nnz(),
	}, nil
}

// simplexLoop performs primal simplex pivots on tableau t with reduced
// cost row obj until optimality. barred columns (may be nil) are never
// chosen as entering variables.
func simplexLoop(t [][]float64, obj []float64, basis []int, total int, barred []bool) (int, error) {
	m := len(t)
	iters := 0
	stall := 0
	lastObj := math.Inf(1)
	for {
		iters++
		if iters > 200000 {
			return iters, errors.New("lp: iteration limit exceeded")
		}
		bland := stall >= stallLim
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if barred != nil && barred[j] {
				continue
			}
			if obj[j] < -eps {
				if bland {
					enter = j
					break
				}
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test (Bland tie-break on basis index for anti-cycling).
		leave := -1
		bestRatio := math.Inf(1)
		for k := 0; k < m; k++ {
			a := t[k][enter]
			if a > eps {
				r := t[k][total] / a
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || basis[k] < basis[leave])) {
					bestRatio = r
					leave = k
				}
			}
		}
		if leave == -1 {
			return iters, ErrUnbounded
		}
		pivot(t, basis, leave, enter, total)
		// Update reduced costs.
		coef := obj[enter]
		if math.Abs(coef) > 0 {
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[leave][j]
			}
		}
		if -obj[total] < lastObj-1e-12 {
			lastObj = -obj[total]
			stall = 0
		} else {
			stall++
		}
	}
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter, total int) {
	pr := t[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for k := range t {
		if k == leave {
			continue
		}
		f := t[k][enter]
		if f == 0 {
			continue
		}
		row := t[k]
		for j := 0; j <= total; j++ {
			row[j] -= f * pr[j]
		}
		row[enter] = 0 // exact
	}
	basis[leave] = enter
}
