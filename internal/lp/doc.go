// Package lp implements linear-programming solvers for problems in
// the form
//
//	minimize    c·x
//	subject to  a_k·x (≤ | = | ≥) b_k   for each constraint k
//	            l_j ≤ x_j ≤ u_j         for each variable j
//
// sized for the LPs that arise in the SUU algorithms ((LP1) and (LP2)
// of Lin & Rajaraman, SPAA 2007): a few hundred to a few thousand
// variables and constraints whose matrix is overwhelmingly sparse —
// every row touches only the (machine, job) pairs with positive
// success probability.
//
// Two solvers share the Problem representation:
//
//   - Solve runs a revised simplex over sparse (CSC) columns with the
//     basis inverse kept in product form (an eta file, refactorized
//     periodically) and variable bounds handled natively in the ratio
//     test. Cost per pivot is O(nnz + eta file) instead of the dense
//     tableau's O(rows·cols). SolveFrom accepts a starting Basis for
//     warm starts and crash bases.
//   - DenseSolve runs the original dense two-phase tableau simplex.
//     It is kept as the cross-check oracle: the fuzz suite pins both
//     solvers to the same feasibility status and objective.
//
// Both use Dantzig pricing with an automatic switch to Bland's rule
// when the objective stalls, which guarantees termination. The
// package is deliberately stdlib-only.
package lp
