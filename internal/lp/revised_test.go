package lp

import (
	"math"
	"testing"
)

// bothSolvers runs f against the revised and the dense solver so
// shared cases exercise the pair symmetrically.
func bothSolvers(t *testing.T, f func(t *testing.T, solve func(*Problem) (*Solution, error))) {
	t.Helper()
	t.Run("revised", func(t *testing.T) { f(t, (*Problem).Solve) })
	t.Run("dense", func(t *testing.T) { f(t, (*Problem).DenseSolve) })
}

func TestNativeUpperBounds(t *testing.T) {
	bothSolvers(t, func(t *testing.T, solve func(*Problem) (*Solution, error)) {
		// max x+y (min −x−y) with x ≤ 2, y ≤ 3 as bounds and x+y ≤ 4 as
		// the only row: optimum 4.
		p := NewProblem(2)
		p.SetObjectiveCoef(0, -1)
		p.SetObjectiveCoef(1, -1)
		p.SetBounds(0, 0, 2)
		p.SetBounds(1, 0, 3)
		p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
		sol, err := solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(sol.Objective, -4, 1e-7) {
			t.Errorf("objective=%v, want -4", sol.Objective)
		}
	})
}

func TestNativeLowerBounds(t *testing.T) {
	bothSolvers(t, func(t *testing.T, solve func(*Problem) (*Solution, error)) {
		// min x + 2y with x ≥ 3, y ≥ 2 as bounds, x + y = 10 as a row:
		// x=8, y=2, objective 12 (the dense suite's TestEqualityAndGE
		// with the GE rows moved into bounds).
		p := NewProblem(2)
		p.SetObjectiveCoef(0, 1)
		p.SetObjectiveCoef(1, 2)
		p.SetBounds(0, 3, math.Inf(1))
		p.SetBounds(1, 2, math.Inf(1))
		p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
		sol, err := solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(sol.Objective, 12, 1e-7) || !approx(sol.X[0], 8, 1e-7) || !approx(sol.X[1], 2, 1e-7) {
			t.Errorf("sol=%v obj=%v, want x=(8,2) obj=12", sol.X, sol.Objective)
		}
	})
}

func TestBoundsOnlyOptimum(t *testing.T) {
	// A problem whose optimum is decided entirely by bound flips — no
	// constraint row ever binds.
	p := NewProblem(3)
	p.SetObjectiveCoef(0, -1) // pushes to upper
	p.SetObjectiveCoef(1, 1)  // stays at lower
	p.SetObjectiveCoef(2, -2) // pushes to upper
	for v := 0; v < 3; v++ {
		p.SetBounds(v, 1, 5)
	}
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 100)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, 5}
	for v, x := range sol.X {
		if !approx(x, want[v], 1e-7) {
			t.Errorf("x[%d]=%v, want %v", v, x, want[v])
		}
	}
}

func TestInfeasibleBounds(t *testing.T) {
	bothSolvers(t, func(t *testing.T, solve func(*Problem) (*Solution, error)) {
		// x ≥ 4 via bound, x ≤ 2 via row.
		p := NewProblem(1)
		p.SetBounds(0, 4, math.Inf(1))
		p.AddConstraint([]Term{{0, 1}}, LE, 2)
		if _, err := solve(p); err != ErrInfeasible {
			t.Errorf("err=%v, want ErrInfeasible", err)
		}
	})
}

func TestFreeVariable(t *testing.T) {
	// min x with x free and x ≥ −7 only via a row: optimum −7. The
	// dense oracle cannot express free variables, so revised only.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	p.AddConstraint([]Term{{0, 1}}, GE, -7)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], -7, 1e-7) {
		t.Errorf("x=%v, want -7", sol.X[0])
	}
	// And unbounded without the row.
	p2 := NewProblem(1)
	p2.SetObjectiveCoef(0, 1)
	p2.SetBounds(0, math.Inf(-1), math.Inf(1))
	p2.AddConstraint([]Term{{0, 1}}, LE, 3)
	if _, err := p2.Solve(); err != ErrUnbounded {
		t.Errorf("err=%v, want ErrUnbounded", err)
	}
}

// TestRedundantRowsDriveOut is the regression test for the phase-1
// drive-out fix: a linearly dependent constraint set (the third row
// is the sum of the first two) must leave both solvers at the
// optimum, with the dense path actually dropping the dependent row
// instead of carrying a dead artificial through phase 2.
func TestRedundantRowsDriveOut(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(3)
		p.SetObjectiveCoef(0, 1)
		p.SetObjectiveCoef(1, 2)
		p.SetObjectiveCoef(2, 3)
		p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
		p.AddConstraint([]Term{{1, 1}, {2, 1}}, EQ, 5)
		p.AddConstraint([]Term{{0, 1}, {1, 2}, {2, 1}}, EQ, 9) // row1 + row2
		return p
	}
	bothSolvers(t, func(t *testing.T, solve func(*Problem) (*Solution, error)) {
		sol, err := solve(build())
		if err != nil {
			t.Fatal(err)
		}
		// Optimum: push weight onto x1 (saves 2 per unit against x0+x2)
		// → x=(0,4,1), objective 11.
		if !approx(sol.Objective, 11, 1e-7) {
			t.Errorf("objective=%v, want 11", sol.Objective)
		}
	})
	// A denser dependent family: k copies of the same equality plus
	// scaled versions.
	bothSolvers(t, func(t *testing.T, solve func(*Problem) (*Solution, error)) {
		p := NewProblem(2)
		p.SetObjectiveCoef(0, 1)
		p.SetObjectiveCoef(1, 1)
		for k := 1; k <= 4; k++ {
			p.AddConstraint([]Term{{0, float64(k)}, {1, float64(k)}}, EQ, 6*float64(k))
		}
		sol, err := solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(sol.Objective, 6, 1e-7) {
			t.Errorf("objective=%v, want 6", sol.Objective)
		}
	})
}

func TestWarmStartFromOptimalBasis(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(4)
		for v := 0; v < 4; v++ {
			p.SetObjectiveCoef(v, float64(v+1))
		}
		p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, GE, 10)
		p.AddConstraint([]Term{{0, 1}, {2, 1}}, LE, 6)
		p.AddConstraint([]Term{{1, 1}, {3, 1}}, GE, 2)
		return p
	}
	cold, err := build().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Basis == nil {
		t.Fatal("revised solve returned no basis")
	}
	warm, err := build().SolveFrom(cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(warm.Objective, cold.Objective, 1e-9) {
		t.Errorf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start did not save pivots: warm %d, cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartInvalidBasisFallsBack(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 3)
	for _, b := range []*Basis{
		{Basic: []int{}},                      // wrong size
		{Basic: []int{99}},                    // out of range
		{Basic: []int{0, 0}},                  // duplicates (and wrong size)
		{Basic: []int{1}, AtUpper: []int{42}}, // bad AtUpper entry
	} {
		sol, err := p.SolveFrom(b)
		if err != nil {
			t.Fatalf("basis %+v: %v", b, err)
		}
		if !approx(sol.Objective, 3, 1e-7) {
			t.Errorf("basis %+v: objective=%v, want 3", b, sol.Objective)
		}
	}
}

func TestRefactorizationAccuracy(t *testing.T) {
	// A long chain of coupled rows forces hundreds of pivots through
	// several refactorization cycles; the optimum is known in closed
	// form: x_k ≥ k with Σ x ≥ extra forces x_k = k.
	const n = 300
	p := NewProblem(n)
	want := 0.0
	for v := 0; v < n; v++ {
		p.SetObjectiveCoef(v, 1)
		p.AddConstraint([]Term{{v, 1}}, GE, float64(v%7+1))
		want += float64(v%7 + 1)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, want, 1e-6) {
		t.Errorf("objective=%v, want %v", sol.Objective, want)
	}
}

func TestSolutionDimensions(t *testing.T) {
	p := NewProblem(3)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, GE, 1)
	p.AddConstraint([]Term{{2, 1}}, LE, 5)
	for _, solve := range []func() (*Solution, error){p.Solve, p.DenseSolve} {
		sol, err := solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Rows != 2 || sol.Cols != 3 || sol.Nnz != 3 {
			t.Errorf("dims = (%d rows, %d cols, %d nnz), want (2, 3, 3)", sol.Rows, sol.Cols, sol.Nnz)
		}
	}
}

func TestDenseSolveRejectsNegativeLower(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, -1, 1)
	if _, err := p.DenseSolve(); err == nil {
		t.Error("DenseSolve accepted a negative lower bound")
	}
}
