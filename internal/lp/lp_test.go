package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimple2DMin(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 2, y <= 3  -> x=2 (or 1), y=3 (opt -5... check)
	// Optimum: x+y maximized = 4 with x<=2,y<=3 => obj=-4? x=1,y=3 gives 4; x=2,y=2 gives 4. obj=-4.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.SetObjectiveCoef(1, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	p.AddConstraint([]Term{{1, 1}}, LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -4, 1e-7) {
		t.Errorf("objective=%v, want -4", sol.Objective)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y  s.t. x + y = 10, x >= 3, y >= 2  -> x=8, y=2, obj=12.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 3)
	p.AddConstraint([]Term{{1, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 12, 1e-7) || !approx(sol.X[0], 8, 1e-7) || !approx(sol.X[1], 2, 1e-7) {
		t.Errorf("sol=%v obj=%v, want x=(8,2) obj=12", sol.X, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Errorf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.AddConstraint([]Term{{1, 1}}, LE, 5)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Errorf("err=%v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  ⇔  x >= 3; min x -> 3.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 3, 1e-7) {
		t.Errorf("x=%v, want 3", sol.X[0])
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Classic Beale-style degeneracy; solver must terminate.
	p := NewProblem(4)
	c := []float64{-0.75, 150, -0.02, 6}
	for i, v := range c {
		p.SetObjectiveCoef(i, v)
	}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -0.05, 1e-6) {
		t.Errorf("objective=%v, want -0.05", sol.Objective)
	}
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	// x + x <= 4  ⇔ 2x <= 4; max x (min -x) -> 2.
	p := NewProblem(1)
	p.SetObjectiveCoef(0, -1)
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2, 1e-7) {
		t.Errorf("x=%v, want 2", sol.X[0])
	}
}

// feasibleRandomLP builds min c·x with constraints guaranteed feasible
// at a known point x0, and checks that Solve returns a feasible point
// with objective <= c·x0.
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(10)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
		}
		p := NewProblem(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 4 // nonnegative ⇒ bounded below by 0
			p.SetObjectiveCoef(i, c[i])
		}
		type row struct {
			terms []Term
			rel   Rel
			rhs   float64
		}
		var rowsAdded []row
		for k := 0; k < m; k++ {
			var terms []Term
			lhs := 0.0
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.6 {
					co := rng.Float64()*4 - 2
					terms = append(terms, Term{i, co})
					lhs += co * x0[i]
				}
			}
			if len(terms) == 0 {
				continue
			}
			var rel Rel
			var rhs float64
			switch rng.Intn(3) {
			case 0:
				rel, rhs = LE, lhs+rng.Float64()
			case 1:
				rel, rhs = GE, lhs-rng.Float64()
			default:
				rel, rhs = EQ, lhs
			}
			p.AddConstraint(terms, rel, rhs)
			rowsAdded = append(rowsAdded, row{terms, rel, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v (LP is feasible at %v)", trial, err, x0)
		}
		objAt := func(x []float64) float64 {
			s := 0.0
			for i := range c {
				s += c[i] * x[i]
			}
			return s
		}
		if sol.Objective > objAt(x0)+1e-6 {
			t.Fatalf("trial %d: objective %v worse than known point %v", trial, sol.Objective, objAt(x0))
		}
		// Feasibility of the returned point.
		for _, r := range rowsAdded {
			lhs := 0.0
			for _, tm := range r.terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			switch r.rel {
			case LE:
				if lhs > r.rhs+1e-6 {
					t.Fatalf("trial %d: LE row violated (%v > %v)", trial, lhs, r.rhs)
				}
			case GE:
				if lhs < r.rhs-1e-6 {
					t.Fatalf("trial %d: GE row violated (%v < %v)", trial, lhs, r.rhs)
				}
			case EQ:
				if math.Abs(lhs-r.rhs) > 1e-6 {
					t.Fatalf("trial %d: EQ row violated (%v != %v)", trial, lhs, r.rhs)
				}
			}
		}
		for i, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d]=%v negative", trial, i, v)
			}
		}
	}
}

func TestConstraintVarRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range variable")
		}
	}()
	p := NewProblem(2)
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicated equality rows leave a basic artificial at zero after
	// phase 1; the solver must still find the optimum.
	p := NewProblem(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 2, 1e-7) {
		t.Errorf("objective=%v, want 2", sol.Objective)
	}
}
