package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is the relation of a constraint row.
type Rel int

const (
	// LE is a ≤ constraint.
	LE Rel = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an = constraint.
	EQ
)

// Term is one coefficient of a constraint: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. Variables default
// to the nonnegative orthant (bounds [0, +Inf)); SetBounds overrides
// per variable.
type Problem struct {
	nvars    int
	c        []float64
	lo, up   []float64
	cons     []constraint
	hasBound bool
}

// Solution holds an optimal solution.
type Solution struct {
	// X is the optimal assignment, length NumVars.
	X []float64
	// Objective is c·X.
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
	// Rows, Cols and Nnz are the constraint system's dimensions (rows,
	// structural variables, structural nonzeros) — the quantities the
	// perf harness tracks alongside pivot counts.
	Rows, Cols, Nnz int
	// Basis is the optimal basis (revised solver only; nil from
	// DenseSolve). Feed it back via SolveFrom to warm-start a re-solve
	// of the same problem shape.
	Basis *Basis
}

// Basis identifies a simplex basis of a problem: which variable is
// basic in each row, and which nonbasic variables sit at their upper
// bound (the rest sit at their lower bound, or at zero when free).
// Variable indices 0..NumVars-1 are structural; LogicalVar(k) is row
// k's logical (slack) variable.
type Basis struct {
	// Basic has one entry per constraint row: the index of the basic
	// variable associated with that row.
	Basic []int
	// AtUpper lists nonbasic variables resting at a finite upper bound.
	AtUpper []int
}

// ErrInfeasible is returned when the constraint set has no solution.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const (
	eps      = 1e-9
	stallLim = 64 // pivots without objective progress before Bland's rule
)

// NewProblem returns a problem with nvars nonnegative variables and a
// zero objective.
func NewProblem(nvars int) *Problem {
	if nvars <= 0 {
		panic("lp: problem needs at least one variable")
	}
	return &Problem{nvars: nvars, c: make([]float64, nvars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Nnz returns the number of structural nonzeros added so far (before
// duplicate-term accumulation).
func (p *Problem) Nnz() int {
	n := 0
	for _, con := range p.cons {
		n += len(con.terms)
	}
	return n
}

// LogicalVar returns the variable index of row k's logical (slack)
// variable in the revised solver's indexing, for constructing crash
// bases: structural variables occupy 0..NumVars-1, logicals follow in
// row order.
func (p *Problem) LogicalVar(k int) int { return p.nvars + k }

// SetObjectiveCoef sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, coef float64) {
	p.c[v] = coef
}

// SetBounds replaces variable v's bounds [0, +Inf) with [lo, up].
// lo may be math.Inf(-1) and up math.Inf(1); lo must not exceed up.
// DenseSolve supports only finite lo ≥ 0 (it synthesizes bound rows);
// the revised solver handles any bounds natively.
func (p *Problem) SetBounds(v int, lo, up float64) {
	if v < 0 || v >= p.nvars {
		panic(fmt.Sprintf("lp: bounds reference variable %d of %d", v, p.nvars))
	}
	if lo > up {
		panic(fmt.Sprintf("lp: variable %d bounds cross (%v > %v)", v, lo, up))
	}
	p.ensureBounds()
	p.lo[v], p.up[v] = lo, up
}

func (p *Problem) ensureBounds() {
	if p.hasBound {
		return
	}
	p.lo = make([]float64, p.nvars)
	p.up = make([]float64, p.nvars)
	for i := range p.up {
		p.up[i] = math.Inf(1)
	}
	p.hasBound = true
}

// lower returns variable v's lower bound.
func (p *Problem) lower(v int) float64 {
	if !p.hasBound {
		return 0
	}
	return p.lo[v]
}

// upper returns variable v's upper bound.
func (p *Problem) upper(v int) float64 {
	if !p.hasBound {
		return math.Inf(1)
	}
	return p.up[v]
}

// AddConstraint appends the row Σ terms (rel) rhs. Terms may repeat a
// variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nvars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.nvars))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{terms: cp, rel: rel, rhs: rhs})
}

// Solve runs the sparse revised simplex from a cold (all-logical)
// start and returns an optimal solution, ErrInfeasible, or
// ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveFrom(nil)
}

// SolveFrom runs the sparse revised simplex starting from the given
// basis (nil means the all-logical cold start). An invalid or
// singular basis falls back to the cold start rather than failing, so
// callers may pass heuristic crash bases freely.
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	return p.SolveLazy(basis, nil)
}

// Cut is one lazily separated constraint row for SolveLazy.
type Cut struct {
	Terms []Term
	Rel   Rel
	Rhs   float64
}

// SolveLazy runs the revised simplex with row generation: whenever
// the working problem is solved to optimality, separate (may be nil)
// is called with the current optimal x and returns violated rows to
// append. The new rows join the problem (p is mutated), their
// logicals join the basis — infeasible by exactly the violation, so
// phase 1 resumes from the prior optimum instead of restarting — and
// the solve continues until separation returns nothing. Because the
// working problem is always a relaxation of the fully cut problem,
// the final solution is optimal for it. The separation callback must
// eventually stop returning cuts (e.g. never repeat a row); each
// round's cuts are appended in one batch under a single
// refactorization.
func (p *Problem) SolveLazy(basis *Basis, separate func(x []float64) []Cut) (*Solution, error) {
	rv := newRevised(p)
	if err := rv.start(basis); err != nil {
		return nil, err
	}
	for {
		if err := rv.run(); err != nil {
			return nil, err
		}
		if separate == nil {
			return rv.solution(p)
		}
		cuts := separate(rv.currentX())
		if len(cuts) == 0 {
			return rv.solution(p)
		}
		base := len(p.cons)
		for _, c := range cuts {
			p.AddConstraint(c.Terms, c.Rel, c.Rhs)
		}
		rv.appendRows(p.cons[base:])
		// On small working bases a refactorization is nearly free and
		// compacts the eta file for the next rounds; on large ones the
		// kRow correction etas are much cheaper than refactorizing.
		if rv.m < 512 {
			rv.refresh()
		}
	}
}
