// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_k·x (≤ | = | ≥) b_k   for each constraint k
//	            x ≥ 0
//
// It is deliberately stdlib-only and sized for the LPs that arise in
// the SUU algorithms ((LP1) and (LP2) of Lin & Rajaraman, SPAA 2007):
// a few hundred to a few thousand variables and constraints. Dantzig
// pricing is used by default with an automatic switch to Bland's rule
// when the objective stalls, which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is the relation of a constraint row.
type Rel int

const (
	// LE is a ≤ constraint.
	LE Rel = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an = constraint.
	EQ
)

// Term is one coefficient of a constraint: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. All variables are
// implicitly nonnegative; encode x ≥ l by shifting and x ≤ u by an
// explicit constraint.
type Problem struct {
	nvars int
	c     []float64
	cons  []constraint
}

// Solution holds an optimal solution.
type Solution struct {
	// X is the optimal assignment, length NumVars.
	X []float64
	// Objective is c·X.
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

// ErrInfeasible is returned when the constraint set has no solution.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const (
	eps      = 1e-9
	stallLim = 64 // pivots without objective progress before Bland's rule
)

// NewProblem returns a problem with nvars nonnegative variables and a
// zero objective.
func NewProblem(nvars int) *Problem {
	if nvars <= 0 {
		panic("lp: problem needs at least one variable")
	}
	return &Problem{nvars: nvars, c: make([]float64, nvars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjectiveCoef sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, coef float64) {
	p.c[v] = coef
}

// AddConstraint appends the row Σ terms (rel) rhs. Terms may repeat a
// variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.nvars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.nvars))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{terms: cp, rel: rel, rhs: rhs})
}

// Solve runs two-phase simplex and returns an optimal solution,
// ErrInfeasible, or ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.cons)
	n := p.nvars

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per GE/EQ row (and per LE row with negative rhs after
	// normalization — handled by normalizing the row sign first).
	type rowSpec struct {
		dense []float64
		rhs   float64
		rel   Rel
	}
	rows := make([]rowSpec, m)
	for k, con := range p.cons {
		dense := make([]float64, n)
		for _, t := range con.terms {
			dense[t.Var] += t.Coef
		}
		rhs := con.rhs
		rel := con.rel
		if rhs < 0 {
			for i := range dense {
				dense[i] = -dense[i]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[k] = rowSpec{dense: dense, rhs: rhs, rel: rel}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows of [total coefficients | rhs].
	t := make([][]float64, m)
	basis := make([]int, m)
	artCols := make([]bool, total)
	sCol := n
	aCol := n + nSlack
	for k, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.dense)
		row[total] = r.rhs
		switch r.rel {
		case LE:
			row[sCol] = 1
			basis[k] = sCol
			sCol++
		case GE:
			row[sCol] = -1
			sCol++
			row[aCol] = 1
			artCols[aCol] = true
			basis[k] = aCol
			aCol++
		case EQ:
			row[aCol] = 1
			artCols[aCol] = true
			basis[k] = aCol
			aCol++
		}
		t[k] = row
	}

	iters := 0

	if nArt > 0 {
		// Phase 1: minimize sum of artificials.
		obj := make([]float64, total+1)
		for j := 0; j < total; j++ {
			if artCols[j] {
				obj[j] = 1
			}
		}
		// Price out the basic artificials.
		for k, b := range basis {
			if artCols[b] {
				for j := 0; j <= total; j++ {
					obj[j] -= t[k][j]
				}
			}
		}
		it, err := simplexLoop(t, obj, basis, total, nil)
		iters += it
		if err != nil {
			// Phase 1 cannot be unbounded (objective bounded below by 0);
			// treat any failure as internal.
			return nil, err
		}
		if -obj[total] > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		for k, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < total; j++ {
				if !artCols[j] && math.Abs(t[k][j]) > eps {
					pivot(t, basis, k, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: keep artificial basic at value 0. Forbid
				// it from ever re-entering by zeroing is unnecessary since
				// artificial columns are excluded in phase 2 pricing.
				_ = k
			}
		}
	}

	// Phase 2: original objective, artificial columns barred.
	obj := make([]float64, total+1)
	copy(obj, p.c)
	for k, b := range basis {
		if math.Abs(obj[b]) > eps {
			coef := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[k][j]
			}
		}
	}
	barred := artCols
	it, err := simplexLoop(t, obj, basis, total, barred)
	iters += it
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for k, b := range basis {
		if b < n {
			x[b] = t[k][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.c[j] * x[j]
	}
	return &Solution{X: x, Objective: objVal, Iterations: iters}, nil
}

// simplexLoop performs primal simplex pivots on tableau t with reduced
// cost row obj until optimality. barred columns (may be nil) are never
// chosen as entering variables.
func simplexLoop(t [][]float64, obj []float64, basis []int, total int, barred []bool) (int, error) {
	m := len(t)
	iters := 0
	stall := 0
	lastObj := math.Inf(1)
	for {
		iters++
		if iters > 200000 {
			return iters, errors.New("lp: iteration limit exceeded")
		}
		bland := stall >= stallLim
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if barred != nil && barred[j] {
				continue
			}
			if obj[j] < -eps {
				if bland {
					enter = j
					break
				}
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test (Bland tie-break on basis index for anti-cycling).
		leave := -1
		bestRatio := math.Inf(1)
		for k := 0; k < m; k++ {
			a := t[k][enter]
			if a > eps {
				r := t[k][total] / a
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || basis[k] < basis[leave])) {
					bestRatio = r
					leave = k
				}
			}
		}
		if leave == -1 {
			return iters, ErrUnbounded
		}
		pivot(t, basis, leave, enter, total)
		// Update reduced costs.
		coef := obj[enter]
		if math.Abs(coef) > 0 {
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[leave][j]
			}
		}
		if -obj[total] < lastObj-1e-12 {
			lastObj = -obj[total]
			stall = 0
		} else {
			stall++
		}
	}
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter, total int) {
	pr := t[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for k := range t {
		if k == leave {
			continue
		}
		f := t[k][enter]
		if f == 0 {
			continue
		}
		row := t[k]
		for j := 0; j <= total; j++ {
			row[j] -= f * pr[j]
		}
		row[enter] = 0 // exact
	}
	basis[leave] = enter
}
