package lp

import (
	"errors"
	"math"
	"sort"
)

// This file implements the sparse revised simplex. The constraint
// matrix is stored once in compressed-sparse-column form; every row k
// gets a logical variable s_k with bounds encoding its relation
// (a·x + s = b with s ≥ 0 for ≤, s ≤ 0 for ≥, s = 0 for =), so the
// initial all-logical basis is the identity. The basis inverse is
// kept in product form — an eta file, one sparse eta per pivot,
// refactorized from scratch every refactorEvery pivots — which makes
// the cost of a pivot O(nnz of the touched columns + eta file)
// instead of the dense tableau's O(rows · cols).
//
// Variable bounds l ≤ x ≤ u are handled natively: nonbasic variables
// rest at a bound, the ratio test blocks on both bounds of every
// basic variable, and a step may end in a bound flip (the entering
// variable crosses to its other bound without any basis change).
//
// Feasibility and optimality run as one loop: while any basic
// variable violates a bound, pricing uses the gradient of the total
// infeasibility (the textbook composite phase 1, which needs no
// artificial variables); once feasible, pricing switches to the true
// costs. Dantzig pricing is the default with Bland's rule engaged
// after stallLim non-improving pivots, mirroring the dense solver's
// anti-cycling strategy. Linearly dependent (redundant) rows are
// harmless here: their logicals simply stay basic at value zero.

type vstat uint8

const (
	atLower vstat = iota
	atUpper
	isFree // nonbasic free variable resting at 0
	inBasis
)

const (
	tolPivot      = 1e-9  // smallest usable ratio-test pivot
	tolDJ         = 1e-9  // reduced-cost optimality tolerance
	tolFeas       = 1e-7  // per-variable bound-violation tolerance
	tolEta        = 1e-12 // entries below this are dropped from etas
	tolSingular   = 1e-10 // refactorization pivot threshold
	refactorEvery = 64    // pivots between refactorizations
	maxIters      = 500000
)

// eta is one elementary transformation of the product-form inverse,
// with its nonzeros in the solver's shared arena
// (etaIdx/etaVal[start:end]), so appending an eta costs at most one
// amortized arena growth instead of two allocations. Two kinds exist:
//
//   - kCol (a pivot): v[i] -= val_i · (v[row]/pivot) for the stored
//     rows i, then v[row] /= pivot — the classic product-form column
//     eta.
//   - kRow (a lazily appended constraint row): v[row] -= Σ val_i ·
//     v[idx_i]. Appending rows whose logicals enter the basis makes
//     the new basis lower-block-triangular over the old one,
//     [[B,0],[C,I]], whose inverse is the old factorization followed
//     by exactly this correction — so lazy cuts join the factorization
//     with no refactorization at all.
type eta struct {
	row        int32
	start, end int32
	kind       uint8
	pivot      float64 // w[row] (kCol only)
}

const (
	kCol uint8 = iota
	kRow
)

type revised struct {
	m, n  int // rows, structural variables
	total int // n + m (logicals appended)

	// Structural columns in CSC form (duplicates accumulated). Rows
	// appended after construction (lazy cuts) extend columns via the
	// extIdx/extVal overflow lists, so the packed arrays never rebuild.
	colPtr []int32
	rowIdx []int32
	colVal []float64
	extIdx [][]int32
	extVal [][]float64
	nnz    int

	b      []float64 // row right-hand sides
	c      []float64 // structural costs
	lo, up []float64 // bounds, length total
	fixed  []bool    // lo == up (EQ logicals); never enter

	status []vstat
	basic  []int     // basic[r] = variable basic at row r
	xB     []float64 // values of the basic variables, by row

	etas   []eta
	etaIdx []int32   // shared eta arena: row indices
	etaVal []float64 // shared eta arena: values
	pivots int       // pivots since the last refactorization
	iters  int

	// cand is the multiple-pricing candidate list: the best columns of
	// the last full Dantzig scan. Between full scans only these are
	// re-priced (their reduced costs change with every pivot, so they
	// are recomputed, merely not re-discovered). A full scan refills
	// the list when no candidate is eligible — which is also the exact
	// optimality test. candPhase1 invalidates the list across phase
	// switches.
	cand       []int32
	candPhase1 bool

	// Scratch vectors, length m. w is maintained sparsely: wNZ lists
	// the rows that may be nonzero and wMark flags them, so clearing
	// and scanning cost O(fill), not O(m).
	w     []float64 // FTRANed entering column
	wNZ   []int32
	wMark []bool
	y     []float64 // BTRANed pricing multipliers
	cB    []float64 // basic cost vector of the active phase
	gB    []float64 // infeasibility gradient (−1 below, +1 above, 0 inside)
}

func newRevised(p *Problem) *revised {
	rv := &revised{
		m:     len(p.cons),
		n:     p.nvars,
		total: p.nvars + len(p.cons),
	}
	rv.buildColumns(p)
	// One float arena for the m- and total-length vectors (sliced with
	// full capacity caps, so a lazy-row append reallocates its slice
	// instead of clobbering a neighbor).
	fbuf := make([]float64, 6*rv.m+2*rv.total)
	carve := func(n int) []float64 {
		s := fbuf[:n:n]
		fbuf = fbuf[n:]
		return s
	}
	rv.b = carve(rv.m)
	rv.xB = carve(rv.m)
	rv.w = carve(rv.m)
	rv.y = carve(rv.m)
	rv.cB = carve(rv.m)
	rv.gB = carve(rv.m)
	rv.lo = carve(rv.total)
	rv.up = carve(rv.total)
	for k, con := range p.cons {
		rv.b[k] = con.rhs
	}
	rv.c = append([]float64(nil), p.c...)
	for j := 0; j < rv.n; j++ {
		rv.lo[j], rv.up[j] = p.lower(j), p.upper(j)
	}
	for k, con := range p.cons {
		j := rv.n + k
		switch con.rel {
		case LE:
			rv.lo[j], rv.up[j] = 0, math.Inf(1)
		case GE:
			rv.lo[j], rv.up[j] = math.Inf(-1), 0
		case EQ:
			rv.lo[j], rv.up[j] = 0, 0
		}
	}
	rv.fixed = make([]bool, rv.total)
	for j := range rv.fixed {
		rv.fixed[j] = rv.lo[j] == rv.up[j]
	}
	rv.extIdx = make([][]int32, rv.n)
	rv.extVal = make([][]float64, rv.n)
	rv.status = make([]vstat, rv.total)
	rv.basic = make([]int, rv.m)
	rv.wNZ = make([]int32, 0, rv.m)
	rv.wMark = make([]bool, rv.m)
	return rv
}

// appendRows extends the solver state with a batch of constraint rows
// whose logical variables enter the basis. Each new row gets a kRow
// correction eta linking it to the rows of its basic variables (the C
// block of the lower-block-triangular extension), so the existing
// factorization stays valid and the new logicals' values are computed
// directly — no refactorization, no x_B recomputation. A logical that
// lands outside its bounds (a violated cut) is repaired by phase 1 on
// the next iterations.
func (rv *revised) appendRows(cons []constraint) {
	posRow := make([]int32, rv.total)
	for i := range posRow {
		posRow[i] = -1
	}
	for r, j := range rv.basic {
		posRow[j] = int32(r)
	}
	for _, con := range cons {
		rv.appendRow(con, posRow)
	}
}

func (rv *revised) appendRow(con constraint, posRow []int32) {
	r := int32(rv.m)
	rv.m++
	rv.total++
	// Merge duplicate variables within the row (rows are short here).
	terms := make([]Term, 0, len(con.terms))
outer:
	for _, tm := range con.terms {
		for i := range terms {
			if terms[i].Var == tm.Var {
				terms[i].Coef += tm.Coef
				continue outer
			}
		}
		terms = append(terms, tm)
	}
	s := con.rhs // the new logical's value: rhs − a·x
	start := int32(len(rv.etaIdx))
	for _, tm := range terms {
		if tm.Coef == 0 {
			continue
		}
		rv.extIdx[tm.Var] = append(rv.extIdx[tm.Var], r)
		rv.extVal[tm.Var] = append(rv.extVal[tm.Var], tm.Coef)
		rv.nnz++
		if rho := posRow[tm.Var]; rho >= 0 {
			rv.etaIdx = append(rv.etaIdx, rho)
			rv.etaVal = append(rv.etaVal, tm.Coef)
			s -= tm.Coef * rv.xB[rho]
		} else if rv.status[tm.Var] != inBasis {
			s -= tm.Coef * rv.nbValue(tm.Var)
		}
	}
	if end := int32(len(rv.etaIdx)); end > start {
		rv.etas = append(rv.etas, eta{row: r, start: start, end: end, kind: kRow})
	}
	rv.b = append(rv.b, con.rhs)
	var lo, up float64
	switch con.rel {
	case LE:
		lo, up = 0, math.Inf(1)
	case GE:
		lo, up = math.Inf(-1), 0
	case EQ:
		lo, up = 0, 0
	}
	rv.lo = append(rv.lo, lo)
	rv.up = append(rv.up, up)
	rv.fixed = append(rv.fixed, lo == up)
	rv.status = append(rv.status, inBasis)
	rv.basic = append(rv.basic, rv.total-1)
	rv.xB = append(rv.xB, s)
	rv.w = append(rv.w, 0)
	rv.wMark = append(rv.wMark, false)
	rv.y = append(rv.y, 0)
	rv.cB = append(rv.cB, 0)
	rv.gB = append(rv.gB, 0)
}

// buildColumns converts the row-wise constraint terms into CSC form
// in two counted passes (no per-column append churn), accumulating
// duplicate variables within a row — duplicates land adjacently per
// column because rows are scanned in order — and dropping entries
// that cancel to exact zero.
func (rv *revised) buildColumns(p *Problem) {
	n := p.nvars
	count := make([]int32, n)
	for _, con := range p.cons {
		for _, tm := range con.terms {
			count[tm.Var]++
		}
	}
	ptr := make([]int32, n+1)
	for j := 0; j < n; j++ {
		ptr[j+1] = ptr[j] + count[j]
	}
	rowIdx := make([]int32, ptr[n])
	colVal := make([]float64, ptr[n])
	next := make([]int32, n)
	copy(next, ptr[:n])
	for k, con := range p.cons {
		for _, tm := range con.terms {
			v := tm.Var
			if next[v] > ptr[v] && rowIdx[next[v]-1] == int32(k) {
				colVal[next[v]-1] += tm.Coef
				continue
			}
			rowIdx[next[v]] = int32(k)
			colVal[next[v]] = tm.Coef
			next[v]++
		}
	}
	rv.colPtr = make([]int32, n+1)
	at := int32(0)
	for j := 0; j < n; j++ {
		rv.colPtr[j] = at
		for k := ptr[j]; k < next[j]; k++ {
			if colVal[k] != 0 {
				rowIdx[at] = rowIdx[k]
				colVal[at] = colVal[k]
				at++
			}
		}
	}
	rv.colPtr[n] = at
	rv.rowIdx = rowIdx[:at]
	rv.colVal = colVal[:at]
	rv.nnz = int(at)
}

// colNnz returns the stored nonzero count of a column.
func (rv *revised) colNnz(j int) int {
	if j >= rv.n {
		return 1
	}
	return int(rv.colPtr[j+1]-rv.colPtr[j]) + len(rv.extIdx[j])
}

// cost returns the phase-2 cost of variable j.
func (rv *revised) cost(j int) float64 {
	if j < rv.n {
		return rv.c[j]
	}
	return 0
}

// nbValue returns the resting value of nonbasic variable j.
func (rv *revised) nbValue(j int) float64 {
	switch rv.status[j] {
	case atLower:
		return rv.lo[j]
	case atUpper:
		return rv.up[j]
	}
	return 0
}

// ftran applies the eta file in order: v ← B⁻¹ v.
func (rv *revised) ftran(v []float64) {
	for k := range rv.etas {
		e := &rv.etas[k]
		if e.kind == kRow {
			s := v[e.row]
			for i := e.start; i < e.end; i++ {
				s -= rv.etaVal[i] * v[rv.etaIdx[i]]
			}
			v[e.row] = s
			continue
		}
		vr := v[e.row]
		if vr == 0 {
			continue
		}
		t := vr / e.pivot
		for i := e.start; i < e.end; i++ {
			v[rv.etaIdx[i]] -= rv.etaVal[i] * t
		}
		v[e.row] = t
	}
}

// clearW resets the sparse scratch column.
func (rv *revised) clearW() {
	for _, r := range rv.wNZ {
		rv.w[r] = 0
		rv.wMark[r] = false
	}
	rv.wNZ = rv.wNZ[:0]
}

// loadW scatters column j into the sparse scratch column and FTRANs
// it, tracking the fill pattern so later passes cost O(fill) instead
// of O(m). Cancellations may leave exact zeros in the pattern; they
// are harmless.
func (rv *revised) loadW(j int) {
	rv.clearW()
	touch := func(r int32) {
		if !rv.wMark[r] {
			rv.wMark[r] = true
			rv.wNZ = append(rv.wNZ, r)
		}
	}
	if j >= rv.n {
		r := int32(j - rv.n)
		touch(r)
		rv.w[r] += 1
	} else {
		for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
			touch(rv.rowIdx[k])
			rv.w[rv.rowIdx[k]] += rv.colVal[k]
		}
		for k, ri := range rv.extIdx[j] {
			touch(ri)
			rv.w[ri] += rv.extVal[j][k]
		}
	}
	for k := range rv.etas {
		e := &rv.etas[k]
		if e.kind == kRow {
			s := rv.w[e.row]
			changed := false
			for i := e.start; i < e.end; i++ {
				if wv := rv.w[rv.etaIdx[i]]; wv != 0 {
					s -= rv.etaVal[i] * wv
					changed = true
				}
			}
			if changed {
				touch(e.row)
				rv.w[e.row] = s
			}
			continue
		}
		vr := rv.w[e.row]
		if vr == 0 {
			continue
		}
		t := vr / e.pivot
		for i := e.start; i < e.end; i++ {
			ri := rv.etaIdx[i]
			touch(ri)
			rv.w[ri] -= rv.etaVal[i] * t
		}
		rv.w[e.row] = t
	}
}

// btran applies the transposed eta file in reverse: y ← (B⁻¹)ᵀ y.
func (rv *revised) btran(y []float64) {
	for k := len(rv.etas) - 1; k >= 0; k-- {
		e := &rv.etas[k]
		if e.kind == kRow {
			yr := y[e.row]
			if yr != 0 {
				for i := e.start; i < e.end; i++ {
					y[rv.etaIdx[i]] -= rv.etaVal[i] * yr
				}
			}
			continue
		}
		t := y[e.row]
		for i := e.start; i < e.end; i++ {
			t -= rv.etaVal[i] * y[rv.etaIdx[i]]
		}
		y[e.row] = t / e.pivot
	}
}

// appendEta records the pivot of the sparse scratch column at row r,
// writing the off-diagonal fill into the shared arena. Identity etas
// (unit pivot, no fill) are skipped.
func (rv *revised) appendEta(r int) {
	start := int32(len(rv.etaIdx))
	for _, i := range rv.wNZ {
		if int(i) == r {
			continue
		}
		if v := rv.w[i]; v > tolEta || v < -tolEta {
			rv.etaIdx = append(rv.etaIdx, i)
			rv.etaVal = append(rv.etaVal, v)
		}
	}
	end := int32(len(rv.etaIdx))
	piv := rv.w[r]
	if start == end && piv == 1 {
		return
	}
	rv.etas = append(rv.etas, eta{row: int32(r), start: start, end: end, pivot: piv})
}

// defaultNonbasic rests variable j at its natural nonbasic position.
func (rv *revised) defaultNonbasic(j int) {
	switch {
	case !math.IsInf(rv.lo[j], -1):
		rv.status[j] = atLower
	case !math.IsInf(rv.up[j], 1):
		rv.status[j] = atUpper
	default:
		rv.status[j] = isFree
	}
}

// resetLogical installs the all-logical (identity) basis.
func (rv *revised) resetLogical() {
	for j := 0; j < rv.n; j++ {
		rv.defaultNonbasic(j)
	}
	for k := 0; k < rv.m; k++ {
		rv.basic[k] = rv.n + k
		rv.status[rv.n+k] = inBasis
	}
	rv.etas = rv.etas[:0]
	rv.etaIdx = rv.etaIdx[:0]
	rv.etaVal = rv.etaVal[:0]
	rv.pivots = 0
}

// adoptBasis installs a caller-supplied basis; false if it is
// malformed (wrong size, out-of-range or duplicate entries).
func (rv *revised) adoptBasis(b *Basis) bool {
	if len(b.Basic) != rv.m {
		return false
	}
	seen := make([]bool, rv.total)
	for _, j := range b.Basic {
		if j < 0 || j >= rv.total || seen[j] {
			return false
		}
		seen[j] = true
	}
	for j := 0; j < rv.total; j++ {
		rv.defaultNonbasic(j)
	}
	for k, j := range b.Basic {
		rv.basic[k] = j
		rv.status[j] = inBasis
	}
	for _, j := range b.AtUpper {
		if j < 0 || j >= rv.total || rv.status[j] == inBasis || math.IsInf(rv.up[j], 1) {
			continue
		}
		rv.status[j] = atUpper
	}
	rv.etas = rv.etas[:0]
	rv.etaIdx = rv.etaIdx[:0]
	rv.etaVal = rv.etaVal[:0]
	rv.pivots = 0
	return true
}

// refactor rebuilds the eta file for the current basis from scratch
// (sparse Gaussian elimination with pivot choice by magnitude among
// unassigned rows, columns processed in ascending density). Basic
// logical variables go first: with no etas built yet their unit
// columns pass through unchanged and need no eta at all, so the cost
// of a refactorization is proportional to the structural part of the
// basis — in the SUU LPs the overwhelmingly basic window-row logicals
// are free. Returns false if the basis is numerically singular.
func (rv *revised) refactor() bool {
	rv.etas = rv.etas[:0]
	rv.etaIdx = rv.etaIdx[:0]
	rv.etaVal = rv.etaVal[:0]
	rv.pivots = 0
	assigned := make([]bool, rv.m)
	newBasic := make([]int, rv.m)
	var structural []int
	for _, v := range rv.basic {
		if v >= rv.n {
			// Unit column through an empty eta file: assign its own row.
			r := v - rv.n
			assigned[r] = true
			newBasic[r] = v
		} else {
			structural = append(structural, v)
		}
	}
	sort.Slice(structural, func(a, b int) bool {
		// Sort keys are cheap (colNnz is two array reads), so sorting by
		// density directly beats materializing a weight array.
		wa, wb := rv.colNnz(structural[a]), rv.colNnz(structural[b])
		if wa != wb {
			return wa < wb
		}
		return structural[a] < structural[b]
	})
	for _, v := range structural {
		rv.loadW(v)
		best, bestAbs := -1, tolSingular
		for _, r := range rv.wNZ {
			if assigned[r] {
				continue
			}
			if a := math.Abs(rv.w[r]); a > bestAbs {
				best, bestAbs = int(r), a
			}
		}
		if best < 0 {
			return false
		}
		rv.appendEta(best)
		assigned[best] = true
		newBasic[best] = v
	}
	copy(rv.basic, newBasic)
	return true
}

// computeXB recomputes the basic values from scratch:
// x_B = B⁻¹ (b − Σ_{nonbasic j} A_j · value_j).
func (rv *revised) computeXB() {
	rhs := rv.xB
	copy(rhs, rv.b)
	for j := 0; j < rv.total; j++ {
		if rv.status[j] == inBasis {
			continue
		}
		v := rv.nbValue(j)
		if v == 0 {
			continue
		}
		if j >= rv.n {
			rhs[j-rv.n] -= v
			continue
		}
		for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
			rhs[rv.rowIdx[k]] -= rv.colVal[k] * v
		}
		for k, ri := range rv.extIdx[j] {
			rhs[ri] -= rv.extVal[j][k] * v
		}
	}
	rv.ftran(rhs)
}

// refresh refactorizes (falling back to the identity basis if the
// current one has gone singular) and recomputes the basic values.
func (rv *revised) refresh() {
	if !rv.refactor() {
		rv.resetLogical()
	}
	rv.computeXB()
}

// start installs the warm-start basis if one is given and valid, else
// the all-logical basis.
func (rv *revised) start(b *Basis) error {
	if b != nil && rv.adoptBasis(b) && rv.refactor() {
		rv.computeXB()
		return nil
	}
	rv.resetLogical()
	rv.computeXB()
	return nil
}

// infeasibility fills the gradient gB and returns the total bound
// violation of the basic variables.
func (rv *revised) infeasibility() float64 {
	sum := 0.0
	for r := 0; r < rv.m; r++ {
		j := rv.basic[r]
		v := rv.xB[r]
		switch {
		case v < rv.lo[j]-tolFeas:
			rv.gB[r] = -1
			sum += rv.lo[j] - v
		case v > rv.up[j]+tolFeas:
			rv.gB[r] = 1
			sum += v - rv.up[j]
		default:
			rv.gB[r] = 0
		}
	}
	return sum
}

// priceOne returns variable j's reduced cost under the active phase's
// multipliers and whether j is eligible to enter. The dot product is
// written out inline: pricing is the hottest code in the solver.
func (rv *revised) priceOne(j int, phase1 bool) (float64, bool) {
	st := rv.status[j]
	if st == inBasis || rv.fixed[j] {
		return 0, false
	}
	y := rv.y
	var d float64
	if j >= rv.n {
		d = -y[j-rv.n] // logicals cost 0 in both phases
	} else {
		s := 0.0
		for k := rv.colPtr[j]; k < rv.colPtr[j+1]; k++ {
			s += rv.colVal[k] * y[rv.rowIdx[k]]
		}
		if ext := rv.extIdx[j]; len(ext) > 0 {
			ev := rv.extVal[j]
			for k, ri := range ext {
				s += ev[k] * y[ri]
			}
		}
		d = -s
		if !phase1 {
			d += rv.c[j]
		}
	}
	switch st {
	case atLower:
		return d, d < -tolDJ
	case atUpper:
		return d, d > tolDJ
	default: // isFree
		return d, d < -tolDJ || d > tolDJ
	}
}

// maxCand bounds the multiple-pricing candidate list: larger problems
// carry more candidates so the expensive full scans stay rare, at a
// mild cost in pivot-choice freshness.
const maxCandCap = 128

func (rv *revised) maxCand() int {
	k := 8 + rv.total/32
	if k > maxCandCap {
		k = maxCandCap
	}
	return k
}

// price returns the entering candidate: the best column of the
// candidate list under Dantzig pricing, refilled by a full scan when
// the list has no eligible column (the full scan that finds nothing
// is the exact optimality test), or the lowest-index eligible column
// under Bland's rule. Returns -1 when priced optimal.
func (rv *revised) price(phase1, bland bool) (int, float64) {
	if bland {
		for j := 0; j < rv.total; j++ {
			if d, ok := rv.priceOne(j, phase1); ok {
				return j, d
			}
		}
		return -1, 0
	}
	K := rv.maxCand()
	if rv.candPhase1 == phase1 {
		// Use the list until it is exhausted: the sized-by-total list
		// stays fresh enough that chasing survivors costs far fewer
		// pivots than per-pivot full scans cost time.
		enter, bestAbs, bestD := -1, tolDJ, 0.0
		for _, j32 := range rv.cand {
			j := int(j32)
			d, ok := rv.priceOne(j, phase1)
			if !ok {
				continue
			}
			if a := math.Abs(d); a > bestAbs {
				enter, bestAbs, bestD = j, a, d
			}
		}
		if enter >= 0 {
			return enter, bestD
		}
	}
	// Full scan: refill the candidate list with the top columns.
	rv.cand = rv.cand[:0]
	rv.candPhase1 = phase1
	var vals [maxCandCap]float64
	var idxs [maxCandCap]int32
	count := 0
	worst := 0 // position of the smallest |d| in the filled list
	for j := 0; j < rv.total; j++ {
		d, ok := rv.priceOne(j, phase1)
		if !ok {
			continue
		}
		a := math.Abs(d)
		if count < K {
			vals[count], idxs[count] = a, int32(j)
			if count > 0 && a < vals[worst] {
				worst = count
			}
			count++
			continue
		}
		if a <= vals[worst] {
			continue
		}
		vals[worst], idxs[worst] = a, int32(j)
		worst = 0
		for k := 1; k < K; k++ {
			if vals[k] < vals[worst] {
				worst = k
			}
		}
	}
	if count == 0 {
		return -1, 0
	}
	best := 0
	for k := 1; k < count; k++ {
		if vals[k] > vals[best] {
			best = k
		}
	}
	rv.cand = append(rv.cand, idxs[:count]...)
	d, _ := rv.priceOne(int(idxs[best]), phase1)
	return int(idxs[best]), d
}

// ratioTest finds the largest step t for the entering variable moving
// in direction sigma. Returns the blocking row (-1 for a bound flip
// of the entering variable itself) and whether the variable leaving —
// or, for a flip, the entering variable — lands at its upper bound.
// t is +Inf when nothing blocks.
func (rv *revised) ratioTest(enter int, sigma float64, bland bool) (t float64, leaveRow int, toUpper bool) {
	const tie = 1e-9
	t = math.Inf(1)
	leaveRow = -1
	cur := rv.nbValue(enter)
	if sigma > 0 {
		if u := rv.up[enter]; !math.IsInf(u, 1) {
			t, toUpper = u-cur, true
		}
	} else {
		if l := rv.lo[enter]; !math.IsInf(l, -1) {
			t, toUpper = cur-l, false
		}
	}
	bestPiv := 0.0
	for _, r32 := range rv.wNZ {
		r := int(r32)
		wr := rv.w[r]
		if wr > -tolPivot && wr < tolPivot {
			continue
		}
		delta := sigma * wr // x_B[r] changes at rate −delta per unit step
		j := rv.basic[r]
		xb, l, u := rv.xB[r], rv.lo[j], rv.up[j]
		var tr float64
		var dest bool
		switch {
		case xb < l-tolFeas:
			// Infeasible below its lower bound: blocks only while
			// climbing back to it (crossing would flip its phase-1 cost).
			if delta >= 0 {
				continue
			}
			tr, dest = (l-xb)/-delta, false
		case xb > u+tolFeas:
			if delta <= 0 {
				continue
			}
			tr, dest = (xb-u)/delta, true
		case delta > 0:
			if math.IsInf(l, -1) {
				continue
			}
			tr, dest = (xb-l)/delta, false
		default:
			if math.IsInf(u, 1) {
				continue
			}
			tr, dest = (u-xb)/-delta, true
		}
		if tr < 0 {
			tr = 0 // numerical drift just past a bound: degenerate step
		}
		abs := math.Abs(wr)
		switch {
		case tr < t-tie:
			t, leaveRow, toUpper, bestPiv = tr, r, dest, abs
		case tr < t+tie && leaveRow >= 0:
			// Tie between rows: Bland breaks by lowest basic variable
			// index (anti-cycling); Dantzig by largest pivot (stability).
			if bland {
				if j < rv.basic[leaveRow] {
					leaveRow, toUpper, bestPiv = r, dest, abs
				}
			} else if abs > bestPiv {
				leaveRow, toUpper, bestPiv = r, dest, abs
			}
			// A row tying with the entering variable's own bound flip
			// (leaveRow still -1) loses to the flip: flips are cheaper
			// and strictly improving (the flip span is positive).
		}
	}
	return t, leaveRow, toUpper
}

// applyStep moves the entering variable by sigma·t and performs the
// basis change (or bound flip) chosen by the ratio test.
func (rv *revised) applyStep(enter int, sigma, t float64, leaveRow int, toUpper bool) {
	w := rv.w
	if leaveRow < 0 {
		if t != 0 {
			for _, r := range rv.wNZ {
				if w[r] != 0 {
					rv.xB[r] -= sigma * t * w[r]
				}
			}
		}
		if toUpper {
			rv.status[enter] = atUpper
		} else {
			rv.status[enter] = atLower
		}
		return
	}
	xq := rv.nbValue(enter) + sigma*t
	for _, r := range rv.wNZ {
		if int(r) == leaveRow || w[r] == 0 {
			continue
		}
		rv.xB[r] -= sigma * t * w[r]
	}
	leaving := rv.basic[leaveRow]
	if toUpper {
		rv.status[leaving] = atUpper
	} else {
		rv.status[leaving] = atLower
	}
	rv.basic[leaveRow] = enter
	rv.status[enter] = inBasis
	rv.xB[leaveRow] = xq
	rv.appendEta(leaveRow)
	rv.pivots++
}

// run iterates the composite simplex to optimality, ErrInfeasible, or
// ErrUnbounded.
func (rv *revised) run() error {
	stall := 0
	bland := false
	prevPhase1 := false
	checkFeas := true
	for {
		rv.iters++
		if rv.iters > maxIters {
			return errors.New("lp: iteration limit exceeded")
		}
		if rv.pivots >= refactorEvery || len(rv.etaIdx) > 8*rv.m+256 {
			rv.refresh()
			checkFeas = true
		}
		// In steady-state phase 2 the ratio test keeps every basic
		// variable within bounds, so the O(m) feasibility scan runs only
		// while infeasible, right after a recomputation of x_B, or as
		// the final verification before declaring optimality below.
		phase1 := false
		if checkFeas || prevPhase1 {
			phase1 = rv.infeasibility() > 0
			checkFeas = false
		}
		if phase1 != prevPhase1 {
			stall, bland = 0, false
			prevPhase1 = phase1
		}
		for r := 0; r < rv.m; r++ {
			if phase1 {
				rv.cB[r] = rv.gB[r]
			} else {
				rv.cB[r] = rv.cost(rv.basic[r])
			}
		}
		copy(rv.y, rv.cB)
		rv.btran(rv.y)
		enter, dj := rv.price(phase1, bland)
		if enter < 0 {
			if phase1 {
				return ErrInfeasible
			}
			if rv.infeasibility() > 0 {
				// Numerical drift re-opened a bound violation since the
				// last scan: clean up and re-enter phase 1.
				rv.refresh()
				checkFeas = true
				stall, bland = 0, false
				continue
			}
			return nil // optimal
		}
		sigma := 1.0
		if st := rv.status[enter]; st == atUpper || (st == isFree && dj > 0) {
			sigma = -1
		}
		rv.loadW(enter)
		t, leaveRow, toUpper := rv.ratioTest(enter, sigma, bland)
		if math.IsInf(t, 1) {
			if phase1 {
				// The infeasibility is bounded below by zero and strictly
				// decreasing along the ray; no block is a numerical failure.
				return errors.New("lp: phase-1 ray (numerical failure)")
			}
			return ErrUnbounded
		}
		rv.applyStep(enter, sigma, t, leaveRow, toUpper)
		if math.Abs(dj)*t > 1e-12 {
			stall, bland = 0, false
		} else if stall++; stall >= stallLim {
			bland = true
		}
	}
}

// currentX reads the structural solution off the current basis state.
func (rv *revised) currentX() []float64 {
	x := make([]float64, rv.n)
	for j := 0; j < rv.n; j++ {
		if rv.status[j] != inBasis {
			x[j] = rv.nbValue(j)
		}
	}
	for r, j := range rv.basic {
		if j < rv.n {
			x[j] = rv.xB[r]
		}
	}
	return x
}

// solution extracts the optimum after run() returned nil.
func (rv *revised) solution(p *Problem) (*Solution, error) {
	// Tighten the numerics once before extraction: a fresh
	// factorization removes the eta file's accumulated drift. Short
	// runs since the last refactorization carry ~1e-13 of drift, so
	// small solves skip the extra factorization. A refactorization
	// failure here must NOT fall back to the identity basis (run() is
	// over — nothing would re-solve); the current factorization is
	// still consistent, so extract from it as-is.
	if rv.pivots >= refactorEvery/2 && rv.refactor() {
		rv.computeXB()
	}
	x := rv.currentX()
	obj := 0.0
	for j := 0; j < rv.n; j++ {
		obj += rv.c[j] * x[j]
	}
	basis := &Basis{Basic: append([]int(nil), rv.basic...)}
	for j := 0; j < rv.total; j++ {
		if rv.status[j] == atUpper {
			basis.AtUpper = append(basis.AtUpper, j)
		}
	}
	return &Solution{
		X: x, Objective: obj, Iterations: rv.iters,
		Rows: rv.m, Cols: rv.n, Nnz: rv.nnz,
		Basis: basis,
	}, nil
}
