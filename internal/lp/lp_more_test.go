package lp

import (
	"math"
	"math/rand"
	"testing"
)

// 2-variable LPs can be solved geometrically by vertex enumeration;
// cross-check the simplex against that on random instances.
func TestAgainstVertexEnumeration2D(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(6)
		type row struct{ a, b, c float64 }
		rows := make([]row, m)
		p := NewProblem(2)
		cx, cy := rng.Float64()*4, rng.Float64()*4 // nonnegative objective => bounded
		p.SetObjectiveCoef(0, cx)
		p.SetObjectiveCoef(1, cy)
		feasibleAtOrigin := true
		for k := range rows {
			a, b := rng.Float64()*4-2, rng.Float64()*4-2
			c := rng.Float64() * 5
			if rng.Intn(4) == 0 {
				c = -c // sometimes cut off the origin
				feasibleAtOrigin = false
			}
			rows[k] = row{a, b, c}
			p.AddConstraint([]Term{{0, a}, {1, b}}, LE, c)
		}
		_ = feasibleAtOrigin
		feas := func(x, y float64) bool {
			if x < -1e-9 || y < -1e-9 {
				return false
			}
			for _, r := range rows {
				if r.a*x+r.b*y > r.c+1e-9 {
					return false
				}
			}
			return true
		}
		// Enumerate candidate vertices: axis intersections and pairwise
		// constraint intersections.
		best := math.Inf(1)
		consider := func(x, y float64) {
			if feas(x, y) {
				if v := cx*x + cy*y; v < best {
					best = v
				}
			}
		}
		consider(0, 0)
		for _, r := range rows {
			if r.a != 0 {
				consider(r.c/r.a, 0)
			}
			if r.b != 0 {
				consider(0, r.c/r.b)
			}
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				det := rows[i].a*rows[j].b - rows[j].a*rows[i].b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (rows[i].c*rows[j].b - rows[j].c*rows[i].b) / det
				y := (rows[i].a*rows[j].c - rows[j].a*rows[i].c) / det
				consider(x, y)
			}
		}
		sol, err := p.Solve()
		if math.IsInf(best, 1) {
			if err != ErrInfeasible {
				// The geometric enumeration found no feasible vertex, but
				// the region may still be nonempty only if unbounded in a
				// direction that our vertex set missed — impossible with
				// x,y >= 0 and a bounded optimum, so demand infeasible.
				t.Fatalf("trial %d: enumeration says infeasible, solver %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver error %v (feasible LP, best %v)", trial, err, best)
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: simplex %v vs enumeration %v", trial, sol.Objective, best)
		}
	}
}

func TestScaleInvariance(t *testing.T) {
	// Scaling all constraints and objective by positive constants must
	// scale the optimum accordingly.
	build := func(scale float64) float64 {
		p := NewProblem(2)
		p.SetObjectiveCoef(0, 3*scale)
		p.SetObjectiveCoef(1, 2*scale)
		p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 4)
		p.AddConstraint([]Term{{0, 1}}, LE, 3)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol.Objective
	}
	a, b := build(1), build(7)
	if math.Abs(b-7*a) > 1e-6 {
		t.Errorf("objective scaling broken: %v vs %v", b, 7*a)
	}
}

func TestManyEqualityRows(t *testing.T) {
	// A fully determined system: x0=1, x1=2, x2=3 via equalities.
	p := NewProblem(3)
	for i := 0; i < 3; i++ {
		p.SetObjectiveCoef(i, 1)
		p.AddConstraint([]Term{{i, 1}}, EQ, float64(i+1))
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(sol.X[i]-want) > 1e-9 {
			t.Errorf("x[%d]=%v", i, sol.X[i])
		}
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem: any feasible point is optimal.
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	s := sol.X[0] + sol.X[1]
	if s < 2-1e-9 || s > 5+1e-9 {
		t.Errorf("feasibility solve returned infeasible point %v", sol.X)
	}
}

func TestLP1ShapedProblem(t *testing.T) {
	// A miniature LP1: 2 jobs, 2 machines, one chain — regression shape
	// for the core builder (kept here to pin the solver behaviour the
	// builder depends on).
	// Variables: x00 x01 x10 x11 d0' d1' t  (x_ij machine i job j)
	p := NewProblem(7)
	p.SetObjectiveCoef(6, 1)
	// mass: 0.5·x00 + 0.3·x10 >= 0.5 ; 0.4·x01 + 0.2·x11 >= 0.5
	p.AddConstraint([]Term{{0, 0.5}, {2, 0.3}}, GE, 0.5)
	p.AddConstraint([]Term{{1, 0.4}, {3, 0.2}}, GE, 0.5)
	// load: x00+x01 <= t ; x10+x11 <= t
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {6, -1}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}, {3, 1}, {6, -1}}, LE, 0)
	// chain {0,1}: (d0'+1)+(d1'+1) <= t
	p.AddConstraint([]Term{{4, 1}, {5, 1}, {6, -1}}, LE, -2)
	// windows: x_ij <= d_j
	p.AddConstraint([]Term{{0, 1}, {4, -1}}, LE, 1)
	p.AddConstraint([]Term{{2, 1}, {4, -1}}, LE, 1)
	p.AddConstraint([]Term{{1, 1}, {5, -1}}, LE, 1)
	p.AddConstraint([]Term{{3, 1}, {5, -1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective < 2-1e-9 {
		t.Errorf("t=%v below chain lower bound 2", sol.Objective)
	}
	if sol.Objective > 4+1e-9 {
		t.Errorf("t=%v suspiciously large", sol.Objective)
	}
}

func TestIterationsReported(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoef(0, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations < 1 {
		t.Errorf("iterations=%d", sol.Iterations)
	}
}
