package exp

import (
	"math/rand"

	"suu/internal/core"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T8 validates Theorem 4.8: out-/in-tree pipelines stay within
// O(log m·log² n) of the lower bound.
func T8(cfg Config) *Table {
	t := &Table{
		ID:         "T8",
		Title:      "Out-/in-tree pipeline ratio vs. LP lower bound",
		PaperBound: "Theorem 4.8: E[makespan] ≤ O(log m·log² n)·T_OPT",
		Header:     []string{"family", "n", "m", "blocks", "mean ratio", "ratio/(log m·log²n)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	sizes := [][2]int{{8, 3}, {16, 4}, {32, 6}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	for _, family := range []string{"out-tree", "in-tree"} {
		for _, nm := range sizes {
			n, m := nm[0], nm[1]
			var ratios []float64
			blocks := 0
			for k := 0; k < cfg.trials(); k++ {
				c := workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()}
				in := workload.OutTree(c)
				if family == "in-tree" {
					in = workload.InTree(c)
				}
				res, err := core.SUUForest(in, paramsWithSeed(cfg.Seed))
				if err != nil {
					continue
				}
				blocks = res.Decomposition.Width()
				mean := estimate(in, res.Schedule, cfg.reps(), cfg.Seed)
				if mean < 0 || res.LowerBound <= 0 {
					continue
				}
				ratios = append(ratios, mean/res.LowerBound)
			}
			if len(ratios) == 0 {
				continue
			}
			mr := stats.Mean(ratios)
			lm := stats.Log2(float64(m) + 1)
			ln := stats.Log2(float64(n) + 1)
			t.Rows = append(t.Rows, []string{family, d(n), d(m), d(blocks), f2(mr), f2(mr / (lm * ln * ln))})
		}
	}
	t.Notes = "blocks ≤ ⌈log₂n⌉+1 by the rank decomposition (Lemma 4.6 regime)."
	return t
}

// T9 validates Theorem 4.7 on mixed forests (and reports the level-
// decomposition fallback on a layered general dag for contrast).
func T9(cfg Config) *Table {
	t := &Table{
		ID:         "T9",
		Title:      "Directed-forest pipeline ratio vs. LP lower bound",
		PaperBound: "Theorem 4.7: E[makespan] ≤ O(log m·log²n·log(n+m)/loglog(n+m))·T_OPT",
		Header:     []string{"family", "n", "m", "decomp", "blocks", "mean ratio", "ratio/bound-shape"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	sizes := [][2]int{{12, 4}, {24, 6}}
	if !cfg.Quick {
		sizes = append(sizes, [2]int{48, 8})
	}
	for _, family := range []string{"mixed-forest", "layered-dag"} {
		for _, nm := range sizes {
			n, m := nm[0], nm[1]
			var ratios []float64
			blocks := 0
			method := ""
			for k := 0; k < cfg.trials(); k++ {
				c := workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()}
				in := workload.MixedForest(c, 3)
				if family == "layered-dag" {
					in = workload.Layered(c, 3, 0.25)
				}
				res, err := core.SUUForest(in, paramsWithSeed(cfg.Seed))
				if err != nil {
					continue
				}
				blocks = res.Decomposition.Width()
				method = res.Decomposition.Method
				mean := estimate(in, res.Schedule, cfg.reps(), cfg.Seed)
				if mean < 0 || res.LowerBound <= 0 {
					continue
				}
				ratios = append(ratios, mean/res.LowerBound)
			}
			if len(ratios) == 0 {
				continue
			}
			mr := stats.Mean(ratios)
			ln := stats.Log2(float64(n) + 1)
			shape := boundShapeChains(n, m) * ln
			t.Rows = append(t.Rows, []string{family, d(n), d(m), method, d(blocks), f2(mr), f2(mr / shape)})
		}
	}
	t.Notes = "layered-dag rows exercise the level-decomposition fallback, which is outside the paper's guarantee (expect larger normalized ratios there)."
	return t
}
