package exp

import (
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T8 validates Theorem 4.8: out-/in-tree pipelines stay within
// O(log m·log² n) of the lower bound.
func T8(cfg Config) *Table {
	t := &Table{
		ID:         "T8",
		Title:      "Out-/in-tree pipeline ratio vs. LP lower bound",
		PaperBound: "Theorem 4.8: E[makespan] ≤ O(log m·log² n)·T_OPT",
		Header:     []string{"family", "n", "m", "blocks", "mean ratio", "ratio/(log m·log²n)"},
	}
	families := []string{"out-tree", "in-tree"}
	sizes := [][2]int{{8, 3}, {16, 4}, {32, 6}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	trials := cfg.trials()
	type cell struct {
		ratio  float64
		blocks int
		ok     bool
	}
	cells := runSweep(cfg, len(families)*len(sizes), trials, func(p, k int) cell {
		family := families[p/len(sizes)]
		n, m := sizes[p%len(sizes)][0], sizes[p%len(sizes)][1]
		seed := sim.SeedFor(cfg.Seed, "T8/"+family, int64(n), int64(m), int64(k))
		c := workload.Config{Jobs: n, Machines: m, Seed: seed}
		in := workload.OutTree(c)
		if family == "in-tree" {
			in = workload.InTree(c)
		}
		sol, _ := solve.Get("forest")
		res, err := sol.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		mean := estimate(in, res.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		if mean < 0 || res.LowerBound <= 0 {
			return cell{}
		}
		return cell{ratio: mean / res.LowerBound, blocks: res.Blocks, ok: true}
	})
	for fi, family := range families {
		for s, nm := range sizes {
			var ratios []float64
			blocks := 0
			for _, c := range cells[fi*len(sizes)+s] {
				if !c.ok {
					continue
				}
				ratios = append(ratios, c.ratio)
				blocks = c.blocks
			}
			if len(ratios) == 0 {
				continue
			}
			mr := stats.Mean(ratios)
			lm := stats.Log2(float64(nm[1]) + 1)
			ln := stats.Log2(float64(nm[0]) + 1)
			t.Rows = append(t.Rows, []string{family, d(nm[0]), d(nm[1]), d(blocks), f2(mr), f2(mr / (lm * ln * ln))})
		}
	}
	t.Notes = "blocks ≤ ⌈log₂n⌉+1 by the rank decomposition (Lemma 4.6 regime)."
	return t
}

// T9 validates Theorem 4.7 on mixed forests (and reports the level-
// decomposition fallback on a layered general dag for contrast).
func T9(cfg Config) *Table {
	t := &Table{
		ID:         "T9",
		Title:      "Directed-forest pipeline ratio vs. LP lower bound",
		PaperBound: "Theorem 4.7: E[makespan] ≤ O(log m·log²n·log(n+m)/loglog(n+m))·T_OPT",
		Header:     []string{"family", "n", "m", "decomp", "blocks", "mean ratio", "ratio/bound-shape"},
	}
	families := []string{"mixed-forest", "layered-dag"}
	sizes := [][2]int{{12, 4}, {24, 6}}
	if !cfg.Quick {
		sizes = append(sizes, [2]int{48, 8})
	}
	trials := cfg.trials()
	type cell struct {
		ratio  float64
		blocks int
		method string
		ok     bool
	}
	cells := runSweep(cfg, len(families)*len(sizes), trials, func(p, k int) cell {
		family := families[p/len(sizes)]
		n, m := sizes[p%len(sizes)][0], sizes[p%len(sizes)][1]
		seed := sim.SeedFor(cfg.Seed, "T9/"+family, int64(n), int64(m), int64(k))
		c := workload.Config{Jobs: n, Machines: m, Seed: seed}
		in := workload.MixedForest(c, 3)
		if family == "layered-dag" {
			in = workload.Layered(c, 3, 0.25)
		}
		sol, _ := solve.Get("forest")
		res, err := sol.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		mean := estimate(in, res.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		if mean < 0 || res.LowerBound <= 0 {
			return cell{}
		}
		return cell{ratio: mean / res.LowerBound, blocks: res.Blocks, method: res.Decomp, ok: true}
	})
	for fi, family := range families {
		for s, nm := range sizes {
			var ratios []float64
			blocks := 0
			method := ""
			for _, c := range cells[fi*len(sizes)+s] {
				if !c.ok {
					continue
				}
				ratios = append(ratios, c.ratio)
				blocks, method = c.blocks, c.method
			}
			if len(ratios) == 0 {
				continue
			}
			mr := stats.Mean(ratios)
			ln := stats.Log2(float64(nm[0]) + 1)
			shape := boundShapeChains(nm[0], nm[1]) * ln
			t.Rows = append(t.Rows, []string{family, d(nm[0]), d(nm[1]), method, d(blocks), f2(mr), f2(mr / shape)})
		}
	}
	t.Notes = "layered-dag rows exercise the level-decomposition fallback, which is outside the paper's guarantee (expect larger normalized ratios there)."
	return t
}
