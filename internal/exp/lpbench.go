package exp

import (
	"time"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sim"
	"suu/internal/workload"
)

// LPBench is one row of the LP-layer benchmark: formulation build +
// simplex solve for one (family, size), sparse revised simplex vs the
// dense tableau oracle. Dense is skipped (0) above denseCellBudget,
// where the tableau would dominate the whole suite's runtime.
type LPBench struct {
	// LP names the relaxation ("LP1" for chains, "LP2" for
	// independent).
	LP       string `json:"lp"`
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	// Rows/Cols/Nnz are the working LP's dimensions on the sparse path
	// (lazily generated window rows included only when they bound the
	// optimum — compare against the dense formulation's full row count
	// in DenseRows).
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	Nnz       int     `json:"nnz"`
	DenseRows int     `json:"dense_rows"`
	Pivots    int     `json:"pivots"`
	SparseMS  float64 `json:"sparse_ms"`
	DenseMS   float64 `json:"dense_ms,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	TStar     float64 `json:"t_star"`
	Error     string  `json:"error,omitempty"`
}

// denseCellBudget caps rows×cols of the dense tableau cells the LP
// benchmark is willing to pay for; beyond it only the sparse path
// runs (that is the point of the sparse solver).
const denseCellBudget = 1 << 22

type lpBenchCase struct {
	lp       string
	family   string
	jobs     int
	machines int
	chains   int
}

func lpBenchCases(quick bool) []lpBenchCase {
	if quick {
		return []lpBenchCase{
			{"LP1", "chains", 24, 6, 4},
			{"LP1", "chains", 48, 8, 4},
			{"LP1", "chains", 128, 8, 8},
			{"LP2", "independent", 64, 16, 0},
			{"LP2", "independent", 256, 16, 0},
		}
	}
	return []lpBenchCase{
		{"LP1", "chains", 24, 6, 4},
		{"LP1", "chains", 48, 8, 4},
		{"LP1", "chains", 96, 12, 8},
		{"LP1", "chains", 256, 8, 16},
		{"LP2", "independent", 64, 16, 0},
		{"LP2", "independent", 128, 16, 0},
		{"LP2", "independent", 512, 16, 0},
	}
}

// LPBenchmarks benchmarks the LP layer in isolation: formulation
// build + solve per family/size (best of three), so LP regressions
// are visible without timing full solver builds.
func LPBenchmarks(cfg Config) []LPBench {
	var out []LPBench
	for _, c := range lpBenchCases(cfg.Quick) {
		seed := sim.SeedFor(cfg.Seed, "lp-bench", int64(c.jobs), int64(c.machines))
		var in *model.Instance
		var chains [][]int
		var jobs []int
		if c.lp == "LP1" {
			in = workload.Chains(workload.Config{Jobs: c.jobs, Machines: c.machines, Seed: seed}, c.chains)
			var err error
			if chains, err = in.Prec.Chains(); err != nil {
				out = append(out, LPBench{LP: c.lp, Family: c.family, Jobs: c.jobs, Machines: c.machines, Error: err.Error()})
				continue
			}
		} else {
			in = workload.Independent(workload.Config{Jobs: c.jobs, Machines: c.machines, Seed: seed})
			jobs = make([]int, in.N)
			for j := range jobs {
				jobs[j] = j
			}
		}
		solve := func(dense bool) (*core.FracSolution, float64, error) {
			best := -1.0
			var fs *core.FracSolution
			for try := 0; try < 3; try++ {
				start := time.Now()
				var err error
				if c.lp == "LP1" {
					fs, err = core.SolveLP1Bench(in, chains, 0.5, dense)
				} else {
					fs, err = core.SolveLP2Bench(in, jobs, 0.5, dense)
				}
				elapsed := float64(time.Since(start).Nanoseconds()) / 1e6
				if err != nil {
					return nil, 0, err
				}
				if best < 0 || elapsed < best {
					best = elapsed
				}
			}
			return fs, best, nil
		}
		fs, sparseMS, err := solve(false)
		if err != nil {
			out = append(out, LPBench{LP: c.lp, Family: c.family, Jobs: c.jobs, Machines: c.machines, Error: err.Error()})
			continue
		}
		// Dense row count: the full formulation (all window rows for
		// LP1 plus the synthesized d≥1 bound rows), independent of what
		// the lazy working set needed.
		denseRows := c.jobs + c.machines
		if c.lp == "LP1" {
			pairs := 0
			for i := 0; i < in.M; i++ {
				for j := 0; j < in.N; j++ {
					if in.P[i][j] > 0 {
						pairs++
					}
				}
			}
			denseRows = pairs + c.jobs + c.machines + len(chains) + c.jobs
		}
		row := LPBench{
			LP: c.lp, Family: c.family, Jobs: c.jobs, Machines: c.machines,
			Rows: fs.Rows, Cols: fs.Cols, Nnz: fs.Nnz, DenseRows: denseRows,
			Pivots: fs.Iterations, SparseMS: sparseMS, TStar: fs.T,
		}
		if denseRows*(fs.Cols+denseRows) <= denseCellBudget {
			if _, denseMS, err := solve(true); err == nil {
				row.DenseMS = denseMS
				if sparseMS > 0 {
					row.Speedup = denseMS / sparseMS
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// LPBenchTable renders already-measured LP benchmark rows as a table
// for the suu-bench -lp flag (measure once, render and serialize the
// same numbers).
func LPBenchTable(rows []LPBench) *Table {
	t := &Table{
		ID:         "LP",
		Title:      "LP layer in isolation: sparse revised simplex vs dense tableau",
		PaperBound: "engineering record, not a paper claim",
		Header:     []string{"LP", "family", "n", "m", "work rows", "dense rows", "cols", "nnz", "pivots", "sparse ms", "dense ms", "speedup", "T*"},
	}
	for _, b := range rows {
		if b.Error != "" {
			t.Rows = append(t.Rows, []string{b.LP, b.Family, d(b.Jobs), d(b.Machines), "—", "—", "—", "—", "—", "—", "—", "—", "error: " + b.Error})
			continue
		}
		denseMS, speedup := "skipped", "—"
		if b.DenseMS > 0 {
			denseMS, speedup = f2(b.DenseMS), f2(b.Speedup)+"x"
		}
		t.Rows = append(t.Rows, []string{
			b.LP, b.Family, d(b.Jobs), d(b.Machines), d(b.Rows), d(b.DenseRows), d(b.Cols), d(b.Nnz),
			d(b.Pivots), f2(b.SparseMS), denseMS, speedup, f2(b.TStar),
		})
	}
	t.Notes = "work rows = the lazy working set's final row count (window rows generated only as they bind); " +
		"dense rows = the full formulation the tableau oracle solves. Dense cells above the size budget are skipped."
	return t
}
