package exp

import (
	"time"

	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sim"
	"suu/internal/workload"
)

// ExactSolverBench is one row of the exact_solver section of
// BENCH_sim.json: the layered value iteration's wall-clock and
// state-space shape on one family, with the exhaustive Malewicz-style
// DP timed side by side where that oracle is feasible. The CI
// bench-smoke gate asserts the 12×4 speedup separately; this section
// is the accumulating record of where the exact frontier sits on the
// machine that produced it.
type ExactSolverBench struct {
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	// States, Layers, MaxEligible, Transitions and ClosedForm describe
	// the solved lattice: closed states, nonempty popcount layers, the
	// widest eligible antichain, materialized successor-table entries,
	// and states answered by the ≤2-unfinished closed forms.
	States      int   `json:"states"`
	Layers      int   `json:"layers"`
	MaxEligible int   `json:"max_eligible"`
	Transitions int64 `json:"transitions"`
	ClosedForm  int   `json:"closed_form_states"`
	// ExactValue is the optimal expected makespan the run certified.
	ExactValue float64 `json:"exact_value"`
	// BuildMS is the value iteration's wall-clock (best of three);
	// StatesPerSec normalizes it by lattice size.
	BuildMS      float64 `json:"build_ms"`
	StatesPerSec float64 `json:"states_per_sec"`
	// OracleMS times the exhaustive DP on the same instance (single
	// run — it is the slow side by construction); SpeedupVsOracle =
	// OracleMS/BuildMS. Zero when the oracle was skipped.
	OracleMS        float64 `json:"oracle_ms,omitempty"`
	SpeedupVsOracle float64 `json:"speedup_vs_oracle,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// exactSolverCases are the families the exact_solver section records:
// the old DP's comfort zone (8×3), the value iteration's showcase
// (12×4, 4096 states — the CI gate family), and two structured n≈20
// instances whose down-set lattices the precedence collapses to a few
// thousand states. The oracle runs where its k^m·2^k scan finishes in
// seconds; on 12×4 that is minutes, so the full suite times it and
// quick mode records the value iteration alone.
func exactSolverCases(cfg Config) []struct {
	family string
	in     *model.Instance
	oracle bool
} {
	seed := sim.SeedFor(cfg.Seed, "bench-exact")
	return []struct {
		family string
		in     *model.Instance
		oracle bool
	}{
		{"independent-8x3", workload.Independent(workload.Config{Jobs: 8, Machines: 3, Seed: seed}), true},
		{"independent-12x4", workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: seed}), !cfg.Quick},
		{"chains-20x4", workload.Chains(workload.Config{Jobs: 20, Machines: 4, Seed: seed}, 5), false},
		{"outforest-17x4", workload.OutTree(workload.Config{Jobs: 17, Machines: 4, Seed: seed}), false},
	}
}

// ExactSolverBenchmarks measures the parallel value iteration per
// family (best of three runs) and, where marked, the exhaustive DP
// oracle on the same instance.
func ExactSolverBenchmarks(cfg Config) []ExactSolverBench {
	var out []ExactSolverBench
	for _, bc := range exactSolverCases(cfg) {
		row := ExactSolverBench{Family: bc.family, Jobs: bc.in.N, Machines: bc.in.M}
		best := -1.0
		var st *opt.Stats
		var value float64
		for try := 0; try < 3; try++ {
			start := time.Now()
			_, v, s, err := opt.OptimalRegimenParallel(bc.in, 0)
			elapsed := float64(time.Since(start).Nanoseconds()) / 1e6
			if err != nil {
				row.Error = err.Error()
				break
			}
			value, st = v, s
			if best < 0 || elapsed < best {
				best = elapsed
			}
		}
		if row.Error != "" {
			out = append(out, row)
			continue
		}
		row.States, row.Layers, row.MaxEligible = st.States, st.Layers, st.MaxEligible
		row.Transitions, row.ClosedForm = st.Transitions, st.ClosedForm
		row.ExactValue = value
		row.BuildMS = best
		if best > 0 {
			row.StatesPerSec = float64(st.States) / (best / 1000)
		}
		if bc.oracle {
			start := time.Now()
			_, ov, err := opt.OptimalRegimenExhaustive(bc.in)
			if err == nil {
				row.OracleMS = float64(time.Since(start).Nanoseconds()) / 1e6
				if row.BuildMS > 0 {
					row.SpeedupVsOracle = row.OracleMS / row.BuildMS
				}
				if diff := value - ov; diff > 1e-9 || diff < -1e-9 {
					row.Error = "value iteration and exhaustive DP disagree"
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// ExactSolverTable renders the exact_solver rows for suu-bench -exact.
func ExactSolverTable(rows []ExactSolverBench) *Table {
	t := &Table{
		ID:         "EXACT",
		Title:      "Exact solver: layered value iteration vs exhaustive DP",
		PaperBound: "engineering record, not a paper claim (T_OPT itself is Malewicz's recurrence)",
		Header:     []string{"family", "n", "m", "states", "layers", "max elig", "transitions", "closed-form", "T_OPT", "VI ms", "states/s", "oracle ms", "speedup"},
	}
	for _, b := range rows {
		if b.Error != "" {
			t.Rows = append(t.Rows, []string{b.Family, d(b.Jobs), d(b.Machines), "—", "—", "—", "—", "—", "—", "—", "—", "—", "error: " + b.Error})
			continue
		}
		oracleMS, speedup := "skipped", "—"
		if b.OracleMS > 0 {
			oracleMS, speedup = f2(b.OracleMS), f2(b.SpeedupVsOracle)+"x"
		}
		t.Rows = append(t.Rows, []string{
			b.Family, d(b.Jobs), d(b.Machines), d(b.States), d(b.Layers), d(b.MaxEligible),
			d(int(b.Transitions)), d(b.ClosedForm), f2(b.ExactValue), f2(b.BuildMS),
			f2(b.StatesPerSec), oracleMS, speedup,
		})
	}
	t.Notes = "The oracle column times the exhaustive k^m-assignment DP on the same instance; 'skipped' marks families beyond its reach (or quick mode on 12×4, where it takes minutes). " +
		"closed-form counts states answered by the ≤2-unfinished geometric/inclusion-exclusion formulas instead of value iteration."
	return t
}
