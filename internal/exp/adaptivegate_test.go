package exp

import (
	"os"
	"runtime"
	"testing"
	"time"

	"suu/internal/core"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/workload"
)

// TestCompiledAdaptiveSpeedupSmoke is the CI bench-smoke assertion for
// the compiled adaptive engine: estimating the MSM greedy on the
// adaptive_engine reference instance through the memoized transition
// table must beat the generic step engine by ≥3× (best of three
// timed runs each, compile cost included). It only runs when
// BENCH_SMOKE=1 — wall-clock ratios are meaningless under the race
// detector or a loaded laptop — and skips on single-core runners,
// whose scheduling noise swamps millisecond estimates. The engines
// are bit-identical (pinned by the sim parity tests), so this gate is
// purely about throughput.
func TestCompiledAdaptiveSpeedupSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the compiled-adaptive speedup gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("speedup gate needs ≥2 cores for stable timing")
	}
	// This gate measures the scalar table walk; at 3000 reps auto
	// dispatch would hand the run to the lane engine (which has its own
	// gate in bitparallelgate_test.go).
	defer sim.SetBitParallel(sim.BitParallelOff)()
	seed := sim.SeedFor(1, "bench-adaptive")
	in := workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: seed})
	pol := &core.AdaptivePolicy{In: in}
	generic := sched.PolicyFunc(pol.Assign) // strips the Memoizable marker

	const reps = 3000
	var states int
	bestOf3 := func(p sched.Policy, wantEngine string) float64 {
		best := -1.0
		for try := 0; try < 3; try++ {
			start := time.Now()
			_, _, eng := sim.EstimateInfo(in, p, reps, 5_000_000, 77)
			if eng.Engine != wantEngine {
				t.Fatalf("estimation ran on %q, want %q", eng.Engine, wantEngine)
			}
			states = max(states, eng.States)
			if e := time.Since(start).Seconds() * 1000; best < 0 || e < best {
				best = e
			}
		}
		return best
	}
	compiled := bestOf3(pol, sim.EngineCompiledAdaptive)
	slow := bestOf3(generic, sim.EngineGeneric)
	ratio := slow / compiled
	t.Logf("adaptive 12x4 estimation (%d reps, %d states): compiled %.2fms generic %.2fms ratio %.2fx",
		reps, states, compiled, slow, ratio)
	if ratio < 3 {
		t.Errorf("compiled-adaptive estimation only %.2fx faster than the generic step engine (want ≥3x): compiled %.2fms generic %.2fms",
			ratio, compiled, slow)
	}
}
