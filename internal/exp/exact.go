package exp

import (
	"suu/internal/core"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T11 measures the exact price of obliviousness on small instances:
// expected makespans computed by full state-distribution propagation
// (no Monte Carlo noise) for the optimal regimen, the adaptive greedy
// (frozen as a regimen) and both oblivious constructions.
func T11(cfg Config) *Table {
	t := &Table{
		ID:         "T11",
		Title:      "Exact price of obliviousness (state-distribution evaluation, no sampling)",
		PaperBound: "adaptive within O(log n) (Thm 3.3); oblivious within O(log² n)/O(log n·log min) (Thms 3.6/4.5)",
		Header:     []string{"n", "m", "exact OPT", "adaptive", "comb-obl", "lp-obl (σ=1)", "obl/OPT"},
	}
	sizes := [][2]int{{3, 2}, {4, 2}, {5, 3}, {6, 3}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	trials := cfg.trials()
	type cell struct {
		opt, ada, comb, lp float64
		ok                 bool
	}
	cells := runSweep(cfg, len(sizes), trials, func(s, k int) cell {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "T11", int64(n), int64(m), int64(k))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		_, topt, err := opt.OptimalRegimen(in)
		if err != nil {
			return cell{}
		}
		reg, err := opt.GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
			return core.MSMAlg(in, elig)
		})
		if err != nil {
			return cell{}
		}
		ada, err := opt.ExactRegimen(in, reg)
		if err != nil {
			return cell{}
		}
		combSolver, _ := solve.Get("comb-oblivious")
		comb, err := combSolver.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		combE, res1, err := opt.ExactOblivious(in, comb.Policy.(*sched.Oblivious), 100000, 1e-10)
		if err != nil || res1 > 1e-6 {
			return cell{}
		}
		par := paramsWithSeed(sim.SeedFor(seed, "build"))
		par.ReplicationFactor = 1 // keep the exact horizon tractable
		lpSolver, _ := solve.Get("lp-oblivious")
		lpres, err := lpSolver.Build(in, par)
		if err != nil {
			return cell{}
		}
		lpE, res2, err := opt.ExactOblivious(in, lpres.Policy.(*sched.Oblivious), 100000, 1e-10)
		if err != nil || res2 > 1e-6 {
			return cell{}
		}
		return cell{opt: topt, ada: ada, comb: combE, lp: lpE, ok: true}
	})
	for s, nm := range sizes {
		var optV, adaV, combV, lpV []float64
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			optV = append(optV, c.opt)
			adaV = append(adaV, c.ada)
			combV = append(combV, c.comb)
			lpV = append(lpV, c.lp)
		}
		if len(optV) == 0 {
			continue
		}
		o, a, c, l := stats.Mean(optV), stats.Mean(adaV), stats.Mean(combV), stats.Mean(lpV)
		best := c
		if l < best {
			best = l
		}
		t.Rows = append(t.Rows, []string{d(nm[0]), d(nm[1]), f2(o), f2(a), f2(c), f2(l), f2(best / o)})
	}
	t.Notes = "Exact expectations via the unfinished-set Markov chain; the lp-obl column uses σ=1 so the horizon stays tractable (A2 shows σ scales it linearly). obl/OPT is the better oblivious construction's exact ratio — the measurable price of scheduling without feedback."
	return t
}
