package exp

import (
	"math/rand"

	"suu/internal/core"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T11 measures the exact price of obliviousness on small instances:
// expected makespans computed by full state-distribution propagation
// (no Monte Carlo noise) for the optimal regimen, the adaptive greedy
// (frozen as a regimen) and both oblivious constructions.
func T11(cfg Config) *Table {
	t := &Table{
		ID:         "T11",
		Title:      "Exact price of obliviousness (state-distribution evaluation, no sampling)",
		PaperBound: "adaptive within O(log n) (Thm 3.3); oblivious within O(log² n)/O(log n·log min) (Thms 3.6/4.5)",
		Header:     []string{"n", "m", "exact OPT", "adaptive", "comb-obl", "lp-obl (σ=1)", "obl/OPT"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 30))
	sizes := [][2]int{{3, 2}, {4, 2}, {5, 3}, {6, 3}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		var optV, adaV, combV, lpV []float64
		for k := 0; k < cfg.trials(); k++ {
			in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			_, topt, err := opt.OptimalRegimen(in)
			if err != nil {
				continue
			}
			reg, err := opt.GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
				return core.MSMAlg(in, elig)
			})
			if err != nil {
				continue
			}
			ada, err := opt.ExactRegimen(in, reg)
			if err != nil {
				continue
			}
			comb, err := core.SUUIOblivious(in, paramsWithSeed(cfg.Seed))
			if err != nil {
				continue
			}
			combE, res1, err := opt.ExactOblivious(in, comb.Schedule, 100000, 1e-10)
			if err != nil || res1 > 1e-6 {
				continue
			}
			par := paramsWithSeed(cfg.Seed)
			par.ReplicationFactor = 1 // keep the exact horizon tractable
			lpres, err := core.SUUIndependentLP(in, par)
			if err != nil {
				continue
			}
			lpE, res2, err := opt.ExactOblivious(in, lpres.Schedule, 100000, 1e-10)
			if err != nil || res2 > 1e-6 {
				continue
			}
			optV = append(optV, topt)
			adaV = append(adaV, ada)
			combV = append(combV, combE)
			lpV = append(lpV, lpE)
		}
		if len(optV) == 0 {
			continue
		}
		o, a, c, l := stats.Mean(optV), stats.Mean(adaV), stats.Mean(combV), stats.Mean(lpV)
		best := c
		if l < best {
			best = l
		}
		t.Rows = append(t.Rows, []string{d(n), d(m), f2(o), f2(a), f2(c), f2(l), f2(best / o)})
	}
	t.Notes = "Exact expectations via the unfinished-set Markov chain; the lp-obl column uses σ=1 so the horizon stays tractable (A2 shows σ scales it linearly). obl/OPT is the better oblivious construction's exact ratio — the measurable price of scheduling without feedback."
	return t
}
