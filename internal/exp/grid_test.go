package exp

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"suu/internal/sim"
	"suu/internal/workload"
)

func TestRunCellsPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		cfg := Config{Workers: workers}
		got := runCells(cfg, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
	if out := runCells(Config{}, 0, func(i int) int { return i }); out != nil {
		t.Error("zero cells should return nil")
	}
}

func TestScenarioVocabularyGeneratesValidInstances(t *testing.T) {
	for _, sc := range Scenarios {
		in := sc.Gen(workload.Config{Jobs: 12, Machines: 4, Seed: 5}, 0)
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if in.N != 12 || in.M != 4 {
			t.Errorf("%s: got %dx%d, want 12x4", sc.Name, in.N, in.M)
		}
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario resolved")
	}
	for _, name := range []string{"power-law", "correlated", "layered-width"} {
		if _, ok := ScenarioByName(name); !ok {
			t.Errorf("new family %s missing from vocabulary", name)
		}
	}
}

// stripGridTimings clears the fields that measure wall-clock time and
// therefore legitimately differ between runs.
func stripGridTimings(rs []GridResult) []GridResult {
	out := append([]GridResult(nil), rs...)
	for i := range out {
		out[i].BuildTime = 0
	}
	return out
}

func TestGridBitIdenticalAcrossWorkers(t *testing.T) {
	spec := GridSpec{
		Points: []GridPoint{
			{Scenario: "independent", Jobs: 8, Machines: 3},
			{Scenario: "chains", Jobs: 8, Machines: 3, Arg: 2},
			{Scenario: "power-law", Jobs: 6, Machines: 3},
		},
		Solvers: []string{"lp-oblivious", "forest", "adaptive", "greedy-maxp", "random"},
		Trials:  2,
	}
	base := stripGridTimings(RunGrid(Config{Quick: true, Seed: 3, Workers: 1}, spec))
	for _, workers := range []int{2, 8} {
		got := stripGridTimings(RunGrid(Config{Quick: true, Seed: 3, Workers: workers}, spec))
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("grid results differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// maskTimingColumns blanks table columns whose headers mark wall-clock
// measurements (ms, µs, reps/s, ns/step) — the only values allowed to
// differ between runs of the same experiment.
func maskTimingColumns(tb *Table) {
	timing := func(h string) bool {
		for _, frag := range []string{"ms", "µs", "reps/s", "ns/step"} {
			if strings.Contains(h, frag) {
				return true
			}
		}
		return false
	}
	for c, h := range tb.Header {
		if !timing(h) {
			continue
		}
		for _, row := range tb.Rows {
			row[c] = "masked"
		}
	}
}

// TestTablesBitIdenticalAcrossWorkers locks the satellite requirement:
// every exp.All table is identical whether the harness runs
// sequentially or on a full worker pool (and hence at any GOMAXPROCS).
// Only wall-clock columns (ms, µs, reps/s, ns/step) are masked — they
// measure the run, not the experiment.
func TestTablesBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte Carlo determinism sweep in -short mode")
	}
	seq := All(Config{Quick: true, Seed: 7, Workers: 1})
	par := All(Config{Quick: true, Seed: 7, Workers: 8})
	if len(seq) != len(par) || len(seq) != len(Drivers) {
		t.Fatalf("table counts differ: %d vs %d (want %d)", len(seq), len(par), len(Drivers))
	}
	for i := range seq {
		maskTimingColumns(seq[i])
		maskTimingColumns(par[i])
		if seq[i].Markdown() != par[i].Markdown() {
			t.Errorf("%s: tables differ between Workers=1 and Workers=8:\n--- sequential\n%s\n--- parallel\n%s",
				seq[i].ID, seq[i].Markdown(), par[i].Markdown())
		}
	}
}

// requireSpeedup times seq vs par and fails the test when the ratio
// stays under want. Wall-clock comparisons on shared CI runners are
// noisy, so a miss is retried (three attempts total) before it counts
// — a genuine loss of parallelism fails every attempt.
func requireSpeedup(t *testing.T, label string, want float64, seq, par func() time.Duration) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		s, p := seq(), par()
		speedup := float64(s) / float64(p)
		t.Logf("%s (attempt %d): sequential %v, parallel %v, speedup %.2fx on %d CPUs",
			label, attempt+1, s, p, speedup, runtime.GOMAXPROCS(0))
		if speedup >= want {
			return
		}
		if attempt == 2 {
			t.Errorf("%s speedup %.2fx < %.1fx on %d CPUs", label, speedup, want, runtime.GOMAXPROCS(0))
			return
		}
	}
}

// TestGridSpeedup demonstrates the harness's point: on a multi-core
// runner the parallel grid beats the sequential one by ≥ 2× (we
// assert conservative floors to stay robust against noisy CI
// neighbours; BENCH_sim.json records the real number). It uses the
// same reference grid as the BENCH_sim.json grid_harness section.
func TestGridSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock comparison in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("only %d CPUs; speedup needs a multi-core runner", runtime.GOMAXPROCS(0))
	}
	spec := GridBenchSpec(false)
	timeGrid := func(workers int) func() time.Duration {
		return func() time.Duration {
			start := time.Now()
			RunGrid(Config{Quick: true, Seed: 9, Workers: workers}, spec)
			return time.Since(start)
		}
	}
	timeGrid(0)() // warm caches before measuring
	requireSpeedup(t, "RunGrid", 1.5, timeGrid(1), timeGrid(0))
	// The acceptance bar is end to end: exp.All itself must beat the
	// sequential harness. Its ceiling is lower (T12 and A4 stay
	// sequential by design), hence the softer floor.
	timeAll := func(workers int) func() time.Duration {
		return func() time.Duration {
			start := time.Now()
			All(Config{Quick: true, Seed: 9, Workers: workers})
			return time.Since(start)
		}
	}
	requireSpeedup(t, "exp.All", 1.3, timeAll(1), timeAll(0))
}

func TestEvalCellReportsUnknownNames(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, Workers: 1}
	if r := EvalCell(cfg, GridCell{Point: GridPoint{Scenario: "nope", Jobs: 4, Machines: 2}, Solver: "forest"}); r.Err == nil {
		t.Error("unknown scenario not reported")
	}
	if r := EvalCell(cfg, GridCell{Point: GridPoint{Scenario: "independent", Jobs: 4, Machines: 2}, Solver: "nope"}); r.Err == nil {
		t.Error("unknown solver not reported")
	}
	r := EvalCell(cfg, GridCell{Point: GridPoint{Scenario: "independent", Jobs: 4, Machines: 2}, Solver: "lp-oblivious"})
	if r.Err != nil || r.Mean <= 0 || r.Class != "independent" || r.Kind == "" {
		t.Errorf("healthy cell misreported: %+v", r)
	}
}

// TestGridComparisonsArePaired pins the seed-derivation contract that
// makes "vs best" columns meaningful: every solver at one (point,
// trial) coordinate must be evaluated on the same generated instance
// with the same simulation streams.
func TestGridComparisonsArePaired(t *testing.T) {
	cfg := Config{Quick: true, Seed: 11, Workers: 1}
	point := GridPoint{Scenario: "power-law", Jobs: 8, Machines: 3}
	r := EvalCell(cfg, GridCell{Point: point, Solver: "adaptive"})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	// Reproduce the cell by hand from the (point, trial) seed alone.
	sc, _ := ScenarioByName(point.Scenario)
	seed := pointSeed(cfg.Seed, point, 0)
	in := sc.Gen(workload.Config{Jobs: point.Jobs, Machines: point.Machines, Seed: seed}, point.Arg)
	mean := estimate(in, registryPolicy("adaptive", in, sim.SeedFor(seed, "adaptive")), cfg.reps(), sim.SeedFor(seed, "sim"))
	if mean != r.Mean {
		t.Errorf("EvalCell mean %v != hand-derived %v: instance/sim seeds must depend only on (point, trial)", r.Mean, mean)
	}
	// A different solver on the same coordinate sees the same class
	// (same instance) rather than a per-solver regeneration.
	r2 := EvalCell(cfg, GridCell{Point: point, Solver: "greedy-maxp"})
	if r2.Err != nil || r2.Class != r.Class {
		t.Errorf("paired cell diverged: %+v vs %+v", r, r2)
	}
}

// TestEvalCellHonorsOverridesAndRecordsEngine covers the two grid
// extensions: per-spec parameter overrides reach the construction (σ=1
// vs σ=4 quadruples the replicated prefix), and every evaluated cell
// records which simulation engine ran it.
func TestEvalCellHonorsOverridesAndRecordsEngine(t *testing.T) {
	cfg := Config{Quick: true, Seed: 11, Workers: 1}
	point := GridPoint{Scenario: "independent", Jobs: 8, Machines: 3}
	sigma1 := EvalCell(cfg, GridCell{Point: point, Solver: "lp-oblivious", Overrides: &ParamOverrides{ReplicationFactor: 1}})
	sigma4 := EvalCell(cfg, GridCell{Point: point, Solver: "lp-oblivious", Overrides: &ParamOverrides{ReplicationFactor: 4}})
	if sigma1.Err != nil || sigma4.Err != nil {
		t.Fatalf("cells errored: %v / %v", sigma1.Err, sigma4.Err)
	}
	if sigma4.PrefixLen != 4*sigma1.PrefixLen || sigma1.PrefixLen == 0 {
		t.Errorf("override ignored: σ=1 prefix %d, σ=4 prefix %d", sigma1.PrefixLen, sigma4.PrefixLen)
	}
	if sigma1.Engine != sim.EngineCompiled {
		t.Errorf("oblivious cell engine %q, want %q", sigma1.Engine, sim.EngineCompiled)
	}
	adaptive := EvalCell(cfg, GridCell{Point: point, Solver: "adaptive"})
	if adaptive.Engine != sim.EngineCompiledAdaptive {
		t.Errorf("adaptive cell engine %q, want %q (8 jobs fit the compile budget)", adaptive.Engine, sim.EngineCompiledAdaptive)
	}
	learning := EvalCell(cfg, GridCell{Point: point, Solver: "learning"})
	if learning.Engine != sim.EngineGeneric {
		t.Errorf("learning cell engine %q, want %q", learning.Engine, sim.EngineGeneric)
	}
	if r := EvalCell(cfg, GridCell{Point: point, Solver: "forest", Eval: "nope"}); r.Err == nil {
		t.Error("unknown cell evaluator not reported")
	}
	// Full-mode rep counts cross the bit-parallel auto-dispatch
	// threshold, and the lane engine's name must surface in the row.
	full := Config{Quick: false, Seed: 11, Workers: 1}
	if full.reps() < sim.BitParallelAutoMinReps {
		t.Fatalf("full-mode reps %d below lane threshold %d; test premise broken", full.reps(), sim.BitParallelAutoMinReps)
	}
	laneCell := EvalCell(full, GridCell{Point: point, Solver: "lp-oblivious"})
	if laneCell.Err != nil {
		t.Fatal(laneCell.Err)
	}
	if laneCell.Engine != sim.EngineLane {
		t.Errorf("full-mode oblivious cell engine %q, want %q (auto lane dispatch)", laneCell.Engine, sim.EngineLane)
	}
}

func TestSolverIDsForClassFiltering(t *testing.T) {
	ind := solverIDsFor("independent", true)
	if fmt.Sprint(ind) != fmt.Sprint([]string{"lp-oblivious", "chains", "forest", "comb-oblivious", "adaptive", "learning", "greedy-maxp", "round-robin", "all-on-one", "random"}) {
		t.Errorf("independent solver set: %v", ind)
	}
	gen := solverIDsFor("general", false)
	for _, id := range gen {
		if id == "lp-oblivious" || id == "comb-oblivious" || id == "chains" {
			t.Errorf("class-restricted solver %s leaked into general set", id)
		}
		if id == "greedy-maxp" || id == "random" {
			t.Errorf("baseline %s present despite includeBaselines=false", id)
		}
	}
}
