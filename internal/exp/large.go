package exp

// T14 exercises the grid vocabulary at instance sizes the dense
// tableau could not touch: 512 independent jobs through (LP2) and
// 256-job chains/forests through per-block (LP1) solves. These cells
// exist because the sparse revised simplex keeps the working LP at
// the size of its binding rows; the table records build wall-clock
// and pivot counts so the large-instance path has a perf trail in
// every run, not just in BENCH_sim.json.
func T14(cfg Config) *Table {
	g, _ := GridDriverByID("T14")
	return runGridDriver(cfg, g)
}

// t14Plan declares T14's three (point, solver) pairings as
// single-cell specs — the smallest real sharding surface, which is
// exactly why the shard tests split it 3 and 8 ways (8 exercises
// empty shards).
func t14Plan(cfg Config) GridPlan {
	points := []struct {
		p      GridPoint
		solver string
	}{
		{GridPoint{Scenario: "independent", Jobs: 512, Machines: 16}, "lp-oblivious"},
		{GridPoint{Scenario: "chains", Jobs: 256, Machines: 8, Arg: 16}, "chains"},
		{GridPoint{Scenario: "out-tree", Jobs: 256, Machines: 8}, "forest"},
	}
	if cfg.Quick {
		points[0].p.Jobs = 256
		points[1].p.Jobs, points[1].p.Arg = 128, 8
		points[2].p.Jobs = 128
	}
	plan := GridPlan{ID: "T14"}
	for _, pt := range points {
		plan.Specs = append(plan.Specs, GridSpec{
			Points: []GridPoint{pt.p}, Solvers: []string{pt.solver}, Trials: 1,
		})
	}
	return plan
}

// renderT14 builds the table straight from the results — every column
// is carried by the cell itself.
func renderT14(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "T14",
		Title:      "Large instances via sparse revised simplex",
		PaperBound: "polynomial time (the paper's claim), demonstrated at 256–512 jobs",
		Header:     []string{"scenario", "n", "m", "solver", "build ms", "LP pivots", "E[makespan]", "lower bound"},
	}
	for _, r := range results {
		p := r.Cell.Point
		if r.Err != nil {
			t.Rows = append(t.Rows, []string{p.Scenario, d(p.Jobs), d(p.Machines), r.Cell.Solver, "—", "—", "error: " + r.Err.Error(), "—"})
			continue
		}
		mean := "step cap hit"
		if r.Mean >= 0 {
			mean = f2(r.Mean)
		}
		t.Rows = append(t.Rows, []string{
			p.Scenario, d(p.Jobs), d(p.Machines), r.Cell.Solver,
			f2(float64(r.BuildTime.Microseconds()) / 1000), d(r.LPPivots), mean, f2(r.LowerBound),
		})
	}
	t.Notes = "Build wall-clock includes the full construction (LP solve, rounding, delays, replication). " +
		"Before the sparse solver these cells were intractable: the dense tableau at n=256 chains carries ~2300 rows " +
		"against the lazy working set's few hundred."
	return t
}
