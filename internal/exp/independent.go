package exp

import (
	"math"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T1 validates Theorem 3.2: MSM-ALG achieves at least 1/3 of the
// brute-force MaxSumMass optimum.
func T1(cfg Config) *Table {
	t := &Table{
		ID:         "T1",
		Title:      "MSM-ALG approximation ratio vs. brute-force optimum",
		PaperBound: "Theorem 3.2: ratio ≥ 1/3",
		Header:     []string{"n", "m", "trials", "min ratio", "mean ratio"},
	}
	sizes := [][2]int{{3, 3}, {4, 4}, {5, 3}, {6, 2}, {4, 6}}
	trials := 10 * cfg.trials()
	ratios := runSweep(cfg, len(sizes), trials, func(s, k int) float64 {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "T1", int64(n), int64(m), int64(k))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		active := make([]bool, n)
		for j := range active {
			active[j] = true
		}
		got := core.SumMass(in, core.MSMAlg(in, active))
		_, best := core.BruteForceMSM(in, active)
		return got / best
	})
	for s, nm := range sizes {
		minR, sumR := 1.0, 0.0
		for _, r := range ratios[s] {
			if r < minR {
				minR = r
			}
			sumR += r
		}
		t.Rows = append(t.Rows, []string{d(nm[0]), d(nm[1]), d(trials), f3(minR), f3(sumR / float64(trials))})
	}
	t.Notes = "Every observed ratio must be ≥ 1/3 ≈ 0.333; in practice the greedy sits far above the bound."
	return t
}

// T2 validates Theorem 2.2: under the optimal regimen (expected
// makespan T_OPT), every job accumulates mass ≥ 1/4 within 2·T_OPT
// steps with probability ≥ 1/4.
func T2(cfg Config) *Table {
	t := &Table{
		ID:         "T2",
		Title:      "Mass accumulation within 2·T_OPT under the optimal schedule",
		PaperBound: "Theorem 2.2: Pr[mass ≥ 1/4 by step 2T] ≥ 1/4 for every job",
		Header:     []string{"n", "m", "T_OPT", "min_j Pr[mass ≥ 1/4]", "bound"},
	}
	sizes := [][2]int{{3, 2}, {4, 2}, {5, 3}, {6, 2}}
	type row struct {
		topt, minF float64
		ok         bool
	}
	rows := runCells(cfg, len(sizes), func(i int) row {
		n, m := sizes[i][0], sizes[i][1]
		seed := sim.SeedFor(cfg.Seed, "T2", int64(n), int64(m))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		reg, topt, err := optRegimen(in)
		if err != nil {
			return row{}
		}
		horizon := int(math.Ceil(2 * topt))
		fr := sim.MassWithinHorizon(in, reg, horizon, 40*cfg.reps(), 0.25, sim.SeedFor(seed, "sim"))
		minF := 1.0
		for _, f := range fr {
			if f < minF {
				minF = f
			}
		}
		return row{topt, minF, true}
	})
	for i, r := range rows {
		if !r.ok {
			continue
		}
		t.Rows = append(t.Rows, []string{d(sizes[i][0]), d(sizes[i][1]), f2(r.topt), f3(r.minF), "0.250"})
	}
	t.Notes = "The theorem holds for any schedule; we instantiate it with the exactly-optimal regimen."
	return t
}

// T3 validates Theorem 3.3: the adaptive greedy SUU-I-ALG stays within
// an O(log n) factor of optimal as n grows.
func T3(cfg Config) *Table {
	t := &Table{
		ID:         "T3",
		Title:      "Adaptive SUU-I-ALG ratio vs. instance size (independent jobs)",
		PaperBound: "Theorem 3.3: E[makespan] ≤ O(log n)·T_OPT",
		Header:     []string{"n", "m", "baseline", "T_OPT", "mean ratio", "ratio/log₂n"},
	}
	// n=12, m=4 is the value iteration's showcase row: its 2^12-state
	// lattice is far beyond the exhaustive DP but well inside the
	// layered solver, so both the greedy's expectation and T_OPT are
	// exact and the reported ratio is the true optimality gap, not a
	// gap-to-lower-bound.
	sizes := [][2]int{{4, 3}, {6, 3}, {8, 3}, {12, 4}, {16, 6}, {32, 8}, {64, 8}}
	if cfg.Quick {
		sizes = sizes[:5]
	}
	trials := cfg.trials()
	type cell struct {
		ratio float64
		opt   float64
		exact bool
		ok    bool
	}
	cells := runSweep(cfg, len(sizes), trials, func(s, k int) cell {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "T3", int64(n), int64(m), int64(k))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		lb, exact := exactOpt(in)
		if !exact {
			fs, err := core.SolveLP2(in, seqJobs(n), 0.5)
			if err != nil {
				return cell{}
			}
			lb = core.CombinedLowerBound(in, fs.T)
		}
		if lb <= 0 {
			return cell{}
		}
		// The adaptive greedy is stationary (its assignment depends only
		// on the unfinished set), so evaluate it exactly wherever T_OPT
		// itself is exact; otherwise simulate.
		mean := -1.0
		if exact {
			if reg, err := opt.GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
				return core.MSMAlg(in, elig)
			}); err == nil {
				if v, err := opt.ExactRegimen(in, reg); err == nil && !math.IsInf(v, 1) {
					mean = v
				}
			}
		}
		if mean < 0 {
			mean = estimate(in, registryPolicy("adaptive", in, seed), cfg.reps(), sim.SeedFor(seed, "sim"))
		}
		if mean < 0 {
			return cell{}
		}
		return cell{ratio: mean / lb, opt: lb, exact: exact, ok: true}
	})
	for s, nm := range sizes {
		var ratios, opts []float64
		exactAll := true
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			ratios = append(ratios, c.ratio)
			opts = append(opts, c.opt)
			exactAll = exactAll && c.exact
		}
		if len(ratios) == 0 {
			continue
		}
		baseline, topt := "combined LB", "—"
		if exactAll {
			baseline, topt = "exact OPT", f2(stats.Mean(opts))
		}
		mr := stats.Mean(ratios)
		t.Rows = append(t.Rows, []string{d(nm[0]), d(nm[1]), baseline, topt, f2(mr), f2(mr / stats.Log2(float64(nm[0])+1))})
	}
	t.Notes = "Rows with an exact-OPT baseline (now including 12×4, via the layered value iteration) report the true optimality gap; against the combined lower bound the ratio still inflates by the LB gap. The normalized column should stay roughly flat if the O(log n) shape holds."
	return t
}

// T4 validates Lemma 3.5 / Theorem 3.6: the combinatorial oblivious
// schedule SUU-I-OBL stays within O(log² n) of optimal.
func T4(cfg Config) *Table {
	t := &Table{
		ID:         "T4",
		Title:      "Combinatorial oblivious SUU-I-OBL ratio vs. instance size",
		PaperBound: "Theorem 3.6: E[makespan] ≤ O(log² n)·T_OPT",
		Header:     []string{"n", "m", "core len", "mean ratio", "ratio/log₂²n"},
	}
	sizes := [][2]int{{4, 3}, {8, 3}, {16, 6}, {32, 8}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	trials := cfg.trials()
	type cell struct {
		ratio   float64
		coreLen int
		ok      bool
	}
	cells := runSweep(cfg, len(sizes), trials, func(s, k int) cell {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "T4", int64(n), int64(m), int64(k))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		comb, _ := solve.Get("comb-oblivious")
		res, err := comb.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		mean := estimate(in, res.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		if mean < 0 {
			return cell{}
		}
		lb := lowerBound(in, n)
		if lb <= 0 {
			return cell{}
		}
		return cell{ratio: mean / lb, coreLen: res.CoreLength, ok: true}
	})
	for s, nm := range sizes {
		var ratios []float64
		coreLen := 0
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			ratios = append(ratios, c.ratio)
			coreLen = c.coreLen
		}
		if len(ratios) == 0 {
			continue
		}
		mr := stats.Mean(ratios)
		l := stats.Log2(float64(nm[0]) + 1)
		t.Rows = append(t.Rows, []string{d(nm[0]), d(nm[1]), d(coreLen), f2(mr), f2(mr / (l * l))})
	}
	return t
}

// T5 validates Theorem 4.5 and compares the LP-based oblivious
// schedule against the combinatorial one.
func T5(cfg Config) *Table {
	t := &Table{
		ID:         "T5",
		Title:      "LP-based oblivious schedule (Thm 4.5) vs. combinatorial (Thm 3.6)",
		PaperBound: "Theorem 4.5: E[makespan] ≤ O(log n · log min(n,m))·T_OPT",
		Header:     []string{"n", "m", "LP T*", "lp-obl ratio", "comb-obl ratio", "lp/comb"},
	}
	sizes := [][2]int{{4, 3}, {8, 4}, {16, 6}, {32, 8}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	trials := cfg.trials()
	type cell struct {
		lpR, combR, tstar float64
		ok                bool
	}
	cells := runSweep(cfg, len(sizes), trials, func(s, k int) cell {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "T5", int64(n), int64(m), int64(k))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		lp, _ := solve.Get("lp-oblivious")
		lres, err := lp.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		comb, _ := solve.Get("comb-oblivious")
		cres, err := comb.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		lb := lowerBound(in, n)
		if lb <= 0 {
			return cell{}
		}
		lpMean := estimate(in, lres.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		combMean := estimate(in, cres.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		if lpMean <= 0 || combMean <= 0 {
			return cell{}
		}
		return cell{lpR: lpMean / lb, combR: combMean / lb, tstar: lres.LPValue, ok: true}
	})
	for s, nm := range sizes {
		var lpR, combR []float64
		tstar := 0.0
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			lpR = append(lpR, c.lpR)
			combR = append(combR, c.combR)
			tstar = c.tstar
		}
		if len(lpR) == 0 || len(combR) == 0 {
			continue
		}
		a, b := stats.Mean(lpR), stats.Mean(combR)
		t.Rows = append(t.Rows, []string{d(nm[0]), d(nm[1]), f2(tstar), f2(a), f2(b), f2(a / b)})
	}
	t.Notes = "The combinatorial schedule cycles its prefix (fast retries); the LP schedule pays the σ-replication up front. The theorems bound both; the comparison reports the practical trade."
	return t
}

// helpers shared by the experiments.

func seqJobs(n int) []int {
	jobs := make([]int, n)
	for j := range jobs {
		jobs[j] = j
	}
	return jobs
}

func paramsWithSeed(seed int64) core.Params {
	p := core.DefaultParams()
	p.Seed = seed
	return p
}

// registryPolicy builds the named registry solver's policy; drivers
// use it for the adaptive and baseline policies whose construction
// cannot fail.
func registryPolicy(id string, in *model.Instance, seed int64) sched.Policy {
	s, ok := solve.Get(id)
	if !ok {
		panic("exp: solver " + id + " not registered")
	}
	res, err := s.Build(in, paramsWithSeed(seed))
	if err != nil {
		panic("exp: " + id + ": " + err.Error())
	}
	return res.Policy
}

// lowerBound returns exact OPT for small instances, else the LP2/16
// bound.
func lowerBound(in *model.Instance, n int) float64 {
	if v, ok := exactOpt(in); ok {
		return v
	}
	fs, err := core.SolveLP2(in, seqJobs(n), 0.5)
	if err != nil {
		return -1
	}
	return core.CombinedLowerBound(in, fs.T)
}

func optRegimen(in *model.Instance) (*sched.Regimen, float64, error) {
	return opt.OptimalRegimen(in)
}
