package exp

import (
	"math"
	"math/rand"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T1 validates Theorem 3.2: MSM-ALG achieves at least 1/3 of the
// brute-force MaxSumMass optimum.
func T1(cfg Config) *Table {
	t := &Table{
		ID:         "T1",
		Title:      "MSM-ALG approximation ratio vs. brute-force optimum",
		PaperBound: "Theorem 3.2: ratio ≥ 1/3",
		Header:     []string{"n", "m", "trials", "min ratio", "mean ratio"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, nm := range [][2]int{{3, 3}, {4, 4}, {5, 3}, {6, 2}, {4, 6}} {
		n, m := nm[0], nm[1]
		minR, sumR := 1.0, 0.0
		trials := 10 * cfg.trials()
		for k := 0; k < trials; k++ {
			in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			active := make([]bool, n)
			for j := range active {
				active[j] = true
			}
			got := core.SumMass(in, core.MSMAlg(in, active))
			_, best := core.BruteForceMSM(in, active)
			r := got / best
			if r < minR {
				minR = r
			}
			sumR += r
		}
		t.Rows = append(t.Rows, []string{d(n), d(m), d(trials), f3(minR), f3(sumR / float64(trials))})
	}
	t.Notes = "Every observed ratio must be ≥ 1/3 ≈ 0.333; in practice the greedy sits far above the bound."
	return t
}

// T2 validates Theorem 2.2: under the optimal regimen (expected
// makespan T_OPT), every job accumulates mass ≥ 1/4 within 2·T_OPT
// steps with probability ≥ 1/4.
func T2(cfg Config) *Table {
	t := &Table{
		ID:         "T2",
		Title:      "Mass accumulation within 2·T_OPT under the optimal schedule",
		PaperBound: "Theorem 2.2: Pr[mass ≥ 1/4 by step 2T] ≥ 1/4 for every job",
		Header:     []string{"n", "m", "T_OPT", "min_j Pr[mass ≥ 1/4]", "bound"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for _, nm := range [][2]int{{3, 2}, {4, 2}, {5, 3}, {6, 2}} {
		n, m := nm[0], nm[1]
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
		reg, topt, err := optRegimen(in)
		if err != nil {
			continue
		}
		horizon := int(math.Ceil(2 * topt))
		fr := sim.MassWithinHorizon(in, reg, horizon, 40*cfg.reps(), 0.25, cfg.Seed)
		minF := 1.0
		for _, f := range fr {
			if f < minF {
				minF = f
			}
		}
		t.Rows = append(t.Rows, []string{d(n), d(m), f2(topt), f3(minF), "0.250"})
	}
	t.Notes = "The theorem holds for any schedule; we instantiate it with the exactly-optimal regimen."
	return t
}

// T3 validates Theorem 3.3: the adaptive greedy SUU-I-ALG stays within
// an O(log n) factor of optimal as n grows.
func T3(cfg Config) *Table {
	t := &Table{
		ID:         "T3",
		Title:      "Adaptive SUU-I-ALG ratio vs. instance size (independent jobs)",
		PaperBound: "Theorem 3.3: E[makespan] ≤ O(log n)·T_OPT",
		Header:     []string{"n", "m", "baseline", "mean ratio", "ratio/log₂n"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	sizes := [][2]int{{4, 3}, {6, 3}, {8, 3}, {16, 6}, {32, 8}, {64, 8}}
	if cfg.Quick {
		sizes = sizes[:4]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		var ratios []float64
		baseline := "combined LB"
		for k := 0; k < cfg.trials(); k++ {
			in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			// The adaptive greedy is stationary (its assignment depends
			// only on the unfinished set), so evaluate it exactly when
			// the state space permits; otherwise simulate.
			mean := -1.0
			if n <= 8 {
				if reg, err := opt.GreedyRegimen(in, func(unf, elig []bool) sched.Assignment {
					return core.MSMAlg(in, elig)
				}); err == nil {
					if v, err := opt.ExactRegimen(in, reg); err == nil && !math.IsInf(v, 1) {
						mean = v
					}
				}
			}
			if mean < 0 {
				mean = estimate(in, &core.AdaptivePolicy{In: in}, cfg.reps(), cfg.Seed)
			}
			if mean < 0 {
				continue
			}
			lb, exact := exactOpt(in)
			if exact {
				baseline = "exact OPT"
			} else {
				jobs := seqJobs(n)
				fs, err := core.SolveLP2(in, jobs, 0.5)
				if err != nil {
					continue
				}
				lb = core.CombinedLowerBound(in, fs.T)
			}
			if lb > 0 {
				ratios = append(ratios, mean/lb)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		mr := stats.Mean(ratios)
		t.Rows = append(t.Rows, []string{d(n), d(m), baseline, f2(mr), f2(mr / stats.Log2(float64(n)+1))})
	}
	t.Notes = "Against the combined lower bound the reported ratio still inflates by the LB gap; the normalized column should stay roughly flat if the O(log n) shape holds."
	return t
}

// T4 validates Lemma 3.5 / Theorem 3.6: the combinatorial oblivious
// schedule SUU-I-OBL stays within O(log² n) of optimal.
func T4(cfg Config) *Table {
	t := &Table{
		ID:         "T4",
		Title:      "Combinatorial oblivious SUU-I-OBL ratio vs. instance size",
		PaperBound: "Theorem 3.6: E[makespan] ≤ O(log² n)·T_OPT",
		Header:     []string{"n", "m", "core len", "mean ratio", "ratio/log₂²n"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	sizes := [][2]int{{4, 3}, {8, 3}, {16, 6}, {32, 8}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		var ratios []float64
		coreLen := 0
		for k := 0; k < cfg.trials(); k++ {
			in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			res, err := core.SUUIOblivious(in, paramsWithSeed(cfg.Seed))
			if err != nil {
				continue
			}
			coreLen = res.CoreLength
			mean := estimate(in, res.Schedule, cfg.reps(), cfg.Seed)
			if mean < 0 {
				continue
			}
			lb := lowerBound(in, n)
			if lb > 0 {
				ratios = append(ratios, mean/lb)
			}
		}
		if len(ratios) == 0 {
			continue
		}
		mr := stats.Mean(ratios)
		l := stats.Log2(float64(n) + 1)
		t.Rows = append(t.Rows, []string{d(n), d(m), d(coreLen), f2(mr), f2(mr / (l * l))})
	}
	return t
}

// T5 validates Theorem 4.5 and compares the LP-based oblivious
// schedule against the combinatorial one.
func T5(cfg Config) *Table {
	t := &Table{
		ID:         "T5",
		Title:      "LP-based oblivious schedule (Thm 4.5) vs. combinatorial (Thm 3.6)",
		PaperBound: "Theorem 4.5: E[makespan] ≤ O(log n · log min(n,m))·T_OPT",
		Header:     []string{"n", "m", "LP T*", "lp-obl ratio", "comb-obl ratio", "lp/comb"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	sizes := [][2]int{{4, 3}, {8, 4}, {16, 6}, {32, 8}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		var lpR, combR []float64
		tstar := 0.0
		for k := 0; k < cfg.trials(); k++ {
			in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			lres, err := core.SUUIndependentLP(in, paramsWithSeed(cfg.Seed))
			if err != nil {
				continue
			}
			tstar = lres.TStar
			cres, err := core.SUUIOblivious(in, paramsWithSeed(cfg.Seed))
			if err != nil {
				continue
			}
			lb := lowerBound(in, n)
			if lb <= 0 {
				continue
			}
			if mean := estimate(in, lres.Schedule, cfg.reps(), cfg.Seed); mean > 0 {
				lpR = append(lpR, mean/lb)
			}
			if mean := estimate(in, cres.Schedule, cfg.reps(), cfg.Seed); mean > 0 {
				combR = append(combR, mean/lb)
			}
		}
		if len(lpR) == 0 || len(combR) == 0 {
			continue
		}
		a, b := stats.Mean(lpR), stats.Mean(combR)
		t.Rows = append(t.Rows, []string{d(n), d(m), f2(tstar), f2(a), f2(b), f2(a / b)})
	}
	t.Notes = "The combinatorial schedule cycles its prefix (fast retries); the LP schedule pays the σ-replication up front. The theorems bound both; the comparison reports the practical trade."
	return t
}

// helpers shared by the independent-jobs experiments.

func seqJobs(n int) []int {
	jobs := make([]int, n)
	for j := range jobs {
		jobs[j] = j
	}
	return jobs
}

func paramsWithSeed(seed int64) core.Params {
	p := core.DefaultParams()
	p.Seed = seed
	return p
}

// lowerBound returns exact OPT for small instances, else the LP2/16
// bound.
func lowerBound(in *model.Instance, n int) float64 {
	if v, ok := exactOpt(in); ok {
		return v
	}
	fs, err := core.SolveLP2(in, seqJobs(n), 0.5)
	if err != nil {
		return -1
	}
	return core.CombinedLowerBound(in, fs.T)
}

func optRegimen(in *model.Instance) (*sched.Regimen, float64, error) {
	return opt.OptimalRegimen(in)
}
