package exp

import (
	"time"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/workload"
)

// T12 profiles the substrate: simplex size/iterations/time for (LP1),
// end-to-end chains-pipeline construction time, and simulation-engine
// throughput (reps/s and ns/step of the Monte Carlo estimator on the
// constructed schedule) across instance sizes. Not a paper claim — it
// documents that the stdlib-only solver stack stays comfortably
// polynomial at laptop scale and tracks the engine's perf trajectory
// (the same measurement feeds BENCH_sim.json; see SimBenchmarks).
func T12(cfg Config) *Table {
	t := &Table{
		ID:         "T12",
		Title:      "Substrate performance: LP1 simplex, chains pipeline, sim engine",
		PaperBound: "polynomial time (the paper's claim); measured here",
		Header:     []string{"n", "m", "LP vars", "LP rows", "simplex iters", "solve ms", "pipeline ms", "sim reps/s", "sim ns/step"},
	}
	type pt struct{ n, m, c int }
	sweep := []pt{{12, 4, 3}, {24, 6, 4}, {48, 8, 6}, {96, 12, 8}}
	if cfg.Quick {
		sweep = sweep[:3]
	}
	// T12 is the one driver that stays sequential by design: its
	// columns are wall-clock measurements and concurrent cells would
	// pollute them.
	for _, p := range sweep {
		seed := sim.SeedFor(cfg.Seed, "T12", int64(p.n), int64(p.m), int64(p.c))
		in := workload.Chains(workload.Config{Jobs: p.n, Machines: p.m, Seed: seed}, p.c)
		chains, err := in.Prec.Chains()
		if err != nil {
			continue
		}
		start := time.Now()
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			continue
		}
		solveMS := time.Since(start).Milliseconds()
		start = time.Now()
		built, err := core.SUUChains(in, paramsWithSeed(cfg.Seed))
		if err != nil {
			continue
		}
		pipeMS := time.Since(start).Milliseconds()
		simReps := 4 * cfg.reps()
		repsPerSec, nsPerStep, _ := measureEngine(in, built.Schedule, simReps, cfg.Seed+41)
		t.Rows = append(t.Rows, []string{
			d(p.n), d(p.m), d(fs.Cols), d(fs.Rows), d(fs.Iterations), d(int(solveMS)), d(int(pipeMS)),
			d(int(repsPerSec)), f2(nsPerStep),
		})
	}
	t.Notes = "LP vars/rows are the sparse solver's working dimensions (window rows are generated lazily, so the row count " +
		"reflects the binding set, not the full formulation). Iterations grow roughly linearly with the working row count; " +
		"everything stays interactive well past the experiment sizes. " +
		"Engine columns measure sim.EstimateParallel on the constructed schedule (ns/step normalizes by realized makespan)."
	return t
}

// measureEngine times the Monte Carlo estimator on one (instance,
// policy) pair, returning throughput in repetitions per wall-clock
// second, nanoseconds per simulated step (normalized by the mean
// realized makespan), and the mean makespan itself.
func measureEngine(in *model.Instance, pol sched.Policy, reps int, seed int64) (repsPerSec, nsPerStep, meanMakespan float64) {
	repsPerSec, nsPerStep, meanMakespan, _ = measureEngineInfo(in, pol, reps, seed)
	return repsPerSec, nsPerStep, meanMakespan
}

// measureEngineInfo is measureEngine plus the EngineUsed record of the
// measured run, so perf rows report the engine that actually produced
// the number instead of re-deriving the dispatch decision.
func measureEngineInfo(in *model.Instance, pol sched.Policy, reps int, seed int64) (repsPerSec, nsPerStep, meanMakespan float64, eng sim.EngineUsed) {
	start := time.Now()
	sum, _, info := sim.EstimateParallelInfo(in, pol, reps, 5_000_000, seed, 0)
	elapsed := time.Since(start)
	repsPerSec = float64(reps) / elapsed.Seconds()
	totalSteps := sum.Mean * float64(reps)
	if totalSteps > 0 {
		nsPerStep = float64(elapsed.Nanoseconds()) / totalSteps
	}
	return repsPerSec, nsPerStep, sum.Mean, info
}
