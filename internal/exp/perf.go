package exp

import (
	"math/rand"
	"time"

	"suu/internal/core"
	"suu/internal/workload"
)

// T12 profiles the substrate: simplex size/iterations/time for (LP1)
// and end-to-end chains-pipeline construction time across instance
// sizes. Not a paper claim — it documents that the stdlib-only solver
// stack stays comfortably polynomial at laptop scale (the paper's
// algorithms are "polynomial time"; this is the measured polynomial).
func T12(cfg Config) *Table {
	t := &Table{
		ID:         "T12",
		Title:      "Substrate performance: LP1 simplex and chains pipeline",
		PaperBound: "polynomial time (the paper's claim); measured here",
		Header:     []string{"n", "m", "LP vars", "LP rows", "simplex iters", "solve ms", "pipeline ms"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 40))
	type pt struct{ n, m, c int }
	sweep := []pt{{12, 4, 3}, {24, 6, 4}, {48, 8, 6}, {96, 12, 8}}
	if cfg.Quick {
		sweep = sweep[:3]
	}
	for _, p := range sweep {
		in := workload.Chains(workload.Config{Jobs: p.n, Machines: p.m, Seed: rng.Int63()}, p.c)
		chains, err := in.Prec.Chains()
		if err != nil {
			continue
		}
		start := time.Now()
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			continue
		}
		solveMS := time.Since(start).Milliseconds()
		// LP dimensions: x vars (pairs with p>0) + d' vars + t.
		vars := 0
		for i := 0; i < in.M; i++ {
			for j := 0; j < in.N; j++ {
				if in.P[i][j] > 0 {
					vars++
				}
			}
		}
		rows := vars + p.n + p.m + p.c // window + mass + load + chain rows
		start = time.Now()
		if _, err := core.SUUChains(in, paramsWithSeed(cfg.Seed)); err != nil {
			continue
		}
		pipeMS := time.Since(start).Milliseconds()
		t.Rows = append(t.Rows, []string{
			d(p.n), d(p.m), d(vars + p.n + 1), d(rows), d(fs.Iterations), d(int(solveMS)), d(int(pipeMS)),
		})
	}
	t.Notes = "Iterations grow roughly linearly with the row count; everything stays interactive well past the experiment sizes."
	return t
}
