package exp

import (
	"math/rand"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// T10 compares the paper's constructions against naive baselines on
// the two motivating scenarios of Section 1 (grid computing, project
// management): who wins, by roughly what factor.
func T10(cfg Config) *Table {
	t := &Table{
		ID:         "T10",
		Title:      "Schedulers head-to-head on the paper's motivating workloads",
		PaperBound: "Section 1 motivation (no single theorem): coordinated schedules should beat naive ones",
		Header:     []string{"workload", "policy", "E[makespan]", "vs best"},
	}
	type workloadCase struct {
		name string
		in   *model.Instance
	}
	cases := []workloadCase{
		{"grid (out-tree, bimodal)", workload.GridPipeline(20, 6, cfg.Seed+10)},
		{"project (chains, specialists)", workload.ProjectPlan(10, 5, cfg.Seed+11)},
	}
	for _, wc := range cases {
		type entry struct {
			name string
			pol  sched.Policy
		}
		par := paramsWithSeed(cfg.Seed)
		var entries []entry
		if res, err := core.SUUForest(wc.in, par); err == nil {
			entries = append(entries, entry{"paper oblivious (forest)", res.Schedule})
		}
		entries = append(entries,
			entry{"adaptive MSM (Thm 3.3)", &core.AdaptivePolicy{In: wc.in}},
			entry{"greedy-maxp", &core.GreedyMaxPPolicy{In: wc.in}},
			entry{"round-robin", &core.RoundRobinPolicy{In: wc.in}},
			entry{"all-on-one", &core.AllOnOnePolicy{In: wc.in}},
			entry{"random", &core.RandomPolicy{In: wc.in, Rng: rand.New(rand.NewSource(cfg.Seed))}},
		)
		means := make([]float64, len(entries))
		best := -1.0
		for i, e := range entries {
			means[i] = estimate(wc.in, e.pol, cfg.reps(), cfg.Seed)
			if means[i] > 0 && (best < 0 || means[i] < best) {
				best = means[i]
			}
		}
		for i, e := range entries {
			if means[i] < 0 {
				t.Rows = append(t.Rows, []string{wc.name, e.name, "did not finish", "—"})
				continue
			}
			t.Rows = append(t.Rows, []string{wc.name, e.name, f2(means[i]), f2(means[i] / best)})
		}
	}
	t.Notes = "Adaptive coordination wins outright; among non-adaptive options the paper's oblivious schedule is the only one with a guarantee (the naive baselines are adaptive — they observe completions — yet uncoordinated ones still lose ground)."
	return t
}
