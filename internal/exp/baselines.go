package exp

// T10 compares the paper's constructions against naive baselines on
// the two motivating scenarios of Section 1 (grid computing, project
// management): who wins, by roughly what factor. The contenders are
// not hand-picked: every registry solver applicable to the workload's
// precedence class enters (except the exact DP, infeasible at these
// sizes). The table is a shardable GridDriver — the solver sweep is a
// declared plan, so CI runs its cells as disjoint ranges — and each
// row records which simulation engine estimated it: the stationary
// policies (adaptive, greedy-maxp, all-on-one) run the compiled
// transition-table engine when the instance's reachable state space
// fits the budget.
func T10(cfg Config) *Table {
	g, _ := GridDriverByID("T10")
	return runGridDriver(cfg, g)
}

// t10Workloads pairs each motivating workload with its display label;
// plan and renderer share it so spec segments and row labels cannot
// drift apart.
var t10Workloads = []struct {
	label string
	point GridPoint
	class string
}{
	{"grid (out-tree, bimodal)", GridPoint{Scenario: "grid-pipeline", Jobs: 20, Machines: 6}, "out-forest"},
	{"project (chains, specialists)", GridPoint{Scenario: "project-plan", Jobs: 10, Machines: 5}, "chains"},
}

// t10Plan declares one spec per workload, because each workload
// carries its own applicable-solver set.
func t10Plan(cfg Config) GridPlan {
	plan := GridPlan{ID: "T10"}
	for _, w := range t10Workloads {
		plan.Specs = append(plan.Specs, GridSpec{
			Points:  []GridPoint{w.point},
			Solvers: solverIDsFor(w.class, true),
			Trials:  1,
		})
	}
	return plan
}

// renderT10 aggregates per workload block: best mean first, then one
// row per solver with its ratio to the best and the engine that
// simulated it.
func renderT10(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "T10",
		Title:      "Schedulers head-to-head on the paper's motivating workloads",
		PaperBound: "Section 1 motivation (no single theorem): coordinated schedules should beat naive ones",
		Header:     []string{"workload", "solver", "construction", "engine", "E[makespan]", "vs best"},
	}
	off := 0
	for i, seg := range specSegments(t10Plan(cfg)) {
		block := results[off : off+seg]
		off += seg
		label := t10Workloads[i].label
		best := -1.0
		for _, r := range block {
			if r.Err == nil && r.Mean > 0 && (best < 0 || r.Mean < best) {
				best = r.Mean
			}
		}
		for _, r := range block {
			if r.Err != nil || r.Mean < 0 {
				t.Rows = append(t.Rows, []string{label, r.Cell.Solver, r.Kind, r.Engine, "did not finish", "—"})
				continue
			}
			t.Rows = append(t.Rows, []string{label, r.Cell.Solver, r.Kind, r.Engine, f2(r.Mean), f2(r.Mean / best)})
		}
	}
	t.Notes = "Adaptive coordination wins outright; among non-adaptive options the paper's oblivious schedule is the only one with a guarantee (the naive baselines are adaptive — they observe completions — yet uncoordinated ones still lose ground). " +
		"The engine column shows which simulator ran the cell: compiled (event-wise oblivious), compiled-adaptive (memoized transition table), or generic (per-step policy calls)."
	return t
}
