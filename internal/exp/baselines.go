package exp

// T10 compares the paper's constructions against naive baselines on
// the two motivating scenarios of Section 1 (grid computing, project
// management), plus an n=20 chains workload sized to sit exactly on
// the value iteration's frontier: who wins, by roughly what factor,
// and — where the exact solver reaches — by how much everyone misses
// T_OPT. The contenders are not hand-picked: every registry solver
// applicable to the workload's precedence class enters (the exact DP
// stays out of the sweep and instead supplies the T_OPT reference
// column). The table is a shardable GridDriver — the solver sweep is
// a declared plan, so CI runs its cells as disjoint ranges — and each
// row records which simulation engine estimated it: the stationary
// policies (adaptive, greedy-maxp, all-on-one) run the compiled
// transition-table engine when the instance's reachable state space
// fits the budget.
func T10(cfg Config) *Table {
	g, _ := GridDriverByID("T10")
	return runGridDriver(cfg, g)
}

// t10Workloads pairs each motivating workload with its display label;
// plan and renderer share it so spec segments and row labels cannot
// drift apart. The chains workload keeps m ≤ 4 on purpose: its
// few-thousand-state down-set lattice is solvable exactly at n=20, so
// its rows carry true optimality gaps where the Section 1 scenarios
// (m ≥ 5) only support relative comparison.
var t10Workloads = []struct {
	label string
	point GridPoint
	class string
}{
	{"grid (out-tree, bimodal)", GridPoint{Scenario: "grid-pipeline", Jobs: 20, Machines: 6}, "out-forest"},
	{"project (chains, specialists)", GridPoint{Scenario: "project-plan", Jobs: 10, Machines: 5}, "chains"},
	{"chains at the exact frontier", GridPoint{Scenario: "chains", Jobs: 20, Machines: 4}, "chains"},
}

// t10Plan declares one spec per workload, because each workload
// carries its own applicable-solver set.
func t10Plan(cfg Config) GridPlan {
	plan := GridPlan{ID: "T10"}
	for _, w := range t10Workloads {
		plan.Specs = append(plan.Specs, GridSpec{
			Points:  []GridPoint{w.point},
			Solvers: solverIDsFor(w.class, true),
			Trials:  1,
		})
	}
	return plan
}

// renderT10 aggregates per workload block: best mean first, then one
// row per solver with its ratio to the best, its gap to the exact
// optimum where the value iteration reaches the workload, and the
// engine that simulated it. The T_OPT column re-derives each block's
// instance from the same coordinates the cells used (trial 0 — T10
// runs one trial per workload), so the reference is computed for
// exactly the instance the sweep estimated, on the render side of the
// shard boundary.
func renderT10(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "T10",
		Title:      "Schedulers head-to-head on the paper's motivating workloads",
		PaperBound: "Section 1 motivation (no single theorem): coordinated schedules should beat naive ones",
		Header:     []string{"workload", "solver", "construction", "engine", "E[makespan]", "vs best", "T_OPT", "vs T_OPT"},
	}
	off := 0
	for i, seg := range specSegments(t10Plan(cfg)) {
		block := results[off : off+seg]
		off += seg
		label := t10Workloads[i].label
		topt, exact := 0.0, false
		if in, _, err := cellInstance(cfg, GridCell{Point: t10Workloads[i].point}); err == nil {
			topt, exact = exactOpt(in)
		}
		toptCol, gap := "—", func(mean float64) string { return "—" }
		if exact {
			toptCol = f2(topt)
			gap = func(mean float64) string { return f2(mean / topt) }
		}
		best := -1.0
		for _, r := range block {
			if r.Err == nil && r.Mean > 0 && (best < 0 || r.Mean < best) {
				best = r.Mean
			}
		}
		for _, r := range block {
			if r.Err != nil || r.Mean < 0 {
				t.Rows = append(t.Rows, []string{label, r.Cell.Solver, r.Kind, r.Engine, "did not finish", "—", toptCol, "—"})
				continue
			}
			t.Rows = append(t.Rows, []string{label, r.Cell.Solver, r.Kind, r.Engine, f2(r.Mean), f2(r.Mean / best), toptCol, gap(r.Mean)})
		}
	}
	t.Notes = "Adaptive coordination wins outright; among non-adaptive options the paper's oblivious schedule is the only one with a guarantee (the naive baselines are adaptive — they observe completions — yet uncoordinated ones still lose ground). " +
		"The engine column shows which simulator ran the cell: compiled (event-wise oblivious), compiled-adaptive (memoized transition table), or generic (per-step policy calls). " +
		"T_OPT is the exact optimum from the layered value iteration where the workload sits inside its frontier (m ≤ 4, modest down-set lattice); vs T_OPT is then a true optimality gap rather than a best-in-sweep ratio."
	return t
}
