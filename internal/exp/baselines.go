package exp

// T10 compares the paper's constructions against naive baselines on
// the two motivating scenarios of Section 1 (grid computing, project
// management): who wins, by roughly what factor. The contenders are
// not hand-picked: every registry solver applicable to the workload's
// precedence class enters (except the exact DP, infeasible at these
// sizes).
func T10(cfg Config) *Table {
	t := &Table{
		ID:         "T10",
		Title:      "Schedulers head-to-head on the paper's motivating workloads",
		PaperBound: "Section 1 motivation (no single theorem): coordinated schedules should beat naive ones",
		Header:     []string{"workload", "solver", "construction", "E[makespan]", "vs best"},
	}
	type wl struct {
		label string
		point GridPoint
		class string
	}
	workloads := []wl{
		{"grid (out-tree, bimodal)", GridPoint{Scenario: "grid-pipeline", Jobs: 20, Machines: 6}, "out-forest"},
		{"project (chains, specialists)", GridPoint{Scenario: "project-plan", Jobs: 10, Machines: 5}, "chains"},
	}
	for _, w := range workloads {
		results := RunGrid(cfg, GridSpec{
			Points:  []GridPoint{w.point},
			Solvers: solverIDsFor(w.class, true),
			Trials:  1,
		})
		best := -1.0
		for _, r := range results {
			if r.Err == nil && r.Mean > 0 && (best < 0 || r.Mean < best) {
				best = r.Mean
			}
		}
		for _, r := range results {
			if r.Err != nil || r.Mean < 0 {
				t.Rows = append(t.Rows, []string{w.label, r.Cell.Solver, r.Kind, "did not finish", "—"})
				continue
			}
			t.Rows = append(t.Rows, []string{w.label, r.Cell.Solver, r.Kind, f2(r.Mean), f2(r.Mean / best)})
		}
	}
	t.Notes = "Adaptive coordination wins outright; among non-adaptive options the paper's oblivious schedule is the only one with a guarantee (the naive baselines are adaptive — they observe completions — yet uncoordinated ones still lose ground)."
	return t
}
