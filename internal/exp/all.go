package exp

// Drivers maps experiment ids to their drivers, in presentation order.
var Drivers = []struct {
	ID  string
	Run func(Config) *Table
}{
	{"T1", T1},
	{"T2", T2},
	{"T3", T3},
	{"T4", T4},
	{"T5", T5},
	{"T6", T6},
	{"T7", T7},
	{"T8", T8},
	{"T9", T9},
	{"T10", T10},
	{"T11", T11},
	{"T12", T12},
	{"T13", T13},
	{"T14", T14},
	{"T15", T15},
	{"A1", A1},
	{"A2", A2},
	{"A3", A3},
	{"A4", A4},
	{"A5", A5},
}

// All runs every experiment and returns the tables in presentation
// order. Drivers run one after another — the parallelism lives at
// cell granularity inside each driver — so only one worker pool is
// alive at a time and the deliberately-sequential timing drivers
// (T12, A4) measure an otherwise-idle machine.
func All(cfg Config) []*Table {
	var out []*Table
	for _, drv := range Drivers {
		out = append(out, drv.Run(cfg))
	}
	return out
}

// ByID runs a single experiment, or returns nil for an unknown id.
func ByID(id string, cfg Config) *Table {
	for _, drv := range Drivers {
		if drv.ID == id {
			return drv.Run(cfg)
		}
	}
	return nil
}
