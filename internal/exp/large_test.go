package exp

import (
	"os"
	"runtime"
	"testing"
	"time"

	"suu/internal/core"
	"suu/internal/sim"
	"suu/internal/workload"
)

// TestLargeLPTractable is the acceptance gate for the sparse solver's
// large-instance claim: a 512-job (LP2) and a 256-job chains (LP1)
// solve each complete in under 2 seconds. Skipped under -short so
// ordinary edit-test loops stay fast; CI runs the full suite.
func TestLargeLPTractable(t *testing.T) {
	if testing.Short() {
		t.Skip("large-instance tractability gate skipped under -short")
	}
	t.Run("LP2-512x16", func(t *testing.T) {
		in := workload.Independent(workload.Config{Jobs: 512, Machines: 16, Seed: 11})
		jobs := make([]int, in.N)
		for j := range jobs {
			jobs[j] = j
		}
		start := time.Now()
		fs, err := core.SolveLP2(in, jobs, 0.5)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("LP2 at 512 jobs took %v (budget 2s, %d pivots)", elapsed, fs.Iterations)
		}
		t.Logf("LP2 512x16: %v, %d pivots, %d working rows, T*=%.3f", elapsed, fs.Iterations, fs.Rows, fs.T)
	})
	t.Run("LP1-256x8", func(t *testing.T) {
		in := workload.Chains(workload.Config{Jobs: 256, Machines: 8, Seed: 11}, 16)
		chains, err := in.Prec.Chains()
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		fs, err := core.SolveLP1(in, chains, 0.5)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("LP1 at 256 jobs took %v (budget 2s, %d pivots)", elapsed, fs.Iterations)
		}
		t.Logf("LP1 256x8: %v, %d pivots, %d working rows, T*=%.3f", elapsed, fs.Iterations, fs.Rows, fs.T)
	})
}

// TestSparseLPSpeedupSmoke is the CI bench-smoke assertion: the
// sparse path's forest-48x8 build must beat the dense oracle by ≥3×
// (best of three each). It only runs when BENCH_SMOKE=1 — wall-clock
// ratios are meaningless under the race detector or a loaded laptop —
// and skips on single-core runners, whose scheduling noise swamps
// millisecond builds.
func TestSparseLPSpeedupSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the sparse-vs-dense speedup gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("speedup gate needs ≥2 cores for stable timing")
	}
	seed := sim.SeedFor(1, "bench-build/forest")
	in := workload.OutTree(workload.Config{Jobs: 48, Machines: 8, Seed: seed})
	par := paramsWithSeed(sim.SeedFor(seed, "build"))
	bestOf3 := func(par core.Params) float64 {
		best := -1.0
		for try := 0; try < 3; try++ {
			start := time.Now()
			if _, err := core.SUUForest(in, par); err != nil {
				t.Fatal(err)
			}
			if e := time.Since(start).Seconds() * 1000; best < 0 || e < best {
				best = e
			}
		}
		return best
	}
	sparse := bestOf3(par)
	parDense := par
	parDense.DenseLP = true
	dense := bestOf3(parDense)
	ratio := dense / sparse
	t.Logf("forest 48x8 build: sparse %.2fms dense %.2fms ratio %.2fx", sparse, dense, ratio)
	if ratio < 3 {
		t.Errorf("sparse forest-48x8 build only %.2fx faster than dense (want ≥3x): sparse %.2fms dense %.2fms",
			ratio, sparse, dense)
	}
}
