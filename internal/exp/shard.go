package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"suu/internal/fingerprint"
)

// This file is the process-sharding layer over the scenario-grid
// harness: any named grid plan can be enumerated, sliced into
// half-open cell ranges, executed as index-tagged partial results in
// separate OS processes, and merged back into the exact sequential
// output. The contract that makes this sound is the one grid.go
// already enforces — every cell derives all randomness from its own
// coordinates — so a shard boundary can never change a value, only
// which process computes it. cmd/suu-bench exposes the range/merge
// modes; cmd/suu-grid is the local multi-process coordinator; CI
// proves the loop by byte-comparing a 4-shard matrix merge against
// the single-process run.

// ShardSchemaVersion versions the shard envelope. Merge refuses to
// mix versions: a coordinator must never splice rows produced under a
// different payload contract. Version 2 added the engine and
// prefix_len payload columns (and cells may carry param overrides and
// custom evaluators). Version 3 added the per-envelope payload
// checksum, which lets a coordinator detect corruption in transit
// instead of trusting whatever bytes arrive.
const ShardSchemaVersion = 3

// CellRange is a half-open slice [Lo:Hi) of a plan's Cells() order.
type CellRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of cells in the range.
func (r CellRange) Len() int { return r.Hi - r.Lo }

func (r CellRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// ParseCellRange parses "a:b" (half-open, 0-indexed) against a plan
// of total cells. Either bound may be omitted: ":b" starts at 0,
// "a:" ends at total.
func ParseCellRange(s string, total int) (CellRange, error) {
	lo, hi := 0, total
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return CellRange{}, fmt.Errorf("exp: cell range %q: want a:b", s)
	}
	var err error
	if a := s[:i]; a != "" {
		if lo, err = strconv.Atoi(a); err != nil {
			return CellRange{}, fmt.Errorf("exp: cell range %q: %v", s, err)
		}
	}
	if b := s[i+1:]; b != "" {
		if hi, err = strconv.Atoi(b); err != nil {
			return CellRange{}, fmt.Errorf("exp: cell range %q: %v", s, err)
		}
	}
	if lo < 0 || hi > total || lo > hi {
		return CellRange{}, fmt.Errorf("exp: cell range %q out of bounds for %d cells", s, total)
	}
	return CellRange{Lo: lo, Hi: hi}, nil
}

// Split partitions the range into k contiguous near-equal sub-ranges
// (same size rule as ShardRanges, shifted to the range's origin) — the
// re-slice a coordinator dispatches when a range straggles. Empty tail
// sub-ranges appear when k exceeds the range length, mirroring
// ShardRanges; callers that dispatch work should skip zero-length
// slices.
func (r CellRange) Split(k int) []CellRange {
	out := ShardRanges(r.Len(), k)
	for i := range out {
		out[i].Lo += r.Lo
		out[i].Hi += r.Lo
	}
	return out
}

// Contains reports whether r covers all of s.
func (r CellRange) Contains(s CellRange) bool { return r.Lo <= s.Lo && s.Hi <= r.Hi }

// Overlaps reports whether the two ranges share at least one cell.
func (r CellRange) Overlaps(s CellRange) bool {
	return r.Len() > 0 && s.Len() > 0 && r.Lo < s.Hi && s.Lo < r.Hi
}

// ParseShard parses "k/N" (0-indexed shard k of N) and returns the
// k-th of ShardRanges(total, N).
func ParseShard(s string, total int) (CellRange, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return CellRange{}, fmt.Errorf("exp: shard %q: want k/N", s)
	}
	k, err1 := strconv.Atoi(s[:i])
	n, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || n < 1 || k < 0 || k >= n {
		return CellRange{}, fmt.Errorf("exp: shard %q: want k/N with 0 <= k < N", s)
	}
	return ShardRanges(total, n)[k], nil
}

// ShardRanges partitions [0:n) into k contiguous near-equal ranges
// (sizes differ by at most one, larger shards first). k may exceed n;
// the tail ranges are then empty, which Merge accepts — a 4-shard CI
// matrix over a 3-cell plan is legal.
func ShardRanges(n, k int) []CellRange {
	if k < 1 {
		k = 1
	}
	out := make([]CellRange, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out[i] = CellRange{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// GridPlan is a named, ordered list of grid specs — the shardable
// unit. A single cross-product GridSpec is the one-spec plan; tables
// whose (point, solver) pairing is not a cross product (T13's
// per-point solver sets, T14's per-point solver) concatenate one spec
// per pairing. Cells() order is the canonical cell indexing every
// range, envelope, and merge refers to.
type GridPlan struct {
	// ID names the plan for fingerprints and CLI lookup ("T13",
	// "T14", "bench").
	ID    string
	Specs []GridSpec
}

// Cells concatenates the specs' cell enumerations in order.
func (p GridPlan) Cells() []GridCell {
	var out []GridCell
	for _, s := range p.Specs {
		out = append(out, s.Cells()...)
	}
	return out
}

// NumCells returns len(p.Cells()) without materializing it.
func (p GridPlan) NumCells() int {
	n := 0
	for _, s := range p.Specs {
		n += s.NumCells()
	}
	return n
}

// Plan wraps a single spec as an anonymous one-spec plan.
func Plan(id string, spec GridSpec) GridPlan {
	return GridPlan{ID: id, Specs: []GridSpec{spec}}
}

// ShardSpec selects one half-open cell range of a plan — the unit of
// work a worker process executes.
type ShardSpec struct {
	Plan  GridPlan
	Range CellRange
}

// fingerprintDoc is everything that determines cell values: the
// payload contract version, the plan identity and its full spec list,
// and the config fields the harness mixes into seeds or repetition
// counts. Workers is deliberately absent — parallelism never changes
// values — so shards produced at any pool size merge.
type fingerprintDoc struct {
	Schema int        `json:"schema"`
	Plan   string     `json:"plan"`
	Specs  []GridSpec `json:"specs"`
	Seed   int64      `json:"seed"`
	Quick  bool       `json:"quick"`
	Reps   int        `json:"reps"`
}

// Fingerprint hashes the (config, plan) pair that a shard was cut
// from (via the shared internal/fingerprint canon). Two shard files
// merge only if their fingerprints match: same spec list, same root
// seed, same repetition counts, same schema.
func Fingerprint(cfg Config, p GridPlan) string {
	return fingerprint.JSON(fingerprintDoc{
		Schema: ShardSchemaVersion,
		Plan:   p.ID,
		Specs:  p.Specs,
		Seed:   cfg.Seed,
		Quick:  cfg.Quick,
		Reps:   cfg.reps(),
	}, 8)
}

// RunPlanRange evaluates cells [r.Lo:r.Hi) of the plan on the worker
// pool and returns their results in cell order. Result i corresponds
// to global cell index r.Lo+i; values are identical to the same slice
// of a full-plan run because every cell derives its seeds from its
// own coordinates, never from execution context.
func RunPlanRange(cfg Config, p GridPlan, r CellRange) []GridResult {
	cells := p.Cells()
	if r.Lo < 0 || r.Hi > len(cells) || r.Lo > r.Hi {
		panic(fmt.Sprintf("exp: range %s out of bounds for %d cells", r, len(cells)))
	}
	return runCells(cfg, r.Len(), func(i int) GridResult {
		return EvalCell(cfg, cells[r.Lo+i])
	})
}

// RunPlan evaluates the full plan.
func RunPlan(cfg Config, p GridPlan) []GridResult {
	return RunPlanRange(cfg, p, CellRange{Lo: 0, Hi: p.NumCells()})
}

// CellRow is the deterministic projection of one evaluated cell — the
// merge payload. Everything here is a pure function of (fingerprint,
// index); wall-clock timings live next to it in ShardCell and are
// stripped by Merge, which is what lets merged output byte-compare
// against the sequential run.
type CellRow struct {
	// Index is the cell's position in the plan's Cells() order.
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	Arg      int    `json:"arg,omitempty"`
	Solver   string `json:"solver"`
	Trial    int    `json:"trial,omitempty"`
	// Seed is the derived (point, trial) seed the cell ran under,
	// recorded so a single cell can be reproduced in isolation.
	Seed       int64   `json:"seed"`
	Class      string  `json:"class,omitempty"`
	Kind       string  `json:"kind,omitempty"`
	Mean       float64 `json:"mean"`
	LowerBound float64 `json:"lower_bound"`
	// PrefixLen is the built schedule's oblivious prefix length (0 for
	// adaptive policies).
	PrefixLen int `json:"prefix_len,omitempty"`
	// Engine names the simulation engine that actually ran the cell —
	// deterministic for the cell's coordinates, hence payload: a
	// sharded run must agree with the sequential one about which
	// engine every cell used.
	Engine   string `json:"engine,omitempty"`
	LPPivots int    `json:"lp_pivots,omitempty"`
	Err      string `json:"err,omitempty"`
}

// ShardCell is one envelope entry: the deterministic row plus the
// producing process's timing.
type ShardCell struct {
	CellRow
	// BuildMS is construction wall-clock in the producing process —
	// provenance, not payload; Merge drops it.
	BuildMS float64 `json:"build_ms"`
}

// ShardFile is the portable partial-result envelope one worker
// process writes.
type ShardFile struct {
	SchemaVersion int       `json:"schema_version"`
	Fingerprint   string    `json:"fingerprint"`
	Plan          string    `json:"plan"`
	Seed          int64     `json:"seed"`
	Quick         bool      `json:"quick"`
	TotalCells    int       `json:"total_cells"`
	Range         CellRange `json:"range"`
	GoVersion     string    `json:"go_version"`
	WallMS        float64   `json:"wall_ms"`
	// PayloadSHA256 is the hex checksum of the envelope's deterministic
	// payload — fingerprint, range, and row payloads, but not timings —
	// computed by the producing worker (SealPayload) and re-verified by
	// every decode, so a byte flipped in transit is detected instead of
	// merged. Empty means unsealed (hand-built test envelopes); decode
	// then skips the check.
	PayloadSHA256 string      `json:"payload_sha256,omitempty"`
	Cells         []ShardCell `json:"cells"`
}

// payloadChecksum hashes everything a corrupted envelope could lie
// about that Merge would propagate: the identity header, the declared
// range, and every row's deterministic payload (CellRow — BuildMS is
// provenance and deliberately excluded, so a damaged timing never
// poisons an otherwise-sound envelope).
func (f *ShardFile) payloadChecksum() string {
	rows := make([]CellRow, len(f.Cells))
	for i, c := range f.Cells {
		rows[i] = c.CellRow
	}
	return fingerprint.JSON(struct {
		Schema      int       `json:"schema"`
		Fingerprint string    `json:"fingerprint"`
		Plan        string    `json:"plan"`
		Seed        int64     `json:"seed"`
		Quick       bool      `json:"quick"`
		TotalCells  int       `json:"total_cells"`
		Range       CellRange `json:"range"`
		Rows        []CellRow `json:"rows"`
	}{f.SchemaVersion, f.Fingerprint, f.Plan, f.Seed, f.Quick, f.TotalCells, f.Range, rows}, 16)
}

// SealPayload stamps the envelope's payload checksum. RunShard seals
// automatically; callers that mutate Cells afterwards must re-seal.
func (f *ShardFile) SealPayload() { f.PayloadSHA256 = f.payloadChecksum() }

// VerifyPayload re-computes the payload checksum against the sealed
// value. Unsealed envelopes pass vacuously.
func (f *ShardFile) VerifyPayload() error {
	if f.PayloadSHA256 == "" {
		return nil
	}
	if got := f.payloadChecksum(); got != f.PayloadSHA256 {
		return &EnvelopeFaultError{
			Range: f.Range,
			Class: FaultChecksum,
			Err:   fmt.Errorf("payload checksum %s, envelope sealed as %s", got, f.PayloadSHA256),
		}
	}
	return nil
}

// MergedGrid is the canonical whole-sweep document Merge produces:
// rows in exact Cells() order, no timings, no per-process provenance.
// Its JSON() bytes are identical whether the rows came from one
// process or any disjoint tiling of shards.
type MergedGrid struct {
	SchemaVersion int       `json:"schema_version"`
	Fingerprint   string    `json:"fingerprint"`
	Plan          string    `json:"plan"`
	Seed          int64     `json:"seed"`
	Quick         bool      `json:"quick"`
	TotalCells    int       `json:"total_cells"`
	Cells         []CellRow `json:"cells"`
}

// rowFromResult projects an evaluated cell onto the envelope payload.
func rowFromResult(cfg Config, index int, r GridResult) CellRow {
	row := CellRow{
		Index:      index,
		Scenario:   r.Cell.Point.Scenario,
		Jobs:       r.Cell.Point.Jobs,
		Machines:   r.Cell.Point.Machines,
		Arg:        r.Cell.Point.Arg,
		Solver:     r.Cell.Solver,
		Trial:      r.Cell.Trial,
		Seed:       pointSeed(cfg.Seed, r.Cell.Point, r.Cell.Trial),
		Class:      r.Class,
		Kind:       r.Kind,
		Mean:       r.Mean,
		LowerBound: r.LowerBound,
		PrefixLen:  r.PrefixLen,
		Engine:     r.Engine,
		LPPivots:   r.LPPivots,
	}
	if r.Err != nil {
		row.Err = r.Err.Error()
	}
	return row
}

// resultFromRow is the inverse projection, for rendering tables from
// merged documents. BuildTime carries the shard-recorded timing when
// the caller has one (0 otherwise — timings are not payload).
func resultFromRow(row CellRow, buildMS float64) GridResult {
	r := GridResult{
		Cell: GridCell{
			Point: GridPoint{
				Scenario: row.Scenario,
				Jobs:     row.Jobs,
				Machines: row.Machines,
				Arg:      row.Arg,
			},
			Solver: row.Solver,
			Trial:  row.Trial,
		},
		Class:      row.Class,
		Kind:       row.Kind,
		Mean:       row.Mean,
		LowerBound: row.LowerBound,
		PrefixLen:  row.PrefixLen,
		Engine:     row.Engine,
		BuildTime:  time.Duration(buildMS * float64(time.Millisecond)),
		LPPivots:   row.LPPivots,
	}
	if row.Err != "" {
		r.Err = errors.New(row.Err)
	}
	return r
}

// RunShard executes one shard and wraps it in its envelope.
func RunShard(cfg Config, s ShardSpec) *ShardFile {
	start := time.Now()
	results := RunPlanRange(cfg, s.Plan, s.Range)
	f := &ShardFile{
		SchemaVersion: ShardSchemaVersion,
		Fingerprint:   Fingerprint(cfg, s.Plan),
		Plan:          s.Plan.ID,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		TotalCells:    s.Plan.NumCells(),
		Range:         s.Range,
		GoVersion:     runtime.Version(),
		Cells:         make([]ShardCell, 0, len(results)),
	}
	for i, r := range results {
		f.Cells = append(f.Cells, ShardCell{
			CellRow: rowFromResult(cfg, s.Range.Lo+i, r),
			BuildMS: float64(r.BuildTime.Nanoseconds()) / 1e6,
		})
	}
	f.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6
	f.SealPayload()
	return f
}

// Fault classes an EnvelopeFaultError carries — how a delivered
// envelope was detected as unusable.
const (
	// FaultParse: the bytes did not decode as a shard envelope
	// (truncation, garbage, foreign document).
	FaultParse = "parse"
	// FaultChecksum: the envelope decoded but its payload does not
	// re-hash to the sealed checksum (bit corruption in transit).
	FaultChecksum = "checksum"
	// FaultFingerprint: the envelope was cut from a different (config,
	// plan) pair than the sweep expects.
	FaultFingerprint = "fingerprint"
	// FaultMisindex: row indices or row count disagree with the
	// declared range (shuffled, shifted, or partially lost rows).
	FaultMisindex = "misindex"
	// FaultMisdelivery: a transport returned an envelope for a range
	// nobody asked it for (stale duplicate, crossed wires).
	FaultMisdelivery = "misdelivery"
	// FaultTransport: the transport failed outright — worker death,
	// injected drop, lost connection — and delivered nothing.
	FaultTransport = "transport"
)

// EnvelopeFaultError reports a detected fault in a delivered envelope
// or its delivery. It is typed so coordinators can classify every
// detected corruption as a re-issuable gap: the error unwraps to a
// *MissingRangeError for the range the envelope was supposed to
// cover, which re-enters the same retry loop a killed worker does.
// Nothing about a faulty envelope is trusted — the whole range is
// re-issued.
type EnvelopeFaultError struct {
	// Range is the cell range whose delivery faulted (the requested
	// range, not whatever the corrupt envelope claims).
	Range CellRange
	// Class is one of the Fault* constants.
	Class string
	// Err details the detection.
	Err error
}

func (e *EnvelopeFaultError) Error() string {
	return fmt.Sprintf("exp: envelope fault (%s) for range %s: %v", e.Class, e.Range, e.Err)
}

// Unwrap exposes both the underlying detection error and the
// re-issuable gap, so errors.As finds a *MissingRangeError carrying
// exactly the range to re-dispatch.
func (e *EnvelopeFaultError) Unwrap() []error {
	errs := []error{&MissingRangeError{Range: e.Range}}
	if e.Err != nil {
		errs = append(errs, e.Err)
	}
	return errs
}

// ValidateShardFile checks a delivered envelope against the sweep it
// is supposed to belong to: schema version, fingerprint, declared
// range within the request, row count and row indices, and the sealed
// payload checksum. Every failure is an *EnvelopeFaultError for the
// requested range — detected corruption converts into a re-issuable
// gap, never into trusted rows. want is the range the envelope was
// requested for; fingerprint and total describe the sweep.
func ValidateShardFile(f *ShardFile, want CellRange, fingerprint string, total int) error {
	fault := func(class string, err error) error {
		return &EnvelopeFaultError{Range: want, Class: class, Err: err}
	}
	if f.Range != want {
		return fault(FaultMisdelivery, fmt.Errorf("envelope covers %s, requested %s", f.Range, want))
	}
	if f.SchemaVersion != ShardSchemaVersion {
		return fault(FaultParse, fmt.Errorf("schema version %d, this binary speaks %d", f.SchemaVersion, ShardSchemaVersion))
	}
	if f.Fingerprint != fingerprint {
		return fault(FaultFingerprint, fmt.Errorf("envelope fingerprint %s, sweep is %s", f.Fingerprint, fingerprint))
	}
	if f.TotalCells != total {
		return fault(FaultFingerprint, fmt.Errorf("envelope total %d cells, sweep has %d", f.TotalCells, total))
	}
	if f.Range.Lo < 0 || f.Range.Hi > total || f.Range.Lo > f.Range.Hi {
		return fault(FaultMisindex, fmt.Errorf("range %s invalid for %d cells", f.Range, total))
	}
	if len(f.Cells) != f.Range.Len() {
		return fault(FaultMisindex, fmt.Errorf("%d rows for range %s, want %d", len(f.Cells), f.Range, f.Range.Len()))
	}
	for i, c := range f.Cells {
		if c.Index != f.Range.Lo+i {
			return fault(FaultMisindex, fmt.Errorf("row %d tagged index %d, want %d", i, c.Index, f.Range.Lo+i))
		}
	}
	if err := f.VerifyPayload(); err != nil {
		return err
	}
	return nil
}

// MissingRangeError reports a gap in a shard tiling: no envelope
// covers cells [Range.Lo:Range.Hi). It is the one Merge failure a
// coordinator can repair without human eyes — the range is exactly
// what to re-issue to a fresh worker (cmd/suu-grid -retries does).
// Detect it with errors.As.
type MissingRangeError struct {
	Range CellRange
}

func (e *MissingRangeError) Error() string {
	return fmt.Sprintf("exp: missing cell range [%d:%d): no shard covers it", e.Range.Lo, e.Range.Hi)
}

// Merge validates a set of shard envelopes and reassembles the
// canonical whole-sweep document. It fails loudly on every way a
// distributed run can silently lie: mixed schema versions or
// fingerprints (shards cut from different sweeps), overlapping ranges
// or duplicated cells (a row computed twice — which one wins?), gaps
// or missing tail (a worker lost — reported as *MissingRangeError so
// a coordinator can re-issue exactly the lost cells), and rows whose
// index or coordinate sits outside their declared range. Shard order
// does not matter.
func Merge(shards []*ShardFile) (*MergedGrid, error) {
	if len(shards) == 0 {
		return nil, errors.New("exp: merge of zero shards")
	}
	sorted := append([]*ShardFile(nil), shards...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Range.Lo < sorted[j].Range.Lo })
	first := sorted[0]
	if first.SchemaVersion != ShardSchemaVersion {
		return nil, fmt.Errorf("exp: shard schema version %d, this binary speaks %d",
			first.SchemaVersion, ShardSchemaVersion)
	}
	m := &MergedGrid{
		SchemaVersion: first.SchemaVersion,
		Fingerprint:   first.Fingerprint,
		Plan:          first.Plan,
		Seed:          first.Seed,
		Quick:         first.Quick,
		TotalCells:    first.TotalCells,
		Cells:         make([]CellRow, 0, first.TotalCells),
	}
	next := 0
	for _, s := range sorted {
		if s.SchemaVersion != m.SchemaVersion {
			return nil, fmt.Errorf("exp: mixed shard schema versions %d and %d", m.SchemaVersion, s.SchemaVersion)
		}
		if s.Fingerprint != m.Fingerprint {
			return nil, fmt.Errorf("exp: fingerprint mismatch: shard %s has %s, shard %s has %s — not cut from the same sweep",
				s.Range, s.Fingerprint, first.Range, m.Fingerprint)
		}
		if s.Plan != m.Plan || s.Seed != m.Seed || s.Quick != m.Quick || s.TotalCells != m.TotalCells {
			return nil, fmt.Errorf("exp: shard %s header (plan %q seed %d quick %v total %d) disagrees with (plan %q seed %d quick %v total %d)",
				s.Range, s.Plan, s.Seed, s.Quick, s.TotalCells, m.Plan, m.Seed, m.Quick, m.TotalCells)
		}
		if s.Range.Lo > s.Range.Hi || s.Range.Lo < 0 || s.Range.Hi > m.TotalCells {
			return nil, fmt.Errorf("exp: shard range %s invalid for %d cells", s.Range, m.TotalCells)
		}
		if len(s.Cells) != s.Range.Len() {
			return nil, fmt.Errorf("exp: shard %s carries %d rows, want %d", s.Range, len(s.Cells), s.Range.Len())
		}
		if s.Range.Len() == 0 {
			// Empty shards carry no cells and tile trivially wherever
			// they sit (an N-way split of fewer-than-N cells, or an
			// explicit a:a range) — header checks above still apply.
			continue
		}
		if s.Range.Lo < next {
			return nil, fmt.Errorf("exp: overlapping shards: cells [%d:%d) delivered twice", s.Range.Lo, min(next, s.Range.Hi))
		}
		if s.Range.Lo > next {
			return nil, &MissingRangeError{Range: CellRange{Lo: next, Hi: s.Range.Lo}}
		}
		for i, c := range s.Cells {
			if c.Index != s.Range.Lo+i {
				return nil, fmt.Errorf("exp: shard %s row %d tagged index %d, want %d (duplicate or shuffled cell)",
					s.Range, i, c.Index, s.Range.Lo+i)
			}
			m.Cells = append(m.Cells, c.CellRow)
		}
		next = s.Range.Hi
	}
	if next != m.TotalCells {
		return nil, &MissingRangeError{Range: CellRange{Lo: next, Hi: m.TotalCells}}
	}
	return m, nil
}

// RunMerged runs the full plan in-process and canonicalizes it
// through the same projection Merge applies — the byte-compare
// baseline for any sharded run of the same (cfg, plan).
func RunMerged(cfg Config, p GridPlan) *MergedGrid {
	m, err := Merge([]*ShardFile{RunShard(cfg, ShardSpec{Plan: p, Range: CellRange{Lo: 0, Hi: p.NumCells()}})})
	if err != nil {
		// A single full-range shard always tiles; an error here is a bug.
		panic("exp: RunMerged: " + err.Error())
	}
	return m
}

// JSON renders the canonical bytes (stable indentation, trailing
// newline) that the CI merge job compares.
func (m *MergedGrid) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Results reconstructs the merged rows as grid results (timings zero)
// so table renderers can consume merged documents.
func (m *MergedGrid) Results() []GridResult {
	out := make([]GridResult, len(m.Cells))
	for i, row := range m.Cells {
		out[i] = resultFromRow(row, 0)
	}
	return out
}

// ShardResults flattens validated shards into grid results in cell
// order, keeping each row's producing-process build timing — what a
// coordinator renders tables from. Call Merge first; this trusts the
// tiling.
func ShardResults(shards []*ShardFile) []GridResult {
	sorted := append([]*ShardFile(nil), shards...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Range.Lo < sorted[j].Range.Lo })
	var out []GridResult
	for _, s := range sorted {
		for _, c := range s.Cells {
			out = append(out, resultFromRow(c.CellRow, c.BuildMS))
		}
	}
	return out
}

// DecodeShardFile parses a shard envelope, rejecting unknown fields
// so a truncated or foreign document fails at decode, not at merge,
// and re-verifies the sealed payload checksum so bit corruption in
// transit fails here too. Both failure modes return an
// *EnvelopeFaultError (parse faults with the envelope's declared
// range when one decoded, the zero range otherwise).
func DecodeShardFile(data []byte) (*ShardFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f ShardFile
	if err := dec.Decode(&f); err != nil {
		return nil, &EnvelopeFaultError{Range: f.Range, Class: FaultParse, Err: fmt.Errorf("decode shard file: %w", err)}
	}
	if err := f.VerifyPayload(); err != nil {
		return nil, err
	}
	return &f, nil
}

// EncodeShardFile renders a shard envelope with the same stable
// formatting as the merged document.
func EncodeShardFile(f *ShardFile) ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
