package exp

import (
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"suu/internal/opt"
	"suu/internal/sim"
	"suu/internal/workload"
)

// TestExactSolverSpeedupSmoke is the CI bench-smoke assertion for the
// exact solver: the layered value iteration must solve independent
// 12×4 (4096 closed states, far beyond the old DP's comfort zone) at
// least 10× faster than the exhaustive Malewicz-style DP on the same
// instance, agreeing on the optimum, and must clear the n=20 chains
// frontier (m=4) in under five seconds. It only runs when
// BENCH_SMOKE=1 — wall-clock ratios are meaningless under the race
// detector or a loaded laptop — and skips on single-core runners.
// Value parity across worker counts is pinned separately by the opt
// package's tests; this gate is about throughput and reach.
func TestExactSolverSpeedupSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the exact-solver speedup gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("speedup gate needs ≥2 cores for stable timing")
	}

	seed := sim.SeedFor(1, "bench-exact")
	ind := workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: seed})
	viMS, viVal := -1.0, 0.0
	var st *opt.Stats
	for try := 0; try < 3; try++ {
		start := time.Now()
		_, v, s, err := opt.OptimalRegimenParallel(ind, 0)
		if err != nil {
			t.Fatalf("independent-12x4 value iteration: %v", err)
		}
		if ms := time.Since(start).Seconds() * 1000; viMS < 0 || ms < viMS {
			viMS, viVal, st = ms, v, s
		}
	}
	start := time.Now()
	_, oracleVal, err := opt.OptimalRegimenExhaustive(ind)
	if err != nil {
		t.Fatalf("independent-12x4 exhaustive DP: %v", err)
	}
	oracleMS := time.Since(start).Seconds() * 1000
	if math.Abs(viVal-oracleVal) > 1e-9 {
		t.Fatalf("independent-12x4: value iteration %v disagrees with the exhaustive DP %v", viVal, oracleVal)
	}
	ratio := oracleMS / viMS
	t.Logf("exact 12x4 value iteration (%d states, %d transitions): vi %.0fms oracle %.0fms ratio %.1fx",
		st.States, st.Transitions, viMS, oracleMS, ratio)
	if ratio < 10 {
		t.Errorf("value iteration on independent-12x4 only %.1fx faster than the exhaustive DP (want ≥10x): vi %.0fms oracle %.0fms",
			ratio, viMS, oracleMS)
	}

	ch := workload.Chains(workload.Config{Jobs: 20, Machines: 4, Seed: seed}, 5)
	start = time.Now()
	_, _, cst, err := opt.OptimalRegimenParallel(ch, 0)
	if err != nil {
		t.Fatalf("chains-20x4 value iteration: %v", err)
	}
	chMS := time.Since(start).Seconds() * 1000
	t.Logf("exact chains-20x4 frontier: %d states (%d layers) in %.0fms", cst.States, cst.Layers, chMS)
	if chMS > 5000 {
		t.Errorf("chains-20x4 value iteration took %.0fms (want <5000ms)", chMS)
	}
}
