package exp

import "strings"

// A GridDriver is an experiment whose whole Monte Carlo surface is a
// declared GridPlan: the plan enumerates every cell up front and the
// renderer is a pure function of the evaluated results. That split is
// what makes the table shardable — suu-bench can execute any cell
// range of the plan in any process, and a coordinator that merges the
// shards renders the exact sequential table (timing columns aside,
// which measure the producing process, not the experiment).
type GridDriver struct {
	// ID is the table id ("T13"); CLI lookup is case-insensitive.
	ID string
	// Plan declares the cell surface for a config (Quick changes
	// sizes, so the plan — and its fingerprint — depends on cfg).
	Plan func(Config) GridPlan
	// Render builds the table from results in Cells() order.
	Render func(Config, []GridResult) *Table
}

// GridDrivers lists the shardable tables. Drivers in all.go run these
// through runGridDriver, so the sequential path and the shard path
// share one plan and one renderer by construction. T10 is the solver
// sweep, A2 a declarative parameter ablation (per-spec overrides), A5
// an ablation with a custom cell evaluator — together they cover the
// three ways a table becomes shardable.
var GridDrivers = []GridDriver{
	{ID: "T13", Plan: t13Plan, Render: renderT13},
	{ID: "T14", Plan: t14Plan, Render: renderT14},
	{ID: "T15", Plan: t15Plan, Render: renderT15},
	{ID: "T10", Plan: t10Plan, Render: renderT10},
	{ID: "A2", Plan: a2Plan, Render: renderA2},
	{ID: "A5", Plan: a5Plan, Render: renderA5},
}

// GridDriverByID resolves a shardable table by id, case-insensitively.
func GridDriverByID(id string) (GridDriver, bool) {
	for _, g := range GridDrivers {
		if strings.EqualFold(g.ID, id) {
			return g, true
		}
	}
	return GridDriver{}, false
}

// GridDriverIDs lists the shardable table ids for CLI error messages.
func GridDriverIDs() string {
	ids := make([]string, len(GridDrivers))
	for i, g := range GridDrivers {
		ids[i] = g.ID
	}
	return strings.Join(ids, ", ")
}

// runGridDriver is the sequential path: evaluate the full plan on the
// in-process worker pool and render.
func runGridDriver(cfg Config, g GridDriver) *Table {
	return g.Render(cfg, RunPlan(cfg, g.Plan(cfg)))
}

// specSegments returns the length of each spec's cell block, for
// renderers that aggregate per spec (T13 computes a best-of per
// point).
func specSegments(p GridPlan) []int {
	out := make([]int, len(p.Specs))
	for i, s := range p.Specs {
		out[i] = s.NumCells()
	}
	return out
}
