package exp

import (
	"math/rand"
	"time"

	"suu/internal/core"
	"suu/internal/sim"
	"suu/internal/workload"
)

// A1 ablates the random-delay step of Section 4.1: congestion and
// flattened length with and without delays.
func A1(cfg Config) *Table {
	t := &Table{
		ID:         "A1",
		Title:      "Ablation: random delays on vs. off (chains pipeline)",
		PaperBound: "§4.1: delays trade schedule length (×congestion) for feasibility",
		Header:     []string{"n", "m", "chains", "cong off", "len off", "cong on", "len on"},
	}
	type pt struct{ n, m, c int }
	sweep := []pt{{16, 4, 4}, {32, 6, 8}, {64, 8, 12}}
	if cfg.Quick {
		sweep = sweep[:2]
	}
	type row struct {
		cells []string
		ok    bool
	}
	rows := runCells(cfg, len(sweep), func(i int) row {
		p := sweep[i]
		seed := sim.SeedFor(cfg.Seed, "A1", int64(p.n), int64(p.m), int64(p.c))
		in := workload.Chains(workload.Config{Jobs: p.n, Machines: p.m, Seed: seed}, p.c)
		chains, err := in.Prec.Chains()
		if err != nil {
			return row{}
		}
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			return row{}
		}
		ints, err := core.RoundLP(in, fs, 0.5)
		if err != nil {
			return row{}
		}
		pseudo := core.BuildPseudo(in, chains, ints.X)
		congOff := pseudo.MaxCongestion()
		lenOff := pseudo.Flatten().Len()
		// SplitMix64 via sim.Stream, matching the grid path's seed
		// derivation (see chains.go).
		prng := rand.New(sim.NewStream(sim.SeedFor(seed, "delays")))
		delays, congOn := pseudo.BestDelays(pseudo.MaxLoad(), 64, prng)
		lenOn := pseudo.WithDelays(delays).Flatten().Len()
		return row{cells: []string{d(p.n), d(p.m), d(p.c), d(congOff), d(lenOff), d(congOn), d(lenOn)}, ok: true}
	})
	for _, r := range rows {
		if r.ok {
			t.Rows = append(t.Rows, r.cells)
		}
	}
	t.Notes = "Flattening multiplies length by per-step congestion; delays spread the collisions, shortening the flattened schedule when chains overlap heavily."
	return t
}

// A2 sweeps the replication factor σ of the schedule-replication step:
// the paper's σ = 16⌈log₂ n⌉ guarantees whp completion inside the
// prefix; smaller σ gives shorter schedules that lean on the tail.
// The sweep is declared, not hand-rolled: one spec per σ carrying a
// ParamOverrides, which makes A2 a shardable GridDriver like any
// other grid table — every spec shares the same workload point, so
// all factors are evaluated on the same generated instance with the
// same simulation streams (paired comparison by construction).
func A2(cfg Config) *Table {
	g, _ := GridDriverByID("A2")
	return runGridDriver(cfg, g)
}

// a2Factors is the σ sweep; plan and renderer share it.
var a2Factors = []int{1, 2, 4, 8, 16}

func a2Plan(cfg Config) GridPlan {
	point := GridPoint{Scenario: "independent", Jobs: 16, Machines: 5}
	plan := GridPlan{ID: "A2"}
	for _, f := range a2Factors {
		plan.Specs = append(plan.Specs, GridSpec{
			Points:    []GridPoint{point},
			Solvers:   []string{"lp-oblivious"},
			Trials:    1,
			Overrides: &ParamOverrides{ReplicationFactor: f},
		})
	}
	return plan
}

func renderA2(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "A2",
		Title:      "Ablation: replication factor σ sweep (independent jobs, LP schedule)",
		PaperBound: "§4.1 uses σ = 16·log n for the 1−1/n² completion bound",
		Header:     []string{"repl factor", "prefix len", "E[makespan]"},
	}
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		t.Rows = append(t.Rows, []string{d(a2Factors[i]), d(r.PrefixLen), f2(r.Mean)})
	}
	t.Notes = "Small σ is much shorter and the round-robin tail safely absorbs stragglers — the paper's constant is set for the worst case, not the average one."
	return t
}

// A3 ablates the Theorem 4.1 rounding against naive ceil-everything
// rounding: load and per-job mass.
func A3(cfg Config) *Table {
	t := &Table{
		ID:         "A3",
		Title:      "Ablation: Thm 4.1 flow rounding vs. naive ceiling",
		PaperBound: "Thm 4.1: load ≤ O(log m)·T* with mass ≥ 1/2",
		Header:     []string{"n", "m", "T*", "flow: load", "flow: min mass", "naive: load", "naive: min mass"},
	}
	type pt struct{ n, m int }
	sweep := []pt{{8, 12}, {12, 20}, {16, 32}}
	type row struct {
		cells []string
		ok    bool
	}
	rows := runCells(cfg, len(sweep), func(i int) row {
		p := sweep[i]
		seed := sim.SeedFor(cfg.Seed, "A3", int64(p.n), int64(p.m))
		in := workload.Independent(workload.Config{Jobs: p.n, Machines: p.m, Lo: 0.02, Hi: 0.3, Seed: seed})
		chains := make([][]int, p.n)
		for j := 0; j < p.n; j++ {
			chains[j] = []int{j}
		}
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			return row{}
		}
		ints, err := core.RoundLP(in, fs, 0.5)
		if err != nil {
			return row{}
		}
		// Naive: ceil every positive entry.
		naive := &core.IntSolution{Jobs: fs.Jobs, X: make([][]int, in.M)}
		for mi := range naive.X {
			naive.X[mi] = make([]int, in.N)
			for j := 0; j < in.N; j++ {
				if fs.X[mi][j] > 1e-12 {
					naive.X[mi][j] = ceilInt(fs.X[mi][j])
				}
			}
		}
		return row{cells: []string{
			d(p.n), d(p.m), f2(fs.T),
			d(ints.Load()), f3(ints.MinMass(in)),
			d(naive.Load()), f3(naive.MinMass(in)),
		}, ok: true}
	})
	for _, r := range rows {
		if r.ok {
			t.Rows = append(t.Rows, r.cells)
		}
	}
	t.Notes = "Naive ceiling keeps mass but can blow the load up to the number of fractional entries per machine; the flow rounding concentrates steps into one probability bucket per job."
	return t
}

func ceilInt(x float64) int {
	c := int(x)
	if float64(c) < x {
		c++
	}
	return c
}

// A4 compares construction cost and output quality of the two
// oblivious constructions for independent jobs. It deliberately stays
// sequential and on the raw core API: the point is wall-clock
// construction cost (and the LP lift λ, which the registry result
// does not carry), and concurrent cells would pollute the timings.
func A4(cfg Config) *Table {
	t := &Table{
		ID:         "A4",
		Title:      "Ablation: combinatorial (Thm 3.6) vs. LP (Thm 4.5) construction cost",
		PaperBound: "both polynomial; the LP route pays simplex, the combinatorial route pays doubling",
		Header:     []string{"n", "m", "comb: build µs", "comb: prefix", "lp: build µs", "lp: prefix", "lp lift λ"},
	}
	sizes := [][2]int{{8, 4}, {16, 6}, {32, 8}, {64, 12}}
	if cfg.Quick {
		sizes = sizes[:3]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		seed := sim.SeedFor(cfg.Seed, "A4", int64(n), int64(m))
		in := workload.Independent(workload.Config{Jobs: n, Machines: m, Seed: seed})
		start := time.Now()
		comb, err := core.SUUIOblivious(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			continue
		}
		combT := time.Since(start).Microseconds()
		start = time.Now()
		lpres, err := core.SUUIndependentLP(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			continue
		}
		lpT := time.Since(start).Microseconds()
		t.Rows = append(t.Rows, []string{
			d(n), d(m),
			d(int(combT)), d(comb.Schedule.Len()),
			d(int(lpT)), d(lpres.Schedule.Len()),
			d(lpres.Round.Lambda),
		})
	}
	return t
}
