package exp

import (
	"math"
	"math/rand"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T6 validates Theorem 4.4: the chains pipeline stays within the
// polylog bound of the LP lower bound across n, m, and chain-count
// sweeps.
func T6(cfg Config) *Table {
	t := &Table{
		ID:         "T6",
		Title:      "Disjoint-chains pipeline ratio vs. LP lower bound",
		PaperBound: "Theorem 4.4: E[makespan] ≤ O(log m·log n·log(n+m)/loglog(n+m))·T_OPT",
		Header:     []string{"n", "m", "chains", "T*", "Πmax", "congestion", "mean ratio", "ratio/bound-shape"},
	}
	type pt struct{ n, m, c int }
	sweep := []pt{{6, 3, 2}, {12, 4, 3}, {24, 6, 4}, {48, 8, 6}}
	if cfg.Quick {
		sweep = sweep[:3]
	}
	trials := cfg.trials()
	type cell struct {
		ratio, tstar  float64
		maxLoad, cong int
		ok            bool
	}
	cells := runSweep(cfg, len(sweep), trials, func(s, k int) cell {
		p := sweep[s]
		seed := sim.SeedFor(cfg.Seed, "T6", int64(p.n), int64(p.m), int64(p.c), int64(k))
		in := workload.Chains(workload.Config{Jobs: p.n, Machines: p.m, Seed: seed}, p.c)
		sol, _ := solve.Get("chains")
		res, err := sol.Build(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		mean := estimate(in, res.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
		if mean < 0 || res.LowerBound <= 0 {
			return cell{}
		}
		return cell{
			ratio:   mean / res.LowerBound,
			tstar:   res.LPValue,
			maxLoad: res.MaxLoad,
			cong:    res.Congestion,
			ok:      true,
		}
	})
	for s, p := range sweep {
		var ratios []float64
		var tstar float64
		maxLoad, cong := 0, 0
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			ratios = append(ratios, c.ratio)
			tstar, maxLoad, cong = c.tstar, c.maxLoad, c.cong
		}
		if len(ratios) == 0 {
			continue
		}
		mr := stats.Mean(ratios)
		shape := boundShapeChains(p.n, p.m)
		t.Rows = append(t.Rows, []string{
			d(p.n), d(p.m), d(p.c), f2(tstar), d(maxLoad), d(cong), f2(mr), f2(mr / shape),
		})
	}
	t.Notes = "bound-shape = log₂m·log₂n·log₂(n+m)/loglog₂(n+m); the normalized column should stay roughly flat."
	return t
}

func boundShapeChains(n, m int) float64 {
	lm := stats.Log2(float64(m) + 1)
	ln := stats.Log2(float64(n) + 1)
	lnm := stats.Log2(float64(n+m) + 1)
	ll := math.Log2(lnm + 2)
	return lm * ln * lnm / ll
}

// T7 validates the random-delay congestion lemma of Section 4.1
// (after Shmoys–Stein–Wein): delays drawn from [0, Π_max] reduce the
// max per-step machine congestion to O(log(n+m)/loglog(n+m)).
func T7(cfg Config) *Table {
	t := &Table{
		ID:         "T7",
		Title:      "Random-delay congestion on chain pseudo-schedules",
		PaperBound: "§4.1: with delays from [0,Π_max], congestion = O(log(n+m)/loglog(n+m)) whp",
		Header:     []string{"n", "m", "chains", "Πmax", "cong (no delay)", "cong (delayed)", "log(n+m)/loglog(n+m)"},
	}
	type pt struct{ n, m, c int }
	sweep := []pt{{12, 3, 4}, {24, 4, 6}, {48, 6, 8}, {96, 8, 12}}
	if cfg.Quick {
		sweep = sweep[:3]
	}
	type row struct {
		cells []string
		ok    bool
	}
	rows := runCells(cfg, len(sweep), func(i int) row {
		p := sweep[i]
		seed := sim.SeedFor(cfg.Seed, "T7", int64(p.n), int64(p.m), int64(p.c))
		in := workload.Chains(workload.Config{Jobs: p.n, Machines: p.m, Seed: seed}, p.c)
		chains, err := in.Prec.Chains()
		if err != nil {
			return row{}
		}
		fs, err := core.SolveLP1(in, chains, 0.5)
		if err != nil {
			return row{}
		}
		ints, err := core.RoundLP(in, fs, 0.5)
		if err != nil {
			return row{}
		}
		pseudo := core.BuildPseudo(in, chains, ints.X)
		before := pseudo.MaxCongestion()
		maxLoad := pseudo.MaxLoad()
		// SplitMix64 via sim.Stream, not math/rand's LCG: every derived
		// stream in the drivers goes through sim.SeedFor so cells stay
		// hermetic across process shards.
		prng := rand.New(sim.NewStream(sim.SeedFor(seed, "delays")))
		_, after := pseudo.BestDelays(maxLoad, 64, prng)
		lnm := stats.Log2(float64(p.n+p.m) + 1)
		shape := lnm / math.Log2(lnm+2)
		return row{cells: []string{
			d(p.n), d(p.m), d(p.c), d(maxLoad), d(before), d(after), f2(shape),
		}, ok: true}
	})
	for _, r := range rows {
		if r.ok {
			t.Rows = append(t.Rows, r.cells)
		}
	}
	t.Notes = "The delayed congestion should track the shape column (up to constants) while the undelayed one grows with the chain count."
	return t
}

// windowCheck is used by tests: the chains pipeline's final prefix
// must respect AccuMass-C condition (ii).
func windowCheck(in *model.Instance, steps []sched.Assignment) error {
	return sched.CheckMassWindows(in, steps, 0.5)
}
