// Package exp contains the experiment drivers that regenerate every
// table of EXPERIMENTS.md — the empirical validation of each theorem
// of Lin & Rajaraman (SPAA 2007) — plus the ablations called out in
// DESIGN.md. Each driver returns a Table; cmd/suu-bench renders them.
//
// The drivers are built on the scenario-grid harness in grid.go:
// every Monte Carlo cell (one instance × one solver × one trial)
// derives its seeds from its own coordinates and evaluates on a
// worker pool, so tables are bit-identical at any Workers setting and
// any GOMAXPROCS while multi-core runs cut wall-clock time.
//
// The sharding layer (shard.go) cuts a sweep into fingerprinted,
// gap-retryable cell ranges for distributed execution; the sweep
// fingerprint excludes Workers and every other setting that must not
// change results, so envelopes from different runners merge only if
// they were cut from the same (config, plan) pair. The hashing
// itself lives in internal/fingerprint.
//
// This package also owns the machine-readable benchmark record: the
// SimBenchFile written as BENCH_sim.json by cmd/suu-bench, whose
// per-section structs (engine gates, LP bench, exact-solver scaling,
// grid harness, dispatch, serve) are documented field by field in
// docs/BENCH_SCHEMA.md. The CI gates read that file's sections, so
// its shape is a contract: field renames are schema changes.
package exp
