package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestShardRangesTile(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 3}, {3, 4}, {0, 2}, {7, 1}, {16, 16}, {5, 8},
	} {
		rs := ShardRanges(tc.n, tc.k)
		if len(rs) != tc.k {
			t.Fatalf("ShardRanges(%d,%d): %d ranges", tc.n, tc.k, len(rs))
		}
		next := 0
		for _, r := range rs {
			if r.Lo != next || r.Hi < r.Lo {
				t.Fatalf("ShardRanges(%d,%d): bad tiling at %v", tc.n, tc.k, r)
			}
			next = r.Hi
		}
		if next != tc.n {
			t.Fatalf("ShardRanges(%d,%d): covers [0:%d), want [0:%d)", tc.n, tc.k, next, tc.n)
		}
		// Near-equal: sizes differ by at most one.
		min, max := tc.n, 0
		for _, r := range rs {
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("ShardRanges(%d,%d): shard sizes span %d..%d", tc.n, tc.k, min, max)
		}
	}
}

func TestParseCellRangeAndShard(t *testing.T) {
	for _, tc := range []struct {
		s      string
		lo, hi int
	}{
		{"0:5", 0, 5}, {"2:7", 2, 7}, {":4", 0, 4}, {"3:", 3, 10}, {":", 0, 10},
	} {
		r, err := ParseCellRange(tc.s, 10)
		if err != nil || r.Lo != tc.lo || r.Hi != tc.hi {
			t.Errorf("ParseCellRange(%q) = %v, %v; want [%d:%d)", tc.s, r, err, tc.lo, tc.hi)
		}
	}
	for _, bad := range []string{"5:2", "-1:3", "0:11", "abc", "1", "x:y"} {
		if _, err := ParseCellRange(bad, 10); err == nil {
			t.Errorf("ParseCellRange(%q) accepted", bad)
		}
	}
	if r, err := ParseShard("1/3", 10); err != nil || (r != CellRange{Lo: 4, Hi: 7}) {
		t.Errorf("ParseShard(1/3, 10) = %v, %v; want [4:7)", r, err)
	}
	for _, bad := range []string{"3/3", "-1/3", "0/0", "1", "a/b"} {
		if _, err := ParseShard(bad, 10); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// shardTestPlan is a small cheap plan for merge-layer tests: two
// specs with different solver sets, 12 cells total, tiny instances.
func shardTestPlan() GridPlan {
	return GridPlan{ID: "shard-test", Specs: []GridSpec{
		{
			Points:  []GridPoint{{Scenario: "independent", Jobs: 6, Machines: 2}},
			Solvers: []string{"lp-oblivious", "greedy-maxp"},
			Trials:  3,
		},
		{
			Points:  []GridPoint{{Scenario: "chains", Jobs: 6, Machines: 2, Arg: 2}},
			Solvers: []string{"chains", "round-robin"},
			Trials:  3,
		},
	}}
}

func shardTestConfig() Config { return Config{Quick: true, Seed: 5, Workers: 1} }

// runShards cuts the plan into the given ranges and runs each as its
// own shard envelope.
func runShards(cfg Config, p GridPlan, rs []CellRange) []*ShardFile {
	out := make([]*ShardFile, len(rs))
	for i, r := range rs {
		out[i] = RunShard(cfg, ShardSpec{Plan: p, Range: r})
	}
	return out
}

// TestMergeShuffledShardOrder: shard files may arrive in any order;
// Merge sorts by range and still produces the canonical bytes.
func TestMergeShuffledShardOrder(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	want, err := RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	shards := runShards(cfg, plan, ShardRanges(plan.NumCells(), 4))
	shuffled := []*ShardFile{shards[2], shards[0], shards[3], shards[1]}
	m, err := Merge(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("shuffled-order merge differs from sequential canonical output")
	}
}

// TestMergeRejectsOverlap: two shards covering the same cells is a
// row-computed-twice hazard, not a tolerable redundancy.
func TestMergeRejectsOverlap(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	n := plan.NumCells()
	shards := runShards(cfg, plan, []CellRange{{0, 8}, {6, n}})
	if _, err := Merge(shards); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping shards: err = %v, want overlap report", err)
	}
}

// TestMergeRejectsDuplicateCell: a shard whose payload repeats a cell
// index (a buggy or malicious producer) must fail the index check.
func TestMergeRejectsDuplicateCell(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	shards := runShards(cfg, plan, ShardRanges(plan.NumCells(), 2))
	shards[0].Cells[2] = shards[0].Cells[1] // duplicate index, still right count
	if _, err := Merge(shards); err == nil || !strings.Contains(err.Error(), "index") {
		t.Errorf("duplicated cell: err = %v, want index mismatch", err)
	}
	// A shard delivering the wrong number of rows for its range is
	// caught before the index walk.
	shards = runShards(cfg, plan, ShardRanges(plan.NumCells(), 2))
	shards[1].Cells = append(shards[1].Cells, shards[1].Cells[0])
	if _, err := Merge(shards); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Errorf("extra row: err = %v, want row-count mismatch", err)
	}
}

// TestMergeAcceptsEmptyShards: zero-length ranges are legal anywhere
// in the tiling — mid-plan (an explicit a:a range) and at the tail
// (an N-way split of fewer-than-N cells) — but an empty range
// claiming rows is not.
func TestMergeAcceptsEmptyShards(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	n := plan.NumCells()
	want, err := RunMerged(cfg, plan).JSON()
	if err != nil {
		t.Fatal(err)
	}
	shards := runShards(cfg, plan, []CellRange{{0, 5}, {5, 5}, {5, n}, {n, n}})
	m, err := Merge(shards)
	if err != nil {
		t.Fatalf("empty shards rejected: %v", err)
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merge with empty shards differs from sequential canonical output")
	}
	bad := runShards(cfg, plan, []CellRange{{0, 5}, {5, 5}, {5, n}})
	bad[1].Cells = bad[0].Cells[:1]
	if _, err := Merge(bad); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Errorf("empty range carrying rows: err = %v, want row-count mismatch", err)
	}
}

// TestMergeRejectsMissingRange: a lost worker must read as "missing
// cells", both in the middle and at the tail.
func TestMergeRejectsMissingRange(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	shards := runShards(cfg, plan, ShardRanges(plan.NumCells(), 3))
	if _, err := Merge([]*ShardFile{shards[0], shards[2]}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("middle gap: err = %v, want missing range", err)
	}
	if _, err := Merge(shards[:2]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing tail: err = %v, want missing range", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Error("zero shards merged")
	}
}

// TestMergeRejectsFingerprintMismatch: shards cut from a different
// seed, sizing, or plan must not splice.
func TestMergeRejectsFingerprintMismatch(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	n := plan.NumCells()
	a := RunShard(cfg, ShardSpec{Plan: plan, Range: CellRange{0, 6}})
	otherSeed := cfg
	otherSeed.Seed = 6
	b := RunShard(otherSeed, ShardSpec{Plan: plan, Range: CellRange{6, n}})
	if _, err := Merge([]*ShardFile{a, b}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("seed mismatch: err = %v, want fingerprint mismatch", err)
	}
	// Same config, structurally different plan.
	other := shardTestPlan()
	other.Specs[1].Solvers = []string{"chains"}
	c := RunShard(cfg, ShardSpec{Plan: other, Range: CellRange{6, other.NumCells()}})
	if _, err := Merge([]*ShardFile{a, c}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("plan mismatch: err = %v, want fingerprint mismatch", err)
	}
	// Foreign schema version.
	d := RunShard(cfg, ShardSpec{Plan: plan, Range: CellRange{6, n}})
	d.SchemaVersion = ShardSchemaVersion + 1
	if _, err := Merge([]*ShardFile{a, d}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch: err = %v, want schema report", err)
	}
}

// TestShardEnvelopeRoundTrips: encode → decode is lossless, and the
// decoder rejects foreign documents instead of zero-filling them.
func TestShardEnvelopeRoundTrips(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	f := RunShard(cfg, ShardSpec{Plan: plan, Range: CellRange{0, 6}})
	data, err := EncodeShardFile(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeShardFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint != f.Fingerprint || g.Range != f.Range || len(g.Cells) != len(f.Cells) {
		t.Errorf("round trip lost fields: %+v vs %+v", g, f)
	}
	if g.Cells[3] != f.Cells[3] {
		t.Errorf("cell round trip: %+v vs %+v", g.Cells[3], f.Cells[3])
	}
	if _, err := DecodeShardFile([]byte(`{"schema_version":1,"surprise":true}`)); err == nil {
		t.Error("decoder accepted unknown fields")
	}
	if _, err := DecodeShardFile([]byte(`not json`)); err == nil {
		t.Error("decoder accepted garbage")
	}
}

// TestSingleCellRangeMatchesFullRun is the hermeticity assertion the
// tentpole rests on: executing any one cell in isolation (the extreme
// shard) reproduces the full run's value for that index, so the
// sim-layer seed plumbing is untouched by sharding — by construction,
// not by luck.
func TestSingleCellRangeMatchesFullRun(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	full := stripGridTimings(RunPlan(cfg, plan))
	for _, i := range []int{0, 3, 7, len(full) - 1} {
		got := stripGridTimings(RunPlanRange(cfg, plan, CellRange{Lo: i, Hi: i + 1}))
		if len(got) != 1 {
			t.Fatalf("range [%d:%d) returned %d results", i, i+1, len(got))
		}
		if fmt.Sprintf("%+v", got[0]) != fmt.Sprintf("%+v", full[i]) {
			t.Errorf("cell %d differs in isolation:\nfull:  %+v\nrange: %+v", i, full[i], got[0])
		}
	}
}

// requireShardedBytesIdentical runs the plan sharded N ways in-process
// and requires the merged JSON to equal the sequential canonical
// bytes.
func requireShardedBytesIdentical(t *testing.T, cfg Config, plan GridPlan, want []byte, n int) {
	t.Helper()
	shards := runShards(cfg, plan, ShardRanges(plan.NumCells(), n))
	m, err := Merge(shards)
	if err != nil {
		t.Fatalf("%s sharded %d ways: %v", plan.ID, n, err)
	}
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: merge of %d shards is not byte-identical to the sequential run", plan.ID, n)
	}
}

// TestShardMergeByteIdenticalAllGridDrivers is the acceptance bar:
// for every shardable table — T13, T14, the T10 solver sweep, and the
// A2/A5 ablation grids (override- and custom-evaluator cells
// included) — merging N ∈ {2, 3, 8} shard outputs reproduces the
// single-process canonical JSON byte for byte. N=8 on T14's 3 cells
// additionally exercises empty shards. The CI shard→merge job
// enforces the same equality across real OS processes.
func TestShardMergeByteIdenticalAllGridDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte Carlo shard/merge sweep in -short mode")
	}
	cfg := Config{Quick: true, Seed: 7}
	for _, g := range GridDrivers {
		plan := g.Plan(cfg)
		want, err := RunMerged(cfg, plan).JSON()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 3, 8} {
			requireShardedBytesIdentical(t, cfg, plan, want, n)
		}
		// The rendered table from merged results matches the sequential
		// driver's, timing columns masked (they measure the producing
		// process).
		m, err := Merge(runShards(cfg, plan, ShardRanges(plan.NumCells(), 3)))
		if err != nil {
			t.Fatal(err)
		}
		fromMerged := g.Render(cfg, m.Results())
		direct := g.Render(cfg, RunPlan(cfg, plan))
		maskTimingColumns(fromMerged)
		maskTimingColumns(direct)
		if fromMerged.Markdown() != direct.Markdown() {
			t.Errorf("%s: table rendered from merged shards differs:\n--- merged\n%s\n--- direct\n%s",
				g.ID, fromMerged.Markdown(), direct.Markdown())
		}
	}
}

// TestPlanWrapsSingleSpec: any bare GridSpec becomes a shardable plan
// via Plan — the ad-hoc entry point for sweeps that are a plain cross
// product.
func TestPlanWrapsSingleSpec(t *testing.T) {
	spec := GridSpec{
		Points:  []GridPoint{{Scenario: "independent", Jobs: 4, Machines: 2}},
		Solvers: []string{"greedy-maxp", "round-robin"},
		Trials:  2,
	}
	p := Plan("adhoc", spec)
	if p.ID != "adhoc" || p.NumCells() != 4 || len(p.Cells()) != 4 {
		t.Fatalf("Plan wrap: id %q, %d cells (len %d), want adhoc/4/4", p.ID, p.NumCells(), len(p.Cells()))
	}
	cfg := shardTestConfig()
	want, err := RunMerged(cfg, p).JSON()
	if err != nil {
		t.Fatal(err)
	}
	requireShardedBytesIdentical(t, cfg, p, want, 2)
}

// TestFingerprintSensitivity: the fingerprint must move with anything
// that changes cell values, and must NOT move with worker count.
func TestFingerprintSensitivity(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	base := Fingerprint(cfg, plan)
	pool := cfg
	pool.Workers = 8
	if Fingerprint(pool, plan) != base {
		t.Error("fingerprint depends on worker count")
	}
	seed := cfg
	seed.Seed++
	if Fingerprint(seed, plan) == base {
		t.Error("fingerprint blind to seed")
	}
	quick := cfg
	quick.Quick = false
	if Fingerprint(quick, plan) == base {
		t.Error("fingerprint blind to Quick sizing")
	}
	other := shardTestPlan()
	other.Specs[0].Trials = 4
	if Fingerprint(cfg, other) == base {
		t.Error("fingerprint blind to spec shape")
	}
}

// TestCellRangeSplit: sub-slicing tiles the parent range exactly with
// near-equal sizes, so straggler re-slices can never change coverage.
func TestCellRangeSplit(t *testing.T) {
	for _, tc := range []struct{ lo, hi, k int }{
		{4, 14, 3}, {0, 1, 2}, {7, 7, 2}, {3, 19, 1}, {5, 9, 4},
	} {
		r := CellRange{Lo: tc.lo, Hi: tc.hi}
		parts := r.Split(tc.k)
		if len(parts) != tc.k {
			t.Fatalf("%v.Split(%d): %d parts", r, tc.k, len(parts))
		}
		next := r.Lo
		for _, p := range parts {
			if p.Lo != next || p.Hi < p.Lo {
				t.Fatalf("%v.Split(%d): bad tiling at %v", r, tc.k, p)
			}
			if !r.Contains(p) {
				t.Fatalf("%v.Split(%d): %v escapes the parent", r, tc.k, p)
			}
			next = p.Hi
		}
		if next != r.Hi {
			t.Fatalf("%v.Split(%d): covers to %d, want %d", r, tc.k, next, r.Hi)
		}
	}
	if !(CellRange{2, 5}).Overlaps(CellRange{4, 9}) || (CellRange{2, 5}).Overlaps(CellRange{5, 9}) {
		t.Error("Overlaps: half-open boundary wrong")
	}
	if (CellRange{2, 2}).Overlaps(CellRange{0, 9}) {
		t.Error("Overlaps: empty range overlaps")
	}
}

// TestEnvelopeChecksumDetectsCorruption is the corruption contract:
// RunShard seals the payload, decode verifies it, and a flipped bit in
// the payload region fails decode with a typed fault that unwraps to
// the re-issuable *MissingRangeError for the envelope's range.
func TestEnvelopeChecksumDetectsCorruption(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	f := RunShard(cfg, ShardSpec{Plan: plan, Range: CellRange{0, 6}})
	if f.PayloadSHA256 == "" {
		t.Fatal("RunShard left the envelope unsealed")
	}
	if err := f.VerifyPayload(); err != nil {
		t.Fatalf("fresh envelope fails verification: %v", err)
	}
	data, err := EncodeShardFile(f)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one digit inside the payload (a mean value), keeping the
	// JSON valid so only the checksum can catch it.
	i := bytes.Index(data, []byte(`"mean": `))
	if i < 0 {
		t.Fatal("no mean field in envelope")
	}
	corrupt := append([]byte(nil), data...)
	j := i + len(`"mean": `)
	if corrupt[j] == '9' {
		corrupt[j] = '8'
	} else {
		corrupt[j] = '9'
	}
	_, err = DecodeShardFile(corrupt)
	var fault *EnvelopeFaultError
	if !errors.As(err, &fault) || fault.Class != FaultChecksum {
		t.Fatalf("corrupt envelope decoded: err = %v, want checksum fault", err)
	}
	var miss *MissingRangeError
	if !errors.As(err, &miss) || (miss.Range != CellRange{0, 6}) {
		t.Errorf("fault does not unwrap to the re-issuable range: %v", err)
	}
	// Timings are provenance, not payload: a damaged wall-clock must
	// NOT fail the checksum (merged bytes are unaffected by it).
	g := *f
	g.WallMS = f.WallMS + 1000
	if err := g.VerifyPayload(); err != nil {
		t.Errorf("timing damage failed the payload checksum: %v", err)
	}
}

// TestValidateShardFile: every way a delivered envelope can lie is a
// typed fault for the requested range.
func TestValidateShardFile(t *testing.T) {
	cfg, plan := shardTestConfig(), shardTestPlan()
	total := plan.NumCells()
	want := CellRange{0, 6}
	fp := Fingerprint(cfg, plan)
	fresh := func() *ShardFile { return RunShard(cfg, ShardSpec{Plan: plan, Range: want}) }
	if err := ValidateShardFile(fresh(), want, fp, total); err != nil {
		t.Fatalf("sound envelope rejected: %v", err)
	}
	for _, tc := range []struct {
		name  string
		class string
		mutf  func(*ShardFile)
	}{
		{"misdelivered range", FaultMisdelivery, func(f *ShardFile) { f.Range = CellRange{6, 12}; f.SealPayload() }},
		{"foreign fingerprint", FaultFingerprint, func(f *ShardFile) { f.Fingerprint = "feedfacefeedface"; f.SealPayload() }},
		{"wrong total", FaultFingerprint, func(f *ShardFile) { f.TotalCells = total + 1; f.SealPayload() }},
		{"dropped row", FaultMisindex, func(f *ShardFile) { f.Cells = f.Cells[:len(f.Cells)-1]; f.SealPayload() }},
		{"shifted indices", FaultMisindex, func(f *ShardFile) {
			for i := range f.Cells {
				f.Cells[i].Index++
			}
			f.SealPayload()
		}},
		{"flipped payload", FaultChecksum, func(f *ShardFile) { f.Cells[2].Mean += 1 }},
		{"foreign schema", FaultParse, func(f *ShardFile) { f.SchemaVersion++; f.SealPayload() }},
	} {
		f := fresh()
		tc.mutf(f)
		err := ValidateShardFile(f, want, fp, total)
		var fault *EnvelopeFaultError
		if !errors.As(err, &fault) {
			t.Errorf("%s: err = %v, want EnvelopeFaultError", tc.name, err)
			continue
		}
		if fault.Class != tc.class {
			t.Errorf("%s: class %s, want %s", tc.name, fault.Class, tc.class)
		}
		var miss *MissingRangeError
		if !errors.As(err, &miss) || miss.Range != want {
			t.Errorf("%s: fault does not unwrap to MissingRangeError{%v}: %v", tc.name, want, err)
		}
	}
}
