package exp

import (
	"strings"
	"testing"

	"suu/internal/workload"
)

var quickCfg = Config{Quick: true, Seed: 7}

func checkTable(t *testing.T, tb *Table, minRows int) {
	t.Helper()
	if tb == nil {
		t.Fatal("nil table")
	}
	if len(tb.Rows) < minRows {
		t.Fatalf("%s: %d rows, want >= %d", tb.ID, len(tb.Rows), minRows)
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatalf("%s: row width %d != header %d", tb.ID, len(r), len(tb.Header))
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, tb.ID) || !strings.Contains(md, "|") {
		t.Fatalf("%s: markdown malformed", tb.ID)
	}
}

func TestT1MinimumRatioRespectsTheorem(t *testing.T) {
	tb := T1(quickCfg)
	checkTable(t, tb, 3)
	for _, r := range tb.Rows {
		if r[3] < "0.333" && !strings.HasPrefix(r[3], "0.9") && !strings.HasPrefix(r[3], "1") {
			// String compare is unreliable; parse-proof: minimum column is
			// formatted with three decimals, so "0.332" sorts below "0.333".
			if r[3][0:3] == "0.3" && r[3] < "0.334" {
				t.Errorf("T1 min ratio %s at row %v below 1/3", r[3], r)
			}
		}
	}
}

func TestT2ProbabilitiesMeetBound(t *testing.T) {
	tb := T2(quickCfg)
	checkTable(t, tb, 2)
	for _, r := range tb.Rows {
		if r[3] < "0.250" && strings.HasPrefix(r[3], "0.2") {
			t.Errorf("T2 row %v violates the 1/4 bound", r)
		}
	}
}

func TestFastDriversProduceTables(t *testing.T) {
	for _, drv := range Drivers {
		switch drv.ID {
		case "T3", "T4", "T5", "T6", "T8", "T9", "T10", "A2":
			continue // slower (Monte Carlo heavy); exercised by TestAllQuick in -short skip
		}
		tb := drv.Run(quickCfg)
		checkTable(t, tb, 1)
	}
}

func TestMonteCarloDriversQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte Carlo experiment drivers in -short mode")
	}
	for _, id := range []string{"T3", "T6", "T10"} {
		tb := ByID(id, quickCfg)
		checkTable(t, tb, 2)
	}
}

func TestByIDUnknown(t *testing.T) {
	if ByID("nope", quickCfg) != nil {
		t.Error("unknown id returned a table")
	}
}

func TestWindowCheckHelper(t *testing.T) {
	in := workload.Chains(workload.Config{Jobs: 4, Machines: 2, Seed: 1}, 2)
	if err := windowCheck(in, nil); err != nil {
		t.Errorf("empty schedule should trivially pass: %v", err)
	}
}
