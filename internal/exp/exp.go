package exp

import (
	"fmt"
	"runtime"
	"strings"

	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/sim"
)

// Config sizes the experiments.
type Config struct {
	// Quick shrinks sweeps and repetition counts (CI mode).
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the grid harness's parallelism: experiment cells
	// (and the drivers themselves under All) evaluate on a pool of
	// this many goroutines. 0 selects GOMAXPROCS; 1 is the fully
	// sequential harness. Tables are bit-identical at any setting.
	Workers int
}

// workers resolves the effective pool size.
func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// reps returns Monte Carlo repetitions for makespan estimates.
func (c Config) reps() int {
	if c.Quick {
		return 60
	}
	return 300
}

// trials returns how many random instances per sweep point.
func (c Config) trials() int {
	if c.Quick {
		return 3
	}
	return 8
}

// Table is one experiment's result in displayable form.
type Table struct {
	// ID is the experiment id from DESIGN.md (T1..T10, A1..A4).
	ID string
	// Title describes the experiment.
	Title string
	// PaperBound states the theorem/bound being validated.
	PaperBound string
	Header     []string
	Rows       [][]string
	// Notes holds interpretation guidance appended below the table.
	Notes string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper bound:* %s\n\n", t.PaperBound)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	return b.String()
}

// estimate returns the mean simulated makespan of pol on in. It runs
// the repetitions sequentially: the grid harness already carries the
// parallelism at cell granularity, each cell owns its policy (so
// stateful policies like the random baseline and the learner are
// race-free), and sim.Estimate is bit-identical to
// sim.EstimateParallel by the engine's contract. Stationary policies
// transparently run on the compiled adaptive engine; estimateInfo
// additionally reports which engine ran.
func estimate(in *model.Instance, pol sched.Policy, reps int, seed int64) float64 {
	mean, _ := estimateInfo(in, pol, reps, seed)
	return mean
}

// estimateInfo is estimate plus the engine record the grid rows
// persist.
func estimateInfo(in *model.Instance, pol sched.Policy, reps int, seed int64) (float64, sim.EngineUsed) {
	sum, incomplete, eng := sim.EstimateInfo(in, pol, reps, 5_000_000, seed)
	if incomplete > 0 {
		return -1, eng
	}
	return sum.Mean, eng
}

// exactOpt returns the exact optimum when the value iteration can
// reach the instance at experiment-loop cost. The precheck is in
// state-space terms, not raw (n, m): 12×4 independent (4096 states)
// and n≈20 chains/forests (a few thousand down-sets) are inside the
// frontier, while wide-antichain or many-machine instances whose
// assignment enumeration would dominate the sweep are rejected before
// any DP work happens.
func exactOpt(in *model.Instance) (float64, bool) {
	if in.N > 20 || in.M > 4 {
		return 0, false
	}
	ns, err := opt.StateCount(in)
	if err != nil || ns > 20_000 {
		return 0, false
	}
	_, v, _, err := opt.OptimalRegimenParallel(in, 0)
	if err != nil {
		return 0, false
	}
	return v, true
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
