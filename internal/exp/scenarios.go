package exp

// T13 exercises the scenario-grid vocabulary on the workload families
// beyond the seed experiments: heavy-tailed (power-law) and rank-1
// (correlated) probability shapes, and layered general dags with a
// tunable antichain width. Each point runs every applicable registry
// solver; rows report who wins where. Beyond its findings, the table
// is the living example of declaring a grid: add a Scenario and a
// GridPoint and the harness — including the process-sharded path —
// does the rest.
func T13(cfg Config) *Table {
	g, _ := GridDriverByID("T13")
	return runGridDriver(cfg, g)
}

// t13Plan declares T13's cell surface: one spec per point, because
// each point carries its own applicable-solver set (the pairing is
// not a cross product).
func t13Plan(cfg Config) GridPlan {
	n, m := 24, 6
	if cfg.Quick {
		n, m = 16, 4
	}
	points := []GridPoint{
		{Scenario: "power-law", Jobs: n, Machines: m},
		{Scenario: "correlated", Jobs: n, Machines: m},
		{Scenario: "layered-width", Jobs: n, Machines: m, Arg: 2},
		{Scenario: "layered-width", Jobs: n, Machines: m, Arg: 6},
	}
	plan := GridPlan{ID: "T13"}
	for _, p := range points {
		sc, _ := ScenarioByName(p.Scenario)
		// Skip the learner and random baseline here: both are slow
		// burners on heavy-tailed matrices and T10 already covers them.
		var solvers []string
		for _, id := range solverIDsFor(sc.Class, true) {
			if id == "learning" || id == "random" {
				continue
			}
			solvers = append(solvers, id)
		}
		plan.Specs = append(plan.Specs, GridSpec{Points: []GridPoint{p}, Solvers: solvers, Trials: 1})
	}
	return plan
}

// renderT13 builds the table from the plan's results, one best-of
// aggregation per point.
func renderT13(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "T13",
		Title:      "Scenario grid: new workload families × solver registry",
		PaperBound: "beyond the paper's experiments; guarantees still per solver class",
		Header:     []string{"scenario", "n", "m", "arg", "class", "solver", "E[makespan]", "vs best"},
	}
	off := 0
	for _, seg := range specSegments(t13Plan(cfg)) {
		block := results[off : off+seg]
		off += seg
		best := -1.0
		for _, r := range block {
			if r.Err == nil && r.Mean > 0 && (best < 0 || r.Mean < best) {
				best = r.Mean
			}
		}
		for _, r := range block {
			p := r.Cell.Point
			if r.Err != nil || r.Mean < 0 {
				t.Rows = append(t.Rows, []string{p.Scenario, d(p.Jobs), d(p.Machines), d(p.Arg), r.Class, r.Cell.Solver, "did not finish", "—"})
			} else {
				t.Rows = append(t.Rows, []string{p.Scenario, d(p.Jobs), d(p.Machines), d(p.Arg), r.Class, r.Cell.Solver, f2(r.Mean), f2(r.Mean / best)})
			}
		}
	}
	t.Notes = "power-law/correlated shapes stress the LP constructions' bucketing; layered-width sweeps Malewicz's hardness parameter (dag width) directly. The harness evaluates all cells in parallel with per-cell derived seeds."
	return t
}
