package exp

import (
	"strconv"
	"testing"
)

// T15's reason to exist: on at least one bursty cell the deployed
// static schedule must measurably lose to the rolling re-solver.
func TestT15ReportsAdaptivityGap(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	tbl := T15(cfg)
	if tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("empty T15 table")
	}
	wantRows := len(t15Spacings) * len(t15Bursts) * len(t15Strategies)
	if len(tbl.Rows) != wantRows {
		t.Fatalf("row count %d, want %d", len(tbl.Rows), wantRows)
	}
	gap := false
	for _, row := range tbl.Rows {
		if row[1] == "none" || row[4] != "oblivious" || row[6] == "—" {
			continue
		}
		ratio, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("unparseable vs-rolling ratio %q: %v", row[6], err)
		}
		if ratio > 1.001 {
			gap = true
		}
	}
	if !gap {
		t.Fatalf("no bursty cell shows an oblivious-vs-rolling gap:\n%s", tbl.Markdown())
	}
}

// The table must be bit-identical at any worker count — the property
// the shard harness (and CI's byte-compare merge job) relies on.
func TestT15WorkerInvariance(t *testing.T) {
	seq := T15(Config{Quick: true, Seed: 1, Workers: 1})
	par := T15(Config{Quick: true, Seed: 1, Workers: 4})
	if seq.Markdown() != par.Markdown() {
		t.Fatal("T15 differs between 1 and 4 workers")
	}
}

// The dynamic bench section must agree with the table's measurement
// and carry a usable gap record.
func TestDynamicBenchmarks(t *testing.T) {
	rows := DynamicBenchmarks(Config{Quick: true, Seed: 1})
	if len(rows) != len(t15Bursts) {
		t.Fatalf("row count %d, want %d", len(rows), len(t15Bursts))
	}
	gap := false
	for _, r := range rows {
		if r.Error != "" {
			t.Fatalf("bench row %s/%d errored: %s", r.Burst, r.Spacing, r.Error)
		}
		if r.Oblivious <= 0 || r.Adaptive <= 0 || r.Rolling <= 0 || r.GapVsRolling <= 0 {
			t.Fatalf("degenerate bench row: %+v", r)
		}
		if r.Engine != "dynamic-step" {
			t.Fatalf("bench row engine %q", r.Engine)
		}
		if r.Burst != "none" && r.GapVsRolling > 1.001 {
			gap = true
		}
	}
	if !gap {
		t.Fatalf("no bursty bench row records a gap: %+v", rows)
	}
}
