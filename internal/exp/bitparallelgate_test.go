package exp

import (
	"os"
	"runtime"
	"testing"
	"time"

	"suu/internal/core"
	"suu/internal/sim"
	"suu/internal/workload"
)

// TestBitParallelSpeedupSmoke is the CI bench-smoke assertion for the
// 64-lane bit-parallel engine: estimating the SUUChains schedules on
// the T12 chains families must beat the scalar compiled engine by ≥5×
// (best of three timed runs each, engine selection forced through the
// BitParallel knob, identical reps and seeds). It only runs when
// BENCH_SMOKE=1 — wall-clock ratios are meaningless under the race
// detector or a loaded laptop — and skips on single-core runners,
// whose scheduling noise swamps millisecond estimates. Lane-vs-scalar
// result parity is pinned separately by the sim package's lane tests;
// this gate is purely about throughput.
func TestBitParallelSpeedupSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the bit-parallel speedup gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("speedup gate needs ≥2 cores for stable timing")
	}
	families := []struct {
		name           string
		jobs, machines int
		chains         int
	}{
		{"chains-48x8", 48, 8, 6},
		{"chains-96x12", 96, 12, 8},
	}
	const reps = 20_000
	for _, f := range families {
		seed := sim.SeedFor(1, "bench-bitparallel/"+f.name)
		in := workload.Chains(workload.Config{Jobs: f.jobs, Machines: f.machines, Seed: seed}, f.chains)
		built, err := core.SUUChains(in, paramsWithSeed(seed))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		pol := built.Schedule

		bestOf3 := func(mode sim.BitParallelMode, wantEngine string, wantLanes int) float64 {
			defer sim.SetBitParallel(mode)()
			best := -1.0
			for try := 0; try < 3; try++ {
				start := time.Now()
				_, _, eng := sim.EstimateInfo(in, pol, reps, 5_000_000, 77)
				if eng.Engine != wantEngine || eng.Lanes != wantLanes {
					t.Fatalf("%s: estimation ran on %q (%d lanes), want %q (%d lanes)",
						f.name, eng.Engine, eng.Lanes, wantEngine, wantLanes)
				}
				if e := time.Since(start).Seconds() * 1000; best < 0 || e < best {
					best = e
				}
			}
			return best
		}
		lane := bestOf3(sim.BitParallelOn, sim.EngineLane, sim.LaneWidth)
		scalar := bestOf3(sim.BitParallelOff, sim.EngineCompiled, 0)
		ratio := scalar / lane
		t.Logf("bitparallel %s estimation (%d reps): lane %.2fms scalar %.2fms ratio %.2fx",
			f.name, reps, lane, scalar, ratio)
		if ratio < 5 {
			t.Errorf("bit-parallel estimation on %s only %.2fx faster than the scalar compiled engine (want ≥5x): lane %.2fms scalar %.2fms",
				f.name, ratio, lane, scalar)
		}
	}
}
