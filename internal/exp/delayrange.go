package exp

import (
	"math/rand"

	"suu/internal/core"
	"suu/internal/stats"
	"suu/internal/workload"
)

// A5 ablates the delay range: Theorem 4.4/4.7 draw chain delays from
// [0, Π_max]; Theorem 4.8's tree analysis allows [0, Π_max/log n].
// Narrower ranges give shorter delayed prefixes at (theoretically)
// higher congestion; this table measures both effects on out-trees by
// comparing the two SUUForest code paths end to end.
func A5(cfg Config) *Table {
	t := &Table{
		ID:         "A5",
		Title:      "Ablation: delay range [0,Πmax] (Thm 4.4/4.7) vs [0,Πmax/log n] (Thm 4.8)",
		PaperBound: "Thm 4.8 trades congestion for shorter delayed prefixes on tree blocks",
		Header:     []string{"n", "m", "full: prefix", "full: ratio", "log-div: prefix", "log-div: ratio"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 50))
	sizes := [][2]int{{12, 4}, {24, 6}, {48, 8}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	for _, nm := range sizes {
		n, m := nm[0], nm[1]
		var fullLen, divLen, fullR, divR []float64
		for k := 0; k < cfg.trials(); k++ {
			in := workload.OutTree(workload.Config{Jobs: n, Machines: m, Seed: rng.Int63()})
			// The rank decomposition triggers the log-divisor path; to get
			// the full-range behaviour on identical blocks, rerun each
			// block through the chains pipeline directly.
			divRes, err := core.SUUForest(in, paramsWithSeed(cfg.Seed))
			if err != nil {
				continue
			}
			dc := divRes.Decomposition
			var fullPrefix int
			ok := true
			for _, blk := range dc.Blocks {
				br, err := core.SUUChainsOnBlock(in, blk.Chains, paramsWithSeed(cfg.Seed))
				if err != nil {
					ok = false
					break
				}
				fullPrefix += br.Schedule.Len()
			}
			if !ok {
				continue
			}
			lb := divRes.LowerBound
			if lb <= 0 {
				continue
			}
			divLen = append(divLen, float64(divRes.Schedule.Len()))
			fullLen = append(fullLen, float64(fullPrefix))
			if mean := estimate(in, divRes.Schedule, cfg.reps(), cfg.Seed); mean > 0 {
				divR = append(divR, mean/lb)
			}
			// Ratio for the full-range variant approximated by its prefix
			// length over the lower bound (the makespan of these
			// schedules is essentially the prefix length).
			fullR = append(fullR, float64(fullPrefix)/lb)
		}
		if len(divLen) == 0 || len(fullLen) == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(m),
			f2(stats.Mean(fullLen)), f2(stats.Mean(fullR)),
			f2(stats.Mean(divLen)), f2(stats.Mean(divR)),
		})
	}
	t.Notes = "log-div is the shipping Thm 4.8 path; the full-range column rebuilds the same blocks with Thm 4.4's delay range."
	return t
}
