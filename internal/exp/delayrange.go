package exp

import (
	"suu/internal/core"
	"suu/internal/sim"
	"suu/internal/stats"
	"suu/internal/workload"
)

// A5 ablates the delay range: Theorem 4.4/4.7 draw chain delays from
// [0, Π_max]; Theorem 4.8's tree analysis allows [0, Π_max/log n].
// Narrower ranges give shorter delayed prefixes at (theoretically)
// higher congestion; this table measures both effects on out-trees by
// comparing the two SUUForest code paths end to end. It stays on the
// raw core API deliberately — it reruns individual decomposition
// blocks, which the registry does not expose.
func A5(cfg Config) *Table {
	t := &Table{
		ID:         "A5",
		Title:      "Ablation: delay range [0,Πmax] (Thm 4.4/4.7) vs [0,Πmax/log n] (Thm 4.8)",
		PaperBound: "Thm 4.8 trades congestion for shorter delayed prefixes on tree blocks",
		Header:     []string{"n", "m", "full: prefix", "full: ratio", "log-div: prefix", "log-div: ratio"},
	}
	sizes := [][2]int{{12, 4}, {24, 6}, {48, 8}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	trials := cfg.trials()
	type cell struct {
		fullLen, divLen, fullR, divR float64
		hasDivR                      bool
		ok                           bool
	}
	cells := runSweep(cfg, len(sizes), trials, func(s, k int) cell {
		n, m := sizes[s][0], sizes[s][1]
		seed := sim.SeedFor(cfg.Seed, "A5", int64(n), int64(m), int64(k))
		in := workload.OutTree(workload.Config{Jobs: n, Machines: m, Seed: seed})
		// The rank decomposition triggers the log-divisor path; to get
		// the full-range behaviour on identical blocks, rerun each
		// block through the chains pipeline directly.
		divRes, err := core.SUUForest(in, paramsWithSeed(sim.SeedFor(seed, "build")))
		if err != nil {
			return cell{}
		}
		dc := divRes.Decomposition
		var fullPrefix int
		for _, blk := range dc.Blocks {
			br, err := core.SUUChainsOnBlock(in, blk.Chains, paramsWithSeed(sim.SeedFor(seed, "build")))
			if err != nil {
				return cell{}
			}
			fullPrefix += br.Schedule.Len()
		}
		lb := divRes.LowerBound
		if lb <= 0 {
			return cell{}
		}
		c := cell{
			fullLen: float64(fullPrefix),
			divLen:  float64(divRes.Schedule.Len()),
			// Ratio for the full-range variant approximated by its prefix
			// length over the lower bound (the makespan of these
			// schedules is essentially the prefix length).
			fullR: float64(fullPrefix) / lb,
			ok:    true,
		}
		if mean := estimate(in, divRes.Schedule, cfg.reps(), sim.SeedFor(seed, "sim")); mean > 0 {
			c.divR = mean / lb
			c.hasDivR = true
		}
		return c
	})
	for s, nm := range sizes {
		var fullLen, divLen, fullR, divR []float64
		for _, c := range cells[s] {
			if !c.ok {
				continue
			}
			fullLen = append(fullLen, c.fullLen)
			divLen = append(divLen, c.divLen)
			fullR = append(fullR, c.fullR)
			if c.hasDivR {
				divR = append(divR, c.divR)
			}
		}
		if len(divLen) == 0 || len(fullLen) == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			d(nm[0]), d(nm[1]),
			f2(stats.Mean(fullLen)), f2(stats.Mean(fullR)),
			f2(stats.Mean(divLen)), f2(stats.Mean(divR)),
		})
	}
	t.Notes = "log-div is the shipping Thm 4.8 path; the full-range column rebuilds the same blocks with Thm 4.4's delay range."
	return t
}
