package exp

import (
	"suu/internal/core"
	"suu/internal/sim"
	"suu/internal/stats"
)

// A5 ablates the delay range: Theorem 4.4/4.7 draw chain delays from
// [0, Π_max]; Theorem 4.8's tree analysis allows [0, Π_max/log n].
// Narrower ranges give shorter delayed prefixes at (theoretically)
// higher congestion; this table measures both effects on out-trees by
// comparing the two SUUForest code paths end to end. The log-div
// variant is a standard grid cell (forest solver, estimated); the
// full-range variant needs per-block reruns the registry does not
// expose, so it registers the "a5-full" custom cell evaluator — which
// is what makes A5 a shardable GridDriver despite its bespoke cells.
func A5(cfg Config) *Table {
	g, _ := GridDriverByID("A5")
	return runGridDriver(cfg, g)
}

func init() {
	cellEvals["a5-full"] = evalA5FullRange
}

// a5Sizes is the sweep; plan and renderer share it.
func a5Sizes(cfg Config) [][2]int {
	sizes := [][2]int{{12, 4}, {24, 6}, {48, 8}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	return sizes
}

// a5Plan declares two specs per size over the same out-tree point:
// the shipping log-div path as plain cells, the full-range rebuild
// through the custom evaluator. Identical points mean identical
// instances and build seeds across the pair, so the comparison runs
// on the very same decomposition blocks.
func a5Plan(cfg Config) GridPlan {
	plan := GridPlan{ID: "A5"}
	trials := cfg.trials()
	for _, nm := range a5Sizes(cfg) {
		p := GridPoint{Scenario: "out-tree", Jobs: nm[0], Machines: nm[1]}
		plan.Specs = append(plan.Specs,
			GridSpec{Points: []GridPoint{p}, Solvers: []string{"forest"}, Trials: trials},
			GridSpec{Points: []GridPoint{p}, Solvers: []string{"forest"}, Trials: trials, Eval: "a5-full"},
		)
	}
	return plan
}

// evalA5FullRange rebuilds the cell's decomposition blocks through the
// chains pipeline (Thm 4.4's full [0, Π_max] delay range) and reports
// the summed prefix as PrefixLen with the forest run's lower bound —
// the ratio renderA5 derives. Mean stays -1: the variant's makespan is
// essentially its prefix length, which is the paper's comparison.
// All randomness derives from the cell's coordinates, so the cell
// shards like any other.
func evalA5FullRange(cfg Config, c GridCell) GridResult {
	in, seed, err := cellInstance(cfg, c)
	if err != nil {
		return GridResult{Cell: c, Err: err}
	}
	par := paramsWithSeed(sim.SeedFor(seed, c.Solver))
	divRes, err := core.SUUForest(in, par)
	if err != nil {
		return GridResult{Cell: c, Class: in.Prec.Classify().String(), Err: err}
	}
	fullPrefix := 0
	for _, blk := range divRes.Decomposition.Blocks {
		br, err := core.SUUChainsOnBlock(in, blk.Chains, par)
		if err != nil {
			return GridResult{Cell: c, Class: in.Prec.Classify().String(), Err: err}
		}
		fullPrefix += br.Schedule.Len()
	}
	return GridResult{
		Cell:       c,
		Class:      in.Prec.Classify().String(),
		Kind:       "forest blocks, full-range delays (Thm 4.4)",
		Mean:       -1,
		LowerBound: divRes.LowerBound,
		PrefixLen:  fullPrefix,
	}
}

// renderA5 pairs each size's (log-div, full-range) spec blocks and
// aggregates trials, reproducing the pre-grid table shape.
func renderA5(cfg Config, results []GridResult) *Table {
	t := &Table{
		ID:         "A5",
		Title:      "Ablation: delay range [0,Πmax] (Thm 4.4/4.7) vs [0,Πmax/log n] (Thm 4.8)",
		PaperBound: "Thm 4.8 trades congestion for shorter delayed prefixes on tree blocks",
		Header:     []string{"n", "m", "full: prefix", "full: ratio", "log-div: prefix", "log-div: ratio"},
	}
	trials := cfg.trials()
	off := 0
	for _, nm := range a5Sizes(cfg) {
		div := results[off : off+trials]
		full := results[off+trials : off+2*trials]
		off += 2 * trials
		var fullLen, divLen, fullR, divR []float64
		for k := 0; k < trials; k++ {
			if div[k].Err != nil || full[k].Err != nil || div[k].LowerBound <= 0 || full[k].LowerBound <= 0 {
				continue
			}
			fullLen = append(fullLen, float64(full[k].PrefixLen))
			fullR = append(fullR, float64(full[k].PrefixLen)/full[k].LowerBound)
			divLen = append(divLen, float64(div[k].PrefixLen))
			if div[k].Mean > 0 {
				divR = append(divR, div[k].Mean/div[k].LowerBound)
			}
		}
		if len(divLen) == 0 || len(fullLen) == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			d(nm[0]), d(nm[1]),
			f2(stats.Mean(fullLen)), f2(stats.Mean(fullR)),
			f2(stats.Mean(divLen)), f2(stats.Mean(divR)),
		})
	}
	t.Notes = "log-div is the shipping Thm 4.8 path; the full-range column rebuilds the same blocks with Thm 4.4's delay range."
	return t
}
