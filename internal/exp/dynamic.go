package exp

import (
	"fmt"

	"suu/internal/dyn"
	"suu/internal/model"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/stats"
	"suu/internal/workload"
)

// T15 measures the price of rigidity under dynamics: the same
// instance run through a deterministic event timeline — an early
// outage of machine 0, optionally staggered job arrivals, optionally
// a hidden Markov failure-burst regime on every machine — evaluated
// by three strategies. "oblivious" deploys the static Solve schedule
// unchanged; "adaptive" reruns the masked MSM greedy on whatever is
// eligible and up; "rolling" re-solves the surviving sub-instance at
// every event epoch (warm-starting the LP from the initial solve's
// basis). The oblivious-vs-rolling ratio is the adaptivity gap the
// dynamic layer exists to expose. Every cell runs through the
// "t15-dyn" custom evaluator, so the table shards like any grid.
func T15(cfg Config) *Table {
	g, _ := GridDriverByID("T15")
	return runGridDriver(cfg, g)
}

func init() {
	cellEvals["t15-dyn"] = evalT15Dynamic
}

// t15Spacings are the arrival-ramp spacings swept (0 = everything
// present at step 0).
var t15Spacings = []int{0, 2}

// t15Bursts are the regime intensities swept, in the mixture
// parameterization (stationary bad fraction, persistence, severity).
var t15Bursts = []struct {
	name                string
	p0, alpha, severity float64
}{
	{"none", 0, 0, 0},
	{"moderate", 0.15, 0.90, 0.35},
	{"heavy", 0.30, 0.95, 0.10},
}

// t15Strategies are the cell "solver" ids the custom evaluator
// dispatches on.
var t15Strategies = []string{"oblivious", "adaptive", "rolling"}

// t15Outage is the breakdown window every T15 cell carries: machine 0
// down for steps [4, 10) — early enough that the oblivious prefix
// planned around it, late enough that work is already in flight.
const t15OutageFrom, t15OutageTo = 4, 10

// t15Size returns the instance size.
func t15Size(cfg Config) (int, int) {
	if cfg.Quick {
		return 12, 3
	}
	return 16, 4
}

// t15Trials keeps the table cheap: rolling cells re-solve an LP per
// novel event state, so trials stay below the generic trials().
func t15Trials(cfg Config) int {
	if cfg.Quick {
		return 1
	}
	return 2
}

// t15Plan declares the grid: one spec per (spacing, burst) point,
// three strategy cells each. The point's Arg encodes the dynamics
// coordinate (spacing index × bursts + burst index); the independent
// generator ignores Arg, so it is free to ride in the seed and the
// cell fingerprint.
func t15Plan(cfg Config) GridPlan {
	n, m := t15Size(cfg)
	plan := GridPlan{ID: "T15"}
	for si := range t15Spacings {
		for bi := range t15Bursts {
			p := GridPoint{Scenario: "independent", Jobs: n, Machines: m, Arg: si*len(t15Bursts) + bi}
			plan.Specs = append(plan.Specs, GridSpec{
				Points:  []GridPoint{p},
				Solvers: t15Strategies,
				Trials:  t15Trials(cfg),
				Eval:    "t15-dyn",
			})
		}
	}
	return plan
}

// t15Scenario rebuilds a cell's scenario from its Arg coordinate —
// shared by the evaluator and the bench section so both always
// measure the same dynamics.
func t15Scenario(in *model.Instance, arg int) *dyn.Scenario {
	spacing := t15Spacings[arg/len(t15Bursts)]
	burst := t15Bursts[arg%len(t15Bursts)]
	sc := dyn.New(in)
	for j, at := range workload.ArrivalRamp(in.N, spacing) {
		if at > 0 {
			sc.ArriveAt(j, at)
		}
	}
	sc.Breakdown(0, t15OutageFrom, t15OutageTo)
	if burst.p0 > 0 {
		sc.Burst(-1, burst.p0, burst.alpha, burst.severity)
	}
	return sc
}

// evalT15Dynamic is the "t15-dyn" cell evaluator: regenerate the
// cell's instance, rebuild its scenario from Arg, run the strategy
// named by the cell's Solver. Construction randomness derives from
// the (point, trial) seed — identical across the three strategies, so
// rolling's initial plan IS the oblivious schedule and the comparison
// isolates adaptation. All randomness derives from cell coordinates;
// the cell shards like any other.
func evalT15Dynamic(cfg Config, c GridCell) GridResult {
	in, seed, err := cellInstance(cfg, c)
	if err != nil {
		return GridResult{Cell: c, Err: err}
	}
	sc := t15Scenario(in, c.Point.Arg)
	par := paramsWithSeed(sim.SeedFor(seed, "build"))
	var strat dyn.Strategy
	kind := ""
	switch c.Solver {
	case "oblivious":
		_, res, err := solve.Auto(in, par)
		if err != nil {
			return GridResult{Cell: c, Class: in.Prec.Classify().String(), Err: err}
		}
		strat = dyn.NewStatic(sc, res.Policy)
		kind = res.Kind + ", deployed unchanged"
	case "adaptive":
		strat = dyn.NewAdaptive(sc)
		kind = "masked MSM greedy (Thm 3.3, availability-aware)"
	case "rolling":
		roll, err := dyn.NewRolling(sc, "", par)
		if err != nil {
			return GridResult{Cell: c, Class: in.Prec.Classify().String(), Err: err}
		}
		strat = roll
		kind = "rolling-horizon re-solve (warm LP basis)"
	default:
		return GridResult{Cell: c, Err: fmt.Errorf("exp: unknown T15 strategy %q", c.Solver)}
	}
	sum, incomplete, eng, err := dyn.EstimateInfo(sc, strat, cfg.reps(), 5_000_000, sim.SeedFor(seed, "sim"), 1)
	if err != nil {
		return GridResult{Cell: c, Class: in.Prec.Classify().String(), Err: err}
	}
	mean := sum.Mean
	if incomplete > 0 {
		mean = -1
	}
	return GridResult{
		Cell:   c,
		Class:  in.Prec.Classify().String(),
		Kind:   kind,
		Mean:   mean,
		Engine: eng.Engine,
	}
}

// renderT15 aggregates each point's trials per strategy and reports
// the oblivious/adaptive means relative to rolling — the adaptivity
// gap column the acceptance bar reads.
func renderT15(cfg Config, results []GridResult) *Table {
	n, m := t15Size(cfg)
	t := &Table{
		ID:         "T15",
		Title:      "Dynamic scenarios: oblivious vs adaptive vs rolling re-solve",
		PaperBound: "beyond the paper's static model; strategies keep their per-class guarantees on each epoch's sub-instance",
		Header:     []string{"spacing", "burst", "n", "m", "strategy", "E[makespan]", "vs rolling"},
	}
	trials := t15Trials(cfg)
	off := 0
	for si := range t15Spacings {
		for bi := range t15Bursts {
			block := results[off : off+len(t15Strategies)*trials]
			off += len(t15Strategies) * trials
			means := make([]float64, len(t15Strategies))
			ok := true
			for sidx := range t15Strategies {
				var vals []float64
				for k := 0; k < trials; k++ {
					r := block[sidx*trials+k]
					if r.Err == nil && r.Mean > 0 {
						vals = append(vals, r.Mean)
					}
				}
				if len(vals) == 0 {
					ok = false
					continue
				}
				means[sidx] = stats.Mean(vals)
			}
			rolling := means[len(t15Strategies)-1]
			for sidx, name := range t15Strategies {
				row := []string{d(t15Spacings[si]), t15Bursts[bi].name, d(n), d(m), name}
				if !ok || means[sidx] <= 0 {
					row = append(row, "did not finish", "—")
				} else if rolling > 0 {
					row = append(row, f2(means[sidx]), f3(means[sidx]/rolling))
				} else {
					row = append(row, f2(means[sidx]), "—")
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	t.Notes = "Every cell carries the machine-0 outage [4,10); spacing staggers arrivals (job j released at step j·spacing); bursts are hidden per-machine Markov regimes (stationary bad fraction / persistence / severity in the legend above). All three strategies share each cell's instance, construction seed and simulation streams, so 'vs rolling' compares decisions, not luck."
	return t
}

// DynamicBench is one row of BENCH_sim.json's dynamic section: the
// three strategies' expected makespans on one T15 dynamics cell, and
// the oblivious-vs-rolling adaptivity gap.
type DynamicBench struct {
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	// Spacing is the arrival ramp (0 = static arrivals); Burst names
	// the regime intensity; the outage window rides in every row.
	Spacing    int     `json:"spacing"`
	Burst      string  `json:"burst"`
	OutageFrom int     `json:"outage_from"`
	OutageTo   int     `json:"outage_to"`
	Reps       int     `json:"reps"`
	Engine     string  `json:"engine"`
	Oblivious  float64 `json:"oblivious_mean"`
	Adaptive   float64 `json:"adaptive_mean"`
	Rolling    float64 `json:"rolling_mean"`
	// GapVsRolling = Oblivious/Rolling — the adaptivity gap; > 1 means
	// re-solving at event epochs beat replaying the static schedule.
	GapVsRolling float64 `json:"gap_vs_rolling"`
	Error        string  `json:"error,omitempty"`
}

// DynamicBenchmarks fills the dynamic section by evaluating the
// staggered-arrival (spacing 2) T15 column at every burst intensity
// through the same "t15-dyn" evaluator the table uses, so the
// persisted gap and the rendered table can never disagree about what
// was measured.
func DynamicBenchmarks(cfg Config) []DynamicBench {
	n, m := t15Size(cfg)
	var out []DynamicBench
	const si = 1 // spacing 2: the bursty streaming column
	for bi, b := range t15Bursts {
		p := GridPoint{Scenario: "independent", Jobs: n, Machines: m, Arg: si*len(t15Bursts) + bi}
		row := DynamicBench{
			Family: "independent", Jobs: n, Machines: m,
			Spacing: t15Spacings[si], Burst: b.name,
			OutageFrom: t15OutageFrom, OutageTo: t15OutageTo,
			Reps: cfg.reps(),
		}
		means := map[string]float64{}
		for _, strat := range t15Strategies {
			r := evalT15Dynamic(cfg, GridCell{Point: p, Solver: strat, Eval: "t15-dyn"})
			if r.Err != nil {
				row.Error = r.Err.Error()
				break
			}
			if r.Mean < 0 {
				row.Error = fmt.Sprintf("%s hit the step cap", strat)
				break
			}
			means[strat] = r.Mean
			row.Engine = r.Engine
		}
		if row.Error == "" {
			row.Oblivious = means["oblivious"]
			row.Adaptive = means["adaptive"]
			row.Rolling = means["rolling"]
			if row.Rolling > 0 {
				row.GapVsRolling = row.Oblivious / row.Rolling
			}
		}
		out = append(out, row)
	}
	return out
}
