package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"suu/internal/core"
	"suu/internal/dag"
	"suu/internal/model"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/workload"
)

// This file is the scenario-grid harness every experiment driver runs
// on: a declarative cell vocabulary (workload scenario × solver id ×
// trial), a deterministic worker pool, and per-cell SplitMix64-derived
// seeds. Cells never share a random generator — each derives every
// seed it needs (instance, construction, simulation) from its own
// coordinates via sim.SeedFor — so tables are bit-identical at any
// worker count and any GOMAXPROCS; parallelism changes only
// wall-clock time.

// runCells evaluates eval(0..n-1) on cfg.workers() goroutines and
// returns the results in index order. Work is handed out by an atomic
// counter; since results land at their own index and eval must derive
// all randomness from the index, scheduling cannot influence values.
func runCells[T any](cfg Config, n int, eval func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := cfg.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = eval(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = eval(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runSweep is runCells for the drivers' dominant shape — a sweep of
// points with several Monte Carlo trials each. It evaluates
// eval(point, trial) for every combination on the worker pool and
// returns the results grouped by point, so aggregation loops never
// re-derive flat indices.
func runSweep[T any](cfg Config, points, trials int, eval func(point, trial int) T) [][]T {
	flat := runCells(cfg, points*trials, func(i int) T {
		return eval(i/trials, i%trials)
	})
	out := make([][]T, points)
	for p := range out {
		out[p] = flat[p*trials : (p+1)*trials]
	}
	return out
}

// Scenario is a named workload family in the grid vocabulary. Arg is
// a family-specific knob (chain count, component count, layer count
// or width); 0 selects the family default.
type Scenario struct {
	Name string
	// Class names the precedence family the generator produces, for
	// listings and docs.
	Class string
	Gen   func(c workload.Config, arg int) *model.Instance
}

// Scenarios is the registered grid vocabulary: every workload family
// reachable from GridSpec by name. Register new families here (and in
// cmd/suu-gen for CLI access).
var Scenarios = []Scenario{
	{"independent", "independent", func(c workload.Config, arg int) *model.Instance {
		return workload.Independent(c)
	}},
	{"chains", "chains", func(c workload.Config, arg int) *model.Instance {
		if arg == 0 {
			arg = (c.Jobs + 3) / 4
		}
		return workload.Chains(c, arg)
	}},
	{"out-tree", "out-forest", func(c workload.Config, arg int) *model.Instance {
		return workload.OutTree(c)
	}},
	{"in-tree", "in-forest", func(c workload.Config, arg int) *model.Instance {
		return workload.InTree(c)
	}},
	{"mixed-forest", "mixed-forest", func(c workload.Config, arg int) *model.Instance {
		if arg == 0 {
			arg = 3
		}
		return workload.MixedForest(c, arg)
	}},
	{"layered", "general", func(c workload.Config, arg int) *model.Instance {
		if arg == 0 {
			arg = 3
		}
		return workload.Layered(c, arg, 0.25)
	}},
	{"grid-pipeline", "out-forest", func(c workload.Config, arg int) *model.Instance {
		return workload.GridPipeline(c.Jobs, c.Machines, c.Seed)
	}},
	{"project-plan", "chains", func(c workload.Config, arg int) *model.Instance {
		return workload.ProjectPlan(c.Jobs, c.Machines, c.Seed)
	}},
	// Families beyond the seed experiments: heavy-tailed and rank-1
	// probability shapes, and general dags with a tunable antichain
	// width.
	{"power-law", "independent", func(c workload.Config, arg int) *model.Instance {
		c.Shape = workload.PowerLaw
		return workload.Independent(c)
	}},
	{"correlated", "independent", func(c workload.Config, arg int) *model.Instance {
		c.Shape = workload.Correlated
		return workload.Independent(c)
	}},
	{"layered-width", "general", func(c workload.Config, arg int) *model.Instance {
		if arg == 0 {
			arg = 4
		}
		return workload.LayeredWidth(c, arg, 0.3)
	}},
}

// ScenarioByName looks a scenario up in the vocabulary.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// GridPoint is one workload coordinate of a scenario grid.
type GridPoint struct {
	Scenario string
	Jobs     int
	Machines int
	// Arg is the scenario's knob (0 = family default).
	Arg int
}

// ParamOverrides adjusts construction parameters for every cell of a
// spec — the declarative form of the ablation sweeps (A2's σ sweep is
// one spec per ReplicationFactor). Zero values leave the paper's
// defaults untouched. The struct is part of the shard fingerprint, so
// two sweeps differing only in overrides can never splice.
type ParamOverrides struct {
	// ReplicationFactor overrides Params.ReplicationFactor when > 0.
	ReplicationFactor int `json:"replication_factor,omitempty"`
	// MassTarget overrides Params.MassTarget when > 0.
	MassTarget float64 `json:"mass_target,omitempty"`
	// DelayTries overrides Params.DelayTries when > 0.
	DelayTries int `json:"delay_tries,omitempty"`
	// Optimism overrides Params.Optimism when non-nil (0 is a
	// meaningful setting — it disables the learner's exploration).
	Optimism *float64 `json:"optimism,omitempty"`
}

// apply folds the overrides into par.
func (o *ParamOverrides) apply(par *core.Params) {
	if o == nil {
		return
	}
	if o.ReplicationFactor > 0 {
		par.ReplicationFactor = o.ReplicationFactor
	}
	if o.MassTarget > 0 {
		par.MassTarget = o.MassTarget
	}
	if o.DelayTries > 0 {
		par.DelayTries = o.DelayTries
	}
	if o.Optimism != nil {
		par.Optimism = *o.Optimism
	}
}

// GridSpec declares a scenario grid: the cross product of workload
// points, solver registry ids, and trial indices, optionally with
// per-spec parameter overrides and a custom cell evaluator.
type GridSpec struct {
	Points  []GridPoint
	Solvers []string
	Trials  int
	// Overrides optionally adjusts core.Params for every cell of this
	// spec. Nil means the defaults.
	Overrides *ParamOverrides `json:"Overrides,omitempty"`
	// Eval selects a registered custom cell evaluator ("" = the
	// standard build-and-estimate path). Ablations whose cells need
	// machinery the registry does not expose (A5's per-block reruns)
	// register theirs in cellEvals; the name rides in the fingerprint,
	// and every evaluator must derive all randomness from the cell's
	// coordinates so sharding stays value-preserving.
	Eval string `json:"Eval,omitempty"`
}

// GridCell is one cell of the cross product. Cells carry their spec's
// overrides and evaluator so they stay self-contained under sharding.
type GridCell struct {
	Point     GridPoint
	Solver    string
	Trial     int
	Overrides *ParamOverrides `json:"Overrides,omitempty"`
	Eval      string          `json:"Eval,omitempty"`
}

// NumCells returns len(s.Cells()) without materializing it. Every
// consumer that sizes or offsets into the enumeration (shard ranges,
// renderer segments) goes through this one definition.
func (s GridSpec) NumCells() int {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	return len(s.Points) * len(s.Solvers) * trials
}

// Cells enumerates the cross product in deterministic order: points
// outermost, then solvers, then trials.
func (s GridSpec) Cells() []GridCell {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	cells := make([]GridCell, 0, s.NumCells())
	for _, p := range s.Points {
		for _, id := range s.Solvers {
			for k := 0; k < trials; k++ {
				cells = append(cells, GridCell{Point: p, Solver: id, Trial: k, Overrides: s.Overrides, Eval: s.Eval})
			}
		}
	}
	return cells
}

// GridResult is one evaluated cell.
type GridResult struct {
	Cell  GridCell
	Class string
	// Kind is the built construction's display name.
	Kind string
	// Mean is the estimated expected makespan (-1 when runs hit the
	// step cap).
	Mean       float64
	LowerBound float64
	// PrefixLen is the built schedule's oblivious prefix length (0 for
	// adaptive policies); ablation renderers (A2, A5) read it.
	PrefixLen int
	// Engine records which simulation engine actually ran the cell's
	// estimation (sim.EngineCompiled / EngineCompiledAdaptive /
	// EngineGeneric, "" when nothing was simulated). Deterministic for
	// the cell's coordinates, so it is merge payload, not provenance.
	Engine string
	// BuildTime is the construction's wall-clock cost (LP solve etc.),
	// excluded from determinism comparisons.
	BuildTime time.Duration
	// LPPivots reports the construction's simplex effort (0 for non-LP
	// solvers), also excluded from determinism comparisons.
	LPPivots int
	Err      error
}

// pointSeed derives the seed shared by every solver at one (point,
// trial) coordinate. The solver id is deliberately NOT mixed in: all
// solvers of a grid row see the same generated instance and the same
// simulation streams (common random numbers), so "vs best" columns
// compare schedules, not instance luck. Name fields chain through
// separate SeedFor calls so they stay domain-separated.
func pointSeed(root int64, p GridPoint, trial int) int64 {
	return sim.SeedFor(sim.SeedFor(root, p.Scenario), "point",
		int64(p.Jobs), int64(p.Machines), int64(p.Arg), int64(trial))
}

// cellEvals registers custom cell evaluators by the name GridSpec.Eval
// selects. Every evaluator must be a pure function of (cfg, cell) —
// all randomness derived from the cell's coordinates via sim.SeedFor —
// so custom cells shard exactly like standard ones.
var cellEvals = map[string]func(Config, GridCell) GridResult{}

// cellInstance regenerates a cell's instance from its coordinates —
// the shared front half of every evaluator.
func cellInstance(cfg Config, c GridCell) (*model.Instance, int64, error) {
	sc, ok := ScenarioByName(c.Point.Scenario)
	if !ok {
		return nil, 0, fmt.Errorf("exp: unknown scenario %q", c.Point.Scenario)
	}
	seed := pointSeed(cfg.Seed, c.Point, c.Trial)
	return sc.Gen(workload.Config{Jobs: c.Point.Jobs, Machines: c.Point.Machines, Seed: seed}, c.Point.Arg), seed, nil
}

// EvalCell builds and simulates one cell. All randomness derives from
// the cell's coordinates: instance generation and simulation from the
// (point, trial) seed — identical across solvers, so comparisons are
// paired — and construction randomness additionally from the solver
// id. Cells with a custom evaluator dispatch to it instead.
func EvalCell(cfg Config, c GridCell) GridResult {
	if c.Eval != "" {
		fn, ok := cellEvals[c.Eval]
		if !ok {
			return GridResult{Cell: c, Err: fmt.Errorf("exp: unknown cell evaluator %q", c.Eval)}
		}
		return fn(cfg, c)
	}
	sol, ok := solve.Get(c.Solver)
	if !ok {
		return GridResult{Cell: c, Err: fmt.Errorf("exp: unknown solver %q", c.Solver)}
	}
	in, seed, err := cellInstance(cfg, c)
	if err != nil {
		return GridResult{Cell: c, Err: err}
	}
	par := core.DefaultParams()
	c.Overrides.apply(&par)
	par.Seed = sim.SeedFor(seed, c.Solver)
	start := time.Now()
	res, err := sol.Build(in, par)
	bt := time.Since(start)
	if err != nil {
		return GridResult{Cell: c, Class: in.Prec.Classify().String(), BuildTime: bt, Err: err}
	}
	mean, eng := estimateInfo(in, res.Policy, cfg.reps(), sim.SeedFor(seed, "sim"))
	return GridResult{
		Cell:       c,
		Class:      in.Prec.Classify().String(),
		Kind:       res.Kind,
		Mean:       mean,
		LowerBound: res.LowerBound,
		PrefixLen:  res.PrefixLen,
		Engine:     eng.Engine,
		BuildTime:  bt,
		LPPivots:   res.LPPivots,
	}
}

// RunGrid evaluates every cell of the spec on the worker pool and
// returns results in Cells() order — bit-identical at any Workers
// setting.
func RunGrid(cfg Config, spec GridSpec) []GridResult {
	cells := spec.Cells()
	return runCells(cfg, len(cells), func(i int) GridResult {
		return EvalCell(cfg, cells[i])
	})
}

// classByName maps a precedence-class name (as Scenario.Class uses
// them) back to the dag.Class constant. It panics on an unknown name:
// a typo in a scenario registration should fail the first test that
// touches it, not silently shrink a solver set.
func classByName(name string) dag.Class {
	for c := dag.ClassIndependent; c <= dag.ClassGeneral; c++ {
		if c.String() == name {
			return c
		}
	}
	panic("exp: unknown precedence class name " + name)
}

// solverIDsFor returns the registry ids applicable to the named
// class, in registration order, skipping the exact DP (which only
// fits tiny instances) and, optionally, the baselines.
func solverIDsFor(class string, includeBaselines bool) []string {
	c := classByName(class)
	var out []string
	for _, s := range solve.All() {
		if s.ID == "optimal" {
			continue
		}
		if s.Baseline && !includeBaselines {
			continue
		}
		if s.AppliesTo(c) {
			out = append(out, s.ID)
		}
	}
	return out
}
