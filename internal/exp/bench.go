package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/sim"
	"suu/internal/solve"
	"suu/internal/workload"
)

// SimBench is one row of BENCH_sim.json: the simulation engine's
// measured throughput on one workload family. The CI bench-smoke job
// uploads the file as an artifact so the perf trajectory accumulates
// across PRs; every future engine change is judged against these
// numbers.
type SimBench struct {
	// Family names the workload (precedence shape and size).
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	// Policy names the schedule construction simulated.
	Policy string `json:"policy"`
	// Engine is "compiled" for the event-wise oblivious fast path,
	// "generic" for the step engine.
	Engine string `json:"engine"`
	Reps   int    `json:"reps"`
	// RepsPerSec is end-to-end estimator throughput (includes prefix
	// compilation, amortized over Reps).
	RepsPerSec float64 `json:"reps_per_sec"`
	// NsPerStep normalizes wall-clock by simulated machine-steps.
	NsPerStep float64 `json:"ns_per_step"`
	// AllocsPerRep is the steady-state allocation count per repetition
	// (fixed per-call costs cancelled out); 0 is the engine contract.
	AllocsPerRep float64 `json:"allocs_per_rep"`
	MeanMakespan float64 `json:"mean_makespan"`
	// P50 and P99 are makespan quantiles from a single estimation pass.
	P50 float64 `json:"p50_makespan"`
	P99 float64 `json:"p99_makespan"`
}

// SolverBuildBench is one row of the per-solver construction-cost
// section: how long the registry solver takes to build a schedule on
// its reference workload (LP solves dominate the LP-based pipelines).
// For LP-backed solvers the dense tableau oracle is timed side by
// side, so every BENCH_sim.json records the sparse-vs-dense speedup
// on the machine that produced it.
type SolverBuildBench struct {
	Solver   string `json:"solver"`
	Theorem  string `json:"theorem,omitempty"`
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	// BuildMS is the construction wall-clock in milliseconds (best of
	// three runs, to shed scheduler noise).
	BuildMS   float64 `json:"build_ms"`
	PrefixLen int     `json:"prefix_len,omitempty"`
	// LPPivots and the LP dimensions track simplex effort, not just
	// wall-clock (zero for non-LP solvers).
	LPPivots int `json:"lp_pivots,omitempty"`
	LPRows   int `json:"lp_rows,omitempty"`
	LPCols   int `json:"lp_cols,omitempty"`
	LPNnz    int `json:"lp_nnz,omitempty"`
	// DenseBuildMS is the same construction forced through the dense
	// LP oracle (best of three); SpeedupVsDense = DenseBuildMS/BuildMS.
	DenseBuildMS   float64 `json:"dense_build_ms,omitempty"`
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// GridHarnessBench records the scenario-grid harness's throughput:
// cells evaluated per second with the full worker pool vs the
// sequential harness, and the resulting speedup on this runner.
type GridHarnessBench struct {
	Cells          int     `json:"cells"`
	Workers        int     `json:"workers"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	SeqCellsPerSec float64 `json:"seq_cells_per_sec"`
	Speedup        float64 `json:"speedup"`
}

// DispatchRunnerBench is one runner's throughput record from the
// dispatch benchmark.
type DispatchRunnerBench struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	Cells       int     `json:"cells"`
	Failures    int     `json:"failures"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// DispatchBench records the fault-tolerant dispatch layer's overhead:
// the same grid sweep coordinated fault-free and under heavy injected
// chaos, with the robustness counters (re-issues, re-slices,
// degradations) and the wall-clock cost of surviving the faults. The
// type lives here (not in internal/dispatch) so the BENCH_sim.json
// document stays a single package's contract; internal/dispatch fills
// it and cmd/suu-bench wires it in.
type DispatchBench struct {
	Grid   string `json:"grid"`
	Cells  int    `json:"cells"`
	Shards int    `json:"shards"`
	// ChaosRate is the total injected fault rate of the chaos leg,
	// split evenly across the six fault classes.
	ChaosRate      float64               `json:"chaos_rate"`
	Runners        []DispatchRunnerBench `json:"runners"`
	FaultsInjected map[string]int        `json:"faults_injected"`
	FaultsDetected int                   `json:"faults_detected"`
	ReIssues       int                   `json:"re_issues"`
	ReSlices       int                   `json:"re_slices"`
	Degradations   int                   `json:"degradations"`
	// CleanWallMS / ChaosWallMS are the fault-free and chaos sweep
	// wall-clocks; OverheadPct is the chaos penalty relative to clean.
	CleanWallMS float64 `json:"clean_wall_ms"`
	ChaosWallMS float64 `json:"chaos_wall_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// Parity records that the chaos merge was byte-identical to the
	// fault-free merge — the whole point; a false here is a bug.
	Parity bool   `json:"parity"`
	Error  string `json:"error,omitempty"`
}

// ServeBench records the serving layer's load-harness results: a
// storm of concurrent clients driving a mixed repeat/fresh workload
// through the full handler stack, with cache-hit latency measured
// against cold-build latency. The type lives here (not in
// internal/serve) for the same reason DispatchBench does: the
// BENCH_sim.json document stays a single package's contract;
// internal/serve fills it and cmd/suu-bench wires it in.
type ServeBench struct {
	// Clients is the concurrent client count; Requests the total
	// requests they issued (mixed solves and estimates, repeat and
	// fresh).
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// HotInstances is the pre-warmed repeat set; FreshInstances the
	// distinct never-before-seen instances solved cold mid-storm.
	HotInstances   int     `json:"hot_instances"`
	FreshInstances int     `json:"fresh_instances"`
	WallMS         float64 `json:"wall_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// ColdP50MS/ColdP99MS are cold-build solve latencies (fresh
	// instances); HitP50MS/HitP99MS are result-cache-hit latencies.
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP99MS float64 `json:"cold_p99_ms"`
	HitP50MS  float64 `json:"hit_p50_ms"`
	HitP99MS  float64 `json:"hit_p99_ms"`
	// SpeedupP50 = ColdP50MS / HitP50MS — the number the CI gate
	// asserts stays ≥10.
	SpeedupP50 float64 `json:"speedup_p50"`
	// HitRate is hits/(hits+misses) on the result cache over the whole
	// run; Coalesced counts requests that shared another request's
	// in-flight build (the thundering-herd protection at work).
	HitRate   float64 `json:"hit_rate"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	Errors    int     `json:"errors,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// AdaptiveEngineBench is one row of the adaptive_engine section: the
// compiled transition-table engine measured head to head against the
// generic step engine on the same stationary policy — the number the
// CI bench-smoke gate asserts stays ≥3x.
type AdaptiveEngineBench struct {
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	Policy   string `json:"policy"`
	// States is the compiled table's reachable-state count;
	// TableBuildMS the one-off compile cost amortized over the
	// repetitions (already included in CompiledRepsPerSec).
	States       int     `json:"states"`
	TableBuildMS float64 `json:"table_build_ms"`
	// CompiledRepsPerSec and GenericRepsPerSec are sequential
	// single-worker throughputs, so the ratio isolates the engine —
	// compiled policies additionally parallelize, generic adaptive
	// estimation of observer policies cannot.
	CompiledRepsPerSec float64 `json:"compiled_reps_per_sec"`
	GenericRepsPerSec  float64 `json:"generic_reps_per_sec"`
	Speedup            float64 `json:"speedup"`
	// UnsplicedRepsPerSec is the same compiled run with the
	// terminal-layer splice disabled (every ≤2-unfinished endgame walked
	// step by step); SpliceSpeedup = Compiled/Unspliced records what the
	// closed-form tails buy on this family.
	UnsplicedRepsPerSec float64 `json:"unspliced_reps_per_sec,omitempty"`
	SpliceSpeedup       float64 `json:"splice_speedup,omitempty"`
	Error               string  `json:"error,omitempty"`
}

// BitParallelEngineBench is one row of the bitparallel_engine
// section: the 64-lane bit-parallel engine measured head to head
// against the scalar compiled engine on the same policy — the number
// the CI bench-smoke gate asserts stays ≥5x on the T12 families.
type BitParallelEngineBench struct {
	Family   string `json:"family"`
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`
	Policy   string `json:"policy"`
	// LaneEngine / ScalarEngine are the EngineUsed names of the two
	// timed runs ("compiled-lane" vs "compiled", or the -adaptive
	// pair); Lanes is the lockstep width (64).
	LaneEngine   string `json:"lane_engine"`
	ScalarEngine string `json:"scalar_engine"`
	Lanes        int    `json:"lanes"`
	Reps         int    `json:"reps"`
	// PartialLanes records the tail remainder: reps % lanes repetitions
	// run in a final partial group (masked lanes), chosen non-zero on
	// purpose so the record always exercises that path.
	PartialLanes int `json:"partial_lanes"`
	// LaneRepsPerSec and ScalarRepsPerSec are sequential single-worker
	// throughputs at identical rep counts, so the ratio isolates the
	// lane restructuring.
	LaneRepsPerSec   float64 `json:"lane_reps_per_sec"`
	ScalarRepsPerSec float64 `json:"scalar_reps_per_sec"`
	// LaneNsPerStep normalizes the lane run by simulated machine-steps.
	LaneNsPerStep float64 `json:"lane_ns_per_step"`
	Speedup       float64 `json:"speedup"`
	// UnsplicedLaneRepsPerSec is the lane run with the terminal-layer
	// splice disabled; SpliceSpeedup = Lane/UnsplicedLane. Families
	// whose tail shape the splice cannot close record ≈1.
	UnsplicedLaneRepsPerSec float64 `json:"unspliced_lane_reps_per_sec,omitempty"`
	SpliceSpeedup           float64 `json:"splice_speedup,omitempty"`
	Error                   string  `json:"error,omitempty"`
}

// SimBenchFile is the BENCH_sim.json document.
type SimBenchFile struct {
	Generated string `json:"generated"`
	// Commit is the VCS revision the record was measured at (CI passes
	// $GITHUB_SHA through suu-bench -commit), so an uploaded artifact
	// is attributable without its workflow context.
	Commit     string     `json:"commit,omitempty"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Quick      bool       `json:"quick"`
	Seed       int64      `json:"seed"`
	Benchmarks []SimBench `json:"benchmarks"`
	// SolverBuilds records per-solver construction cost across the
	// registry.
	SolverBuilds []SolverBuildBench `json:"solver_build"`
	// LPBench records the LP layer benchmarked in isolation
	// (build+solve per family/size, sparse vs dense).
	LPBench []LPBench `json:"lp_bench,omitempty"`
	// AdaptiveEngine records the compiled-adaptive vs generic-step
	// estimation throughput on stationary policies.
	AdaptiveEngine []AdaptiveEngineBench `json:"adaptive_engine,omitempty"`
	// BitParallelEngine records the 64-lane bit-parallel engine vs the
	// scalar compiled engines on the same policies.
	BitParallelEngine []BitParallelEngineBench `json:"bitparallel_engine,omitempty"`
	// ExactSolver records the layered value iteration's wall-clock and
	// state-space shape per family, with the exhaustive-DP oracle timed
	// side by side where it is feasible.
	ExactSolver []ExactSolverBench `json:"exact_solver,omitempty"`
	// Dynamic records the T15 dynamic-scenario strategies head to head
	// (oblivious vs adaptive vs rolling re-solve) at each burst
	// intensity, with the oblivious-vs-rolling adaptivity gap.
	Dynamic []DynamicBench `json:"dynamic,omitempty"`
	// Grid records the scenario-grid harness's cell throughput and
	// parallel speedup.
	Grid *GridHarnessBench `json:"grid_harness,omitempty"`
	// Dispatch records the fault-tolerant dispatch layer: per-runner
	// throughput and the wall-clock overhead of a chaos sweep vs the
	// fault-free run (filled by internal/dispatch via cmd/suu-bench).
	Dispatch *DispatchBench `json:"dispatch,omitempty"`
	// Serve records the serving layer's load harness: concurrent-client
	// storm, cache-hit vs cold latency, coalescing counters (filled by
	// internal/serve via cmd/suu-bench).
	Serve *ServeBench `json:"serve,omitempty"`
	// Skipped records families whose schedule construction failed, so
	// a lost row reads as an error instead of silently shrinking the
	// perf record.
	Skipped []string `json:"skipped,omitempty"`
}

// simBenchCase is one workload family of the engine benchmark suite.
type simBenchCase struct {
	family string
	build  func(seed int64) (*model.Instance, sched.Policy, string, error)
}

func simBenchCases() []simBenchCase {
	return []simBenchCase{
		{family: "chains-96x12", build: func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Chains(workload.Config{Jobs: 96, Machines: 12, Seed: seed}, 8)
			res, err := core.SUUChains(in, paramsWithSeed(seed))
			if err != nil {
				return nil, nil, "", err
			}
			return in, res.Schedule, "chains (Thm 4.4)", nil
		}},
		{family: "independent-64x16", build: func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Independent(workload.Config{Jobs: 64, Machines: 16, Seed: seed})
			res, err := core.SUUIndependentLP(in, paramsWithSeed(seed))
			if err != nil {
				return nil, nil, "", err
			}
			return in, res.Schedule, "oblivious-lp (Thm 4.5)", nil
		}},
		{family: "outforest-64x8", build: func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.OutTree(workload.Config{Jobs: 64, Machines: 8, Seed: seed})
			res, err := core.SUUForest(in, paramsWithSeed(seed))
			if err != nil {
				return nil, nil, "", err
			}
			return in, res.Schedule, "trees (Thm 4.8)", nil
		}},
		{family: "adaptive-32x8", build: func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Independent(workload.Config{Jobs: 32, Machines: 8, Seed: seed})
			return in, &core.AdaptivePolicy{In: in}, "adaptive (Thm 3.3)", nil
		}},
	}
}

// NewSimBenchFile returns a BENCH_sim.json document with only the
// environment header filled in.
func NewSimBenchFile(cfg Config) SimBenchFile {
	return SimBenchFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      cfg.Quick,
		Seed:       cfg.Seed,
	}
}

// SimBenchmarks measures engine throughput on every workload family.
// Construction happens outside the timed region.
func SimBenchmarks(cfg Config) SimBenchFile {
	reps := 2000
	if cfg.Quick {
		reps = 400
	}
	file := NewSimBenchFile(cfg)
	for _, bc := range simBenchCases() {
		in, pol, polName, err := bc.build(cfg.Seed)
		if err != nil {
			file.Skipped = append(file.Skipped, fmt.Sprintf("%s: %v", bc.family, err))
			continue
		}
		caseReps := reps
		if !sim.UsesCompiledEngine(in, pol) {
			caseReps = reps / 4 // the step engine is the slow path; keep the suite quick
		}
		repsPerSec, nsPerStep, mean, eng := measureEngineInfo(in, pol, caseReps, cfg.Seed+43)
		quants, _ := sim.MakespanQuantiles(in, pol, caseReps/2, 5_000_000, cfg.Seed+47, []float64{0.5, 0.99})
		file.Benchmarks = append(file.Benchmarks, SimBench{
			Family:       bc.family,
			Jobs:         in.N,
			Machines:     in.M,
			Policy:       polName,
			Engine:       eng.Engine,
			Reps:         caseReps,
			RepsPerSec:   repsPerSec,
			NsPerStep:    nsPerStep,
			AllocsPerRep: allocsPerRep(in, pol, cfg.Seed+43),
			MeanMakespan: mean,
			P50:          quants[0],
			P99:          quants[1],
		})
	}
	file.SolverBuilds = SolverBuildBenchmarks(cfg)
	file.AdaptiveEngine = AdaptiveEngineBenchmarks(cfg)
	file.BitParallelEngine = BitParallelEngineBenchmarks(cfg)
	file.ExactSolver = ExactSolverBenchmarks(cfg)
	file.LPBench = LPBenchmarks(cfg)
	file.Dynamic = DynamicBenchmarks(cfg)
	file.Grid = GridHarnessBenchmark(cfg)
	return file
}

// adaptiveEngineCases are the stationary-policy workloads the
// adaptive_engine section measures: an independent instance whose
// 2^12-state lattice sits inside the compile budget, and a chains
// instance whose precedence collapses the state space to a product of
// chain lengths.
func adaptiveEngineCases(cfg Config) []struct {
	family string
	in     *model.Instance
} {
	seed := sim.SeedFor(cfg.Seed, "bench-adaptive")
	return []struct {
		family string
		in     *model.Instance
	}{
		{"independent-12x4", workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: seed})},
		{"chains-20x5", workload.Chains(workload.Config{Jobs: 20, Machines: 5, Seed: seed}, 4)},
	}
}

// AdaptiveEngineBenchmarks measures the compiled transition-table
// engine against the generic step engine on the MSM greedy policy.
// Both runs are sequential single-worker estimations with identical
// per-rep streams, so only the engine differs; the generic run is
// forced through a PolicyFunc wrapper, which strips the Memoizable
// marker without touching the assignments.
func AdaptiveEngineBenchmarks(cfg Config) []AdaptiveEngineBench {
	// This section measures the SCALAR table walk (the lane engine has
	// its own bitparallel_engine section), so pin lanes off for the
	// duration — at these rep counts auto dispatch would select them.
	defer sim.SetBitParallel(sim.BitParallelOff)()
	compiledReps, genericReps := 4000, 1000
	if cfg.Quick {
		compiledReps, genericReps = 1000, 250
	}
	var out []AdaptiveEngineBench
	for _, bc := range adaptiveEngineCases(cfg) {
		pol := &core.AdaptivePolicy{In: bc.in}
		row := AdaptiveEngineBench{
			Family: bc.family, Jobs: bc.in.N, Machines: bc.in.M,
			Policy: "adaptive (Thm 3.3)",
		}
		start := time.Now()
		_, _, eng := sim.EstimateInfo(bc.in, pol, compiledReps, 5_000_000, cfg.Seed+53)
		compiledSec := time.Since(start).Seconds()
		if eng.Engine != sim.EngineCompiledAdaptive {
			row.Error = fmt.Sprintf("expected compiled-adaptive engine, ran %s", eng.Engine)
			out = append(out, row)
			continue
		}
		row.States = eng.States
		row.TableBuildMS = eng.TableBuildMS
		// Same compiled walk with the terminal-layer splice off, so the
		// record carries the closed-form endgame's before/after.
		restore := sim.SetTerminalSplice(false)
		start = time.Now()
		sim.EstimateInfo(bc.in, pol, compiledReps, 5_000_000, cfg.Seed+53)
		unsplicedSec := time.Since(start).Seconds()
		restore()
		start = time.Now()
		sim.Estimate(bc.in, sched.PolicyFunc(pol.Assign), genericReps, 5_000_000, cfg.Seed+53)
		genericSec := time.Since(start).Seconds()
		if compiledSec > 0 {
			row.CompiledRepsPerSec = float64(compiledReps) / compiledSec
		}
		if unsplicedSec > 0 {
			row.UnsplicedRepsPerSec = float64(compiledReps) / unsplicedSec
		}
		if row.UnsplicedRepsPerSec > 0 {
			row.SpliceSpeedup = row.CompiledRepsPerSec / row.UnsplicedRepsPerSec
		}
		if genericSec > 0 {
			row.GenericRepsPerSec = float64(genericReps) / genericSec
		}
		if row.GenericRepsPerSec > 0 {
			row.Speedup = row.CompiledRepsPerSec / row.GenericRepsPerSec
		}
		out = append(out, row)
	}
	return out
}

// bitParallelEngineCases are the workloads the bitparallel_engine
// section measures: the two T12 chains families the CI gate reads
// (the paper constructions whose throughput story this engine
// continues), the widest oblivious LP family, and one compiled-
// adaptive policy for the lane table walk.
func bitParallelEngineCases(cfg Config) []struct {
	family string
	build  func(seed int64) (*model.Instance, sched.Policy, string, error)
} {
	chains := func(jobs, machines, nChains int) func(seed int64) (*model.Instance, sched.Policy, string, error) {
		return func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Chains(workload.Config{Jobs: jobs, Machines: machines, Seed: seed}, nChains)
			res, err := core.SUUChains(in, paramsWithSeed(seed))
			if err != nil {
				return nil, nil, "", err
			}
			return in, res.Schedule, "chains (Thm 4.4)", nil
		}
	}
	return []struct {
		family string
		build  func(seed int64) (*model.Instance, sched.Policy, string, error)
	}{
		{"chains-48x8", chains(48, 8, 6)},
		{"chains-96x12", chains(96, 12, 8)},
		{"independent-64x16", func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Independent(workload.Config{Jobs: 64, Machines: 16, Seed: seed})
			res, err := core.SUUIndependentLP(in, paramsWithSeed(seed))
			if err != nil {
				return nil, nil, "", err
			}
			return in, res.Schedule, "oblivious-lp (Thm 4.5)", nil
		}},
		{"adaptive-12x4", func(seed int64) (*model.Instance, sched.Policy, string, error) {
			in := workload.Independent(workload.Config{Jobs: 12, Machines: 4, Seed: seed})
			return in, &core.AdaptivePolicy{In: in}, "adaptive (Thm 3.3)", nil
		}},
	}
}

// BitParallelEngineBenchmarks measures the 64-lane bit-parallel
// engine against the scalar compiled engine, forced through the
// BitParallel knob on otherwise identical sequential single-worker
// estimations. Rep counts are deliberately not lane-width multiples,
// so every record includes a masked partial tail group.
func BitParallelEngineBenchmarks(cfg Config) []BitParallelEngineBench {
	reps := 8024
	if cfg.Quick {
		reps = 2008
	}
	var out []BitParallelEngineBench
	for _, bc := range bitParallelEngineCases(cfg) {
		seed := sim.SeedFor(cfg.Seed, "bench-bitparallel/"+bc.family)
		in, pol, polName, err := bc.build(seed)
		row := BitParallelEngineBench{Family: bc.family, Policy: polName}
		if err != nil {
			row.Error = err.Error()
			out = append(out, row)
			continue
		}
		row.Jobs, row.Machines = in.N, in.M
		row.Reps, row.PartialLanes = reps, reps%sim.LaneWidth
		bestOf3 := func(mode sim.BitParallelMode) (float64, float64, sim.EngineUsed) {
			defer sim.SetBitParallel(mode)()
			best, mean := -1.0, 0.0
			var eng sim.EngineUsed
			for try := 0; try < 3; try++ {
				start := time.Now()
				sum, _, e := sim.EstimateInfo(in, pol, reps, 5_000_000, seed+59)
				if sec := time.Since(start).Seconds(); best < 0 || sec < best {
					best, mean, eng = sec, sum.Mean, e
				}
			}
			return best, mean, eng
		}
		laneSec, laneMean, laneEng := bestOf3(sim.BitParallelOn)
		scalarSec, _, scalarEng := bestOf3(sim.BitParallelOff)
		row.LaneEngine, row.ScalarEngine = laneEng.Engine, scalarEng.Engine
		row.Lanes = laneEng.Lanes
		if laneEng.Lanes != sim.LaneWidth {
			row.Error = fmt.Sprintf("expected a %d-lane engine, ran %s", sim.LaneWidth, laneEng.Engine)
			out = append(out, row)
			continue
		}
		if laneSec > 0 {
			row.LaneRepsPerSec = float64(reps) / laneSec
			if steps := laneMean * float64(reps); steps > 0 {
				row.LaneNsPerStep = laneSec * 1e9 / steps
			}
		}
		if scalarSec > 0 {
			row.ScalarRepsPerSec = float64(reps) / scalarSec
		}
		if row.ScalarRepsPerSec > 0 {
			row.Speedup = row.LaneRepsPerSec / row.ScalarRepsPerSec
		}
		// Lane run again with the terminal-layer splice off: the
		// before/after of the closed-form endgame on this family.
		restore := sim.SetTerminalSplice(false)
		unsplicedSec, _, _ := bestOf3(sim.BitParallelOn)
		restore()
		if unsplicedSec > 0 {
			row.UnsplicedLaneRepsPerSec = float64(reps) / unsplicedSec
		}
		if row.UnsplicedLaneRepsPerSec > 0 {
			row.SpliceSpeedup = row.LaneRepsPerSec / row.UnsplicedLaneRepsPerSec
		}
		out = append(out, row)
	}
	return out
}

// SolverBuildBenchmarks times every registry solver's construction on
// a reference workload of its class. Build time matters independently
// of engine throughput: the LP pipelines pay simplex up front, and
// the scenario grid pays it once per cell.
func SolverBuildBenchmarks(cfg Config) []SolverBuildBench {
	jobs, machines := 48, 8
	if cfg.Quick {
		jobs, machines = 24, 6
	}
	refs := map[string]struct {
		family string
		gen    func(seed int64) *model.Instance
	}{
		"chains": {"chains", func(seed int64) *model.Instance {
			return workload.Chains(workload.Config{Jobs: jobs, Machines: machines, Seed: seed}, machines/2)
		}},
		"forest": {"out-tree", func(seed int64) *model.Instance {
			return workload.OutTree(workload.Config{Jobs: jobs, Machines: machines, Seed: seed})
		}},
		"optimal": {"independent", func(seed int64) *model.Instance {
			return workload.Independent(workload.Config{Jobs: 6, Machines: 2, Seed: seed})
		}},
	}
	defaultGen := func(seed int64) *model.Instance {
		return workload.Independent(workload.Config{Jobs: jobs, Machines: machines, Seed: seed})
	}
	var out []SolverBuildBench
	for _, s := range solve.All() {
		family, gen := "independent", defaultGen
		if ref, ok := refs[s.ID]; ok {
			family, gen = ref.family, ref.gen
		}
		seed := sim.SeedFor(cfg.Seed, "bench-build/"+s.ID)
		in := gen(seed)
		row := SolverBuildBench{
			Solver: s.ID, Theorem: s.Theorem, Family: family, Jobs: in.N, Machines: in.M,
		}
		par := paramsWithSeed(sim.SeedFor(seed, "build"))
		best := -1.0
		for try := 0; try < 3; try++ {
			start := time.Now()
			res, err := s.Build(in, par)
			elapsed := float64(time.Since(start).Nanoseconds()) / 1e6
			if err != nil {
				row.Error = err.Error()
				break
			}
			row.PrefixLen = res.PrefixLen
			row.LPPivots = res.LPPivots
			row.LPRows = res.LPRows
			row.LPCols = res.LPCols
			row.LPNnz = res.LPNnz
			if best < 0 || elapsed < best {
				best = elapsed
			}
		}
		if best >= 0 {
			row.BuildMS = best
		}
		// LP-backed solvers: rebuild with the dense oracle for the
		// side-by-side record.
		if row.Error == "" && row.LPPivots > 0 {
			parDense := par
			parDense.DenseLP = true
			bestDense := -1.0
			for try := 0; try < 3; try++ {
				start := time.Now()
				if _, err := s.Build(in, parDense); err != nil {
					bestDense = -1
					break
				}
				if elapsed := float64(time.Since(start).Nanoseconds()) / 1e6; bestDense < 0 || elapsed < bestDense {
					bestDense = elapsed
				}
			}
			if bestDense > 0 {
				row.DenseBuildMS = bestDense
				if row.BuildMS > 0 {
					row.SpeedupVsDense = bestDense / row.BuildMS
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// GridBenchSpec is the short CPU-heavy reference grid shape shared by
// the BENCH_sim.json grid-harness record and the speedup test. The
// quick flag only scales the trial count: the CI bench job records
// the quick variant while TestGridSpeedup times the full one, so the
// two numbers describe the same workload at different sizes, not the
// same measurement.
func GridBenchSpec(quick bool) GridSpec {
	var points []GridPoint
	for _, sc := range []string{"independent", "chains", "out-tree", "power-law"} {
		points = append(points, GridPoint{Scenario: sc, Jobs: 24, Machines: 6})
	}
	trials := 4
	if quick {
		trials = 2
	}
	return GridSpec{Points: points, Solvers: []string{"forest", "adaptive"}, Trials: trials}
}

// GridHarnessBenchmark measures the scenario-grid harness on the
// reference grid: cells/sec with the configured worker pool vs the
// sequential harness. The speedup column is the number the acceptance
// bar reads (≥ 2× on a multi-core runner); on a single-core machine
// it hovers near 1.
func GridHarnessBenchmark(cfg Config) *GridHarnessBench {
	spec := GridBenchSpec(cfg.Quick)
	cells := len(spec.Cells())
	par := cfg
	par.Workers = 0    // full pool
	RunGrid(par, spec) // warm caches before timing
	start := time.Now()
	RunGrid(par, spec)
	parSec := time.Since(start).Seconds()
	seq := cfg
	seq.Workers = 1
	start = time.Now()
	RunGrid(seq, spec)
	seqSec := time.Since(start).Seconds()
	b := &GridHarnessBench{
		Cells:   cells,
		Workers: par.workers(),
	}
	if parSec > 0 {
		b.CellsPerSec = float64(cells) / parSec
	}
	if seqSec > 0 {
		b.SeqCellsPerSec = float64(cells) / seqSec
	}
	if b.SeqCellsPerSec > 0 {
		b.Speedup = b.CellsPerSec / b.SeqCellsPerSec
	}
	return b
}

// allocsPerRep measures steady-state allocations per repetition by
// differencing two Estimate calls, cancelling the fixed per-call cost
// (schedule compilation, accumulators, worker state).
func allocsPerRep(in *model.Instance, pol sched.Policy, seed int64) float64 {
	const base = 32
	small := testing.AllocsPerRun(3, func() { sim.Estimate(in, pol, base, 5_000_000, seed) })
	large := testing.AllocsPerRun(3, func() { sim.Estimate(in, pol, 2*base, 5_000_000, seed) })
	per := (large - small) / base
	if per < 0 {
		per = 0
	}
	return per
}

// WriteSimBenchJSON renders the document with stable indentation.
func WriteSimBenchJSON(f SimBenchFile) ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
