package workload

import (
	"testing"

	"suu/internal/dag"
)

func TestIndependentValidates(t *testing.T) {
	in := Independent(Config{Jobs: 10, Machines: 4, Seed: 1})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Prec.E() != 0 {
		t.Error("independent instance has edges")
	}
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			if in.P[i][j] < 0.05-1e-12 || in.P[i][j] > 0.95+1e-12 {
				t.Fatalf("P[%d][%d]=%v outside defaults", i, j, in.P[i][j])
			}
		}
	}
}

func TestChainsClass(t *testing.T) {
	in := Chains(Config{Jobs: 12, Machines: 3, Seed: 2}, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.Prec.Classify(); got != dag.ClassChains {
		t.Errorf("class=%v, want chains", got)
	}
	chains, err := in.Prec.Chains()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Errorf("%d chains, want 3", len(chains))
	}
	total := 0
	for _, c := range chains {
		total += len(c)
	}
	if total != 12 {
		t.Errorf("chains cover %d jobs, want 12", total)
	}
}

func TestTreesClass(t *testing.T) {
	out := OutTree(Config{Jobs: 15, Machines: 3, Seed: 3})
	if got := out.Prec.Classify(); got != dag.ClassOutForest {
		t.Errorf("out-tree class=%v", got)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	intr := InTree(Config{Jobs: 15, Machines: 3, Seed: 4})
	if got := intr.Prec.Classify(); got != dag.ClassInForest {
		t.Errorf("in-tree class=%v", got)
	}
}

func TestMixedForestClass(t *testing.T) {
	in := MixedForest(Config{Jobs: 20, Machines: 4, Seed: 5}, 4)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	cls := in.Prec.Classify()
	switch cls {
	case dag.ClassMixedForest, dag.ClassOutForest, dag.ClassInForest, dag.ClassChains:
		// Depending on sizes, some components degenerate to chains; all
		// of these classes are forests and acceptable.
	default:
		t.Errorf("class=%v, want a forest class", cls)
	}
}

func TestLayeredIsAcyclic(t *testing.T) {
	in := Layered(Config{Jobs: 18, Machines: 4, Seed: 6}, 3, 0.4)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Prec.E() == 0 {
		t.Error("layered dag generated no edges (density 0.4, 18 jobs)")
	}
}

func TestScenarios(t *testing.T) {
	g := GridPipeline(20, 6, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Prec.Classify(); got != dag.ClassOutForest && got != dag.ClassChains {
		t.Errorf("grid pipeline class=%v, want out-forest-ish", got)
	}
	p := ProjectPlan(10, 4, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Prec.Classify(); got != dag.ClassChains {
		t.Errorf("project plan class=%v, want chains", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := Independent(Config{Jobs: 6, Machines: 3, Seed: 42})
	b := Independent(Config{Jobs: 6, Machines: 3, Seed: 42})
	for i := range a.P {
		for j := range a.P[i] {
			if a.P[i][j] != b.P[i][j] {
				t.Fatal("same seed, different instance")
			}
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	in := Independent(Config{Jobs: 24, Machines: 8, Shape: PowerLaw, Seed: 10})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: far more entries in the bottom third of the range
	// than the top third.
	lo, hi := 0, 0
	for i := range in.P {
		for _, p := range in.P[i] {
			if p < 0.05+0.3*0.9 {
				lo++
			}
			if p > 0.05+0.7*0.9 {
				hi++
			}
		}
	}
	if lo <= 2*hi {
		t.Errorf("power-law not heavy-tailed: %d low vs %d high entries", lo, hi)
	}
}

func TestCorrelatedShapeIsRankOne(t *testing.T) {
	in := Independent(Config{Jobs: 10, Machines: 5, Shape: Correlated, Lo: 0.1, Hi: 0.9, Seed: 11})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// p = Lo + span·s_i·e_j, so (p[0][j]-Lo)/(p[1][j]-Lo) is constant
	// over j: the speed ratio s_0/s_1.
	ratio := (in.P[0][0] - 0.1) / (in.P[1][0] - 0.1)
	for j := 1; j < in.N; j++ {
		r := (in.P[0][j] - 0.1) / (in.P[1][j] - 0.1)
		if r/ratio < 0.999 || r/ratio > 1.001 {
			t.Fatalf("correlated matrix not rank one: ratio %v vs %v at job %d", r, ratio, j)
		}
	}
}

func TestLayeredWidthTunesWidth(t *testing.T) {
	// Cross-layer antichains keep the dag width above the layer width,
	// but the knob must still control it monotonically, and the layer
	// structure fixes the depth exactly.
	prev := 0
	for _, width := range []int{2, 4, 6} {
		in := LayeredWidth(Config{Jobs: 24, Machines: 4, Seed: 12}, width, 0.3)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		got := in.Prec.Width()
		if got < width {
			t.Errorf("width %d: dag width %d below the layer width", width, got)
		}
		if got < prev {
			t.Errorf("width %d: dag width %d decreased from %d", width, got, prev)
		}
		prev = got
		wantDepth := (24 + width - 1) / width
		if d := in.Prec.Depth(); d != wantDepth {
			t.Errorf("width %d: depth %d, want %d layers", width, d, wantDepth)
		}
	}
}

func TestSpecialistShape(t *testing.T) {
	in := Independent(Config{Jobs: 6, Machines: 3, Shape: Specialist, Lo: 0.1, Hi: 0.9, Seed: 9})
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			want := 0.1
			if j%3 == i {
				want = 0.9
			}
			if in.P[i][j] != want {
				t.Errorf("P[%d][%d]=%v, want %v", i, j, in.P[i][j], want)
			}
		}
	}
}
