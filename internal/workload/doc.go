// Package workload generates SUU instances for tests, examples, and
// the experiment harness: random probability matrices of several
// shapes (uniform, machine specialists, bimodal) combined with the
// precedence families analysed in the paper (independent, disjoint
// chains, out-/in-trees, mixed forests, and layered general dags).
package workload
