package workload

import (
	"math/rand"

	"suu/internal/model"
)

// ProbShape selects how success probabilities are drawn.
type ProbShape int

const (
	// Uniform draws p[i][j] ~ U[Lo, Hi].
	Uniform ProbShape = iota
	// Specialist gives machine i probability Hi on jobs j with
	// j mod m == i and Lo elsewhere — the project-management story of
	// skilled workers.
	Specialist
	// Bimodal draws Hi with probability 0.25 and Lo otherwise — a grid
	// with a few well-placed fast nodes per job.
	Bimodal
	// PowerLaw draws p = Lo + (Hi-Lo)·u³ for u ~ U[0,1): a heavy-tailed
	// matrix in which most (machine, job) pairs sit near Lo and a thin
	// tail is fast — web-scale fleets where capable workers are rare.
	PowerLaw
	// Correlated draws a latent speed per machine and ease per job and
	// sets p = Lo + (Hi-Lo)·speed·ease: fast machines are fast on
	// everything, hard jobs are hard for everyone. The rank-1 structure
	// defeats schedulers that assume independent entries.
	Correlated
)

// Config parameterizes instance generation.
type Config struct {
	Jobs     int
	Machines int
	Shape    ProbShape
	// Lo and Hi bound the probabilities (defaults 0.05 and 0.95).
	Lo, Hi float64
	Seed   int64
}

func (c Config) defaults() Config {
	if c.Lo == 0 && c.Hi == 0 {
		c.Lo, c.Hi = 0.05, 0.95
	}
	return c
}

// fillProbs populates the matrix per the config and guarantees every
// job has at least one machine with probability >= Lo.
func fillProbs(in *model.Instance, c Config, rng *rand.Rand) {
	var speed, ease []float64
	if c.Shape == Correlated {
		speed = make([]float64, in.M)
		for i := range speed {
			speed[i] = 0.2 + 0.8*rng.Float64()
		}
		ease = make([]float64, in.N)
		for j := range ease {
			ease[j] = 0.2 + 0.8*rng.Float64()
		}
	}
	for i := 0; i < in.M; i++ {
		for j := 0; j < in.N; j++ {
			switch c.Shape {
			case Uniform:
				in.P[i][j] = c.Lo + (c.Hi-c.Lo)*rng.Float64()
			case Specialist:
				if j%in.M == i {
					in.P[i][j] = c.Hi
				} else {
					in.P[i][j] = c.Lo
				}
			case Bimodal:
				if rng.Float64() < 0.25 {
					in.P[i][j] = c.Hi
				} else {
					in.P[i][j] = c.Lo
				}
			case PowerLaw:
				u := rng.Float64()
				in.P[i][j] = c.Lo + (c.Hi-c.Lo)*u*u*u
			case Correlated:
				in.P[i][j] = c.Lo + (c.Hi-c.Lo)*speed[i]*ease[j]
			}
		}
	}
	for j := 0; j < in.N; j++ {
		ok := false
		for i := 0; i < in.M; i++ {
			if in.P[i][j] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			in.P[rng.Intn(in.M)][j] = c.Hi
		}
	}
}

// Independent generates an instance with no precedence constraints.
func Independent(c Config) *model.Instance {
	c = c.defaults()
	rng := rand.New(rand.NewSource(c.Seed))
	in := model.New(c.Jobs, c.Machines)
	fillProbs(in, c, rng)
	return in
}

// Chains generates an instance whose dag is nChains disjoint chains of
// (nearly) equal length covering all jobs.
func Chains(c Config, nChains int) *model.Instance {
	in := Independent(c)
	if nChains < 1 {
		nChains = 1
	}
	if nChains > c.Jobs {
		nChains = c.Jobs
	}
	for start := 0; start < nChains; start++ {
		prev := -1
		for j := start; j < c.Jobs; j += nChains {
			if prev >= 0 {
				in.Prec.MustEdge(prev, j)
			}
			prev = j
		}
	}
	return in
}

// OutTree generates a random recursive out-tree: job v's parent is
// uniform over 0..v-1.
func OutTree(c Config) *model.Instance {
	in := Independent(c)
	rng := rand.New(rand.NewSource(c.Seed + 1))
	for v := 1; v < c.Jobs; v++ {
		in.Prec.MustEdge(rng.Intn(v), v)
	}
	return in
}

// InTree generates a random in-tree (edges toward job 0).
func InTree(c Config) *model.Instance {
	in := Independent(c)
	rng := rand.New(rand.NewSource(c.Seed + 2))
	for v := 1; v < c.Jobs; v++ {
		in.Prec.MustEdge(v, rng.Intn(v))
	}
	return in
}

// MixedForest generates components alternating between out-trees and
// in-trees of random sizes.
func MixedForest(c Config, components int) *model.Instance {
	in := Independent(c)
	rng := rand.New(rand.NewSource(c.Seed + 3))
	if components < 1 {
		components = 1
	}
	// Partition jobs into components round-robin, then wire each.
	member := make([][]int, components)
	for j := 0; j < c.Jobs; j++ {
		k := j % components
		member[k] = append(member[k], j)
	}
	for k, verts := range member {
		inTree := k%2 == 1
		for idx := 1; idx < len(verts); idx++ {
			p := verts[rng.Intn(idx)]
			v := verts[idx]
			if inTree {
				in.Prec.MustEdge(v, p)
			} else {
				in.Prec.MustEdge(p, v)
			}
		}
	}
	return in
}

// Layered generates a general dag of the given number of layers with
// edges only between consecutive layers, each present with probability
// density — the fallback (level-decomposition) regime.
func Layered(c Config, layers int, density float64) *model.Instance {
	in := Independent(c)
	rng := rand.New(rand.NewSource(c.Seed + 4))
	if layers < 1 {
		layers = 1
	}
	layerOf := make([]int, c.Jobs)
	for j := 0; j < c.Jobs; j++ {
		layerOf[j] = j * layers / c.Jobs
	}
	for u := 0; u < c.Jobs; u++ {
		for v := 0; v < c.Jobs; v++ {
			if layerOf[v] == layerOf[u]+1 && rng.Float64() < density {
				in.Prec.MustEdge(u, v)
			}
		}
	}
	return in
}

// LayeredWidth generates a layered random dag whose antichain width
// is tunable: ⌈Jobs/width⌉ consecutive layers of (up to) width jobs
// each; every job beyond the first layer gets one parent in the
// previous layer (keeping the layering tight), plus extra
// previous-layer edges with probability density. This is the general
// (level-decomposition fallback) regime with Malewicz's hardness
// parameter under direct experimental control.
func LayeredWidth(c Config, width int, density float64) *model.Instance {
	in := Independent(c)
	rng := rand.New(rand.NewSource(c.Seed + 6))
	if width < 1 {
		width = 1
	}
	layerOf := make([]int, c.Jobs)
	for j := 0; j < c.Jobs; j++ {
		layerOf[j] = j / width
	}
	for v := 0; v < c.Jobs; v++ {
		l := layerOf[v]
		if l == 0 {
			continue
		}
		lo, hi := (l-1)*width, l*width // previous layer is [lo, hi)
		if hi > c.Jobs {
			hi = c.Jobs
		}
		in.Prec.MustEdge(lo+rng.Intn(hi-lo), v)
		for u := lo; u < hi; u++ {
			if rng.Float64() < density {
				// MustEdge tolerates duplicates of the mandatory parent edge.
				in.Prec.MustEdge(u, v)
			}
		}
	}
	return in
}

// GridPipeline models the paper's grid-computing motivation: a root
// partitioning task fans out into worker subtasks organised as an
// out-tree (each subtask may spawn finer subtasks), with bimodal
// machine quality (geographically near nodes are fast).
func GridPipeline(jobs, machines int, seed int64) *model.Instance {
	c := Config{Jobs: jobs, Machines: machines, Shape: Bimodal, Lo: 0.1, Hi: 0.9, Seed: seed}
	in := Independent(c)
	rng := rand.New(rand.NewSource(seed + 5))
	for v := 1; v < jobs; v++ {
		// Prefer recent parents: shallow bushy tree like map-reduce fan-out.
		lo := v - 4
		if lo < 0 {
			lo = 0
		}
		in.Prec.MustEdge(lo+rng.Intn(v-lo), v)
	}
	return in
}

// ProjectPlan models the project-management motivation: two parallel
// work streams (chains) merging conceptually at the end (kept as
// disjoint chains to stay in the SUU-C class), with specialist
// workers.
func ProjectPlan(jobs, workers int, seed int64) *model.Instance {
	c := Config{Jobs: jobs, Machines: workers, Shape: Specialist, Lo: 0.1, Hi: 0.85, Seed: seed}
	return Chains(c, 2)
}

// ArrivalRamp returns per-job release steps for a staggered-arrival
// scenario: job j arrives at step j*spacing, so the workload streams
// in one job per spacing steps instead of being fully present at step
// 0. Spacing 0 (or negative) is the static arrival pattern — every
// entry zero. The slice plugs directly into dyn.Scenario.ArriveAt.
func ArrivalRamp(jobs, spacing int) []int {
	out := make([]int, jobs)
	if spacing <= 0 {
		return out
	}
	for j := range out {
		out[j] = j * spacing
	}
	return out
}
