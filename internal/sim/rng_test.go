package sim

import (
	"math/rand"
	"testing"
)

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	a := SeedFor(1, "T6", 12, 4, 0)
	if a != SeedFor(1, "T6", 12, 4, 0) {
		t.Fatal("SeedFor not deterministic")
	}
	seen := map[int64]string{}
	add := func(name string, v int64) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("seed collision between %s and %s", prev, name)
		}
		seen[v] = name
	}
	add("base", a)
	add("other root", SeedFor(2, "T6", 12, 4, 0))
	add("other label", SeedFor(1, "T7", 12, 4, 0))
	add("other coord", SeedFor(1, "T6", 12, 4, 1))
	add("fewer coords", SeedFor(1, "T6", 12, 4))
	add("empty label", SeedFor(1, "", 12, 4, 0))
	// Domain separation: a coord absorbed into the label must not
	// alias the (label, coord) form.
	add("label/coord boundary", SeedFor(1, "T6\x0c", 4, 0))
	add("label eats coord byte", SeedFor(1, "T6\x0c\x04", 0))
	for i := int64(0); i < 100; i++ {
		add("trial", SeedFor(7, "grid", 32, 8, i))
	}
}

func TestStreamReseedMatchesNewStream(t *testing.T) {
	s := NewStream(9)
	first := s.Uint64()
	s.Reseed(9, 0)
	if s.Uint64() != first {
		t.Error("Reseed(seed,0) does not reproduce NewStream(seed)")
	}
}

// TestStreamIsRandSource64 pins the Source64 contract the experiment
// drivers rely on for derived streams (rand.New over a SeedFor-seeded
// Stream): rand.Rand must consume the stream through Uint64 — the
// same finalized SplitMix64 outputs the engine draws — and two
// generators from the same seed must agree draw for draw.
func TestStreamIsRandSource64(t *testing.T) {
	var _ rand.Source64 = (*Stream)(nil)
	a := rand.New(NewStream(41))
	b := rand.New(NewStream(41))
	for i := 0; i < 100; i++ {
		av, bv := a.Intn(1000), b.Intn(1000)
		if av != bv {
			t.Fatalf("draw %d: same-seed streams diverge (%d vs %d)", i, av, bv)
		}
	}
	// Different SeedFor-derived seeds give different sequences.
	c := rand.New(NewStream(SeedFor(41, "delays")))
	same := 0
	d := rand.New(NewStream(41))
	for i := 0; i < 64; i++ {
		if c.Intn(1<<20) == d.Intn(1<<20) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("derived stream tracks its parent (%d/64 equal draws)", same)
	}
}
