package sim

import (
	"math/rand"
	"time"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// Result is the outcome of a single execution.
type Result struct {
	// Makespan is the number of steps executed until the last job
	// completed; equals the step cap when Completed is false.
	Makespan int
	// Completed reports whether every job finished within the cap.
	Completed bool
	// Mass[j] is the total mass job j accumulated while unfinished
	// (sum of p[i][j] over machine-steps assigned to j).
	Mass []float64
}

// Run executes policy pol on instance in for at most maxSteps steps
// using rng for completion draws. Machines assigned to ineligible or
// finished jobs idle for the step, per Definition 2.1. For repeated
// runs, prefer a Runner (buffer reuse) or the estimators below.
func Run(in *model.Instance, pol sched.Policy, maxSteps int, rng *rand.Rand) Result {
	r := NewRunner(in, pol)
	makespan, completed := r.Run(maxSteps, rng)
	mass := make([]float64, in.N)
	copy(mass, r.Mass())
	return Result{Makespan: makespan, Completed: completed, Mass: mass}
}

// repRunner is one worker's engine: run executes a repetition, mass
// exposes the per-job mass of the latest repetition as a view.
type repRunner interface {
	run(maxSteps int, rng Rand) (makespan int, completed bool)
	massView() []float64
}

// run adapts Runner to repRunner.
func (r *Runner) run(maxSteps int, rng Rand) (int, bool) { return r.Run(maxSteps, rng) }

func (r *Runner) massView() []float64 { return r.rs.mass }

// Engine names for EngineUsed.Engine. The compiled oblivious engine
// keeps the short name "compiled" that BENCH_sim.json has carried
// since the engine landed; the "-lane" suffix marks the bit-parallel
// 64-repetitions-per-word forms (see lane.go).
const (
	EngineGeneric          = "generic"
	EngineCompiled         = "compiled"
	EngineCompiledAdaptive = "compiled-adaptive"
	EngineLane             = "compiled-lane"
	EngineLaneAdaptive     = "compiled-adaptive-lane"
	// EngineDynamic is the dynamic-scenario step walk (internal/dyn):
	// arrivals, outages and regime modulation change the instance
	// mid-run, which the compiled engines' immutable tables cannot
	// express — they refuse, and the scenario estimator runs this
	// generic-style walk instead. Scenarios without events delegate
	// back to the static engines and report those names.
	EngineDynamic = "dynamic-step"
)

// EngineUsed reports which engine an estimation call actually ran —
// the record satellite harnesses (grid rows, BENCH_sim.json) persist
// so a silent fallback to the slow path is visible in the output, not
// just in wall-clock time.
type EngineUsed struct {
	// Engine is EngineCompiled (event-wise oblivious), the
	// EngineCompiledAdaptive transition-table walk, their bit-parallel
	// lane forms EngineLane / EngineLaneAdaptive, or EngineGeneric.
	Engine string
	// Lanes is the lockstep width of the bit-parallel engine (64), or
	// 0 for the scalar engines.
	Lanes int
	// Workers is the effective fan-out after the parallelizability
	// check (1 = sequential, also for observer policies that silently
	// lose their requested concurrency).
	Workers int
	// States is the compiled adaptive table's state count (0 for the
	// other engines). Deterministic for a given (instance, policy).
	States int
	// TableBuildMS is the adaptive table's compile wall-clock for this
	// call — provenance for perf records, never merge payload.
	TableBuildMS float64
	// Spliced reports whether the engine samples terminal (≤2
	// unfinished jobs) stretches in closed form (see splice.go): the
	// TerminalSplice knob as snapshotted at compile time, and for the
	// compiled oblivious engine additionally whether the schedule's
	// tail shape admits splicing. Spliced results are a different Monte
	// Carlo sample of the same distribution, so persisted records need
	// the flag to explain last-digit differences.
	Spliced bool
}

// estimator selects and shares the engine for one estimation call:
// the compiled event engine for oblivious policies, the compiled
// transition-table engine for stationary (sched.Memoizable) adaptive
// policies within the state budget, the generic step engine
// otherwise. The compiled forms are immutable and shared by all
// workers; each worker gets its own mutable runner.
type estimator struct {
	in       *model.Instance
	pol      sched.Policy
	compiled *compiledOblivious
	adaptive *compiledAdaptive
	engine   EngineUsed
	// lane selects the bit-parallel lockstep form of the compiled
	// engine for the chunked estimators (see lane.go and maybeLane);
	// oracle additionally replays it one lane at a time on the scalar
	// walk (the parity tests' exactness oracle).
	lane   bool
	oracle bool
}

// UsesCompiledEngine reports whether the estimators will run pol on
// in with the compiled oblivious engine rather than the generic step
// engine: an oblivious schedule with a non-empty prefix, no outcome
// observation, and an acyclic instance. Exported so reporting code
// (BENCH_sim.json) attributes measurements to the engine that
// actually ran; for the full decision including the compiled adaptive
// engine use the EngineUsed value returned by EstimateInfo.
func UsesCompiledEngine(in *model.Instance, pol sched.Policy) bool {
	o, ok := pol.(*sched.Oblivious)
	if !ok || len(o.Steps) == 0 || !Parallelizable(pol) {
		return false
	}
	_, err := in.Prec.TopoOrder()
	return err == nil
}

// newEstimator selects the engine for one estimation call of `reps`
// repetitions. The repetition count bounds the adaptive compile: a
// state costs about one policy call to memoize, the same as one step
// of the generic engine, so a table bigger than 64× the repetitions
// could never amortize — the BFS is capped there, which also bounds
// the wasted walk on instances whose reachable space would exhaust
// the full budget anyway.
func newEstimator(in *model.Instance, pol sched.Policy, reps int) *estimator {
	e := &estimator{in: in, pol: pol, engine: EngineUsed{Engine: EngineGeneric}}
	// Resolve the flat backing once, on this goroutine: workers read
	// it concurrently via newRunState, and Instance.Flat rebuilds
	// lazily when the rows were replaced wholesale.
	in.Flat()
	if UsesCompiledEngine(in, pol) {
		e.compiled = compileOblivious(in, pol.(*sched.Oblivious))
		if e.compiled != nil {
			e.engine.Engine = EngineCompiled
			e.engine.Spliced = e.compiled.spliceMode != spliceOff
		}
		e.maybeLane(reps)
		return e
	}
	if mpol, ok := pol.(sched.Memoizable); ok {
		budget := adaptiveCompileBudget
		if reps < budget/64 {
			budget = 64 * reps
		}
		start := time.Now()
		e.adaptive = compileAdaptive(in, mpol, budget)
		if e.adaptive != nil {
			e.engine.Engine = EngineCompiledAdaptive
			e.engine.States = len(e.adaptive.states)
			e.engine.TableBuildMS = float64(time.Since(start).Nanoseconds()) / 1e6
			e.engine.Spliced = e.adaptive.splice
		}
		e.maybeLane(reps)
	}
	return e
}

// maybeLane upgrades a compiled engine to its bit-parallel lane form
// per the BitParallel knob and the auto-dispatch repetition floor.
// The chunked estimators and MassWithinHorizon act on the flag
// (through newLaneWorker); callers that drive repetitions one at a
// time (MakespanQuantiles via newWorker) always run the scalar
// engines.
func (e *estimator) maybeLane(reps int) {
	if e.compiled == nil && e.adaptive == nil {
		return
	}
	switch bitParallelMode {
	case BitParallelOff:
		return
	case BitParallelAuto:
		if reps < BitParallelAutoMinReps {
			return
		}
	case bitParallelOracle:
		e.oracle = true
	}
	e.lane = true
	e.engine.Lanes = LaneWidth
	if e.compiled != nil {
		e.engine.Engine = EngineLane
	} else {
		e.engine.Engine = EngineLaneAdaptive
	}
}

func (e *estimator) newWorker() repRunner {
	if e.compiled != nil {
		return e.compiled.newRunner()
	}
	if e.adaptive != nil {
		return e.adaptive.newRunner()
	}
	return NewRunner(e.in, e.pol)
}

// estimateChunk is the number of repetitions aggregated into one
// streaming accumulator. Chunks are the unit of work distribution and
// of deterministic merging; the value trades scheduling granularity
// against the O(reps/estimateChunk) slice of accumulators.
const estimateChunk = 256

// Chunk boundaries must stay lane-group aligned so a 64-rep lane
// group never spans two accumulator chunks (only the final, possibly
// partial group ends mid-width). Compile-time assert.
var _ [estimateChunk % LaneWidth]struct{} = [0]struct{}{}

// estimateChunked runs reps repetitions on the given number of
// workers. Repetition r draws from stream (seed, r) — or, under the
// lane engine, from the group-g lane streams of the remap documented
// in lane.go — and lands in accumulator r/estimateChunk regardless of
// which worker ran it, and chunks merge in index order, so the result
// is bit-identical for every worker count.
func estimateChunked(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, workers int) (stats.Summary, int, EngineUsed) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	return runEstimator(newEstimator(in, pol, reps), reps, maxSteps, seed, workers)
}

// runEstimator executes the chunked estimation loop on an
// already-selected engine. Split from estimateChunked so a cached
// sim.Prepared can feed its reusable compiled engines through the
// exact execution path the cold estimators use.
func runEstimator(est *estimator, reps, maxSteps int, seed int64, workers int) (stats.Summary, int, EngineUsed) {
	nchunks := (reps + estimateChunk - 1) / estimateChunk
	accs := make([]stats.Accumulator, nchunks)
	incs := make([]int, nchunks)
	// newChunkLoop builds one worker's engine and returns its
	// chunk-execution func. Lane workers fold each group's makespans
	// in lane order (= repetition order under the remap).
	newChunkLoop := func() func(c int) {
		if est.lane {
			w := est.newLaneWorker(seed)
			return func(c int) {
				lo, hi := c*estimateChunk, (c+1)*estimateChunk
				if hi > reps {
					hi = reps
				}
				acc := &accs[c]
				for glo := lo; glo < hi; glo += LaneWidth {
					cnt := hi - glo
					if cnt > LaneWidth {
						cnt = LaneWidth
					}
					mk, completed := w.runGroup(int64(glo/LaneWidth), cnt, maxSteps)
					for l := 0; l < cnt; l++ {
						acc.Add(float64(mk[l]))
						if completed>>uint(l)&1 == 0 {
							incs[c]++
						}
					}
				}
			}
		}
		w := est.newWorker()
		var rng Stream
		return func(c int) {
			lo, hi := c*estimateChunk, (c+1)*estimateChunk
			if hi > reps {
				hi = reps
			}
			acc := &accs[c]
			for r := lo; r < hi; r++ {
				rng.Reseed(seed, int64(r))
				makespan, completed := w.run(maxSteps, &rng)
				acc.Add(float64(makespan))
				if !completed {
					incs[c]++
				}
			}
		}
	}
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		runChunk := newChunkLoop()
		for c := 0; c < nchunks; c++ {
			runChunk(c)
		}
	} else {
		next := make(chan int)
		done := make(chan struct{})
		for g := 0; g < workers; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				runChunk := newChunkLoop()
				for c := range next {
					runChunk(c)
				}
			}()
		}
		for c := 0; c < nchunks; c++ {
			next <- c
		}
		close(next)
		for g := 0; g < workers; g++ {
			<-done
		}
	}
	var total stats.Accumulator
	incomplete := 0
	for c := range accs {
		total.Merge(accs[c])
		incomplete += incs[c]
	}
	eng := est.engine
	if workers < 1 {
		workers = 1
	}
	eng.Workers = workers
	return total.Summary(), incomplete, eng
}

// Estimate runs reps independent executions (repetition r's RNG
// stream is derived deterministically from (seed, r)) and returns the
// summary of observed makespans together with the number of runs that
// hit the step cap without completing. Aggregation is streaming: the
// full sample is never materialized.
func Estimate(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64) (stats.Summary, int) {
	sum, inc, _ := estimateChunked(in, pol, reps, maxSteps, seed, 1)
	return sum, inc
}

// EstimateInfo is Estimate plus the EngineUsed record — which engine
// actually ran (compiled oblivious, compiled adaptive with its state
// count and table build time, or the generic step engine). Harness
// code that persists results should prefer this form so a fallback to
// the slow path is recorded, not inferred.
func EstimateInfo(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64) (stats.Summary, int, EngineUsed) {
	return estimateChunked(in, pol, reps, maxSteps, seed, 1)
}

// massSeedSalt decorrelates MassWithinHorizon's streams from
// Estimate's when both are called with the same seed.
const massSeedSalt = 0x6D617373 // "mass"

// MassWithinHorizon runs reps executions of pol truncated at horizon
// steps and returns, for job j, the fraction of runs in which j
// accumulated mass at least threshold. Used to validate Theorem 2.2
// empirically. Large-reps calls on compiled policies run the
// bit-parallel lane engine with per-lane mass tracking (see
// laneWorker.massLanes); the threshold counts are then taken over the
// lane remap's sample instead of the scalar streams — same
// distribution, different draws.
func MassWithinHorizon(in *model.Instance, pol sched.Policy, horizon, reps int, threshold float64, seed int64) []float64 {
	counts := make([]float64, in.N)
	est := newEstimator(in, pol, reps)
	if est.lane {
		w := est.newLaneWorker(seed ^ massSeedSalt)
		mass := w.massLanes()
		n := in.N
		for glo := 0; glo < reps; glo += LaneWidth {
			cnt := reps - glo
			if cnt > LaneWidth {
				cnt = LaneWidth
			}
			w.runGroup(int64(glo/LaneWidth), cnt, horizon)
			for l := 0; l < cnt; l++ {
				accrueMassHits(counts, mass[l*n:(l+1)*n], threshold)
			}
		}
	} else {
		w := est.newWorker()
		var rng Stream
		for r := 0; r < reps; r++ {
			rng.Reseed(seed^massSeedSalt, int64(r))
			w.run(horizon, &rng)
			accrueMassHits(counts, w.massView(), threshold)
		}
	}
	for j := range counts {
		counts[j] /= float64(reps)
	}
	return counts
}

// accrueMassHits bumps counts[j] for every job whose accumulated mass
// clears the threshold (comparison tolerance shared by both engines).
func accrueMassHits(counts, mass []float64, threshold float64) {
	for j, mss := range mass {
		if mss >= threshold-1e-12 {
			counts[j]++
		}
	}
}
