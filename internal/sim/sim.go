// Package sim executes SUU schedules. It provides a Monte Carlo
// engine that runs any sched.Policy on an instance, tracking job
// completions, eligibility under the precedence dag, and per-job mass
// accumulation (Definition 2.4), plus estimators that aggregate many
// runs into makespan summaries.
package sim

import (
	"math/rand"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// Result is the outcome of a single execution.
type Result struct {
	// Makespan is the number of steps executed until the last job
	// completed; equals the step cap when Completed is false.
	Makespan int
	// Completed reports whether every job finished within the cap.
	Completed bool
	// Mass[j] is the total mass job j accumulated while unfinished
	// (sum of p[i][j] over machine-steps assigned to j).
	Mass []float64
}

// Run executes policy pol on instance in for at most maxSteps steps
// using rng for completion draws. Machines assigned to ineligible or
// finished jobs idle for the step, per Definition 2.1.
func Run(in *model.Instance, pol sched.Policy, maxSteps int, rng *rand.Rand) Result {
	n, m := in.N, in.M
	unfinished := make([]bool, n)
	eligible := make([]bool, n)
	predsLeft := make([]int, n)
	for j := 0; j < n; j++ {
		unfinished[j] = true
		predsLeft[j] = in.Prec.InDeg(j)
		eligible[j] = predsLeft[j] == 0
	}
	remaining := n
	mass := make([]float64, n)
	fail := make([]float64, n)
	touched := make([]int, 0, m)
	st := &sched.State{Unfinished: unfinished, Eligible: eligible}
	observer, _ := pol.(sched.OutcomeObserver)
	completed := make([]bool, n)
	effective := make(sched.Assignment, m)

	for t := 0; t < maxSteps && remaining > 0; t++ {
		st.Step = t
		a := pol.Assign(st)
		touched = touched[:0]
		if observer != nil {
			for j := range completed {
				completed[j] = false
			}
			for i := range effective {
				effective[i] = sched.Idle
			}
		}
		for i := 0; i < m; i++ {
			j := a[i]
			if j == sched.Idle || j < 0 || j >= n || !eligible[j] {
				continue
			}
			if observer != nil {
				effective[i] = j
			}
			if fail[j] == 0 {
				fail[j] = 1
				touched = append(touched, j)
			}
			fail[j] *= 1 - in.P[i][j]
			mass[j] += in.P[i][j]
		}
		for _, j := range touched {
			if rng.Float64() < 1-fail[j] {
				unfinished[j] = false
				eligible[j] = false
				if observer != nil {
					completed[j] = true
				}
				remaining--
				for _, s := range in.Prec.Succs(j) {
					predsLeft[s]--
					if predsLeft[s] == 0 && unfinished[s] {
						eligible[s] = true
					}
				}
			}
			fail[j] = 0
		}
		if observer != nil {
			observer.Observe(effective, completed)
		}
		if remaining == 0 {
			return Result{Makespan: t + 1, Completed: true, Mass: mass}
		}
	}
	return Result{Makespan: maxSteps, Completed: remaining == 0, Mass: mass}
}

// Estimate runs reps independent executions (seeded deterministically
// from seed) and returns the summary of observed makespans together
// with the number of runs that hit the step cap without completing.
func Estimate(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64) (stats.Summary, int) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	xs := make([]float64, 0, reps)
	incomplete := 0
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
		res := Run(in, pol, maxSteps, rng)
		if !res.Completed {
			incomplete++
		}
		xs = append(xs, float64(res.Makespan))
	}
	return stats.Summarize(xs), incomplete
}

// MassWithinHorizon runs reps executions of pol truncated at horizon
// steps and returns, for job j, the fraction of runs in which j
// accumulated mass at least threshold. Used to validate Theorem 2.2
// empirically.
func MassWithinHorizon(in *model.Instance, pol sched.Policy, horizon, reps int, threshold float64, seed int64) []float64 {
	counts := make([]float64, in.N)
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7_777_777))
		res := Run(in, pol, horizon, rng)
		for j, mss := range res.Mass {
			if mss >= threshold-1e-12 {
				counts[j]++
			}
		}
	}
	for j := range counts {
		counts[j] /= float64(reps)
	}
	return counts
}
