package sim

import (
	"suu/internal/model"
	"suu/internal/sched"
)

// Oblivious schedules fix every assignment in advance, which lets the
// estimator precompile the prefix once per call and then replay it
// event-wise instead of step-wise. The paper's constructions replicate
// each assignment Θ(σ) times, so a run spends almost all wall-clock
// steps on jobs that are already finished or not yet eligible; the
// step engine still scans all m machines at each of them. The
// compiled engine instead stores, per job, the sorted list of prefix
// steps that assign it — with the step's combined success probability
// and mass precomputed — and walks jobs in topological order: a job's
// eligibility step is determined by its predecessors' completion
// steps, and its own completion is sampled with exactly one uniform
// draw per (eligible, assigned) step, just like the step engine.
// Work per repetition is proportional to the number of completion
// trials actually performed, not to makespan × machines.
//
// Repetitions that survive the prefix fall back to the generic step
// engine for the tail, seeded with the state the walk produced.
type compiledOblivious struct {
	in        *model.Instance
	o         *sched.Oblivious
	prefixLen int
	topo      []int32
	// Occurrences grouped by job: job j's assigned prefix steps are
	// steps[offs[j]:offs[j+1]], ascending. succ is the combined
	// single-step completion probability 1-Π(1-p_ij) over the machines
	// assigned that step; mass is the (uncapped) Σ p_ij the step adds.
	offs  []int32
	steps []int32
	succ  []float64
	mass  []float64
	// Terminal-tail splicing (see splice.go): spliceMode is spliceCycle
	// when a nil Tail replays the prefix forever, spliceRR for a
	// TopoRoundRobin tail (with the per-job period profile below), and
	// spliceOff otherwise or when the knob is off.
	spliceMode int
	tailPos    []int32 // job → position in the round-robin order, -1 if absent
	tailSucc   []float64
	tailMass   []float64
	tailPeriod int
}

// compileOblivious builds the per-job occurrence lists. Cost is
// O(prefix × m), paid once per Estimate call and shared read-only by
// every worker.
func compileOblivious(in *model.Instance, o *sched.Oblivious) *compiledOblivious {
	n := in.N
	order, err := in.Prec.TopoOrder()
	if err != nil {
		return nil // cyclic: let the generic engine spin on it
	}
	c := &compiledOblivious{in: in, o: o, prefixLen: len(o.Steps)}
	c.topo = make([]int32, n)
	for k, j := range order {
		c.topo[k] = int32(j)
	}
	// First pass: count each job's distinct assigned steps.
	counts := make([]int32, n)
	last := make([]int32, n)
	for j := range last {
		last[j] = -1
	}
	for t, a := range o.Steps {
		for _, j := range a {
			if j == sched.Idle || j < 0 || j >= n {
				continue
			}
			if last[j] != int32(t) {
				last[j] = int32(t)
				counts[j]++
			}
		}
	}
	c.offs = make([]int32, n+1)
	for j := 0; j < n; j++ {
		c.offs[j+1] = c.offs[j] + counts[j]
	}
	total := int(c.offs[n])
	c.steps = make([]int32, total)
	c.succ = make([]float64, total)
	c.mass = make([]float64, total)
	// Second pass: fill, accumulating the fail product per occurrence.
	next := make([]int32, n)
	copy(next, c.offs[:n])
	for j := range last {
		last[j] = -1
	}
	p := in.Flat()
	for t, a := range o.Steps {
		for i, j := range a {
			if j == sched.Idle || j < 0 || j >= n {
				continue
			}
			pv := p[i*n+j]
			if last[j] != int32(t) {
				last[j] = int32(t)
				k := next[j]
				next[j]++
				c.steps[k] = int32(t)
				c.succ[k] = 1 - pv // fail product so far
				c.mass[k] = pv
			} else {
				k := next[j] - 1
				c.succ[k] *= 1 - pv
				c.mass[k] += pv
			}
		}
	}
	// Convert fail products to success probabilities.
	for k := range c.succ {
		c.succ[k] = 1 - c.succ[k]
	}
	c.compileSplice()
	return c
}

// compileSplice classifies the schedule's tail for terminal splicing.
// A nil Tail replays the prefix (the compiled occurrence lists are
// exactly one period); a TopoRoundRobin tail gangs all machines on one
// job per step, so each listed job gets a single-occurrence period
// profile. Any other tail, a job repeated in the round-robin order, or
// the knob being off leaves the generic continuation in place.
func (c *compiledOblivious) compileSplice() {
	if !terminalSplice {
		return
	}
	switch tl := c.o.Tail.(type) {
	case nil:
		c.spliceMode = spliceCycle
	case *sched.TopoRoundRobin:
		n := c.in.N
		if len(tl.Order) == 0 {
			return
		}
		pos := make([]int32, n)
		for j := range pos {
			pos[j] = -1
		}
		for k, j := range tl.Order {
			if j < 0 || j >= n {
				continue // ignored by the executor: never a trial
			}
			if pos[j] >= 0 {
				return // repeated job: not a one-occurrence period
			}
			pos[j] = int32(k)
		}
		p := c.in.Flat()
		succ := make([]float64, n)
		mass := make([]float64, n)
		for j := 0; j < n; j++ {
			fail := 1.0
			for i := 0; i < c.in.M; i++ {
				fail *= 1 - p[i*n+j]
				mass[j] += p[i*n+j]
			}
			succ[j] = 1 - fail
		}
		c.tailPos, c.tailSucc, c.tailMass = pos, succ, mass
		c.tailPeriod = len(tl.Order)
		c.spliceMode = spliceRR
	}
}

// oblivRunner is one worker's mutable state for the compiled engine.
type oblivRunner struct {
	c    *compiledOblivious
	comp []int32 // completion step per job, -1 while unfinished
	mass []float64
	cont *Runner // lazily built generic engine for tail continuations
}

func (c *compiledOblivious) newRunner() *oblivRunner {
	return &oblivRunner{
		c:    c,
		comp: make([]int32, c.in.N),
		mass: make([]float64, c.in.N),
	}
}

// oblivDraw abstracts where the compiled walk's completion trials
// come from: the estimator's per-rep stream (seqDraw) or one lane of
// the bit-parallel engine's stream remap (remapDraw), which is what
// lets this walk double as the lane engine's exactness oracle. A type
// parameter rather than an interface value keeps the per-trial call
// devirtualized and the repetition allocation-free.
type oblivDraw interface {
	trial(k int, succ float64) bool
	tailRand() Rand
}

// seqDraw is the standard source: one Float64 per trial, in walk
// order, from the repetition's (seed, rep) stream; the tail continues
// on the same stream.
type seqDraw struct{ rng Rand }

func (d seqDraw) trial(_ int, succ float64) bool { return d.rng.Float64() < succ }
func (d seqDraw) tailRand() Rand                 { return d.rng }

// remapDraw is one lane of the lane stream remap (see lane.go):
// occurrence k's trial draws from the pinned position (k, 0) of the
// group's trial stream, and the tail continues on the rep's pinned
// tail stream.
type remapDraw struct {
	tr    *Stream
	tail  *Stream
	gseed int64
	lane  uint
}

func (d remapDraw) trial(k int, succ float64) bool {
	return laneBernoulli(d.tr, d.gseed, int64(k), 0, succ, uint64(1)<<d.lane)>>d.lane&1 == 1
}
func (d remapDraw) tailRand() Rand { return d.tail }

// run simulates one repetition. Draw-for-draw it performs the same
// completion trials as the step engine, only ordered by job instead
// of by step, so makespan and mass distributions are identical.
func (r *oblivRunner) run(maxSteps int, rng Rand) (int, bool) {
	return oblivRun(r, maxSteps, seqDraw{rng: rng})
}

// oblivRun is the compiled walk over an arbitrary draw source.
func oblivRun[D oblivDraw](r *oblivRunner, maxSteps int, d D) (int, bool) {
	c := r.c
	in := c.in
	cap := c.prefixLen
	if maxSteps < cap {
		cap = maxSteps
	}
	unfinished := 0
	maxComp := -1
	for _, j32 := range c.topo {
		j := int(j32)
		r.mass[j] = 0
		r.comp[j] = -1
		elig := 0
		blocked := false
		for _, pr := range in.Prec.Preds(j) {
			pc := r.comp[pr]
			if pc < 0 {
				blocked = true
				break
			}
			if int(pc)+1 > elig {
				elig = int(pc) + 1
			}
		}
		if blocked {
			unfinished++
			continue
		}
		lo, hi := int(c.offs[j]), int(c.offs[j+1])
		if elig > 0 {
			// Lower-bound search for the first occurrence >= elig.
			l, h := lo, hi
			for l < h {
				mid := int(uint(l+h) >> 1)
				if c.steps[mid] < int32(elig) {
					l = mid + 1
				} else {
					h = mid
				}
			}
			lo = l
		}
		done := false
		for k := lo; k < hi; k++ {
			t := int(c.steps[k])
			if t >= cap {
				break
			}
			r.mass[j] += c.mass[k]
			if d.trial(k, c.succ[k]) {
				r.comp[j] = int32(t)
				if t > maxComp {
					maxComp = t
				}
				done = true
				break
			}
		}
		if !done {
			unfinished++
		}
	}
	if unfinished == 0 {
		return maxComp + 1, true
	}
	if maxSteps <= c.prefixLen {
		return maxSteps, false
	}
	return r.continueTail(unfinished, maxSteps, d.tailRand())
}

// continueTail finishes a repetition that outlived the prefix: with at
// most two jobs left and a cyclic tail it samples the remainder in
// closed form (see splice.go); otherwise it seeds the generic step
// engine with the post-prefix state and runs it to the cap.
func (r *oblivRunner) continueTail(unfinished, maxSteps int, rng Rand) (int, bool) {
	c := r.c
	if c.spliceMode != spliceOff && unfinished <= 2 {
		return r.spliceTail(maxSteps, rng)
	}
	if r.cont == nil {
		r.cont = NewRunner(c.in, c.o)
	}
	rs := r.cont.rs
	n := rs.n
	for j := 0; j < n; j++ {
		unf := r.comp[j] < 0
		rs.unfinished[j] = unf
		rs.mass[j] = r.mass[j]
		rs.fail[j] = 0
		left := 0
		for _, pr := range c.in.Prec.Preds(j) {
			if r.comp[pr] < 0 {
				left++
			}
		}
		rs.predsLeft[j] = left
		rs.eligible[j] = unf && left == 0
	}
	rs.remaining = unfinished
	makespan, completed := rs.runFrom(c.o, c.prefixLen, maxSteps, rng)
	copy(r.mass, rs.mass)
	return makespan, completed
}

func (r *oblivRunner) massView() []float64 { return r.mass }
