package sim

import (
	"math"
	"math/rand"
	"testing"

	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
)

func allOnJob(m, j int) sched.Assignment {
	a := make(sched.Assignment, m)
	for i := range a {
		a[i] = j
	}
	return a
}

func TestDeterministicCompletes(t *testing.T) {
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 1, 1
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		for j, e := range st.Eligible {
			if e {
				return sched.Assignment{j}
			}
		}
		return sched.Assignment{sched.Idle}
	})
	res := Run(in, pol, 100, rand.New(rand.NewSource(1)))
	if !res.Completed || res.Makespan != 2 {
		t.Errorf("result=%+v, want completed in 2", res)
	}
}

func TestPrecedenceBlocksIneligible(t *testing.T) {
	// 0 ≺ 1. A policy that always assigns the machine to job 1 makes no
	// progress: job 1 is never eligible while 0 is unfinished.
	in := model.New(2, 1)
	in.P[0][0], in.P[0][1] = 1, 1
	in.Prec.MustEdge(0, 1)
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{1}
	})
	res := Run(in, pol, 50, rand.New(rand.NewSource(1)))
	if res.Completed {
		t.Error("ineligible assignment should not progress")
	}
	if res.Mass[1] != 0 {
		t.Errorf("ineligible job accumulated mass %v", res.Mass[1])
	}
}

func TestMassAccounting(t *testing.T) {
	// One job, p=0 on the only machine: never completes, accumulates 0
	// mass per step... use p=0.5 but force completion off via rng? Use a
	// two-machine instance with p=0 for one machine.
	in := model.New(1, 2)
	in.P[0][0] = 0.0
	in.P[1][0] = 1.0
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{0, 0}
	})
	res := Run(in, pol, 10, rand.New(rand.NewSource(1)))
	if !res.Completed || res.Makespan != 1 {
		t.Fatalf("res=%+v", res)
	}
	if math.Abs(res.Mass[0]-1.0) > 1e-12 {
		t.Errorf("mass=%v, want 1.0", res.Mass[0])
	}
}

func TestGeometricMeanMatchesTheory(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.25
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{0}
	})
	sum, incomplete := Estimate(in, pol, 4000, 10000, 7)
	if incomplete != 0 {
		t.Fatalf("%d incomplete runs", incomplete)
	}
	if math.Abs(sum.Mean-4) > 0.25 {
		t.Errorf("mean=%v, want ≈4", sum.Mean)
	}
}

func TestEstimateMatchesExactRegimen(t *testing.T) {
	in := model.New(2, 2)
	in.P[0][0], in.P[0][1] = 0.7, 0.2
	in.P[1][0], in.P[1][1] = 0.3, 0.6
	reg, want, err := opt.OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	sum, incomplete := Estimate(in, reg, 6000, 100000, 11)
	if incomplete != 0 {
		t.Fatalf("%d incomplete", incomplete)
	}
	if math.Abs(sum.Mean-want) > 4*sum.HalfWidth95+0.05 {
		t.Errorf("simulated %v vs exact %v", sum.Mean, want)
	}
}

func TestObliviousScheduleExecution(t *testing.T) {
	// Oblivious with a round-robin tail over a chain must complete.
	in := model.New(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			in.P[i][j] = 0.5
		}
	}
	in.Prec.MustEdge(0, 1)
	in.Prec.MustEdge(1, 2)
	o := &sched.Oblivious{
		M:     2,
		Steps: []sched.Assignment{{0, 0}},
		Tail:  &sched.TopoRoundRobin{M: 2, Order: []int{0, 1, 2}},
	}
	sum, incomplete := Estimate(in, o, 300, 100000, 3)
	if incomplete != 0 {
		t.Fatalf("%d incomplete", incomplete)
	}
	if sum.Mean < 3 {
		t.Errorf("mean %v below minimum possible 3", sum.Mean)
	}
}

func TestMassWithinHorizon(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.3
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{0}
	})
	// In 2 steps the job accumulates 0.3 (if it finishes in step 1) or
	// 0.6. Threshold 0.5 is reached iff the job fails step 1: prob 0.7.
	fr := MassWithinHorizon(in, pol, 2, 8000, 0.5, 13)
	if math.Abs(fr[0]-0.7) > 0.03 {
		t.Errorf("fraction=%v, want ≈0.7", fr[0])
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	in := model.New(4, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			in.P[i][j] = 0.4
		}
	}
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		a := sched.NewIdle(2)
		k := 0
		for j, e := range st.Eligible {
			if e && k < 2 {
				a[k] = j
				k++
			}
		}
		return a
	})
	r1 := Run(in, pol, 1000, rand.New(rand.NewSource(99)))
	r2 := Run(in, pol, 1000, rand.New(rand.NewSource(99)))
	if r1.Makespan != r2.Makespan {
		t.Error("same seed, different makespans")
	}
}

func TestTheorem22MassProbability(t *testing.T) {
	// For the OPTIMAL regimen with expected makespan T, every job
	// accumulates mass >= 1/4 within 2T steps with probability >= 1/4.
	in := model.New(3, 2)
	in.P[0][0], in.P[0][1], in.P[0][2] = 0.6, 0.3, 0.2
	in.P[1][0], in.P[1][1], in.P[1][2] = 0.2, 0.5, 0.7
	reg, topt, err := opt.OptimalRegimen(in)
	if err != nil {
		t.Fatal(err)
	}
	horizon := int(math.Ceil(2 * topt))
	fr := MassWithinHorizon(in, reg, horizon, 4000, 0.25, 17)
	for j, f := range fr {
		if f < 0.25-0.02 {
			t.Errorf("job %d: Pr[mass>=1/4 within 2T] = %v < 1/4", j, f)
		}
	}
}
