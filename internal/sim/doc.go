// Package sim executes SUU schedules. It provides a Monte Carlo
// engine that runs any sched.Policy on an instance, tracking job
// completions, eligibility under the precedence dag, and per-job mass
// accumulation (Definition 2.4), plus estimators that aggregate many
// runs into makespan summaries.
//
// # Engine architecture
//
// Three engines share one semantics. The generic step engine
// (runState) advances one step at a time, asking the policy for an
// assignment and drawing one uniform per (eligible, assigned) job per
// step; all per-run buffers live in a reusable runState, so the step
// loop is allocation-free. When the policy is a *sched.Oblivious, the
// estimators compile its prefix once into per-job occurrence lists
// and replay repetitions event-wise (see oblivious.go), falling back
// to the step engine for any repetition that outlives the prefix.
// When the policy is stationary (sched.Memoizable) and its reachable
// state space fits the compile budget, the estimators memoize one
// assignment digest per unfinished-set key and replay repetitions as
// table-driven walks (see adaptive.go), falling back transparently to
// the step engine otherwise; EstimateInfo reports which engine ran.
// On top of either compiled form, large-reps calls run 64 repetitions
// per machine word with the bit-parallel lane engine (see lane.go and
// the BitParallel knob), under a pinned SeedFor-derived stream remap.
//
// Estimators derive repetition r's RNG stream from (seed, r) with a
// SplitMix64 reseed (see rng.go) and aggregate makespans into
// fixed-size chunks of streaming stats.Accumulator values that merge
// in chunk order. Chunk boundaries depend only on the repetition
// count, so Estimate and EstimateParallel return bit-identical
// summaries at every concurrency, while memory stays O(reps/chunk)
// instead of O(reps).
//
// Long-lived callers (the serve daemon) use Prepared: Prepare compiles
// a (instance, policy) pair once — prefix occurrence lists, adaptive
// digest tables, lane plans — and EstimateParallelInfo replays it for
// any (reps, seed, concurrency) with results bit-identical to the
// corresponding cold Estimate call; the equivalence is pinned by
// TestPreparedBitIdenticalToColdPath.
package sim
