package sim

// Rand is the randomness the engine draws on: one uniform in [0,1)
// per completion trial. *math/rand.Rand satisfies it, as does Stream.
type Rand interface {
	Float64() float64
}

// Stream is a SplitMix64 generator. The state is a counter, so a
// (seed, rep) pair maps to a stream by positioning the counter; every
// output passes through the full 64-bit finalizer, decorrelating
// nearby reps. Reseeding is two multiplies — no allocation, unlike
// rand.New — which is what lets the estimators derive an independent
// stream per repetition for free.
//
// Both Estimate and EstimateParallel derive the rep-r stream as
// Reseed(seed, r), so a repetition's draws are identical whether it
// runs sequentially or on any worker of any fan-out. Pair a Stream
// with a Runner to reproduce any single repetition in isolation.
type Stream struct {
	s uint64
}

// NewStream returns a stream positioned at (seed, 0).
func NewStream(seed int64) *Stream {
	s := &Stream{}
	s.Reseed(seed, 0)
	return s
}

// Reseed positions the stream for repetition rep of the run seeded
// with seed.
func (s *Stream) Reseed(seed, rep int64) {
	s.s = uint64(seed)*0x9E3779B97F4A7C15 + uint64(rep)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
}

// ReseedTrial positions the stream at the (a, b)-indexed trial of the
// schedule rooted at seed. It extends Reseed with a second coordinate
// (a third independent odd multiplier), so the bit-parallel lane
// engine can key every completion trial by its position in the
// schedule — (occurrence index, 0) for the compiled oblivious walk,
// (step, job) for the adaptive table walk — rather than by draw
// order. Position-keying is what makes the lane-engine stream remap
// reproducible: skipping a trial (a lane already finished the job)
// costs nothing and never shifts any other trial's randomness.
// ReseedTrial(seed, a, 0) coincides with Reseed(seed, a).
func (s *Stream) ReseedTrial(seed, a, b int64) {
	s.s = uint64(seed)*0x9E3779B97F4A7C15 + uint64(a)*0xBF58476D1CE4E5B9 + uint64(b)*0xD1342543DE82EF95 + 0x94D049BB133111EB
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Int63 returns 63 uniform bits. Together with Seed it makes *Stream
// a math/rand Source64, so harness code that needs rand.Rand's
// derived distributions (Intn for delay vectors, Perm, …) can draw
// them from the same SplitMix64 streams the engine and the grid use:
// rand.New(sim.NewStream(sim.SeedFor(root, label))). No experiment
// path should seed math/rand's default LCG — a shard boundary must
// never be able to observe generator state another cell advanced, and
// SeedFor-derived streams make sharing structurally impossible.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed repositions the stream at (seed, 0), satisfying rand.Source.
func (s *Stream) Seed(seed int64) { s.Reseed(seed, 0) }

// SeedFor derives an independent seed for a labeled cell of work from
// a root seed: every (label, coords) combination maps to a
// decorrelated SplitMix64 state, so parallel harnesses can hand each
// cell its own deterministic randomness without sharing a generator.
// The derivation depends only on the arguments — never on scheduling
// — which is what keeps grid results bit-identical at any worker
// count. The label's length is mixed in as a terminator so the label
// bytes are domain-separated from the coords (no (label+byte, …) vs
// (label, byte, …) collisions); callers composing multiple strings
// into one cell identity should chain SeedFor calls rather than
// concatenate, so the field boundary stays encoded.
func SeedFor(root int64, label string, coords ...int64) int64 {
	s := Stream{s: uint64(root) ^ 0x6A09E667F3BCC909}
	h := s.Uint64()
	for _, b := range []byte(label) {
		s.s ^= uint64(b)
		h ^= s.Uint64()
	}
	s.s ^= uint64(len(label))
	h ^= s.Uint64()
	for _, c := range coords {
		s.s ^= uint64(c)
		h ^= s.Uint64()
	}
	return int64(h)
}
