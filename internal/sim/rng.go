package sim

// Rand is the randomness the engine draws on: one uniform in [0,1)
// per completion trial. *math/rand.Rand satisfies it, as does Stream.
type Rand interface {
	Float64() float64
}

// Stream is a SplitMix64 generator. The state is a counter, so a
// (seed, rep) pair maps to a stream by positioning the counter; every
// output passes through the full 64-bit finalizer, decorrelating
// nearby reps. Reseeding is two multiplies — no allocation, unlike
// rand.New — which is what lets the estimators derive an independent
// stream per repetition for free.
//
// Both Estimate and EstimateParallel derive the rep-r stream as
// Reseed(seed, r), so a repetition's draws are identical whether it
// runs sequentially or on any worker of any fan-out. Pair a Stream
// with a Runner to reproduce any single repetition in isolation.
type Stream struct {
	s uint64
}

// NewStream returns a stream positioned at (seed, 0).
func NewStream(seed int64) *Stream {
	s := &Stream{}
	s.Reseed(seed, 0)
	return s
}

// Reseed positions the stream for repetition rep of the run seeded
// with seed.
func (s *Stream) Reseed(seed, rep int64) {
	s.s = uint64(seed)*0x9E3779B97F4A7C15 + uint64(rep)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.s += 0x9E3779B97F4A7C15
	z := s.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
