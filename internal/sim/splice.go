package sim

import "math"

// Terminal-layer splicing: once a repetition is down to at most two
// unfinished jobs, the remainder of the walk is a tiny Markov chain —
// the same ≤2-job terminal layer the exact solver resolves in closed
// form (internal/opt, valueiter.go) — and the compiled engines can
// sample its outcome directly instead of stepping through it. The
// spliced sampler draws the number of steps until the next completion
// event from the geometric closed form (one uniform, inverted through
// log), then the event itself from the conditional outcome
// distribution (one more uniform), so a terminal stretch that would
// cost E[1/(1-pNone)] step iterations costs two draws per completion
// event. Mass accrues in closed form too: D steps in a state add
// D·mass per trialed job.
//
// Splicing is distribution-preserving, not draw-preserving: it
// consumes different uniforms than the step-by-step walk, so spliced
// runs are a different (equally valid) Monte Carlo sample of the same
// makespan and mass distributions. Tests that pin draw-for-draw
// identity with the generic step engine disable it (SetTerminalSplice
// (false)); the lane parity tests keep it on, because the wordwise
// walk, the demoted lane walk and the lane oracle all splice through
// the same code on the same pinned streams, so lane-vs-oracle
// equality survives. Aggregated probabilities (the no-completion
// product pNone, per-period failure products) are computed in float64,
// the same latitude the compiled engines already take with mass; a
// per-step probability below ~1e-16 can round into a stuck product.
//
// Where each engine splices:
//
//   - compiled adaptive (scalar, lane, lane oracle): states whose
//     unfinished set has ≤2 jobs carry a terminal flag; the walk exits
//     into spliceFrom on entering one.
//   - compiled oblivious: repetitions that outlive the prefix with ≤2
//     unfinished jobs splice the cyclic tail — the prefix replayed
//     forever (nil Tail) or a TopoRoundRobin tail — instead of handing
//     the remainder to the generic step engine. Other tails, or >2
//     unfinished at the boundary, keep the generic continuation.

// terminalSplice is the active setting; see SetTerminalSplice.
var terminalSplice = true

// SetTerminalSplice turns terminal-layer splicing on or off and
// returns a func restoring the previous value. The setting is
// snapshotted when an engine is compiled (once per estimation call).
// Not safe to call concurrently with estimation; it exists for tests
// that need draw-for-draw identity with the generic engine and for
// benchmark harnesses measuring the splice effect.
func SetTerminalSplice(on bool) (restore func()) {
	old := terminalSplice
	terminalSplice = on
	return func() { terminalSplice = old }
}

// TerminalSplice returns the active splice setting.
func TerminalSplice() bool { return terminalSplice }

// spliceLaneKey is the ReseedTrial first coordinate of the lane splice
// streams: adaptive lane trials are keyed (step, job) with step ≥ 0,
// so a negative key can never collide. Lane l's splice draws come
// sequentially from the stream positioned at (gseed, spliceLaneKey, l)
// — the demoted lane walk and the lane oracle reach the terminal state
// at the same step with the same trajectory, hence reseed identically
// and stay bit-identical.
const spliceLaneKey = -1

// spliceFrom samples the terminal walk from state cur at step t in
// closed form, drawing uniforms sequentially from rng. mass may be
// nil (lane walks without mass tracking). Every state reachable from
// a terminal state is terminal (completions only shrink the
// unfinished set), so the loop never re-enters the step walk; it runs
// at most two completion events.
func (c *compiledAdaptive) spliceFrom(cur int32, t, maxSteps int, rng Rand, mass []float64) (int, bool) {
	states := c.states
	for {
		s := &states[cur]
		rem := maxSteps - t
		pNone := 1.0
		for _, q := range s.succ {
			pNone *= 1 - q
		}
		if pNone >= 1 {
			// No trialed job can complete (or the policy idles): the
			// state self-loops to the cap, accruing mass every step.
			for ki, j := range s.jobs {
				if mass != nil {
					mass[j] += float64(rem) * s.mass[ki]
				}
			}
			return maxSteps, false
		}
		// D = steps consumed up to and including the first step with a
		// completion: P(D = d) = pNone^(d-1)·(1-pNone).
		D := 1
		u := rng.Float64()
		if pNone > 0 {
			d := math.Log1p(-u) / math.Log(pNone)
			if d >= float64(rem) {
				for ki, j := range s.jobs {
					if mass != nil {
						mass[j] += float64(rem) * s.mass[ki]
					}
				}
				return maxSteps, false
			}
			D += int(d)
		}
		if mass != nil {
			for ki, j := range s.jobs {
				mass[j] += float64(D) * s.mass[ki]
			}
		}
		// The event: a non-empty completion subset, picked by inverse
		// CDF over the ≤3 non-empty subsets of the ≤2 trialed slots.
		k := len(s.jobs)
		u2 := rng.Float64() * (1 - pNone)
		sub := 1<<uint(k) - 1 // fp residue lands on the full subset
		cum := 0.0
		for cand := 1; cand < 1<<uint(k); cand++ {
			p := 1.0
			for ki := 0; ki < k; ki++ {
				if cand>>uint(ki)&1 == 1 {
					p *= s.succ[ki]
				} else {
					p *= 1 - s.succ[ki]
				}
			}
			cum += p
			if u2 < cum {
				sub = cand
				break
			}
		}
		t += D
		nxt := s.next[sub]
		if nxt < 0 {
			return t, true
		}
		cur = nxt
		if t >= maxSteps {
			return maxSteps, false
		}
	}
}

// Oblivious tail splice modes; set at compile time from the schedule's
// tail shape and the TerminalSplice knob.
const (
	spliceOff   = iota
	spliceCycle // nil Tail: the prefix replays forever, period prefixLen
	spliceRR    // TopoRoundRobin tail: one ganged job per step, period len(Order)
)

// spliceTail samples the post-prefix fate of the ≤2 unfinished jobs in
// closed form. Completion draws per job: one uniform per occurrence of
// its first (partial) tail period, then one uniform for the geometric
// count of fully failed periods and one for the winning occurrence.
func (r *oblivRunner) spliceTail(maxSteps int, rng Rand) (int, bool) {
	c := r.c
	a, b := -1, -1
	for j, comp := range r.comp {
		if comp < 0 {
			if a < 0 {
				a = j
			} else {
				b = j
			}
		}
	}
	t0 := c.prefixLen
	if b < 0 {
		ta := r.sampleTailJob(a, t0, maxSteps, rng)
		if ta >= maxSteps {
			return maxSteps, false
		}
		return ta + 1, true
	}
	// Orient a ≺ b if the two remaining jobs form a chain; any other
	// predecessors completed inside the prefix, so b's eligibility is
	// exactly a's completion (chain) or the tail boundary (independent).
	for _, pr := range c.in.Prec.Preds(a) {
		if pr == b {
			a, b = b, a
			break
		}
	}
	chain := false
	for _, pr := range c.in.Prec.Preds(b) {
		if pr == a {
			chain = true
			break
		}
	}
	ta := r.sampleTailJob(a, t0, maxSteps, rng)
	if chain {
		if ta >= maxSteps {
			// b never becomes eligible: no trials, no mass.
			return maxSteps, false
		}
		tb := r.sampleTailJob(b, ta+1, maxSteps, rng)
		if tb >= maxSteps {
			return maxSteps, false
		}
		return tb + 1, true
	}
	tb := r.sampleTailJob(b, t0, maxSteps, rng)
	if ta >= maxSteps || tb >= maxSteps {
		return maxSteps, false
	}
	if tb > ta {
		ta = tb
	}
	return ta + 1, true
}

// sampleTailJob samples the completion step of job j, trialed
// cyclically in the tail from absolute step start on, and accrues j's
// mass for every trial at or before min(completion, cap). It returns
// the completion step, or maxSteps when j survives to the cap.
func (r *oblivRunner) sampleTailJob(j, start, maxSteps int, rng Rand) int {
	c := r.c
	if c.spliceMode == spliceRR {
		return r.sampleTailJobRR(j, start, maxSteps, rng)
	}
	L := c.prefixLen
	lo, hi := int(c.offs[j]), int(c.offs[j+1])
	if lo == hi {
		return maxSteps // never assigned: no trials, no mass
	}
	// One period's aggregates: failure product and mass, in occurrence
	// order (the order the step walk would accumulate them).
	pFail, M := 1.0, 0.0
	for k := lo; k < hi; k++ {
		pFail *= 1 - c.succ[k]
		M += c.mass[k]
	}
	// Partial first period: start may fall mid-cycle (a chain successor
	// becomes eligible at its predecessor's completion). Trial its
	// remaining occurrences one uniform at a time.
	p0, r0 := start/L, start%L
	ks, h := lo, hi
	for ks < h {
		mid := int(uint(ks+h) >> 1)
		if int(c.steps[mid]) < r0 {
			ks = mid + 1
		} else {
			h = mid
		}
	}
	for k := ks; k < hi; k++ {
		t := p0*L + int(c.steps[k])
		if t >= maxSteps {
			return maxSteps
		}
		r.mass[j] += c.mass[k]
		if rng.Float64() < c.succ[k] {
			return t
		}
	}
	// Whole periods from p0+1: geometric over the per-period success.
	base := (p0 + 1) * L
	if base >= maxSteps {
		return maxSteps
	}
	full := (maxSteps - base) / L // complete periods before the cap
	g := full                     // complete periods that fail
	if pFail <= 0 {
		g = 0
	} else if pFail < 1 {
		if d := math.Log1p(-rng.Float64()) / math.Log(pFail); d < float64(full) {
			g = int(d)
		}
	}
	if g < full {
		// Complete period g succeeds: pick the winning occurrence by
		// inverse CDF, accruing mass through it.
		r.mass[j] += float64(g) * M
		u2 := rng.Float64() * (1 - pFail)
		pf, cum := 1.0, 0.0
		pstart := base + g*L
		for k := lo; k < hi; k++ {
			r.mass[j] += c.mass[k]
			cum += pf * c.succ[k]
			pf *= 1 - c.succ[k]
			if u2 < cum {
				return pstart + int(c.steps[k])
			}
		}
		return pstart + int(c.steps[hi-1]) // fp residue: last occurrence
	}
	// Every complete period failed (probability pFail^full); walk the
	// final partial period occurrence by occurrence up to the cap.
	r.mass[j] += float64(full) * M
	pstart := base + full*L
	for k := lo; k < hi; k++ {
		t := pstart + int(c.steps[k])
		if t >= maxSteps {
			break
		}
		r.mass[j] += c.mass[k]
		if rng.Float64() < c.succ[k] {
			return t
		}
	}
	return maxSteps
}

// sampleTailJobRR is sampleTailJob for the TopoRoundRobin tail: job j
// is ganged by every machine once per period, at its position in the
// order, so its completion is a single geometric draw.
func (r *oblivRunner) sampleTailJobRR(j, start, maxSteps int, rng Rand) int {
	c := r.c
	pos := int(c.tailPos[j])
	if pos < 0 {
		return maxSteps // not in the tail order: no trials, no mass
	}
	succ, m := c.tailSucc[j], c.tailMass[j]
	T := c.tailPeriod
	x := start - c.prefixLen // tail-relative earliest trial step
	first := pos
	if x > pos {
		first = pos + (x-pos+T-1)/T*T
	}
	capRel := maxSteps - c.prefixLen
	if first >= capRel {
		return maxSteps
	}
	avail := (capRel-1-first)/T + 1 // trials before the cap
	if succ <= 0 {
		r.mass[j] += float64(avail) * m
		return maxSteps
	}
	fails := avail
	if succ >= 1 {
		fails = 0
	} else if d := math.Log1p(-rng.Float64()) / math.Log(1-succ); d < float64(avail) {
		fails = int(d)
	}
	if fails >= avail {
		r.mass[j] += float64(avail) * m
		return maxSteps
	}
	r.mass[j] += float64(fails+1) * m
	return c.prefixLen + first + fails*T
}
