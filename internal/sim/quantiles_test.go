package sim

import (
	"math"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

func TestMakespanQuantiles(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{0}
	})
	qs, xs := MakespanQuantiles(in, pol, 4000, 10000, 5, []float64{0.5, 0.9})
	if len(xs) != 4000 {
		t.Fatalf("sample size %d", len(xs))
	}
	// Geometric(1/2): median 1, q90 ∈ {3,4}.
	if qs[0] > 2 {
		t.Errorf("median %v, want <= 2", qs[0])
	}
	if qs[1] < 2 || qs[1] > 5 {
		t.Errorf("q90 %v outside [2,5]", qs[1])
	}
	if math.IsNaN(qs[0]) {
		t.Error("NaN quantile")
	}
	// Quantiles agree with the seeds used by Estimate (same derivation).
	sum, _ := Estimate(in, pol, 4000, 10000, 5)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(mean-sum.Mean) > 1e-12 {
		t.Errorf("sample mean %v != Estimate mean %v (seed derivation drifted)", mean, sum.Mean)
	}
}

// TestMakespanP2QuantilesLaneDrainOrder is the P²-under-lanes
// contract: P² is order-sensitive, so when samples arrive 64 at a
// time from the lane engine, the drain order within each word must be
// lane order — the pinned scalar remap's repetition order. Feeding
// the estimators from the lane engine and from the one-lane-at-a-time
// oracle must therefore agree to the last bit, including with a
// partial final group.
func TestMakespanP2QuantilesLaneDrainOrder(t *testing.T) {
	in, o := chainsFixture()
	const cap, seed = 100000, 61
	qs := []float64{0.5, 0.9, 0.99}
	for _, reps := range []int{100, 1000} {
		var lane, oracle []float64
		withMode(BitParallelOn, func() { lane = MakespanP2Quantiles(in, o, reps, cap, seed, qs) })
		withMode(bitParallelOracle, func() { oracle = MakespanP2Quantiles(in, o, reps, cap, seed, qs) })
		for k := range qs {
			if lane[k] != oracle[k] {
				t.Errorf("reps %d q%v: lane %v != oracle %v (drain order drifted)",
					reps, qs[k], lane[k], oracle[k])
			}
		}
		// Sanity: the estimates sit inside the sample's support.
		var off []float64
		withMode(BitParallelOff, func() { off = MakespanP2Quantiles(in, o, reps, cap, seed, qs) })
		for k := 1; k < len(qs); k++ {
			if lane[k] < lane[k-1] || off[k] < off[k-1] {
				t.Errorf("reps %d: non-monotone quantiles lane=%v scalar=%v", reps, lane, off)
			}
		}
	}

	// The scalar path keeps matching MakespanQuantiles' sample order.
	// Splicing off pins the historical sample: P²'s accuracy at q0.99
	// over 400 reps is sample-sensitive, and this block grades accuracy,
	// not splicing.
	defer SetTerminalSplice(false)()
	withMode(BitParallelOff, func() {
		exact, xs := MakespanQuantiles(in, o, 400, cap, seed, qs)
		p2 := MakespanP2Quantiles(in, o, 400, cap, seed, qs)
		if len(xs) != 400 {
			t.Fatalf("sample size %d", len(xs))
		}
		for k := range qs {
			if math.Abs(p2[k]-exact[k]) > 3+0.1*exact[k] {
				t.Errorf("q%v: P² %v far from exact %v", qs[k], p2[k], exact[k])
			}
		}
	})
}
