package sim

import (
	"math"
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

func TestMakespanQuantiles(t *testing.T) {
	in := model.New(1, 1)
	in.P[0][0] = 0.5
	pol := sched.PolicyFunc(func(st *sched.State) sched.Assignment {
		return sched.Assignment{0}
	})
	qs, xs := MakespanQuantiles(in, pol, 4000, 10000, 5, []float64{0.5, 0.9})
	if len(xs) != 4000 {
		t.Fatalf("sample size %d", len(xs))
	}
	// Geometric(1/2): median 1, q90 ∈ {3,4}.
	if qs[0] > 2 {
		t.Errorf("median %v, want <= 2", qs[0])
	}
	if qs[1] < 2 || qs[1] > 5 {
		t.Errorf("q90 %v outside [2,5]", qs[1])
	}
	if math.IsNaN(qs[0]) {
		t.Error("NaN quantile")
	}
	// Quantiles agree with the seeds used by Estimate (same derivation).
	sum, _ := Estimate(in, pol, 4000, 10000, 5)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(mean-sum.Mean) > 1e-12 {
		t.Errorf("sample mean %v != Estimate mean %v (seed derivation drifted)", mean, sum.Mean)
	}
}
