package sim

import (
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// TestPreparedBitIdenticalToColdPath pins the Prepared contract: an
// estimate served from a cached, pre-compiled engine must equal the
// one-shot estimator's bit for bit — across policy kinds (oblivious,
// stationary adaptive), repetition counts on both sides of the
// bit-parallel auto floor, and worker counts. The repetition counts
// also straddle the adaptive 64×reps profitability cap, so the
// dispatch mimicry in Prepared.estimator is exercised, not just the
// happy path.
func TestPreparedBitIdenticalToColdPath(t *testing.T) {
	oblIn, obl := chainsFixture()
	adIn := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})

	cases := []struct {
		name string
		in   *model.Instance
		pol  sched.Policy
	}{
		{"oblivious", oblIn, obl},
		{"adaptive", adIn, &core.AdaptivePolicy{In: adIn}},
	}
	for _, c := range cases {
		p := Prepare(c.in, c.pol)
		// Reps below and above BitParallelAutoMinReps, and small enough
		// that 64×reps undercuts the default adaptive budget.
		for _, reps := range []int{7, 60, 256, 500} {
			for _, workers := range []int{1, 4} {
				wantSum, wantInc, wantEng := EstimateParallelInfo(c.in, c.pol, reps, 10000, 9, workers)
				gotSum, gotInc, gotEng := p.EstimateParallelInfo(reps, 10000, 9, workers)
				if gotSum != wantSum || gotInc != wantInc {
					t.Fatalf("%s reps=%d workers=%d: prepared %+v/%d, cold %+v/%d",
						c.name, reps, workers, gotSum, gotInc, wantSum, wantInc)
				}
				if gotEng.Engine != wantEng.Engine || gotEng.Lanes != wantEng.Lanes ||
					gotEng.States != wantEng.States || gotEng.Spliced != wantEng.Spliced {
					t.Fatalf("%s reps=%d: prepared engine %+v, cold %+v", c.name, reps, gotEng, wantEng)
				}
			}
		}
	}
}

// TestPreparedEngineRecord checks the build-time record: the compiled
// artifact kind, the adaptive state count, and a sane size estimate.
func TestPreparedEngineRecord(t *testing.T) {
	oblIn, obl := chainsFixture()
	p := Prepare(oblIn, obl)
	if eng, _, _ := p.Engine(); eng != EngineCompiled {
		t.Fatalf("oblivious prepared engine = %q, want %q", eng, EngineCompiled)
	}
	if p.SizeBytes() <= 256 {
		t.Fatalf("oblivious SizeBytes = %d, want > nominal", p.SizeBytes())
	}

	adIn := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	p = Prepare(adIn, &core.AdaptivePolicy{In: adIn})
	eng, states, _ := p.Engine()
	if eng != EngineCompiledAdaptive || states == 0 {
		t.Fatalf("adaptive prepared engine = %q states=%d, want %q with states", eng, states, EngineCompiledAdaptive)
	}

	// An observer policy compiles nothing but still estimates.
	lp := core.NewLearningPolicy(adIn, 0.5)
	p = Prepare(adIn, lp)
	if eng, _, _ := p.Engine(); eng != "" {
		t.Fatalf("observer prepared engine = %q, want none", eng)
	}
	wantSum, wantInc, _ := EstimateInfo(adIn, core.NewLearningPolicy(adIn, 0.5), 30, 10000, 3)
	gotSum, gotInc, gotEng := p.EstimateInfo(30, 10000, 3)
	if gotSum != wantSum || gotInc != wantInc || gotEng.Engine != EngineGeneric {
		t.Fatalf("observer prepared estimate %+v/%d engine %q, cold %+v/%d",
			gotSum, gotInc, gotEng.Engine, wantSum, wantInc)
	}
}
