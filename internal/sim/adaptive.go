package sim

import (
	"math/bits"

	"suu/internal/model"
	"suu/internal/sched"
)

// The compiled adaptive engine extends the compiled-oblivious idea to
// stationary policies (sched.Memoizable): because such a policy's
// assignment is a pure function of the unfinished set, the estimator
// can walk the scheduling Markov chain once at compile time — the same
// state space opt.Transitions/ClosedStates enumerate exhaustively —
// and memoize, per reachable unfinished-set key, exactly what the
// generic step engine would do in that state: which jobs receive a
// completion draw (in the step engine's machine-scan order), each
// job's combined single-step success probability, the mass the step
// adds, and the successor state for every completion outcome. A
// repetition then becomes a table-driven walk: one array lookup plus
// one uniform draw per trialed job per step, instead of a policy call
// (for MSM-style policies, a full sort of the p_ij pairs) at every
// step.
//
// The walk consumes uniforms in the same order and compares them
// against bit-identical probabilities (the fail products are
// accumulated in machine order, exactly as runState does), so the
// makespan distribution — and therefore every stats.Summary — is
// bit-identical to the generic step engine's at any worker count. The
// table is immutable after compilation, which is what makes a
// compiled adaptive policy safe to share across estimation workers.
//
// Compilation is bounded: the breadth-first walk aborts once it has
// seen more than the state budget (or the transition arrays outgrow
// maxAdaptiveTableEntries), and the estimator falls back transparently
// to the generic step engine. Per-job mass is accumulated per step
// from a precomputed sum, so it can differ from the step engine's
// machine-by-machine accumulation in the last floating-point bits —
// the same latitude the compiled oblivious engine already takes.

// DefaultAdaptiveCompileBudget bounds the reachable-state table.
// Profitability, not memory, sets the default: compiling a state costs
// one policy call, so the table must stay well under reps × makespan
// state-visits for the memoization to win. Instances whose reachable
// space exceeds the budget (e.g. 16+ independent jobs, 2^n states)
// run the generic step engine instead.
const DefaultAdaptiveCompileBudget = 8192

// adaptiveCompileBudget is the active budget; see
// SetAdaptiveCompileBudget.
var adaptiveCompileBudget = DefaultAdaptiveCompileBudget

// maxAdaptiveTableEntries caps the summed successor-array size
// (Σ 2^trialed(s)); states trial at most m jobs, so wide-machine
// instances hit this before the state budget.
const maxAdaptiveTableEntries = 1 << 21

// SetAdaptiveCompileBudget replaces the compiled adaptive engine's
// state budget and returns a func restoring the previous value. A
// budget of 0 disables compilation. Not safe to call concurrently
// with estimation; it exists for tests and for tuning long-running
// harnesses.
func SetAdaptiveCompileBudget(n int) (restore func()) {
	old := adaptiveCompileBudget
	adaptiveCompileBudget = n
	return func() { adaptiveCompileBudget = old }
}

// AdaptiveCompileBudget returns the active state budget.
func AdaptiveCompileBudget() int { return adaptiveCompileBudget }

// adaptState is one memoized state: the digest of a generic-engine
// step in that state, plus the successor index for every completion
// outcome.
type adaptState struct {
	// jobs lists the jobs that receive a completion draw, in the step
	// engine's order (first machine touch). succ[k] is job jobs[k]'s
	// combined success probability 1-Π(1-p_ij) with the product taken
	// in machine order; mass[k] is the Σ p_ij the step adds to it.
	jobs []int32
	succ []float64
	mass []float64
	// next[sub] is the state index reached when exactly the jobs whose
	// bits are set in sub (indexing jobs, not global job ids) complete;
	// -1 marks the terminal all-finished state.
	next []int32
	// terminal marks states with at most two unfinished jobs — the
	// closed-form layer the walks exit into when splicing is on (see
	// splice.go).
	terminal bool
}

// compiledAdaptive is the immutable compiled policy shared read-only
// by every estimation worker.
type compiledAdaptive struct {
	in     *model.Instance
	states []adaptState
	n      int
	// splice snapshots the TerminalSplice knob at compile time: when
	// set, walks sample terminal (≤2 unfinished jobs) states in closed
	// form instead of stepping through them.
	splice bool
}

// eligibleMask returns the eligible-job bitmask of unfinished-set s.
func eligibleMask(in *model.Instance, s uint64) uint64 {
	var el uint64
	for j := 0; j < in.N; j++ {
		if s&(1<<uint(j)) == 0 {
			continue
		}
		ok := true
		for _, p := range in.Prec.Preds(j) {
			if s&(1<<uint(p)) != 0 {
				ok = false
				break
			}
		}
		if ok {
			el |= 1 << uint(j)
		}
	}
	return el
}

// compileAdaptive walks the policy's own Markov chain breadth-first
// from the all-unfinished state and memoizes each reachable state.
// It returns nil when the policy is not compilable on this instance:
// more than 64 jobs (no mask), an OutcomeObserver (observation
// feedback is history, which a table cannot carry), or a reachable
// state space over the budget. State 0 is the walk's start (index 0);
// the terminal empty set is the -1 sentinel, not a state.
func compileAdaptive(in *model.Instance, pol sched.Memoizable, budget int) *compiledAdaptive {
	n, m := in.N, in.M
	if n < 1 || n > 64 || budget < 1 {
		return nil
	}
	if _, observes := pol.(sched.OutcomeObserver); observes {
		return nil
	}
	p := in.Flat()
	c := &compiledAdaptive{in: in, n: n, splice: terminalSplice}
	full := uint64(1)<<uint(n) - 1
	idx := map[uint64]int32{full: 0}
	queue := []uint64{full}
	c.states = make([]adaptState, 0, 64)

	unf := make([]bool, n)
	elig := make([]bool, n)
	st := sched.State{Unfinished: unf, Eligible: elig}
	fail := make([]float64, n)
	seen := make([]bool, n)
	order := make([]int32, 0, m)
	entries := 0

	for len(queue) > 0 {
		mask := queue[0]
		queue = queue[1:]
		el := eligibleMask(in, mask)
		for j := 0; j < n; j++ {
			unf[j] = mask&(1<<uint(j)) != 0
			elig[j] = el&(1<<uint(j)) != 0
		}
		st.Step = 0
		a := pol.Assign(&st)

		// Digest the assignment exactly as runState.runFrom would play
		// it: machines on ineligible jobs idle, fail products accumulate
		// in machine order, draw order is first-touch order. seen, not
		// fail[j]==0, marks first touches — a p_ij of exactly 1 zeroes
		// the product and must not re-enroll the job (runFrom uses the
		// same marker, keeping the digests aligned draw for draw).
		order = order[:0]
		for i := 0; i < m && i < len(a); i++ {
			j := a[i]
			if j == sched.Idle || j < 0 || j >= n || !elig[j] {
				continue
			}
			if !seen[j] {
				seen[j] = true
				fail[j] = 1
				order = append(order, int32(j))
			}
			fail[j] *= 1 - p[i*n+j]
		}
		k := len(order)
		// Bound the successor fan-out BEFORE allocating 2^k slots: k is
		// only limited by the machine count, and a wide assignment must
		// fall back to the step engine, not attempt the allocation.
		if k > 20 || entries+(1<<uint(k)) > maxAdaptiveTableEntries {
			return nil
		}
		s := adaptState{
			jobs:     make([]int32, k),
			succ:     make([]float64, k),
			mass:     make([]float64, k),
			next:     make([]int32, 1<<uint(k)),
			terminal: bits.OnesCount64(mask) <= 2,
		}
		copy(s.jobs, order)
		for b, j32 := range order {
			j := int(j32)
			s.succ[b] = 1 - fail[j]
			fail[j] = 0
			seen[j] = false
			mass := 0.0
			for i := 0; i < m && i < len(a); i++ {
				if a[i] == j {
					mass += p[i*n+j]
				}
			}
			s.mass[b] = mass
		}
		entries += 1 << uint(k)

		// Successors: every subset of the trialed jobs may complete.
		// removed[sub] builds incrementally from sub's lowest set bit.
		removed := make([]uint64, 1<<uint(k))
		for sub := 1; sub < 1<<uint(k); sub++ {
			b := bits.TrailingZeros(uint(sub))
			removed[sub] = removed[sub&(sub-1)] | 1<<uint(order[b])
			nxt := mask &^ removed[sub]
			if nxt == 0 {
				s.next[sub] = -1
				continue
			}
			ni, ok := idx[nxt]
			if !ok {
				if len(idx) >= budget {
					return nil
				}
				ni = int32(len(idx))
				idx[nxt] = ni
				queue = append(queue, nxt)
			}
			s.next[sub] = ni
		}
		// next[0] (no completion) stays zero and is never read: the
		// walk short-circuits an empty draw outcome as a self-loop.
		c.states = append(c.states, s)
	}
	return c
}

// adaptRunner is one worker's mutable walk state.
type adaptRunner struct {
	c    *compiledAdaptive
	mass []float64
}

func (c *compiledAdaptive) newRunner() *adaptRunner {
	return &adaptRunner{c: c, mass: make([]float64, c.n)}
}

// run replays one repetition through the table. With splicing off,
// draw-for-draw it performs the same completion trials as the step
// engine, in the same order, against the same probabilities, so the
// makespan distribution is bit-identical; with splicing on, terminal
// (≤2 unfinished jobs) states are sampled in closed form instead (see
// splice.go) — same distribution, different draws. The loop allocates
// nothing.
func (r *adaptRunner) run(maxSteps int, rng Rand) (int, bool) {
	states := r.c.states
	for j := range r.mass {
		r.mass[j] = 0
	}
	cur := int32(0)
	splice := r.c.splice
	for t := 0; t < maxSteps; t++ {
		s := &states[cur]
		if splice && s.terminal {
			return r.c.spliceFrom(cur, t, maxSteps, rng, r.mass)
		}
		sub := 0
		for k, j := range s.jobs {
			r.mass[j] += s.mass[k]
			if rng.Float64() < s.succ[k] {
				sub |= 1 << uint(k)
			}
		}
		if sub == 0 {
			// Nothing completed; a state with no trialed jobs is stuck,
			// exactly like the step engine under an all-idle assignment.
			continue
		}
		nxt := s.next[sub]
		if nxt < 0 {
			return t + 1, true
		}
		cur = nxt
	}
	return maxSteps, false
}

func (r *adaptRunner) massView() []float64 { return r.mass }
