package sim

import (
	"math"
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// TestTerminalSpliceExactAnchors pins the spliced samplers against
// cases with known exact answers, where no Monte Carlo tolerance is
// needed at all or the tolerance is a tight CLT band.
func TestTerminalSpliceExactAnchors(t *testing.T) {
	defer SetBitParallel(BitParallelOff)()

	// One job, p = 1: the splice must report makespan exactly 1.
	certain := model.New(1, 1)
	certain.SetAt(0, 0, 1)
	reg1 := sched.NewRegimen(1, 1)
	reg1.F[1] = sched.Assignment{0}
	sum, inc, eng := EstimateInfo(certain, reg1, 500, 100, 3)
	if eng.Engine != EngineCompiledAdaptive || !eng.Spliced {
		t.Fatalf("engine %+v, want spliced compiled-adaptive", eng)
	}
	if inc != 0 || sum.Mean != 1 || sum.Min != 1 || sum.Max != 1 {
		t.Errorf("p=1 splice: %+v/%d, want constant makespan 1", sum, inc)
	}

	// One job, p = 0: pNone = 1, every rep must cap out exactly.
	stuck := model.New(1, 1)
	stuck.SetAt(0, 0, 0)
	sum, inc, _ = EstimateInfo(stuck, reg1, 300, 50, 3)
	if inc != 300 || sum.Mean != 50 {
		t.Errorf("p=0 splice: %+v/%d, want all 300 reps capped at 50", sum, inc)
	}

	// One job, p = 0.5: geometric with mean 2, sampled entirely by the
	// closed form (the start state is terminal). CLT band at ~6 sigma.
	half := model.New(1, 1)
	half.SetAt(0, 0, 0.5)
	const reps = 20000
	sum, inc, _ = EstimateInfo(half, reg1, reps, 100000, 7)
	if inc != 0 {
		t.Fatalf("geometric splice left %d reps incomplete", inc)
	}
	if tol := 6 * math.Sqrt2 / math.Sqrt(reps); math.Abs(sum.Mean-2) > tol {
		t.Errorf("geometric(1/2) spliced mean %v, want 2 ± %v", sum.Mean, tol)
	}

	// Capped geometric: P(makespan > 3) = 1/8, so the incomplete count
	// is Binomial(reps, 1/8); 6-sigma band again.
	_, inc, _ = EstimateInfo(half, reg1, reps, 3, 11)
	want := float64(reps) / 8
	if tol := 6 * math.Sqrt(reps*0.125*0.875); math.Abs(float64(inc)-want) > tol {
		t.Errorf("capped splice: %d incomplete, want %v ± %v", inc, want, tol)
	}
}

// TestTerminalSpliceAdaptiveDistribution checks that splicing changes
// the draws but not the distribution: spliced and step-by-step
// estimates of the same policies must agree within Monte Carlo error,
// and EngineUsed must record which form ran.
func TestTerminalSpliceAdaptiveDistribution(t *testing.T) {
	const reps, cap, seed = 6000, 100000, 23
	cases := map[string]struct {
		in  *model.Instance
		pol sched.Policy
	}{}
	ind := workload.Independent(workload.Config{Jobs: 8, Machines: 3, Seed: 42})
	cases["independent-msm"] = struct {
		in  *model.Instance
		pol sched.Policy
	}{ind, &core.AdaptivePolicy{In: ind}}
	ch := workload.Chains(workload.Config{Jobs: 9, Machines: 3, Seed: 7}, 3)
	cases["chains-msm"] = struct {
		in  *model.Instance
		pol sched.Policy
	}{ch, &core.AdaptivePolicy{In: ch}}

	for _, mode := range []BitParallelMode{BitParallelOff, BitParallelOn} {
		for name, tc := range cases {
			var on, off struct {
				mean, hw float64
				inc      int
			}
			withMode(mode, func() {
				restore := SetTerminalSplice(true)
				sum, inc, eng := EstimateInfo(tc.in, tc.pol, reps, cap, seed)
				restore()
				if !eng.Spliced {
					t.Fatalf("%s mode %d: Spliced not recorded on %+v", name, mode, eng)
				}
				on.mean, on.hw, on.inc = sum.Mean, sum.HalfWidth95, inc

				restore = SetTerminalSplice(false)
				sum, inc, eng = EstimateInfo(tc.in, tc.pol, reps, cap, seed)
				restore()
				if eng.Spliced {
					t.Fatalf("%s mode %d: Spliced recorded with the knob off", name, mode)
				}
				off.mean, off.hw, off.inc = sum.Mean, sum.HalfWidth95, inc
			})
			tol := 3*(on.hw+off.hw) + 1e-9
			if math.Abs(on.mean-off.mean) > tol {
				t.Errorf("%s mode %d: spliced mean %v vs stepped mean %v (tol %v)",
					name, mode, on.mean, off.mean, tol)
			}
			if on.inc != 0 || off.inc != 0 {
				t.Errorf("%s mode %d: incomplete %d/%d", name, mode, on.inc, off.inc)
			}
		}
	}
}

// TestTerminalSpliceObliviousTails covers both cyclic tail shapes the
// oblivious splice samples in closed form — the nil-Tail prefix cycle
// and the TopoRoundRobin tail — on fixtures small enough that most
// repetitions outlive the prefix with ≤2 unfinished jobs, i.e. the
// splice path carries the distribution.
func TestTerminalSpliceObliviousTails(t *testing.T) {
	defer SetBitParallel(BitParallelOff)()
	const reps, cap, seed = 6000, 100000, 41

	pair := model.New(2, 1)
	pair.SetAt(0, 0, 0.3)
	pair.SetAt(0, 1, 0.4)
	chain := model.New(2, 1)
	chain.SetAt(0, 0, 0.3)
	chain.SetAt(0, 1, 0.4)
	chain.Prec.MustEdge(0, 1)
	alternate := []sched.Assignment{{0}, {1}}

	cases := map[string]struct {
		in *model.Instance
		o  *sched.Oblivious
	}{
		"cycle-independent": {pair, &sched.Oblivious{M: 1, Steps: alternate}},
		"cycle-chain":       {chain, &sched.Oblivious{M: 1, Steps: alternate}},
		"rr-independent": {pair, &sched.Oblivious{M: 1, Steps: alternate,
			Tail: &sched.TopoRoundRobin{M: 1, Order: []int{0, 1}}}},
		"rr-chain": {chain, &sched.Oblivious{M: 1, Steps: alternate,
			Tail: &sched.TopoRoundRobin{M: 1, Order: []int{0, 1}}}},
	}
	for name, tc := range cases {
		restore := SetTerminalSplice(true)
		sumOn, incOn, eng := EstimateInfo(tc.in, tc.o, reps, cap, seed)
		restore()
		if eng.Engine != EngineCompiled || !eng.Spliced {
			t.Fatalf("%s: engine %+v, want spliced compiled oblivious", name, eng)
		}
		restore = SetTerminalSplice(false)
		sumOff, incOff, _ := EstimateInfo(tc.in, tc.o, reps, cap, seed)
		restore()
		tol := 3*(sumOn.HalfWidth95+sumOff.HalfWidth95) + 1e-9
		if math.Abs(sumOn.Mean-sumOff.Mean) > tol {
			t.Errorf("%s: spliced mean %v vs stepped mean %v (tol %v)",
				name, sumOn.Mean, sumOff.Mean, tol)
		}
		if incOn != 0 || incOff != 0 {
			t.Errorf("%s: incomplete %d/%d", name, incOn, incOff)
		}
	}

	// A tail shape the splice cannot handle must be recorded as
	// unspliced and keep the generic continuation.
	repeated := &sched.Oblivious{M: 1, Steps: alternate,
		Tail: &sched.TopoRoundRobin{M: 1, Order: []int{0, 1, 0}}}
	_, _, eng := EstimateInfo(pair, repeated, 300, cap, seed)
	if eng.Engine != EngineCompiled || eng.Spliced {
		t.Errorf("repeated-order tail: engine %+v, want unspliced compiled", eng)
	}
}

// TestTerminalSpliceDeterministic pins the spliced engines'
// reproducibility contract: bit-identical summaries at every worker
// count, for both the scalar and the lane forms.
func TestTerminalSpliceDeterministic(t *testing.T) {
	in, o := chainsFixture()
	apol := &core.AdaptivePolicy{In: in}
	const reps, cap, seed = 1500, 100000, 13
	for name, pol := range map[string]sched.Policy{"oblivious": o, "adaptive": apol} {
		for _, mode := range []BitParallelMode{BitParallelOff, BitParallelOn} {
			withMode(mode, func() {
				want, wantInc, eng := EstimateInfo(in, pol, reps, cap, seed)
				if !eng.Spliced {
					t.Fatalf("%s mode %d: not spliced: %+v", name, mode, eng)
				}
				for _, conc := range []int{4, 0} {
					got, gotInc, _ := EstimateParallelInfo(in, pol, reps, cap, seed, conc)
					if got != want || gotInc != wantInc {
						t.Errorf("%s mode %d concurrency %d: %+v/%d differs from sequential %+v/%d",
							name, mode, conc, got, gotInc, want, wantInc)
					}
				}
			})
		}
	}
}
