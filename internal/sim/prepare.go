package sim

import (
	"time"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// Prepared is a reusable estimation context: the compiled engine
// artifacts for one (instance, policy) pair — the oblivious per-job
// occurrence lists or the adaptive transition table — built once and
// shared across estimation calls. The per-call estimators pay the
// compile on every invocation; a cache that keys Prepared values by
// instance fingerprint (internal/serve) pays it once and serves every
// later request as a table walk.
//
// A Prepared value is immutable after Prepare and safe for concurrent
// use: every estimation call builds its own per-call runner state on
// top of the shared tables, exactly as the per-call estimators fan
// workers out over one compiled engine.
//
// Results are bit-identical to the cold path: EstimateInfo selects
// the engine for each call with the same reps-dependent dispatch
// rules (the 64×reps adaptive profitability cap, the bit-parallel
// auto floor) that the one-shot estimators apply, so a cached engine
// can change wall-clock only, never a digit. The parity is pinned by
// TestPreparedBitIdenticalToColdPath.
type Prepared struct {
	in       *model.Instance
	pol      sched.Policy
	compiled *compiledOblivious
	adaptive *compiledAdaptive
	buildMS  float64
}

// Prepare compiles the fastest engine the policy admits and returns
// the reusable context. Unlike the per-call estimators, the adaptive
// compile is not capped at 64× any particular repetition count — a
// cached engine amortizes across requests, so the full state budget
// applies at build time; the per-call profitability cap still governs
// which calls use the table (see estimator). Prepare never fails:
// policies no engine compiles (observers, over-budget state spaces,
// cyclic instances) yield a context whose calls run the generic step
// engine, which is still reusable — the instance's flat backing and
// parallel-dispatch decisions are resolved once.
func Prepare(in *model.Instance, pol sched.Policy) *Prepared {
	p := &Prepared{in: in, pol: pol}
	// Resolve the flat backing once, on this goroutine, for the same
	// reason newEstimator does: workers read it concurrently.
	in.Flat()
	start := time.Now()
	if UsesCompiledEngine(in, pol) {
		p.compiled = compileOblivious(in, pol.(*sched.Oblivious))
	} else if mpol, ok := pol.(sched.Memoizable); ok {
		p.adaptive = compileAdaptive(in, mpol, adaptiveCompileBudget)
	}
	p.buildMS = float64(time.Since(start).Nanoseconds()) / 1e6
	return p
}

// Engine reports which compiled artifact Prepare built ("" when the
// calls will run the generic step engine), the compiled adaptive
// state count, and the compile wall-clock — what a cache exposes in
// its status output. The per-call EngineUsed may still differ (lane
// upgrades, the adaptive profitability cap); this is the build-time
// record.
func (p *Prepared) Engine() (engine string, states int, buildMS float64) {
	switch {
	case p.compiled != nil:
		return EngineCompiled, 0, p.buildMS
	case p.adaptive != nil:
		return EngineCompiledAdaptive, len(p.adaptive.states), p.buildMS
	}
	return "", 0, p.buildMS
}

// SizeBytes estimates the resident size of the compiled tables, for
// cache accounting. The generic-engine context is charged a nominal
// footprint so cache math never divides by zero.
func (p *Prepared) SizeBytes() int64 {
	const word = 8
	if c := p.compiled; c != nil {
		n := int64(len(c.steps))*(4+word+word) + int64(len(c.offs)+len(c.topo))*4 +
			int64(len(c.tailPos))*4 + int64(len(c.tailSucc)+len(c.tailMass))*word
		return n + 256
	}
	if a := p.adaptive; a != nil {
		var n int64
		for i := range a.states {
			s := &a.states[i]
			n += int64(len(s.jobs))*4 + int64(len(s.succ)+len(s.mass))*word + int64(len(s.next))*4
		}
		return n + 256
	}
	return 256
}

// estimator assembles the per-call engine selection on top of the
// prepared tables, mirroring newEstimator's dispatch exactly: the
// compiled oblivious engine whenever it exists, the adaptive table
// only when its state count fits the same 64×reps profitability cap
// the cold path applies to its compile budget, the generic step
// engine otherwise; then the same lane upgrade. Matching the cold
// dispatch rule for rule is what keeps warm results bit-identical —
// the engines themselves are pinned equal, but the lane engines
// consume a different (pinned) stream remap, so the lane DECISION
// must agree too.
func (p *Prepared) estimator(reps int) *estimator {
	e := &estimator{in: p.in, pol: p.pol, engine: EngineUsed{Engine: EngineGeneric}}
	switch {
	case p.compiled != nil:
		e.compiled = p.compiled
		e.engine.Engine = EngineCompiled
		e.engine.Spliced = p.compiled.spliceMode != spliceOff
	case p.adaptive != nil:
		budget := adaptiveCompileBudget
		if reps < budget/64 {
			budget = 64 * reps
		}
		if len(p.adaptive.states) <= budget {
			e.adaptive = p.adaptive
			e.engine.Engine = EngineCompiledAdaptive
			e.engine.States = len(p.adaptive.states)
			// TableBuildMS stays 0: this call paid nothing.
			e.engine.Spliced = p.adaptive.splice
		}
	}
	e.maybeLane(reps)
	return e
}

// EstimateInfo is sim.EstimateInfo on the prepared engines: reps
// repetitions, sequential, summary plus the EngineUsed record.
func (p *Prepared) EstimateInfo(reps, maxSteps int, seed int64) (stats.Summary, int, EngineUsed) {
	return p.EstimateParallelInfo(reps, maxSteps, seed, 1)
}

// EstimateParallelInfo is sim.EstimateParallelInfo on the prepared
// engines. Repetition streams, chunk merging, and the engine dispatch
// match the one-shot estimators call for call, so the summary is
// bit-identical to a cold estimate of the same (reps, maxSteps, seed)
// at any concurrency. concurrency <= 0 selects GOMAXPROCS; observer
// policies degrade to sequential exactly as EstimateParallel does.
func (p *Prepared) EstimateParallelInfo(reps, maxSteps int, seed int64, concurrency int) (stats.Summary, int, EngineUsed) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	workers := effectiveWorkers(p.pol, concurrency)
	return runEstimator(p.estimator(reps), reps, maxSteps, seed, workers)
}
