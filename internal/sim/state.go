package sim

import (
	"suu/internal/model"
	"suu/internal/sched"
)

// runState holds every buffer one simulation needs, allocated once
// and reset per repetition, so the step loop itself performs zero
// allocations. Each worker of EstimateParallel owns one.
type runState struct {
	in   *model.Instance
	p    []float64 // flat row-major probabilities: p[i*n+j]
	n, m int

	unfinished []bool
	eligible   []bool
	predsLeft  []int
	mass       []float64
	fail       []float64
	// seen marks jobs already appended to touched this step (cleared
	// alongside fail in the draw loop). A separate marker, not
	// fail[j]==0: a p_ij of exactly 1 drives the fail product to zero
	// and must not re-enroll the job.
	seen      []bool
	touched   []int
	remaining int

	st sched.State

	// Observer support, allocated only when the policy observes.
	observer  sched.OutcomeObserver
	completed []bool
	effective sched.Assignment
}

func newRunState(in *model.Instance, pol sched.Policy) *runState {
	rs := &runState{
		in:         in,
		p:          in.Flat(),
		n:          in.N,
		m:          in.M,
		unfinished: make([]bool, in.N),
		eligible:   make([]bool, in.N),
		predsLeft:  make([]int, in.N),
		mass:       make([]float64, in.N),
		fail:       make([]float64, in.N),
		seen:       make([]bool, in.N),
		touched:    make([]int, 0, in.M),
	}
	rs.st = sched.State{Unfinished: rs.unfinished, Eligible: rs.eligible}
	if obs, ok := pol.(sched.OutcomeObserver); ok {
		rs.observer = obs
		rs.completed = make([]bool, in.N)
		rs.effective = make(sched.Assignment, in.M)
	}
	return rs
}

// reset restores the pristine state: every job unfinished, roots
// eligible, masses zero.
func (rs *runState) reset() {
	for j := 0; j < rs.n; j++ {
		rs.unfinished[j] = true
		rs.predsLeft[j] = rs.in.Prec.InDeg(j)
		rs.eligible[j] = rs.predsLeft[j] == 0
		rs.mass[j] = 0
		rs.fail[j] = 0
	}
	rs.remaining = rs.n
}

// runFrom executes pol from step t0 (exclusive of any earlier steps;
// the caller has already seeded unfinished/eligible/predsLeft/mass/
// remaining) until the step cap or completion. It returns the
// makespan — the 1-based index of the step that completed the last
// job, or maxSteps when the cap was hit — and whether every job
// finished. The loop body allocates nothing; any allocation comes
// from the policy's Assign.
func (rs *runState) runFrom(pol sched.Policy, t0, maxSteps int, rng Rand) (int, bool) {
	n, m, p := rs.n, rs.m, rs.p
	eligible, fail, mass := rs.eligible, rs.fail, rs.mass
	for t := t0; t < maxSteps && rs.remaining > 0; t++ {
		rs.st.Step = t
		a := pol.Assign(&rs.st)
		rs.touched = rs.touched[:0]
		if rs.observer != nil {
			for j := range rs.completed {
				rs.completed[j] = false
			}
			for i := range rs.effective {
				rs.effective[i] = sched.Idle
			}
		}
		for i := 0; i < m; i++ {
			j := a[i]
			if j == sched.Idle || j < 0 || j >= n || !eligible[j] {
				continue
			}
			if rs.observer != nil {
				rs.effective[i] = j
			}
			if !rs.seen[j] {
				rs.seen[j] = true
				fail[j] = 1
				rs.touched = append(rs.touched, j)
			}
			pv := p[i*n+j]
			fail[j] *= 1 - pv
			mass[j] += pv
		}
		for _, j := range rs.touched {
			if rng.Float64() < 1-fail[j] {
				rs.unfinished[j] = false
				eligible[j] = false
				if rs.observer != nil {
					rs.completed[j] = true
				}
				rs.remaining--
				for _, s := range rs.in.Prec.Succs(j) {
					rs.predsLeft[s]--
					if rs.predsLeft[s] == 0 && rs.unfinished[s] {
						eligible[s] = true
					}
				}
			}
			fail[j] = 0
			rs.seen[j] = false
		}
		if rs.observer != nil {
			rs.observer.Observe(rs.effective, rs.completed)
		}
		if rs.remaining == 0 {
			return t + 1, true
		}
	}
	return maxSteps, rs.remaining == 0
}

// Runner executes many simulations of one policy on one instance,
// reusing every buffer across runs. It is the allocation-free core
// that Estimate and EstimateParallel build on; use it directly when
// driving repetitions with custom per-run logic.
//
// A Runner is not safe for concurrent use; give each goroutine its
// own.
type Runner struct {
	rs  *runState
	pol sched.Policy
}

// NewRunner returns a runner for pol on in.
func NewRunner(in *model.Instance, pol sched.Policy) *Runner {
	return &Runner{rs: newRunState(in, pol), pol: pol}
}

// Run executes one simulation of at most maxSteps steps, returning
// the makespan and whether every job completed. The step loop
// performs zero heap allocations (given an allocation-free policy).
func (r *Runner) Run(maxSteps int, rng Rand) (makespan int, completed bool) {
	r.rs.reset()
	return r.rs.runFrom(r.pol, 0, maxSteps, rng)
}

// Mass returns the per-job mass accumulated by the most recent Run.
// The slice is a view into the runner's buffer: valid until the next
// Run, and must not be modified.
func (r *Runner) Mass() []float64 { return r.rs.mass }
