package sim

import (
	"testing"

	"suu/internal/model"
	"suu/internal/sched"
)

func parallelFixture() (*model.Instance, sched.Policy) {
	in := model.New(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			in.P[i][j] = 0.2 + 0.1*float64(i+j)/8
		}
	}
	in.Prec.MustEdge(0, 1)
	o := &sched.Oblivious{
		M:     3,
		Steps: []sched.Assignment{{0, 2, 3}, {0, 4, 4}},
		Tail:  &sched.TopoRoundRobin{M: 3, Order: []int{0, 1, 2, 3, 4}},
	}
	return in, o
}

func TestEstimateParallelMatchesSequential(t *testing.T) {
	in, pol := parallelFixture()
	seq, seqInc := Estimate(in, pol, 500, 100000, 42)
	for _, conc := range []int{0, 2, 7} {
		par, parInc := EstimateParallel(in, pol, 500, 100000, 42, conc)
		if par.Mean != seq.Mean || par.Min != seq.Min || par.Max != seq.Max || par.StdDev != seq.StdDev {
			t.Fatalf("concurrency %d: summary differs: %+v vs %+v", conc, par, seq)
		}
		if parInc != seqInc {
			t.Fatalf("concurrency %d: incomplete %d vs %d", conc, parInc, seqInc)
		}
	}
}

func TestEstimateParallelStatefulFallsBack(t *testing.T) {
	in, pol0 := parallelFixture()
	// A policy implementing OutcomeObserver must run sequentially and
	// still produce a result; Parallelizable announces the fallback.
	pol := &observingPolicy{m: in.M}
	if Parallelizable(pol) {
		t.Error("observing policy reported parallelizable")
	}
	if !Parallelizable(pol0) {
		t.Error("oblivious schedule reported non-parallelizable")
	}
	sum, inc := EstimateParallel(in, pol, 50, 100000, 1, 4)
	if sum.N != 50 {
		t.Fatalf("runs %d", sum.N)
	}
	if pol.observed == 0 {
		t.Error("observer never called")
	}
	// The fallback must be exactly the sequential path.
	pol2 := &observingPolicy{m: in.M}
	seq, seqInc := Estimate(in, pol2, 50, 100000, 1)
	if sum != seq || inc != seqInc {
		t.Errorf("fallback %+v/%d differs from sequential %+v/%d", sum, inc, seq, seqInc)
	}
}

type observingPolicy struct {
	m        int
	observed int
}

func (p *observingPolicy) Assign(st *sched.State) sched.Assignment {
	a := sched.NewIdle(p.m)
	for j, e := range st.Eligible {
		if e {
			for i := range a {
				a[i] = j
			}
			break
		}
	}
	return a
}

func (p *observingPolicy) Observe(played sched.Assignment, completed []bool) {
	p.observed++
}

func TestEstimateParallelRepsGuard(t *testing.T) {
	in, pol := parallelFixture()
	defer func() {
		if recover() == nil {
			t.Error("no panic for reps=0")
		}
	}()
	EstimateParallel(in, pol, 0, 10, 1, 2)
}
