package sim

import (
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// MakespanQuantiles runs reps executions and returns the requested
// quantiles of the realized makespan distribution (e.g. 0.5, 0.9,
// 0.99) along with the sample itself. Tail quantiles matter for the
// project-management story: a manager cares about the deadline she can
// promise with 95% confidence, not only the mean. The sample is
// materialized because it is part of the return value; callers that
// only need an estimate at scale can feed a stats.P2Quantile instead.
// Repetition r draws from the same (seed, r) stream as Estimate.
func MakespanQuantiles(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, qs []float64) ([]float64, []float64) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	est := newEstimator(in, pol, reps)
	w := est.newWorker()
	var rng Stream
	xs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		rng.Reseed(seed, int64(r))
		makespan, _ := w.run(maxSteps, &rng)
		xs[r] = float64(makespan)
	}
	out := make([]float64, len(qs))
	for k, q := range qs {
		out[k] = stats.Quantile(xs, q)
	}
	return out, xs
}

// MakespanP2Quantiles estimates the requested quantiles in O(1)
// memory with streaming P² estimators (stats.P2Quantile) instead of
// materializing the sample. P² is order-sensitive and does not merge,
// so the repetitions run sequentially; under the lane engine the
// makespans of each 64-rep group drain into the estimators in lane
// order — which is repetition order under the lane stream remap, the
// exact order the scalar remap oracle produces them one at a time —
// so the estimate depends only on (policy, reps, maxSteps, seed) and
// the engine's stream schedule, never on how samples were packed into
// words.
func MakespanP2Quantiles(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, qs []float64) []float64 {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	ps := make([]*stats.P2Quantile, len(qs))
	for k, q := range qs {
		ps[k] = stats.NewP2Quantile(q)
	}
	est := newEstimator(in, pol, reps)
	if est.lane {
		w := est.newLaneWorker(seed)
		for glo := 0; glo < reps; glo += LaneWidth {
			cnt := reps - glo
			if cnt > LaneWidth {
				cnt = LaneWidth
			}
			mk, _ := w.runGroup(int64(glo/LaneWidth), cnt, maxSteps)
			for l := 0; l < cnt; l++ {
				for _, p := range ps {
					p.Add(float64(mk[l]))
				}
			}
		}
	} else {
		w := est.newWorker()
		var rng Stream
		for r := 0; r < reps; r++ {
			rng.Reseed(seed, int64(r))
			makespan, _ := w.run(maxSteps, &rng)
			for _, p := range ps {
				p.Add(float64(makespan))
			}
		}
	}
	out := make([]float64, len(qs))
	for k, p := range ps {
		out[k] = p.Value()
	}
	return out
}
