package sim

import (
	"math/rand"

	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// MakespanQuantiles runs reps executions and returns the requested
// quantiles of the realized makespan distribution (e.g. 0.5, 0.9,
// 0.99) along with the sample itself. Tail quantiles matter for the
// project-management story: a manager cares about the deadline she can
// promise with 95% confidence, not only the mean.
func MakespanQuantiles(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, qs []float64) ([]float64, []float64) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	xs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
		xs[r] = float64(Run(in, pol, maxSteps, rng).Makespan)
	}
	out := make([]float64, len(qs))
	for k, q := range qs {
		out[k] = stats.Quantile(xs, q)
	}
	return out, xs
}
