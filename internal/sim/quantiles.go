package sim

import (
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/stats"
)

// MakespanQuantiles runs reps executions and returns the requested
// quantiles of the realized makespan distribution (e.g. 0.5, 0.9,
// 0.99) along with the sample itself. Tail quantiles matter for the
// project-management story: a manager cares about the deadline she can
// promise with 95% confidence, not only the mean. The sample is
// materialized because it is part of the return value; callers that
// only need an estimate at scale can feed a stats.P2Quantile instead.
// Repetition r draws from the same (seed, r) stream as Estimate.
func MakespanQuantiles(in *model.Instance, pol sched.Policy, reps, maxSteps int, seed int64, qs []float64) ([]float64, []float64) {
	if reps <= 0 {
		panic("sim: reps must be positive")
	}
	est := newEstimator(in, pol, reps)
	w := est.newWorker()
	var rng Stream
	xs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		rng.Reseed(seed, int64(r))
		makespan, _ := w.run(maxSteps, &rng)
		xs[r] = float64(makespan)
	}
	out := make([]float64, len(qs))
	for k, q := range qs {
		out[k] = stats.Quantile(xs, q)
	}
	return out, xs
}
