package sim

import (
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/sched"
	"suu/internal/workload"
)

// benchChains is the reference workload of the engine perf gate: 96
// jobs in 8 chains on 12 machines, scheduled by the full Theorem 4.4
// pipeline. Construction happens outside the timed region; the
// benchmarks below measure pure simulation throughput.
func benchChains(b *testing.B) (*model.Instance, sched.Policy) {
	b.Helper()
	in := workload.Chains(workload.Config{Jobs: 96, Machines: 12, Seed: 1}, 8)
	res, err := core.SUUChains(in, core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return in, res.Schedule
}

// BenchmarkEstimate measures sequential Monte Carlo throughput on the
// chains reference workload. reps/s and ns/step are the tracked
// metrics (BENCH_sim.json rows come from the same measurement).
func BenchmarkEstimate(b *testing.B) {
	in, pol := benchChains(b)
	const reps = 32
	totalSteps := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, _ := Estimate(in, pol, reps, 1_000_000, 42)
		totalSteps += sum.Mean * float64(reps)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(reps*b.N)/s, "reps/s")
		if totalSteps > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/totalSteps, "ns/step")
		}
	}
}

// BenchmarkEstimateParallel is BenchmarkEstimate fanned out over
// GOMAXPROCS workers.
func BenchmarkEstimateParallel(b *testing.B) {
	in, pol := benchChains(b)
	const reps = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateParallel(in, pol, reps, 1_000_000, 42, 0)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(reps*b.N)/s, "reps/s")
	}
}
