package sim

import "math/bits"

// The bit-parallel lane engine advances LaneWidth (64) independent
// repetitions in lockstep, one per bit of a uint64. Per-rep state in
// both compiled engines is tiny — "which jobs are finished" plus a
// clock — so completion bookkeeping becomes AND/OR/popcount-style
// word operations, and each (job, step) completion trial draws all 64
// lanes' Bernoulli outcomes at once from the raw words SplitMix64
// already emits (see laneBernoulli). Makespans feed the existing
// chunked Welford accumulators 64 samples at a time, in lane order.
//
// # Stream remap
//
// Lane repetitions cannot consume the per-rep (seed, rep) streams the
// scalar engines use — 64 reps share each drawn word — so the lane
// engine pins its own SeedFor-derived schedule, the "lane stream
// remap":
//
//   - Repetitions are grouped 64 at a time: group g covers reps
//     [64g, 64g+64) and draws trial words from the stream seeded
//     SeedFor(seed, "lane", g). Lane l of group g is repetition
//     64g + l.
//   - Every completion trial is keyed by its position in the
//     schedule, via Stream.ReseedTrial(groupSeed, a, b): the compiled
//     oblivious walk keys trials (occurrence index, 0); the adaptive
//     table walk keys trials (step, job). Lane l's outcome depends
//     only on the group seed, the trial key, and bit l of the drawn
//     words — never on which other lanes are still running — so a
//     partial tail group is exactly the restriction of a full one.
//   - Repetitions that outlive a compiled oblivious prefix continue
//     on the generic step engine with the sequential stream
//     Reseed(SeedFor(seed, "lane-tail"), rep).
//
// The scalar compiled engines double as the exactness oracle: run
// under the same remap (one lane at a time — see bitParallelOracle),
// they reproduce every lane makespan bit for bit, which is what the
// lane parity tests pin. Because group g's draws depend only on
// (seed, g) and chunk boundaries are group-aligned, lane results are
// bit-identical at any worker count, exactly like the scalar engines.
//
// Means and variances under the remap differ from the scalar
// engines' in the last Monte Carlo digits (different draws, same
// distribution); EstimateInfo reports which engine ran so persisted
// results are attributable.

// LaneWidth is the number of repetitions a lane group advances in
// lockstep: one per bit of a uint64.
const LaneWidth = 64

// BitParallelMode selects how the estimators use the bit-parallel
// lane engine; see SetBitParallel.
type BitParallelMode int

const (
	// BitParallelAuto (the default) runs the lane engine whenever a
	// compiled engine is available and the call's repetition count is
	// at least BitParallelAutoMinReps.
	BitParallelAuto BitParallelMode = iota
	// BitParallelOff always runs the scalar engines.
	BitParallelOff
	// BitParallelOn runs the lane engine whenever a compiled engine is
	// available, regardless of repetition count.
	BitParallelOn
	// bitParallelOracle runs the scalar compiled engines one lane at a
	// time under the lane stream remap — the exactness oracle the
	// parity tests compare against. Unexported: a test mode, not a
	// user-facing engine (it reports the lane engine names, since it
	// computes the lane engine's numbers).
	bitParallelOracle
)

// bitParallelMode is the active mode; see SetBitParallel.
var bitParallelMode = BitParallelAuto

// BitParallelAutoMinReps is the repetition floor for auto dispatch:
// below it the per-group fixed costs (SeedFor per group, per-lane
// eligibility scatter) are not worth the lockstep win, and scalar
// results stay bit-compatible with historical runs.
const BitParallelAutoMinReps = 256

// SetBitParallel replaces the lane-engine dispatch mode and returns a
// func restoring the previous value. Not safe to call concurrently
// with estimation; it exists for tests and benchmark harnesses that
// must pin one engine.
func SetBitParallel(m BitParallelMode) (restore func()) {
	old := bitParallelMode
	bitParallelMode = m
	return func() { bitParallelMode = old }
}

// BitParallel returns the active lane-engine dispatch mode.
func BitParallel() BitParallelMode { return bitParallelMode }

// laneAdaptDemoteStates is the divergence threshold of the lane
// adaptive walk: when a step's live lanes trial more than this many
// distinct (job, succ) pairs — draws that cannot be shared across
// lanes — the group demotes to the per-lane scalar walk. Demotion
// changes no result — the scalar walk consumes the same
// position-keyed trials — only where the remaining time is spent; the
// threshold is a pure performance knob (var, so the invariance test
// can sweep it).
var laneAdaptDemoteStates = 48

// laneGroupSeed derives lane group g's trial-stream seed.
func laneGroupSeed(seed, g int64) int64 { return SeedFor(seed, "lane", g) }

// laneTailSeed derives the root of the per-rep tail streams.
func laneTailSeed(seed int64) int64 { return SeedFor(seed, "lane-tail") }

// laneBernoulli draws one exact Bernoulli(succ) outcome for each of
// the 64 lanes of trial (a, b), returning the success mask. Lane l's
// uniform is the infinite binary fraction whose i-th bit is bit l of
// the i-th word of the trial stream; the mask compares all 64
// uniforms against succ's exact binary expansion MSB-first, stopping
// as soon as every lane in need is decided. Bit extraction (p *= 2,
// subtract 1 on overflow) is exact in float64 — doubling never
// rounds, and Sterbenz's lemma covers the subtraction — so the
// acceptance probability is exactly succ, the same as the scalar
// engines' Float64() < succ. Expected cost is ~log2(64)+2 words for a
// full group and ~2 words for a single lane, independent of succ.
//
// Lanes outside need may be left undecided; their mask bits are
// meaningless. A decided lane's bit is the same for every need
// containing it, because the decision reads fixed positions of a
// counter-positioned stream — this is what makes the one-lane-at-a-
// time oracle replay exact.
func laneBernoulli(tr *Stream, gseed, a, b int64, succ float64, need uint64) uint64 {
	if succ >= 1 {
		return ^uint64(0)
	}
	if succ <= 0 {
		return 0
	}
	tr.ReseedTrial(gseed, a, b)
	und := ^uint64(0) // lanes whose uniform still ties succ's prefix
	var win uint64
	for und&need != 0 {
		succ *= 2
		w := tr.Uint64()
		if succ >= 1 {
			succ--
			// succ-bit 1: lanes whose uniform bit is 0 fall below succ.
			win |= und &^ w
			und &= w
			if succ == 0 {
				// succ's bits are exhausted; still-tied lanes sit at or
				// above succ and fail.
				break
			}
		} else {
			// succ-bit 0: lanes whose uniform bit is 1 exceed succ.
			und &^= w
		}
	}
	return win
}

// laneWorker is one estimation worker's lane engine: runGroup
// executes lane group g (cnt live lanes, cnt < LaneWidth only for the
// final partial group) and returns the per-lane makespans in lane
// order plus the completed-lane mask. The returned slice is a view
// into the worker's buffer, valid until the next call.
//
// massLanes enables per-lane mass tracking and returns the buffer the
// subsequent runGroup calls fill: lane l's per-job masses are
// mass[l*n : (l+1)*n], valid until the next call. Tracking is off by
// default — Estimate never pays for it — and is what lets
// MassWithinHorizon run on the lane engines. Per lane, masses accrue
// in the same order as the scalar walk under the remap, so the lane
// engines and the one-lane-at-a-time oracle stay bit-identical.
type laneWorker interface {
	runGroup(g int64, cnt, maxSteps int) (mk []int32, completed uint64)
	massLanes() []float64
}

// newLaneWorker builds the lane engine (or, in oracle mode, the
// scalar replay of it) for this estimator's compiled policy. Callers
// guarantee est.lane.
func (e *estimator) newLaneWorker(seed int64) laneWorker {
	if e.compiled != nil {
		if e.oracle {
			return &laneOblivOracle{r: e.compiled.newRunner(), seed: seed}
		}
		return newLaneOblivRunner(e.compiled, seed)
	}
	if e.oracle {
		return &laneAdaptOracle{c: e.adaptive, seed: seed}
	}
	return newLaneAdaptRunner(e.adaptive, seed)
}

// laneOblivRunner walks the compiled oblivious occurrence lists with
// 64 lanes in lockstep. The walk visits the same (job, occurrence)
// trials as the scalar compiled walk would for each lane under the
// remap: per job, lanes whose predecessors all completed within the
// prefix become active at their first occurrence at or after their
// eligibility step and trial occurrences in order until they
// complete; everything else is bookkeeping on lane masks.
type laneOblivRunner struct {
	c    *compiledOblivious
	seed int64
	// comp[j*LaneWidth+l] is lane l's completion step of job j, -1
	// while unfinished. done[j] is the lane mask that completed j
	// within the prefix. winMask[k] is the cumulative mask of lanes
	// that completed the job at or before its occurrence k (valid up
	// to wlast[job], the last occurrence its walk visited) — per-lane
	// completion steps in wordwise form, which is what lets successor
	// eligibility stay mask arithmetic plus a binary search.
	comp    []int32
	done    []uint64
	winMask []uint64
	wlast   []int32
	elig    [LaneWidth]int32 // scratch: per-lane eligibility step of the current job
	mcmp    [LaneWidth]int32 // per-lane max completion step
	mk      [LaneWidth]int32
	tr      Stream
	tail    Stream
	// tailR is a scratch scalar runner: lanes that outlive the prefix
	// continue one at a time on the generic step engine, reusing the
	// scalar engine's continueTail seeding.
	tailR *oblivRunner
	// massB is the per-lane mass buffer (massB[l*n+j]), nil until
	// massLanes enables tracking.
	massB []float64
}

func newLaneOblivRunner(c *compiledOblivious, seed int64) *laneOblivRunner {
	return &laneOblivRunner{
		c:       c,
		seed:    seed,
		comp:    make([]int32, c.in.N*LaneWidth),
		done:    make([]uint64, c.in.N),
		winMask: make([]uint64, len(c.steps)),
		wlast:   make([]int32, c.in.N),
	}
}

// laneNegOnes is the memmove template resetting a job's completion
// column to "unfinished".
var laneNegOnes = func() (a [LaneWidth]int32) {
	for i := range a {
		a[i] = -1
	}
	return
}()

func (r *laneOblivRunner) runGroup(g int64, cnt, maxSteps int) ([]int32, uint64) {
	c := r.c
	in := c.in
	gseed := laneGroupSeed(r.seed, g)
	laneMask := ^uint64(0)
	if cnt < LaneWidth {
		laneMask = uint64(1)<<uint(cnt) - 1
	}
	cap := c.prefixLen
	if maxSteps < cap {
		cap = maxSteps
	}
	var unfin uint64 // lanes with at least one job unfinished after the prefix
	for l := range r.mcmp {
		r.mcmp[l] = -1
	}
	if r.massB != nil {
		clear(r.massB[:cnt*in.N])
	}
	for _, j32 := range c.topo {
		j := int(j32)
		comp := r.comp[j*LaneWidth : (j+1)*LaneWidth]
		copy(comp, laneNegOnes[:])
		// Lanes that may trial j at all: every predecessor done.
		eligAll := laneMask
		preds := in.Prec.Preds(j)
		for _, pr := range preds {
			eligAll &= r.done[pr]
		}
		lo, hi := int(c.offs[j]), int(c.offs[j+1])
		r.wlast[j] = int32(lo) - 1
		var doneJ uint64
		if eligAll != 0 && lo < hi {
			firstT, lastT := c.steps[lo], c.steps[hi-1]
			active := eligAll
			var pend uint64
			if len(preds) > 0 {
				// Sort lanes by eligibility step wordwise: winsBefore
				// says which lanes a pred released before j's first
				// occurrence (early) and which it held to the last or
				// beyond (late) — two binary searches per pred, no
				// per-lane reads. Stragglers in between are rare (the
				// constructions replicate assignments Θ(σ) times); only
				// they pay a per-lane eligibility computation before
				// waiting in pend.
				var drop uint64
				for _, pr := range preds {
					active &= r.winsBefore(int(pr), firstT)
					drop |= r.done[pr] &^ r.winsBefore(int(pr), lastT)
				}
				for m := eligAll &^ active &^ drop; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					e := int32(0)
					for _, pr := range preds {
						if pc := r.comp[pr*LaneWidth+l] + 1; pc > e {
							e = pc
						}
					}
					pend |= uint64(1) << uint(l)
					r.elig[l] = e
				}
			}
			k := lo
			for ; k < hi && active|pend != 0; k++ {
				t := c.steps[k]
				if int(t) >= cap {
					break
				}
				if pend != 0 {
					for m := pend; m != 0; m &= m - 1 {
						l := bits.TrailingZeros64(m)
						if r.elig[l] <= t {
							pend &^= uint64(1) << uint(l)
							active |= uint64(1) << uint(l)
						}
					}
				}
				if active != 0 {
					if r.massB != nil {
						for m := active; m != 0; m &= m - 1 {
							l := bits.TrailingZeros64(m)
							r.massB[l*in.N+j] += c.mass[k]
						}
					}
					win := active & laneBernoulli(&r.tr, gseed, int64(k), 0, c.succ[k], active)
					if win != 0 {
						doneJ |= win
						active &^= win
						for m := win; m != 0; m &= m - 1 {
							l := bits.TrailingZeros64(m)
							comp[l] = t
							if t > r.mcmp[l] {
								r.mcmp[l] = t
							}
						}
					}
				}
				r.winMask[k] = doneJ
			}
			r.wlast[j] = int32(k) - 1
		}
		r.done[j] = doneJ
		unfin |= laneMask &^ doneJ
	}
	completed := laneMask &^ unfin
	for m := completed; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		r.mk[l] = r.mcmp[l] + 1
	}
	if unfin != 0 {
		if maxSteps <= c.prefixLen {
			for m := unfin; m != 0; m &= m - 1 {
				r.mk[bits.TrailingZeros64(m)] = int32(maxSteps)
			}
		} else {
			for m := unfin; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				mk, done := r.continueTailLane(g, l, maxSteps)
				r.mk[l] = int32(mk)
				if done {
					completed |= uint64(1) << uint(l)
				}
			}
		}
	}
	return r.mk[:cnt], completed
}

// winsBefore returns the mask of lanes that completed job pr strictly
// before step x, by binary search over pr's (sorted) occurrence steps
// into the cumulative win masks. Occurrences past wlast[pr] were never
// visited and hold no wins, so the search space is clamped there; the
// cumulative mask at the clamp already equals pr's full done mask.
func (r *laneOblivRunner) winsBefore(pr int, x int32) uint64 {
	c := r.c
	i, j := int(c.offs[pr]), int(c.offs[pr+1])
	lo := i
	if w := int(r.wlast[pr]) + 1; j > w {
		j = w
	}
	for i < j {
		m := int(uint(i+j) >> 1)
		if c.steps[m] < x {
			i = m + 1
		} else {
			j = m
		}
	}
	if i == lo {
		return 0
	}
	return r.winMask[i-1]
}

// continueTailLane hands lane l to the scalar continuation (closed-
// form splice or generic step engine): it copies the lane's completion
// column — and, when mass tracking is on, its accumulated prefix mass
// — into the scratch scalar runner and reuses its continueTail
// seeding, with the rep's pinned tail stream.
func (r *laneOblivRunner) continueTailLane(g int64, l, maxSteps int) (int, bool) {
	if r.tailR == nil {
		r.tailR = r.c.newRunner()
	}
	tr := r.tailR
	n := r.c.in.N
	unfinished := 0
	for j := 0; j < n; j++ {
		tr.comp[j] = r.comp[j*LaneWidth+l]
		if r.massB != nil {
			tr.mass[j] = r.massB[l*n+j]
		} else {
			tr.mass[j] = 0
		}
		if tr.comp[j] < 0 {
			unfinished++
		}
	}
	r.tail.Reseed(laneTailSeed(r.seed), g*LaneWidth+int64(l))
	mk, done := tr.continueTail(unfinished, maxSteps, &r.tail)
	if r.massB != nil {
		copy(r.massB[l*n:(l+1)*n], tr.mass)
	}
	return mk, done
}

func (r *laneOblivRunner) massLanes() []float64 {
	if r.massB == nil {
		r.massB = make([]float64, r.c.in.N*LaneWidth)
	}
	return r.massB
}

// laneOblivOracle replays the lane engine's numbers one lane at a
// time on the scalar compiled walk (oblivRun parameterized with
// remapDraw) — the exactness oracle for the oblivious lane walk.
type laneOblivOracle struct {
	r     *oblivRunner
	seed  int64
	tr    Stream
	tail  Stream
	mk    [LaneWidth]int32
	massB []float64
}

func (o *laneOblivOracle) runGroup(g int64, cnt, maxSteps int) ([]int32, uint64) {
	gseed := laneGroupSeed(o.seed, g)
	n := o.r.c.in.N
	var completed uint64
	for l := 0; l < cnt; l++ {
		o.tail.Reseed(laneTailSeed(o.seed), g*LaneWidth+int64(l))
		mk, done := oblivRun(o.r, maxSteps, remapDraw{tr: &o.tr, tail: &o.tail, gseed: gseed, lane: uint(l)})
		o.mk[l] = int32(mk)
		if done {
			completed |= uint64(1) << uint(l)
		}
		if o.massB != nil {
			copy(o.massB[l*n:(l+1)*n], o.r.mass)
		}
	}
	return o.mk[:cnt], completed
}

func (o *laneOblivOracle) massLanes() []float64 {
	if o.massB == nil {
		o.massB = make([]float64, o.r.c.in.N*LaneWidth)
	}
	return o.massB
}

// laneAdaptMaxFan bounds the per-state trial fan-out; it matches the
// assignment width compileAdaptive accepts.
const laneAdaptMaxFan = 20

// laneAdaptRunner walks the compiled adaptive transition table with
// 64 lanes in lockstep. Lanes share the immutable table but diverge
// on unfinished-set keys; the lockstep win survives divergence
// because trials are keyed (step, job), not (step, state): lanes in
// different states that trial the same job with the same success
// probability read the same stream position, so each step draws once
// per distinct (job, succ) pair across all live lanes instead of once
// per lane. When a step's pair count exceeds laneAdaptDemoteStates,
// the lanes have diverged so far that the shared draws stop paying
// and the group demotes to the per-lane scalar walk — same
// position-keyed trials, so identical results.
type laneAdaptRunner struct {
	c   *compiledAdaptive
	cur [LaneWidth]int32
	mk  [LaneWidth]int32
	// The distinct (job, succ) pairs of the whole table, interned at
	// construction: spID[spOff[s]+ki] is the pair trialed by state s's
	// slot ki, so the per-step pair lookup is one indexed load.
	spOff    []int32
	spID     []int32
	pairJob  []int32
	pairSucc []float64
	// Per-step scratch: each touched pair's needing-lane mask and
	// drawn word, plus the list of touched pair ids (pairNeed is dense
	// over all pairs; only touched entries are ever non-zero).
	pairNeed []uint64
	pairWord []uint64
	touched  []int32
	sub      [LaneWidth][laneAdaptMaxFan]int32 // pair id per (lane, trial slot)
	seed     int64
	tr       Stream
	// massB is the per-lane mass buffer (massB[l*n+j]), nil until
	// massLanes enables tracking.
	massB []float64
}

// massCol returns lane l's mass column, or nil when tracking is off.
func (r *laneAdaptRunner) massCol(l int) []float64 {
	if r.massB == nil {
		return nil
	}
	return r.massB[l*r.c.n : (l+1)*r.c.n]
}

func (r *laneAdaptRunner) massLanes() []float64 {
	if r.massB == nil {
		r.massB = make([]float64, r.c.n*LaneWidth)
	}
	return r.massB
}

func newLaneAdaptRunner(c *compiledAdaptive, seed int64) *laneAdaptRunner {
	r := &laneAdaptRunner{c: c, seed: seed, spOff: make([]int32, len(c.states)+1)}
	type pairKey struct {
		j int32
		p float64
	}
	ids := make(map[pairKey]int32)
	for si := range c.states {
		s := &c.states[si]
		r.spOff[si] = int32(len(r.spID))
		for ki, j := range s.jobs {
			k := pairKey{int32(j), s.succ[ki]}
			id, ok := ids[k]
			if !ok {
				id = int32(len(r.pairJob))
				ids[k] = id
				r.pairJob = append(r.pairJob, k.j)
				r.pairSucc = append(r.pairSucc, k.p)
			}
			r.spID = append(r.spID, id)
		}
	}
	r.spOff[len(c.states)] = int32(len(r.spID))
	r.pairNeed = make([]uint64, len(r.pairJob))
	r.pairWord = make([]uint64, len(r.pairJob))
	return r
}

func (r *laneAdaptRunner) runGroup(g int64, cnt, maxSteps int) ([]int32, uint64) {
	gseed := laneGroupSeed(r.seed, g)
	n := r.c.n
	laneMask := ^uint64(0)
	if cnt < LaneWidth {
		laneMask = uint64(1)<<uint(cnt) - 1
	}
	active := laneMask
	for l := 0; l < cnt; l++ {
		r.cur[l] = 0
	}
	if r.massB != nil {
		clear(r.massB[:cnt*n])
	}
	var completed uint64
	states := r.c.states
	// A start state already in the terminal layer (n ≤ 2) splices every
	// lane straight away via the per-lane walk.
	if r.c.splice && states[0].terminal {
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			mk, done := r.c.laneRunFrom(&r.tr, gseed, uint(l), 0, 0, maxSteps, r.massCol(l))
			r.mk[l] = int32(mk)
			if done {
				completed |= uint64(1) << uint(l)
			}
		}
		return r.mk[:cnt], completed
	}
	for t := 0; t < maxSteps && active != 0; t++ {
		// Collect the step's touched (job, succ) pairs and each pair's
		// needing-lane mask.
		r.touched = r.touched[:0]
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			cur := r.cur[l]
			sp := r.spID[r.spOff[cur]:r.spOff[cur+1]]
			sub := &r.sub[l]
			for ki, q := range sp {
				if r.pairNeed[q] == 0 {
					r.touched = append(r.touched, q)
				}
				r.pairNeed[q] |= uint64(1) << uint(l)
				sub[ki] = q
			}
		}
		if len(r.touched) > laneAdaptDemoteStates {
			for _, q := range r.touched {
				r.pairNeed[q] = 0
			}
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				mk, done := r.c.laneRunFrom(&r.tr, gseed, uint(l), r.cur[l], t, maxSteps, r.massCol(l))
				r.mk[l] = int32(mk)
				if done {
					completed |= uint64(1) << uint(l)
				}
			}
			active = 0
			break
		}
		for _, q := range r.touched {
			r.pairWord[q] = laneBernoulli(&r.tr, gseed, int64(t), int64(r.pairJob[q]), r.pairSucc[q], r.pairNeed[q])
			r.pairNeed[q] = 0
		}
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			s := &states[r.cur[l]]
			if r.massB != nil {
				col := r.massB[l*n : (l+1)*n]
				for ki, j := range s.jobs {
					col[j] += s.mass[ki]
				}
			}
			sub := 0
			for ki := range s.jobs {
				sub |= int(r.pairWord[r.sub[l][ki]]>>uint(l)&1) << uint(ki)
			}
			if sub == 0 {
				// No completions this step; a state with no trialed jobs
				// is stuck, exactly like the step engine under an
				// all-idle assignment.
				continue
			}
			nxt := s.next[sub]
			switch {
			case nxt < 0:
				r.mk[l] = int32(t + 1)
				completed |= uint64(1) << uint(l)
				active &^= uint64(1) << uint(l)
			case r.c.splice && states[nxt].terminal:
				// Entering the ≤2-job terminal layer: demote the lane to
				// the per-lane walk, which splices immediately — the same
				// point at which the oracle's laneRunFrom splices, on the
				// same pinned stream.
				mk, done := r.c.laneRunFrom(&r.tr, gseed, uint(l), nxt, t+1, maxSteps, r.massCol(l))
				r.mk[l] = int32(mk)
				if done {
					completed |= uint64(1) << uint(l)
				}
				active &^= uint64(1) << uint(l)
			default:
				r.cur[l] = nxt
			}
		}
	}
	for m := active; m != 0; m &= m - 1 {
		r.mk[bits.TrailingZeros64(m)] = int32(maxSteps)
	}
	return r.mk[:cnt], completed
}

// laneRunFrom walks one lane of group gseed through the table from
// state cur at step t0, drawing each trial from its pinned (step,
// job) stream position and accruing mass into the optional per-job
// column. Both the demoted lane walk and the adaptive oracle run
// exactly this code, which is why demotion is invisible in the
// results. With splicing on, entering a terminal state exits into the
// closed-form sampler on the lane's dedicated splice stream.
func (c *compiledAdaptive) laneRunFrom(tr *Stream, gseed int64, lane uint, cur int32, t0, maxSteps int, mass []float64) (int, bool) {
	states := c.states
	need := uint64(1) << lane
	for t := t0; t < maxSteps; t++ {
		s := &states[cur]
		if c.splice && s.terminal {
			tr.ReseedTrial(gseed, spliceLaneKey, int64(lane))
			return c.spliceFrom(cur, t, maxSteps, tr, mass)
		}
		sub := 0
		for ki, j := range s.jobs {
			if mass != nil {
				mass[j] += s.mass[ki]
			}
			if laneBernoulli(tr, gseed, int64(t), int64(j), s.succ[ki], need)&need != 0 {
				sub |= 1 << uint(ki)
			}
		}
		if sub == 0 {
			continue
		}
		nxt := s.next[sub]
		if nxt < 0 {
			return t + 1, true
		}
		cur = nxt
	}
	return maxSteps, false
}

// laneAdaptOracle replays the lane engine's numbers one lane at a
// time via laneRunFrom — the exactness oracle for the adaptive lane
// walk.
type laneAdaptOracle struct {
	c     *compiledAdaptive
	seed  int64
	tr    Stream
	mk    [LaneWidth]int32
	massB []float64
}

func (o *laneAdaptOracle) runGroup(g int64, cnt, maxSteps int) ([]int32, uint64) {
	gseed := laneGroupSeed(o.seed, g)
	n := o.c.n
	var completed uint64
	for l := 0; l < cnt; l++ {
		var col []float64
		if o.massB != nil {
			col = o.massB[l*n : (l+1)*n]
			clear(col)
		}
		mk, done := o.c.laneRunFrom(&o.tr, gseed, uint(l), 0, 0, maxSteps, col)
		o.mk[l] = int32(mk)
		if done {
			completed |= uint64(1) << uint(l)
		}
	}
	return o.mk[:cnt], completed
}

func (o *laneAdaptOracle) massLanes() []float64 {
	if o.massB == nil {
		o.massB = make([]float64, o.c.n*LaneWidth)
	}
	return o.massB
}
