package sim

import (
	"math"
	"runtime"
	"testing"

	"suu/internal/core"
	"suu/internal/model"
	"suu/internal/opt"
	"suu/internal/sched"
	"suu/internal/workload"
)

// adaptiveParityCases builds one (instance, policy) pair per
// stationary-policy family the compiled adaptive engine must cover:
// the MSM greedy (SUU-I-ALG), a greedy regimen frozen through the opt
// state walk, and a trained-then-frozen learning policy.
func adaptiveParityCases(t *testing.T) map[string]struct {
	in  *model.Instance
	pol sched.Memoizable
} {
	t.Helper()
	cases := map[string]struct {
		in  *model.Instance
		pol sched.Memoizable
	}{}

	msmIn := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	cases["msm-adaptive"] = struct {
		in  *model.Instance
		pol sched.Memoizable
	}{msmIn, &core.AdaptivePolicy{In: msmIn}}

	regIn := workload.Chains(workload.Config{Jobs: 9, Machines: 3, Seed: 7}, 3)
	reg, err := opt.GreedyRegimen(regIn, func(unf, elig []bool) sched.Assignment {
		return core.MSMAlg(regIn, elig)
	})
	if err != nil {
		t.Fatal(err)
	}
	cases["greedy-regimen"] = struct {
		in  *model.Instance
		pol sched.Memoizable
	}{regIn, reg}

	learnIn := workload.Independent(workload.Config{Jobs: 8, Machines: 3, Seed: 13})
	lp := core.NewLearningPolicy(learnIn, 0.5)
	r := NewRunner(learnIn, lp)
	var rng Stream
	for rep := 0; rep < 25; rep++ {
		rng.Reseed(99, int64(rep))
		r.Run(100000, &rng)
	}
	cases["frozen-learning"] = struct {
		in  *model.Instance
		pol sched.Memoizable
	}{learnIn, lp.Frozen()}

	return cases
}

// TestCompiledAdaptiveBitIdenticalToGeneric is the tentpole's parity
// bar: for every stationary-policy family, the compiled transition
// table must reproduce the generic step engine's summary and
// incomplete count EXACTLY (same draws, same order, same floats), and
// must stay bit-identical across worker counts 1/4/GOMAXPROCS.
func TestCompiledAdaptiveBitIdenticalToGeneric(t *testing.T) {
	// This pins the SCALAR table walk to the step engine; at these rep
	// counts auto dispatch would select the lane engine, whose own
	// exactness contract lives in lane_test.go. Terminal splicing is
	// distribution- but not draw-preserving, so it is pinned off too
	// (see splice_test.go for its own contract).
	defer SetBitParallel(BitParallelOff)()
	defer SetTerminalSplice(false)()
	const reps, cap, seed = 1500, 100000, 17
	for name, tc := range adaptiveParityCases(t) {
		t.Run(name, func(t *testing.T) {
			sumC, incC, eng := EstimateInfo(tc.in, tc.pol, reps, cap, seed)
			if eng.Engine != EngineCompiledAdaptive {
				t.Fatalf("engine = %q (states %d), want %q", eng.Engine, eng.States, EngineCompiledAdaptive)
			}
			if eng.States < 2 {
				t.Fatalf("suspiciously small table: %d states", eng.States)
			}
			generic := sched.PolicyFunc(tc.pol.Assign)
			sumG, incG, engG := EstimateInfo(tc.in, generic, reps, cap, seed)
			if engG.Engine != EngineGeneric {
				t.Fatalf("PolicyFunc wrapper ran on %q, want generic", engG.Engine)
			}
			if sumC != sumG || incC != incG {
				t.Errorf("engines disagree: compiled %+v/%d vs generic %+v/%d", sumC, incC, sumG, incG)
			}
			for _, conc := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
				got, gotInc, engP := EstimateParallelInfo(tc.in, tc.pol, reps, cap, seed, conc)
				if engP.Engine != EngineCompiledAdaptive {
					t.Errorf("concurrency %d: engine %q", conc, engP.Engine)
				}
				if got != sumC || gotInc != incC {
					t.Errorf("concurrency %d: %+v/%d differs from sequential %+v/%d", conc, got, gotInc, sumC, incC)
				}
			}
		})
	}
}

// TestCompiledAdaptiveMassParity checks the one place the compiled
// walk is allowed to differ in the last bits — per-job mass is added
// as a precomputed per-step sum — stays within float tolerance of the
// step engine's machine-by-machine accumulation.
func TestCompiledAdaptiveMassParity(t *testing.T) {
	// Scalar-vs-generic draw identity: pin off the lane dispatch (whose
	// mass contract is TestLaneMassParity) and terminal splicing.
	defer SetBitParallel(BitParallelOff)()
	defer SetTerminalSplice(false)()
	in := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	pol := &core.AdaptivePolicy{In: in}
	generic := sched.PolicyFunc(pol.Assign)
	const reps, horizon = 2000, 12
	fast := MassWithinHorizon(in, pol, horizon, reps, 0.25, 31)
	slow := MassWithinHorizon(in, generic, horizon, reps, 0.25, 31)
	for j := range fast {
		if math.Abs(fast[j]-slow[j]) > 1e-9 {
			t.Errorf("job %d: mass fraction compiled %v vs generic %v", j, fast[j], slow[j])
		}
	}
}

// TestCompiledAdaptiveFallbackOverBudget pins the transparent
// fallback: with the budget set one state below the instance's
// reachable count, the estimator must run the generic engine — and
// produce the exact summary the compiled engine produces when the
// budget fits, because the engines are bit-identical. A zero budget
// disables compilation outright.
func TestCompiledAdaptiveFallbackOverBudget(t *testing.T) {
	defer SetBitParallel(BitParallelOff)() // pin the scalar engines; see lane_test.go
	defer SetTerminalSplice(false)()       // draw identity with the generic engine
	in := workload.Independent(workload.Config{Jobs: 8, Machines: 3, Seed: 3})
	pol := &core.AdaptivePolicy{In: in}
	const reps, cap, seed = 800, 100000, 5

	sumC, incC, eng := EstimateInfo(in, pol, reps, cap, seed)
	if eng.Engine != EngineCompiledAdaptive {
		t.Fatalf("engine %q at default budget, want compiled-adaptive", eng.Engine)
	}
	restore := SetAdaptiveCompileBudget(eng.States - 1)
	sumG, incG, engG := EstimateInfo(in, pol, reps, cap, seed)
	restore()
	if engG.Engine != EngineGeneric || engG.States != 0 {
		t.Fatalf("budget %d for %d states: engine %q (states %d), want generic fallback",
			eng.States-1, eng.States, engG.Engine, engG.States)
	}
	if sumC != sumG || incC != incG {
		t.Errorf("fallback changed values: compiled %+v/%d vs generic %+v/%d", sumC, incC, sumG, incG)
	}

	restore = SetAdaptiveCompileBudget(0)
	_, _, engOff := EstimateInfo(in, pol, reps, cap, seed)
	restore()
	if engOff.Engine != EngineGeneric {
		t.Errorf("budget 0: engine %q, want generic", engOff.Engine)
	}
}

// TestCompiledAdaptiveStuckState: a regimen with missing states idles
// there forever; the compiled walk must report the same capped,
// incomplete runs as the step engine.
func TestCompiledAdaptiveStuckState(t *testing.T) {
	defer SetBitParallel(BitParallelOff)() // pin the scalar engines; see lane_test.go
	in := model.New(2, 1)
	in.SetAt(0, 0, 0.5)
	in.SetAt(0, 1, 0.5)
	reg := sched.NewRegimen(2, 1)
	reg.F[sched.Key([]bool{true, true})] = sched.Assignment{0} // {1} and {0,1}\{0} states missing
	const reps, cap, seed = 400, 50, 9
	sumC, incC, eng := EstimateInfo(in, reg, reps, cap, seed)
	if eng.Engine != EngineCompiledAdaptive {
		t.Fatalf("engine %q, want compiled-adaptive", eng.Engine)
	}
	sumG, incG := Estimate(in, sched.PolicyFunc(reg.Assign), reps, cap, seed)
	if sumC != sumG || incC != incG {
		t.Errorf("stuck-state parity: compiled %+v/%d vs generic %+v/%d", sumC, incC, sumG, incG)
	}
	if incC == 0 {
		t.Error("fixture did not get stuck; missing-state fallback untested")
	}
}

// TestCompiledAdaptiveObserverNeverCompiles: a policy that both claims
// stationarity and observes outcomes is a contract violation; the
// engine refuses to compile it rather than drop its observations.
func TestCompiledAdaptiveObserverNeverCompiles(t *testing.T) {
	in := workload.Independent(workload.Config{Jobs: 6, Machines: 2, Seed: 21})
	lp := core.NewLearningPolicy(in, 0)
	_, _, eng := EstimateInfo(in, observingMemoizable{lp}, 50, 10000, 3)
	if eng.Engine != EngineGeneric {
		t.Errorf("observer policy compiled to %q", eng.Engine)
	}
	// And the live (non-memoizable) learner loses its requested fan-out
	// explicitly: EngineUsed.Workers records the sequential decision.
	_, _, engPar := EstimateParallelInfo(in, lp, 50, 10000, 3, 4)
	if engPar.Engine != EngineGeneric || engPar.Workers != 1 {
		t.Errorf("observer fan-out not degraded to sequential: %+v", engPar)
	}
}

// observingMemoizable wraps the learner with a bogus Memoizable claim.
type observingMemoizable struct{ *core.LearningPolicy }

func (observingMemoizable) Memoizable() {}

// TestCompiledAdaptiveCertainJobParity: p_ij = 1 drives the step
// engine's fail product to zero mid-step; a first-touch sentinel based
// on fail[j]==0 would re-enroll the job, double-count its mass, and
// desync the draw stream. Both engines use an explicit seen marker, so
// a certain job drawn by several machines stays one trial — and the
// engines stay bit-identical.
func TestCompiledAdaptiveCertainJobParity(t *testing.T) {
	defer SetBitParallel(BitParallelOff)() // pin the scalar engines; see lane_test.go
	defer SetTerminalSplice(false)()       // draw identity with the generic engine
	in := model.New(2, 2)
	in.SetAt(0, 0, 1)
	in.SetAt(1, 0, 1)
	in.SetAt(0, 1, 0.5)
	in.SetAt(1, 1, 0.5)
	pol := &core.AllOnOnePolicy{In: in} // gangs both machines onto job 0, then job 1
	const reps, cap, seed = 600, 10000, 13
	sumC, incC, eng := EstimateInfo(in, pol, reps, cap, seed)
	if eng.Engine != EngineCompiledAdaptive {
		t.Fatalf("engine %q, want compiled-adaptive", eng.Engine)
	}
	sumG, incG := Estimate(in, sched.PolicyFunc(pol.Assign), reps, cap, seed)
	if sumC != sumG || incC != incG {
		t.Errorf("p=1 parity: compiled %+v/%d vs generic %+v/%d", sumC, incC, sumG, incG)
	}
	// Mass of the certain job is exactly 2 (both machines' p summed
	// once), not 4 — the duplicate-enrollment symptom.
	est := newEstimator(in, pol, reps)
	w := est.newWorker()
	var rng Stream
	rng.Reseed(seed, 0)
	w.run(cap, &rng)
	if got := w.massView()[0]; math.Abs(got-2) > 1e-12 {
		t.Errorf("certain job accumulated mass %v, want exactly 2", got)
	}
}

// TestCompiledAdaptiveWideAssignmentFallsBack: a state that trials
// more than 20 jobs would need a >2^20-slot successor array; the
// compiler must refuse (before allocating) and the estimator fall
// back to the generic engine instead of exhausting memory.
func TestCompiledAdaptiveWideAssignmentFallsBack(t *testing.T) {
	const n = 24
	in := model.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := 0.1
			if i == j {
				p = 0.9 // each machine's argmax is its own job
			}
			in.SetAt(i, j, p)
		}
	}
	pol := &core.GreedyMaxPPolicy{In: in}
	sum, inc, eng := EstimateInfo(in, pol, 200, 10000, 7)
	if eng.Engine != EngineGeneric {
		t.Fatalf("wide assignment compiled to %q (states %d), want generic fallback", eng.Engine, eng.States)
	}
	sumG, incG := Estimate(in, sched.PolicyFunc(pol.Assign), 200, 10000, 7)
	if sum != sumG || inc != incG {
		t.Errorf("fallback changed values: %+v/%d vs %+v/%d", sum, inc, sumG, incG)
	}
}

// TestCompiledAdaptiveRepAllocationFree proves the table walk
// allocates nothing per repetition.
func TestCompiledAdaptiveRepAllocationFree(t *testing.T) {
	in := workload.Independent(workload.Config{Jobs: 10, Machines: 3, Seed: 42})
	pol := &core.AdaptivePolicy{In: in}
	c := compileAdaptive(in, pol, adaptiveCompileBudget)
	if c == nil {
		t.Fatal("compile failed")
	}
	w := c.newRunner()
	var rng Stream
	rng.Reseed(1, 0)
	w.run(100000, &rng)
	allocs := testing.AllocsPerRun(50, func() {
		rng.Reseed(1, 1)
		if makespan, done := w.run(100000, &rng); !done || makespan <= 0 {
			t.Fatal("run failed")
		}
	})
	if allocs != 0 {
		t.Errorf("compiled adaptive repetition: %v allocs/run, want 0", allocs)
	}
}
